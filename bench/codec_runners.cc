#include "codec_runners.h"

#include "core/execution_context.h"
#include "workloads/video/decoder.h"
#include "workloads/video/encoder.h"
#include "workloads/video/video_gen.h"

namespace pim::bench {

using core::ExecutionContext;

void
RunSwEncoder(int width, int height, int frames,
             video::CodecPhases &phases)
{
    video::VideoGenConfig cfg;
    cfg.width = width;
    cfg.height = height;
    video::VideoGenerator gen(cfg);
    video::Vp9Encoder encoder(width, height);
    ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    for (int i = 0; i < frames; ++i) {
        const video::Frame frame = gen.NextFrame();
        encoder.EncodeFrame(frame, ctx, &phases);
    }
}

void
RunSwDecoder(int width, int height, int frames,
             video::CodecPhases &phases)
{
    video::VideoGenConfig cfg;
    cfg.width = width;
    cfg.height = height;
    video::VideoGenerator gen(cfg);
    video::Vp9Encoder encoder(width, height);
    video::Vp9Decoder decoder;
    ExecutionContext ectx(core::ExecutionTarget::kCpuOnly);
    ExecutionContext dctx(core::ExecutionTarget::kCpuOnly);
    for (int i = 0; i < frames; ++i) {
        const video::Frame frame = gen.NextFrame();
        const auto enc = encoder.EncodeFrame(frame, ectx);
        decoder.DecodeFrame(enc.bitstream, dctx, &phases);
    }
}

} // namespace pim::bench
