/**
 * @file
 * Ablation study of the host baseline (DESIGN.md Section 7):
 *
 *   1. LLC capacity sweep for texture tiling — the locality cliff:
 *      once the rasterized bitmap fits in the LLC, the kernel stops
 *      being a PIM target (its movement evaporates).
 *   2. Coherence dirty-fraction sweep — how offload cost scales with
 *      how much of the kernel footprint the host recently wrote.
 *   3. Texture size sweep — the paper's observation that the PIM
 *      speedup grows with working-set size (Section 10.1).
 */

#include "bench_common.h"

#include "common/rng.h"
#include "core/coherence.h"
#include "sim/hierarchy.h"
#include "sim/sweep.h"
#include "sim/trace.h"
#include "workloads/browser/texture_tiler.h"

namespace {

using namespace pim;
using core::ExecutionContext;
using core::ExecutionTarget;

core::RunReport
TileOnHost(int texture_px, Bytes llc_size)
{
    Rng rng(9);
    browser::Bitmap linear(texture_px, texture_px);
    linear.Randomize(rng);
    browser::TiledTexture tiled(texture_px, texture_px);

    sim::HierarchyConfig hier = sim::HostHierarchyConfig();
    hier.llc->size = llc_size;
    ExecutionContext ctx(ExecutionTarget::kCpuOnly,
                         core::CpuComputeModel(), hier);
    browser::TileTexture(linear, tiled, ctx);
    return ctx.Report("tiling");
}

void
BM_TileHostBaseline(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            TileOnHost(256, 2_MiB).TotalEnergyPj());
    }
}
BENCHMARK(BM_TileHostBaseline)->Unit(benchmark::kMillisecond);

void
PrintAblations(bench::BenchOutput &out)
{
    // --- 1. LLC capacity vs. texture tiling movement.  The kernel
    // runs once; the LLC sweep replays its recorded stream into every
    // capacity point concurrently.
    out.Section("llc_capacity", [&] {
        Table table(
            "Ablation 5 — LLC capacity vs tiling movement (512x512)");
        table.SetHeader({"LLC", "off-chip MB", "movement share",
                         "MPKI"});

        sim::AccessTrace trace;
        sim::OpCounts ops;
        {
            Rng rng(9);
            browser::Bitmap linear(512, 512);
            linear.Randomize(rng);
            browser::TiledTexture tiled(512, 512);
            ExecutionContext ctx(ExecutionTarget::kCpuOnly,
                                 core::CpuComputeModel(),
                                 sim::HostHierarchyConfig());
            ctx.AttachTrace(trace);
            browser::TileTexture(linear, tiled, ctx);
            ops = ctx.ops().counts();
        }

        const std::vector<Bytes> llc_sizes = {512_KiB, 1_MiB, 2_MiB,
                                              4_MiB, 8_MiB};
        std::vector<sim::HierarchyConfig> configs;
        sim::StudySpec spec;
        const sim::HierarchyConfig host = sim::HostHierarchyConfig();
        spec.l1_points = {host.l1};
        spec.dram = host.dram;
        for (const Bytes llc : llc_sizes) {
            sim::HierarchyConfig hier = sim::HostHierarchyConfig();
            hier.llc->size = llc;
            spec.llc_points.push_back(*hier.llc);
            configs.push_back(std::move(hier));
        }
        // The swept hierarchies differ only in LLC capacity, so the
        // whole ablation is a pure profiler query: one L1 pass, one
        // stack-distance pass over its miss stream, every capacity an
        // analytic readout (bit-identical to per-config replay; see
        // DESIGN.md Sections 5d and 5i).
        const sim::SweepRunner runner;
        const sim::StudyResult study = runner.ProfileStudy(trace, spec);

        for (std::size_t i = 0; i < configs.size(); ++i) {
            const auto r = core::SynthesizeReport(
                "tiling", ExecutionTarget::kCpuOnly,
                core::CpuComputeModel(), configs[i], ops,
                study.host[0][i].counters);
            table.AddRow({
                Table::Num(static_cast<double>(llc_sizes[i]) / (1 << 20),
                           1) +
                    " MiB",
                Table::Num(r.counters.OffChipBytes() / 1.0e6, 2),
                Table::Pct(r.energy.DataMovementFraction()),
                Table::Num(r.Mpki(), 1),
            });
        }
        out.Emit(table);
    });

    // --- 2. Coherence dirty fraction.
    out.Section("coherence_dirty", [&] {
        Table table("Ablation 6 — offload coherence vs dirty fraction "
                    "(4 MiB footprint)");
        table.SetHeader({"dirty fraction", "messages", "writebacks",
                         "energy (uJ)", "latency (us)"});
        for (const double dirty : {0.0, 0.05, 0.1, 0.25, 0.5}) {
            core::CoherenceParams params;
            params.host_dirty_fraction = dirty;
            params.host_resident_fraction = std::max(dirty, 0.2);
            const auto cost = core::EstimateOffloadCoherence(
                4_MiB, 4_MiB, params);
            table.AddRow({
                Table::Pct(dirty),
                std::to_string(cost.messages),
                std::to_string(cost.dirty_writebacks),
                Table::Num(cost.energy_pj / 1e6, 1),
                Table::Num(cost.time_ns / 1e3, 1),
            });
        }
        out.Emit(table);
    });

    // --- 3. Texture size sweep (paper: speedup grows with size).
    out.Section("texture_size", [&] {
        Table table("Ablation 7 — PIM-Acc speedup vs texture size");
        table.SetHeader(
            {"texture", "CPU (us)", "PIM-Acc (us)", "speedup"});
        for (const int px : {128, 256, 512, 1024}) {
            Rng rng(10);
            browser::Bitmap linear(px, px);
            linear.Randomize(rng);
            core::OffloadRuntime rt;
            const auto reports = rt.RunAllReplayed(
                "tiling", {linear.size_bytes(), linear.size_bytes()},
                [&](ExecutionContext &ctx) {
                    browser::TiledTexture tiled(px, px);
                    browser::TileTexture(linear, tiled, ctx);
                });
            table.AddRow({
                std::to_string(px) + "x" + std::to_string(px),
                Table::Num(reports[0].TotalTimeNs() / 1e3, 1),
                Table::Num(reports[2].TotalTimeNs() / 1e3, 1),
                Table::Num(reports[0].TotalTimeNs() /
                               reports[2].TotalTimeNs(),
                           2) +
                    "x",
            });
        }
        out.Emit(table);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintAblations)
