/**
 * @file
 * Memory-organization study: feed each PIM target's recorded access
 * stream through the bank/row-buffer DRAM model and the vault
 * interleaving analyzer.
 *
 * Two questions from the paper's design space:
 *  - how row-buffer-friendly is each kernel's raw access pattern
 *    (what the FR-FCFS scheduler of Table 1 has to work with), and
 *  - does each kernel's footprint spread across vaults well enough to
 *    feed per-vault PIM logic in parallel?
 */

#include "bench_common.h"

#include "common/rng.h"
#include "core/vault_analyzer.h"
#include "sim/dram_timing.h"
#include "sim/sweep.h"
#include "sim/trace.h"
#include "workloads/browser/lzo.h"
#include "workloads/browser/page_data.h"
#include "workloads/browser/texture_tiler.h"
#include "workloads/ml/pack.h"
#include "workloads/video/subpel.h"
#include "workloads/video/video_gen.h"

namespace {

using namespace pim;
using core::ExecutionContext;
using core::ExecutionTarget;

/** Record a kernel's raw access stream. */
sim::AccessTrace
Record(const std::function<void(ExecutionContext &)> &kernel)
{
    sim::AccessTrace trace;
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    ctx.AttachTrace(trace);
    kernel(ctx);
    return trace;
}

void
BM_BankModelThroughput(benchmark::State &state)
{
    sim::DramBankModel model;
    Address addr = 0;
    for (auto _ : state) {
        model.Access(addr, 64, sim::AccessType::kRead);
        addr += 64;
        benchmark::DoNotOptimize(addr);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BankModelThroughput);

struct NamedTrace
{
    const char *name;
    sim::AccessTrace trace;
};

/**
 * The four kernel streams of the study (recorded once, shared by the
 * sections below).  Recording order — and hence the shared Rng's
 * consumption — matches the original stream-character study exactly,
 * so its table is byte-identical.
 */
std::vector<NamedTrace>
RecordKernelTraces()
{
    Rng rng(0x0E6);
    std::vector<NamedTrace> traces;

    // Texture tiling.
    browser::Bitmap linear(512, 512);
    linear.Randomize(rng);
    traces.push_back({"Texture Tiling", Record([&](ExecutionContext &c) {
                          browser::TiledTexture tiled(512, 512);
                          browser::TileTexture(linear, tiled, c);
                      })});

    // LZO compression of page-like data.
    pim::SimBuffer<std::uint8_t> pages(256 * 1024);
    browser::FillPageLikeData(pages, rng, 0.4);
    traces.push_back({"Compression", Record([&](ExecutionContext &c) {
                          pim::SimBuffer<std::uint8_t> dst(
                              browser::LzoCompressBound(pages.size()));
                          browser::LzoCompress(pages, pages.size(), dst,
                                               c);
                      })});

    // gemmlowp-style packing.
    ml::Matrix<std::uint8_t> lhs(512, 768);
    lhs.Randomize(rng);
    traces.push_back({"Packing", Record([&](ExecutionContext &c) {
                          ml::PackedMatrix packed(512, 768);
                          ml::PackLhs(lhs, packed, c);
                      })});

    // Sub-pixel interpolation over a frame.
    video::VideoGenConfig cfg;
    cfg.width = 640;
    cfg.height = 384;
    const auto frames = video::GenerateClip(cfg, 1);
    traces.push_back(
        {"Sub-Pixel Interp", Record([&](ExecutionContext &c) {
             video::PredBlock block(16, 16);
             for (int y = 0; y < cfg.height; y += 16) {
                 for (int x = 0; x < cfg.width; x += 16) {
                     video::InterpolateBlock(frames[0].y, x, y,
                                             video::MotionVector{3, 5},
                                             block, c);
                 }
             }
         })});
    return traces;
}

void
PrintMemoryOrgStudy(bench::BenchOutput &out)
{
    std::vector<NamedTrace> traces;
    const auto ensure_traces = [&] {
        if (traces.empty()) {
            traces = RecordKernelTraces();
        }
    };

    out.Section("stream_character", [&] {
    ensure_traces();

    Table table("Memory organization — per-kernel stream character");
    table.SetHeader({"kernel", "accesses", "row-buffer hit rate",
                     "avg DRAM latency (ns)", "vault balance",
                     "effective PIM lanes"});

    // Each kernel's stream is analyzed against private model instances,
    // so the per-kernel replays run concurrently; rows are appended in
    // input order afterwards.
    struct StreamCharacter
    {
        sim::RowBufferStats row_stats;
        double avg_latency_ns = 0;
        double balance = 0;
        double effective_lanes = 0;
    };
    std::vector<StreamCharacter> results(traces.size());
    const sim::SweepRunner runner;
    runner.ForEach(traces.size(), [&](std::size_t i) {
        sim::DramBankModel banks;
        core::VaultTrafficAnalyzer vaults(16);
        // One decode pass feeds both models while each batch is hot.
        sim::FanoutSink tee({&banks, &vaults});
        traces[i].trace.ReplayInto(tee);
        results[i] = {banks.stats(), banks.AverageLatencyNs(),
                      vaults.Balance(), vaults.EffectiveLanes()};
    });

    for (std::size_t i = 0; i < traces.size(); ++i) {
        table.AddRow({
            traces[i].name,
            std::to_string(traces[i].trace.size()),
            Table::Pct(results[i].row_stats.HitRate()),
            Table::Num(results[i].avg_latency_ns, 1),
            Table::Pct(results[i].balance),
            Table::Num(results[i].effective_lanes, 1),
        });
    }
    out.Emit(table);
    });

    // --- Memory-organization DRAM traffic, answered as a pure
    // profiler query: per kernel, ONE ProfileStudy derives the host
    // hierarchy's off-chip traffic and both PIM targets' stack-internal
    // traffic from the same stack distances (two trace decodes per
    // kernel — the host L1 pass and the shared raw-trace PIM pass —
    // instead of one full hierarchy replay per organization).
    out.Section("org_traffic", [&] {
        ensure_traces();

        Table table("Memory organization — DRAM traffic per target "
                    "(one profiling study per kernel)");
        table.SetHeader({"kernel", "host off-chip MB", "PIM-Core MB",
                         "PIM-Acc MB", "host/PIM-Acc"});

        const sim::HierarchyConfig host = sim::HostHierarchyConfig();
        const sim::HierarchyConfig pim_core =
            sim::PimCoreHierarchyConfig();
        const sim::HierarchyConfig pim_accel =
            sim::PimAccelHierarchyConfig();
        sim::StudySpec spec;
        spec.l1_points = {host.l1};
        spec.llc_points = {*host.llc};
        spec.dram = host.dram;
        spec.pim_points = {
            sim::StudyPimPoint{"pim-core", pim_core.l1, pim_core.dram},
            sim::StudyPimPoint{"pim-accel", pim_accel.l1,
                               pim_accel.dram}};

        const sim::SweepRunner runner;
        std::vector<sim::StudyResult> studies(traces.size());
        for (std::size_t i = 0; i < traces.size(); ++i) {
            studies[i] = runner.ProfileStudy(traces[i].trace, spec);
        }

        const auto mb = [](const sim::DramStats &d) {
            return static_cast<double>(d.read_bytes + d.write_bytes) /
                   1.0e6;
        };
        for (std::size_t i = 0; i < traces.size(); ++i) {
            const double host_mb =
                studies[i].host[0][0].counters.OffChipBytes() / 1.0e6;
            const double core_mb = mb(studies[i].pim[0].counters.dram);
            const double acc_mb = mb(studies[i].pim[1].counters.dram);
            table.AddRow({
                traces[i].name,
                Table::Num(host_mb, 2),
                Table::Num(core_mb, 2),
                Table::Num(acc_mb, 2),
                Table::Num(acc_mb > 0 ? host_mb / acc_mb : 0.0, 2) +
                    "x",
            });
        }
        out.Emit(table);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintMemoryOrgStudy)
