/**
 * @file
 * Memory-organization study: feed each PIM target's recorded access
 * stream through the bank/row-buffer DRAM model and the vault
 * interleaving analyzer.
 *
 * Two questions from the paper's design space:
 *  - how row-buffer-friendly is each kernel's raw access pattern
 *    (what the FR-FCFS scheduler of Table 1 has to work with), and
 *  - does each kernel's footprint spread across vaults well enough to
 *    feed per-vault PIM logic in parallel?
 */

#include "bench_common.h"

#include "common/rng.h"
#include "core/vault_analyzer.h"
#include "sim/dram_timing.h"
#include "sim/sweep.h"
#include "sim/trace.h"
#include "workloads/browser/lzo.h"
#include "workloads/browser/page_data.h"
#include "workloads/browser/texture_tiler.h"
#include "workloads/ml/pack.h"
#include "workloads/video/subpel.h"
#include "workloads/video/video_gen.h"

namespace {

using namespace pim;
using core::ExecutionContext;
using core::ExecutionTarget;

/** Record a kernel's raw access stream. */
sim::AccessTrace
Record(const std::function<void(ExecutionContext &)> &kernel)
{
    sim::AccessTrace trace;
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    ctx.AttachTrace(trace);
    kernel(ctx);
    return trace;
}

void
BM_BankModelThroughput(benchmark::State &state)
{
    sim::DramBankModel model;
    Address addr = 0;
    for (auto _ : state) {
        model.Access(addr, 64, sim::AccessType::kRead);
        addr += 64;
        benchmark::DoNotOptimize(addr);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BankModelThroughput);

void
PrintMemoryOrgStudy(bench::BenchOutput &out)
{
    out.Section("stream_character", [&] {
    Rng rng(0x0E6);

    struct NamedTrace
    {
        const char *name;
        sim::AccessTrace trace;
    };
    std::vector<NamedTrace> traces;

    // Texture tiling.
    browser::Bitmap linear(512, 512);
    linear.Randomize(rng);
    traces.push_back({"Texture Tiling", Record([&](ExecutionContext &c) {
                          browser::TiledTexture tiled(512, 512);
                          browser::TileTexture(linear, tiled, c);
                      })});

    // LZO compression of page-like data.
    pim::SimBuffer<std::uint8_t> pages(256 * 1024);
    browser::FillPageLikeData(pages, rng, 0.4);
    traces.push_back({"Compression", Record([&](ExecutionContext &c) {
                          pim::SimBuffer<std::uint8_t> dst(
                              browser::LzoCompressBound(pages.size()));
                          browser::LzoCompress(pages, pages.size(), dst,
                                               c);
                      })});

    // gemmlowp-style packing.
    ml::Matrix<std::uint8_t> lhs(512, 768);
    lhs.Randomize(rng);
    traces.push_back({"Packing", Record([&](ExecutionContext &c) {
                          ml::PackedMatrix packed(512, 768);
                          ml::PackLhs(lhs, packed, c);
                      })});

    // Sub-pixel interpolation over a frame.
    video::VideoGenConfig cfg;
    cfg.width = 640;
    cfg.height = 384;
    const auto frames = video::GenerateClip(cfg, 1);
    traces.push_back(
        {"Sub-Pixel Interp", Record([&](ExecutionContext &c) {
             video::PredBlock block(16, 16);
             for (int y = 0; y < cfg.height; y += 16) {
                 for (int x = 0; x < cfg.width; x += 16) {
                     video::InterpolateBlock(frames[0].y, x, y,
                                             video::MotionVector{3, 5},
                                             block, c);
                 }
             }
         })});

    Table table("Memory organization — per-kernel stream character");
    table.SetHeader({"kernel", "accesses", "row-buffer hit rate",
                     "avg DRAM latency (ns)", "vault balance",
                     "effective PIM lanes"});

    // Each kernel's stream is analyzed against private model instances,
    // so the per-kernel replays run concurrently; rows are appended in
    // input order afterwards.
    struct StreamCharacter
    {
        sim::RowBufferStats row_stats;
        double avg_latency_ns = 0;
        double balance = 0;
        double effective_lanes = 0;
    };
    std::vector<StreamCharacter> results(traces.size());
    const sim::SweepRunner runner;
    runner.ForEach(traces.size(), [&](std::size_t i) {
        sim::DramBankModel banks;
        core::VaultTrafficAnalyzer vaults(16);
        // One decode pass feeds both models while each batch is hot.
        sim::FanoutSink tee({&banks, &vaults});
        traces[i].trace.ReplayInto(tee);
        results[i] = {banks.stats(), banks.AverageLatencyNs(),
                      vaults.Balance(), vaults.EffectiveLanes()};
    });

    for (std::size_t i = 0; i < traces.size(); ++i) {
        table.AddRow({
            traces[i].name,
            std::to_string(traces[i].trace.size()),
            Table::Pct(results[i].row_stats.HitRate()),
            Table::Num(results[i].avg_latency_ns, 1),
            Table::Pct(results[i].balance),
            Table::Num(results[i].effective_lanes, 1),
        });
    }
    out.Emit(table);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintMemoryOrgStudy)
