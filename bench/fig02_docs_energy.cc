/**
 * @file
 * Figure 2: where energy goes when scrolling a Google Docs page —
 * per-hardware-component energy, split by function (texture tiling,
 * color blitting, other), plus the data-movement shares.
 */

#include "bench_common.h"

#include "workloads/browser/scroll_sim.h"
#include "workloads/browser/webpage.h"

namespace {

using namespace pim;

void
BM_ScrollDocsOnce(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            browser::SimulateScroll(browser::GoogleDocsProfile())
                .TotalEnergy());
    }
}
BENCHMARK(BM_ScrollDocsOnce)->Unit(benchmark::kMillisecond);

void
AddComponentRow(Table &table, const char *name,
                const sim::EnergyBreakdown &e, double total)
{
    table.AddRow({
        name,
        Table::Num(PicoToMilliJoules(e.compute), 3),
        Table::Num(PicoToMilliJoules(e.l1), 3),
        Table::Num(PicoToMilliJoules(e.llc), 3),
        Table::Num(PicoToMilliJoules(e.interconnect), 3),
        Table::Num(PicoToMilliJoules(e.memctrl), 3),
        Table::Num(PicoToMilliJoules(e.dram), 3),
        Table::Pct(e.Total() / total),
    });
}

void
PrintFigure2(bench::BenchOutput &out)
{
    out.Section("docs", [&] {
        const auto r =
            browser::SimulateScroll(browser::GoogleDocsProfile());
        const double total = r.TotalEnergy();

        Table table(
            "Figure 2 — Google Docs scroll energy by component (mJ)");
        table.SetHeader({"function", "CPU", "L1", "LLC", "interconnect",
                         "memctrl", "DRAM", "share"});
        AddComponentRow(table, "Texture Tiling", r.tiling_energy, total);
        AddComponentRow(table, "Color Blitting", r.blitting_energy,
                        total);
        AddComponentRow(table, "Other", r.other_energy, total);
        out.Emit(table);

        const sim::EnergyBreakdown whole =
            r.tiling_energy + r.blitting_energy + r.other_energy;
        Table shares("Figure 2 — data movement shares");
        shares.SetHeader({"metric", "value"});
        shares.AddRow({"total data movement / total energy",
                       Table::Pct(whole.DataMovementFraction())});
        shares.AddRow(
            {"tiling+blitting movement / total energy",
             Table::Pct((r.tiling_energy.DataMovement() +
                         r.blitting_energy.DataMovement()) /
                        total)});
        shares.AddRow(
            {"tiling movement / tiling energy",
             Table::Pct(r.tiling_energy.DataMovementFraction())});
        shares.AddRow(
            {"blitting movement / blitting energy",
             Table::Pct(r.blitting_energy.DataMovementFraction())});
        shares.AddRow(
            {"tiling+blitting share of cycles",
             Table::Pct((r.tiling_time_ns + r.blitting_time_ns) /
                        r.TotalTime())});
        out.Emit(shares);
        out.Metric("fig02.movement_share",
                   whole.DataMovementFraction());
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure2)
