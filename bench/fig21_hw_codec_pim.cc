/**
 * @file
 * Figure 21: total energy of the VP9 hardware decoder (left) and
 * encoder (right) under three configurations — the on-SoC VP9
 * accelerator, VP9 with in-memory PIM-Core logic, and VP9 with
 * in-memory PIM-Acc logic — each with and without lossless frame
 * compression.
 */

#include "bench_common.h"

#include "workloads/video/hw_model.h"

namespace {

using namespace pim;
using video::HwDecoderEnergy;
using video::HwEncoderEnergy;
using video::HwPimMode;
using video::HwResolution;

void
BM_HwEnergyModel(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            HwDecoderEnergy(HwResolution::k4k, true,
                            HwPimMode::kPimAccel)
                .Total());
    }
}
BENCHMARK(BM_HwEnergyModel);

const char *
ModeName(HwPimMode mode)
{
    switch (mode) {
      case HwPimMode::kNone:
        return "VP9";
      case HwPimMode::kPimCore:
        return "VP9 + PIM-Core";
      case HwPimMode::kPimAccel:
        return "VP9 + PIM-Acc";
    }
    return "?";
}

void
PrintSide(bench::BenchOutput &out, const char *title, bool encoder,
          HwResolution res)
{
    Table table(title);
    table.SetHeader({"config", "compression", "DRAM", "memctrl",
                     "interconnect", "computation", "total (mJ)"});
    for (const bool comp : {false, true}) {
        for (const auto mode :
             {HwPimMode::kNone, HwPimMode::kPimCore,
              HwPimMode::kPimAccel}) {
            const auto e = encoder ? HwEncoderEnergy(res, comp, mode)
                                   : HwDecoderEnergy(res, comp, mode);
            table.AddRow({
                ModeName(mode),
                comp ? "yes" : "no",
                Table::Num(e.dram_mj, 2),
                Table::Num(e.memctrl_mj, 2),
                Table::Num(e.interconnect_mj, 2),
                Table::Num(e.computation_mj, 2),
                Table::Num(e.Total(), 2),
            });
        }
    }
    out.Emit(table);
}

void
PrintFigure21(bench::BenchOutput &out)
{
    out.Section("decoder", [&] {
        PrintSide(out, "Figure 21 (left) — HW decoder energy, 4K frame",
                  false, HwResolution::k4k);
    });
    out.Section("encoder", [&] {
        PrintSide(out, "Figure 21 (right) — HW encoder energy, HD frame",
                  true, HwResolution::kHd);
    });

    out.Section("checkpoints", [&] {
        Table note("Figure 21 — paper checkpoints");
        note.SetHeader({"claim", "paper", "measured"});
        const double base =
            HwDecoderEnergy(HwResolution::k4k, false, HwPimMode::kNone)
                .Total();
        const double acc = HwDecoderEnergy(HwResolution::k4k, false,
                                           HwPimMode::kPimAccel)
                               .Total();
        note.AddRow({"PIM-Acc decoder energy reduction", "75.1%",
                     Table::Pct(1.0 - acc / base)});
        const double enc_base =
            HwEncoderEnergy(HwResolution::kHd, false, HwPimMode::kNone)
                .Total();
        const double enc_acc =
            HwEncoderEnergy(HwResolution::kHd, false,
                            HwPimMode::kPimAccel)
                .Total();
        note.AddRow({"PIM-Acc encoder energy reduction", "69.8%",
                     Table::Pct(1.0 - enc_acc / enc_base)});
        const double base_c =
            HwDecoderEnergy(HwResolution::k4k, true, HwPimMode::kNone)
                .Total();
        const double core_c =
            HwDecoderEnergy(HwResolution::k4k, true,
                            HwPimMode::kPimCore)
                .Total();
        note.AddRow({"PIM-Core vs VP9 (with compression)", "+63.4%",
                     Table::Pct(core_c / base_c - 1.0)});
        out.Emit(note);
        out.Metric("fig21.decoder.pim_acc.energy_reduction",
                   1.0 - acc / base);
        out.Metric("fig21.encoder.pim_acc.energy_reduction",
                   1.0 - enc_acc / enc_base);
        out.Metric("fig21.decoder.pim_core_vs_vp9_compressed",
                   core_c / base_c - 1.0);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure21)
