/**
 * @file
 * Figure 1: energy breakdown for page scrolling — the fraction of total
 * energy spent in texture tiling, color blitting, and everything else,
 * across the six web-page profiles.
 */

#include "bench_common.h"

#include "workloads/browser/scroll_sim.h"
#include "workloads/browser/webpage.h"

namespace {

using namespace pim;

void
BM_ScrollGoogleDocs(benchmark::State &state)
{
    for (auto _ : state) {
        const auto r = browser::SimulateScroll(
            browser::GoogleDocsProfile());
        benchmark::DoNotOptimize(r.TotalEnergy());
    }
}
BENCHMARK(BM_ScrollGoogleDocs)->Unit(benchmark::kMillisecond);

void
PrintFigure1(bench::BenchOutput &out)
{
    out.Section("scroll", [&] {
        Table table("Figure 1 — scroll energy breakdown by function");
        table.SetHeader({"page", "texture tiling", "color blitting",
                         "other", "MPKI"});
        double tiling_sum = 0.0;
        double blitting_sum = 0.0;
        const auto profiles = browser::AllPageProfiles();
        for (const auto &profile : profiles) {
            const auto r = browser::SimulateScroll(profile);
            table.AddRow({
                r.page_name,
                Table::Pct(r.TilingFraction()),
                Table::Pct(r.BlittingFraction()),
                Table::Pct(1.0 - r.TilingFraction() -
                           r.BlittingFraction()),
                Table::Num(r.Mpki(), 1),
            });
            tiling_sum += r.TilingFraction();
            blitting_sum += r.BlittingFraction();
        }
        const double n = static_cast<double>(profiles.size());
        table.AddRow({"AVG", Table::Pct(tiling_sum / n),
                      Table::Pct(blitting_sum / n),
                      Table::Pct(1.0 - (tiling_sum + blitting_sum) / n),
                      ""});
        out.Emit(table);
        out.Metric("fig01.tiling_blitting_share",
                   (tiling_sum + blitting_sum) / n);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure1)
