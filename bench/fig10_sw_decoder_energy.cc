/**
 * @file
 * Figure 10: energy breakdown of the VP9 *software* decoder by
 * function — sub-pixel interpolation, other MC, deblocking filter,
 * entropy decoder, inverse transform, other.
 */

#include "bench_common.h"
#include "codec_runners.h"

namespace {

using namespace pim;

void
BM_SwDecodeFrame(benchmark::State &state)
{
    for (auto _ : state) {
        video::CodecPhases phases;
        bench::RunSwDecoder(192, 128, 2, phases);
        benchmark::DoNotOptimize(phases.Total().energy.Total());
    }
}
BENCHMARK(BM_SwDecodeFrame)->Unit(benchmark::kMillisecond);

void
PrintFigure10(bench::BenchOutput &out)
{
    out.Section("decoder", [&] {
    video::CodecPhases ph;
    // Full-HD+ stand-in for the paper's 4K clip (DESIGN.md): large
    // enough that frames stream through (not live in) the 2 MiB LLC.
    bench::RunSwDecoder(1920, 1088, 3, ph);

    const double total = ph.Total().energy.Total();
    Table table("Figure 10 — VP9 software decoder energy by function");
    table.SetHeader({"function", "share"});
    table.AddRow({"MC: Sub-Pixel Interpolation",
                  Table::Pct(ph.subpel.energy.Total() / total)});
    table.AddRow({"Other MC Functions",
                  Table::Pct(ph.mc_other.energy.Total() / total)});
    table.AddRow({"Deblocking Filter",
                  Table::Pct(ph.deblock.energy.Total() / total)});
    table.AddRow({"Entropy Decoder",
                  Table::Pct(ph.entropy.energy.Total() / total)});
    table.AddRow({"Inverse Transform",
                  Table::Pct((ph.transform.energy.Total() +
                              ph.quant.energy.Total()) /
                             total)});
    table.AddRow({"Other",
                  Table::Pct((ph.other.energy.Total() +
                              ph.intra.energy.Total()) /
                             total)});
    out.Emit(table);

    const double mc_total =
        ph.subpel.energy.Total() + ph.mc_other.energy.Total();
    Table note("Figure 10 — paper checkpoints");
    note.SetHeader({"claim", "paper", "measured"});
    note.AddRow({"MC dominates decoder energy", "53.4%",
                 Table::Pct(mc_total / total)});
    note.AddRow({"sub-pixel interpolation share", "37.5%",
                 Table::Pct(ph.subpel.energy.Total() / total)});
    note.AddRow({"deblocking filter share", "29.7%",
                 Table::Pct(ph.deblock.energy.Total() / total)});
    out.Emit(note);
    out.Metric("fig10.mc_energy_share", mc_total / total);
    out.Metric("fig10.subpel_share", ph.subpel.energy.Total() / total);
    out.Metric("fig10.deblock_share",
               ph.deblock.energy.Total() / total);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure10)
