/**
 * @file
 * pim_run: the registry-driven kernel driver.
 *
 * Enumerates the KernelRegistry catalog (every PIM-target kernel from
 * Figures 18/19/20) and runs any subset of it on any subset of the
 * three execution targets, at any input scale, with the same telemetry
 * outputs as the figure binaries (--json/--trace/--check-refs).
 *
 *   pim_run --list
 *   pim_run --kernel=texture_tiling --scale=0.25 --json=-
 *   pim_run --kernel='*' --targets=cpu,acc
 *   pim_run --sweep=llc --kernel=browser
 *   pim_run --corpus=/var/cache/pim-corpus --kernel=browser
 *
 * `--sweep=llc` records each matched trace-replayable kernel's access
 * stream ONCE (KernelSession::Record) and derives the whole LLC
 * capacity ladder from that single recording via the one-pass
 * stack-distance engine (SweepRunner::ProfileLlcSweep) — no per-point
 * re-execution, with counters bit-identical to a cold replay per point
 * (tests/test_kernel_registry.cc cross-checks).
 */

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "common/shutdown.h"
#include "serve/corpus_cache.h"
#include "sim/hierarchy.h"
#include "sim/sweep.h"
#include "sim/trace_codec.h"
#include "telemetry/report_json.h"
#include "telemetry/span_tracer.h"
#include "workloads/catalog.h"

// The recorder provenance stamped into corpus manifests (git describe
// of the build; the build system defines it, "unknown" otherwise).
#ifndef PIM_GIT_DESCRIBE
#define PIM_GIT_DESCRIBE "unknown"
#endif

namespace {

using namespace pim;

struct DriverOptions
{
    std::string kernel_pattern; ///< Empty = whole catalog.
    std::string sweep;          ///< Empty = run mode; "llc" = LLC sweep.
    bool compact_trace = false; ///< Sweep from the compact encoding.
    std::string corpus_dir;     ///< Record to / replay from a corpus.
    double scale = 1.0;
    bool want_cpu = true;
    bool want_core = true;
    bool want_acc = true;
    bool list = false;

    bool AllTargets() const { return want_cpu && want_core && want_acc; }
};

/** Corpus `created` provenance: UTC wall-clock, second granularity. */
std::string
NowUtc()
{
    char buf[32];
    const std::time_t t = std::time(nullptr);
    std::tm tm = {};
    gmtime_r(&t, &tm);
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

void
PrintUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "pim_run - registry-driven driver for the paper's PIM-target "
        "kernels\n"
        "\n"
        "usage: pim_run [options]\n"
        "  --list              print the kernel catalog and exit\n"
        "  --kernel=<pattern>  select kernels by slug/name: glob when\n"
        "                      the pattern has * or ?, else substring\n"
        "                      (group names also match)\n"
        "  --targets=<csv>     subset of cpu,core,acc (default: all)\n"
        "  --scale=<f>         linear input-scale multiplier\n"
        "                      (default 1.0 = paper-scale inputs)\n"
        "  --sweep=llc         record each matched kernel once, then\n"
        "                      profile an LLC capacity ladder from the\n"
        "                      single recorded stream\n"
        "  --sweep=study       record once, then answer the full\n"
        "                      multi-axis design study (L1 x LLC ladder\n"
        "                      x write policy, prefetcher telemetry,\n"
        "                      PIM-side traffic) from one profiling\n"
        "                      study (SweepRunner::ProfileStudy)\n"
        "  --compact-trace     with --sweep: hold the recording in the\n"
        "                      block-encoded compact form (identical\n"
        "                      counters; reports compression metrics)\n"
        "  --corpus=<dir>      without --sweep: record each matched\n"
        "                      trace-replayable kernel straight into a\n"
        "                      container file in <dir> (the pim_serve\n"
        "                      corpus format; already-present entries\n"
        "                      are kept).  With --sweep: replay from\n"
        "                      the memory-mapped corpus entry instead\n"
        "                      of RAM, recording it first on a miss\n"
        "  --threads=<n>       sweep worker count (overrides the\n"
        "                      PIM_SWEEP_THREADS environment variable)\n"
        "  --json=<path|->     write the structured JSON run report\n"
        "  --trace=<path>      write a Chrome trace-event file\n"
        "  --check-refs        gate the report against the paper's\n"
        "                      reference table\n"
        "  --filter=<substr>   only run matching output sections\n");
}

/** Parse --targets=cpu,core,acc; returns false on an unknown name. */
bool
ParseTargets(std::string_view csv, DriverOptions &opts)
{
    opts.want_cpu = opts.want_core = opts.want_acc = false;
    while (!csv.empty()) {
        const auto comma = csv.find(',');
        const std::string_view item = csv.substr(0, comma);
        if (item == "cpu" || item == "cpu-only" || item == "cpu_only") {
            opts.want_cpu = true;
        } else if (item == "core" || item == "pim-core" ||
                   item == "pim_core") {
            opts.want_core = true;
        } else if (item == "acc" || item == "pim-acc" ||
                   item == "pim_acc") {
            opts.want_acc = true;
        } else {
            return false;
        }
        if (comma == std::string_view::npos) {
            break;
        }
        csv.remove_prefix(comma + 1);
    }
    return opts.want_cpu || opts.want_core || opts.want_acc;
}

/** Matched specs: whole catalog, a group, or a slug/name pattern. */
std::vector<const core::KernelSpec *>
SelectKernels(const core::KernelRegistry &registry,
              const std::string &pattern)
{
    if (pattern.empty()) {
        return registry.All();
    }
    for (const auto &group : registry.Groups()) {
        if (group == pattern) {
            return registry.Group(group);
        }
    }
    return registry.Match(pattern);
}

void
ListCatalog(bench::BenchOutput &out,
            const std::vector<const core::KernelSpec *> &specs)
{
    Table table("Kernel catalog");
    table.SetHeader(
        {"kernel", "slug", "group", "figure", "trace-replayable"});
    for (const auto *spec : specs) {
        table.AddRow({spec->name, spec->Slug(), spec->group,
                      spec->figure, spec->trace_replayable ? "yes" : "no"});
    }
    out.Emit(table);
    out.Metric("pim_run.catalog_size", static_cast<double>(specs.size()));
}

/** Per-kernel rows for a target subset (no cross-target ratios). */
void
EmitTargetSubset(bench::BenchOutput &out, const DriverOptions &opts,
                 const std::vector<const core::KernelSpec *> &specs,
                 core::KernelSession &session)
{
    Table table("Selected kernels x targets");
    table.SetHeader({"kernel", "target", "energy (pJ)", "time (ns)",
                     "MPKI", "off-chip bytes"});
    auto add_row = [&](const core::RunReport &r) {
        table.AddRow({
            r.kernel,
            r.target_name,
            Table::Num(r.TotalEnergyPj(), 1),
            Table::Num(static_cast<double>(r.TotalTimeNs()), 0),
            Table::Num(r.Mpki(), 2),
            Table::Num(
                static_cast<double>(r.counters.OffChipBytes()), 0),
        });
        const std::string base =
            "pim_run." + Slugify(r.kernel) + "." + Slugify(r.target_name);
        out.Metric(base + ".energy_pj", r.TotalEnergyPj());
        out.Metric(base + ".time_ns",
                   static_cast<double>(r.TotalTimeNs()));
    };
    for (const auto *spec : specs) {
        if (ShutdownRequested()) {
            break; // finish the report with what completed
        }
        out.Section("kernel." + spec->Slug(), [&] {
            if (opts.want_core || opts.want_acc) {
                // PIM targets come from the replayed fast path, which
                // produces the CPU baseline as a by-product.
                const core::KernelResult r = session.Run(*spec);
                if (opts.want_cpu) {
                    add_row(r.cpu);
                }
                if (opts.want_core) {
                    add_row(r.pim_core);
                }
                if (opts.want_acc) {
                    add_row(r.pim_acc);
                }
            } else {
                // CPU only: one native pass, no replay work at all.
                const core::RecordedKernel rec = session.Record(*spec);
                add_row(rec.cpu);
            }
        });
    }
    out.Emit(table);
}

/** Figure-style output: per-group tables + full-catalog headline. */
void
EmitAllTargets(bench::BenchOutput &out,
               const core::KernelRegistry &registry,
               const std::vector<const core::KernelSpec *> &specs,
               core::KernelSession &session)
{
    std::vector<bench::KernelResult> all;
    for (const auto &group : registry.Groups()) {
        if (ShutdownRequested()) {
            break; // finish the report with what completed
        }
        std::vector<const core::KernelSpec *> members;
        for (const auto *spec : specs) {
            if (spec->group == group) {
                members.push_back(spec);
            }
        }
        if (members.empty()) {
            continue;
        }
        out.Section("kernels." + group, [&] {
            std::vector<bench::KernelResult> results;
            for (const auto *spec : members) {
                results.push_back(session.Run(*spec));
            }
            // Partial groups would skew the <group>.avg.* metrics the
            // reference table gates, so those aggregates only appear
            // when the whole group ran.
            const bool complete =
                members.size() == registry.Group(group).size();
            out.KernelGroup(group, members.front()->figure + " kernels",
                            results, complete);
            for (auto &r : results) {
                all.push_back(std::move(r));
            }
        });
    }

    if (specs.size() != registry.size() || all.size() != specs.size()) {
        return;
    }
    out.Section("headline", [&] {
        double core_e = 0, acc_e = 0, core_s = 0, acc_s = 0, movement = 0;
        for (const auto &k : all) {
            core_e += k.EnergySaving(k.pim_core);
            acc_e += k.EnergySaving(k.pim_acc);
            core_s += k.Speedup(k.pim_core);
            acc_s += k.Speedup(k.pim_acc);
            movement += k.cpu.energy.DataMovementFraction();
        }
        const double n = static_cast<double>(all.size());
        out.Metric("headline.movement_share_kernels", movement / n);
        out.Metric("headline.pim_core.energy_reduction", core_e / n);
        out.Metric("headline.pim_acc.energy_reduction", acc_e / n);
        out.Metric("headline.pim_core.speedup", core_s / n);
        out.Metric("headline.pim_acc.speedup", acc_s / n);

        Table summary("Catalog headline (all kernels)");
        summary.SetHeader({"metric", "PIM-Core", "PIM-Acc"});
        summary.AddRow({"avg energy reduction", Table::Pct(core_e / n),
                        Table::Pct(acc_e / n)});
        summary.AddRow({"avg speedup", Table::Num(core_s / n, 2) + "x",
                        Table::Num(acc_s / n, 2) + "x"});
        summary.AddRow({"avg data movement share (CPU)",
                        Table::Pct(movement / n), ""});
        out.Emit(summary);
    });
}

/**
 * The mmap-backed corpus entry for @p spec, recording and storing it
 * first on a miss (so a cold corpus warms itself as the sweep runs).
 * Returns nullopt only when the store or map fails — disk trouble —
 * in which case the caller falls back to an in-RAM recording.
 */
std::optional<sim::MappedCompactTrace>
MapCorpusTrace(serve::CorpusCache &corpus, const core::KernelSpec &spec,
               core::KernelSession &session)
{
    const std::string key =
        serve::CorpusKey(spec.Slug(), session.scale());
    auto mapped = corpus.Map(key);
    if (!mapped) {
        // Record straight into the compact encoded form: the raw
        // 8-byte-per-entry stream never materializes.
        const core::RecordedCompactKernel rec =
            session.RecordCompact(spec);
        corpus.Store(key, spec.Slug(), session.scale(), rec.trace,
                     PIM_GIT_DESCRIBE, NowUtc());
        mapped = corpus.Map(key);
    }
    return mapped;
}

/**
 * `--corpus=DIR` record mode: stream each matched trace-replayable
 * kernel into a digest-named container file under DIR, stamping the
 * manifest with recorder/created provenance.  Idempotent — entries
 * already present for (kernel, scale) are kept, not re-recorded.
 */
void
EmitCorpusRecord(bench::BenchOutput &out, serve::CorpusCache &corpus,
                 const std::string &dir,
                 const std::vector<const core::KernelSpec *> &specs,
                 core::KernelSession &session)
{
    Table table("Trace corpus @ " + dir);
    table.SetHeader({"kernel", "status", "entries", "file bytes"});
    for (const auto *spec : specs) {
        if (ShutdownRequested()) {
            break; // finish the report with what completed
        }
        if (!spec->trace_replayable) {
            continue;
        }
        out.Section("corpus." + spec->Slug(), [&] {
            const std::string key =
                serve::CorpusKey(spec->Slug(), session.scale());
            std::string status = "recorded";
            auto mapped = corpus.Map(key);
            if (mapped) {
                status = "cached";
            } else {
                mapped = MapCorpusTrace(corpus, *spec, session);
                if (!mapped) {
                    status = "FAILED";
                }
            }
            const auto entries =
                mapped ? mapped->entries() : std::uint64_t{0};
            const auto bytes =
                mapped ? static_cast<std::uint64_t>(mapped->SizeBytes())
                       : std::uint64_t{0};
            table.AddRow({spec->Slug(), status, std::to_string(entries),
                          std::to_string(bytes)});
            const std::string prefix = "pim_run.corpus." + spec->Slug();
            out.Metric(prefix + ".entries",
                       static_cast<double>(entries));
            out.Metric(prefix + ".file_bytes",
                       static_cast<double>(bytes));
        });
    }
    out.Emit(table);
    out.Metric("pim_run.corpus.files",
               static_cast<double>(corpus.files()));
}

/** The LLC capacity ladder swept around the host's 2 MiB design point. */
std::vector<sim::CacheConfig>
LlcLadder(const sim::HierarchyConfig &base)
{
    std::vector<sim::CacheConfig> points;
    for (Bytes size = 256_KiB; size <= 8_MiB; size *= 2) {
        sim::CacheConfig cfg = *base.llc;
        cfg.size = size;
        points.push_back(cfg);
    }
    return points;
}

/** The per-kernel LLC ladder table + metrics (shared by both the
 *  in-RAM and corpus-backed sweep paths). */
void
EmitLlcTable(bench::BenchOutput &out, const core::KernelSpec &spec,
             const std::vector<sim::CacheConfig> &ladder,
             const std::vector<sim::PerfCounters> &points)
{
    Table table(spec.name + " — LLC capacity sweep (recorded "
                            "once, profiled analytically)");
    table.SetHeader({"LLC", "LLC miss rate", "LLC misses",
                     "writebacks", "DRAM bytes"});
    const std::string prefix = "pim_run.sweep." + spec.Slug() + ".llc_";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const sim::PerfCounters &c = points[i];
        const auto kib =
            static_cast<unsigned long long>(ladder[i].size / 1024);
        table.AddRow({
            std::to_string(kib) + " KiB",
            Table::Pct(c.llc.MissRate()),
            std::to_string(c.llc.Misses()),
            std::to_string(c.llc.writebacks),
            std::to_string(static_cast<unsigned long long>(
                c.dram.TotalBytes())),
        });
        const std::string key = prefix + std::to_string(kib) + "kib";
        out.Metric(key + ".miss_rate", c.llc.MissRate());
        out.Metric(key + ".dram_bytes",
                   static_cast<double>(c.dram.TotalBytes()));
    }
    out.Emit(table);
}

void
EmitLlcSweep(bench::BenchOutput &out, bool compact,
             serve::CorpusCache *corpus,
             const std::vector<const core::KernelSpec *> &specs,
             core::KernelSession &session)
{
    const sim::HierarchyConfig base = sim::HostHierarchyConfig();
    const std::vector<sim::CacheConfig> ladder = LlcLadder(base);
    const sim::SweepRunner runner;

    for (const auto *spec : specs) {
        if (ShutdownRequested()) {
            break; // finish the report with what completed
        }
        if (!spec->trace_replayable) {
            std::printf("pim_run: skipping %s (not trace-replayable)\n",
                        spec->name.c_str());
            continue;
        }
        out.Section("sweep." + spec->Slug(), [&] {
            std::vector<sim::PerfCounters> points;
            if (corpus != nullptr) {
                // Replay out-of-core from the memory-mapped corpus
                // entry (recording it first on a miss): resident sweep
                // footprint is O(block buffers), not O(trace).
                auto mapped = MapCorpusTrace(*corpus, *spec, session);
                if (mapped) {
                    out.Metric("pim_run.sweep." + spec->Slug() +
                                   ".corpus_bytes_mapped",
                               static_cast<double>(mapped->SizeBytes()));
                    points = runner.ProfileLlcSweep(*mapped, base, ladder);
                } else {
                    // Disk trouble: fall back to an in-RAM recording.
                    const core::RecordedCompactKernel rec =
                        session.RecordCompact(*spec);
                    points = runner.ProfileLlcSweep(rec.trace, base, ladder);
                }
                EmitLlcTable(out, *spec, ladder, points);
                return;
            }
            // ONE native recording pass; every ladder point is derived
            // from the recorded stream analytically.
            core::RecordedKernel rec = session.Record(*spec);
            if (compact) {
                // Encode the recording, drop the raw form, and profile
                // from the encoded stream: the sweep's resident trace
                // footprint is the compact size, counters unchanged.
                const std::string tp =
                    "pim_run.sweep." + spec->Slug() + ".trace_";
                const sim::CompactTrace encoded =
                    sim::CompactTrace::Encode(rec.trace);
                out.Metric(tp + "bytes",
                           static_cast<double>(rec.trace.SizeBytes()));
                out.Metric(tp + "compact_bytes",
                           static_cast<double>(encoded.SizeBytes()));
                out.Metric(tp + "compression_ratio",
                           encoded.CompressionRatio());
                rec.trace = sim::AccessTrace{};
                points = runner.ProfileLlcSweep(encoded, base, ladder);
            } else {
                points = runner.ProfileLlcSweep(rec.trace, base, ladder);
            }
            EmitLlcTable(out, *spec, ladder, points);
        });
    }
}

/**
 * The multi-axis study grid --sweep=study answers per kernel: both host
 * L1 geometries x an LLC capacity ladder (capacity via associativity at
 * the host's fixed set count, so the whole ladder is one profiling
 * pass) x the write-policy variants at the host design point, plus both
 * PIM targets — all from one recording and two trace decodes
 * (SweepRunner::ProfileStudy).
 */
sim::StudySpec
StudyGrid()
{
    const sim::HierarchyConfig host = sim::HostHierarchyConfig();
    sim::StudySpec spec;
    spec.dram = host.dram;
    spec.l1_points.push_back(host.l1);
    sim::CacheConfig small_l1 = host.l1;
    small_l1.size = 32_KiB;
    spec.l1_points.push_back(small_l1);

    const std::size_t sets =
        host.llc->size / (host.llc->associativity * host.llc->line_bytes);
    for (const std::uint32_t a : {1u, 2u, 4u, 8u, 16u, 32u}) {
        sim::CacheConfig cfg = *host.llc;
        cfg.associativity = a;
        cfg.size = sets * a * cfg.line_bytes;
        spec.llc_points.push_back(cfg);
    }
    for (const auto policy : {sim::WritePolicy::kWriteThroughAllocate,
                              sim::WritePolicy::kWriteThroughNoAllocate}) {
        sim::CacheConfig cfg = *host.llc;
        cfg.policy = policy;
        spec.llc_points.push_back(cfg);
    }
    spec.model_prefetcher = true;

    const sim::HierarchyConfig core = sim::PimCoreHierarchyConfig();
    const sim::HierarchyConfig acc = sim::PimAccelHierarchyConfig();
    spec.pim_points = {sim::StudyPimPoint{"pim_core", core.l1, core.dram},
                       sim::StudyPimPoint{"pim_acc", acc.l1, acc.dram}};
    return spec;
}

void
EmitStudySweep(bench::BenchOutput &out, bool compact,
               serve::CorpusCache *corpus,
               const std::vector<const core::KernelSpec *> &specs,
               core::KernelSession &session)
{
    const sim::StudySpec grid = StudyGrid();
    const sim::SweepRunner runner;

    for (const auto *spec : specs) {
        if (ShutdownRequested()) {
            break; // finish the report with what completed
        }
        if (!spec->trace_replayable) {
            std::printf("pim_run: skipping %s (not trace-replayable)\n",
                        spec->name.c_str());
            continue;
        }
        out.Section("study." + spec->Slug(), [&] {
            const std::string prefix = "pim_run.study." + spec->Slug();
            sim::StudyResult study;
            if (corpus != nullptr) {
                // Out-of-core: the study's two profiling passes stream
                // blocks from the mapped container file.
                auto mapped = MapCorpusTrace(*corpus, *spec, session);
                if (mapped) {
                    out.Metric(prefix + ".corpus_bytes_mapped",
                               static_cast<double>(mapped->SizeBytes()));
                    study = runner.ProfileStudy(*mapped, grid);
                } else {
                    const core::RecordedCompactKernel rec =
                        session.RecordCompact(*spec);
                    study = runner.ProfileStudy(rec.trace, grid);
                }
            } else if (compact) {
                core::RecordedKernel rec = session.Record(*spec);
                const sim::CompactTrace encoded =
                    sim::CompactTrace::Encode(rec.trace);
                out.Metric(prefix + ".trace_compact_bytes",
                           static_cast<double>(encoded.SizeBytes()));
                rec.trace = sim::AccessTrace{};
                study = runner.ProfileStudy(encoded, grid);
            } else {
                const core::RecordedKernel rec = session.Record(*spec);
                study = runner.ProfileStudy(rec.trace, grid);
            }

            Table table(spec->name +
                        " — one-pass design study (host grid + PIM)");
            table.SetHeader({"L1", "LLC", "policy", "LLC miss rate",
                             "DRAM bytes", "writebacks"});
            for (std::size_t i = 0; i < grid.l1_points.size(); ++i) {
                const auto l1_kib = static_cast<unsigned long long>(
                    grid.l1_points[i].size / 1024);
                for (std::size_t j = 0; j < grid.llc_points.size(); ++j) {
                    const sim::CacheConfig &llc = grid.llc_points[j];
                    const sim::StudyPointResult &p = study.host[i][j];
                    const auto llc_kib =
                        static_cast<unsigned long long>(llc.size / 1024);
                    table.AddRow({
                        std::to_string(l1_kib) + " KiB",
                        std::to_string(llc_kib) + " KiB",
                        sim::WritePolicyName(llc.policy),
                        Table::Pct(p.counters.llc.MissRate()),
                        std::to_string(static_cast<unsigned long long>(
                            p.counters.dram.TotalBytes())),
                        std::to_string(p.counters.llc.writebacks) +
                            (p.writebacks_exact ? "" : " (approx)"),
                    });
                    const std::string key =
                        prefix + ".l1_" + std::to_string(l1_kib) +
                        "kib.llc_" + std::to_string(llc_kib) + "kib." +
                        sim::WritePolicyName(llc.policy);
                    out.Metric(key + ".miss_rate",
                               p.counters.llc.MissRate());
                    out.Metric(key + ".dram_bytes",
                               static_cast<double>(
                                   p.counters.dram.TotalBytes()));
                    out.Metric(key + ".writebacks_exact",
                               p.writebacks_exact ? 1.0 : 0.0);
                }
            }
            for (std::size_t j = 0; j < grid.pim_points.size(); ++j) {
                const sim::StudyPointResult &p = study.pim[j];
                table.AddRow({
                    grid.pim_points[j].name,
                    "-",
                    "-",
                    Table::Pct(p.counters.l1.MissRate()),
                    std::to_string(static_cast<unsigned long long>(
                        p.counters.dram.TotalBytes())),
                    "0",
                });
                out.Metric(prefix + "." + grid.pim_points[j].name +
                               ".dram_bytes",
                           static_cast<double>(
                               p.counters.dram.TotalBytes()));
            }
            out.Emit(table);

            // The prefetcher axis at the host design point (64 KiB L1,
            // 2 MiB write-back LLC).
            const sim::PrefetchStats &pf = study.host[0][3].prefetch;
            out.Metric(prefix + ".prefetch.accuracy", pf.Accuracy());
            out.Metric(prefix + ".prefetch.coverage", pf.Coverage());
            out.Metric(prefix + ".trace_replays",
                       static_cast<double>(study.trace_replays));
            out.Metric(prefix + ".profile_passes",
                       static_cast<double>(study.profile_passes));
            out.Metric(prefix + ".shards",
                       static_cast<double>(study.shards));
            out.Metric(prefix + ".sweep_threads",
                       static_cast<double>(runner.thread_count()));
        });
    }
}

int
Main(int argc, char **argv)
{
    bench::BenchOptions bench_opts = bench::ParseBenchArgs(&argc, argv);
    if (!bench_opts.error.empty()) {
        std::fprintf(stderr, "pim_run: %s\n", bench_opts.error.c_str());
        return 1;
    }

    DriverOptions opts;
    opts.list = bench_opts.list;
    bench_opts.list = false; // BenchOutput's section --list is not ours.
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--kernel=", 0) == 0) {
            opts.kernel_pattern = arg.substr(9);
        } else if (arg.rfind("--targets=", 0) == 0) {
            if (!ParseTargets(arg.substr(10), opts)) {
                std::fprintf(stderr,
                             "pim_run: bad --targets value '%s' "
                             "(expected csv of cpu,core,acc)\n",
                             std::string(arg.substr(10)).c_str());
                return 1;
            }
        } else if (arg.rfind("--scale=", 0) == 0) {
            const std::string value(arg.substr(8));
            char *end = nullptr;
            opts.scale = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' ||
                !(opts.scale > 0.0)) {
                std::fprintf(stderr,
                             "pim_run: bad --scale value '%s' "
                             "(expected a positive number)\n",
                             value.c_str());
                return 1;
            }
        } else if (arg.rfind("--sweep=", 0) == 0) {
            opts.sweep = arg.substr(8);
            if (opts.sweep != "llc" && opts.sweep != "study") {
                std::fprintf(stderr,
                             "pim_run: unknown sweep '%s' "
                             "(supported: llc, study)\n",
                             opts.sweep.c_str());
                return 1;
            }
        } else if (arg == "--compact-trace") {
            opts.compact_trace = true;
        } else if (arg.rfind("--corpus=", 0) == 0) {
            opts.corpus_dir = arg.substr(9);
            if (opts.corpus_dir.empty()) {
                std::fprintf(stderr,
                             "pim_run: --corpus needs a directory\n");
                return 1;
            }
        } else if (arg == "--help" || arg == "-h") {
            PrintUsage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "pim_run: unknown argument '%s'\n",
                         std::string(arg).c_str());
            PrintUsage(stderr);
            return 1;
        }
    }

    if (!bench_opts.trace_path.empty()) {
        telemetry::Tracer::Global().SetEnabled(true);
    }
    if (bench_opts.threads != 0) {
        sim::SweepRunner::SetDefaultThreads(bench_opts.threads);
    }
    if (opts.compact_trace && opts.sweep.empty()) {
        std::fprintf(stderr,
                     "pim_run: --compact-trace requires --sweep\n");
        return 1;
    }

    // Ctrl-C / SIGTERM finishes the current kernel, emits the report
    // for everything completed, and exits 0 — long sweeps never die
    // with half-written JSON (a second signal kills the usual way).
    InstallShutdownHandler();
    workloads::EnsureKernelCatalog();
    const core::KernelRegistry &registry = core::KernelRegistry::Global();
    const std::vector<const core::KernelSpec *> specs =
        SelectKernels(registry, opts.kernel_pattern);
    if (specs.empty()) {
        std::fprintf(stderr, "pim_run: no kernels match '%s'\n",
                     opts.kernel_pattern.c_str());
        return 1;
    }

    bench::BenchOutput out("pim_run", std::move(bench_opts));
    out.Metric("pim_run.scale", opts.scale);
    // Same normalization metric BenchMain emits for the figure benches.
    out.Metric("bench.sweep_threads",
               static_cast<double>(sim::SweepRunner().thread_count()));

    if (opts.list) {
        ListCatalog(out, specs);
        return out.Finish();
    }

    core::KernelSession session(opts.scale);
    std::optional<serve::CorpusCache> corpus;
    if (!opts.corpus_dir.empty()) {
        corpus.emplace(opts.corpus_dir);
    }
    serve::CorpusCache *corpus_ptr = corpus ? &*corpus : nullptr;
    if (opts.sweep == "study") {
        EmitStudySweep(out, opts.compact_trace, corpus_ptr, specs,
                       session);
    } else if (!opts.sweep.empty()) {
        EmitLlcSweep(out, opts.compact_trace, corpus_ptr, specs,
                     session);
    } else if (corpus) {
        EmitCorpusRecord(out, *corpus, opts.corpus_dir, specs, session);
    } else if (opts.AllTargets()) {
        EmitAllTargets(out, registry, specs, session);
    } else {
        EmitTargetSubset(out, opts, specs, session);
    }
    return out.Finish();
}

} // namespace

int
main(int argc, char **argv)
{
    return Main(argc, argv);
}
