/**
 * @file
 * Simulator-throughput microbenchmark: simulated accesses per second on
 * trace replay, the metric the batched access-streaming work optimizes.
 *
 * Both engines are kept and compared:
 *
 *   - The **seed baseline**: `SeedCache` below is a faithful copy of the
 *     cache model this repo shipped with — one virtual `Access` per
 *     trace entry, divide/modulo set indexing, a full associativity
 *     scan per probe, no coalescing filter.  This is what every replay
 *     and every instrumented kernel paid before this change.
 *   - The **current engine**: packed 8-byte entries streamed through
 *     `MemorySink::AccessBatch` into the shift/mask + MRU-way +
 *     coalescing-filter `Cache`, optionally fanned out across
 *     hierarchies by `SweepRunner`.
 *
 * The two must produce bit-equal counters (cross-checked at the end of
 * each table); only the wall-clock may differ.  Two recorded kernel
 * streams bound the spectrum: texture tiling issues coarse 128-byte
 * row spans, LZO compression issues 1-4-byte probes — the fine-grained
 * pattern the same-line coalescing filter exists for.
 */

#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/rng.h"
#include "sim/hierarchy.h"
#include "sim/sharded_replay.h"
#include "sim/simd.h"
#include "sim/sweep.h"
#include "sim/trace.h"
#include "sim/trace_codec.h"
#include "workloads/browser/lzo.h"
#include "workloads/browser/page_data.h"
#include "workloads/browser/texture_tiler.h"

namespace {

using namespace pim;

/**
 * The seed repo's cache model, kept verbatim as the scalar baseline:
 * divide/modulo set indexing and a full-set probe on every access.
 * Counter semantics are identical to sim::Cache by construction, which
 * the benchmark verifies after every comparison.
 */
class SeedCache final : public sim::MemorySink
{
  public:
    SeedCache(const sim::CacheConfig &config, sim::MemorySink &below)
        : config_(config), below_(&below)
    {
        num_sets_ =
            config_.size / (config_.line_bytes * config_.associativity);
        lines_.resize(num_sets_ * config_.associativity);
    }

    void
    Access(Address addr, Bytes bytes, sim::AccessType type) override
    {
        if (bytes == 0) {
            return;
        }
        const Bytes line = config_.line_bytes;
        Address cur = addr & ~(line - 1);
        const Address end = addr + bytes;
        for (; cur < end; cur += line) {
            AccessLine(cur, type);
        }
    }

    const sim::CacheStats &stats() const { return stats_; }

  private:
    struct Line
    {
        Address tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::size_t
    SetIndex(Address line_addr) const
    {
        return static_cast<std::size_t>((line_addr / config_.line_bytes) %
                                        num_sets_);
    }

    void
    AccessLine(Address line_addr, sim::AccessType type)
    {
        const std::size_t set = SetIndex(line_addr);
        Line *base = &lines_[set * config_.associativity];
        ++tick_;

        Line *victim = base;
        for (std::uint32_t way = 0; way < config_.associativity; ++way) {
            Line &l = base[way];
            if (l.valid && l.tag == line_addr) {
                l.lru = tick_;
                if (type == sim::AccessType::kWrite) {
                    l.dirty = true;
                    ++stats_.write_hits;
                } else {
                    ++stats_.read_hits;
                }
                return;
            }
            if (!l.valid) {
                victim = &l;
            } else if (victim->valid && l.lru < victim->lru) {
                victim = &l;
            }
        }

        if (type == sim::AccessType::kWrite) {
            ++stats_.write_misses;
        } else {
            ++stats_.read_misses;
        }
        if (victim->valid && victim->dirty) {
            ++stats_.writebacks;
            below_->Access(victim->tag, config_.line_bytes,
                           sim::AccessType::kWrite);
        }
        below_->Access(line_addr, config_.line_bytes,
                       sim::AccessType::kRead);
        victim->valid = true;
        victim->dirty = (type == sim::AccessType::kWrite);
        victim->tag = line_addr;
        victim->lru = tick_;
    }

    sim::CacheConfig config_;
    sim::MemorySink *below_;
    std::size_t num_sets_ = 0;
    std::vector<Line> lines_;
    sim::CacheStats stats_;
    std::uint64_t tick_ = 0;
};

/** Seed-model host hierarchy (L1 + LLC over a DRAM counter). */
struct SeedHierarchy
{
    explicit SeedHierarchy(const sim::HierarchyConfig &config)
        : dram(config.dram), llc(*config.llc, dram), l1(config.l1, llc)
    {
    }

    sim::PerfCounters
    Snapshot() const
    {
        sim::PerfCounters pc;
        pc.l1 = l1.stats();
        pc.llc = llc.stats();
        pc.has_llc = true;
        pc.dram = dram.stats();
        return pc;
    }

    sim::DramCounter dram;
    SeedCache llc;
    SeedCache l1;
};

/** Record the texture-tiling access stream (coarse 128 B row spans). */
sim::AccessTrace
RecordTilingTrace()
{
    Rng rng(21);
    browser::Bitmap linear(1024, 1024);
    linear.Randomize(rng);
    browser::TiledTexture tiled(1024, 1024);

    sim::AccessTrace trace;
    core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    ctx.AttachTrace(trace);
    browser::TileTexture(linear, tiled, ctx);
    return trace;
}

/** Record the LZO compression stream (fine-grained 1-4 B probes). */
sim::AccessTrace
RecordCompressionTrace()
{
    Rng rng(22);
    SimBuffer<std::uint8_t> pages(512 * 1024);
    browser::FillPageLikeData(pages, rng, 0.4);
    SimBuffer<std::uint8_t> dst(browser::LzoCompressBound(pages.size()));

    sim::AccessTrace trace;
    core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    ctx.AttachTrace(trace);
    browser::LzoCompress(pages, pages.size(), dst, ctx);
    return trace;
}

void
BM_ReplaySeedEngine(benchmark::State &state)
{
    const sim::AccessTrace trace = RecordTilingTrace();
    for (auto _ : state) {
        SeedHierarchy sh(sim::HostHierarchyConfig());
        trace.ReplayIntoScalar(sh.l1);
        benchmark::DoNotOptimize(sh.Snapshot().dram.TotalBytes());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_ReplaySeedEngine)->Unit(benchmark::kMillisecond);

void
BM_ReplayBatched(benchmark::State &state)
{
    const sim::AccessTrace trace = RecordTilingTrace();
    for (auto _ : state) {
        sim::MemoryHierarchy mh(sim::HostHierarchyConfig());
        trace.ReplayInto(mh.Top());
        benchmark::DoNotOptimize(mh.Snapshot().dram.TotalBytes());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_ReplayBatched)->Unit(benchmark::kMillisecond);

/** Wall-clock one replay run; returns seconds. */
template <typename Fn>
double
TimeRun(const Fn &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

bool
SameCounters(const sim::PerfCounters &a, const sim::PerfCounters &b)
{
    const auto same_cache = [](const sim::CacheStats &x,
                               const sim::CacheStats &y) {
        return x.read_hits == y.read_hits &&
               x.read_misses == y.read_misses &&
               x.write_hits == y.write_hits &&
               x.write_misses == y.write_misses &&
               x.writebacks == y.writebacks;
    };
    return same_cache(a.l1, b.l1) && same_cache(a.llc, b.llc) &&
           a.has_llc == b.has_llc &&
           a.dram.read_requests == b.dram.read_requests &&
           a.dram.write_requests == b.dram.write_requests &&
           a.dram.read_bytes == b.dram.read_bytes &&
           a.dram.write_bytes == b.dram.write_bytes;
}

void
PrintOneStream(bench::BenchOutput &out, const char *section,
               const char *title, const sim::AccessTrace &trace)
{
    const double accesses = static_cast<double>(trace.size());

    // Best-of-3 wall-clock for each path to shave scheduler noise.
    const auto best_of = [&](const std::function<double()> &run) {
        double best = run();
        for (int i = 0; i < 2; ++i) {
            best = std::min(best, run());
        }
        return best;
    };

    sim::PerfCounters seed_pc, scalar_pc, batched_pc;
    const double seed_s = best_of([&] {
        return TimeRun([&] {
            SeedHierarchy sh(sim::HostHierarchyConfig());
            trace.ReplayIntoScalar(sh.l1);
            seed_pc = sh.Snapshot();
        });
    });
    const double scalar_s = best_of([&] {
        return TimeRun([&] {
            sim::MemoryHierarchy mh(sim::HostHierarchyConfig());
            trace.ReplayIntoScalar(mh.Top());
            scalar_pc = mh.Snapshot();
        });
    });
    const double batched_s = best_of([&] {
        return TimeRun([&] {
            sim::MemoryHierarchy mh(sim::HostHierarchyConfig());
            trace.ReplayInto(mh.Top());
            batched_pc = mh.Snapshot();
        });
    });

    // Parallel sweep: 8 host-hierarchy design points at once.
    const sim::SweepRunner runner;
    const std::vector<sim::HierarchyConfig> sweep_configs(
        8, sim::HostHierarchyConfig());
    const double sweep_s = best_of([&] {
        return TimeRun(
            [&] { runner.ReplayTrace(trace, sweep_configs); });
    });
    const double sweep_accesses =
        accesses * static_cast<double>(sweep_configs.size());

    Table table(title);
    table.SetHeader({"path", "accesses", "time (ms)", "Maccesses/s",
                     "speedup vs seed"});
    const auto row = [&](const char *name, double n, double seconds) {
        table.AddRow({
            name,
            Table::Num(n / 1e6, 2) + "M",
            Table::Num(seconds * 1e3, 1),
            Table::Num(n / seconds / 1e6, 1),
            Table::Num((n / seconds) / (accesses / seed_s), 2) + "x",
        });
    };
    row("seed engine (scalar, div/mod, full scan)", accesses, seed_s);
    row("current cache, scalar dispatch", accesses, scalar_s);
    row("current cache, batched (AccessBatch)", accesses, batched_s);
    row("batched + SweepRunner x8", sweep_accesses, sweep_s);
    out.Emit(table);

    const std::string prefix = std::string("sim_throughput.") + section;
    out.Metric(prefix + ".trace.bytes",
               static_cast<double>(trace.SizeBytes()));
    out.Metric(prefix + ".batched_maccess_per_s",
               accesses / batched_s / 1e6);
    out.Metric(prefix + ".batched_speedup_vs_seed",
               (accesses / batched_s) / (accesses / seed_s));

    std::printf("counters seed == scalar == batched: %s  (threads: %u)\n\n",
                SameCounters(seed_pc, batched_pc) &&
                        SameCounters(scalar_pc, batched_pc)
                    ? "yes"
                    : "NO",
                runner.thread_count());
}

/**
 * The one-pass sweep study (this PR's headline): an N-point LLC
 * capacity sweep of the tiling stream, phrased at a fixed set count so
 * capacity grows with associativity.  Three engines run the identical
 * sweep:
 *
 *   per-config  — ReplayTrace: N full cold replays (the reference),
 *   fan-out     — ReplayTraceFanout: one L1 pass per worker shard,
 *                 miss batches fed to all N LLC stacks while hot,
 *   profiler    — ProfileLlcSweep: one L1 pass + ONE stack-distance
 *                 pass over its miss stream, every point read out of
 *                 the reuse-distance histogram analytically.
 *
 * Counters must be bit-identical across all three (checked every run);
 * only wall-clock may differ.
 */
void
PrintSweepStudy(bench::BenchOutput &out)
{
    // 512x512 keeps the quick (CI) run under a second per engine.
    Rng rng(21);
    browser::Bitmap linear(512, 512);
    linear.Randomize(rng);
    browser::TiledTexture tiled(512, 512);
    sim::AccessTrace trace;
    {
        core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
        ctx.AttachTrace(trace);
        browser::TileTexture(linear, tiled, ctx);
        ctx.DetachTrace();
    }

    // Fixed 1024-set LLC geometry, capacity swept through
    // associativity: 64 KiB ... 4 MiB in 12 points, one profiling
    // pass covers them all.
    const std::vector<std::uint32_t> assocs = {1,  2,  3,  4,  6,  8,
                                               12, 16, 24, 32, 48, 64};
    constexpr std::size_t kSets = 1024;
    constexpr Bytes kLine = 64;
    std::vector<sim::HierarchyConfig> configs;
    std::vector<sim::CacheConfig> llc_points;
    for (const std::uint32_t a : assocs) {
        sim::HierarchyConfig hier = sim::HostHierarchyConfig();
        hier.llc->size = kSets * a * kLine;
        hier.llc->associativity = a;
        llc_points.push_back(*hier.llc);
        configs.push_back(std::move(hier));
    }

    const auto best_of = [&](const std::function<double()> &run) {
        double best = run();
        for (int i = 0; i < 2; ++i) {
            best = std::min(best, run());
        }
        return best;
    };

    const sim::SweepRunner runner;
    std::vector<sim::PerfCounters> ref, fanout, profiled;
    const double per_config_s = best_of([&] {
        return TimeRun(
            [&] { ref = runner.ReplayTrace(trace, configs); });
    });
    const double fanout_s = best_of([&] {
        return TimeRun(
            [&] { fanout = runner.ReplayTraceFanout(trace, configs); });
    });
    const double profiler_s = best_of([&] {
        return TimeRun([&] {
            profiled = runner.ProfileLlcSweep(
                trace, sim::HostHierarchyConfig(), llc_points);
        });
    });

    bool fanout_same = true, profiler_same = true;
    for (std::size_t i = 0; i < configs.size(); ++i) {
        fanout_same = fanout_same && SameCounters(ref[i], fanout[i]);
        profiler_same =
            profiler_same && SameCounters(ref[i], profiled[i]);
    }

    Table table("One-pass sweep — 12-point LLC capacity sweep, "
                "tiling stream (64 KiB - 4 MiB)");
    table.SetHeader(
        {"engine", "trace passes", "time (ms)", "speedup", "exact"});
    const auto row = [&](const char *name, const char *passes,
                         double seconds, bool exact) {
        table.AddRow({
            name,
            passes,
            Table::Num(seconds * 1e3, 1),
            Table::Num(per_config_s / seconds, 2) + "x",
            exact ? "bit-identical" : "MISMATCH",
        });
    };
    row("per-config replay (reference)", "12", per_config_s, true);
    row("fan-out replay (shared L1)", "1/shard", fanout_s, fanout_same);
    row("stack-distance profiler", "1 (+miss stream)", profiler_s,
        profiler_same);
    out.Emit(table);

    out.Metric("sim_throughput.sweep.configs",
               static_cast<double>(configs.size()));
    out.Metric("sim_throughput.sweep.trace.bytes",
               static_cast<double>(trace.SizeBytes()));
    out.Metric("sim_throughput.sweep.per_config_ms", per_config_s * 1e3);
    out.Metric("sim_throughput.sweep.fanout_ms", fanout_s * 1e3);
    out.Metric("sim_throughput.sweep.profiler_ms", profiler_s * 1e3);
    out.Metric("sim_throughput.sweep.fanout_speedup",
               per_config_s / fanout_s);
    out.Metric("sim_throughput.sweep.profiler_speedup",
               per_config_s / profiler_s);
    out.Metric("sim_throughput.sweep.bit_identical",
               fanout_same && profiler_same ? 1.0 : 0.0);

    std::printf("sweep counters fan-out %s / profiler %s the "
                "per-config reference (threads: %u)\n\n",
                fanout_same ? "match" : "DO NOT match",
                profiler_same ? "match" : "DO NOT match",
                runner.thread_count());
}

/**
 * The generalized one-pass study (this PR's headline): a two-level
 * host-sensitivity grid — every (L1 geometry x LLC capacity/policy
 * ladder) combination plus the raw-trace PIM targets — answered two
 * ways:
 *
 *   fan-out  — ReplayTraceFanout: the reference fast path.  One L1
 *              simulation per (shard of a) group, miss batches fed to
 *              every member's LLC/DRAM stack; cost grows with the
 *              number of LLC design points.
 *   study    — ProfileStudy: one L1 simulation per distinct L1
 *              geometry, its miss stream fanned into ONE nested
 *              stack-distance pass per (line, sets, allocate) group;
 *              every LLC point on the ladder is an O(histogram)
 *              readout, so cost is independent of ladder length.
 *
 * Counters must be bit-identical at every tracked design point
 * (checked each run; CI fails if sim_throughput.profiler.bit_identical
 * is not 1) and the study must hold a >= 5x advantage, which CI also
 * gates.  The stream prefetcher axis is modeled in a separate untimed
 * pass (it adds telemetry, not counters) so the timed comparison stays
 * apples-to-apples.
 */
/** First-ladder length in ProfilerStudyGrid (prefetch sample index). */
constexpr std::size_t kStudyFirstLadderLen = 28;

/**
 * The 122-point study grid shared by the profiler and profiler-shard
 * sections: two host L1 geometries x a 60-point LLC ladder (three set
 * counts, write-back plus write-through and no-write-allocate
 * variants), plus both PIM targets.
 */
sim::StudySpec
ProfilerStudyGrid()
{
    sim::StudySpec spec;
    const sim::HierarchyConfig host = sim::HostHierarchyConfig();
    spec.dram = host.dram;
    sim::CacheConfig small_l1 = host.l1;
    small_l1.size = 32_KiB;
    spec.l1_points = {host.l1, small_l1};
    // A dense associativity (= capacity) ladder: every point in a
    // (set count, allocate) group beyond the first is a free
    // histogram readout for the study, while costing fan-out one more
    // LLC simulation per L1 geometry.
    const std::vector<std::uint32_t> ladder = {
        1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14,
        15, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 64};
    static_assert(kStudyFirstLadderLen == 28, "keep in sync");
    constexpr std::size_t kSets = 1024;
    constexpr Bytes kLine = 64;
    for (const std::uint32_t a : ladder) {
        spec.llc_points.push_back(
            sim::CacheConfig{"llc", kSets * a * kLine, a, kLine});
    }
    // Two more set-count ladders: each costs the study ONE extra
    // profiling pass, while costing fan-out one LLC simulation per
    // point per L1.
    for (const std::uint32_t a : {1u,  2u,  3u,  4u,  6u,  8u,  10u,
                                  12u, 16u, 20u, 24u, 32u, 40u, 48u,
                                  56u, 64u}) {
        spec.llc_points.push_back(
            sim::CacheConfig{"llc", 2 * kSets * a * kLine, a, kLine});
    }
    for (const std::uint32_t a :
         {1u, 2u, 4u, 8u, 16u, 32u, 48u, 64u}) {
        spec.llc_points.push_back(
            sim::CacheConfig{"llc", kSets / 2 * a * kLine, a, kLine});
    }
    for (const std::uint32_t a : {2u, 4u, 8u, 16u}) {
        sim::CacheConfig wt{"llc", kSets * a * kLine, a, kLine};
        wt.policy = sim::WritePolicy::kWriteThroughAllocate;
        spec.llc_points.push_back(wt);
        wt.policy = sim::WritePolicy::kWriteThroughNoAllocate;
        spec.llc_points.push_back(wt);
    }
    const sim::HierarchyConfig pim_core = sim::PimCoreHierarchyConfig();
    const sim::HierarchyConfig pim_accel =
        sim::PimAccelHierarchyConfig();
    spec.pim_points.push_back(
        sim::StudyPimPoint{"pim-core", pim_core.l1, pim_core.dram});
    spec.pim_points.push_back(
        sim::StudyPimPoint{"pim-accel", pim_accel.l1, pim_accel.dram});
    return spec;
}

void
PrintProfilerStudy(bench::BenchOutput &out)
{
    // Same 512x512 tiling stream as the single-level sweep section.
    Rng rng(21);
    browser::Bitmap linear(512, 512);
    linear.Randomize(rng);
    browser::TiledTexture tiled(512, 512);
    sim::AccessTrace trace;
    {
        core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
        ctx.AttachTrace(trace);
        browser::TileTexture(linear, tiled, ctx);
        ctx.DetachTrace();
    }

    const sim::StudySpec spec = ProfilerStudyGrid();

    // The identical grid as explicit hierarchies for the fan-out
    // reference: row-major (l1, llc), PIM points appended.
    std::vector<sim::HierarchyConfig> configs;
    for (const sim::CacheConfig &l1 : spec.l1_points) {
        for (const sim::CacheConfig &llc : spec.llc_points) {
            sim::HierarchyConfig h;
            h.name = "study";
            h.l1 = l1;
            h.llc = llc;
            h.dram = spec.dram;
            configs.push_back(std::move(h));
        }
    }
    for (const sim::StudyPimPoint &p : spec.pim_points) {
        sim::HierarchyConfig h;
        h.name = p.name;
        h.l1 = p.l1;
        h.dram = p.dram;
        configs.push_back(std::move(h));
    }

    const auto best_of = [&](const std::function<double()> &run) {
        double best = run();
        for (int i = 0; i < 2; ++i) {
            best = std::min(best, run());
        }
        return best;
    };

    const sim::SweepRunner runner;
    std::vector<sim::PerfCounters> fanout;
    sim::StudyResult study;
    const double fanout_s = best_of([&] {
        return TimeRun(
            [&] { fanout = runner.ReplayTraceFanout(trace, configs); });
    });
    const double study_s = best_of([&] {
        return TimeRun([&] { study = runner.ProfileStudy(trace, spec); });
    });

    const std::size_t cols = spec.llc_points.size();
    bool same = true, exact = true;
    for (std::size_t i = 0; i < spec.l1_points.size(); ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            same = same && SameCounters(study.host[i][j].counters,
                                        fanout[i * cols + j]);
            exact = exact && study.host[i][j].writebacks_exact;
        }
    }
    for (std::size_t j = 0; j < spec.pim_points.size(); ++j) {
        same = same &&
               SameCounters(
                   study.pim[j].counters,
                   fanout[spec.l1_points.size() * cols + j]);
        exact = exact && study.pim[j].writebacks_exact;
    }

    const double speedup = fanout_s / study_s;
    Table table("Generalized one-pass study — " +
                std::to_string(configs.size()) +
                "-point two-level host grid + PIM, tiling stream");
    table.SetHeader(
        {"engine", "trace replays", "time (ms)", "speedup", "exact"});
    table.AddRow({"fan-out replay (reference fast path)",
                  "1/L1-shard x LLC sims",
                  Table::Num(fanout_s * 1e3, 1), "1.00x",
                  "bit-identical"});
    table.AddRow({"one-pass study (nested profilers)",
                  std::to_string(study.trace_replays) + " (+" +
                      std::to_string(study.profile_passes) +
                      " passes)",
                  Table::Num(study_s * 1e3, 1),
                  Table::Num(speedup, 2) + "x",
                  same && exact ? "bit-identical" : "MISMATCH"});
    out.Emit(table);

    // The prefetcher axis, layered on the same grid (untimed — it is
    // telemetry on top of identical counters; see stack_profiler.h).
    sim::StudySpec pf_spec = spec;
    pf_spec.model_prefetcher = true;
    const sim::StudyResult pf = runner.ProfileStudy(trace, pf_spec);
    const sim::PrefetchStats pf_sample =
        pf.host[0][kStudyFirstLadderLen - 1].prefetch;

    const std::string prefix = "sim_throughput.profiler";
    out.Metric(prefix + ".grid_points",
               static_cast<double>(configs.size()));
    out.Metric(prefix + ".l1_points",
               static_cast<double>(spec.l1_points.size()));
    out.Metric(prefix + ".llc_points", static_cast<double>(cols));
    out.Metric(prefix + ".trace_replays",
               static_cast<double>(study.trace_replays));
    out.Metric(prefix + ".profile_passes",
               static_cast<double>(study.profile_passes));
    out.Metric(prefix + ".fanout_ms", fanout_s * 1e3);
    out.Metric(prefix + ".study_ms", study_s * 1e3);
    out.Metric(prefix + ".speedup", speedup);
    out.Metric(prefix + ".bit_identical", same && exact ? 1.0 : 0.0);
    out.Metric(prefix + ".prefetch.issued",
               static_cast<double>(pf_sample.issued));
    out.Metric(prefix + ".prefetch.accuracy", pf_sample.Accuracy());
    out.Metric(prefix + ".prefetch.coverage", pf_sample.Coverage());

    std::printf("study counters %s the fan-out reference across %zu "
                "points (%zu replays + %zu profile passes vs %zu LLC "
                "sims; threads: %u)\n\n",
                same && exact ? "match" : "DO NOT match",
                configs.size(), study.trace_replays,
                study.profile_passes, configs.size(),
                runner.thread_count());
}

/**
 * Set-sharded profiling passes + pipelined out-of-core decode (this
 * PR's headline): the 122-point study grid answered three ways over an
 * mmap-backed container file —
 *
 *   serial     — PIM_SHARD_PASS=off: the sequential pass engine (one
 *                thread replays each profiling pass),
 *   sharded    — set-sharded passes: every pass split across per-set
 *                shard workers, shard snapshots merged
 *                (StackProfile::Merge / CacheStats::operator+=),
 *   no-overlap — sharded with PIM_DECODE_AHEAD=off: same shards, but
 *                replay workers wait on inline window decode instead
 *                of the decode-ahead producer.
 *
 * Counters must be bit-identical across all three (CI gates
 * sim_throughput.profiler_shard.bit_identical == 1) and the sharded
 * path must hold a >= 2x advantage over serial when the machine has
 * >= 4 cores (also gated).
 */
void
PrintProfilerShardStudy(bench::BenchOutput &out)
{
    // Stress stream: the tiling trace concatenated to out-of-core
    // scale (same sizing as the shard/mmap studies), saved as a
    // container file so every engine streams blocks through the
    // windowed path — the sharded one with its decode-ahead producer.
    sim::CompactTrace compact;
    {
        const sim::AccessTrace base = RecordTilingTrace();
        sim::AccessTrace raw;
        constexpr std::size_t kTargetEntries = 2u << 20;
        const std::size_t repeats = std::max<std::size_t>(
            1, (kTargetEntries + base.size() - 1) /
                   std::max<std::size_t>(1, base.size()));
        raw.Reserve(base.size() * repeats);
        for (std::size_t i = 0; i < repeats; ++i) {
            raw.Append(base.data(), base.size());
        }
        compact = sim::CompactTrace::Encode(raw);
    }
    const std::string path = "/tmp/sim_throughput_pshard_" +
                             std::to_string(getpid()) + ".ctrace";
    std::string error;
    if (!compact.SaveTo(path, &error)) {
        std::printf("profiler-shard study skipped: %s\n\n",
                    error.c_str());
        return;
    }
    auto mapped = sim::MappedCompactTrace::Open(
        path, &error, sim::MappedCompactTrace::Verify::kLazy);
    if (!mapped) {
        std::printf("profiler-shard study skipped: %s\n\n",
                    error.c_str());
        ::unlink(path.c_str());
        return;
    }

    const sim::StudySpec spec = ProfilerStudyGrid();
    // Pin the comparison at min(cores, 8) threads (the acceptance
    // criterion is phrased at 8 threads; the serial baseline does not
    // use the pool anyway), floored at 2 so the sharded engine still
    // engages — and its bit-identity still gets checked — on
    // single-core runners, where the speedup gate is off.
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) {
        hw = 1;
    }
    const sim::SweepRunner runner(std::max(2u, std::min(hw, 8u)));

    // One timed run per engine: each run is seconds long (dozens of
    // multi-million-entry passes), so run-to-run noise is small
    // relative to the gated 2x margin.
    const auto timed_with = [&](const char *env, const char *value,
                                sim::StudyResult *result) {
        if (env != nullptr) {
            ::setenv(env, value, 1);
        }
        const double s = TimeRun(
            [&] { *result = runner.ProfileStudy(*mapped, spec); });
        if (env != nullptr) {
            ::unsetenv(env);
        }
        return s;
    };

    sim::StudyResult serial, sharded, no_overlap;
    const double serial_s =
        timed_with("PIM_SHARD_PASS", "off", &serial);
    const double sharded_s = timed_with(nullptr, nullptr, &sharded);
    const double no_overlap_s =
        timed_with("PIM_DECODE_AHEAD", "off", &no_overlap);
    ::unlink(path.c_str());

    const auto same_study = [&](const sim::StudyResult &a,
                                const sim::StudyResult &b) {
        bool same = true;
        for (std::size_t i = 0; i < spec.l1_points.size(); ++i) {
            for (std::size_t j = 0; j < spec.llc_points.size(); ++j) {
                same = same && SameCounters(a.host[i][j].counters,
                                            b.host[i][j].counters) &&
                       a.host[i][j].writebacks_exact ==
                           b.host[i][j].writebacks_exact;
            }
        }
        for (std::size_t j = 0; j < spec.pim_points.size(); ++j) {
            same = same && SameCounters(a.pim[j].counters,
                                        b.pim[j].counters);
        }
        return same;
    };
    const bool identical = same_study(serial, sharded) &&
                           same_study(serial, no_overlap);
    const double speedup = serial_s / sharded_s;

    const std::size_t points =
        spec.l1_points.size() * spec.llc_points.size() +
        spec.pim_points.size();
    Table table("Sharded profiling passes — " + std::to_string(points) +
                "-point study, mmap-streamed trace");
    table.SetHeader({"engine", "shards", "time (ms)", "speedup",
                     "exact"});
    const auto row = [&](const char *name, unsigned shards,
                         double seconds) {
        table.AddRow({
            name,
            std::to_string(shards),
            Table::Num(seconds * 1e3, 1),
            Table::Num(serial_s / seconds, 2) + "x",
            identical ? "bit-identical" : "MISMATCH",
        });
    };
    row("serial passes (PIM_SHARD_PASS=off)", 1, serial_s);
    row("sharded passes + decode-ahead", sharded.shards, sharded_s);
    row("sharded passes, no decode overlap", no_overlap.shards,
        no_overlap_s);
    out.Emit(table);

    const std::string prefix = "sim_throughput.profiler_shard";
    out.Metric(prefix + ".grid_points", static_cast<double>(points));
    out.Metric(prefix + ".entries",
               static_cast<double>(compact.size()));
    out.Metric(prefix + ".threads",
               static_cast<double>(runner.thread_count()));
    out.Metric(prefix + ".shards",
               static_cast<double>(sharded.shards));
    out.Metric(prefix + ".serial_ms", serial_s * 1e3);
    out.Metric(prefix + ".sharded_ms", sharded_s * 1e3);
    out.Metric(prefix + ".no_overlap_ms", no_overlap_s * 1e3);
    out.Metric(prefix + ".speedup", speedup);
    out.Metric(prefix + ".overlap_gain", no_overlap_s / sharded_s);
    out.Metric(prefix + ".bit_identical", identical ? 1.0 : 0.0);

    std::printf("sharded study %.2fx vs serial passes (%u shards, "
                "%u threads, decode overlap %.2fx); counters %s\n\n",
                speedup, sharded.shards, runner.thread_count(),
                no_overlap_s / sharded_s,
                identical ? "bit-identical" : "DO NOT match");
}

/**
 * Intra-trace shard scaling (this PR's headline): ONE (trace, config)
 * replay split across set-shards, each shard a private cold hierarchy
 * on its own worker, merged counters bit-identical to the serial
 * replay.  The stress stream is the tiling trace concatenated until it
 * is large enough that partition + replay dominate thread startup.
 */
void
PrintShardStudy(bench::BenchOutput &out)
{
    const sim::AccessTrace base = RecordTilingTrace();
    sim::AccessTrace trace;
    constexpr std::size_t kTargetEntries = 4u << 20;
    const std::size_t repeats =
        std::max<std::size_t>(1, (kTargetEntries + base.size() - 1) /
                                     std::max<std::size_t>(1, base.size()));
    trace.Reserve(base.size() * repeats);
    for (std::size_t i = 0; i < repeats; ++i) {
        trace.Append(base.data(), base.size());
    }
    const double accesses = static_cast<double>(trace.size());

    const sim::HierarchyConfig config = sim::HostHierarchyConfig();
    const sim::ShardedReplayPlan plan =
        sim::ShardedReplay::PlanFor(config, 4);

    const auto best_of = [&](const std::function<double()> &run) {
        double best = run();
        for (int i = 0; i < 2; ++i) {
            best = std::min(best, run());
        }
        return best;
    };

    sim::PerfCounters serial_pc;
    const double serial_s = best_of([&] {
        return TimeRun([&] {
            sim::MemoryHierarchy mh(config);
            trace.ReplayInto(mh.Top());
            serial_pc = mh.Snapshot();
        });
    });

    Table table("Set-sharded replay — one tiling stress stream, "
                "one host config");
    table.SetHeader({"path", "accesses", "time (ms)", "Maccesses/s",
                     "speedup", "exact"});
    const auto row = [&](const std::string &name, double seconds,
                         bool exact) {
        table.AddRow({
            name,
            Table::Num(accesses / 1e6, 2) + "M",
            Table::Num(seconds * 1e3, 1),
            Table::Num(accesses / seconds / 1e6, 1),
            Table::Num(serial_s / seconds, 2) + "x",
            exact ? "bit-identical" : "MISMATCH",
        });
    };
    row("serial replay (reference)", serial_s, true);

    const std::string prefix = "sim_throughput.shard";
    out.Metric(prefix + ".entries", accesses);
    out.Metric(prefix + ".shards",
               static_cast<double>(plan.supported ? plan.shards : 1));
    // Wall-clock scaling is bounded by physical cores; record them so
    // speedup_Nt is interpretable across machines (a 1-core CI box
    // can only show ~1x regardless of thread count).
    out.Metric(prefix + ".cores",
               static_cast<double>(std::thread::hardware_concurrency()));
    out.Metric(prefix + ".serial_ms", serial_s * 1e3);

    bool all_same = true;
    for (const unsigned threads : {1u, 2u, 4u}) {
        const sim::ShardedReplay sharded{sim::SweepRunner(threads)};
        sim::PerfCounters pc;
        const double s = best_of([&] {
            return TimeRun([&] { pc = sharded.Replay(trace, config); });
        });
        const bool same = SameCounters(serial_pc, pc);
        all_same = all_same && same;
        row("sharded replay, " + std::to_string(threads) +
                (threads == 1 ? " thread (serial fallback)" : " threads"),
            s, same);
        const std::string t = std::to_string(threads) + "t";
        out.Metric(prefix + ".sharded_" + t + "_ms", s * 1e3);
        out.Metric(prefix + ".speedup_" + t, serial_s / s);
    }
    out.Metric(prefix + ".bit_identical", all_same ? 1.0 : 0.0);
    out.Emit(table);

    std::printf("sharded counters %s the serial replay "
                "(plan: %u shards x %u-line blocks, %u hardware "
                "cores)\n\n",
                all_same ? "match" : "DO NOT match",
                plan.supported ? plan.shards : 1, plan.block_lines,
                std::thread::hardware_concurrency());
}

/**
 * Compact codec study: encoded footprint and replay equivalence for
 * the two recorded kernel streams, plus the composition row — compact
 * decode feeding the sharded engine — that the pim_run
 * --compact-trace --threads path exercises.
 */
void
PrintCodecStudy(bench::BenchOutput &out)
{
    const auto best_of = [&](const std::function<double()> &run) {
        double best = run();
        for (int i = 0; i < 2; ++i) {
            best = std::min(best, run());
        }
        return best;
    };

    struct Stream
    {
        const char *name;
        sim::AccessTrace trace;
    };
    Stream streams[] = {
        {"tiling", RecordTilingTrace()},
        {"compression", RecordCompressionTrace()},
    };

    Table table("Compact trace codec — footprint and replay "
                "equivalence (raw = 8.0 B/entry)");
    table.SetHeader({"stream", "entries", "raw MB", "compact MB",
                     "B/entry", "ratio", "encode (ms)", "replay",
                     "exact"});

    const sim::HierarchyConfig config = sim::HostHierarchyConfig();
    bool all_same = true;
    for (auto &s : streams) {
        sim::CompactTrace compact;
        const double encode_s = best_of([&] {
            return TimeRun(
                [&] { compact = sim::CompactTrace::Encode(s.trace); });
        });

        sim::PerfCounters raw_pc, compact_pc, sharded_pc;
        const double raw_s = best_of([&] {
            return TimeRun([&] {
                sim::MemoryHierarchy mh(config);
                s.trace.ReplayInto(mh.Top());
                raw_pc = mh.Snapshot();
            });
        });
        const double compact_s = best_of([&] {
            return TimeRun([&] {
                sim::MemoryHierarchy mh(config);
                compact.ReplayInto(mh.Top());
                compact_pc = mh.Snapshot();
            });
        });
        // The composition path: decode block-by-block while sharding.
        const sim::ShardedReplay sharded{sim::SweepRunner(4)};
        sharded_pc = sharded.Replay(compact, config);

        const bool same = SameCounters(raw_pc, compact_pc) &&
                          SameCounters(raw_pc, sharded_pc) &&
                          compact.TotalBytes() == s.trace.TotalBytes();
        all_same = all_same && same;

        table.AddRow({
            s.name,
            Table::Num(static_cast<double>(compact.size()) / 1e6, 2) +
                "M",
            Table::Num(static_cast<double>(compact.RawBytes()) / 1e6,
                       1),
            Table::Num(static_cast<double>(compact.SizeBytes()) / 1e6,
                       2),
            Table::Num(compact.BytesPerEntry(), 2),
            Table::Num(compact.CompressionRatio(), 1) + "x",
            Table::Num(encode_s * 1e3, 1),
            Table::Num(raw_s / compact_s, 2) + "x vs raw",
            same ? "bit-identical" : "MISMATCH",
        });

        const std::string prefix =
            std::string("sim_throughput.codec.") + s.name;
        out.Metric(prefix + ".bytes_per_entry", compact.BytesPerEntry());
        out.Metric(prefix + ".compression_ratio",
                   compact.CompressionRatio());
        out.Metric(prefix + ".encode_ms", encode_s * 1e3);
        out.Metric(prefix + ".replay_ms", compact_s * 1e3);
        out.Metric(prefix + ".raw_replay_ms", raw_s * 1e3);
    }
    out.Metric("sim_throughput.codec.bit_identical",
               all_same ? 1.0 : 0.0);
    out.Emit(table);

    std::printf("compact replay (serial and sharded x4) %s the raw "
                "replay counters\n\n",
                all_same ? "matches" : "DOES NOT match");
}

/**
 * SIMD set-probe study: the same binary replays each stream twice —
 * once with the runtime kill-switch forcing the scalar probe and once
 * with the compiled vector path (AVX2/NEON) — so the probe speedup is
 * isolated from every other engine improvement.  Also measured: the
 * codec's batch-decode rate per path, and the composed fast path
 * (vector probe + set-sharded pinned replay) against the serial
 * scalar-probe replay.  Counters must be bit-identical throughout; CI
 * fails the job if `sim_throughput.simd.bit_identical` is not 1.
 */
void
PrintSimdStudy(bench::BenchOutput &out)
{
    namespace simd = sim::simd;
    const bool prev_enabled = simd::Enabled();
    const char *compiled = simd::IsaName(simd::CompiledIsa());

    const auto best_of = [&](const std::function<double()> &run) {
        double best = run();
        for (int i = 0; i < 2; ++i) {
            best = std::min(best, run());
        }
        return best;
    };

    const std::string prefix = "sim_throughput.simd";
    out.Metric(prefix + ".compiled_avx2",
               simd::CompiledIsa() == simd::Isa::kAvx2 ? 1.0 : 0.0);
    out.Metric(prefix + ".compiled_neon",
               simd::CompiledIsa() == simd::Isa::kNeon ? 1.0 : 0.0);

    // Random line-granular probes over an LLC-resident working set:
    // L1 (64 KiB) thrashes while the LLC (2 MiB, 8-way) keeps every
    // line, so nearly every access pays a full 4-way L1 scan plus a
    // deep-way LLC search — the way-compare loop the vector probe
    // replaces.  The kernel streams mostly hit way 0, so they bound
    // the *other* end (probe cost amortized by batching).
    const auto record_probe_stress = [] {
        Rng rng(23);
        sim::AccessTrace trace;
        constexpr std::size_t kLines = (1536 * 1024) / 64;
        constexpr std::size_t kAccesses = 1u << 20;
        trace.Reserve(kAccesses);
        for (std::size_t i = 0; i < kAccesses; ++i) {
            const std::uint64_t r = rng.Next64();
            trace.Append(Address{(r >> 2) % kLines} * 64, 64,
                         (r & 3) == 0 ? sim::AccessType::kWrite
                                      : sim::AccessType::kRead);
        }
        return trace;
    };

    struct Stream
    {
        const char *name;
        sim::AccessTrace trace;
    };
    Stream streams[] = {
        {"tiling", RecordTilingTrace()},
        {"compression", RecordCompressionTrace()},
        {"probe-stress", record_probe_stress()},
    };
    const sim::HierarchyConfig config = sim::HostHierarchyConfig();
    bool all_same = true;

    Table table(std::string("SIMD set-probe — scalar vs vector replay "
                            "(compiled ISA: ") +
                compiled + ")");
    table.SetHeader({"stream", "probe", "time (ms)", "Maccesses/s",
                     "speedup", "exact"});
    for (auto &s : streams) {
        const double accesses = static_cast<double>(s.trace.size());
        // Engines snapshot the kill-switch at construction, so the
        // hierarchy must be built inside the toggled region.
        sim::PerfCounters scalar_pc, vector_pc;
        simd::SetEnabled(false);
        const double scalar_s = best_of([&] {
            return TimeRun([&] {
                sim::MemoryHierarchy mh(config);
                s.trace.ReplayInto(mh.Top());
                scalar_pc = mh.Snapshot();
            });
        });
        simd::SetEnabled(true);
        const double vector_s = best_of([&] {
            return TimeRun([&] {
                sim::MemoryHierarchy mh(config);
                s.trace.ReplayInto(mh.Top());
                vector_pc = mh.Snapshot();
            });
        });
        const bool same = SameCounters(scalar_pc, vector_pc);
        all_same = all_same && same;

        const auto row = [&](const char *path, double seconds,
                             double speedup) {
            table.AddRow({
                s.name,
                path,
                Table::Num(seconds * 1e3, 1),
                Table::Num(accesses / seconds / 1e6, 1),
                Table::Num(speedup, 2) + "x",
                same ? "bit-identical" : "MISMATCH",
            });
        };
        row("scalar (PIM_SIMD=off)", scalar_s, 1.0);
        row(simd::IsaName(simd::ActiveIsa()), vector_s,
            scalar_s / vector_s);

        const std::string sp = prefix + "." + s.name;
        out.Metric(sp + ".scalar_ms", scalar_s * 1e3);
        out.Metric(sp + ".vector_ms", vector_s * 1e3);
        out.Metric(sp + ".probe_speedup", scalar_s / vector_s);
    }
    out.Emit(table);

    // Batch decode: blocks materialize into one reused aligned buffer;
    // rate is counted in raw (8 B/entry) output bytes.  The vector
    // path is the stride expander on run tokens (sim/simd.h).
    const sim::CompactTrace compact =
        sim::CompactTrace::Encode(streams[0].trace);
    const double raw_bytes = static_cast<double>(compact.RawBytes());
    const auto decode_all = [&] {
        alignas(64) sim::TraceEntry buffer[sim::CompactTrace::
                                               kBlockEntries];
        std::size_t n = 0;
        for (std::size_t b = 0; b < compact.BlockCount(); ++b) {
            n += compact.DecodeBlock(b, buffer);
        }
        benchmark::DoNotOptimize(n);
    };
    simd::SetEnabled(false);
    const double dec_scalar_s = best_of([&] { return TimeRun(decode_all); });
    const sim::AccessTrace dec_scalar = compact.Decode();
    simd::SetEnabled(true);
    const double dec_vector_s = best_of([&] { return TimeRun(decode_all); });
    const sim::AccessTrace dec_vector = compact.Decode();
    bool decode_same = dec_scalar.size() == dec_vector.size();
    for (std::size_t i = 0; decode_same && i < dec_scalar.size(); ++i) {
        decode_same = dec_scalar.data()[i].word == dec_vector.data()[i].word;
    }
    all_same = all_same && decode_same;
    out.Metric(prefix + ".decode.scalar_gb_per_s",
               raw_bytes / dec_scalar_s / 1e9);
    out.Metric(prefix + ".decode.vector_gb_per_s",
               raw_bytes / dec_vector_s / 1e9);
    out.Metric(prefix + ".decode.speedup", dec_scalar_s / dec_vector_s);

    // Composed fast path on one (trace, config): batched replay with
    // the vector probe, set-sharded across pinned workers, against the
    // per-entry scalar replay path (`ReplayIntoScalar`, every table's
    // "scalar" row — the pre-batching engine) and against the serial
    // batched replay with the probe forced scalar.  The first ratio is
    // the single-replay headline; the second isolates what the vector
    // probe + sharding added on top of batching.  The stress stream is
    // the LZO stream concatenated — the fine-grained probe pattern the
    // batched+vector core is built for.
    sim::AccessTrace stress;
    {
        const sim::AccessTrace &base = streams[1].trace;
        stress.Reserve(base.size() * 3);
        for (int i = 0; i < 3; ++i) {
            stress.Append(base.data(), base.size());
        }
    }
    const double stress_accesses = static_cast<double>(stress.size());
    sim::PerfCounters scalar_path_pc, batched_pc, fast_pc;
    simd::SetEnabled(false);
    const double scalar_path_s = best_of([&] {
        return TimeRun([&] {
            sim::MemoryHierarchy mh(config);
            stress.ReplayIntoScalar(mh.Top());
            scalar_path_pc = mh.Snapshot();
        });
    });
    const double batched_scalar_s = best_of([&] {
        return TimeRun([&] {
            sim::MemoryHierarchy mh(config);
            stress.ReplayInto(mh.Top());
            batched_pc = mh.Snapshot();
        });
    });
    simd::SetEnabled(true);
    // Shard up to 4 ways but never past the machine: on a single-core
    // host ShardedReplay's plan degenerates to the serial (still
    // vector-probe) replay instead of serializing cold shards.
    const unsigned fast_threads = std::max(
        1u, std::min(4u, std::thread::hardware_concurrency()));
    const sim::ShardedReplay sharded{sim::SweepRunner(fast_threads)};
    sim::ShardPlacement placement;
    const double fast_s = best_of([&] {
        return TimeRun(
            [&] { fast_pc = sharded.Replay(stress, config, &placement); });
    });
    const bool replay_same = SameCounters(scalar_path_pc, batched_pc) &&
                             SameCounters(scalar_path_pc, fast_pc);
    all_same = all_same && replay_same;

    Table composed("Composed fast path — one LZO-stress "
                   "(trace, config) replay");
    composed.SetHeader({"path", "time (ms)", "Maccesses/s", "speedup",
                        "exact"});
    const auto crow = [&](const std::string &path, double seconds) {
        composed.AddRow({
            path,
            Table::Num(seconds * 1e3, 1),
            Table::Num(stress_accesses / seconds / 1e6, 1),
            Table::Num(scalar_path_s / seconds, 2) + "x",
            replay_same ? "bit-identical" : "MISMATCH",
        });
    };
    crow("per-entry scalar replay (PIM_SIMD=off)", scalar_path_s);
    crow("batched, scalar probe", batched_scalar_s);
    crow(placement.sharded
             ? "batched, vector probe, sharded x" +
                   std::to_string(placement.shards) + " pinned"
             : "batched, vector probe (serial: 1 core)",
         fast_s);
    out.Emit(composed);

    out.Metric(prefix + ".replay.scalar_path_ms", scalar_path_s * 1e3);
    out.Metric(prefix + ".replay.batched_scalar_ms",
               batched_scalar_s * 1e3);
    out.Metric(prefix + ".replay.sharded_vector_ms", fast_s * 1e3);
    out.Metric(prefix + ".replay_speedup", scalar_path_s / fast_s);
    out.Metric(prefix + ".replay_speedup_vs_batched",
               batched_scalar_s / fast_s);
    out.Metric(prefix + ".pinning_enabled",
               placement.pinning_enabled ? 1.0 : 0.0);
    out.Metric(prefix + ".bit_identical", all_same ? 1.0 : 0.0);

    std::string cpus;
    for (const int cpu : placement.shard_cpu) {
        cpus += (cpus.empty() ? "" : ",") + std::to_string(cpu);
    }
    std::printf(
        "decode: %.2f -> %.2f GB/s; composed replay %.2fx vs the "
        "scalar path (%u shards%s on cpus [%s]); counters %s\n\n",
        raw_bytes / dec_scalar_s / 1e9, raw_bytes / dec_vector_s / 1e9,
        scalar_path_s / fast_s, placement.shards,
        placement.pinning_enabled ? ", pinned" : ", unpinned",
        cpus.c_str(), all_same ? "bit-identical" : "MISMATCH");

    simd::SetEnabled(prev_enabled);
}

/**
 * Out-of-core replay study: one stress stream, block-encoded, saved as
 * a PIMCTRC1 container file, and replayed two ways through identical
 * host hierarchies — from the in-RAM CompactTrace and from the
 * mmap-backed MappedCompactTrace (lazy digest verification, page-cache
 * warm after the first pass).  Counters must be bit-identical and the
 * on-disk streaming path must stay within 1.25x of the in-RAM decode
 * path; CI gates `sim_throughput.mmap.bit_identical` and
 * `sim_throughput.mmap.vs_compact_ratio`.
 */
void
PrintMmapStudy(bench::BenchOutput &out)
{
    const auto best_of = [&](const std::function<double()> &run) {
        double best = run();
        for (int i = 0; i < 2; ++i) {
            best = std::min(best, run());
        }
        return best;
    };

    // Concatenate the tiling stream until partition + replay dominate
    // setup noise (same sizing as the shard study).
    sim::CompactTrace compact;
    {
        const sim::AccessTrace base = RecordTilingTrace();
        sim::AccessTrace raw;
        constexpr std::size_t kTargetEntries = 4u << 20;
        const std::size_t repeats = std::max<std::size_t>(
            1, (kTargetEntries + base.size() - 1) /
                   std::max<std::size_t>(1, base.size()));
        raw.Reserve(base.size() * repeats);
        for (std::size_t i = 0; i < repeats; ++i) {
            raw.Append(base.data(), base.size());
        }
        compact = sim::CompactTrace::Encode(raw);
    } // the raw stream dies here; both paths below are O(encoded)

    const std::string path = "/tmp/sim_throughput_mmap_" +
                             std::to_string(getpid()) + ".ctrace";
    std::string error;
    if (!compact.SaveTo(path, &error)) {
        std::printf("mmap study skipped: %s\n\n", error.c_str());
        return;
    }
    auto mapped = sim::MappedCompactTrace::Open(
        path, &error, sim::MappedCompactTrace::Verify::kLazy);
    if (!mapped) {
        std::printf("mmap study skipped: %s\n\n", error.c_str());
        ::unlink(path.c_str());
        return;
    }

    const sim::HierarchyConfig config = sim::HostHierarchyConfig();
    sim::PerfCounters compact_pc, mapped_pc;
    const double compact_s = best_of([&] {
        return TimeRun([&] {
            sim::MemoryHierarchy mh(config);
            compact.ReplayInto(mh.Top());
            compact_pc = mh.Snapshot();
        });
    });
    const double mapped_s = best_of([&] {
        return TimeRun([&] {
            sim::MemoryHierarchy mh(config);
            mapped->ReplayInto(mh.Top());
            mapped_pc = mh.Snapshot();
        });
    });
    ::unlink(path.c_str());

    const bool same = SameCounters(compact_pc, mapped_pc);
    const double raw_bytes = static_cast<double>(compact.RawBytes());
    const double accesses = static_cast<double>(compact.size());

    Table table("Out-of-core replay — in-RAM CompactTrace vs "
                "mmap-backed container file");
    table.SetHeader({"path", "time (ms)", "Maccesses/s", "GB/s (raw)",
                     "exact"});
    const auto row = [&](const std::string &name, double seconds) {
        table.AddRow({
            name,
            Table::Num(seconds * 1e3, 1),
            Table::Num(accesses / seconds / 1e6, 1),
            Table::Num(raw_bytes / seconds / 1e9, 2),
            same ? "bit-identical" : "MISMATCH",
        });
    };
    row("in-RAM compact decode", compact_s);
    row("mmap streaming decode (lazy verify)", mapped_s);
    out.Emit(table);

    const std::string prefix = "sim_throughput.mmap";
    out.Metric(prefix + ".entries", accesses);
    out.Metric(prefix + ".encoded_bytes",
               static_cast<double>(compact.SizeBytes()));
    out.Metric(prefix + ".compact_ms", compact_s * 1e3);
    out.Metric(prefix + ".mapped_ms", mapped_s * 1e3);
    out.Metric(prefix + ".compact_gb_per_s",
               raw_bytes / compact_s / 1e9);
    out.Metric(prefix + ".mapped_gb_per_s", raw_bytes / mapped_s / 1e9);
    out.Metric(prefix + ".vs_compact_ratio", mapped_s / compact_s);
    out.Metric(prefix + ".bit_identical", same ? 1.0 : 0.0);

    std::printf("mmap streaming replay %.2f GB/s vs %.2f GB/s in-RAM "
                "(%.2fx); counters %s\n\n",
                raw_bytes / mapped_s / 1e9, raw_bytes / compact_s / 1e9,
                mapped_s / compact_s,
                same ? "bit-identical" : "DO NOT match");
}

void
PrintThroughput(bench::BenchOutput &out)
{
    out.Section("tiling", [&] {
        const sim::AccessTrace tiling = RecordTilingTrace();
        PrintOneStream(
            out, "tiling",
            "Simulator throughput — tiling stream (128 B row spans)",
            tiling);
    });

    out.Section("compression", [&] {
        const sim::AccessTrace lzo = RecordCompressionTrace();
        PrintOneStream(
            out, "compression",
            "Simulator throughput — LZO compression stream (1-4 B probes)",
            lzo);
    });

    out.Section("sweep", [&] { PrintSweepStudy(out); });
    // The multi-axis study rides the "sweep." prefix too, so CI's
    // --filter=sweep covers its bit-identity + speedup gates.
    out.Section("sweep.profiler", [&] { PrintProfilerStudy(out); });
    out.Section("sweep.profiler_shard",
                [&] { PrintProfilerShardStudy(out); });

    // Named under "sweep." so CI's existing --filter=sweep runs them.
    out.Section("sweep.shard", [&] { PrintShardStudy(out); });
    out.Section("sweep.codec", [&] { PrintCodecStudy(out); });
    out.Section("sweep.simd", [&] { PrintSimdStudy(out); });
    out.Section("sweep.mmap", [&] { PrintMmapStudy(out); });
}

} // namespace

PIM_BENCH_MAIN(PrintThroughput)
