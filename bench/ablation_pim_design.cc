/**
 * @file
 * Ablation study of the PIM design choices (DESIGN.md Section 7):
 *
 *   1. PIM-core SIMD width (the paper picks 4 "empirically")
 *   2. internal (in-stack) bandwidth available to PIM logic
 *   3. number of cooperating vault PIM cores
 *   4. accelerator in-memory logic unit count (the paper picks 4)
 *
 * Each sweep evaluates the texture-tiling kernel (memory-bound) and the
 * motion-estimation kernel (compute-lean but SIMD-heavy).  The kernels
 * execute once each, recording their access stream and op mix; every
 * sweep point is then a cheap trace replay / report synthesis.  The
 * replays into distinct hierarchy shapes run concurrently on the
 * SweepRunner — compute-model parameters (SIMD width, lanes, bandwidth)
 * do not change cache counters, so design points sharing a hierarchy
 * share one replay.
 */

#include "bench_common.h"

#include "common/rng.h"
#include "sim/hierarchy.h"
#include "sim/sweep.h"
#include "sim/trace.h"
#include "workloads/browser/texture_tiler.h"
#include "workloads/video/motion.h"
#include "workloads/video/video_gen.h"

namespace {

using namespace pim;
using core::ComputeModel;
using core::ExecutionContext;
using core::ExecutionTarget;

/** A kernel's target-independent profile: access stream + op mix. */
struct RecordedKernel
{
    sim::AccessTrace trace;
    sim::OpCounts ops;
};

/** Execute the tiling kernel once, recording its profile. */
RecordedKernel
RecordTiling()
{
    Rng rng(1);
    browser::Bitmap linear(512, 512);
    linear.Randomize(rng);
    browser::TiledTexture tiled(512, 512);
    RecordedKernel rec;
    ExecutionContext ctx(ExecutionTarget::kPimCore,
                         core::PimCoreComputeModel(),
                         sim::PimCoreHierarchyConfig());
    ctx.AttachTrace(rec.trace);
    browser::TileTexture(linear, tiled, ctx);
    rec.ops = ctx.ops().counts();
    return rec;
}

/** Execute the one-frame ME sweep once, recording its profile. */
RecordedKernel
RecordMotionEstimation()
{
    video::VideoGenConfig cfg;
    cfg.width = 320;
    cfg.height = 192;
    const auto frames = video::GenerateClip(cfg, 4);
    RecordedKernel rec;
    ExecutionContext ctx(ExecutionTarget::kPimCore,
                         core::PimCoreComputeModel(),
                         sim::PimCoreHierarchyConfig());
    ctx.AttachTrace(rec.trace);
    const std::vector<const video::Plane *> refs = {
        &frames[0].y, &frames[1].y, &frames[2].y};
    for (int y = 0; y < cfg.height; y += 16) {
        for (int x = 0; x < cfg.width; x += 16) {
            video::DiamondSearch(frames[3].y, refs, x, y,
                                 video::MotionSearchParams{}, ctx);
        }
    }
    rec.ops = ctx.ops().counts();
    return rec;
}

/** Synthesize the report a native run on (model, hier) would produce. */
core::RunReport
PointReport(const char *name, const ComputeModel &model,
            const sim::HierarchyConfig &hier, const RecordedKernel &rec,
            const sim::PerfCounters &counters)
{
    return core::SynthesizeReport(name, ExecutionTarget::kPimCore, model,
                                  hier, rec.ops, counters);
}

void
BM_AblationProbe(benchmark::State &state)
{
    for (auto _ : state) {
        const RecordedKernel rec = RecordTiling();
        sim::MemoryHierarchy mh(sim::PimCoreHierarchyConfig());
        rec.trace.ReplayInto(mh.Top());
        benchmark::DoNotOptimize(
            PointReport("tiling", core::PimCoreComputeModel(),
                        sim::PimCoreHierarchyConfig(), rec, mh.Snapshot())
                .TotalTimeNs());
    }
}
BENCHMARK(BM_AblationProbe)->Unit(benchmark::kMillisecond);

void
PrintAblations(bench::BenchOutput &out)
{
    const RecordedKernel me = RecordMotionEstimation();
    const RecordedKernel tiling = RecordTiling();

    // One replay per distinct (stream, hierarchy) pair, concurrently.
    sim::PerfCounters me_on_core, me_on_acc, tiling_on_core;
    const sim::SweepRunner runner;
    runner.ForEach(3, [&](std::size_t i) {
        const RecordedKernel &rec = (i == 2) ? tiling : me;
        const sim::HierarchyConfig hier =
            (i == 1) ? sim::PimAccelHierarchyConfig()
                     : sim::PimCoreHierarchyConfig();
        sim::MemoryHierarchy mh(hier);
        rec.trace.ReplayInto(mh.Top());
        (i == 0 ? me_on_core : i == 1 ? me_on_acc : tiling_on_core) =
            mh.Snapshot();
    });

    // --- 1. SIMD width of the PIM core.
    out.Section("simd_width", [&] {
        Table table("Ablation 1 — PIM core SIMD width (ME kernel)");
        table.SetHeader({"simd width", "runtime (us)", "energy (uJ)",
                         "binding bound"});
        for (const std::uint32_t width : {1u, 2u, 4u, 8u, 16u}) {
            ComputeModel model = core::PimCoreComputeModel();
            model.simd_width = width;
            const auto r =
                PointReport("motion-estimation", model,
                            sim::PimCoreHierarchyConfig(), me, me_on_core);
            table.AddRow({
                std::to_string(width),
                Table::Num(r.TotalTimeNs() / 1e3, 1),
                Table::Num(r.TotalEnergyPj() / 1e6, 1),
                r.timing.Bound(),
            });
        }
        out.Emit(table);
    });

    // --- 2. Internal bandwidth available to the PIM logic.
    out.Section("bandwidth", [&] {
        Table table(
            "Ablation 2 — in-stack bandwidth (texture tiling kernel)");
        table.SetHeader(
            {"bandwidth (GB/s)", "runtime (us)", "binding bound"});
        for (const double gbps : {32.0, 64.0, 128.0, 256.0, 512.0}) {
            sim::HierarchyConfig hier = sim::PimCoreHierarchyConfig();
            hier.dram.bandwidth_gbps = gbps;
            const auto r = PointReport("tiling",
                                       core::PimCoreComputeModel(), hier,
                                       tiling, tiling_on_core);
            table.AddRow({
                Table::Num(gbps, 0),
                Table::Num(r.TotalTimeNs() / 1e3, 1),
                r.timing.Bound(),
            });
        }
        out.Emit(table);
    });

    // --- 3. Cooperating vault PIM cores.
    out.Section("vault_cores", [&] {
        Table table("Ablation 3 — cooperating vault cores (ME kernel)");
        table.SetHeader({"PIM cores", "runtime (us)", "speedup vs 1"});
        double base = 0.0;
        for (const double lanes : {1.0, 2.0, 4.0, 8.0, 16.0}) {
            ComputeModel model = core::PimCoreComputeModel();
            model.parallel_lanes = lanes;
            const auto r =
                PointReport("motion-estimation", model,
                            sim::PimCoreHierarchyConfig(), me, me_on_core);
            if (base == 0.0) {
                base = r.TotalTimeNs();
            }
            table.AddRow({
                Table::Num(lanes, 0),
                Table::Num(r.TotalTimeNs() / 1e3, 1),
                Table::Num(base / r.TotalTimeNs(), 2) + "x",
            });
        }
        out.Emit(table);
    });

    // --- 4. Accelerator in-memory logic unit count.
    out.Section("accel_units", [&] {
        Table table(
            "Ablation 4 — accelerator logic units (ME kernel)");
        table.SetHeader({"units", "runtime (us)", "binding bound"});
        for (const std::uint32_t units : {1u, 2u, 4u, 8u}) {
            const ComputeModel model =
                core::PimAccelComputeModel(units, 16.0);
            const auto r =
                PointReport("motion-estimation", model,
                            sim::PimAccelHierarchyConfig(), me, me_on_acc);
            table.AddRow({
                std::to_string(units),
                Table::Num(r.TotalTimeNs() / 1e3, 1),
                r.timing.Bound(),
            });
        }
        out.Emit(table);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintAblations)
