/**
 * @file
 * Ablation study of the PIM design choices (DESIGN.md Section 7):
 *
 *   1. PIM-core SIMD width (the paper picks 4 "empirically")
 *   2. internal (in-stack) bandwidth available to PIM logic
 *   3. number of cooperating vault PIM cores
 *   4. accelerator in-memory logic unit count (the paper picks 4)
 *
 * Each sweep runs the texture-tiling kernel (memory-bound) and the
 * motion-estimation kernel (compute-lean but SIMD-heavy) on a custom
 * execution context and reports runtime and energy.
 */

#include "bench_common.h"

#include "common/rng.h"
#include "sim/hierarchy.h"
#include "workloads/browser/texture_tiler.h"
#include "workloads/video/motion.h"
#include "workloads/video/video_gen.h"

namespace {

using namespace pim;
using core::ComputeModel;
using core::ExecutionContext;
using core::ExecutionTarget;

/** Run the tiling kernel on a context built from @p model / @p hier. */
core::RunReport
RunTiling(const ComputeModel &model, const sim::HierarchyConfig &hier)
{
    Rng rng(1);
    browser::Bitmap linear(512, 512);
    linear.Randomize(rng);
    browser::TiledTexture tiled(512, 512);
    ExecutionContext ctx(ExecutionTarget::kPimCore, model, hier);
    browser::TileTexture(linear, tiled, ctx);
    return ctx.Report("tiling");
}

/** Run a one-frame ME sweep on a context built from @p model. */
core::RunReport
RunMotionEstimation(const ComputeModel &model,
                    const sim::HierarchyConfig &hier)
{
    video::VideoGenConfig cfg;
    cfg.width = 320;
    cfg.height = 192;
    const auto frames = video::GenerateClip(cfg, 4);
    ExecutionContext ctx(ExecutionTarget::kPimCore, model, hier);
    const std::vector<const video::Plane *> refs = {
        &frames[0].y, &frames[1].y, &frames[2].y};
    for (int y = 0; y < cfg.height; y += 16) {
        for (int x = 0; x < cfg.width; x += 16) {
            video::DiamondSearch(frames[3].y, refs, x, y,
                                 video::MotionSearchParams{}, ctx);
        }
    }
    return ctx.Report("motion-estimation");
}

void
BM_AblationProbe(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            RunTiling(core::PimCoreComputeModel(),
                      sim::PimCoreHierarchyConfig())
                .TotalTimeNs());
    }
}
BENCHMARK(BM_AblationProbe)->Unit(benchmark::kMillisecond);

void
PrintAblations()
{
    // --- 1. SIMD width of the PIM core.
    {
        Table table("Ablation 1 — PIM core SIMD width (ME kernel)");
        table.SetHeader({"simd width", "runtime (us)", "energy (uJ)",
                         "binding bound"});
        for (const std::uint32_t width : {1u, 2u, 4u, 8u, 16u}) {
            ComputeModel model = core::PimCoreComputeModel();
            model.simd_width = width;
            const auto r = RunMotionEstimation(
                model, sim::PimCoreHierarchyConfig());
            table.AddRow({
                std::to_string(width),
                Table::Num(r.TotalTimeNs() / 1e3, 1),
                Table::Num(r.TotalEnergyPj() / 1e6, 1),
                r.timing.Bound(),
            });
        }
        table.Print();
    }

    // --- 2. Internal bandwidth available to the PIM logic.
    {
        Table table(
            "Ablation 2 — in-stack bandwidth (texture tiling kernel)");
        table.SetHeader(
            {"bandwidth (GB/s)", "runtime (us)", "binding bound"});
        for (const double gbps : {32.0, 64.0, 128.0, 256.0, 512.0}) {
            sim::HierarchyConfig hier = sim::PimCoreHierarchyConfig();
            hier.dram.bandwidth_gbps = gbps;
            const auto r =
                RunTiling(core::PimCoreComputeModel(), hier);
            table.AddRow({
                Table::Num(gbps, 0),
                Table::Num(r.TotalTimeNs() / 1e3, 1),
                r.timing.Bound(),
            });
        }
        table.Print();
    }

    // --- 3. Cooperating vault PIM cores.
    {
        Table table("Ablation 3 — cooperating vault cores (ME kernel)");
        table.SetHeader({"PIM cores", "runtime (us)", "speedup vs 1"});
        double base = 0.0;
        for (const double lanes : {1.0, 2.0, 4.0, 8.0, 16.0}) {
            ComputeModel model = core::PimCoreComputeModel();
            model.parallel_lanes = lanes;
            const auto r = RunMotionEstimation(
                model, sim::PimCoreHierarchyConfig());
            if (base == 0.0) {
                base = r.TotalTimeNs();
            }
            table.AddRow({
                Table::Num(lanes, 0),
                Table::Num(r.TotalTimeNs() / 1e3, 1),
                Table::Num(base / r.TotalTimeNs(), 2) + "x",
            });
        }
        table.Print();
    }

    // --- 4. Accelerator in-memory logic unit count.
    {
        Table table(
            "Ablation 4 — accelerator logic units (ME kernel)");
        table.SetHeader({"units", "runtime (us)", "binding bound"});
        for (const std::uint32_t units : {1u, 2u, 4u, 8u}) {
            const ComputeModel model =
                core::PimAccelComputeModel(units, 16.0);
            const auto r = RunMotionEstimation(
                model, sim::PimAccelHierarchyConfig());
            table.AddRow({
                std::to_string(units),
                Table::Num(r.TotalTimeNs() / 1e3, 1),
                r.timing.Bound(),
            });
        }
        table.Print();
    }
}

} // namespace

PIM_BENCH_MAIN(PrintAblations)
