/**
 * @file
 * Software-codec drivers shared by the decoder/encoder figure benches
 * (Figures 10, 11, 15).  Split out of bench_common.h so the kernel
 * benches do not drag the codec headers in.
 */

#ifndef PIM_BENCH_CODEC_RUNNERS_H
#define PIM_BENCH_CODEC_RUNNERS_H

#include "workloads/video/codec.h"

namespace pim::bench {

/**
 * Run the software encoder over a synthetic clip; fills the encoder's
 * per-function phase buckets (Figure 15 input).  Resolutions are
 * scaled stand-ins for the paper's HD/4K clips (DESIGN.md).
 */
void RunSwEncoder(int width, int height, int frames,
                  video::CodecPhases &phases);

/**
 * Encode then decode a synthetic clip; fills the *decoder's* phase
 * buckets (Figures 10/11 input).
 */
void RunSwDecoder(int width, int height, int frames,
                  video::CodecPhases &phases);

} // namespace pim::bench

#endif // PIM_BENCH_CODEC_RUNNERS_H
