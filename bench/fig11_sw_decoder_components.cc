/**
 * @file
 * Figure 11: energy breakdown of the VP9 software decoder by hardware
 * component (CPU, L1, LLC, interconnect, memory controller, DRAM),
 * split by decoder function.
 */

#include "bench_common.h"
#include "codec_runners.h"

namespace {

using namespace pim;

void
BM_SwDecodeSmall(benchmark::State &state)
{
    for (auto _ : state) {
        video::CodecPhases phases;
        bench::RunSwDecoder(128, 64, 2, phases);
        benchmark::DoNotOptimize(phases.Total().energy.Total());
    }
}
BENCHMARK(BM_SwDecodeSmall)->Unit(benchmark::kMillisecond);

void
AddRow(Table &table, const char *name, const core::PhaseTotals &phase)
{
    const auto &e = phase.energy;
    table.AddRow({
        name,
        Table::Num(PicoToMilliJoules(e.compute), 3),
        Table::Num(PicoToMilliJoules(e.l1), 3),
        Table::Num(PicoToMilliJoules(e.llc), 3),
        Table::Num(PicoToMilliJoules(e.interconnect), 3),
        Table::Num(PicoToMilliJoules(e.memctrl), 3),
        Table::Num(PicoToMilliJoules(e.dram), 3),
    });
}

void
PrintFigure11(bench::BenchOutput &out)
{
    out.Section("decoder", [&] {
    video::CodecPhases ph;
    bench::RunSwDecoder(1920, 1088, 3, ph);

    Table table(
        "Figure 11 — VP9 software decoder energy by component (mJ)");
    table.SetHeader({"function", "CPU", "L1", "LLC", "interconnect",
                     "memctrl", "DRAM"});
    AddRow(table, "MC: Sub-Pixel Interpolation", ph.subpel);
    AddRow(table, "Other MC Functions", ph.mc_other);
    AddRow(table, "Deblocking Filter", ph.deblock);
    AddRow(table, "Entropy Decoder", ph.entropy);
    core::PhaseTotals inverse = ph.transform;
    inverse += ph.quant;
    AddRow(table, "Inverse Transform", inverse);
    core::PhaseTotals other = ph.other;
    other += ph.intra;
    AddRow(table, "Other", other);
    out.Emit(table);

    const core::PhaseTotals total = ph.Total();
    Table note("Figure 11 — paper checkpoints");
    note.SetHeader({"claim", "paper", "measured"});
    note.AddRow({"data movement share of decoder energy", "63.5%",
                 Table::Pct(total.energy.DataMovementFraction())});
    const double mc_df_movement = ph.subpel.energy.DataMovement() +
                                  ph.mc_other.energy.DataMovement() +
                                  ph.deblock.energy.DataMovement();
    note.AddRow({"MC + deblock share of movement", "80.4%",
                 Table::Pct(mc_df_movement /
                            total.energy.DataMovement())});
    out.Emit(note);
    out.Metric("fig11.decoder_movement_share",
               total.energy.DataMovementFraction());
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure11)
