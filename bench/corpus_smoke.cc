/**
 * @file
 * corpus_smoke: bounded-memory out-of-core replay smoke check.
 *
 *   corpus_smoke record <file> <entries>
 *   corpus_smoke replay <file> [max_rss_bytes]
 *
 * `record` synthesizes a mixed streaming/scattered access pattern of
 * <entries> accesses, block-encodes it as it is produced (the raw
 * 8-byte-per-entry stream never exists), and writes a PIMCTRC1
 * container file.
 *
 * `replay` memory-maps the container and replays it through the host
 * hierarchy via the streaming MappedCompactTrace source, then checks
 * the process peak RSS (getrusage ru_maxrss) against the budget:
 * exit 1 when out-of-core replay cost anywhere near the decoded
 * footprint.  CI runs this with a budget far below <entries> * 8 to
 * pin the O(block buffers + hierarchy) memory contract.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/resource.h>

#include "sim/hierarchy.h"
#include "sim/trace_codec.h"

namespace {

using namespace pim;

/** Process peak resident set size, in bytes (Linux ru_maxrss is KiB). */
std::uint64_t
PeakRssBytes()
{
    struct rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

int
Record(const char *path, std::uint64_t entries)
{
    sim::CompactTraceEncoder enc;
    // Deterministic LCG so recorded corpora are reproducible; mixes
    // cache-line streaming runs (compressible) with scattered strides
    // and varying sizes (literal tokens) over a 512 MiB footprint.
    std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
    Address addr = 0x10000000;
    for (std::uint64_t i = 0; i < entries; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t r = lcg >> 33;
        const bool scattered = (i & 1023) >= 1008;
        if (!scattered) {
            addr += 64; // streaming run (kernel-like compressibility)
        } else {
            addr = (0x10000000 + r % (512ull << 20)) & ~Address{63};
        }
        const Bytes bytes = scattered && (r & 4) == 0 ? 16 : 64;
        // Type is uniform per kilo-entry block (3:1 read:write) so the
        // streaming stretches encode as run tokens, as kernel loops do;
        // the scattered tail keeps random types for literal coverage.
        const auto type = ((i >> 10) & 3) == 3 ||
                                  (scattered && (r & 1) != 0)
                              ? sim::AccessType::kWrite
                              : sim::AccessType::kRead;
        enc.Append(addr, bytes, type);
    }
    const sim::CompactTrace trace = enc.Finish();
    std::string error;
    if (!trace.SaveTo(path, &error)) {
        std::fprintf(stderr, "corpus_smoke: %s\n", error.c_str());
        return 1;
    }
    std::printf("corpus_smoke: recorded %" PRIu64
                " entries (%zu encoded bytes, %" PRIu64
                " decoded bytes) to %s\n",
                static_cast<std::uint64_t>(trace.size()),
                trace.SizeBytes(),
                static_cast<std::uint64_t>(trace.size()) * 8, path);
    std::printf("corpus_smoke: record peak_rss_bytes=%" PRIu64 "\n",
                PeakRssBytes());
    return 0;
}

int
Replay(const char *path, std::uint64_t max_rss_bytes)
{
    std::string error;
    auto mapped = sim::MappedCompactTrace::Open(
        path, &error, sim::MappedCompactTrace::Verify::kLazy);
    if (!mapped) {
        std::fprintf(stderr, "corpus_smoke: %s\n", error.c_str());
        return 1;
    }
    sim::MemoryHierarchy hierarchy(sim::HostHierarchyConfig());
    mapped->ReplayInto(hierarchy.Top());
    const sim::PerfCounters counters = hierarchy.Snapshot();

    const auto decoded = static_cast<std::uint64_t>(mapped->RawBytes());
    const std::uint64_t rss = PeakRssBytes();
    std::printf("corpus_smoke: replayed %" PRIu64 " entries "
                "(%zu mapped bytes, %" PRIu64 " decoded bytes)\n",
                static_cast<std::uint64_t>(mapped->entries()),
                mapped->SizeBytes(), decoded);
    std::printf("corpus_smoke: llc_misses=%" PRIu64
                " dram_bytes=%" PRIu64 "\n",
                static_cast<std::uint64_t>(counters.llc.Misses()),
                static_cast<std::uint64_t>(counters.dram.TotalBytes()));
    std::printf("corpus_smoke: peak_rss_bytes=%" PRIu64
                " budget_bytes=%" PRIu64 "\n",
                rss, max_rss_bytes);
    if (max_rss_bytes != 0 && rss > max_rss_bytes) {
        std::fprintf(stderr,
                     "corpus_smoke: FAIL - peak RSS %" PRIu64
                     " exceeds budget %" PRIu64
                     " (out-of-core replay must not materialize the "
                     "decoded trace)\n",
                     rss, max_rss_bytes);
        return 1;
    }
    std::printf("corpus_smoke: OK\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 4 && std::strcmp(argv[1], "record") == 0) {
        const std::uint64_t entries =
            std::strtoull(argv[3], nullptr, 10);
        if (entries == 0) {
            std::fprintf(stderr, "corpus_smoke: bad entry count '%s'\n",
                         argv[3]);
            return 1;
        }
        return Record(argv[2], entries);
    }
    if (argc >= 3 && std::strcmp(argv[1], "replay") == 0) {
        const std::uint64_t budget =
            argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 0;
        return Replay(argv[2], budget);
    }
    std::fprintf(stderr,
                 "usage: corpus_smoke record <file> <entries>\n"
                 "       corpus_smoke replay <file> [max_rss_bytes]\n");
    return 1;
}
