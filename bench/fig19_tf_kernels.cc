/**
 * @file
 * Figure 19: (left) energy of the TensorFlow Mobile kernels — packing
 * and quantization — per target; (right) total inference speedup as
 * the number of GEMM operations grows (1, 4, 16), with packing and
 * quantization either on the CPU (serial) or on PIM logic (overlapped
 * with the CPU's GEMM execution).
 */

#include "bench_common.h"

#include <algorithm>

#include "common/rng.h"
#include "workloads/ml/gemm.h"
#include "workloads/ml/pack.h"
#include "workloads/ml/quantize.h"

namespace {

using namespace pim;
using core::ExecutionContext;
using core::ExecutionTarget;

void
BM_PackLhs(benchmark::State &state)
{
    Rng rng(2);
    ml::Matrix<std::uint8_t> lhs(512, 512);
    lhs.Randomize(rng);
    ml::PackedMatrix packed(512, 512);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    for (auto _ : state) {
        ml::PackLhs(lhs, packed, ctx);
        benchmark::DoNotOptimize(packed.storage().data());
    }
}
BENCHMARK(BM_PackLhs)->Unit(benchmark::kMillisecond);

/** One GEMM's worth of work, reported as per-phase times. */
struct GemmPhaseTimes
{
    Nanoseconds pack_quant_cpu;
    Nanoseconds pack_quant_pim_core;
    Nanoseconds pack_quant_pim_acc;
    Nanoseconds gemm_cpu;
};

GemmPhaseTimes
MeasurePhases()
{
    Rng rng(3);
    const int m = 512, k = 1024, n = 128;
    ml::Matrix<float> activations(m, k);
    ml::Matrix<std::uint8_t> lhs(m, k);
    ml::Matrix<std::uint8_t> rhs(k, n);
    activations.Randomize(rng);
    lhs.Randomize(rng);
    rhs.Randomize(rng);
    ml::Matrix<std::int32_t> result32(m, n);

    GemmPhaseTimes times{};
    // The full per-GEMM Figure 8 flow that PIM takes over: quantize the
    // float input, pack both operands, re-quantize the 32-bit result.
    const auto pack_quant = [&](ExecutionContext &ctx) {
        ml::Matrix<std::uint8_t> q8(m, k);
        ml::QuantizeFloat(activations, q8, ctx);
        ml::PackedMatrix pa(m, k);
        ml::PackedMatrix pb(n, k);
        ml::PackLhs(lhs, pa, ctx);
        ml::PackRhs(rhs, pb, ctx);
        ml::Matrix<std::uint8_t> out8(m, n);
        ml::RequantizeResult(result32, out8, ctx);
    };

    for (const auto target :
         {ExecutionTarget::kCpuOnly, ExecutionTarget::kPimCore,
          ExecutionTarget::kPimAccel}) {
        ExecutionContext ctx(target);
        pack_quant(ctx);
        const auto t = ctx.Report("pack+quant").TotalTimeNs();
        switch (target) {
          case ExecutionTarget::kCpuOnly:
            times.pack_quant_cpu = t;
            break;
          case ExecutionTarget::kPimCore:
            times.pack_quant_pim_core = t;
            break;
          case ExecutionTarget::kPimAccel:
            times.pack_quant_pim_acc = t;
            break;
        }
    }

    ExecutionContext gemm_ctx(ExecutionTarget::kCpuOnly);
    ml::PackedMatrix pa(m, k);
    ml::PackedMatrix pb(n, k);
    ml::PackLhs(lhs, pa, gemm_ctx);
    ml::PackRhs(rhs, pb, gemm_ctx);
    gemm_ctx.Reset(false);
    ml::PackedResult pr(m, n);
    ml::QuantizedGemm(pa, 0, pb, 128, pr, gemm_ctx);
    times.gemm_cpu = gemm_ctx.Report("gemm").TotalTimeNs();
    return times;
}

void
PrintFigure19(bench::BenchOutput &out)
{
    // Left panel: kernel energies.
    out.Section("kernels", [&] {
        out.KernelGroup("tf", "Figure 19 (left)", bench::RunTfKernels());
    });

    // Right panel: speedup vs number of GEMM operations.  CPU-Only
    // serializes pack/quant with GEMM; with PIM, the PIM logic packs
    // and re-quantizes chunk i+1 while the CPU multiplies chunk i
    // (Section 5.3), so steady-state time is the max of the two.
    out.Section("gemm_scaling", [&] {
        const GemmPhaseTimes t = MeasurePhases();
        Table table("Figure 19 (right) — speedup vs number of GEMMs");
        table.SetHeader(
            {"GEMM ops", "CPU-Only", "PIM-Core", "PIM-Acc"});
        for (const int gemms : {1, 4, 16}) {
            const double cpu_total =
                gemms * (t.pack_quant_cpu + t.gemm_cpu);
            const auto overlapped = [&](Nanoseconds pim_pq) {
                // First chunk's packing is exposed; the rest overlaps.
                return pim_pq +
                       (gemms - 1) *
                           std::max<double>(t.gemm_cpu, pim_pq) +
                       t.gemm_cpu;
            };
            table.AddRow({
                std::to_string(gemms),
                "1.00x",
                Table::Num(
                    cpu_total / overlapped(t.pack_quant_pim_core), 2) +
                    "x",
                Table::Num(
                    cpu_total / overlapped(t.pack_quant_pim_acc), 2) +
                    "x",
            });
            if (gemms == 16) {
                out.Metric(
                    "fig19.gemm16.pim_acc.speedup",
                    cpu_total / overlapped(t.pack_quant_pim_acc));
            }
        }
        out.Emit(table);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure19)
