/**
 * @file
 * Figure 12: off-chip traffic breakdown of the VP9 *hardware* decoder
 * for one HD and one 4K frame, with and without lossless frame
 * compression.
 */

#include "bench_common.h"

#include "workloads/video/hw_model.h"

namespace {

using namespace pim;
using video::HwDecoderTraffic;
using video::HwResolution;

void
BM_HwDecoderTrafficModel(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            HwDecoderTraffic(HwResolution::k4k, true).Total());
    }
}
BENCHMARK(BM_HwDecoderTrafficModel);

void
AddRow(Table &table, const char *config,
       const video::HwTrafficBreakdown &t)
{
    table.AddRow({
        config,
        Table::Num(t.reference_frame, 2),
        Table::Num(t.compression_info, 2),
        Table::Num(t.decoder_data, 2),
        Table::Num(t.recon_metadata, 2),
        Table::Num(t.deblocking, 2),
        Table::Num(t.reconstructed_frame, 2),
        Table::Num(t.Total(), 2),
        Table::Pct(t.ReferenceShare()),
    });
}

void
PrintFigure12(bench::BenchOutput &out)
{
    out.Section("traffic", [&] {
    Table table("Figure 12 — HW decoder off-chip traffic per frame (MB)");
    table.SetHeader({"config", "reference", "compr.info", "decoder data",
                     "recon metadata", "deblocking", "recon frame",
                     "total", "ref share"});
    AddRow(table, "HD, no compression",
           HwDecoderTraffic(HwResolution::kHd, false));
    AddRow(table, "HD, with compression",
           HwDecoderTraffic(HwResolution::kHd, true));
    AddRow(table, "4K, no compression",
           HwDecoderTraffic(HwResolution::k4k, false));
    AddRow(table, "4K, with compression",
           HwDecoderTraffic(HwResolution::k4k, true));
    out.Emit(table);

    const auto hd_plain = HwDecoderTraffic(HwResolution::kHd, false);
    const auto uhd_plain = HwDecoderTraffic(HwResolution::k4k, false);
    Table note("Figure 12 — paper checkpoints");
    note.SetHeader({"claim", "paper", "measured"});
    note.AddRow({"4K reference share, no compression", "59.6%",
                 Table::Pct(uhd_plain.ReferenceShare())});
    note.AddRow({"HD reference share, no compression", "75.5%",
                 Table::Pct(hd_plain.ReferenceShare())});
    note.AddRow(
        {"4K / HD traffic ratio", "4.6x (their clips); per-pixel "
                                  "scaling gives ~5-9x here",
         Table::Num(uhd_plain.Total() / hd_plain.Total(), 1) + "x"});
    out.Emit(note);
    out.Metric("fig12.4k.reference_share.plain",
               uhd_plain.ReferenceShare());
    out.Metric("fig12.hd.reference_share.plain",
               hd_plain.ReferenceShare());
    out.Metric("fig12.traffic_ratio_4k_hd",
               uhd_plain.Total() / hd_plain.Total());
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure12)
