/**
 * @file
 * pim_serve: the persistent simulation service daemon.
 *
 * Binds a Unix-domain socket, serves sweep requests from many
 * concurrent pim_client connections, and keeps its trace corpus and
 * result memo warm across jobs.  SIGINT/SIGTERM (or a client
 * `shutdown` request) drains in-flight jobs, flushes the corpus
 * manifest, and exits 0.
 *
 *   pim_serve --socket=/tmp/pim.sock --cache-dir=/var/tmp/pim-corpus
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>

#include "common/env.h"
#include "common/shutdown.h"
#include "serve/server.h"

namespace {

using namespace pim;

void
PrintUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "pim_serve - persistent simulation service for sweep requests\n"
        "\n"
        "usage: pim_serve --socket=<path> [options]\n"
        "  --socket=<path>      Unix-domain socket to listen on\n"
        "  --cache-dir=<dir>    on-disk trace corpus directory\n"
        "                       (omit to keep recordings in memory only)\n"
        "  --workers=<n>        concurrent job executors (default 2)\n"
        "  --queue-depth=<n>    admission-control bound (default 16);\n"
        "                       submissions beyond it are rejected\n"
        "  --sweep-threads=<n>  SweepRunner threads per job (default:\n"
        "                       auto, PIM_SWEEP_THREADS honored)\n");
}

bool
ParseUnsigned(std::string_view value, unsigned *out)
{
    const std::string s(value);
    char *end = nullptr;
    const unsigned long v = std::strtoul(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || v > 4096) {
        return false;
    }
    *out = static_cast<unsigned>(v);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServerConfig config;
    unsigned queue_depth = 16;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--socket=", 0) == 0) {
            config.socket_path = std::string(arg.substr(9));
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            config.cache_dir = std::string(arg.substr(12));
        } else if (arg.rfind("--workers=", 0) == 0) {
            if (!ParseUnsigned(arg.substr(10), &config.workers) ||
                config.workers == 0) {
                std::fprintf(stderr,
                             "pim_serve: bad --workers value\n");
                return 1;
            }
        } else if (arg.rfind("--queue-depth=", 0) == 0) {
            if (!ParseUnsigned(arg.substr(14), &queue_depth) ||
                queue_depth == 0) {
                std::fprintf(stderr,
                             "pim_serve: bad --queue-depth value\n");
                return 1;
            }
        } else if (arg.rfind("--sweep-threads=", 0) == 0) {
            if (!ParseUnsigned(arg.substr(16),
                               &config.sweep_threads)) {
                std::fprintf(stderr,
                             "pim_serve: bad --sweep-threads value\n");
                return 1;
            }
        } else if (arg == "--help" || arg == "-h") {
            PrintUsage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "pim_serve: unknown argument '%s'\n",
                         std::string(arg).c_str());
            PrintUsage(stderr);
            return 1;
        }
    }
    if (config.socket_path.empty()) {
        std::fprintf(stderr, "pim_serve: --socket is required\n");
        PrintUsage(stderr);
        return 1;
    }
    config.queue_capacity = queue_depth;

    InstallShutdownHandler();
    serve::PimServer server(config);
    std::string error;
    if (!server.Start(&error)) {
        std::fprintf(stderr, "pim_serve: %s\n", error.c_str());
        return 1;
    }
    std::printf("pim_serve: listening on %s (workers=%u, queue=%u%s)\n",
                config.socket_path.c_str(), config.workers, queue_depth,
                config.cache_dir.empty()
                    ? ", corpus: memory-only"
                    : (", corpus: " + config.cache_dir).c_str());
    std::fflush(stdout);

    while (!ShutdownRequested() && !server.ShutdownRequestedByClient()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("pim_serve: draining and shutting down\n");
    std::fflush(stdout);
    server.Stop();
    return 0;
}
