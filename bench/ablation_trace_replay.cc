/**
 * @file
 * Trace-driven what-if study: record a kernel's memory access stream
 * once, then replay it through different memory organizations — the
 * paper's trace-based methodology, and the cheap way to sweep design
 * points without re-running kernels.
 */

#include "bench_common.h"

#include "common/rng.h"
#include "sim/hierarchy.h"
#include "sim/trace.h"
#include "workloads/browser/texture_tiler.h"

namespace {

using namespace pim;

/** Record the texture-tiling access stream once. */
sim::AccessTrace
RecordTilingTrace()
{
    Rng rng(21);
    browser::Bitmap linear(512, 512);
    linear.Randomize(rng);
    browser::TiledTexture tiled(512, 512);

    sim::AccessTrace trace;
    core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    ctx.AttachTrace(trace);
    browser::TileTexture(linear, tiled, ctx);
    return trace;
}

void
BM_TraceReplay(benchmark::State &state)
{
    const sim::AccessTrace trace = RecordTilingTrace();
    for (auto _ : state) {
        sim::MemoryHierarchy mh(sim::HostHierarchyConfig());
        trace.ReplayInto(mh.Top());
        benchmark::DoNotOptimize(mh.Snapshot().dram.TotalBytes());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_TraceReplay)->Unit(benchmark::kMillisecond);

void
PrintTraceStudy()
{
    const sim::AccessTrace trace = RecordTilingTrace();

    Table table("Trace replay — tiling stream vs memory organization");
    table.SetHeader({"organization", "L1 miss rate", "off-chip MB",
                     "movement energy (uJ)"});

    const auto replay = [&](const char *name,
                            const sim::HierarchyConfig &hier) {
        sim::MemoryHierarchy mh(hier);
        trace.ReplayInto(mh.Top());
        const auto pc = mh.Snapshot();
        sim::EnergyModel energy;
        table.AddRow({
            name,
            Table::Pct(pc.l1.MissRate()),
            Table::Num(pc.dram.TotalBytes() / 1.0e6, 2),
            Table::Num(
                energy.MemoryEnergy(pc, hier.dram).Total() / 1e6, 1),
        });
    };

    replay("host (64K L1 + 2M LLC, LPDDR3)", sim::HostHierarchyConfig());
    sim::HierarchyConfig big_llc = sim::HostHierarchyConfig();
    big_llc.llc->size = 8_MiB;
    replay("host with 8M LLC", big_llc);
    replay("host on 3D-stacked channel",
           sim::HostStackedHierarchyConfig());
    replay("PIM core (32K L1, in-stack)", sim::PimCoreHierarchyConfig());
    replay("PIM accelerator buffer", sim::PimAccelHierarchyConfig());
    table.Print();

    std::printf("trace: %zu accesses, %.1f MB touched\n\n", trace.size(),
                trace.TotalBytes() / 1.0e6);
}

} // namespace

PIM_BENCH_MAIN(PrintTraceStudy)
