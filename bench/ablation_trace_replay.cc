/**
 * @file
 * Trace-driven what-if study: record a kernel's memory access stream
 * once, then replay it through different memory organizations — the
 * paper's trace-based methodology, and the cheap way to sweep design
 * points without re-running kernels.
 */

#include "bench_common.h"

#include "common/rng.h"
#include "sim/hierarchy.h"
#include "sim/sweep.h"
#include "sim/trace.h"
#include "workloads/browser/texture_tiler.h"

namespace {

using namespace pim;

/** Record the texture-tiling access stream once. */
sim::AccessTrace
RecordTilingTrace()
{
    Rng rng(21);
    browser::Bitmap linear(512, 512);
    linear.Randomize(rng);
    browser::TiledTexture tiled(512, 512);

    sim::AccessTrace trace;
    core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    ctx.AttachTrace(trace);
    browser::TileTexture(linear, tiled, ctx);
    return trace;
}

void
BM_TraceReplay(benchmark::State &state)
{
    const sim::AccessTrace trace = RecordTilingTrace();
    for (auto _ : state) {
        sim::MemoryHierarchy mh(sim::HostHierarchyConfig());
        trace.ReplayInto(mh.Top());
        benchmark::DoNotOptimize(mh.Snapshot().dram.TotalBytes());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_TraceReplay)->Unit(benchmark::kMillisecond);

void
PrintTraceStudy(bench::BenchOutput &out)
{
    out.Section("replay", [&] {
    const sim::AccessTrace trace = RecordTilingTrace();

    Table table("Trace replay — tiling stream vs memory organization");
    table.SetHeader({"organization", "L1 miss rate", "off-chip MB",
                     "movement energy (uJ)"});

    // Record once, replay every design point concurrently.
    sim::HierarchyConfig big_llc = sim::HostHierarchyConfig();
    big_llc.llc->size = 8_MiB;
    const std::vector<const char *> names = {
        "host (64K L1 + 2M LLC, LPDDR3)",
        "host with 8M LLC",
        "host on 3D-stacked channel",
        "PIM core (32K L1, in-stack)",
        "PIM accelerator buffer",
    };
    const std::vector<sim::HierarchyConfig> configs = {
        sim::HostHierarchyConfig(),
        big_llc,
        sim::HostStackedHierarchyConfig(),
        sim::PimCoreHierarchyConfig(),
        sim::PimAccelHierarchyConfig(),
    };

    // Fan-out replay: the three host-shaped configs share one L1
    // simulation; counters are bit-identical to per-config ReplayTrace.
    const sim::SweepRunner runner;
    const auto counters = runner.ReplayTraceFanout(trace, configs);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto &pc = counters[i];
        sim::EnergyModel energy;
        table.AddRow({
            names[i],
            Table::Pct(pc.l1.MissRate()),
            Table::Num(pc.dram.TotalBytes() / 1.0e6, 2),
            Table::Num(energy.MemoryEnergy(pc, configs[i].dram).Total() /
                           1e6,
                       1),
        });
    }
    out.Emit(table);

    std::printf("trace: %zu accesses, %.1f MB touched\n\n", trace.size(),
                trace.TotalBytes() / 1.0e6);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintTraceStudy)
