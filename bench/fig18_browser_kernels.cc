/**
 * @file
 * Figure 18: energy and runtime of the browser kernels (texture
 * tiling, color blitting, compression, decompression) on CPU-Only,
 * PIM-Core, and PIM-Acc, normalized to CPU-Only.
 */

#include "bench_common.h"

#include "common/rng.h"
#include "workloads/browser/texture_tiler.h"

namespace {

using namespace pim;

void
BM_TextureTiling(benchmark::State &state)
{
    Rng rng(1);
    browser::Bitmap linear(512, 512);
    linear.Randomize(rng);
    browser::TiledTexture tiled(512, 512);
    core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    for (auto _ : state) {
        browser::TileTexture(linear, tiled, ctx);
        benchmark::DoNotOptimize(tiled.storage().data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(linear.size_bytes()));
}
BENCHMARK(BM_TextureTiling)->Unit(benchmark::kMillisecond);

void
PrintFigure18(bench::BenchOutput &out)
{
    out.Section("kernels", [&] {
        const auto results = bench::RunBrowserKernels();
        out.KernelGroup("browser", "Figure 18", results);

        Table summary(
            "Figure 18 — average savings across browser kernels");
        summary.SetHeader({"target", "energy reduction", "speedup"});
        double core_e = 0, acc_e = 0, core_s = 0, acc_s = 0;
        for (const auto &r : results) {
            core_e += r.EnergySaving(r.pim_core);
            acc_e += r.EnergySaving(r.pim_acc);
            core_s += r.Speedup(r.pim_core);
            acc_s += r.Speedup(r.pim_acc);
        }
        const double n = static_cast<double>(results.size());
        summary.AddRow({"PIM-Core", Table::Pct(core_e / n),
                        Table::Num(core_s / n, 2) + "x"});
        summary.AddRow({"PIM-Acc", Table::Pct(acc_e / n),
                        Table::Num(acc_s / n, 2) + "x"});
        out.Emit(summary);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure18)
