/**
 * @file
 * Figure 6: energy breakdown of TensorFlow Mobile inference — the
 * fraction of system energy spent in packing, quantization,
 * Conv2D/MatMul, and everything else, for the four input networks.
 */

#include "bench_common.h"

#include "workloads/ml/inference.h"
#include "workloads/ml/network.h"

namespace {

using namespace pim;

void
BM_InferResidualGru(benchmark::State &state)
{
    const auto net = ml::ResidualGru();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ml::RunInference(net, ml::EvalScale{0.5, 0.125})
                .TotalEnergy());
    }
}
BENCHMARK(BM_InferResidualGru)->Unit(benchmark::kMillisecond);

void
PrintFigure6(bench::BenchOutput &out)
{
    out.Section("inference", [&] {
    Table table("Figure 6 — inference energy breakdown by function");
    table.SetHeader({"network", "packing", "quantization",
                     "Conv2D+MatMul", "other"});
    double pack_sum = 0.0;
    double quant_sum = 0.0;
    const auto networks = ml::AllNetworks();
    for (const auto &net : networks) {
        const auto r = ml::RunInference(net, ml::EvalScale{});
        const double total = r.TotalEnergy();
        table.AddRow({
            r.network,
            Table::Pct(r.packing.energy.Total() / total),
            Table::Pct(r.quantization.energy.Total() / total),
            Table::Pct(r.gemm.energy.Total() / total),
            Table::Pct(r.other.energy.Total() / total),
        });
        pack_sum += r.packing.energy.Total() / total;
        quant_sum += r.quantization.energy.Total() / total;
    }
    const double n = static_cast<double>(networks.size());
    table.AddRow({"AVG", Table::Pct(pack_sum / n),
                  Table::Pct(quant_sum / n), "", ""});
    out.Emit(table);

    Table note("Figure 6 — paper checkpoints");
    note.SetHeader({"claim", "paper", "measured"});
    note.AddRow({"packing+quantization share (avg)", "39.3%",
                 Table::Pct((pack_sum + quant_sum) / n)});
    out.Emit(note);
    out.Metric("fig06.pack_quant_energy_share",
               (pack_sum + quant_sum) / n);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure6)
