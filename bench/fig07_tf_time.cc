/**
 * @file
 * Figure 7: execution-time breakdown of TensorFlow Mobile inference —
 * packing, quantization, Conv2D/MatMul, and other — for the four
 * input networks.
 */

#include "bench_common.h"

#include "workloads/ml/inference.h"
#include "workloads/ml/network.h"

namespace {

using namespace pim;

void
BM_InferVgg19Scaled(benchmark::State &state)
{
    const auto net = ml::Vgg19();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ml::RunInference(net, ml::EvalScale{0.25, 0.125})
                .TotalTime());
    }
}
BENCHMARK(BM_InferVgg19Scaled)->Unit(benchmark::kMillisecond);

void
PrintFigure7(bench::BenchOutput &out)
{
    out.Section("inference", [&] {
    Table table("Figure 7 — inference time breakdown by function");
    table.SetHeader({"network", "packing", "quantization",
                     "Conv2D+MatMul", "other"});
    double pq_sum = 0.0;
    const auto networks = ml::AllNetworks();
    for (const auto &net : networks) {
        const auto r = ml::RunInference(net, ml::EvalScale{});
        const double total = r.TotalTime();
        table.AddRow({
            r.network,
            Table::Pct(r.packing.time_ns / total),
            Table::Pct(r.quantization.time_ns / total),
            Table::Pct(r.gemm.time_ns / total),
            Table::Pct(r.other.time_ns / total),
        });
        pq_sum += (r.packing.time_ns + r.quantization.time_ns) / total;
    }
    out.Emit(table);

    Table note("Figure 7 — paper checkpoints");
    note.SetHeader({"claim", "paper", "measured"});
    note.AddRow({"packing+quantization share of time (avg)", "27.4%",
                 Table::Pct(pq_sum /
                            static_cast<double>(networks.size()))});
    out.Emit(note);
    out.Metric("fig07.pack_quant_time_share",
               pq_sum / static_cast<double>(networks.size()));
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure7)
