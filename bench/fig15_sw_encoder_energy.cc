/**
 * @file
 * Figure 15: energy breakdown of the VP9 *software* encoder by
 * function — motion estimation, intra prediction, transform,
 * quantization, deblocking filter, other.
 */

#include "bench_common.h"
#include "codec_runners.h"

namespace {

using namespace pim;

void
BM_SwEncodeFrame(benchmark::State &state)
{
    for (auto _ : state) {
        video::CodecPhases phases;
        bench::RunSwEncoder(192, 128, 2, phases);
        benchmark::DoNotOptimize(phases.Total().energy.Total());
    }
}
BENCHMARK(BM_SwEncodeFrame)->Unit(benchmark::kMillisecond);

void
PrintFigure15(bench::BenchOutput &out)
{
    out.Section("encoder", [&] {
    video::CodecPhases ph;
    // True HD, as the paper's encoder study uses.
    bench::RunSwEncoder(1280, 720, 3, ph);

    const double total = ph.Total().energy.Total();
    Table table("Figure 15 — VP9 software encoder energy by function");
    table.SetHeader({"function", "share"});
    table.AddRow({"Motion Estimation",
                  Table::Pct(ph.me.energy.Total() / total)});
    table.AddRow({"Intra-Prediction",
                  Table::Pct(ph.intra.energy.Total() / total)});
    table.AddRow({"Transform",
                  Table::Pct(ph.transform.energy.Total() / total)});
    table.AddRow({"Quantization",
                  Table::Pct(ph.quant.energy.Total() / total)});
    table.AddRow({"Deblocking Filter",
                  Table::Pct(ph.deblock.energy.Total() / total)});
    table.AddRow({"Other (incl. MC / entropy / recon)",
                  Table::Pct((ph.other.energy.Total() +
                              ph.subpel.energy.Total() +
                              ph.mc_other.energy.Total() +
                              ph.entropy.energy.Total()) /
                             total)});
    out.Emit(table);

    Table note("Figure 15 — paper checkpoints");
    note.SetHeader({"claim", "paper", "measured"});
    note.AddRow({"motion estimation share", "39.6%",
                 Table::Pct(ph.me.energy.Total() / total)});
    note.AddRow(
        {"encoder data movement share", "59.1%",
         Table::Pct(ph.Total().energy.DataMovementFraction())});
    note.AddRow(
        {"ME share of encoding cycles", "43.1%",
         Table::Pct(ph.me.time_ns / ph.Total().time_ns)});
    out.Emit(note);
    out.Metric("fig15.me_energy_share", ph.me.energy.Total() / total);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure15)
