/**
 * @file
 * Table 1: the evaluated system configuration, plus the Section 3.3
 * area feasibility table for every piece of PIM logic, and raw
 * substrate microbenchmarks.
 */

#include "bench_common.h"

#include "core/area_model.h"
#include "sim/hierarchy.h"
#include "sim/system_config.h"

namespace {

using namespace pim;

void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    sim::MemoryHierarchy mh(sim::HostHierarchyConfig());
    Address addr = 0x100000;
    for (auto _ : state) {
        mh.Top().Access(addr, 64, sim::AccessType::kRead);
        addr += 64;
        benchmark::DoNotOptimize(addr);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void
PrintTable1(bench::BenchOutput &out)
{
    out.Section("config", [&] {
    const sim::SystemConfig cfg = sim::DefaultSystemConfig();

    Table table("Table 1 — evaluated system configuration");
    table.SetHeader({"component", "configuration"});
    table.AddRow({"SoC",
                  std::to_string(cfg.soc.cores) + " OoO cores, " +
                      std::to_string(cfg.soc.issue_width) +
                      "-wide issue, " + Table::Num(cfg.soc.freq_ghz, 1) +
                      " GHz"});
    table.AddRow({"L1 I/D caches", "64 kB private, 4-way assoc."});
    table.AddRow({"L2 cache", "2 MB shared, 8-way assoc."});
    table.AddRow({"Coherence", cfg.soc.coherence});
    table.AddRow({"PIM core",
                  "1 per vault, 1-wide issue, " +
                      std::to_string(cfg.pim_core.simd_width) +
                      "-wide SIMD, 32 kB L1"});
    table.AddRow({"3D-stacked memory",
                  "2 GB cube, " + std::to_string(cfg.stacked.vaults) +
                      " vaults, 256 GB/s internal, 32 GB/s off-chip"});
    table.AddRow({"Baseline memory",
                  cfg.baseline.type + ", 2 GB, " +
                      cfg.baseline.scheduler + " scheduler"});
    out.Emit(table);

    Table area("Section 3.3 — PIM logic area feasibility (22 nm)");
    area.SetHeader(
        {"PIM logic", "area (mm^2)", "share of vault budget", "fits?"});
    for (const auto &logic : core::AllPimLogicAreas()) {
        area.AddRow({
            logic.name,
            Table::Num(logic.area_mm2, 2),
            Table::Pct(core::FractionOfVaultBudget(logic)),
            core::FitsVaultBudget(logic) ? "yes" : "NO",
        });
    }
    out.Emit(area);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintTable1)
