/**
 * @file
 * The paper's "alternatives considered" studies:
 *
 *   1. GPU rasterization (Section 4.2.2): instead of tiling CPU-
 *      rasterized bitmaps, rasterize directly on the GPU.  This removes
 *      the texture-upload path but the GPU's wide SIMT units rasterize
 *      fonts and small shapes poorly — the paper measured up to +24.9%
 *      page load time on text-heavy pages, which is why Chrome ships
 *      with CPU rasterization and why PIM (which keeps CPU raster and
 *      absorbs only the tiling) is attractive.
 *
 *   2. Killing tabs and reloading from disk instead of ZRAM
 *      (Section 4.3): reloading invokes page faults, eMMC reads, and a
 *      full page rebuild; ZRAM trades a little CPU compression work for
 *      DRAM-speed restores.
 */

#include "bench_common.h"

#include "common/rng.h"
#include "workloads/browser/page_data.h"
#include "workloads/browser/webpage.h"
#include "workloads/browser/zram.h"

namespace {

using namespace pim;

void
BM_AlternativesProbe(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(browser::AllPageProfiles().size());
    }
}
BENCHMARK(BM_AlternativesProbe);

/**
 * First-order GPU rasterization model: throughput per pixel class,
 * relative to the CPU raster path.  Fills and image blits map well to
 * SIMT hardware; glyph rasterization (tiny triangles, heavy overdraw,
 * divergent control flow) does not.
 */
struct GpuRasterModel
{
    double fill_speedup = 4.0;
    double image_speedup = 3.0;
    double text_speedup = 0.4; // 2.5x slower on glyphs
};

void
PrintGpuRasterStudy(bench::BenchOutput &out)
{
    const GpuRasterModel gpu;
    Table table("Alternative 1 — GPU rasterization vs CPU raster + PIM "
                "tiling");
    table.SetHeader({"page", "text share of raster", "GPU raster time",
                     "page load delta"});
    for (const auto &profile : browser::AllPageProfiles()) {
        // Raster time split by content class (CPU raster = 1.0).
        const double text = profile.text_fraction;
        const double image = profile.image_fraction;
        const double fill = profile.fill_fraction;
        const double gpu_time = text / gpu.text_speedup +
                                image / gpu.image_speedup +
                                fill / gpu.fill_speedup;
        // Rasterization is roughly a third of page-load work; the
        // rest (layout, script, network) is raster-path independent.
        const double load_delta = (gpu_time - 1.0) * 0.35;
        table.AddRow({
            profile.name,
            Table::Pct(text),
            Table::Num(gpu_time, 2) + "x",
            (load_delta >= 0 ? "+" : "") + Table::Pct(load_delta),
        });
    }
    out.Emit(table);
}

void
PrintZramVsDiskStudy(bench::BenchOutput &out)
{
    // Restore one 2 MiB tab either from ZRAM or from disk.
    constexpr Bytes kTabBytes = 2_MiB;
    constexpr double kDiskBandwidthMBps = 140.0; // eMMC sequential read
    constexpr double kDiskEnergyPjPerByte = 1200.0; // flash + controller
    constexpr double kPageFaultNs = 3000.0; // per 4 KiB page
    constexpr double kRebuildFactor = 2.0;  // parse + relayout overhead

    // Measure the ZRAM path for real.
    Rng rng(0xD15C);
    browser::ZramPool pool;
    core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    pim::SimBuffer<std::uint8_t> page(browser::ZramPool::kPageBytes);
    pim::SimBuffer<std::uint8_t> restore(browser::ZramPool::kPageBytes);

    std::vector<std::uint64_t> handles;
    const std::size_t pages = kTabBytes / browser::ZramPool::kPageBytes;
    for (std::size_t i = 0; i < pages; ++i) {
        browser::FillPageLikeData(page, rng, 0.4);
        handles.push_back(pool.SwapOut(page, ctx).handle);
    }
    ctx.Reset(false);
    for (const auto handle : handles) {
        pool.SwapIn(handle, restore, ctx);
    }
    const auto zram = ctx.Report("zram-restore");

    // Model the disk path.
    const double disk_ns =
        static_cast<double>(kTabBytes) / kDiskBandwidthMBps * 1e3 +
        static_cast<double>(pages) * kPageFaultNs;
    const double disk_energy_pj =
        static_cast<double>(kTabBytes) * kDiskEnergyPjPerByte;

    Table table("Alternative 2 — restoring a 2 MiB tab: ZRAM vs disk");
    table.SetHeader({"path", "latency (us)", "energy (uJ)", "notes"});
    table.AddRow({
        "ZRAM decompress (CPU)",
        Table::Num(zram.TotalTimeNs() / 1e3, 1),
        Table::Num(zram.TotalEnergyPj() / 1e6, 1),
        "measured (LZO decompress)",
    });
    table.AddRow({
        "disk reload",
        Table::Num(disk_ns * kRebuildFactor / 1e3, 1),
        Table::Num(disk_energy_pj * kRebuildFactor / 1e6, 1),
        "eMMC read + faults + rebuild",
    });
    out.Emit(table);
}

void
PrintAlternatives(bench::BenchOutput &out)
{
    out.Section("gpu_raster", [&] { PrintGpuRasterStudy(out); });
    out.Section("zram_vs_disk", [&] { PrintZramVsDiskStudy(out); });
}

} // namespace

PIM_BENCH_MAIN(PrintAlternatives)
