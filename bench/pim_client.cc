/**
 * @file
 * pim_client: thin CLI for the pim_serve daemon.
 *
 *   pim_client --socket=/tmp/pim.sock --submit --kernel=texture_tiling \
 *              --scale=0.25 --wait --json=run.jsonl
 *   pim_client --socket=/tmp/pim.sock --status
 *   pim_client --socket=/tmp/pim.sock --shutdown
 *
 * Every frame the server sends is echoed verbatim, one JSON document
 * per line, to stdout and (with --json) to a file — so two runs of the
 * same sweep can be compared byte-for-byte, which is exactly what the
 * CI memoization gate does.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "serve/client.h"

namespace {

using namespace pim;

struct ClientOptions
{
    std::string socket_path;
    std::string json_path;
    std::string kernel;
    std::string sweep; ///< Empty = server default ("llc"); or "study".
    std::vector<double> llc_kib;
    std::vector<double> assocs;
    std::string policy;
    double scale = 1.0;
    bool submit = false;
    bool wait = true;
    bool status = false;
    bool shutdown = false;
    std::uint64_t poll_job = 0;
    bool poll = false;
};

void
PrintUsage(std::FILE *to)
{
    std::fprintf(
        to,
        "pim_client - submit sweep jobs to a running pim_serve\n"
        "\n"
        "usage: pim_client --socket=<path> <command> [options]\n"
        "commands:\n"
        "  --submit             submit an LLC sweep for --kernel\n"
        "  --poll=<job>         fetch a previously submitted job\n"
        "  --status             print the server's counters\n"
        "  --shutdown           ask the server to drain and exit\n"
        "submit options:\n"
        "  --kernel=<slug>      kernel slug from `pim_run --list`\n"
        "  --scale=<f>          input scale (default 1.0)\n"
        "  --sweep=<llc|study>  sweep kind (default llc); study\n"
        "                       answers an associativity axis from\n"
        "                       one memoized profiling pass\n"
        "  --llc=<csv>          llc sweep: ladder points in KiB\n"
        "                       (default 256..8192, x2 steps)\n"
        "  --assoc=<csv>        study sweep: associativity axis\n"
        "                       (default 1,2,4,8,16)\n"
        "  --policy=<p>         study sweep: wb, wt, or wtna\n"
        "                       (default wb)\n"
        "  --no-wait            do not stream results; poll later\n"
        "common options:\n"
        "  --json=<path>        also write every received frame to a\n"
        "                       file, one JSON document per line\n");
}

int
Fail(const char *msg)
{
    std::fprintf(stderr, "pim_client: %s\n", msg);
    return 1;
}

/** Read frames until a terminal one; echo each verbatim. */
int
StreamFrames(serve::ServeClient &client, std::FILE *json_out,
             bool expect_stream)
{
    int rc = 0;
    for (;;) {
        std::string raw;
        const auto frame = client.Read(&raw);
        if (!frame) {
            // Stream ended without a terminal frame: only an error if
            // we were owed one.
            return expect_stream ? Fail("connection closed mid-stream")
                                 : rc;
        }
        std::printf("%s\n", raw.c_str());
        if (json_out != nullptr) {
            std::fprintf(json_out, "%s\n", raw.c_str());
        }
        const JsonValue *type = frame->Find("type");
        const std::string t =
            type != nullptr ? type->AsString() : std::string();
        if (t == "error" || t == "rejected" || t == "failed") {
            return 1;
        }
        if (t == "done" || t == "status" || t == "bye" ||
            t == "pending") {
            return rc;
        }
        if (t == "accepted" && !expect_stream) {
            return rc;
        }
        // accepted/result frames: keep streaming.
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ClientOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg.rfind("--socket=", 0) == 0) {
            opts.socket_path = std::string(arg.substr(9));
        } else if (arg.rfind("--json=", 0) == 0) {
            opts.json_path = std::string(arg.substr(7));
        } else if (arg == "--submit") {
            opts.submit = true;
        } else if (arg.rfind("--kernel=", 0) == 0) {
            opts.kernel = std::string(arg.substr(9));
        } else if (arg.rfind("--scale=", 0) == 0) {
            const std::string value(arg.substr(8));
            char *end = nullptr;
            opts.scale = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' ||
                !(opts.scale > 0.0)) {
                return Fail("bad --scale value");
            }
        } else if (arg.rfind("--llc=", 0) == 0) {
            std::string_view csv = arg.substr(6);
            while (!csv.empty()) {
                const auto comma = csv.find(',');
                const std::string item(csv.substr(0, comma));
                char *end = nullptr;
                const double kib = std::strtod(item.c_str(), &end);
                if (end == item.c_str() || *end != '\0' || !(kib > 0)) {
                    return Fail("bad --llc value (expected csv of KiB)");
                }
                opts.llc_kib.push_back(kib);
                if (comma == std::string_view::npos) {
                    break;
                }
                csv.remove_prefix(comma + 1);
            }
        } else if (arg.rfind("--sweep=", 0) == 0) {
            opts.sweep = std::string(arg.substr(8));
            if (opts.sweep != "llc" && opts.sweep != "study") {
                return Fail("bad --sweep value (expected llc or study)");
            }
        } else if (arg.rfind("--assoc=", 0) == 0) {
            std::string_view csv = arg.substr(8);
            while (!csv.empty()) {
                const auto comma = csv.find(',');
                const std::string item(csv.substr(0, comma));
                char *end = nullptr;
                const double a = std::strtod(item.c_str(), &end);
                if (end == item.c_str() || *end != '\0' || !(a >= 1)) {
                    return Fail(
                        "bad --assoc value (expected csv of ways)");
                }
                opts.assocs.push_back(a);
                if (comma == std::string_view::npos) {
                    break;
                }
                csv.remove_prefix(comma + 1);
            }
        } else if (arg.rfind("--policy=", 0) == 0) {
            opts.policy = std::string(arg.substr(9));
        } else if (arg == "--no-wait") {
            opts.wait = false;
        } else if (arg == "--wait") {
            opts.wait = true;
        } else if (arg.rfind("--poll=", 0) == 0) {
            opts.poll = true;
            opts.poll_job = std::strtoull(
                std::string(arg.substr(7)).c_str(), nullptr, 10);
        } else if (arg == "--status") {
            opts.status = true;
        } else if (arg == "--shutdown") {
            opts.shutdown = true;
        } else if (arg == "--help" || arg == "-h") {
            PrintUsage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "pim_client: unknown argument '%s'\n",
                         std::string(arg).c_str());
            PrintUsage(stderr);
            return 1;
        }
    }
    if (opts.socket_path.empty()) {
        PrintUsage(stderr);
        return Fail("--socket is required");
    }
    const int commands = (opts.submit ? 1 : 0) + (opts.status ? 1 : 0) +
                         (opts.shutdown ? 1 : 0) + (opts.poll ? 1 : 0);
    if (commands != 1) {
        PrintUsage(stderr);
        return Fail("pick exactly one of --submit / --poll / --status "
                    "/ --shutdown");
    }
    if (opts.submit && opts.kernel.empty()) {
        return Fail("--submit needs --kernel=<slug>");
    }

    std::string error;
    auto client = serve::ServeClient::Connect(opts.socket_path, &error);
    if (!client) {
        return Fail(error.c_str());
    }

    JsonValue req = JsonValue::Object();
    bool expect_stream = false;
    if (opts.submit) {
        req.Set("type", "submit");
        req.Set("kernel", opts.kernel);
        req.Set("scale", opts.scale);
        req.Set("wait", opts.wait);
        if (!opts.sweep.empty()) {
            req.Set("sweep", opts.sweep);
        }
        if (!opts.llc_kib.empty()) {
            JsonValue ladder = JsonValue::Array();
            for (const double kib : opts.llc_kib) {
                ladder.Push(kib);
            }
            req.Set("llc_kib", std::move(ladder));
        }
        if (!opts.assocs.empty()) {
            JsonValue axis = JsonValue::Array();
            for (const double a : opts.assocs) {
                axis.Push(a);
            }
            req.Set("llc_assoc", std::move(axis));
        }
        if (!opts.policy.empty()) {
            req.Set("policy", opts.policy);
        }
        expect_stream = opts.wait;
    } else if (opts.poll) {
        req.Set("type", "poll");
        req.Set("job", opts.poll_job);
    } else if (opts.status) {
        req.Set("type", "status");
    } else {
        req.Set("type", "shutdown");
    }

    std::FILE *json_out = nullptr;
    if (!opts.json_path.empty()) {
        json_out = std::fopen(opts.json_path.c_str(), "w");
        if (json_out == nullptr) {
            return Fail("cannot open --json output file");
        }
    }
    if (!client->Send(req)) {
        if (json_out != nullptr) {
            std::fclose(json_out);
        }
        return Fail("cannot send request");
    }
    const int rc = StreamFrames(*client, json_out, expect_stream);
    if (json_out != nullptr) {
        std::fclose(json_out);
    }
    return rc;
}
