/**
 * @file
 * Headline summary: the paper's Section 1 aggregate claims, measured
 * across this framework's kernels and workload drivers —
 *
 *   - data movement is 62.7% of total system energy on average
 *   - PIM-Core: 49.1% avg energy reduction, 44.6% avg speedup
 *   - PIM-Acc:  55.4% avg energy reduction, 54.2% avg speedup
 */

#include "bench_common.h"

#include "workloads/browser/scroll_sim.h"
#include "workloads/browser/webpage.h"
#include "workloads/ml/inference.h"
#include "workloads/ml/network.h"

namespace {

using namespace pim;

void
BM_AllKernelsOnce(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(bench::RunTfKernels().size());
    }
}
BENCHMARK(BM_AllKernelsOnce)->Unit(benchmark::kMillisecond);

void
PrintHeadline(bench::BenchOutput &out)
{
    // Gather every evaluated kernel; each family is also recorded as a
    // JSON group ("browser"/"tf"/"video") with per-kernel metrics.
    std::vector<bench::KernelResult> kernels;
    auto gather = [&](const char *group, const char *figure,
                      std::vector<bench::KernelResult> results) {
        out.KernelGroup(group, figure, results);
        for (auto &r : results) {
            kernels.push_back(std::move(r));
        }
    };
    out.Section("kernels.browser", [&] {
        gather("browser", "Browser kernels (Fig. 18)",
               bench::RunBrowserKernels());
    });
    out.Section("kernels.tf", [&] {
        gather("tf", "TensorFlow kernels (Fig. 19)",
               bench::RunTfKernels());
    });
    out.Section("kernels.video", [&] {
        gather("video", "Video kernels (Fig. 20)",
               bench::RunVideoKernels());
    });

    // Whole-workload data movement shares (driver level).
    double workload_movement = 0.0;
    int workload_count = 0;
    out.Section("drivers", [&] {
        for (const auto &profile : browser::AllPageProfiles()) {
            const auto r = browser::SimulateScroll(profile);
            const auto whole =
                r.tiling_energy + r.blitting_energy + r.other_energy;
            workload_movement += whole.DataMovementFraction();
            ++workload_count;
        }
        for (const auto &net : ml::AllNetworks()) {
            const auto r = ml::RunInference(net, ml::EvalScale{});
            const auto whole = r.packing.energy + r.quantization.energy +
                               r.gemm.energy + r.other.energy;
            workload_movement += whole.DataMovementFraction();
            ++workload_count;
        }
        if (workload_count > 0) {
            out.Metric("headline.movement_share_workloads",
                       workload_movement / workload_count);
        }
    });

    out.Section("summary", [&] {
        if (kernels.empty()) {
            return;
        }
        Table per_kernel("Per-kernel PIM benefit");
        per_kernel.SetHeader({"kernel", "movement share (CPU)",
                              "PIM-Core dE", "PIM-Acc dE",
                              "PIM-Core speedup", "PIM-Acc speedup"});
        double core_e = 0, acc_e = 0, core_s = 0, acc_s = 0,
               movement = 0;
        for (const auto &k : kernels) {
            per_kernel.AddRow({
                k.name,
                Table::Pct(k.cpu.energy.DataMovementFraction()),
                Table::Pct(k.EnergySaving(k.pim_core)),
                Table::Pct(k.EnergySaving(k.pim_acc)),
                Table::Num(k.Speedup(k.pim_core), 2) + "x",
                Table::Num(k.Speedup(k.pim_acc), 2) + "x",
            });
            core_e += k.EnergySaving(k.pim_core);
            acc_e += k.EnergySaving(k.pim_acc);
            core_s += k.Speedup(k.pim_core);
            acc_s += k.Speedup(k.pim_acc);
            movement += k.cpu.energy.DataMovementFraction();
        }
        out.Emit(per_kernel);

        const double n = static_cast<double>(kernels.size());
        out.Metric("headline.movement_share_kernels", movement / n);
        out.Metric("headline.pim_core.energy_reduction", core_e / n);
        out.Metric("headline.pim_acc.energy_reduction", acc_e / n);
        out.Metric("headline.pim_core.speedup", core_s / n);
        out.Metric("headline.pim_acc.speedup", acc_s / n);

        Table summary("Headline summary — paper vs. measured");
        summary.SetHeader({"claim", "paper", "measured"});
        summary.AddRow(
            {"avg data movement share (workload drivers)", "62.7%",
             workload_count > 0
                 ? Table::Pct(workload_movement / workload_count)
                 : "n/a (drivers filtered)"});
        summary.AddRow({"avg data movement share (PIM-target kernels)",
                        "n/a (kernel-level)", Table::Pct(movement / n)});
        summary.AddRow({"PIM-Core avg energy reduction", "49.1%",
                        Table::Pct(core_e / n)});
        summary.AddRow({"PIM-Acc avg energy reduction", "55.4%",
                        Table::Pct(acc_e / n)});
        summary.AddRow({"PIM-Core avg speedup", "1.45x",
                        Table::Num(core_s / n, 2) + "x"});
        summary.AddRow({"PIM-Acc avg speedup", "1.54x (up to 2.5x)",
                        Table::Num(acc_s / n, 2) + "x"});
        out.Emit(summary);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintHeadline)
