#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "sim/sweep.h"
#include "telemetry/reference_table.h"
#include "telemetry/report_json.h"
#include "telemetry/span_tracer.h"
#include "workloads/catalog.h"

namespace pim::bench {

using core::ExecutionContext;
using core::OffloadFootprint;

KernelResult
RunKernelAllTargets(
    const std::string &name, const OffloadFootprint &footprint,
    const std::function<void(ExecutionContext &)> &kernel)
{
    return core::RunKernelAllTargets(name, footprint, kernel);
}

std::vector<KernelResult>
RunRegisteredKernels(const std::string &group)
{
    workloads::EnsureKernelCatalog();
    core::KernelSession session;
    std::vector<KernelResult> results;
    for (const core::KernelSpec *spec :
         core::KernelRegistry::Global().Group(group)) {
        results.push_back(session.Run(*spec));
    }
    return results;
}

std::vector<KernelResult>
RunBrowserKernels()
{
    return RunRegisteredKernels("browser");
}

std::vector<KernelResult>
RunTfKernels()
{
    return RunRegisteredKernels("tf");
}

std::vector<KernelResult>
RunVideoKernels()
{
    return RunRegisteredKernels("video");
}

void
AddEnergyRow(Table &table, const std::string &kernel,
             const core::RunReport &report, double baseline_pj)
{
    const auto &e = report.energy;
    table.AddRow({
        kernel,
        report.target_name,
        Table::Num(e.Total() / baseline_pj, 3),
        Table::Num(e.compute / baseline_pj, 3),
        Table::Num(e.l1 / baseline_pj, 3),
        Table::Num(e.llc / baseline_pj, 3),
        Table::Num(e.interconnect / baseline_pj, 3),
        Table::Num(e.memctrl / baseline_pj, 3),
        Table::Num(e.dram / baseline_pj, 3),
    });
}

namespace {

Table
KernelEnergyTable(const std::string &figure,
                  const std::vector<KernelResult> &results)
{
    Table energy(figure + " — normalized energy (CPU-Only = 1.0)");
    energy.SetHeader({"kernel", "target", "total", "CPU", "L1", "LLC",
                      "interconnect", "memctrl", "DRAM"});
    for (const auto &r : results) {
        const double base = r.cpu.TotalEnergyPj();
        AddEnergyRow(energy, r.name, r.cpu, base);
        AddEnergyRow(energy, r.name, r.pim_core, base);
        AddEnergyRow(energy, r.name, r.pim_acc, base);
    }
    return energy;
}

Table
KernelRuntimeTable(const std::string &figure,
                   const std::vector<KernelResult> &results)
{
    Table runtime(figure + " — normalized runtime (CPU-Only = 1.0)");
    runtime.SetHeader(
        {"kernel", "CPU-Only", "PIM-Core", "PIM-Acc", "speedup(acc)"});
    for (const auto &r : results) {
        const double base = r.cpu.TotalTimeNs();
        runtime.AddRow({
            r.name,
            "1.000",
            Table::Num(r.pim_core.TotalTimeNs() / base, 3),
            Table::Num(r.pim_acc.TotalTimeNs() / base, 3),
            Table::Num(r.Speedup(r.pim_acc), 2) + "x",
        });
    }
    return runtime;
}

std::string
Basename(const char *path)
{
    const char *slash = std::strrchr(path, '/');
    return slash != nullptr ? slash + 1 : path;
}

} // namespace

void
PrintKernelFigure(const std::string &figure,
                  const std::vector<KernelResult> &results)
{
    KernelEnergyTable(figure, results).Print();
    KernelRuntimeTable(figure, results).Print();
}

BenchOptions
ParseBenchArgs(int *argc, char **argv)
{
    BenchOptions opts;
    int out = 1;
    // A value-shaped token right after a bare flag means the caller
    // tried the space-separated spelling; catch it here instead of
    // leaking the stray value to google-benchmark.
    const auto stray_value = [&](int i) {
        if (i + 1 >= *argc) {
            return false;
        }
        const std::string_view next = argv[i + 1];
        return next == "-" || next.empty() || next[0] != '-';
    };
    for (int i = 1; i < *argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--json") {
            if (stray_value(i)) {
                opts.error = "--json takes no separate value; use "
                             "--json=<path> (bare --json writes to "
                             "stdout)";
            }
            opts.json_path = "-";
        } else if (arg.rfind("--json=", 0) == 0) {
            opts.json_path = arg.substr(7);
        } else if (arg == "--trace") {
            opts.error = "--trace requires a value; use --trace=<path>";
        } else if (arg.rfind("--trace=", 0) == 0) {
            opts.trace_path = arg.substr(8);
        } else if (arg == "--filter") {
            opts.error =
                "--filter requires a value; use --filter=<substring>";
        } else if (arg.rfind("--filter=", 0) == 0) {
            opts.filter = arg.substr(9);
        } else if (arg == "--check-refs") {
            opts.check_refs = true;
        } else if (arg == "--list") {
            opts.list = true;
        } else if (arg == "--threads") {
            opts.error =
                "--threads requires a value; use --threads=<count>";
        } else if (arg.rfind("--threads=", 0) == 0) {
            const std::string value(arg.substr(10));
            char *end = nullptr;
            const unsigned long v =
                std::strtoul(value.c_str(), &end, 10);
            if (value.empty() || end == nullptr || *end != '\0' ||
                v == 0 || v > 4096) {
                opts.error = "--threads wants a count in 1..4096, got "
                             "'" + value + "'";
            } else {
                opts.threads = static_cast<unsigned>(v);
            }
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
    return opts;
}

BenchOutput::BenchOutput(std::string binary, BenchOptions options)
    : binary_(std::move(binary)), options_(std::move(options))
{
}

bool
BenchOutput::Section(const std::string &name,
                     const std::function<void()> &fn)
{
    sections_all_.push_back(name);
    if (options_.list) {
        return false;
    }
    if (!options_.filter.empty() &&
        name.find(options_.filter) == std::string::npos) {
        return false;
    }
    PIM_TRACE_SPAN("bench", name);
    sections_run_.push_back(name);
    fn();
    return true;
}

void
BenchOutput::Emit(const Table &table)
{
    table.Print();
    tables_.Push(telemetry::ToJson(table));
}

void
BenchOutput::Metric(const std::string &name, double value)
{
    metrics_.Set(name, value);
}

void
BenchOutput::KernelGroup(const std::string &group,
                         const std::string &figure,
                         const std::vector<KernelResult> &results,
                         bool aggregates)
{
    Emit(KernelEnergyTable(figure, results));
    Emit(KernelRuntimeTable(figure, results));

    JsonValue kernels = JsonValue::Array();
    double core_saving = 0.0, acc_saving = 0.0;
    double core_speedup = 0.0, acc_speedup = 0.0;
    double moved_pj = 0.0, total_pj = 0.0;
    for (const auto &r : results) {
        JsonValue k = JsonValue::Object();
        k.Set("name", r.name);
        k.Set("cpu", telemetry::ToJson(r.cpu));
        k.Set("pim_core", telemetry::ToJson(r.pim_core));
        k.Set("pim_acc", telemetry::ToJson(r.pim_acc));
        kernels.Push(std::move(k));

        const std::string base = group + "." + telemetry::MetricSlug(r.name);
        Metric(base + ".pim_core.energy_reduction",
               r.EnergySaving(r.pim_core));
        Metric(base + ".pim_acc.energy_reduction",
               r.EnergySaving(r.pim_acc));
        Metric(base + ".pim_core.speedup", r.Speedup(r.pim_core));
        Metric(base + ".pim_acc.speedup", r.Speedup(r.pim_acc));

        core_saving += r.EnergySaving(r.pim_core);
        acc_saving += r.EnergySaving(r.pim_acc);
        core_speedup += r.Speedup(r.pim_core);
        acc_speedup += r.Speedup(r.pim_acc);
        moved_pj += r.cpu.energy.DataMovement();
        total_pj += r.cpu.TotalEnergyPj();
    }
    groups_.Set(group, std::move(kernels));

    if (!aggregates) {
        return;
    }
    if (!results.empty()) {
        const double n = static_cast<double>(results.size());
        Metric(group + ".avg.pim_core.energy_reduction", core_saving / n);
        Metric(group + ".avg.pim_acc.energy_reduction", acc_saving / n);
        Metric(group + ".avg.pim_core.speedup", core_speedup / n);
        Metric(group + ".avg.pim_acc.speedup", acc_speedup / n);
    }
    if (total_pj > 0.0) {
        Metric(group + ".avg.movement_share", moved_pj / total_pj);
    }
}

int
BenchOutput::Finish()
{
    int rc = 0;

    if (options_.list) {
        std::printf("sections:\n");
        for (const auto &name : sections_all_) {
            std::printf("  %s\n", name.c_str());
        }
    }

    if (!options_.json_path.empty() || options_.check_refs) {
        JsonValue doc = telemetry::MakeReportDocument(binary_);
        JsonValue sections = JsonValue::Array();
        for (const auto &name : sections_run_) {
            sections.Push(name);
        }
        doc.Set("sections", std::move(sections));
        doc.Set("groups", std::move(groups_));
        doc.Set("metrics", std::move(metrics_));
        doc.Set("tables", std::move(tables_));

        if (!options_.json_path.empty()) {
            const std::string text = doc.Dump(2) + "\n";
            if (options_.json_path == "-") {
                std::fwrite(text.data(), 1, text.size(), stdout);
            } else {
                std::FILE *f = std::fopen(options_.json_path.c_str(), "w");
                if (f == nullptr ||
                    std::fwrite(text.data(), 1, text.size(), f) !=
                        text.size()) {
                    std::fprintf(stderr, "bench: cannot write %s\n",
                                 options_.json_path.c_str());
                    rc = 1;
                }
                if (f != nullptr) {
                    std::fclose(f);
                }
            }
        }

        if (options_.check_refs) {
            const auto summary = telemetry::CheckReport(
                doc, telemetry::ReferenceTable::Paper());
            summary.ToTable().Print();
            std::printf("reference check: %d passed, %d warned, "
                        "%d failed, %d skipped -> %s\n",
                        summary.passed, summary.warned, summary.failed,
                        summary.skipped, summary.ok() ? "OK" : "FAIL");
            if (!summary.ok()) {
                rc = 1;
            }
        }
    }

    if (!options_.trace_path.empty()) {
        if (!telemetry::Tracer::Global().WriteTo(options_.trace_path)) {
            std::fprintf(stderr, "bench: cannot write %s\n",
                         options_.trace_path.c_str());
            rc = 1;
        }
    }
    return rc;
}

int
BenchMain(int argc, char **argv,
          const std::function<void(BenchOutput &)> &print_fn)
{
    BenchOptions opts = ParseBenchArgs(&argc, argv);
    if (!opts.error.empty()) {
        std::fprintf(stderr, "bench: %s\n", opts.error.c_str());
        return 1;
    }
    if (!opts.trace_path.empty()) {
        telemetry::Tracer::Global().SetEnabled(true);
    }
    if (opts.threads != 0) {
        // Must land before any SweepRunner is constructed (including
        // the bench.sweep_threads probe below).
        sim::SweepRunner::SetDefaultThreads(opts.threads);
    }
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    if (!opts.list) {
        ::benchmark::RunSpecifiedBenchmarks();
    }
    BenchOutput out(Basename(argv[0]), std::move(opts));
    // Sweep parallelism in effect for this run (the PIM_SWEEP_THREADS
    // override or hardware concurrency) — recorded so perf trajectories
    // built from JSON reports can normalize across machines.
    out.Metric("bench.sweep_threads",
               static_cast<double>(sim::SweepRunner().thread_count()));
    print_fn(out);
    return out.Finish();
}

} // namespace pim::bench
