#include "bench_common.h"

#include <cstdio>
#include <cstring>
#include <string_view>

#include "common/rng.h"
#include "sim/sweep.h"
#include "telemetry/reference_table.h"
#include "telemetry/report_json.h"
#include "telemetry/span_tracer.h"
#include "workloads/browser/color_blitter.h"
#include "workloads/browser/lzo.h"
#include "workloads/browser/page_data.h"
#include "workloads/browser/texture_tiler.h"
#include "workloads/ml/pack.h"
#include "workloads/ml/quantize.h"
#include "workloads/video/deblock.h"
#include "workloads/video/decoder.h"
#include "workloads/video/encoder.h"
#include "workloads/video/motion.h"
#include "workloads/video/subpel.h"
#include "workloads/video/video_gen.h"

namespace pim::bench {

using core::ExecutionContext;
using core::OffloadFootprint;
using core::OffloadRuntime;

KernelResult
RunKernelAllTargets(
    const std::string &name, const OffloadFootprint &footprint,
    const std::function<void(ExecutionContext &)> &kernel)
{
    // Trace-driven path: the kernel's computation runs once (CPU-Only,
    // recording its stream); the PIM targets are evaluated by parallel
    // batched replay.  See OffloadRuntime::RunAllReplayed.
    OffloadRuntime rt;
    const auto reports = rt.RunAllReplayed(name, footprint, kernel);
    return {name, reports[0], reports[1], reports[2]};
}

std::vector<KernelResult>
RunBrowserKernels()
{
    Rng rng(0xB10);
    std::vector<KernelResult> results;

    // Texture tiling: 512x512 RGBA tiles (Section 9).
    browser::Bitmap linear(512, 512);
    linear.Randomize(rng);
    results.push_back(RunKernelAllTargets(
        "Texture Tiling", {linear.size_bytes(), linear.size_bytes()},
        [&](ExecutionContext &ctx) {
            browser::TiledTexture tiled(512, 512);
            browser::TileTexture(linear, tiled, ctx);
        }));

    // Color blitting: random bitmaps blended into a 1024x1024 target.
    browser::Bitmap sprite(256, 256);
    sprite.Randomize(rng);
    results.push_back(RunKernelAllTargets(
        "Color Blitting",
        {sprite.size_bytes(), Bytes{1024} * 1024 * 4},
        [&](ExecutionContext &ctx) {
            browser::Bitmap target(1024, 1024, 0x80808080);
            browser::ColorBlitter blitter(target, ctx);
            for (int y = 0; y < 1024; y += 256) {
                for (int x = 0; x < 1024; x += 256) {
                    blitter.BlitSrcOver(sprite, x, y);
                }
            }
        }));

    // Compression / decompression: Chromebook-like page data.
    pim::SimBuffer<std::uint8_t> pages(256 * 1024);
    browser::FillPageLikeData(pages, rng, 0.4);
    pim::SimBuffer<std::uint8_t> compressed(
        browser::LzoCompressBound(pages.size()));
    std::size_t csize = 0;
    results.push_back(RunKernelAllTargets(
        "Compression", {pages.size_bytes(), pages.size_bytes() / 2},
        [&](ExecutionContext &ctx) {
            csize = browser::LzoCompress(pages, pages.size(), compressed,
                                         ctx);
        }));

    results.push_back(RunKernelAllTargets(
        "Decompression", {csize, pages.size_bytes()},
        [&](ExecutionContext &ctx) {
            pim::SimBuffer<std::uint8_t> out(pages.size());
            browser::LzoDecompress(compressed, csize, out, ctx);
        }));

    return results;
}

std::vector<KernelResult>
RunTfKernels()
{
    Rng rng(0x7F);
    std::vector<KernelResult> results;

    // Packing: a large GEMM operand (network-scale matrix chunk).
    ml::Matrix<std::uint8_t> lhs(1024, 1152);
    lhs.Randomize(rng);
    results.push_back(RunKernelAllTargets(
        "Packing", {lhs.size_bytes(), lhs.size_bytes()},
        [&](ExecutionContext &ctx) {
            ml::PackedMatrix packed(1024, 1152);
            ml::PackLhs(lhs, packed, ctx);
        }));

    // Quantization: re-quantize a 32-bit GEMM result matrix.
    ml::Matrix<std::int32_t> result32(1024, 512);
    for (int r = 0; r < result32.rows(); ++r) {
        for (int c = 0; c < result32.cols(); ++c) {
            result32.At(r, c) =
                static_cast<std::int32_t>(rng.Range(-1000000, 1000000));
        }
    }
    results.push_back(RunKernelAllTargets(
        "Quantization",
        {result32.size_bytes(), result32.size_bytes() / 4},
        [&](ExecutionContext &ctx) {
            ml::Matrix<std::uint8_t> out(1024, 512);
            ml::RequantizeResult(result32, out, ctx);
        }));

    return results;
}

std::vector<KernelResult>
RunVideoKernels()
{
    std::vector<KernelResult> results;

    // Full-HD+ stand-in for the paper's 4K decode input (DESIGN.md):
    // large enough that frames stream through the host LLC instead of
    // living in it, as the paper's 4K frames do.
    video::VideoGenConfig cfg;
    cfg.width = 1920;
    cfg.height = 1088;
    const auto frames = video::GenerateClip(cfg, 4);

    // Sub-pixel interpolation over every macroblock of a frame.
    results.push_back(RunKernelAllTargets(
        "Sub-Pixel Interpolation", {frames[0].y.size_bytes(), 0},
        [&](ExecutionContext &ctx) {
            video::PredBlock block(16, 16);
            for (int y = 0; y < cfg.height; y += 16) {
                for (int x = 0; x < cfg.width; x += 16) {
                    video::InterpolateBlock(
                        frames[0].y, x, y,
                        video::MotionVector{5, 3}, block, ctx);
                }
            }
        }));

    // Deblocking filter over a frame.
    results.push_back(RunKernelAllTargets(
        "Deblocking Filter",
        {frames[1].y.size_bytes(), frames[1].y.size_bytes()},
        [&](ExecutionContext &ctx) {
            video::Frame work = frames[1];
            video::DeblockPlane(work.y, video::DeblockParams{}, ctx);
        }));

    // Motion estimation over three reference frames (HD input, as the
    // paper's encoder study uses).
    video::VideoGenConfig hd_cfg;
    hd_cfg.width = 1280;
    hd_cfg.height = 720;
    const auto hd_frames = video::GenerateClip(hd_cfg, 4);
    results.push_back(RunKernelAllTargets(
        "Motion Estimation", {3 * hd_frames[0].y.size_bytes(), 0},
        [&](ExecutionContext &ctx) {
            const std::vector<const video::Plane *> refs = {
                &hd_frames[0].y, &hd_frames[1].y, &hd_frames[2].y};
            for (int y = 0; y < hd_cfg.height; y += 16) {
                for (int x = 0; x < hd_cfg.width; x += 16) {
                    video::DiamondSearch(hd_frames[3].y, refs, x, y,
                                         video::MotionSearchParams{},
                                         ctx);
                }
            }
        }));

    return results;
}

void
AddEnergyRow(Table &table, const std::string &kernel,
             const core::RunReport &report, double baseline_pj)
{
    const auto &e = report.energy;
    table.AddRow({
        kernel,
        report.target_name,
        Table::Num(e.Total() / baseline_pj, 3),
        Table::Num(e.compute / baseline_pj, 3),
        Table::Num(e.l1 / baseline_pj, 3),
        Table::Num(e.llc / baseline_pj, 3),
        Table::Num(e.interconnect / baseline_pj, 3),
        Table::Num(e.memctrl / baseline_pj, 3),
        Table::Num(e.dram / baseline_pj, 3),
    });
}

void
RunSwEncoder(int width, int height, int frames,
             video::CodecPhases &phases)
{
    video::VideoGenConfig cfg;
    cfg.width = width;
    cfg.height = height;
    video::VideoGenerator gen(cfg);
    video::Vp9Encoder encoder(width, height);
    ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    for (int i = 0; i < frames; ++i) {
        const video::Frame frame = gen.NextFrame();
        encoder.EncodeFrame(frame, ctx, &phases);
    }
}

void
RunSwDecoder(int width, int height, int frames,
             video::CodecPhases &phases)
{
    video::VideoGenConfig cfg;
    cfg.width = width;
    cfg.height = height;
    video::VideoGenerator gen(cfg);
    video::Vp9Encoder encoder(width, height);
    video::Vp9Decoder decoder;
    ExecutionContext ectx(core::ExecutionTarget::kCpuOnly);
    ExecutionContext dctx(core::ExecutionTarget::kCpuOnly);
    for (int i = 0; i < frames; ++i) {
        const video::Frame frame = gen.NextFrame();
        const auto enc = encoder.EncodeFrame(frame, ectx);
        decoder.DecodeFrame(enc.bitstream, dctx, &phases);
    }
}

namespace {

Table
KernelEnergyTable(const std::string &figure,
                  const std::vector<KernelResult> &results)
{
    Table energy(figure + " — normalized energy (CPU-Only = 1.0)");
    energy.SetHeader({"kernel", "target", "total", "CPU", "L1", "LLC",
                      "interconnect", "memctrl", "DRAM"});
    for (const auto &r : results) {
        const double base = r.cpu.TotalEnergyPj();
        AddEnergyRow(energy, r.name, r.cpu, base);
        AddEnergyRow(energy, r.name, r.pim_core, base);
        AddEnergyRow(energy, r.name, r.pim_acc, base);
    }
    return energy;
}

Table
KernelRuntimeTable(const std::string &figure,
                   const std::vector<KernelResult> &results)
{
    Table runtime(figure + " — normalized runtime (CPU-Only = 1.0)");
    runtime.SetHeader(
        {"kernel", "CPU-Only", "PIM-Core", "PIM-Acc", "speedup(acc)"});
    for (const auto &r : results) {
        const double base = r.cpu.TotalTimeNs();
        runtime.AddRow({
            r.name,
            "1.000",
            Table::Num(r.pim_core.TotalTimeNs() / base, 3),
            Table::Num(r.pim_acc.TotalTimeNs() / base, 3),
            Table::Num(r.Speedup(r.pim_acc), 2) + "x",
        });
    }
    return runtime;
}

std::string
Basename(const char *path)
{
    const char *slash = std::strrchr(path, '/');
    return slash != nullptr ? slash + 1 : path;
}

} // namespace

void
PrintKernelFigure(const std::string &figure,
                  const std::vector<KernelResult> &results)
{
    KernelEnergyTable(figure, results).Print();
    KernelRuntimeTable(figure, results).Print();
}

BenchOptions
ParseBenchArgs(int *argc, char **argv)
{
    BenchOptions opts;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--json") {
            opts.json_path = "-";
        } else if (arg.rfind("--json=", 0) == 0) {
            opts.json_path = arg.substr(7);
        } else if (arg.rfind("--trace=", 0) == 0) {
            opts.trace_path = arg.substr(8);
        } else if (arg.rfind("--filter=", 0) == 0) {
            opts.filter = arg.substr(9);
        } else if (arg == "--check-refs") {
            opts.check_refs = true;
        } else if (arg == "--list") {
            opts.list = true;
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
    return opts;
}

BenchOutput::BenchOutput(std::string binary, BenchOptions options)
    : binary_(std::move(binary)), options_(std::move(options))
{
}

bool
BenchOutput::Section(const std::string &name,
                     const std::function<void()> &fn)
{
    sections_all_.push_back(name);
    if (options_.list) {
        return false;
    }
    if (!options_.filter.empty() &&
        name.find(options_.filter) == std::string::npos) {
        return false;
    }
    PIM_TRACE_SPAN("bench", name);
    sections_run_.push_back(name);
    fn();
    return true;
}

void
BenchOutput::Emit(const Table &table)
{
    table.Print();
    tables_.Push(telemetry::ToJson(table));
}

void
BenchOutput::Metric(const std::string &name, double value)
{
    metrics_.Set(name, value);
}

void
BenchOutput::KernelGroup(const std::string &group,
                         const std::string &figure,
                         const std::vector<KernelResult> &results)
{
    Emit(KernelEnergyTable(figure, results));
    Emit(KernelRuntimeTable(figure, results));

    JsonValue kernels = JsonValue::Array();
    double core_saving = 0.0, acc_saving = 0.0;
    double core_speedup = 0.0, acc_speedup = 0.0;
    double moved_pj = 0.0, total_pj = 0.0;
    for (const auto &r : results) {
        JsonValue k = JsonValue::Object();
        k.Set("name", r.name);
        k.Set("cpu", telemetry::ToJson(r.cpu));
        k.Set("pim_core", telemetry::ToJson(r.pim_core));
        k.Set("pim_acc", telemetry::ToJson(r.pim_acc));
        kernels.Push(std::move(k));

        const std::string base = group + "." + telemetry::MetricSlug(r.name);
        Metric(base + ".pim_core.energy_reduction",
               r.EnergySaving(r.pim_core));
        Metric(base + ".pim_acc.energy_reduction",
               r.EnergySaving(r.pim_acc));
        Metric(base + ".pim_core.speedup", r.Speedup(r.pim_core));
        Metric(base + ".pim_acc.speedup", r.Speedup(r.pim_acc));

        core_saving += r.EnergySaving(r.pim_core);
        acc_saving += r.EnergySaving(r.pim_acc);
        core_speedup += r.Speedup(r.pim_core);
        acc_speedup += r.Speedup(r.pim_acc);
        moved_pj += r.cpu.energy.DataMovement();
        total_pj += r.cpu.TotalEnergyPj();
    }
    groups_.Set(group, std::move(kernels));

    if (!results.empty()) {
        const double n = static_cast<double>(results.size());
        Metric(group + ".avg.pim_core.energy_reduction", core_saving / n);
        Metric(group + ".avg.pim_acc.energy_reduction", acc_saving / n);
        Metric(group + ".avg.pim_core.speedup", core_speedup / n);
        Metric(group + ".avg.pim_acc.speedup", acc_speedup / n);
    }
    if (total_pj > 0.0) {
        Metric(group + ".avg.movement_share", moved_pj / total_pj);
    }
}

int
BenchOutput::Finish()
{
    int rc = 0;

    if (options_.list) {
        std::printf("sections:\n");
        for (const auto &name : sections_all_) {
            std::printf("  %s\n", name.c_str());
        }
    }

    if (!options_.json_path.empty() || options_.check_refs) {
        JsonValue doc = telemetry::MakeReportDocument(binary_);
        JsonValue sections = JsonValue::Array();
        for (const auto &name : sections_run_) {
            sections.Push(name);
        }
        doc.Set("sections", std::move(sections));
        doc.Set("groups", std::move(groups_));
        doc.Set("metrics", std::move(metrics_));
        doc.Set("tables", std::move(tables_));

        if (!options_.json_path.empty()) {
            const std::string text = doc.Dump(2) + "\n";
            if (options_.json_path == "-") {
                std::fwrite(text.data(), 1, text.size(), stdout);
            } else {
                std::FILE *f = std::fopen(options_.json_path.c_str(), "w");
                if (f == nullptr ||
                    std::fwrite(text.data(), 1, text.size(), f) !=
                        text.size()) {
                    std::fprintf(stderr, "bench: cannot write %s\n",
                                 options_.json_path.c_str());
                    rc = 1;
                }
                if (f != nullptr) {
                    std::fclose(f);
                }
            }
        }

        if (options_.check_refs) {
            const auto summary = telemetry::CheckReport(
                doc, telemetry::ReferenceTable::Paper());
            summary.ToTable().Print();
            std::printf("reference check: %d passed, %d warned, "
                        "%d failed, %d skipped -> %s\n",
                        summary.passed, summary.warned, summary.failed,
                        summary.skipped, summary.ok() ? "OK" : "FAIL");
            if (!summary.ok()) {
                rc = 1;
            }
        }
    }

    if (!options_.trace_path.empty()) {
        if (!telemetry::Tracer::Global().WriteTo(options_.trace_path)) {
            std::fprintf(stderr, "bench: cannot write %s\n",
                         options_.trace_path.c_str());
            rc = 1;
        }
    }
    return rc;
}

int
BenchMain(int argc, char **argv,
          const std::function<void(BenchOutput &)> &print_fn)
{
    BenchOptions opts = ParseBenchArgs(&argc, argv);
    if (!opts.trace_path.empty()) {
        telemetry::Tracer::Global().SetEnabled(true);
    }
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    if (!opts.list) {
        ::benchmark::RunSpecifiedBenchmarks();
    }
    BenchOutput out(Basename(argv[0]), std::move(opts));
    // Sweep parallelism in effect for this run (the PIM_SWEEP_THREADS
    // override or hardware concurrency) — recorded so perf trajectories
    // built from JSON reports can normalize across machines.
    out.Metric("bench.sweep_threads",
               static_cast<double>(sim::SweepRunner().thread_count()));
    print_fn(out);
    return out.Finish();
}

} // namespace pim::bench
