/**
 * @file
 * Figure 20: energy and runtime of the video kernels (sub-pixel
 * interpolation, deblocking filter, motion estimation) on CPU-Only,
 * PIM-Core, and PIM-Acc, normalized to CPU-Only.
 */

#include "bench_common.h"

#include "workloads/video/subpel.h"
#include "workloads/video/video_gen.h"

namespace {

using namespace pim;

void
BM_SubPixelInterpolation(benchmark::State &state)
{
    video::VideoGenConfig cfg;
    cfg.width = 320;
    cfg.height = 192;
    video::VideoGenerator gen(cfg);
    const video::Frame frame = gen.NextFrame();
    video::PredBlock block(16, 16);
    core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    for (auto _ : state) {
        for (int y = 0; y < cfg.height; y += 16) {
            for (int x = 0; x < cfg.width; x += 16) {
                video::InterpolateBlock(frame.y, x, y,
                                        video::MotionVector{5, 3},
                                        block, ctx);
            }
        }
        benchmark::DoNotOptimize(block.pixels.data());
    }
}
BENCHMARK(BM_SubPixelInterpolation)->Unit(benchmark::kMillisecond);

void
PrintFigure20(bench::BenchOutput &out)
{
    out.Section("kernels", [&] {
        out.KernelGroup("video", "Figure 20", bench::RunVideoKernels());
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure20)
