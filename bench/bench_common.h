/**
 * @file
 * Shared infrastructure for the per-figure bench binaries: a common
 * main() that runs registered google-benchmark timers and then prints
 * the paper-figure tables, plus kernel runners shared by Figures 18,
 * 19, 20, and the headline summary.
 */

#ifndef PIM_BENCH_BENCH_COMMON_H
#define PIM_BENCH_BENCH_COMMON_H

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/offload_runtime.h"

namespace pim::bench {

/** The (CPU-Only, PIM-Core, PIM-Acc) reports for one kernel. */
struct KernelResult
{
    std::string name;
    core::RunReport cpu;
    core::RunReport pim_core;
    core::RunReport pim_acc;

    double
    EnergySaving(const core::RunReport &pim) const
    {
        return 1.0 - pim.TotalEnergyPj() / cpu.TotalEnergyPj();
    }

    double
    Speedup(const core::RunReport &pim) const
    {
        return cpu.TotalTimeNs() / pim.TotalTimeNs();
    }
};

/** Run @p kernel on all three targets through the offload runtime. */
KernelResult RunKernelAllTargets(
    const std::string &name, const core::OffloadFootprint &footprint,
    const std::function<void(core::ExecutionContext &)> &kernel);

/** The paper's browser kernels (Figure 18 inputs, Section 9). */
std::vector<KernelResult> RunBrowserKernels();

/** The paper's TensorFlow kernels (Figure 19 left). */
std::vector<KernelResult> RunTfKernels();

/** The paper's video kernels (Figure 20 inputs, Section 9). */
std::vector<KernelResult> RunVideoKernels();

/**
 * Print a Figure 18/20-style pair of tables: normalized energy by
 * component and normalized runtime, per kernel and target.
 */
void PrintKernelFigure(const std::string &figure,
                       const std::vector<KernelResult> &results);

/** Append one target's normalized-energy row. */
void AddEnergyRow(Table &table, const std::string &kernel,
                  const core::RunReport &report, double baseline_pj);

} // namespace pim::bench

#include "workloads/video/codec.h"

namespace pim::bench {

/**
 * Run the software encoder over a synthetic clip; fills the encoder's
 * per-function phase buckets (Figure 15 input).  Resolutions are
 * scaled stand-ins for the paper's HD/4K clips (DESIGN.md).
 */
void RunSwEncoder(int width, int height, int frames,
                  video::CodecPhases &phases);

/**
 * Encode then decode a synthetic clip; fills the *decoder's* phase
 * buckets (Figures 10/11 input).
 */
void RunSwDecoder(int width, int height, int frames,
                  video::CodecPhases &phases);

} // namespace pim::bench

/**
 * Standard bench main: run google-benchmark timers, then print the
 * figure tables via @p print_fn.
 */
#define PIM_BENCH_MAIN(print_fn)                                         \
    int main(int argc, char **argv)                                     \
    {                                                                    \
        ::benchmark::Initialize(&argc, argv);                            \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {      \
            return 1;                                                    \
        }                                                                \
        ::benchmark::RunSpecifiedBenchmarks();                           \
        print_fn();                                                      \
        return 0;                                                        \
    }

#endif // PIM_BENCH_BENCH_COMMON_H
