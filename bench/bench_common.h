/**
 * @file
 * Shared infrastructure for the per-figure bench binaries: a common
 * main() that runs registered google-benchmark timers and then prints
 * the paper-figure tables, plus registry-driven kernel runners shared
 * by Figures 18, 19, 20, the headline summary, and the pim_run driver.
 *
 * Every binary built on PIM_BENCH_MAIN gains the telemetry CLI:
 *
 *   --json=<path|->   write the structured run report (JSON)
 *   --trace=<path>    write a Chrome trace-event file of the run
 *   --check-refs      gate the report against the paper ReferenceTable
 *   --filter=<substr> only run matching output sections
 *   --list            list section names without running them
 *   --threads=<n>     sweep worker count (beats PIM_SWEEP_THREADS)
 *
 * without any per-binary flag handling; binaries only describe their
 * output through a BenchOutput (sections, tables, metrics).
 */

#ifndef PIM_BENCH_BENCH_COMMON_H
#define PIM_BENCH_BENCH_COMMON_H

#include <benchmark/benchmark.h>

#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/table.h"
#include "core/kernel_registry.h"
#include "core/offload_runtime.h"

namespace pim::bench {

/**
 * The (CPU-Only, PIM-Core, PIM-Acc) reports for one kernel — the
 * canonical definition lives in core/kernel_registry.h so the bench
 * layer, tests, and telemetry share one savings/speedup math.
 */
using KernelResult = core::KernelResult;

/**
 * Run @p kernel on all three targets through the offload runtime.
 * Thin forwarder to core::RunKernelAllTargets (kept for bench-local
 * ad-hoc kernels; catalog kernels go through core::KernelSession).
 */
KernelResult RunKernelAllTargets(
    const std::string &name, const core::OffloadFootprint &footprint,
    const std::function<void(core::ExecutionContext &)> &kernel);

/**
 * Run one registered workload group ("browser", "tf", "video") at
 * paper scale through a fresh KernelSession, in figure order.
 */
std::vector<KernelResult> RunRegisteredKernels(const std::string &group);

/** The paper's browser kernels (Figure 18 inputs, Section 9). */
std::vector<KernelResult> RunBrowserKernels();

/** The paper's TensorFlow kernels (Figure 19 left). */
std::vector<KernelResult> RunTfKernels();

/** The paper's video kernels (Figure 20 inputs, Section 9). */
std::vector<KernelResult> RunVideoKernels();

/**
 * Print a Figure 18/20-style pair of tables: normalized energy by
 * component and normalized runtime, per kernel and target.
 */
void PrintKernelFigure(const std::string &figure,
                       const std::vector<KernelResult> &results);

/** Append one target's normalized-energy row. */
void AddEnergyRow(Table &table, const std::string &kernel,
                  const core::RunReport &report, double baseline_pj);

/** Telemetry flags stripped from argv before google-benchmark sees it. */
struct BenchOptions
{
    std::string json_path;  ///< Empty = no report; "-" = stdout.
    std::string trace_path; ///< Empty = no trace file.
    std::string filter;     ///< Substring match on section names.
    bool check_refs = false;
    bool list = false;
    /** Sweep worker count; 0 = unset.  A nonzero value becomes the
     *  process-wide SweepRunner default, overriding the
     *  PIM_SWEEP_THREADS environment variable (flag > env > cores). */
    unsigned threads = 0;
    /** Non-empty when a recognized flag was misspelled (e.g. a bare
     *  `--trace`, or `--json -` instead of `--json=-`); BenchMain
     *  reports it and exits instead of leaking the argument to
     *  google-benchmark. */
    std::string error;
};

/**
 * Strip the telemetry flags (--json=, --trace=, --filter=,
 * --check-refs, --list, --threads=) out of argv, compacting it in place and
 * updating *argc, so the remainder can go to benchmark::Initialize.
 * Malformed spellings of those flags set BenchOptions::error.
 */
BenchOptions ParseBenchArgs(int *argc, char **argv);

/**
 * Structured output collector handed to each binary's print function.
 * Everything printed through it is also captured into the JSON report
 * (when --json/--check-refs is active), and sections honor
 * --filter/--list.
 */
class BenchOutput
{
  public:
    BenchOutput(std::string binary, BenchOptions options);

    const BenchOptions &options() const { return options_; }

    /**
     * Run @p fn unless the section is excluded by --filter; under
     * --list only the name is recorded.  Returns true when @p fn ran.
     */
    bool Section(const std::string &name, const std::function<void()> &fn);

    /** Print @p table and record it in the report's "tables" array. */
    void Emit(const Table &table);

    /** Record one scalar under the report's flat "metrics" object. */
    void Metric(const std::string &name, double value);

    /**
     * Print the Figure 18/20-style tables for @p results and record
     * the full per-kernel reports plus derived metrics
     * (<group>.<kernel>.pim_core|pim_acc.energy_reduction|speedup and
     * the <group>.avg.* aggregates) under @p group.  Pass
     * @p aggregates = false when @p results is a partial group (e.g. a
     * filtered pim_run) so the <group>.avg.* reference-gated metrics
     * are not emitted from incomplete data.
     */
    void KernelGroup(const std::string &group, const std::string &figure,
                     const std::vector<KernelResult> &results,
                     bool aggregates = true);

    /**
     * Write the JSON report / trace file, run the reference check when
     * requested, and return the process exit code (non-zero when
     * --check-refs found a failure or an output file could not be
     * written).
     */
    int Finish();

  private:
    std::string binary_;
    BenchOptions options_;
    std::vector<std::string> sections_run_;
    std::vector<std::string> sections_all_;
    JsonValue groups_ = JsonValue::Object();
    JsonValue metrics_ = JsonValue::Object();
    JsonValue tables_ = JsonValue::Array();
};

/**
 * Standard bench main body: strip telemetry flags, run registered
 * google-benchmark timers, call @p print_fn with a BenchOutput, and
 * finalize the report/trace/reference-check outputs.
 */
int BenchMain(int argc, char **argv,
              const std::function<void(BenchOutput &)> &print_fn);

} // namespace pim::bench

/**
 * Standard bench main: run google-benchmark timers, then produce the
 * figure output via @p print_fn (a void(pim::bench::BenchOutput &)).
 */
#define PIM_BENCH_MAIN(print_fn)                                         \
    int main(int argc, char **argv)                                     \
    {                                                                    \
        return ::pim::bench::BenchMain(argc, argv, (print_fn));          \
    }

#endif // PIM_BENCH_BENCH_COMMON_H
