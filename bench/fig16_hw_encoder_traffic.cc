/**
 * @file
 * Figure 16: off-chip traffic breakdown of the VP9 *hardware* encoder
 * for one HD and one 4K frame, with and without lossless frame
 * compression.
 */

#include "bench_common.h"

#include "workloads/video/hw_model.h"

namespace {

using namespace pim;
using video::HwEncoderTraffic;
using video::HwResolution;

void
BM_HwEncoderTrafficModel(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            HwEncoderTraffic(HwResolution::k4k, true).Total());
    }
}
BENCHMARK(BM_HwEncoderTrafficModel);

void
AddRow(Table &table, const char *config,
       const video::HwTrafficBreakdown &t)
{
    table.AddRow({
        config,
        Table::Num(t.current_frame, 2),
        Table::Num(t.reference_frame, 2),
        Table::Num(t.deblocking, 2),
        Table::Num(t.compression_info, 2),
        Table::Num(t.reconstructed_frame, 2),
        Table::Num(t.encoded_bitstream, 2),
        Table::Num(t.other, 2),
        Table::Num(t.Total(), 2),
    });
}

void
PrintFigure16(bench::BenchOutput &out)
{
    out.Section("traffic", [&] {
    Table table("Figure 16 — HW encoder off-chip traffic per frame (MB)");
    table.SetHeader({"config", "current", "reference", "deblocking",
                     "compr.info", "recon frame", "bitstream", "other",
                     "total"});
    AddRow(table, "HD, no compression",
           HwEncoderTraffic(HwResolution::kHd, false));
    AddRow(table, "HD, with compression",
           HwEncoderTraffic(HwResolution::kHd, true));
    AddRow(table, "4K, no compression",
           HwEncoderTraffic(HwResolution::k4k, false));
    AddRow(table, "4K, with compression",
           HwEncoderTraffic(HwResolution::k4k, true));
    out.Emit(table);

    const auto hd_plain = HwEncoderTraffic(HwResolution::kHd, false);
    const auto hd_comp = HwEncoderTraffic(HwResolution::kHd, true);
    Table note("Figure 16 — paper checkpoints");
    note.SetHeader({"claim", "paper", "measured"});
    note.AddRow({"HD reference share, no compression", "65.1%",
                 Table::Pct(hd_plain.ReferenceShare())});
    note.AddRow({"current-frame share, no compression", "14.2%",
                 Table::Pct(hd_plain.current_frame / hd_plain.Total())});
    note.AddRow({"current-frame share, with compression", "up to 31.9%",
                 Table::Pct(hd_comp.current_frame / hd_comp.Total())});
    note.AddRow(
        {"compression cuts reference traffic by", "59.7%",
         Table::Pct(1.0 -
                    hd_comp.reference_frame / hd_plain.reference_frame)});
    out.Emit(note);
    out.Metric("fig16.hd.reference_share.plain",
               hd_plain.ReferenceShare());
    out.Metric("fig16.hd.current_share.plain",
               hd_plain.current_frame / hd_plain.Total());
    out.Metric("fig16.reference_cut_by_compression",
               1.0 - hd_comp.reference_frame / hd_plain.reference_frame);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure16)
