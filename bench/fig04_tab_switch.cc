/**
 * @file
 * Figure 4: bytes per second swapped out to ZRAM (left series) and in
 * from ZRAM (right series) while a user cycles through tabs, plus the
 * Section 4.3.1 totals and energy/time shares of compression.
 */

#include "bench_common.h"

#include "common/rng.h"
#include "workloads/browser/page_data.h"
#include "workloads/browser/tab_switch.h"
#include "workloads/browser/zram.h"

namespace {

using namespace pim;

void
BM_ZramSwapOutPage(benchmark::State &state)
{
    Rng rng(4);
    browser::ZramPool pool;
    core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    pim::SimBuffer<std::uint8_t> page(browser::ZramPool::kPageBytes);
    browser::FillPageLikeData(page, rng, 0.4);
    pim::SimBuffer<std::uint8_t> restore(browser::ZramPool::kPageBytes);
    for (auto _ : state) {
        const auto out = pool.SwapOut(page, ctx);
        pool.SwapIn(out.handle, restore, ctx);
        benchmark::DoNotOptimize(restore.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        browser::ZramPool::kPageBytes);
}
BENCHMARK(BM_ZramSwapOutPage);

void
PrintFigure4(bench::BenchOutput &out)
{
    browser::TabSwitchConfig cfg; // 50 tabs, 2 passes (scaled footprints)
    out.Section("tab_switch", [&] {
        const auto r = browser::SimulateTabSwitching(cfg);
        Table series("Figure 4 — ZRAM swap traffic over time (MB/s)");
        series.SetHeader({"t (s)", "swapped out", "swapped in"});
        // Print only seconds with activity plus every 20th second, to
        // keep the series readable while preserving its spiky shape.
        for (std::size_t t = 0; t < r.swap_out_mb_per_s.size(); ++t) {
            const double swapped_out = r.swap_out_mb_per_s[t];
            const double swapped_in = r.swap_in_mb_per_s[t];
            if (swapped_out > 0.0 || swapped_in > 0.0 || t % 20 == 0) {
                series.AddRow({std::to_string(t),
                               Table::Num(swapped_out, 2),
                               Table::Num(swapped_in, 2)});
            }
        }
        out.Emit(series);

        Table summary("Figure 4 / Section 4.3.1 — totals");
        summary.SetHeader({"metric", "value"});
        summary.AddRow({"total swapped out (MB)",
                        Table::Num(r.total_swapped_out / 1.0e6, 2)});
        summary.AddRow({"total swapped in (MB)",
                        Table::Num(r.total_swapped_in / 1.0e6, 2)});
        summary.AddRow(
            {"compression ratio", Table::Num(r.compression_ratio, 2)});
        summary.AddRow({"compression share of energy",
                        Table::Pct(r.CompressionEnergyFraction())});
        summary.AddRow({"compression share of time",
                        Table::Pct(r.CompressionTimeFraction())});
        out.Emit(summary);
        out.Metric("fig04.compression_energy_share",
                   r.CompressionEnergyFraction());
        out.Metric("fig04.compression_ratio", r.compression_ratio);
    });
}

} // namespace

PIM_BENCH_MAIN(PrintFigure4)
