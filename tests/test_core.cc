/**
 * @file
 * Tests for the core PIM framework: compute models, execution contexts,
 * coherence, area model, PIM-target criteria, offload runtime, vaults.
 */

#include <gtest/gtest.h>

#include "common/buffer.h"
#include "core/area_model.h"
#include "core/coherence.h"
#include "core/compute_model.h"
#include "core/execution_context.h"
#include "core/offload_runtime.h"
#include "core/pim_target.h"
#include "core/vault.h"

namespace pim::core {
namespace {

TEST(ComputeModel, TargetNames)
{
    EXPECT_STREQ(TargetName(ExecutionTarget::kCpuOnly), "CPU-Only");
    EXPECT_STREQ(TargetName(ExecutionTarget::kPimCore), "PIM-Core");
    EXPECT_STREQ(TargetName(ExecutionTarget::kPimAccel), "PIM-Acc");
}

TEST(ComputeModel, IssueTimeScalarVsSimd)
{
    ComputeModel m;
    m.freq_ghz = 1.0;
    m.sustained_ipc = 1.0;
    m.simd_width = 4;

    sim::OpCounts scalar;
    scalar.alu = 1000;
    EXPECT_DOUBLE_EQ(m.IssueTime(scalar), 1000.0);

    sim::OpCounts vec;
    vec.alu = 1000;
    vec.simd_eligible = 1000;
    EXPECT_DOUBLE_EQ(m.IssueTime(vec), 250.0);
}

TEST(ComputeModel, PimCoreSlowerIssueThanCpuPerLane)
{
    // Per core, the 1-wide PIM core issues 4x slower than the OoO CPU;
    // across the 4 cooperating vault cores the totals even out.
    sim::OpCounts ops;
    ops.alu = 10000;
    ops.load = 2000;
    ComputeModel cpu = CpuComputeModel();
    ComputeModel pim = PimCoreComputeModel();
    ComputeModel pim_single = pim;
    pim_single.parallel_lanes = 1.0;
    EXPECT_LT(cpu.IssueTime(ops), pim_single.IssueTime(ops));
    EXPECT_NEAR(pim.IssueTime(ops) * pim.parallel_lanes,
                pim_single.IssueTime(ops), 1e-9);
}

TEST(ComputeModel, EnergyOrdering)
{
    // Data-parallel work (the PIM targets' dominant mix).
    sim::OpCounts ops;
    ops.alu = 1000;
    ops.simd_eligible = 1000;
    const PicoJoules cpu = CpuComputeModel().ComputeEnergy(ops);
    const PicoJoules pim = PimCoreComputeModel().ComputeEnergy(ops);
    const PicoJoules acc = PimAccelComputeModel().ComputeEnergy(ops);
    EXPECT_GT(cpu, pim);
    EXPECT_GT(pim, acc);
    // The paper assumes the accelerator is 20x the CPU's efficiency.
    EXPECT_NEAR(cpu / acc, 20.0, 1e-9);
}

TEST(ComputeModel, AcceleratorThroughputScalesWithUnits)
{
    sim::OpCounts ops;
    ops.alu = 16000;
    const auto one = PimAccelComputeModel(1, 4.0).IssueTime(ops);
    const auto four = PimAccelComputeModel(4, 4.0).IssueTime(ops);
    EXPECT_DOUBLE_EQ(one, 4.0 * four);
}

TEST(ExecutionContext, ReportsOpsAndTraffic)
{
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    pim::SimBuffer<std::uint8_t> buf(4096);
    ctx.mem().Read(buf.SimAddr(0), 4096);
    ctx.ops().Alu(100);
    ctx.ops().Load(64);

    const RunReport r = ctx.Report("probe");
    EXPECT_EQ(r.kernel, "probe");
    EXPECT_EQ(r.ops.Total(), 164u);
    EXPECT_EQ(r.counters.l1.Misses(), 64u);
    EXPECT_EQ(r.counters.OffChipBytes(), 4096u);
    EXPECT_GT(r.energy.Total(), 0.0);
    EXPECT_GT(r.TotalTimeNs(), 0.0);
}

TEST(ExecutionContext, ResetClearsMeasurement)
{
    ExecutionContext ctx(ExecutionTarget::kPimCore);
    pim::SimBuffer<std::uint8_t> buf(1024);
    ctx.mem().Read(buf.SimAddr(0), 1024);
    ctx.ops().Alu(10);
    ctx.Reset();
    const RunReport r = ctx.Report("empty");
    EXPECT_EQ(r.ops.Total(), 0u);
    EXPECT_EQ(r.counters.OffChipBytes(), 0u);
}

TEST(ExecutionContext, PimHierarchyHasNoLlc)
{
    ExecutionContext ctx(ExecutionTarget::kPimAccel);
    pim::SimBuffer<std::uint8_t> buf(1024);
    ctx.mem().Read(buf.SimAddr(0), 1024);
    const RunReport r = ctx.Report("x");
    EXPECT_FALSE(r.counters.has_llc);
    EXPECT_DOUBLE_EQ(r.energy.llc, 0.0);
}

TEST(ExecutionContext, RunOnAllTargetsReturnsThree)
{
    const auto reports =
        RunOnAllTargets("noop", [](ExecutionContext &ctx) {
            ctx.ops().Alu(1000);
        });
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_EQ(reports[0].target, ExecutionTarget::kCpuOnly);
    EXPECT_EQ(reports[1].target, ExecutionTarget::kPimCore);
    EXPECT_EQ(reports[2].target, ExecutionTarget::kPimAccel);
}

TEST(Coherence, ScalesWithFootprint)
{
    const CoherenceCost small = EstimateOffloadCoherence(64_KiB, 64_KiB);
    const CoherenceCost large = EstimateOffloadCoherence(1_MiB, 1_MiB);
    EXPECT_GT(large.messages, small.messages);
    EXPECT_GT(large.energy_pj, small.energy_pj);
    EXPECT_GE(large.time_ns, small.time_ns);
}

TEST(Coherence, ZeroFootprintStillPaysLaunch)
{
    const CoherenceCost c = EstimateOffloadCoherence(0, 0);
    EXPECT_GE(c.messages, 2u); // launch + complete
    EXPECT_GT(c.time_ns, 0.0);
}

TEST(Coherence, DirtyFractionDrivesWritebacks)
{
    CoherenceParams params;
    params.host_dirty_fraction = 0.5;
    params.host_resident_fraction = 0.5;
    const CoherenceCost c =
        EstimateOffloadCoherence(1_MiB, 0, params);
    EXPECT_EQ(c.dirty_writebacks, 1_MiB / 64 / 2);
}

TEST(AreaModel, PaperPublishedNumbers)
{
    // Section 3.3: the PIM core needs <= 9.4% of the per-vault budget.
    EXPECT_NEAR(FractionOfVaultBudget(PimCoreArea()), 0.094, 0.001);
    // Section 4.2.2: texture tiling accelerator <= 7.1%.
    EXPECT_LE(FractionOfVaultBudget(TextureTilingAccelArea()), 0.072);
    // Section 6.2.2: sub-pixel interpolation 6.0%, deblocking 3.4%.
    EXPECT_NEAR(FractionOfVaultBudget(SubPixelInterpAccelArea()), 0.060,
                0.001);
    EXPECT_NEAR(FractionOfVaultBudget(DeblockingAccelArea()), 0.034,
                0.001);
    // Section 7.2.2: motion estimation 35.4%.
    EXPECT_NEAR(FractionOfVaultBudget(MotionEstimationAccelArea()), 0.354,
                0.001);
}

TEST(AreaModel, EverythingFitsTheVaultBudget)
{
    for (const PimLogicArea &logic : AllPimLogicAreas()) {
        EXPECT_TRUE(FitsVaultBudget(logic)) << logic.name;
    }
}

TEST(AreaModel, OversizedLogicRejected)
{
    EXPECT_FALSE(FitsVaultBudget({"huge", 5.0}));
}

TEST(PimTarget, TextureTilingStyleKernelQualifies)
{
    // A function dominating workload energy, memory-bound, faster on PIM.
    std::vector<FunctionEnergyShare> shares = {
        {"tiling", 500.0, 400.0},
        {"other", 300.0, 100.0},
    };
    RunReport cpu;
    cpu.ops.alu = 1000;
    cpu.counters.has_llc = true;
    cpu.counters.llc.read_misses = 50; // MPKI 50
    cpu.timing.issue_ns = 1000;
    RunReport pim;
    pim.timing.issue_ns = 400;

    const PimTargetVerdict v = EvaluatePimTarget(
        shares, 0, cpu, pim, TextureTilingAccelArea());
    EXPECT_TRUE(v.top_energy_function);
    EXPECT_TRUE(v.significant_movement);
    EXPECT_TRUE(v.memory_intensive);
    EXPECT_TRUE(v.movement_dominates);
    EXPECT_TRUE(v.no_perf_loss_on_pim);
    EXPECT_TRUE(v.area_fits);
    EXPECT_TRUE(v.IsPimTarget());
}

TEST(PimTarget, ComputeBoundKernelRejected)
{
    // Conv2D/MatMul-style: most energy is compute, low MPKI.
    std::vector<FunctionEnergyShare> shares = {
        {"gemm", 800.0, 250.0}, // movement only 31% of its energy
        {"other", 100.0, 50.0},
    };
    RunReport cpu;
    cpu.ops.alu = 1'000'000;
    cpu.counters.has_llc = true;
    cpu.counters.llc.read_misses = 2000; // MPKI 2
    cpu.timing.issue_ns = 1000;
    RunReport pim;
    pim.timing.issue_ns = 4000; // slower on the 1-wide PIM core

    const PimTargetVerdict v =
        EvaluatePimTarget(shares, 0, cpu, pim, PimCoreArea());
    EXPECT_FALSE(v.memory_intensive);
    EXPECT_FALSE(v.movement_dominates);
    EXPECT_FALSE(v.no_perf_loss_on_pim);
    EXPECT_FALSE(v.IsPimTarget());
}

TEST(OffloadRuntime, CpuRunHasNoOverhead)
{
    OffloadRuntime rt;
    const RunReport r = rt.Run("k", ExecutionTarget::kCpuOnly,
                               {1_MiB, 1_MiB},
                               [](ExecutionContext &ctx) {
                                   ctx.ops().Alu(100);
                               });
    EXPECT_DOUBLE_EQ(r.overhead_ns, 0.0);
}

TEST(OffloadRuntime, PimRunPaysCoherence)
{
    OffloadRuntime rt;
    const RunReport r = rt.Run("k", ExecutionTarget::kPimAccel,
                               {1_MiB, 1_MiB},
                               [](ExecutionContext &ctx) {
                                   ctx.ops().Alu(100);
                               });
    EXPECT_GT(r.overhead_ns, 0.0);
    EXPECT_GT(r.energy.interconnect, 0.0);
}

TEST(Vault, ResourcesDivideEvenly)
{
    StackedMemory stack;
    EXPECT_EQ(stack.vault_count(), 16u);
    const Vault v = stack.vault(3);
    EXPECT_EQ(v.capacity, 2_GiB / 16);
    EXPECT_DOUBLE_EQ(v.internal_bandwidth_gbps, 16.0);
    EXPECT_DOUBLE_EQ(stack.internal_bandwidth_gbps(), 256.0);
    EXPECT_DOUBLE_EQ(stack.offchip_bandwidth_gbps(), 32.0);
}

} // namespace
} // namespace pim::core
