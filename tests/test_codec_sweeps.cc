/**
 * @file
 * Parameterized sweeps over the video codec: quantizer/quality
 * trade-off, resolution coverage, chroma fidelity, entropy-coder
 * robustness, and the offload policy of the inference driver.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workloads/ml/inference.h"
#include "workloads/video/decoder.h"
#include "workloads/video/encoder.h"
#include "workloads/video/entropy.h"
#include "workloads/video/mc.h"
#include "workloads/video/video_gen.h"

namespace pim::video {
namespace {

using core::ExecutionContext;
using core::ExecutionTarget;

struct CodecRun
{
    double psnr = 0.0;
    std::size_t bits = 0;
};

CodecRun
RunCodec(int qindex, int width = 128, int height = 64, int frames = 3)
{
    VideoGenConfig cfg;
    cfg.width = width;
    cfg.height = height;
    cfg.objects = 2;
    VideoGenerator gen(cfg);

    CodecConfig codec;
    codec.qindex = qindex;
    Vp9Encoder encoder(width, height, codec);
    Vp9Decoder decoder(codec);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);

    CodecRun run;
    for (int i = 0; i < frames; ++i) {
        const Frame src = gen.NextFrame();
        const auto enc = encoder.EncodeFrame(src, ctx);
        const Frame out = decoder.DecodeFrame(enc.bitstream, ctx);
        run.bits += enc.bitstream.size();
        run.psnr += Psnr(src.y, out.y);
    }
    run.psnr /= frames;
    return run;
}

TEST(CodecSweep, CoarserQuantizerShrinksBitstream)
{
    const CodecRun fine = RunCodec(20);
    const CodecRun mid = RunCodec(60);
    const CodecRun coarse = RunCodec(120);
    EXPECT_GT(fine.bits, mid.bits);
    EXPECT_GT(mid.bits, coarse.bits);
}

TEST(CodecSweep, FinerQuantizerImprovesQuality)
{
    const CodecRun fine = RunCodec(20);
    const CodecRun coarse = RunCodec(120);
    EXPECT_GT(fine.psnr, coarse.psnr);
    EXPECT_GT(fine.psnr, 30.0);
}

/** Resolution coverage: the pipeline works at any MB-aligned size. */
class CodecResolutionTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(CodecResolutionTest, BitExactReconstruction)
{
    const auto [w, h] = GetParam();
    VideoGenConfig cfg;
    cfg.width = w;
    cfg.height = h;
    VideoGenerator gen(cfg);
    Vp9Encoder encoder(w, h);
    Vp9Decoder decoder;
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);

    for (int i = 0; i < 2; ++i) {
        const Frame src = gen.NextFrame();
        const auto enc = encoder.EncodeFrame(src, ctx);
        const Frame out = decoder.DecodeFrame(enc.bitstream, ctx);
        ASSERT_EQ(MeanAbsDiff(out.y, encoder.last_reconstruction().y),
                  0.0);
        ASSERT_EQ(out.width, w);
        ASSERT_EQ(out.height, h);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CodecResolutionTest,
    ::testing::Values(std::make_pair(16, 16), std::make_pair(64, 32),
                      std::make_pair(160, 96), std::make_pair(256, 144)));

TEST(CodecSweep, ChromaSurvivesTranscoding)
{
    VideoGenConfig cfg;
    cfg.width = 96;
    cfg.height = 64;
    VideoGenerator gen(cfg);
    Vp9Encoder encoder(96, 64);
    Vp9Decoder decoder;
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);

    const Frame src = gen.NextFrame();
    const auto enc = encoder.EncodeFrame(src, ctx);
    const Frame out = decoder.DecodeFrame(enc.bitstream, ctx);
    // Chroma planes are smooth gradients: they should code well.
    EXPECT_GT(Psnr(src.u, out.u), 30.0);
    EXPECT_GT(Psnr(src.v, out.v), 30.0);
}

TEST(CodecSweep, StillSceneCodesToAlmostNothing)
{
    // A static scene's inter frames should be a small fraction of the
    // key frame: everything predicts with zero MVs and zero residual.
    VideoGenConfig cfg;
    cfg.width = 128;
    cfg.height = 64;
    cfg.objects = 0;
    cfg.background_pan = 0.0;
    cfg.noise_amplitude = 0;
    VideoGenerator gen(cfg);
    Vp9Encoder encoder(128, 64);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);

    const auto key = encoder.EncodeFrame(gen.NextFrame(), ctx);
    const auto inter = encoder.EncodeFrame(gen.NextFrame(), ctx);
    EXPECT_LT(inter.bitstream.size(), key.bitstream.size() / 2);
    // ~4 bytes per macroblock: zero MV + empty coefficient blocks.
    const std::size_t mbs = (128 / 16) * (64 / 16);
    EXPECT_LE(inter.bitstream.size(), mbs * 4);
}

TEST(IntraModes, VerticalPredictorCopiesTopRow)
{
    Plane recon(32, 32, 0);
    for (int x = 0; x < 32; ++x) {
        recon.At(x, 7) = static_cast<std::uint8_t>(x * 3);
    }
    PredBlock pred(16, 16);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    IntraPredict(recon, 8, 8, IntraMode::kVertical, pred, ctx);
    for (int y = 0; y < 16; ++y) {
        for (int x = 0; x < 16; ++x) {
            ASSERT_EQ(pred.At(x, y), recon.At(8 + x, 7));
        }
    }
}

TEST(IntraModes, HorizontalPredictorCopiesLeftColumn)
{
    Plane recon(32, 32, 0);
    for (int y = 0; y < 32; ++y) {
        recon.At(7, y) = static_cast<std::uint8_t>(200 - y);
    }
    PredBlock pred(8, 8);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    IntraPredict(recon, 8, 8, IntraMode::kHorizontal, pred, ctx);
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            ASSERT_EQ(pred.At(x, y), recon.At(7, 8 + y));
        }
    }
}

TEST(IntraModes, DirectionalModesFallBackToDcAtBorders)
{
    Plane recon(32, 32, 77);
    PredBlock pred(8, 8);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    // At (0, 0) neither reference exists: DC fallback yields 128.
    IntraPredict(recon, 0, 0, IntraMode::kHorizontal, pred, ctx);
    EXPECT_EQ(pred.At(3, 3), 128);
    IntraPredict(recon, 0, 0, IntraMode::kVertical, pred, ctx);
    EXPECT_EQ(pred.At(3, 3), 128);
}

TEST(IntraModes, ModeDecisionPrefersMatchingDirection)
{
    // Source continues vertical stripes downward: V must win.
    Plane src(32, 32);
    Plane recon(32, 32);
    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
            const std::uint8_t stripe = x % 2 ? 200 : 40;
            src.At(x, y) = stripe;
            recon.At(x, y) = stripe;
        }
    }
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    EXPECT_EQ(ChooseIntraMode(src, recon, 8, 8, 16, 16, ctx),
              IntraMode::kVertical);

    // Horizontal stripes: H must win.
    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
            const std::uint8_t stripe = y % 2 ? 200 : 40;
            src.At(x, y) = stripe;
            recon.At(x, y) = stripe;
        }
    }
    EXPECT_EQ(ChooseIntraMode(src, recon, 8, 8, 16, 16, ctx),
              IntraMode::kHorizontal);
}

TEST(IntraModes, StripedKeyFrameCodesBetterWithDirectionalModes)
{
    // A vertically striped frame is perfectly V-predictable after the
    // first macroblock row: the key frame should stay small.
    Frame frame(64, 64);
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            frame.y.At(x, y) = x % 2 ? 180 : 60;
        }
    }
    Vp9Encoder encoder(64, 64);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    const auto enc = encoder.EncodeFrame(frame, ctx);
    EXPECT_GT(Psnr(frame.y, encoder.last_reconstruction().y), 30.0);

    // And it decodes bit-exactly as always.
    Vp9Decoder decoder;
    const Frame out = decoder.DecodeFrame(enc.bitstream, ctx);
    EXPECT_EQ(MeanAbsDiff(out.y, encoder.last_reconstruction().y), 0.0);
}

TEST(EntropyRobustness, TruncatedStreamDies)
{
    // A malformed (truncated) stream must be caught by the reader's
    // invariants, not read out of bounds.
    BitWriter w;
    w.PutUe(4096);
    auto bytes = w.Finish();
    bytes.resize(bytes.size() / 2);
    BitReader r(bytes.data(), bytes.size());
    EXPECT_DEATH((void)r.GetUe(), "overrun");
}

TEST(EntropyRobustness, RandomValueRoundTripSweep)
{
    Rng rng(99);
    BitWriter w;
    std::vector<std::uint32_t> ue_values;
    std::vector<std::int32_t> se_values;
    for (int i = 0; i < 500; ++i) {
        const auto ue = static_cast<std::uint32_t>(
            rng.Next64() % (1u << (1 + rng.Below(20))));
        ue_values.push_back(ue);
        w.PutUe(ue);
        const auto se = static_cast<std::int32_t>(
            rng.Range(-1000000, 1000000));
        se_values.push_back(se);
        w.PutSe(se);
    }
    const auto bytes = w.Finish();
    BitReader r(bytes.data(), bytes.size());
    for (int i = 0; i < 500; ++i) {
        ASSERT_EQ(r.GetUe(), ue_values[static_cast<std::size_t>(i)]);
        ASSERT_EQ(r.GetSe(), se_values[static_cast<std::size_t>(i)]);
    }
}

TEST(CodecSweep, DecoderRequiresReferenceForInterFrames)
{
    // Feeding an inter frame to a fresh decoder must be rejected.
    VideoGenConfig cfg;
    cfg.width = 64;
    cfg.height = 32;
    VideoGenerator gen(cfg);
    Vp9Encoder encoder(64, 32);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    encoder.EncodeFrame(gen.NextFrame(), ctx);
    const auto inter = encoder.EncodeFrame(gen.NextFrame(), ctx);
    ASSERT_FALSE(inter.key_frame);

    Vp9Decoder fresh;
    EXPECT_DEATH((void)fresh.DecodeFrame(inter.bitstream, ctx),
                 "reference");
}

} // namespace
} // namespace pim::video

namespace pim::ml {
namespace {

TEST(OffloadPolicy, SmallLayersStayOnHost)
{
    // With an enormous threshold nothing offloads: the PIM run must
    // be identical to the host run.
    NetworkSpec net;
    net.name = "policy";
    net.layers = {{"conv", 16, 16, 8, 8, 3, 1, 2}};
    EvalScale scale{1.0, 1.0, 4, /*min_offload_bytes=*/1_GiB};

    const auto host = RunInference(net, scale,
                                   core::ExecutionTarget::kCpuOnly);
    const auto pim = RunInference(net, scale,
                                  core::ExecutionTarget::kPimAccel);
    EXPECT_DOUBLE_EQ(pim.TotalEnergy(), host.TotalEnergy());
}

TEST(OffloadPolicy, LargeLayersOffload)
{
    NetworkSpec net;
    net.name = "policy";
    net.layers = {{"conv", 64, 64, 64, 64, 3, 1, 1}};
    EvalScale scale{1.0, 1.0, 4, /*min_offload_bytes=*/1_KiB};

    const auto host = RunInference(net, scale,
                                   core::ExecutionTarget::kCpuOnly);
    const auto pim = RunInference(net, scale,
                                  core::ExecutionTarget::kPimAccel);
    EXPECT_LT(pim.packing.energy.Total() +
                  pim.quantization.energy.Total(),
              host.packing.energy.Total() +
                  host.quantization.energy.Total());
}

} // namespace
} // namespace pim::ml
