/**
 * @file
 * Tests for the stateful CPU<->PIM coherence directory, the trace
 * record/replay module, and the offload macro interface.
 */

#include <gtest/gtest.h>

#include "common/buffer.h"
#include "core/coherence_directory.h"
#include "core/pim_offload_macros.h"
#include "sim/hierarchy.h"
#include "sim/trace.h"
#include "workloads/browser/texture_tiler.h"

namespace pim {
namespace {

using core::CoherenceDirectory;
using core::LineOwner;

TEST(CoherenceDirectory, UntouchedLinesAreHostClean)
{
    CoherenceDirectory dir;
    EXPECT_EQ(dir.OwnerOf(0x1000), LineOwner::kHostClean);
    EXPECT_EQ(dir.tracked_lines(), 0u);
}

TEST(CoherenceDirectory, HostWriteMakesDirty)
{
    CoherenceDirectory dir;
    dir.HostWrite(0x1000, 128);
    EXPECT_EQ(dir.OwnerOf(0x1000), LineOwner::kHostDirty);
    EXPECT_EQ(dir.OwnerOf(0x1040), LineOwner::kHostDirty);
    EXPECT_EQ(dir.tracked_lines(), 2u);
}

TEST(CoherenceDirectory, OffloadFlushesExactlyTheDirtyLines)
{
    CoherenceDirectory dir;
    dir.HostWrite(0x1000, 256); // 4 dirty lines
    dir.HostRead(0x2000, 256);  // 4 clean lines
    // Offload the dirty range plus untouched space, but not 0x2000.
    dir.OffloadBegin(0x1000, 0x800);
    EXPECT_EQ(dir.stats().host_writebacks, 4u);
    EXPECT_EQ(dir.stats().host_invalidations, 0u); // 0x2000 not in range

    dir.OffloadBegin(0x2000, 256);
    EXPECT_EQ(dir.stats().host_invalidations, 4u);
    EXPECT_EQ(dir.OwnerOf(0x1000), LineOwner::kPimOwned);
    EXPECT_EQ(dir.OwnerOf(0x2000), LineOwner::kPimOwned);
}

TEST(CoherenceDirectory, RepeatedOffloadIsFree)
{
    CoherenceDirectory dir;
    dir.HostWrite(0x4000, 4096);
    const auto first = dir.OffloadBegin(0x4000, 4096);
    const auto second = dir.OffloadBegin(0x4000, 4096);
    // Second launch finds everything PIM-owned: only launch/ack.
    EXPECT_GT(first, second);
    EXPECT_EQ(second, 2u);
}

TEST(CoherenceDirectory, HostPullsLinesBackAfterOffload)
{
    CoherenceDirectory dir;
    dir.HostWrite(0x8000, 64);
    dir.OffloadBegin(0x8000, 64);
    dir.OffloadEnd(0x8000, 64);
    ASSERT_EQ(dir.OwnerOf(0x8000), LineOwner::kPimOwned); // lazy flip

    dir.HostRead(0x8000, 64);
    EXPECT_EQ(dir.OwnerOf(0x8000), LineOwner::kHostClean);
    EXPECT_EQ(dir.stats().pim_handoffs, 1u);
}

TEST(CoherenceDirectory, WriteAfterOffloadRegainsOwnership)
{
    CoherenceDirectory dir;
    dir.HostWrite(0xA000, 64);
    dir.OffloadBegin(0xA000, 64);
    dir.HostWrite(0xA000, 64);
    EXPECT_EQ(dir.OwnerOf(0xA000), LineOwner::kHostDirty);
    EXPECT_EQ(dir.stats().pim_handoffs, 1u);
}

TEST(CoherenceDirectory, OffloadEndMessagesScaleWithRegions)
{
    CoherenceDirectory dir;
    const auto small = dir.OffloadEnd(0, 4096);     // 1 region
    const auto large = dir.OffloadEnd(0, 1_MiB);    // 256 regions
    EXPECT_LT(small, large);
    EXPECT_EQ(small, 2u);   // 1 grant + completion
    EXPECT_EQ(large, 257u); // 256 grants + completion
}

TEST(Trace, RecorderTeesWithoutPerturbing)
{
    sim::AccessTrace trace;
    sim::MemoryHierarchy direct(sim::HostHierarchyConfig());
    sim::MemoryHierarchy traced(sim::HostHierarchyConfig());
    sim::TraceRecorder recorder(trace, traced.Top());

    // Drive identical streams through both paths.
    for (Address a = 0; a < 64_KiB; a += 64) {
        direct.Top().Access(0x100000 + a, 64, sim::AccessType::kRead);
        recorder.Access(0x100000 + a, 64, sim::AccessType::kRead);
    }
    EXPECT_EQ(trace.size(), 1024u);
    EXPECT_EQ(trace.TotalBytes(), 64_KiB);
    EXPECT_EQ(direct.Snapshot().l1.Misses(),
              traced.Snapshot().l1.Misses());
}

TEST(Trace, ReplayReproducesCounters)
{
    // Record the real texture-tiling kernel once...
    Rng rng(31);
    browser::Bitmap linear(128, 64);
    linear.Randomize(rng);
    browser::TiledTexture tiled(128, 64);

    sim::AccessTrace trace;
    {
        core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
        sim::TraceRecorder recorder(trace, ctx.hierarchy().Top());
        sim::MemPort port(recorder);
        // Drive the kernel manually through the recording port.
        for (int y = 0; y < 64; ++y) {
            port.Read(linear.SimAddr(0, y), 128 * 4);
        }
    }
    ASSERT_FALSE(trace.empty());

    // ...then replay into two fresh hierarchies; counters must agree.
    sim::MemoryHierarchy a(sim::HostHierarchyConfig());
    sim::MemoryHierarchy b(sim::HostHierarchyConfig());
    trace.ReplayInto(a.Top());
    trace.ReplayInto(b.Top());
    EXPECT_EQ(a.Snapshot().l1.Misses(), b.Snapshot().l1.Misses());
    EXPECT_EQ(a.Snapshot().dram.TotalBytes(),
              b.Snapshot().dram.TotalBytes());
}

TEST(Trace, ReplayThroughSmallerCacheMissesMore)
{
    // A reuse-heavy trace: stream a 64 KiB buffer twice.
    sim::AccessTrace trace;
    for (int pass = 0; pass < 2; ++pass) {
        for (Address a = 0; a < 64_KiB; a += 64) {
            trace.Append(0x200000 + a, 64, sim::AccessType::kRead);
        }
    }

    sim::HierarchyConfig big = sim::PimCoreHierarchyConfig();
    big.l1.size = 128_KiB;
    sim::HierarchyConfig small = sim::PimCoreHierarchyConfig();
    small.l1.size = 16_KiB;

    sim::MemoryHierarchy big_h(big);
    sim::MemoryHierarchy small_h(small);
    trace.ReplayInto(big_h.Top());
    trace.ReplayInto(small_h.Top());
    EXPECT_LT(big_h.Snapshot().dram.TotalBytes(),
              small_h.Snapshot().dram.TotalBytes());
}

TEST(TrackedOffload, ColdFootprintIsCheap)
{
    // Nothing host-cached: the tracked offload pays only launch cost.
    CoherenceDirectory dir;
    core::OffloadRuntime rt;
    pim::SimBuffer<std::uint8_t> in(64_KiB);
    pim::SimBuffer<std::uint8_t> out(64_KiB);
    const auto r = rt.RunTracked(
        "k", core::ExecutionTarget::kPimAccel, in.sim_base(),
        in.size_bytes(), out.sim_base(), out.size_bytes(), dir,
        [](core::ExecutionContext &ctx) { ctx.ops().Alu(100); });
    EXPECT_EQ(dir.stats().host_writebacks, 0u);
    EXPECT_LT(r.overhead_ns, 1000.0); // launch latency only
}

TEST(TrackedOffload, HostDirtyDataRaisesCost)
{
    CoherenceDirectory dir;
    core::OffloadRuntime rt;
    pim::SimBuffer<std::uint8_t> in(64_KiB);
    pim::SimBuffer<std::uint8_t> out(64_KiB);

    // A prior host pass produced the input (tracked as dirty)...
    const auto host = rt.RunTracked(
        "producer", core::ExecutionTarget::kCpuOnly, out.sim_base(), 0,
        in.sim_base(), in.size_bytes(), dir,
        [](core::ExecutionContext &ctx) { ctx.ops().Alu(100); });
    EXPECT_DOUBLE_EQ(host.overhead_ns, 0.0);

    // ...so the offload must flush exactly those lines.
    const auto pim = rt.RunTracked(
        "consumer", core::ExecutionTarget::kPimAccel, in.sim_base(),
        in.size_bytes(), out.sim_base(), out.size_bytes(), dir,
        [](core::ExecutionContext &ctx) { ctx.ops().Alu(100); });
    EXPECT_EQ(dir.stats().host_writebacks, 64_KiB / 64);
    EXPECT_GT(pim.overhead_ns, 1000.0);
    EXPECT_GT(pim.energy.interconnect, 0.0);

    // A second, back-to-back offload of the same data is nearly free.
    const auto again = rt.RunTracked(
        "consumer2", core::ExecutionTarget::kPimAccel, in.sim_base(),
        in.size_bytes(), out.sim_base(), out.size_bytes(), dir,
        [](core::ExecutionContext &ctx) { ctx.ops().Alu(100); });
    EXPECT_LT(again.overhead_ns, pim.overhead_ns);
}

TEST(Trace, ContextAttachDetach)
{
    sim::AccessTrace trace;
    core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    pim::SimBuffer<std::uint8_t> buf(4096);

    ctx.AttachTrace(trace);
    ctx.mem().Read(buf.SimAddr(0), 1024);
    EXPECT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.TotalBytes(), 1024u);
    // The hierarchy still saw the access (tee, not redirect).
    EXPECT_GT(ctx.Report("t").counters.l1.Accesses(), 0u);

    ctx.DetachTrace();
    ctx.mem().Read(buf.SimAddr(0), 1024);
    EXPECT_EQ(trace.size(), 1u); // unchanged after detach
}

TEST(OffloadMacros, MarkedRegionRunsAndReports)
{
    Rng rng(33);
    browser::Bitmap linear(64, 64);
    linear.Randomize(rng);
    browser::TiledTexture tiled(64, 64);

    core::OffloadRuntime runtime;
    core::RunReport report;
    PIM_OFFLOAD(runtime, report, core::ExecutionTarget::kPimAccel,
                "tiling",
                (core::OffloadFootprint{linear.size_bytes(),
                                        tiled.size_bytes()}),
                ctx)
    {
        browser::TileTexture(linear, tiled, ctx);
    }
    PIM_OFFLOAD_END;

    EXPECT_EQ(report.target, core::ExecutionTarget::kPimAccel);
    EXPECT_GT(report.TotalEnergyPj(), 0.0);
    EXPECT_GT(report.overhead_ns, 0.0); // coherence was charged
    // The kernel really ran.
    EXPECT_EQ(tiled.PixelAt(10, 10), linear.At(10, 10));
}

} // namespace
} // namespace pim
