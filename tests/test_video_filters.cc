/**
 * @file
 * Tests for the VP9 filter kernels, sub-pixel interpolation, motion
 * estimation, and the deblocking filter.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "workloads/video/deblock.h"
#include "workloads/video/filters.h"
#include "workloads/video/motion.h"
#include "workloads/video/subpel.h"
#include "workloads/video/video_gen.h"

namespace pim::video {
namespace {

using core::ExecutionContext;
using core::ExecutionTarget;

TEST(Filters, KernelsSumTo128)
{
    for (int phase = 0; phase < kSubpelPhases; ++phase) {
        int sum8 = 0;
        int sumb = 0;
        for (int t = 0; t < kFilterTaps; ++t) {
            sum8 += EightTapKernel(phase)[t];
            sumb += BilinearKernel(phase)[t];
        }
        EXPECT_EQ(sum8, 128) << "8-tap phase " << phase;
        EXPECT_EQ(sumb, 128) << "bilinear phase " << phase;
    }
}

TEST(Filters, PhaseZeroIsIdentity)
{
    const std::uint8_t samples[8] = {10, 20, 30, 40, 50, 60, 70, 80};
    // Tap 3 is the center sample for phase 0.
    EXPECT_EQ(ApplyKernelU8(samples, EightTapKernel(0)), 40);
    EXPECT_EQ(ApplyKernelU8(samples, BilinearKernel(0)), 40);
}

TEST(Filters, MirroredPhasesAreSymmetric)
{
    // Kernel for phase p reversed equals kernel for phase 16-p.
    for (int phase = 1; phase < kSubpelPhases; ++phase) {
        const FilterKernel &a = EightTapKernel(phase);
        const FilterKernel &b = EightTapKernel(kSubpelPhases - phase);
        for (int t = 0; t < kFilterTaps; ++t) {
            EXPECT_EQ(a[t], b[kFilterTaps - 1 - t])
                << "phase " << phase << " tap " << t;
        }
    }
}

TEST(Filters, HalfPhaseInterpolatesMidpoint)
{
    // On a linear ramp, the half-pel sample is the midpoint.
    std::uint8_t ramp[8];
    for (int i = 0; i < 8; ++i) {
        ramp[i] = static_cast<std::uint8_t>(i * 10);
    }
    const std::uint8_t mid = ApplyKernelU8(ramp, EightTapKernel(8));
    EXPECT_NEAR(mid, 35, 1); // between taps 3 (30) and 4 (40)
}

TEST(Filters, OutputClampedToPixelRange)
{
    const std::uint8_t spike[8] = {0, 0, 0, 255, 0, 0, 0, 0};
    for (int phase = 0; phase < kSubpelPhases; ++phase) {
        const std::uint8_t v = ApplyKernelU8(spike, EightTapKernel(phase));
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 255);
    }
}

Plane
MakeRampPlane(int w, int h)
{
    Plane p(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            p.At(x, y) = static_cast<std::uint8_t>((x * 3 + y * 5) % 200);
        }
    }
    return p;
}

TEST(Subpel, ZeroVectorIsCopy)
{
    const Plane ref = MakeRampPlane(64, 64);
    PredBlock out(16, 16);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    InterpolateBlock(ref, 8, 8, MotionVector{0, 0}, out, ctx);
    for (int y = 0; y < 16; ++y) {
        for (int x = 0; x < 16; ++x) {
            ASSERT_EQ(out.At(x, y), ref.At(8 + x, 8 + y));
        }
    }
}

TEST(Subpel, FullPelVectorIsShiftedCopy)
{
    const Plane ref = MakeRampPlane(64, 64);
    PredBlock out(8, 8);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    InterpolateBlock(ref, 16, 16, MotionVector{-16, 24}, out, ctx);
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            ASSERT_EQ(out.At(x, y), ref.At(16 + 3 + x, 16 - 2 + y));
        }
    }
}

TEST(Subpel, HalfPelOnRampIsMidpoint)
{
    Plane ref(64, 64);
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            ref.At(x, y) = static_cast<std::uint8_t>(x * 2);
        }
    }
    PredBlock out(8, 8);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    InterpolateBlock(ref, 16, 16, MotionVector{0, 4}, out, ctx); // +1/2 px
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            ASSERT_NEAR(out.At(x, y), (16 + x) * 2 + 1, 1);
        }
    }
}

TEST(Subpel, SubpelReadsFilterWindow)
{
    const Plane ref = MakeRampPlane(128, 128);
    PredBlock out(16, 16);
    ExecutionContext full(ExecutionTarget::kCpuOnly);
    InterpolateBlock(ref, 32, 32, MotionVector{0, 0}, out, full);
    const Bytes full_pel_bytes = full.mem().bytes_read();

    ExecutionContext sub(ExecutionTarget::kCpuOnly);
    InterpolateBlock(ref, 32, 32, MotionVector{3, 3}, out, sub);
    // The paper: sub-pixel interpolation fetches (bw+7)x(bh+7) vs bw*bh.
    EXPECT_GT(sub.mem().bytes_read(), full_pel_bytes * 3 / 2);
}

TEST(Motion, BlockSadZeroOnIdenticalBlocks)
{
    const Plane a = MakeRampPlane(64, 64);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    EXPECT_EQ(BlockSad(a, a, 16, 16, 0, 0, 16, ctx), 0u);
    EXPECT_GT(BlockSad(a, a, 16, 16, 5, 0, 16, ctx), 0u);
}

TEST(Motion, DiamondSearchFindsPlantedShift)
{
    // Reference = smooth radial gradient (SAD decreases monotonically
    // toward the true offset, as natural video does); current =
    // reference shifted by (8, -8), a displacement the diamond pattern
    // reaches by strictly improving axis moves.
    Plane ref(96, 96);
    for (int y = 0; y < 96; ++y) {
        for (int x = 0; x < 96; ++x) {
            const double dx = x - 20.0;
            const double dy = y - 70.0;
            const double dist = std::sqrt(dx * dx + dy * dy);
            ref.At(x, y) = static_cast<std::uint8_t>(
                std::max(0.0, 255.0 - dist * 2.5));
        }
    }
    Plane cur(96, 96);
    for (int y = 0; y < 96; ++y) {
        for (int x = 0; x < 96; ++x) {
            cur.At(x, y) = ref.AtClamped(x + 8, y - 8);
        }
    }
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    const MotionResult r = DiamondSearch(
        cur, {&ref}, 40, 40, MotionSearchParams{}, ctx);
    EXPECT_EQ(r.mv.col, 8 * 8);  // 1/8-pel units
    EXPECT_EQ(r.mv.row, -8 * 8);
    EXPECT_EQ(r.sad, 0u);
    EXPECT_GT(r.probes, 1u);
}

TEST(Motion, PicksBestReference)
{
    Rng rng(56);
    Plane good(64, 64);
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            good.At(x, y) = rng.NextByte();
        }
    }
    Plane bad(64, 64, 0); // flat plane, poor match
    const Plane &cur = good;

    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    const MotionResult r = DiamondSearch(
        cur, {&bad, &good}, 24, 24, MotionSearchParams{}, ctx);
    EXPECT_EQ(r.ref_index, 1);
    EXPECT_EQ(r.sad, 0u);
}

TEST(Motion, SubpelRefineNeverWorsens)
{
    VideoGenerator gen(VideoGenConfig{});
    const Frame f1 = gen.NextFrame();
    const Frame f2 = gen.NextFrame();
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    const MotionResult coarse = DiamondSearch(
        f2.y, {&f1.y}, 64, 64, MotionSearchParams{}, ctx);
    const MotionResult fine =
        RefineSubpel(f2.y, f1.y, 64, 64, coarse, 16, ctx);
    EXPECT_LE(fine.sad, coarse.sad);
    EXPECT_GT(fine.probes, coarse.probes);
}

TEST(Deblock, FlatRegionUnchanged)
{
    Plane p(32, 32, 100);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    DeblockPlane(p, DeblockParams{}, ctx);
    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
            ASSERT_EQ(p.At(x, y), 100);
        }
    }
}

TEST(Deblock, SmoothsBlockEdge)
{
    // Step of 6 across the x=8 block boundary: within filter range.
    Plane p(32, 32);
    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
            p.At(x, y) = x < 8 ? 100 : 106;
        }
    }
    const int before = std::abs(p.At(7, 16) - p.At(8, 16));
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    const DeblockStats stats = DeblockPlane(p, DeblockParams{}, ctx);
    const int after = std::abs(p.At(7, 16) - p.At(8, 16));
    EXPECT_LT(after, before);
    EXPECT_GT(stats.edges_filtered, 0u);
}

TEST(Deblock, StrongEdgePreserved)
{
    // A real object edge (step 100) must NOT be smoothed away.
    Plane p(32, 32);
    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
            p.At(x, y) = x < 8 ? 50 : 150;
        }
    }
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    DeblockPlane(p, DeblockParams{}, ctx);
    EXPECT_EQ(p.At(7, 16), 50);
    EXPECT_EQ(p.At(8, 16), 150);
}

TEST(Deblock, FilterMaskThresholds)
{
    DeblockParams params;
    // Tiny discontinuity: filtered.
    EXPECT_TRUE(
        FilterMask(params, 100, 100, 100, 100, 104, 104, 104, 104));
    // Sharp edge: preserved.
    EXPECT_FALSE(
        FilterMask(params, 100, 100, 100, 100, 200, 200, 200, 200));
    // Locally busy texture: preserved.
    EXPECT_FALSE(
        FilterMask(params, 100, 120, 90, 110, 112, 90, 125, 100));
}

TEST(Deblock, EdgeCountMatchesGeometry)
{
    Plane p(64, 64, 100);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    const DeblockStats stats = DeblockPlane(p, DeblockParams{}, ctx);
    // 4-pixel edge grid: 15 internal edges x 64 rows, both directions.
    EXPECT_EQ(stats.edges_checked, 2u * 15u * 64u);
}

TEST(VideoGen, DeterministicAndInRange)
{
    VideoGenConfig cfg;
    cfg.width = 128;
    cfg.height = 64;
    VideoGenerator a(cfg);
    VideoGenerator b(cfg);
    const Frame fa = a.NextFrame();
    const Frame fb = b.NextFrame();
    EXPECT_EQ(fa.y.At(10, 10), fb.y.At(10, 10));
    EXPECT_EQ(fa.width, 128);
    EXPECT_EQ(fa.u.w(), 64);
}

TEST(VideoGen, ConsecutiveFramesAreTemporallyRedundant)
{
    VideoGenConfig cfg;
    cfg.width = 128;
    cfg.height = 128;
    VideoGenerator gen(cfg);
    const Frame f1 = gen.NextFrame();
    const Frame f2 = gen.NextFrame();
    // Motion is small: mean abs difference stays low but nonzero.
    const double mad = MeanAbsDiff(f1.y, f2.y);
    EXPECT_GT(mad, 0.1);
    EXPECT_LT(mad, 20.0);
}

} // namespace
} // namespace pim::video
