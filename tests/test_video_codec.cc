/**
 * @file
 * Tests for the transform/entropy layers and the full encoder/decoder
 * pair, including the bit-exact reconstruction invariant.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workloads/video/decoder.h"
#include "workloads/video/encoder.h"
#include "workloads/video/entropy.h"
#include "workloads/video/transform.h"
#include "workloads/video/video_gen.h"

namespace pim::video {
namespace {

using core::ExecutionContext;
using core::ExecutionTarget;

TEST(Transform, DctRoundTripIsLossless)
{
    Rng rng(61);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    Block8x8<std::int16_t> residual;
    for (auto &v : residual) {
        v = static_cast<std::int16_t>(rng.Range(-255, 255));
    }
    Block8x8<std::int32_t> coeffs;
    Block8x8<std::int16_t> back;
    ForwardDct8x8(residual, coeffs, ctx);
    InverseDct8x8(coeffs, back, ctx);
    for (int i = 0; i < 64; ++i) {
        ASSERT_NEAR(back[i], residual[i], 1) << "index " << i;
    }
}

TEST(Transform, DcCoefficientIsBlockMean)
{
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    Block8x8<std::int16_t> residual;
    residual.fill(80);
    Block8x8<std::int32_t> coeffs;
    ForwardDct8x8(residual, coeffs, ctx);
    // Orthonormal DCT: DC = 8 * mean.
    EXPECT_EQ(coeffs[0], 80 * 8);
    for (int i = 1; i < 64; ++i) {
        ASSERT_EQ(coeffs[i], 0);
    }
}

TEST(Transform, QuantStepGrowsWithQindex)
{
    EXPECT_LT(QuantStep(0), QuantStep(60));
    EXPECT_LT(QuantStep(60), QuantStep(255));
    EXPECT_GE(QuantStep(0), 1);
}

TEST(Transform, QuantizeDequantizeErrorBounded)
{
    Rng rng(62);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    const int qindex = 40;
    const int step = QuantStep(qindex);
    Block8x8<std::int32_t> coeffs;
    for (auto &v : coeffs) {
        v = static_cast<std::int32_t>(rng.Range(-4000, 4000));
    }
    Block8x8<std::int16_t> levels;
    Block8x8<std::int32_t> back;
    QuantizeBlock(coeffs, qindex, levels, ctx);
    DequantizeBlock(levels, qindex, back, ctx);
    for (int i = 0; i < 64; ++i) {
        ASSERT_LE(std::abs(back[i] - coeffs[i]), step / 2 + 1);
    }
}

TEST(Transform, ZigZagIsPermutation)
{
    const auto &scan = ZigZag8x8();
    std::array<int, 64> seen{};
    for (const auto pos : scan) {
        ASSERT_LT(pos, 64);
        ++seen[pos];
    }
    for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(seen[i], 1);
    }
    // Standard zig-zag prefix.
    EXPECT_EQ(scan[0], 0);
    EXPECT_EQ(scan[1], 1);
    EXPECT_EQ(scan[2], 8);
    EXPECT_EQ(scan[3], 16);
    EXPECT_EQ(scan[63], 63);
}

TEST(Entropy, BitsRoundTrip)
{
    BitWriter w;
    w.PutBits(0b1011, 4);
    w.PutBit(1);
    w.PutBits(0xDEADBEEF, 32);
    const auto bytes = w.Finish();

    BitReader r(bytes.data(), bytes.size());
    EXPECT_EQ(r.GetBits(4), 0b1011u);
    EXPECT_EQ(r.GetBit(), 1);
    EXPECT_EQ(r.GetBits(32), 0xDEADBEEFu);
}

TEST(Entropy, ExpGolombRoundTrip)
{
    BitWriter w;
    const std::uint32_t ue_values[] = {0, 1, 2, 14, 15, 127, 100000};
    const std::int32_t se_values[] = {0, 1, -1, 5, -37, 4095, -4096};
    for (const auto v : ue_values) {
        w.PutUe(v);
    }
    for (const auto v : se_values) {
        w.PutSe(v);
    }
    const auto bytes = w.Finish();
    BitReader r(bytes.data(), bytes.size());
    for (const auto v : ue_values) {
        EXPECT_EQ(r.GetUe(), v);
    }
    for (const auto v : se_values) {
        EXPECT_EQ(r.GetSe(), v);
    }
}

TEST(Entropy, CoefficientsRoundTrip)
{
    Rng rng(63);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    for (int trial = 0; trial < 20; ++trial) {
        Block8x8<std::int16_t> levels{};
        // Sparse, like quantized residuals.
        const int nonzero = static_cast<int>(rng.Below(12));
        for (int i = 0; i < nonzero; ++i) {
            levels[rng.Below(64)] =
                static_cast<std::int16_t>(rng.Range(-300, 300));
        }
        BitWriter w;
        EncodeCoefficients(levels, w, ctx);
        const auto bytes = w.Finish();
        BitReader r(bytes.data(), bytes.size());
        Block8x8<std::int16_t> decoded;
        DecodeCoefficients(r, decoded, ctx);
        for (int i = 0; i < 64; ++i) {
            ASSERT_EQ(decoded[i], levels[i]) << "trial " << trial;
        }
    }
}

TEST(Entropy, AllZeroBlockIsTiny)
{
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    Block8x8<std::int16_t> levels{};
    BitWriter w;
    EncodeCoefficients(levels, w, ctx);
    EXPECT_LE(w.Finish().size(), 1u);
}

VideoGenConfig
SmallClipConfig()
{
    VideoGenConfig cfg;
    cfg.width = 128;
    cfg.height = 64;
    cfg.objects = 2;
    cfg.noise_amplitude = 1;
    return cfg;
}

TEST(Codec, DecoderMatchesEncoderReconstructionBitExact)
{
    const auto frames = GenerateClip(SmallClipConfig(), 4);
    Vp9Encoder encoder(128, 64);
    Vp9Decoder decoder;
    ExecutionContext ectx(ExecutionTarget::kCpuOnly);
    ExecutionContext dctx(ExecutionTarget::kCpuOnly);

    for (const Frame &src : frames) {
        const EncodeResult enc = encoder.EncodeFrame(src, ectx);
        const Frame out = decoder.DecodeFrame(enc.bitstream, dctx);
        const Frame &recon = encoder.last_reconstruction();
        ASSERT_EQ(MeanAbsDiff(out.y, recon.y), 0.0);
        ASSERT_EQ(MeanAbsDiff(out.u, recon.u), 0.0);
        ASSERT_EQ(MeanAbsDiff(out.v, recon.v), 0.0);
    }
}

TEST(Codec, ReasonableQualityAtModerateQuantizer)
{
    const auto frames = GenerateClip(SmallClipConfig(), 3);
    CodecConfig cfg;
    cfg.qindex = 40;
    Vp9Encoder encoder(128, 64, cfg);
    Vp9Decoder decoder(cfg);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);

    for (const Frame &src : frames) {
        const EncodeResult enc = encoder.EncodeFrame(src, ctx);
        const Frame out = decoder.DecodeFrame(enc.bitstream, ctx);
        EXPECT_GT(Psnr(src.y, out.y), 25.0);
    }
}

TEST(Codec, InterFramesAreSmallerThanKeyFrames)
{
    const auto frames = GenerateClip(SmallClipConfig(), 3);
    Vp9Encoder encoder(128, 64);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);

    const EncodeResult key = encoder.EncodeFrame(frames[0], ctx);
    const EncodeResult inter1 = encoder.EncodeFrame(frames[1], ctx);
    const EncodeResult inter2 = encoder.EncodeFrame(frames[2], ctx);
    EXPECT_TRUE(key.key_frame);
    EXPECT_FALSE(inter1.key_frame);
    EXPECT_LT(inter1.bitstream.size(), key.bitstream.size());
    EXPECT_LT(inter2.bitstream.size(), key.bitstream.size());
    // Temporal prediction is actually used.
    EXPECT_GT(inter1.inter_macroblocks, inter1.intra_macroblocks);
}

TEST(Codec, ForcedKeyFrameResetsPrediction)
{
    const auto frames = GenerateClip(SmallClipConfig(), 2);
    Vp9Encoder encoder(128, 64);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    encoder.EncodeFrame(frames[0], ctx);
    const EncodeResult forced =
        encoder.EncodeFrame(frames[1], ctx, nullptr, /*force_key=*/true);
    EXPECT_TRUE(forced.key_frame);
    EXPECT_EQ(forced.inter_macroblocks, 0);
}

TEST(Codec, PhasesAttributeTheWork)
{
    const auto frames = GenerateClip(SmallClipConfig(), 2);
    Vp9Encoder encoder(128, 64);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    CodecPhases enc_phases;
    encoder.EncodeFrame(frames[0], ctx, &enc_phases);
    encoder.EncodeFrame(frames[1], ctx, &enc_phases);

    // Encoder: ME exists and is the dominant single phase (paper
    // Figure 15: ME is the largest energy consumer).
    EXPECT_GT(enc_phases.me.energy.Total(), 0.0);
    EXPECT_GT(enc_phases.me.energy.Total(),
              enc_phases.entropy.energy.Total());
    EXPECT_GT(enc_phases.deblock.energy.Total(), 0.0);
    EXPECT_GT(enc_phases.transform.energy.Total(), 0.0);

    Vp9Decoder decoder;
    CodecPhases dec_phases;
    // Re-encode to fresh state for the decoder.
    Vp9Encoder encoder2(128, 64);
    ExecutionContext ctx2(ExecutionTarget::kCpuOnly);
    const auto e1 = encoder2.EncodeFrame(frames[0], ctx2);
    const auto e2 = encoder2.EncodeFrame(frames[1], ctx2);
    decoder.DecodeFrame(e1.bitstream, ctx2, &dec_phases);
    decoder.DecodeFrame(e2.bitstream, ctx2, &dec_phases);

    // Decoder: no motion estimation; MC + deblock dominate (Figure 10).
    EXPECT_DOUBLE_EQ(dec_phases.me.energy.Total(), 0.0);
    EXPECT_GT(dec_phases.subpel.energy.Total() +
                  dec_phases.mc_other.energy.Total(),
              0.0);
    EXPECT_GT(dec_phases.deblock.energy.Total(), 0.0);
}

TEST(Codec, SubpelRefinementTriggersInterpolationInDecoder)
{
    // With subpel refinement on, decoding must exercise the 8-tap path.
    const auto frames = GenerateClip(SmallClipConfig(), 3);
    Vp9Encoder encoder(128, 64);
    Vp9Decoder decoder;
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    CodecPhases phases;
    for (const Frame &f : frames) {
        const auto enc = encoder.EncodeFrame(f, ctx);
        decoder.DecodeFrame(enc.bitstream, ctx, &phases);
    }
    EXPECT_GT(phases.subpel.instructions, 0u);
}

} // namespace
} // namespace pim::video
