/**
 * @file
 * Unit tests for src/common: types, RNG, stats, tables, buffers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/buffer.h"
#include "common/fastdiv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace pim {
namespace {

TEST(Types, UnitLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
}

TEST(Types, LineAlign)
{
    EXPECT_EQ(LineAlign(0), 0u);
    EXPECT_EQ(LineAlign(63), 0u);
    EXPECT_EQ(LineAlign(64), 64u);
    EXPECT_EQ(LineAlign(130), 128u);
}

TEST(Types, LinesSpanned)
{
    EXPECT_EQ(LinesSpanned(0, 0), 0u);
    EXPECT_EQ(LinesSpanned(0, 1), 1u);
    EXPECT_EQ(LinesSpanned(0, 64), 1u);
    EXPECT_EQ(LinesSpanned(0, 65), 2u);
    EXPECT_EQ(LinesSpanned(63, 2), 2u);
    EXPECT_EQ(LinesSpanned(64, 64), 1u);
    EXPECT_EQ(LinesSpanned(10, 128), 3u);
}

TEST(Types, CyclesToNs)
{
    EXPECT_DOUBLE_EQ(CyclesToNs(2000, 2.0), 1000.0);
    EXPECT_DOUBLE_EQ(CyclesToNs(0, 1.0), 0.0);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.Next64(), b.Next64());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += a.Next64() == b.Next64() ? 1 : 0;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.Range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.NextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(13);
    int hits = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i) {
        hits += rng.Chance(0.25) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.03);
}

TEST(Counter, AddAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.Add();
    c.Add(9);
    EXPECT_EQ(c.value(), 10u);
    c.Reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(4, 10.0); // [0,10) [10,20) [20,30) [30,..]
    h.Sample(0.0);
    h.Sample(9.9);
    h.Sample(15.0);
    h.Sample(100.0); // clamps into last bin
    h.Sample(-5.0);  // clamps to 0
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.count(0), 3u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 0u);
    EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, MeanUsesBinCenters)
{
    Histogram h(10, 1.0);
    h.Sample(2.1); // bin 2, center 2.5
    h.Sample(2.4);
    EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
}

TEST(StatGroup, SetAccumulateGet)
{
    StatGroup g;
    g.Set("x", 1.5);
    g.Accumulate("x", 2.5);
    EXPECT_DOUBLE_EQ(g.Get("x"), 4.0);
    EXPECT_TRUE(g.Has("x"));
    EXPECT_FALSE(g.Has("y"));
}

TEST(Table, TextOutputHasHeaderAndRows)
{
    Table t("Demo");
    t.SetHeader({"name", "value"});
    t.AddRow({"alpha", Table::Num(1.234, 2)});
    t.AddRow({"beta", Table::Pct(0.5)});
    const std::string text = t.ToText();
    EXPECT_NE(text.find("Demo"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("1.23"), std::string::npos);
    EXPECT_NE(text.find("50.0%"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t("T");
    t.SetHeader({"a", "b"});
    t.AddRow({"1", "2"});
    EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(SimBuffer, DisjointAddressRanges)
{
    SimBuffer<std::uint8_t> a(100);
    SimBuffer<std::uint8_t> b(100);
    // Ranges must not overlap.
    const bool disjoint = a.sim_base() + 100 <= b.sim_base() ||
                          b.sim_base() + 100 <= a.sim_base();
    EXPECT_TRUE(disjoint);
}

TEST(SimBuffer, SimAddrScalesWithElementSize)
{
    SimBuffer<std::uint32_t> buf(16);
    EXPECT_EQ(buf.SimAddr(0), buf.sim_base());
    EXPECT_EQ(buf.SimAddr(4), buf.sim_base() + 16);
    EXPECT_EQ(buf.size_bytes(), 64u);
}

TEST(SimBuffer, LineAlignedBase)
{
    SimBuffer<std::uint8_t> buf(10);
    EXPECT_EQ(buf.sim_base() % kCacheLineBytes, 0u);
}

// FastDiv must be exact for every 64-bit numerator — it replaces `/`
// and `%` on the set-index hot path, where a single wrong quotient
// silently corrupts counters.  Exercise all three strategies (shift,
// magic, magic-with-add) at their boundary numerators.

/** Check Div/Mod against the hardware operators for one (n, d). */
void
ExpectFastDivExact(const FastDiv &fd, std::uint64_t n, std::uint64_t d)
{
    ASSERT_EQ(fd.Div(n), n / d) << "n=" << n << " d=" << d;
    ASSERT_EQ(fd.Mod(n), n % d) << "n=" << n << " d=" << d;
}

TEST(FastDiv, MatchesHardwareDivideOnBoundaryNumerators)
{
    // Divisors chosen to hit every strategy: powers of two (shift),
    // small odds (single magic), and divisors known to need the 65-bit
    // magic fixup path (e.g. 7, and large d near 2^63).
    const std::uint64_t divisors[] = {
        1,  2,  3,  4,   5,   6,   7,    9,    10,        12,
        24, 48, 56, 341, 641, 941, 1000, 4096, 104729,
        (1ull << 32) - 1, (1ull << 32) + 1, (1ull << 63) - 25,
        (1ull << 63), ~0ull - 1, ~0ull};
    for (const std::uint64_t d : divisors) {
        const FastDiv fd(d);
        // Boundary numerators: around multiples of d, around powers of
        // two, and the extremes of the 64-bit range.
        std::vector<std::uint64_t> ns = {0, 1, d - 1, d, d + 1,
                                         ~0ull, ~0ull - 1};
        for (int k = 1; k < 64; ++k) {
            const std::uint64_t p = 1ull << k;
            ns.push_back(p - 1);
            ns.push_back(p);
            ns.push_back(p + 1);
        }
        for (int m = 1; m <= 5; ++m) {
            const std::uint64_t mult = d * static_cast<std::uint64_t>(m);
            ns.push_back(mult - 1);
            ns.push_back(mult);
            ns.push_back(mult + 1);
        }
        for (const std::uint64_t n : ns) {
            ExpectFastDivExact(fd, n, d);
        }
    }
}

TEST(FastDiv, MatchesHardwareDivideOnRandomPairs)
{
    Rng rng(0x5e7d1f);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t d = rng.Next64() | 1; // never zero
        const FastDiv fd(d);
        ExpectFastDivExact(fd, rng.Next64(), d);
        // Small divisors stress the magic-add path hardest.
        const std::uint64_t small = (rng.Next64() % 1000) + 1;
        const FastDiv fs(small);
        ExpectFastDivExact(fs, rng.Next64(), small);
    }
}

TEST(FastDiv, DefaultIsDivideByOne)
{
    const FastDiv fd;
    EXPECT_EQ(fd.Div(12345u), 12345u);
    EXPECT_EQ(fd.Mod(12345u), 0u);
}

} // namespace
} // namespace pim
