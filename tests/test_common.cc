/**
 * @file
 * Unit tests for src/common: types, RNG, stats, tables, buffers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/digest.h"
#include "common/env.h"
#include "common/fastdiv.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace pim {
namespace {

TEST(Types, UnitLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
}

TEST(Types, LineAlign)
{
    EXPECT_EQ(LineAlign(0), 0u);
    EXPECT_EQ(LineAlign(63), 0u);
    EXPECT_EQ(LineAlign(64), 64u);
    EXPECT_EQ(LineAlign(130), 128u);
}

TEST(Types, LinesSpanned)
{
    EXPECT_EQ(LinesSpanned(0, 0), 0u);
    EXPECT_EQ(LinesSpanned(0, 1), 1u);
    EXPECT_EQ(LinesSpanned(0, 64), 1u);
    EXPECT_EQ(LinesSpanned(0, 65), 2u);
    EXPECT_EQ(LinesSpanned(63, 2), 2u);
    EXPECT_EQ(LinesSpanned(64, 64), 1u);
    EXPECT_EQ(LinesSpanned(10, 128), 3u);
}

TEST(Types, CyclesToNs)
{
    EXPECT_DOUBLE_EQ(CyclesToNs(2000, 2.0), 1000.0);
    EXPECT_DOUBLE_EQ(CyclesToNs(0, 1.0), 0.0);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.Next64(), b.Next64());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += a.Next64() == b.Next64() ? 1 : 0;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.Range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.NextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(13);
    int hits = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i) {
        hits += rng.Chance(0.25) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.03);
}

TEST(Counter, AddAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.Add();
    c.Add(9);
    EXPECT_EQ(c.value(), 10u);
    c.Reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(4, 10.0); // [0,10) [10,20) [20,30) [30,..]
    h.Sample(0.0);
    h.Sample(9.9);
    h.Sample(15.0);
    h.Sample(100.0); // clamps into last bin
    h.Sample(-5.0);  // clamps to 0
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.count(0), 3u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 0u);
    EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, MeanUsesBinCenters)
{
    Histogram h(10, 1.0);
    h.Sample(2.1); // bin 2, center 2.5
    h.Sample(2.4);
    EXPECT_DOUBLE_EQ(h.Mean(), 2.5);
}

TEST(StatGroup, SetAccumulateGet)
{
    StatGroup g;
    g.Set("x", 1.5);
    g.Accumulate("x", 2.5);
    EXPECT_DOUBLE_EQ(g.Get("x"), 4.0);
    EXPECT_TRUE(g.Has("x"));
    EXPECT_FALSE(g.Has("y"));
}

TEST(Table, TextOutputHasHeaderAndRows)
{
    Table t("Demo");
    t.SetHeader({"name", "value"});
    t.AddRow({"alpha", Table::Num(1.234, 2)});
    t.AddRow({"beta", Table::Pct(0.5)});
    const std::string text = t.ToText();
    EXPECT_NE(text.find("Demo"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("1.23"), std::string::npos);
    EXPECT_NE(text.find("50.0%"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t("T");
    t.SetHeader({"a", "b"});
    t.AddRow({"1", "2"});
    EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(SimBuffer, DisjointAddressRanges)
{
    SimBuffer<std::uint8_t> a(100);
    SimBuffer<std::uint8_t> b(100);
    // Ranges must not overlap.
    const bool disjoint = a.sim_base() + 100 <= b.sim_base() ||
                          b.sim_base() + 100 <= a.sim_base();
    EXPECT_TRUE(disjoint);
}

TEST(SimBuffer, SimAddrScalesWithElementSize)
{
    SimBuffer<std::uint32_t> buf(16);
    EXPECT_EQ(buf.SimAddr(0), buf.sim_base());
    EXPECT_EQ(buf.SimAddr(4), buf.sim_base() + 16);
    EXPECT_EQ(buf.size_bytes(), 64u);
}

TEST(SimBuffer, LineAlignedBase)
{
    SimBuffer<std::uint8_t> buf(10);
    EXPECT_EQ(buf.sim_base() % kCacheLineBytes, 0u);
}

// FastDiv must be exact for every 64-bit numerator — it replaces `/`
// and `%` on the set-index hot path, where a single wrong quotient
// silently corrupts counters.  Exercise all three strategies (shift,
// magic, magic-with-add) at their boundary numerators.

/** Check Div/Mod against the hardware operators for one (n, d). */
void
ExpectFastDivExact(const FastDiv &fd, std::uint64_t n, std::uint64_t d)
{
    ASSERT_EQ(fd.Div(n), n / d) << "n=" << n << " d=" << d;
    ASSERT_EQ(fd.Mod(n), n % d) << "n=" << n << " d=" << d;
}

TEST(FastDiv, MatchesHardwareDivideOnBoundaryNumerators)
{
    // Divisors chosen to hit every strategy: powers of two (shift),
    // small odds (single magic), and divisors known to need the 65-bit
    // magic fixup path (e.g. 7, and large d near 2^63).
    const std::uint64_t divisors[] = {
        1,  2,  3,  4,   5,   6,   7,    9,    10,        12,
        24, 48, 56, 341, 641, 941, 1000, 4096, 104729,
        (1ull << 32) - 1, (1ull << 32) + 1, (1ull << 63) - 25,
        (1ull << 63), ~0ull - 1, ~0ull};
    for (const std::uint64_t d : divisors) {
        const FastDiv fd(d);
        // Boundary numerators: around multiples of d, around powers of
        // two, and the extremes of the 64-bit range.
        std::vector<std::uint64_t> ns = {0, 1, d - 1, d, d + 1,
                                         ~0ull, ~0ull - 1};
        for (int k = 1; k < 64; ++k) {
            const std::uint64_t p = 1ull << k;
            ns.push_back(p - 1);
            ns.push_back(p);
            ns.push_back(p + 1);
        }
        for (int m = 1; m <= 5; ++m) {
            const std::uint64_t mult = d * static_cast<std::uint64_t>(m);
            ns.push_back(mult - 1);
            ns.push_back(mult);
            ns.push_back(mult + 1);
        }
        for (const std::uint64_t n : ns) {
            ExpectFastDivExact(fd, n, d);
        }
    }
}

TEST(FastDiv, MatchesHardwareDivideOnRandomPairs)
{
    Rng rng(0x5e7d1f);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t d = rng.Next64() | 1; // never zero
        const FastDiv fd(d);
        ExpectFastDivExact(fd, rng.Next64(), d);
        // Small divisors stress the magic-add path hardest.
        const std::uint64_t small = (rng.Next64() % 1000) + 1;
        const FastDiv fs(small);
        ExpectFastDivExact(fs, rng.Next64(), small);
    }
}

TEST(FastDiv, DefaultIsDivideByOne)
{
    const FastDiv fd;
    EXPECT_EQ(fd.Div(12345u), 12345u);
    EXPECT_EQ(fd.Mod(12345u), 0u);
}

TEST(ContentDigest, MatchesPublishedFnv1aVectors)
{
    // Reference vectors from the FNV specification.
    EXPECT_EQ(ContentDigest().value(), ContentDigest::kOffsetBasis);
    EXPECT_EQ(ContentDigest().Update("").value(),
              0xcbf29ce484222325ULL);
    EXPECT_EQ(ContentDigest().Update("a").value(),
              0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(ContentDigest().Update("foobar").value(),
              0x85944171f73967e8ULL);
}

TEST(ContentDigest, ChunkingDoesNotChangeTheDigest)
{
    Rng rng(0xD16E57);
    std::vector<unsigned char> bytes(10000);
    for (auto &b : bytes) {
        b = static_cast<unsigned char>(rng.Range(0, 255));
    }
    const std::uint64_t oneshot =
        ContentDigest::HashBytes(bytes.data(), bytes.size());

    // Feed the same stream in adversarial chunkings: byte-at-a-time,
    // random splits, and mixed Update overloads.
    ContentDigest bytewise;
    for (const unsigned char b : bytes) {
        bytewise.Update(&b, 1);
    }
    EXPECT_EQ(bytewise.value(), oneshot);

    ContentDigest random_chunks;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
        const std::size_t n = std::min<std::size_t>(
            bytes.size() - pos, rng.Range(1, 257));
        random_chunks.Update(bytes.data() + pos, n);
        pos += n;
    }
    EXPECT_EQ(random_chunks.value(), oneshot);
}

TEST(ContentDigest, UpdateU64IsExplicitLittleEndianBytes)
{
    const std::uint64_t v = 0x0123456789abcdefULL;
    const unsigned char le[8] = {0xef, 0xcd, 0xab, 0x89,
                                 0x67, 0x45, 0x23, 0x01};
    EXPECT_EQ(ContentDigest().UpdateU64(v).value(),
              ContentDigest().Update(le, sizeof(le)).value());
    // Width is fixed: a small value still absorbs 8 bytes, so
    // adjacent fields cannot alias across a boundary.
    EXPECT_NE(ContentDigest().UpdateU64(1).value(),
              ContentDigest().Update("\x01", 1).value());
}

TEST(ContentDigest, BoundaryInputsStayDistinct)
{
    // Collision sanity over the kinds of nearly-identical inputs the
    // corpus actually produces: same lengths, one-bit/one-byte edits,
    // swapped field order.  FNV-1a is not collision-proof, but these
    // must never collide.
    std::set<std::uint64_t> seen;
    const auto insert_unique = [&](std::uint64_t d) {
        EXPECT_TRUE(seen.insert(d).second) << "digest collision";
    };
    insert_unique(ContentDigest().value());
    insert_unique(ContentDigest().Update("\0", 1).value());
    insert_unique(ContentDigest().Update("\0\0", 2).value());
    insert_unique(ContentDigest().Update("ab").value());
    insert_unique(ContentDigest().Update("ba").value());
    for (std::uint64_t i = 0; i < 4096; ++i) {
        insert_unique(ContentDigest().UpdateU64(i).value());
    }
    insert_unique(
        ContentDigest().UpdateU64(1).UpdateU64(2).value());
    insert_unique(
        ContentDigest().UpdateU64(2).UpdateU64(1).value());
}

TEST(ContentDigest, HexIsFixedWidthLowercase)
{
    EXPECT_EQ(ContentDigest::ToHex(0), "0000000000000000");
    EXPECT_EQ(ContentDigest::ToHex(0xABCULL), "0000000000000abc");
    EXPECT_EQ(ContentDigest::ToHex(~0ULL), "ffffffffffffffff");
    const ContentDigest d;
    EXPECT_EQ(d.Hex(), ContentDigest::ToHex(d.value()));
}

/** Captures PIM_WARN output for the duration of a scope. */
class WarnCapture
{
  public:
    WarnCapture() { SetWarnCapture(&messages_); }
    ~WarnCapture() { SetWarnCapture(nullptr); }
    const std::vector<std::string> &messages() const
    {
        return messages_;
    }

  private:
    std::vector<std::string> messages_;
};

TEST(Env, SwitchAcceptsDocumentedSpellingsSilently)
{
    WarnCapture warns;
    for (const char *v : {"on", "1", "true", "yes"}) {
        EXPECT_TRUE(ParseSwitchValue("PIM_SIMD", v, false)) << v;
    }
    for (const char *v : {"off", "0", "false", "no"}) {
        EXPECT_FALSE(ParseSwitchValue("PIM_SIMD", v, true)) << v;
    }
    // Unset (nullptr or empty) means "use the default", silently.
    EXPECT_TRUE(ParseSwitchValue("PIM_SIMD", nullptr, true));
    EXPECT_FALSE(ParseSwitchValue("PIM_SIMD", "", false));
    EXPECT_TRUE(warns.messages().empty());
}

TEST(Env, MalformedSwitchWarnsWithValueAndFallback)
{
    WarnCapture warns;
    // The regression this pins: "ON" (wrong case) used to silently
    // disable SIMD.  Now it keeps the fallback and says so.
    EXPECT_TRUE(ParseSwitchValue("PIM_SIMD", "ON", true));
    ASSERT_EQ(warns.messages().size(), 1u);
    const std::string &msg = warns.messages()[0];
    EXPECT_NE(msg.find("PIM_SIMD"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'ON'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("keeping enabled"), std::string::npos) << msg;

    EXPECT_FALSE(ParseSwitchValue("PIM_PIN", "enabled", false));
    ASSERT_EQ(warns.messages().size(), 2u);
    EXPECT_NE(warns.messages()[1].find("PIM_PIN"), std::string::npos);
    EXPECT_NE(warns.messages()[1].find("'enabled'"),
              std::string::npos);
    EXPECT_NE(warns.messages()[1].find("keeping disabled"),
              std::string::npos);
}

TEST(Env, ThreadsParsesInRangeAndWarnsOtherwise)
{
    WarnCapture warns;
    EXPECT_EQ(ParseThreadsValue("PIM_SWEEP_THREADS", "8"), 8u);
    EXPECT_EQ(ParseThreadsValue("PIM_SWEEP_THREADS", "1"), 1u);
    EXPECT_EQ(ParseThreadsValue("PIM_SWEEP_THREADS", nullptr), 0u);
    EXPECT_EQ(ParseThreadsValue("PIM_SWEEP_THREADS", ""), 0u);
    EXPECT_TRUE(warns.messages().empty());

    // Malformed, zero, negative, trailing junk, out of range: all
    // fall back to auto (0) with one warning each naming the value.
    const char *bad[] = {"zero", "0", "-3", "8x", "1e3", "5000"};
    for (const char *v : bad) {
        EXPECT_EQ(ParseThreadsValue("PIM_SWEEP_THREADS", v), 0u) << v;
    }
    ASSERT_EQ(warns.messages().size(), std::size(bad));
    for (std::size_t i = 0; i < std::size(bad); ++i) {
        const std::string &msg = warns.messages()[i];
        EXPECT_NE(msg.find("PIM_SWEEP_THREADS"), std::string::npos);
        EXPECT_NE(msg.find("'" + std::string(bad[i]) + "'"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("hardware concurrency"), std::string::npos);
    }
}

TEST(Env, EnvSwitchReadsTheProcessEnvironment)
{
    WarnCapture warns;
    ::setenv("PIM_TEST_SWITCH", "off", 1);
    EXPECT_FALSE(EnvSwitch("PIM_TEST_SWITCH", true));
    ::setenv("PIM_TEST_SWITCH", "garbage", 1);
    EXPECT_TRUE(EnvSwitch("PIM_TEST_SWITCH", true));
    EXPECT_EQ(warns.messages().size(), 1u);
    ::unsetenv("PIM_TEST_SWITCH");
    EXPECT_FALSE(EnvSwitch("PIM_TEST_SWITCH", false));
    EXPECT_EQ(warns.messages().size(), 1u);
}

TEST(Logging, WarnOnceEmitsExactlyOncePerKey)
{
    WarnCapture warns;
    // Fresh keys (never used elsewhere in the process) so the counts
    // below are deterministic whatever ran before this test.
    for (int i = 0; i < 5; ++i) {
        PIM_WARN_ONCE("test.warn_once.key_a", "key a fired (%d)", i);
    }
    PIM_WARN_ONCE("test.warn_once.key_b", "key b fired");
    PIM_WARN_ONCE("test.warn_once.key_b", "key b fired again");
    ASSERT_EQ(warns.messages().size(), 2u);
    EXPECT_NE(warns.messages()[0].find("key a fired (0)"),
              std::string::npos);
    EXPECT_NE(warns.messages()[1].find("key b fired"),
              std::string::npos);
}

TEST(Logging, FirstOccurrenceIsProcessWidePerKey)
{
    EXPECT_TRUE(FirstOccurrence("test.first_occurrence.fresh"));
    EXPECT_FALSE(FirstOccurrence("test.first_occurrence.fresh"));
    // Distinct keys are independent.
    EXPECT_TRUE(FirstOccurrence("test.first_occurrence.other"));
}

} // namespace
} // namespace pim
