/**
 * @file
 * Property tests for the model layer: compute-model math, timing-bound
 * identification, energy-model monotonicity, and the design-choice
 * invariants the ablation benches sweep.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/compute_model.h"
#include "core/execution_context.h"
#include "sim/energy_model.h"
#include "sim/hierarchy.h"
#include "sim/timing_model.h"
#include "workloads/browser/texture_tiler.h"

namespace pim {
namespace {

using core::ComputeModel;
using core::ExecutionContext;
using core::ExecutionTarget;

TEST(ComputeModelProps, IssueSlotsNeverExceedTotalOps)
{
    Rng rng(77);
    ComputeModel m = core::CpuComputeModel();
    for (int trial = 0; trial < 50; ++trial) {
        sim::OpCounts ops;
        ops.alu = rng.Below(100000);
        ops.mul = rng.Below(100000);
        ops.load = rng.Below(10000);
        ops.store = rng.Below(10000);
        ops.branch = rng.Below(10000);
        const auto vectorizable = ops.alu + ops.mul;
        ops.simd_eligible = rng.Below(vectorizable + 1);

        const double slots = m.IssueSlots(ops);
        EXPECT_LE(slots, static_cast<double>(ops.Total()) + 1e-9);
        EXPECT_GE(slots,
                  static_cast<double>(ops.Total() - ops.simd_eligible));
    }
}

TEST(ComputeModelProps, WiderSimdNeverSlower)
{
    sim::OpCounts ops;
    ops.alu = 100000;
    ops.simd_eligible = 80000;
    ops.branch = 5000;

    double prev = 1e300;
    for (const std::uint32_t width : {1u, 2u, 4u, 8u, 16u}) {
        ComputeModel m = core::PimCoreComputeModel();
        m.simd_width = width;
        const double t = m.IssueTime(ops);
        EXPECT_LE(t, prev) << "width " << width;
        prev = t;
    }
}

TEST(ComputeModelProps, SimdOnlyHelpsEligibleOps)
{
    sim::OpCounts scalar;
    scalar.alu = 50000; // nothing vectorizable
    ComputeModel narrow = core::PimCoreComputeModel();
    narrow.simd_width = 1;
    ComputeModel wide = core::PimCoreComputeModel();
    wide.simd_width = 16;
    EXPECT_DOUBLE_EQ(narrow.IssueTime(scalar), wide.IssueTime(scalar));
}

TEST(ComputeModelProps, LanesScaleIssueTimeExactly)
{
    sim::OpCounts ops;
    ops.alu = 123456;
    ops.branch = 789;
    ComputeModel m = core::PimCoreComputeModel();
    m.parallel_lanes = 1.0;
    const double base = m.IssueTime(ops);
    for (const double lanes : {2.0, 4.0, 8.0}) {
        m.parallel_lanes = lanes;
        EXPECT_NEAR(m.IssueTime(ops), base / lanes, 1e-9);
    }
}

TEST(ComputeModelProps, EnergyIndependentOfLanes)
{
    // Spreading work over vault cores changes time, not energy.
    sim::OpCounts ops;
    ops.alu = 10000;
    ComputeModel m = core::PimCoreComputeModel();
    m.parallel_lanes = 1.0;
    const double e1 = m.ComputeEnergy(ops);
    m.parallel_lanes = 16.0;
    EXPECT_DOUBLE_EQ(m.ComputeEnergy(ops), e1);
}

TEST(TimingProps, MoreBandwidthNeverSlower)
{
    sim::PerfCounters pc;
    pc.dram.read_requests = 100000;
    pc.dram.read_bytes = 6400000;

    double prev = 1e300;
    for (const double gbps : {8.0, 16.0, 32.0, 64.0, 256.0}) {
        sim::DramConfig dram = sim::Lpddr3Config();
        dram.bandwidth_gbps = gbps;
        const auto t = sim::EvaluateTiming(100.0, pc, dram,
                                           sim::MemTimingParams{});
        EXPECT_LE(t.Total(), prev);
        prev = t.Total();
    }
}

TEST(TimingProps, MoreMlpNeverSlower)
{
    sim::PerfCounters pc;
    pc.dram.read_requests = 50000;
    pc.dram.read_bytes = 3200000;

    double prev = 1e300;
    for (const double mlp : {1.0, 2.0, 4.0, 8.0, 16.0}) {
        sim::MemTimingParams mem;
        mem.mlp = mlp;
        const auto t = sim::EvaluateTiming(100.0, pc,
                                           sim::Lpddr3Config(), mem);
        EXPECT_LE(t.Total(), prev);
        prev = t.Total();
    }
}

TEST(TimingProps, TotalIsAlwaysMaxOfBounds)
{
    Rng rng(88);
    for (int trial = 0; trial < 100; ++trial) {
        sim::PerfCounters pc;
        pc.dram.read_requests = rng.Below(100000);
        pc.dram.read_bytes = pc.dram.read_requests * 64;
        pc.has_llc = rng.Chance(0.5);
        pc.llc.read_hits = rng.Below(100000);
        const double issue = static_cast<double>(rng.Below(100000));
        const auto t = sim::EvaluateTiming(issue, pc,
                                           sim::Lpddr3Config(),
                                           sim::MemTimingParams{});
        EXPECT_GE(t.Total(), t.issue_ns);
        EXPECT_GE(t.Total(), t.memory_ns);
        EXPECT_GE(t.Total(), t.bandwidth_ns);
        EXPECT_TRUE(t.Total() == t.issue_ns || t.Total() == t.memory_ns ||
                    t.Total() == t.bandwidth_ns);
    }
}

/** LLC capacity sweep: bigger LLC never produces more traffic. */
class LlcSweepTest : public ::testing::TestWithParam<Bytes>
{
};

TEST_P(LlcSweepTest, TilingTrafficMonotoneInLlcSize)
{
    const Bytes llc = GetParam();
    Rng rng(5);
    browser::Bitmap linear(256, 256);
    linear.Randomize(rng);
    browser::TiledTexture tiled(256, 256);

    sim::HierarchyConfig small = sim::HostHierarchyConfig();
    small.llc->size = llc;
    sim::HierarchyConfig big = sim::HostHierarchyConfig();
    big.llc->size = llc * 2;

    ExecutionContext small_ctx(ExecutionTarget::kCpuOnly,
                               core::CpuComputeModel(), small);
    browser::TileTexture(linear, tiled, small_ctx);
    ExecutionContext big_ctx(ExecutionTarget::kCpuOnly,
                             core::CpuComputeModel(), big);
    browser::TileTexture(linear, tiled, big_ctx);

    EXPECT_GE(small_ctx.Report("t").counters.OffChipBytes(),
              big_ctx.Report("t").counters.OffChipBytes());
}

INSTANTIATE_TEST_SUITE_P(Caps, LlcSweepTest,
                         ::testing::Values(Bytes{256_KiB}, Bytes{512_KiB},
                                           Bytes{1_MiB}, Bytes{2_MiB}));

TEST(EnergyProps, MovementScalesWithDramBytes)
{
    sim::EnergyModel model;
    sim::PerfCounters pc;
    double prev = -1.0;
    for (const Bytes bytes : {Bytes{0}, Bytes{64_KiB}, Bytes{1_MiB},
                              Bytes{16_MiB}}) {
        pc.dram.read_bytes = bytes;
        const auto e = model.MemoryEnergy(pc, sim::Lpddr3Config());
        EXPECT_GT(e.DataMovement() + 1.0, prev);
        prev = e.DataMovement();
    }
}

TEST(EnergyProps, CustomCacheRatesAreHonored)
{
    sim::CacheEnergyRates rates;
    rates.l1_per_access = 5.0;
    rates.llc_per_access = 50.0;
    sim::EnergyModel model(rates);
    sim::PerfCounters pc;
    pc.l1.read_hits = 10;
    pc.has_llc = true;
    pc.llc.read_hits = 4;
    const auto e = model.MemoryEnergy(pc, sim::Lpddr3Config());
    EXPECT_DOUBLE_EQ(e.l1, 50.0);
    EXPECT_DOUBLE_EQ(e.llc, 200.0);
}

TEST(ContextProps, CustomContextUsesSuppliedHierarchy)
{
    sim::HierarchyConfig hier = sim::PimCoreHierarchyConfig();
    hier.l1.size = 8_KiB;
    ExecutionContext ctx(ExecutionTarget::kPimCore,
                         core::PimCoreComputeModel(), hier);
    EXPECT_EQ(ctx.hierarchy().config().l1.size, 8_KiB);
    EXPECT_EQ(ctx.hierarchy().llc(), nullptr);
}

} // namespace
} // namespace pim
