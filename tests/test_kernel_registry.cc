/**
 * @file
 * Kernel-registry tests: catalog enumeration and lookup, glob
 * matching, scale helpers, end-to-end execution of every registered
 * kernel on all three targets, bit-identical equivalence between the
 * registry path and a hard-coded legacy-style setup (one kernel per
 * workload group), the record-once LLC sweep equivalence behind
 * `pim_run --sweep=llc`, and the MPKI zero-instruction guards.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/rng.h"
#include "core/kernel_registry.h"
#include "sim/hierarchy.h"
#include "sim/sweep.h"
#include "telemetry/report_json.h"
#include "workloads/browser/texture_tiler.h"
#include "workloads/catalog.h"
#include "workloads/ml/pack.h"
#include "workloads/video/subpel.h"
#include "workloads/video/video_gen.h"

namespace pim {
namespace {

using core::ExecutionContext;
using core::KernelRegistry;
using core::KernelSession;
using core::KernelSpec;

const KernelRegistry &
Catalog()
{
    workloads::EnsureKernelCatalog();
    return KernelRegistry::Global();
}

TEST(KernelRegistry, CatalogEnumeratesEveryPaperKernelOnce)
{
    const auto &registry = Catalog();
    const auto all = registry.All();
    ASSERT_EQ(all.size(), 9u) << "Figures 18+19+20 define 9 kernels";
    EXPECT_EQ(registry.size(), all.size());

    std::set<std::string> slugs;
    for (const auto *spec : all) {
        EXPECT_FALSE(spec->name.empty());
        EXPECT_FALSE(spec->figure.empty());
        EXPECT_TRUE(slugs.insert(spec->Slug()).second)
            << "duplicate slug " << spec->Slug();
    }

    const std::vector<std::string> groups = registry.Groups();
    ASSERT_EQ(groups, (std::vector<std::string>{"browser", "tf", "video"}));
    EXPECT_EQ(registry.Group("browser").size(), 4u);
    EXPECT_EQ(registry.Group("tf").size(), 2u);
    EXPECT_EQ(registry.Group("video").size(), 3u);
}

TEST(KernelRegistry, CanonicalOrderMatchesTheFigures)
{
    const auto all = Catalog().All();
    std::vector<std::string> names;
    names.reserve(all.size());
    for (const auto *spec : all) {
        names.push_back(spec->name);
    }
    const std::vector<std::string> expected = {
        "Texture Tiling",      "Color Blitting",
        "Compression",         "Decompression",
        "Packing",             "Quantization",
        "Sub-Pixel Interpolation", "Deblocking Filter",
        "Motion Estimation",
    };
    EXPECT_EQ(names, expected);
}

TEST(KernelRegistry, FindAcceptsSlugAndDisplayName)
{
    const auto &registry = Catalog();
    const KernelSpec *by_slug = registry.Find("texture_tiling");
    const KernelSpec *by_name = registry.Find("Texture Tiling");
    ASSERT_NE(by_slug, nullptr);
    EXPECT_EQ(by_slug, by_name);
    EXPECT_EQ(registry.Find("no_such_kernel"), nullptr);
}

TEST(KernelRegistry, MatchSupportsSubstringsAndGlobs)
{
    const auto &registry = Catalog();
    EXPECT_EQ(registry.Match("blit").size(), 1u);
    EXPECT_EQ(registry.Match("BLIT").size(), 1u) << "case-insensitive";
    EXPECT_EQ(registry.Match("*compress*").size(), 2u);
    EXPECT_EQ(registry.Match("*").size(), registry.size());
    EXPECT_TRUE(registry.Match("zzz").empty());
}

TEST(GlobMatch, StarAndQuestionSemantics)
{
    EXPECT_TRUE(core::GlobMatch("*", ""));
    EXPECT_TRUE(core::GlobMatch("a*b*c", "a_xx_b_yy_c"));
    EXPECT_FALSE(core::GlobMatch("a*b*c", "a_xx_c"));
    EXPECT_TRUE(core::GlobMatch("p?ck*", "packing"));
    EXPECT_FALSE(core::GlobMatch("p?ck", "packing"));
}

TEST(ScaleHelpers, RoundToAlignedPositiveDimensions)
{
    EXPECT_EQ(core::ScaleDim(512, 1.0, 32), 512);
    EXPECT_EQ(core::ScaleDim(512, 0.25, 32), 128);
    EXPECT_EQ(core::ScaleDim(512, 0.0625, 32), 32);
    // Never rounds to zero, whatever the scale.
    EXPECT_EQ(core::ScaleDim(1024, 0.0001, 256), 256);
    EXPECT_EQ(core::ScaleBytes(256 * 1024, 1.0), 256u * 1024u);
    EXPECT_EQ(core::ScaleBytes(256 * 1024, 0.0625), 16u * 1024u);
    EXPECT_EQ(core::ScaleBytes(100, 0.001), 4096u) << "page-granular floor";
}

TEST(KernelSession, EveryKernelRunsOnAllThreeTargets)
{
    const auto &registry = Catalog();
    KernelSession session(0.0625);
    for (const auto *spec : registry.All()) {
        SCOPED_TRACE(spec->name);
        const core::KernelResult r = session.Run(*spec);
        EXPECT_EQ(r.name, spec->name);
        EXPECT_EQ(r.cpu.target, core::ExecutionTarget::kCpuOnly);
        EXPECT_EQ(r.pim_core.target, core::ExecutionTarget::kPimCore);
        EXPECT_EQ(r.pim_acc.target, core::ExecutionTarget::kPimAccel);
        EXPECT_GT(r.cpu.TotalEnergyPj(), 0.0);
        EXPECT_GT(r.cpu.TotalTimeNs(), 0.0);
        EXPECT_GT(r.pim_core.TotalTimeNs(), 0.0);
        EXPECT_GT(r.pim_acc.TotalTimeNs(), 0.0);
        EXPECT_GT(r.cpu.ops.Total(), 0u);
    }
}

TEST(KernelSession, StandaloneDecompressionSelfMaterializesInputs)
{
    // Decompression depends on Compression's output; run alone it must
    // compress off the measurement path instead of crashing or
    // measuring an empty buffer.
    const auto &registry = Catalog();
    const KernelSpec *spec = registry.Find("decompression");
    ASSERT_NE(spec, nullptr);
    KernelSession session(0.0625);
    const core::KernelResult r = session.Run(*spec);
    EXPECT_GT(r.cpu.counters.OffChipBytes(), 0u);
}

/** Serialize a report; bit-identical reports dump identically. */
std::string
Dump(const core::RunReport &report)
{
    return telemetry::ToJson(report).Dump(2);
}

void
ExpectIdenticalResults(const core::KernelResult &legacy,
                       const core::KernelResult &registry)
{
    EXPECT_EQ(Dump(legacy.cpu), Dump(registry.cpu));
    EXPECT_EQ(Dump(legacy.pim_core), Dump(registry.pim_core));
    EXPECT_EQ(Dump(legacy.pim_acc), Dump(registry.pim_acc));
}

// The bit-identity contract: for each workload group, the registry
// path (KernelSession at a given scale) must reproduce a hard-coded
// legacy-style setup of the same kernel exactly — same RNG stream,
// same simulated-address allocation order, same counters and energy.

TEST(RegistryEquivalence, TextureTilingMatchesLegacySetup)
{
    SimAddressSpace::ResetForTest();
    Rng rng(0xB10);
    browser::Bitmap linear(128, 128);
    linear.Randomize(rng);
    const core::KernelResult legacy = core::RunKernelAllTargets(
        "Texture Tiling", {linear.size_bytes(), linear.size_bytes()},
        [&](ExecutionContext &ctx) {
            browser::TiledTexture tiled(128, 128);
            browser::TileTexture(linear, tiled, ctx);
        });

    SimAddressSpace::ResetForTest();
    KernelSession session(0.25);
    const core::KernelResult from_registry =
        session.Run(*Catalog().Find("texture_tiling"));

    ExpectIdenticalResults(legacy, from_registry);
}

TEST(RegistryEquivalence, PackingMatchesLegacySetup)
{
    SimAddressSpace::ResetForTest();
    Rng rng(0x7F);
    ml::Matrix<std::uint8_t> lhs(256, 1152);
    lhs.Randomize(rng);
    const core::KernelResult legacy = core::RunKernelAllTargets(
        "Packing", {lhs.size_bytes(), lhs.size_bytes()},
        [&](ExecutionContext &ctx) {
            ml::PackedMatrix packed(256, 1152);
            ml::PackLhs(lhs, packed, ctx);
        });

    SimAddressSpace::ResetForTest();
    KernelSession session(0.25);
    const core::KernelResult from_registry =
        session.Run(*Catalog().Find("packing"));

    ExpectIdenticalResults(legacy, from_registry);
}

TEST(RegistryEquivalence, SubPixelInterpolationMatchesLegacySetup)
{
    SimAddressSpace::ResetForTest();
    video::VideoGenConfig cfg;
    cfg.width = 480;
    cfg.height = 272;
    const auto frames = video::GenerateClip(cfg, 4);
    const core::KernelResult legacy = core::RunKernelAllTargets(
        "Sub-Pixel Interpolation", {frames[0].y.size_bytes(), 0},
        [&](ExecutionContext &ctx) {
            video::PredBlock block(16, 16);
            for (int y = 0; y < cfg.height; y += 16) {
                for (int x = 0; x < cfg.width; x += 16) {
                    video::InterpolateBlock(frames[0].y, x, y,
                                            video::MotionVector{5, 3},
                                            block, ctx);
                }
            }
        });

    SimAddressSpace::ResetForTest();
    KernelSession session(0.25);
    const core::KernelResult from_registry =
        session.Run(*Catalog().Find("sub_pixel_interpolation"));

    ExpectIdenticalResults(legacy, from_registry);
}

bool
SameCounters(const sim::PerfCounters &a, const sim::PerfCounters &b)
{
    const auto cache_eq = [](const sim::CacheStats &x,
                             const sim::CacheStats &y) {
        return x.read_hits == y.read_hits &&
               x.read_misses == y.read_misses &&
               x.write_hits == y.write_hits &&
               x.write_misses == y.write_misses &&
               x.writebacks == y.writebacks;
    };
    return cache_eq(a.l1, b.l1) && cache_eq(a.llc, b.llc) &&
           a.has_llc == b.has_llc &&
           a.dram.read_requests == b.dram.read_requests &&
           a.dram.write_requests == b.dram.write_requests &&
           a.dram.read_bytes == b.dram.read_bytes &&
           a.dram.write_bytes == b.dram.write_bytes;
}

// The contract behind `pim_run --sweep=llc`: each kernel is executed
// (and recorded) exactly once, and the analytic one-pass LLC profile
// of that recording must be bit-identical to a cold per-configuration
// replay of the same trace.

TEST(RegistrySweep, RecordedLlcSweepMatchesPerConfigReplays)
{
    KernelSession session(0.25);
    const core::RecordedKernel rec =
        session.Record(*Catalog().Find("texture_tiling"));
    ASSERT_GT(rec.trace.size(), 0u);
    EXPECT_GT(rec.cpu.TotalEnergyPj(), 0.0);

    const sim::HierarchyConfig base = sim::HostHierarchyConfig();
    ASSERT_TRUE(base.llc.has_value());

    std::vector<sim::CacheConfig> ladder;
    std::vector<sim::HierarchyConfig> configs;
    for (Bytes size = 256_KiB; size <= 2_MiB; size *= 2) {
        sim::CacheConfig point = *base.llc;
        point.size = size;
        ladder.push_back(point);
        sim::HierarchyConfig cfg = base;
        cfg.llc = point;
        configs.push_back(cfg);
    }

    const sim::SweepRunner runner;
    const auto profiled = runner.ProfileLlcSweep(rec.trace, base, ladder);
    const auto replayed = runner.ReplayTrace(rec.trace, configs);
    ASSERT_EQ(profiled.size(), ladder.size());
    ASSERT_EQ(replayed.size(), ladder.size());
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        EXPECT_TRUE(SameCounters(profiled[i], replayed[i]))
            << "LLC point " << ladder[i].size;
    }
}

TEST(MpkiGuard, ZeroInstructionsYieldZeroNotNan)
{
    sim::PerfCounters counters;
    counters.has_llc = true;
    counters.llc.read_misses = 4096;
    EXPECT_DOUBLE_EQ(counters.Mpki(0), 0.0);
    EXPECT_GT(counters.Mpki(1000), 0.0);

    // A default-constructed report has zero ops; Mpki must be a clean
    // 0.0, not a division by zero.
    core::RunReport report;
    EXPECT_DOUBLE_EQ(report.Mpki(), 0.0);
}

} // namespace
} // namespace pim
