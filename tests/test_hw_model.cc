/**
 * @file
 * Tests for the VP9 hardware codec traffic/energy model
 * (paper Figures 12, 16, 21).
 */

#include <gtest/gtest.h>

#include "workloads/video/hw_model.h"

namespace pim::video {
namespace {

TEST(HwDecoder, ReferenceFrameDominatesTraffic)
{
    for (const auto res : {HwResolution::kHd, HwResolution::k4k}) {
        const auto t = HwDecoderTraffic(res, /*compression=*/false);
        EXPECT_GT(t.ReferenceShare(), 0.55);
        EXPECT_GT(t.reconstructed_frame, 0.0);
        EXPECT_DOUBLE_EQ(t.compression_info, 0.0);
        EXPECT_DOUBLE_EQ(t.current_frame, 0.0); // decoder has no camera
    }
}

TEST(HwDecoder, PaperFigure12Shares)
{
    // 4K, no compression: reference ~59.6% of traffic (Section 6.3.1).
    const auto t4k = HwDecoderTraffic(HwResolution::k4k, false);
    EXPECT_NEAR(t4k.ReferenceShare(), 0.596, 0.03);
    // HD, no compression: ~75.5%.
    const auto thd = HwDecoderTraffic(HwResolution::kHd, false);
    EXPECT_NEAR(thd.ReferenceShare(), 0.755, 0.03);
    // With compression the share drops but stays significant
    // (48.8% at 4K, 62.2% at HD).
    const auto c4k = HwDecoderTraffic(HwResolution::k4k, true);
    EXPECT_NEAR(c4k.ReferenceShare(), 0.488, 0.04);
    const auto chd = HwDecoderTraffic(HwResolution::kHd, true);
    EXPECT_NEAR(chd.ReferenceShare(), 0.622, 0.04);
}

TEST(HwDecoder, CompressionReducesTotalTraffic)
{
    for (const auto res : {HwResolution::kHd, HwResolution::k4k}) {
        const auto plain = HwDecoderTraffic(res, false);
        const auto comp = HwDecoderTraffic(res, true);
        EXPECT_LT(comp.Total(), plain.Total());
        EXPECT_LT(comp.reference_frame, plain.reference_frame);
        EXPECT_GT(comp.compression_info, 0.0);
    }
}

TEST(HwDecoder, FourKMovesMoreThanHd)
{
    const auto hd = HwDecoderTraffic(HwResolution::kHd, false);
    const auto k4 = HwDecoderTraffic(HwResolution::k4k, false);
    EXPECT_GT(k4.Total(), 3.0 * hd.Total());
    // Absolute scale sanity: tens of MB per 4K frame.
    EXPECT_GT(k4.Total(), 25.0);
    EXPECT_LT(k4.Total(), 60.0);
}

TEST(HwEncoder, PaperFigure16Shares)
{
    // HD, no compression: reference ~65.1%, current frame ~14.2%,
    // reconstructed ~12.4% (Section 7.3.1).
    const auto t = HwEncoderTraffic(HwResolution::kHd, false);
    EXPECT_NEAR(t.reference_frame / t.Total(), 0.651, 0.03);
    EXPECT_NEAR(t.current_frame / t.Total(), 0.142, 0.03);
    EXPECT_NEAR(t.reconstructed_frame / t.Total(), 0.124, 0.03);
}

TEST(HwEncoder, CompressionShiftsShareToCurrentFrame)
{
    const auto plain = HwEncoderTraffic(HwResolution::kHd, false);
    const auto comp = HwEncoderTraffic(HwResolution::kHd, true);
    // The raw camera frame cannot be compressed, so its share grows.
    EXPECT_GT(comp.current_frame / comp.Total(),
              plain.current_frame / plain.Total());
    // Paper: compression removes ~59.7% of the reference stream.
    EXPECT_NEAR(comp.reference_frame / plain.reference_frame, 0.403,
                0.01);
}

TEST(HwEncoder, EncoderMovesMoreThanDecoder)
{
    for (const auto res : {HwResolution::kHd, HwResolution::k4k}) {
        EXPECT_GT(HwEncoderTraffic(res, false).Total(),
                  HwDecoderTraffic(res, false).Total());
    }
}

TEST(HwEnergy, MovementDominatesBaseline)
{
    // Section 10.3.2: off-chip movement is ~69-72% of codec energy.
    const auto dec = HwDecoderEnergy(HwResolution::k4k, false,
                                     HwPimMode::kNone);
    const double movement =
        dec.dram_mj + dec.interconnect_mj + dec.memctrl_mj;
    EXPECT_GT(movement / dec.Total(), 0.55);
    EXPECT_LT(movement / dec.Total(), 0.85);
}

TEST(HwEnergy, PimAccelBeatsEverything)
{
    for (const bool comp : {false, true}) {
        for (const auto res : {HwResolution::kHd, HwResolution::k4k}) {
            const auto base = HwDecoderEnergy(res, comp, HwPimMode::kNone);
            const auto acc =
                HwDecoderEnergy(res, comp, HwPimMode::kPimAccel);
            const auto core =
                HwDecoderEnergy(res, comp, HwPimMode::kPimCore);
            EXPECT_LT(acc.Total(), base.Total());
            EXPECT_LT(acc.Total(), core.Total());
        }
    }
}

TEST(HwEnergy, PimCoreLosesToDedicatedHardwareWithCompression)
{
    // Figure 21's crossover: the general-purpose PIM core's inefficient
    // computation outweighs its movement savings once compression has
    // already reduced traffic (paper: +63.4% vs. the VP9 baseline).
    const auto base =
        HwDecoderEnergy(HwResolution::k4k, true, HwPimMode::kNone);
    const auto core =
        HwDecoderEnergy(HwResolution::k4k, true, HwPimMode::kPimCore);
    EXPECT_GT(core.Total(), base.Total());
    EXPECT_NEAR(core.Total() / base.Total(), 1.63, 0.45);
}

TEST(HwEnergy, PimAccelWithoutCompressionBeatsBaselineWithIt)
{
    // Paper: "PIM-Acc without compression uses less energy than the VP9
    // hardware baseline with compression."
    const auto base_comp =
        HwDecoderEnergy(HwResolution::k4k, true, HwPimMode::kNone);
    const auto acc_plain =
        HwDecoderEnergy(HwResolution::k4k, false, HwPimMode::kPimAccel);
    EXPECT_LT(acc_plain.Total(), base_comp.Total());
}

TEST(HwEnergy, PimAccelSavingsInPaperBallpark)
{
    // Paper: PIM-Acc reduces decoder energy by ~75% and encoder energy
    // by ~70% relative to the VP9 baseline.
    const auto dec_base =
        HwDecoderEnergy(HwResolution::k4k, false, HwPimMode::kNone);
    const auto dec_acc =
        HwDecoderEnergy(HwResolution::k4k, false, HwPimMode::kPimAccel);
    const double dec_saving = 1.0 - dec_acc.Total() / dec_base.Total();
    EXPECT_GT(dec_saving, 0.50);
    EXPECT_LT(dec_saving, 0.90);

    const auto enc_base =
        HwEncoderEnergy(HwResolution::kHd, false, HwPimMode::kNone);
    const auto enc_acc =
        HwEncoderEnergy(HwResolution::kHd, false, HwPimMode::kPimAccel);
    const double enc_saving = 1.0 - enc_acc.Total() / enc_base.Total();
    EXPECT_GT(enc_saving, 0.45);
    EXPECT_LT(enc_saving, 0.90);
}

TEST(HwEnergy, CombiningPimAccAndCompressionIsBest)
{
    const double options[] = {
        HwDecoderEnergy(HwResolution::k4k, false, HwPimMode::kNone)
            .Total(),
        HwDecoderEnergy(HwResolution::k4k, true, HwPimMode::kNone)
            .Total(),
        HwDecoderEnergy(HwResolution::k4k, false, HwPimMode::kPimAccel)
            .Total(),
    };
    const double best =
        HwDecoderEnergy(HwResolution::k4k, true, HwPimMode::kPimAccel)
            .Total();
    for (const double other : options) {
        EXPECT_LT(best, other);
    }
}

TEST(HwModel, ResolutionHelpers)
{
    EXPECT_EQ(HwWidth(HwResolution::k4k), 3840);
    EXPECT_EQ(HwHeight(HwResolution::k4k), 2160);
    EXPECT_EQ(HwWidth(HwResolution::kHd), 1280);
    EXPECT_DOUBLE_EQ(HwPixels(HwResolution::kHd), 1280.0 * 720.0);
}

} // namespace
} // namespace pim::video
