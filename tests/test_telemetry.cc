/**
 * @file
 * Telemetry subsystem tests: the JSON document model (escaping,
 * round-trip, number formatting), the span tracer (balanced B/E pairs,
 * valid Chrome-trace JSON, per-thread ids), the report serializers
 * (schema envelope, field presence), and the paper-reference checker
 * (pass on seed values, warn/fail ladder, skip semantics).
 */

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "core/execution_context.h"
#include "telemetry/reference_table.h"
#include "telemetry/report_json.h"
#include "telemetry/span_tracer.h"

namespace {

using namespace pim;

// ---------------------------------------------------------------------
// JSON document model
// ---------------------------------------------------------------------

TEST(Json, EscapesControlAndQuoteCharacters)
{
    std::string out;
    JsonValue::AppendEscaped(out, "a\"b\\c\n\t\r\x01z");
    EXPECT_EQ(out, "a\\\"b\\\\c\\n\\t\\r\\u0001z");
}

TEST(Json, DumpEscapedStringRoundTrips)
{
    JsonValue doc = JsonValue::Object();
    doc.Set("s", "quote \" backslash \\ newline \n tab \t");

    const auto parsed = JsonParse(doc.Dump());
    ASSERT_TRUE(parsed.has_value());
    const JsonValue *s = parsed->Find("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->AsString(), "quote \" backslash \\ newline \n tab \t");
}

TEST(Json, IntegralNumbersPrintWithoutDecimalPoint)
{
    EXPECT_EQ(JsonValue::NumberToString(42.0), "42");
    EXPECT_EQ(JsonValue::NumberToString(-7.0), "-7");
    EXPECT_EQ(JsonValue::NumberToString(0.0), "0");
    // 2^50 is integral and in the exact range.
    EXPECT_EQ(JsonValue::NumberToString(1125899906842624.0),
              "1125899906842624");
}

TEST(Json, NonFiniteNumbersDumpAsNull)
{
    EXPECT_EQ(JsonValue::NumberToString(
                  std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(JsonValue::NumberToString(
                  std::numeric_limits<double>::quiet_NaN()),
              "null");

    JsonValue doc = JsonValue::Object();
    doc.Set("bad", std::numeric_limits<double>::infinity());
    const auto parsed = JsonParse(doc.Dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->Find("bad")->is_null());
}

TEST(Json, ObjectPreservesInsertionOrderAndReplacesKeys)
{
    JsonValue doc = JsonValue::Object();
    doc.Set("z", 1);
    doc.Set("a", 2);
    doc.Set("z", 3); // replace, keeps position
    EXPECT_EQ(doc.Dump(), "{\"z\":3,\"a\":2}");
}

TEST(Json, RoundTripNestedDocument)
{
    JsonValue doc = JsonValue::Object();
    doc.Set("name", "bench");
    doc.Set("ok", true);
    doc.Set("none", JsonValue());
    JsonValue &arr = doc.Set("values", JsonValue::Array());
    arr.Push(1.5);
    arr.Push("two");
    JsonValue &nested = doc.Set("nested", JsonValue::Object());
    nested.Set("pi", 3.25);

    for (const int indent : {-1, 0, 2}) {
        const auto parsed = JsonParse(doc.Dump(indent));
        ASSERT_TRUE(parsed.has_value()) << "indent=" << indent;
        EXPECT_EQ(parsed->Dump(), doc.Dump()) << "indent=" << indent;
    }
}

TEST(Json, FindPathWalksNestedObjects)
{
    const auto parsed =
        JsonParse("{\"metrics\":{\"headline\":{\"speedup\":2.26}}}");
    ASSERT_TRUE(parsed.has_value());
    const JsonValue *v = parsed->FindPath("metrics.headline.speedup");
    ASSERT_NE(v, nullptr);
    EXPECT_DOUBLE_EQ(v->AsNumber(), 2.26);
    EXPECT_EQ(parsed->FindPath("metrics.missing.speedup"), nullptr);
}

TEST(Json, ParserRejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(JsonParse("{\"a\":}", &error).has_value());
    EXPECT_FALSE(JsonParse("[1,2", &error).has_value());
    EXPECT_FALSE(JsonParse("{} trailing", &error).has_value());
    EXPECT_FALSE(JsonParse("", &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(Json, ParserDecodesUnicodeEscapes)
{
    const auto parsed = JsonParse("\"\\u0041\\u00e9\"");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->AsString(), "A\xc3\xa9");
}

// ---------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------

/** Fresh private tracer per test; the global one stays untouched. */
class TracerTest : public ::testing::Test
{
  protected:
    telemetry::Tracer tracer_;
};

TEST_F(TracerTest, DisabledTracerRecordsNothing)
{
    EXPECT_FALSE(tracer_.enabled());
    tracer_.Begin("span", "cat");
    tracer_.Counter("c", 1.0);
    tracer_.End("span", "cat");
    EXPECT_EQ(tracer_.size(), 0u);
}

TEST_F(TracerTest, EmitsBalancedSpansAsValidChromeJson)
{
    tracer_.SetEnabled(true);
    tracer_.Begin("outer", "test");
    tracer_.Begin("inner", "test");
    tracer_.Counter("bytes", 4096.0);
    tracer_.Instant("marker", "test");
    tracer_.End("inner", "test");
    tracer_.End("outer", "test");

    const auto parsed = JsonParse(tracer_.ToChromeJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->Find("displayTimeUnit")->AsString(), "ms");

    const JsonValue *events = parsed->Find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->size(), 6u);

    int depth = 0;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const JsonValue &ev = events->at(i);
        const std::string &ph = ev.Find("ph")->AsString();
        ASSERT_TRUE(ev.Find("name") != nullptr);
        ASSERT_TRUE(ev.Find("ts")->is_number());
        EXPECT_EQ(ev.Find("pid")->AsNumber(), 1.0);
        if (ph == "B") {
            ++depth;
        } else if (ph == "E") {
            --depth;
            ASSERT_GE(depth, 0);
        } else if (ph == "C") {
            EXPECT_DOUBLE_EQ(ev.FindPath("args.value")->AsNumber(),
                             4096.0);
        } else if (ph == "i") {
            EXPECT_EQ(ev.Find("s")->AsString(), "t");
        }
    }
    EXPECT_EQ(depth, 0) << "unbalanced B/E pairs";
}

TEST_F(TracerTest, TimestampsAreMonotonic)
{
    tracer_.SetEnabled(true);
    for (int i = 0; i < 8; ++i) {
        tracer_.Instant("tick", "test");
    }
    const auto events = tracer_.Events();
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
    }
}

TEST_F(TracerTest, ThreadsGetDistinctSequentialIds)
{
    tracer_.SetEnabled(true);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([this] {
            tracer_.Begin("work", "test");
            tracer_.End("work", "test");
        });
    }
    for (auto &thread : threads) {
        thread.join();
    }

    const auto events = tracer_.Events();
    ASSERT_EQ(events.size(), 8u);
    std::vector<std::uint32_t> tids;
    for (const auto &ev : events) {
        tids.push_back(ev.tid);
        EXPECT_GE(ev.tid, 1u);
        EXPECT_LE(ev.tid, 4u);
    }
    // Each thread's B and E share a tid, and all four tids appear.
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    EXPECT_EQ(tids.size(), 4u);
}

TEST_F(TracerTest, ClearDropsBufferedEvents)
{
    tracer_.SetEnabled(true);
    tracer_.Instant("x", "test");
    EXPECT_EQ(tracer_.size(), 1u);
    tracer_.Clear();
    EXPECT_EQ(tracer_.size(), 0u);
}

TEST(TracerMacros, ScopedSpanBracketsGlobalTracer)
{
    auto &tracer = telemetry::Tracer::Global();
    tracer.Clear();
    tracer.SetEnabled(true);
    {
        PIM_TRACE_SPAN("test", "scoped");
        PIM_TRACE_COUNTER("count", 7.0);
    }
    tracer.SetEnabled(false);

    const auto events = tracer.Events();
    tracer.Clear();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].phase, 'B');
    EXPECT_EQ(events[0].name, "scoped");
    EXPECT_EQ(events[0].category, "test");
    EXPECT_EQ(events[1].phase, 'C');
    EXPECT_DOUBLE_EQ(events[1].value, 7.0);
    EXPECT_EQ(events[2].phase, 'E');
    EXPECT_EQ(events[2].name, "scoped");
}

// ---------------------------------------------------------------------
// Report serializers
// ---------------------------------------------------------------------

TEST(ReportJson, RunReportSerializesCoreFields)
{
    core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    ctx.hierarchy().Top().Access(0, 4096, sim::AccessType::kRead);
    const core::RunReport report = ctx.Report("unit-kernel");

    const JsonValue doc = telemetry::ToJson(report);
    EXPECT_EQ(doc.Find("kernel")->AsString(), "unit-kernel");
    EXPECT_EQ(doc.Find("target")->AsString(), "CPU-Only");
    ASSERT_NE(doc.FindPath("counters.dram.read_bytes"), nullptr);
    EXPECT_GT(doc.FindPath("counters.dram.read_bytes")->AsNumber(), 0.0);
    ASSERT_NE(doc.Find("total_energy_pj"), nullptr);
    EXPECT_DOUBLE_EQ(doc.Find("total_energy_pj")->AsNumber(),
                     report.TotalEnergyPj());
    ASSERT_NE(doc.Find("total_time_ns"), nullptr);
    EXPECT_DOUBLE_EQ(doc.Find("total_time_ns")->AsNumber(),
                     report.TotalTimeNs());
    ASSERT_NE(doc.FindPath("energy.data_movement_fraction"), nullptr);

    // The serialized document parses back to identical bytes.
    const auto parsed = JsonParse(doc.Dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->Dump(), doc.Dump());
}

TEST(ReportJson, MakeReportDocumentStampsSchemaEnvelope)
{
    const JsonValue doc = telemetry::MakeReportDocument("unit_binary");
    EXPECT_EQ(doc.Find("schema")->AsString(),
              telemetry::kReportSchemaName);
    EXPECT_EQ(doc.Find("version")->AsNumber(),
              telemetry::kReportSchemaVersion);
    EXPECT_EQ(doc.Find("binary")->AsString(), "unit_binary");
}

TEST(ReportJson, MetricSlugNormalizesDisplayNames)
{
    EXPECT_EQ(telemetry::MetricSlug("Sub-Pixel Interpolation"),
              "sub_pixel_interpolation");
    EXPECT_EQ(telemetry::MetricSlug("Texture Tiling"), "texture_tiling");
    EXPECT_EQ(telemetry::MetricSlug("GEMM (16)"), "gemm_16");
}

// ---------------------------------------------------------------------
// Reference table / regression gate
// ---------------------------------------------------------------------

/** Small three-entry table exercising the full status ladder. */
telemetry::ReferenceTable
TinyTable()
{
    telemetry::ReferenceTable t;
    t.Add({"m.pass", "§t", "within warn_tol", 1.0, 0.50, 0.05, 0.10});
    t.Add({"m.warn", "§t", "between tolerances", 1.0, 0.50, 0.05, 0.10});
    t.Add({"m.fail", "§t", "beyond fail_tol", 1.0, 0.50, 0.05, 0.10});
    return t;
}

JsonValue
ReportWithMetrics(const std::vector<std::pair<std::string, double>> &kv)
{
    JsonValue doc = telemetry::MakeReportDocument("unit");
    JsonValue &metrics = doc.Set("metrics", JsonValue::Object());
    for (const auto &[key, value] : kv) {
        metrics.Set(key, value);
    }
    return doc;
}

TEST(ReferenceTable, StatusLadderPassWarnFail)
{
    const auto summary = telemetry::CheckReport(
        ReportWithMetrics({{"m.pass", 0.52},    // |delta| 0.02 <= warn
                           {"m.warn", 0.57},    // 0.07 in (warn, fail]
                           {"m.fail", 0.70}}),  // 0.20 > fail
        TinyTable());
    EXPECT_EQ(summary.passed, 1);
    EXPECT_EQ(summary.warned, 1);
    EXPECT_EQ(summary.failed, 1);
    EXPECT_EQ(summary.skipped, 0);
    EXPECT_FALSE(summary.ok());
}

TEST(ReferenceTable, MissingMetricsAreSkippedNotFailed)
{
    const auto summary = telemetry::CheckReport(
        ReportWithMetrics({{"m.pass", 0.50}}), TinyTable());
    EXPECT_EQ(summary.passed, 1);
    EXPECT_EQ(summary.skipped, 2);
    EXPECT_EQ(summary.failed, 0);
    EXPECT_TRUE(summary.ok());
}

TEST(ReferenceTable, AllSkippedReportFailsTheGate)
{
    const auto summary =
        telemetry::CheckReport(ReportWithMetrics({}), TinyTable());
    EXPECT_EQ(summary.checked(), 0);
    EXPECT_FALSE(summary.ok()) << "an empty gate must not pass";
}

TEST(ReferenceTable, NonFiniteMeasurementFails)
{
    // A non-finite metric dumps as null, so a parsed report skips it;
    // an in-memory document carries the NaN through to a failure.
    const auto summary = telemetry::CheckReport(
        ReportWithMetrics(
            {{"m.pass", std::numeric_limits<double>::quiet_NaN()}}),
        TinyTable());
    EXPECT_EQ(summary.failed, 1);
    EXPECT_FALSE(summary.ok());
}

TEST(ReferenceTable, PaperTablePassesOnSeedValuesAndFailsPerturbed)
{
    const auto &paper = telemetry::ReferenceTable::Paper();
    ASSERT_FALSE(paper.entries().empty());

    // A report carrying every expected value verbatim passes clean.
    std::vector<std::pair<std::string, double>> exact;
    for (const auto &entry : paper.entries()) {
        exact.emplace_back(entry.metric, entry.expected);
    }
    const auto clean =
        telemetry::CheckReport(ReportWithMetrics(exact), paper);
    EXPECT_EQ(clean.passed,
              static_cast<int>(paper.entries().size()));
    EXPECT_EQ(clean.warned, 0);
    EXPECT_EQ(clean.failed, 0);
    EXPECT_TRUE(clean.ok());

    // Perturb one metric beyond its fail tolerance: gate trips.
    auto perturbed = exact;
    const auto &victim = paper.entries().front();
    perturbed.front().second =
        victim.expected + 2.0 * victim.fail_tol + 0.01;
    const auto broken =
        telemetry::CheckReport(ReportWithMetrics(perturbed), paper);
    EXPECT_EQ(broken.failed, 1);
    EXPECT_FALSE(broken.ok());
}

TEST(ReferenceTable, PaperTableFindAndRendering)
{
    const auto &paper = telemetry::ReferenceTable::Paper();
    const auto *entry = paper.Find("headline.pim_acc.speedup");
    ASSERT_NE(entry, nullptr);
    EXPECT_GT(entry->fail_tol, entry->warn_tol);
    EXPECT_EQ(paper.Find("no.such.metric"), nullptr);

    // Every entry renders into the summary table without crashing.
    std::vector<std::pair<std::string, double>> exact;
    for (const auto &e : paper.entries()) {
        exact.emplace_back(e.metric, e.expected);
    }
    const auto summary =
        telemetry::CheckReport(ReportWithMetrics(exact), paper);
    const Table rendered = summary.ToTable();
    EXPECT_EQ(rendered.data().size(), paper.entries().size());
}

} // namespace
