/**
 * @file
 * Cross-module integration tests: the paper's end-to-end claims, run
 * through the offload runtime over the real kernels.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/offload_runtime.h"
#include "core/pim_target.h"
#include "workloads/browser/lzo.h"
#include "workloads/browser/page_data.h"
#include "workloads/browser/texture_tiler.h"
#include "workloads/ml/pack.h"
#include "workloads/ml/quantize.h"
#include "workloads/video/motion.h"
#include "workloads/video/subpel.h"
#include "workloads/video/video_gen.h"

namespace pim {
namespace {

using core::ExecutionContext;
using core::ExecutionTarget;
using core::OffloadFootprint;
using core::OffloadRuntime;
using core::RunReport;

/** Figure 18 shape for a kernel: report triple (CPU, PIM-Core, PIM-Acc). */
struct KernelReports
{
    RunReport cpu;
    RunReport pim_core;
    RunReport pim_acc;
};

KernelReports
RunKernel(const std::string &name, const OffloadFootprint &footprint,
          const std::function<void(ExecutionContext &)> &kernel)
{
    OffloadRuntime rt;
    const auto reports = rt.RunAll(name, footprint, kernel);
    return {reports[0], reports[1], reports[2]};
}

TEST(Integration, TextureTilingMatchesPaperShape)
{
    browser::Bitmap linear(512, 512);
    Rng rng(1);
    linear.Randomize(rng);

    const auto r = RunKernel(
        "texture-tiling",
        {linear.size_bytes(), linear.size_bytes()},
        [&](ExecutionContext &ctx) {
            browser::TiledTexture tiled(512, 512);
            browser::TileTexture(linear, tiled, ctx);
        });

    // Energy: PIM beats CPU; accelerator is at least as good as core.
    EXPECT_LT(r.pim_core.TotalEnergyPj(), r.cpu.TotalEnergyPj());
    EXPECT_LE(r.pim_acc.TotalEnergyPj(),
              r.pim_core.TotalEnergyPj() * 1.02);
    // Performance: PIM at least matches the host on this kernel.
    EXPECT_LE(r.pim_core.TotalTimeNs(), r.cpu.TotalTimeNs());
    EXPECT_LE(r.pim_acc.TotalTimeNs(), r.cpu.TotalTimeNs());
    // CPU run is memory-bound: movement dominates, MPKI > 10.
    EXPECT_GT(r.cpu.energy.DataMovementFraction(), 0.6);
    EXPECT_GT(r.cpu.Mpki(), 10.0);
}

TEST(Integration, TextureTilingPassesPimTargetCriteria)
{
    browser::Bitmap linear(512, 512);
    Rng rng(2);
    linear.Randomize(rng);
    const auto r = RunKernel(
        "texture-tiling",
        {linear.size_bytes(), linear.size_bytes()},
        [&](ExecutionContext &ctx) {
            browser::TiledTexture tiled(512, 512);
            browser::TileTexture(linear, tiled, ctx);
        });

    // Treat tiling as the top function of a scroll whose remaining
    // energy is "other" (as Figure 2 attributes it).
    std::vector<core::FunctionEnergyShare> shares = {
        {"texture-tiling", r.cpu.TotalEnergyPj(),
         r.cpu.energy.DataMovement()},
        {"other", r.cpu.TotalEnergyPj() * 0.9,
         r.cpu.TotalEnergyPj() * 0.3},
    };
    const auto verdict = core::EvaluatePimTarget(
        shares, 0, r.cpu, r.pim_acc, core::TextureTilingAccelArea());
    EXPECT_TRUE(verdict.IsCandidate());
    EXPECT_TRUE(verdict.IsPimTarget());
}

TEST(Integration, CompressionKernelShape)
{
    Rng rng(3);
    pim::SimBuffer<std::uint8_t> page(64 * 1024);
    browser::FillPageLikeData(page, rng, 0.4);

    const auto r = RunKernel(
        "compression", {page.size_bytes(), page.size_bytes() / 2},
        [&](ExecutionContext &ctx) {
            pim::SimBuffer<std::uint8_t> dst(
                browser::LzoCompressBound(page.size()));
            browser::LzoCompress(page, page.size(), dst, ctx);
        });
    EXPECT_LT(r.pim_core.TotalEnergyPj(), r.cpu.TotalEnergyPj());
    // Compression is more compute-intensive than tiling: the
    // accelerator's gain over the PIM core shows up in runtime
    // (Section 10.1's fifth observation).
    EXPECT_LT(r.pim_acc.timing.issue_ns, r.pim_core.timing.issue_ns);
}

TEST(Integration, PackingKernelShape)
{
    Rng rng(4);
    ml::Matrix<std::uint8_t> src(256, 256);
    src.Randomize(rng);

    const auto r = RunKernel(
        "packing", {src.size_bytes(), src.size_bytes()},
        [&](ExecutionContext &ctx) {
            ml::PackedMatrix packed(256, 256);
            ml::PackLhs(src, packed, ctx);
        });
    EXPECT_LT(r.pim_core.TotalEnergyPj(), r.cpu.TotalEnergyPj());
    EXPECT_LT(r.pim_acc.TotalEnergyPj(), r.cpu.TotalEnergyPj());
    EXPECT_GT(r.cpu.energy.DataMovementFraction(), 0.5);
}

TEST(Integration, QuantizationKernelShape)
{
    Rng rng(5);
    // Larger than the LLC so both quantization scans reach DRAM.
    ml::Matrix<std::int32_t> result(1024, 768);
    for (int i = 0; i < result.rows(); ++i) {
        for (int j = 0; j < result.cols(); ++j) {
            result.At(i, j) =
                static_cast<std::int32_t>(rng.Range(-100000, 100000));
        }
    }

    const auto r = RunKernel(
        "quantization",
        {result.size_bytes(), result.size_bytes() / 4},
        [&](ExecutionContext &ctx) {
            ml::Matrix<std::uint8_t> out(1024, 768);
            ml::RequantizeResult(result, out, ctx);
        });
    EXPECT_LT(r.pim_core.TotalEnergyPj(), r.cpu.TotalEnergyPj());
    EXPECT_GT(r.cpu.Mpki(), 10.0);
}

TEST(Integration, SubPixelInterpolationKernelShape)
{
    video::VideoGenConfig cfg;
    cfg.width = 320;
    cfg.height = 192;
    const auto frames = video::GenerateClip(cfg, 2);

    const auto interpolate_frame = [&](ExecutionContext &ctx) {
        video::PredBlock block(16, 16);
        for (int y = 0; y < cfg.height; y += 16) {
            for (int x = 0; x < cfg.width; x += 16) {
                video::InterpolateBlock(frames[0].y, x, y,
                                        video::MotionVector{3, 5},
                                        block, ctx);
            }
        }
    };
    const auto r =
        RunKernel("subpel", {frames[0].y.size_bytes(), 0},
                  interpolate_frame);
    EXPECT_LT(r.pim_core.TotalEnergyPj(), r.cpu.TotalEnergyPj());
    EXPECT_LT(r.pim_acc.TotalEnergyPj(), r.cpu.TotalEnergyPj());
}

TEST(Integration, MotionEstimationFavorsAccelerator)
{
    // Paper Section 10.3.1: ME is compute-heavy; the PIM core's gain is
    // modest but the accelerator's is large (2x class).
    video::VideoGenConfig cfg;
    cfg.width = 192;
    cfg.height = 128;
    const auto frames = video::GenerateClip(cfg, 4);

    const auto search_frame = [&](ExecutionContext &ctx) {
        const std::vector<const video::Plane *> refs = {
            &frames[0].y, &frames[1].y, &frames[2].y};
        for (int y = 0; y < cfg.height; y += 16) {
            for (int x = 0; x < cfg.width; x += 16) {
                video::DiamondSearch(frames[3].y, refs, x, y,
                                     video::MotionSearchParams{}, ctx);
            }
        }
    };
    const auto r = RunKernel(
        "motion-estimation",
        {3 * frames[0].y.size_bytes(), 0}, search_frame);

    EXPECT_LT(r.pim_acc.TotalTimeNs(), r.cpu.TotalTimeNs());
    EXPECT_LT(r.pim_acc.TotalEnergyPj(), r.cpu.TotalEnergyPj());
    // Accelerator clearly outperforms the 1-wide PIM core here.
    EXPECT_LT(r.pim_acc.TotalTimeNs(), r.pim_core.TotalTimeNs());
}

TEST(Integration, AverageEnergySavingsInPaperBand)
{
    // Aggregate the PIM-Acc savings across representative kernels; the
    // paper reports 55.4% average energy reduction (PIM-Acc) and 49.1%
    // (PIM-Core).  Allow a generous band around those.
    Rng rng(6);

    std::vector<KernelReports> reports;

    browser::Bitmap linear(512, 512);
    linear.Randomize(rng);
    reports.push_back(RunKernel(
        "tiling", {linear.size_bytes(), linear.size_bytes()},
        [&](ExecutionContext &ctx) {
            browser::TiledTexture tiled(512, 512);
            browser::TileTexture(linear, tiled, ctx);
        }));

    ml::Matrix<std::uint8_t> mat(256, 512);
    mat.Randomize(rng);
    reports.push_back(RunKernel(
        "packing", {mat.size_bytes(), mat.size_bytes()},
        [&](ExecutionContext &ctx) {
            ml::PackedMatrix packed(256, 512);
            ml::PackLhs(mat, packed, ctx);
        }));

    pim::SimBuffer<std::uint8_t> page(128 * 1024);
    browser::FillPageLikeData(page, rng, 0.4);
    reports.push_back(RunKernel(
        "compression", {page.size_bytes(), page.size_bytes() / 2},
        [&](ExecutionContext &ctx) {
            pim::SimBuffer<std::uint8_t> dst(
                browser::LzoCompressBound(page.size()));
            browser::LzoCompress(page, page.size(), dst, ctx);
        }));

    double core_saving = 0.0;
    double acc_saving = 0.0;
    for (const auto &r : reports) {
        core_saving +=
            1.0 - r.pim_core.TotalEnergyPj() / r.cpu.TotalEnergyPj();
        acc_saving +=
            1.0 - r.pim_acc.TotalEnergyPj() / r.cpu.TotalEnergyPj();
    }
    core_saving /= static_cast<double>(reports.size());
    acc_saving /= static_cast<double>(reports.size());

    EXPECT_GT(core_saving, 0.30);
    EXPECT_LT(core_saving, 0.75);
    EXPECT_GT(acc_saving, 0.35);
    EXPECT_LT(acc_saving, 0.80);
    EXPECT_GE(acc_saving, core_saving);
}

} // namespace
} // namespace pim
