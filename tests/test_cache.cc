/**
 * @file
 * Unit and property tests for the cache model and memory hierarchy.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/cache.h"
#include "sim/dram.h"
#include "sim/hierarchy.h"
#include "sim/simd.h"
#include "sim/trace.h"

namespace pim::sim {
namespace {

/** Forces the SIMD kill-switch for one scope, restoring it on exit. */
class SimdGuard
{
  public:
    explicit SimdGuard(bool on) : prev_(simd::Enabled())
    {
        simd::SetEnabled(on);
    }
    ~SimdGuard() { simd::SetEnabled(prev_); }

  private:
    bool prev_;
};

CacheConfig
SmallCache(Bytes size = 1_KiB, std::uint32_t assoc = 2)
{
    return CacheConfig{"test", size, assoc, 64};
}

TEST(Cache, ColdMissThenHit)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(SmallCache(), dram);

    cache.Access(0x1000, 4, AccessType::kRead);
    EXPECT_EQ(cache.stats().read_misses, 1u);
    EXPECT_EQ(cache.stats().read_hits, 0u);

    cache.Access(0x1000, 4, AccessType::kRead);
    cache.Access(0x1020, 4, AccessType::kRead); // same line
    EXPECT_EQ(cache.stats().read_hits, 2u);
    EXPECT_EQ(cache.stats().read_misses, 1u);

    // One line fill went below.
    EXPECT_EQ(dram.stats().read_bytes, 64u);
}

TEST(Cache, MultiLineAccessSplits)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(SmallCache(), dram);

    cache.Access(0x1000, 256, AccessType::kRead); // 4 lines
    EXPECT_EQ(cache.stats().read_misses, 4u);

    cache.Access(0x103F, 2, AccessType::kRead); // straddles 2 lines
    EXPECT_EQ(cache.stats().read_hits, 2u);
}

TEST(Cache, WritebackOnDirtyEviction)
{
    DramCounter dram(Lpddr3Config());
    // Direct-mapped, 2 sets.
    Cache cache(CacheConfig{"dm", 128, 1, 64}, dram);

    cache.Access(0x0000, 4, AccessType::kWrite); // set 0, dirty
    cache.Access(0x0080, 4, AccessType::kRead);  // set 0, evicts dirty
    EXPECT_EQ(cache.stats().writebacks, 1u);
    EXPECT_EQ(dram.stats().write_bytes, 64u);

    // Clean eviction: no writeback.
    cache.Access(0x0100, 4, AccessType::kRead); // evicts clean 0x0080
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, LruReplacement)
{
    DramCounter dram(Lpddr3Config());
    // One set, 2 ways.
    Cache cache(CacheConfig{"lru", 128, 2, 64}, dram);

    cache.Access(0x0000, 4, AccessType::kRead); // A
    cache.Access(0x1000, 4, AccessType::kRead); // B
    cache.Access(0x0000, 4, AccessType::kRead); // touch A
    cache.Access(0x2000, 4, AccessType::kRead); // evicts B (LRU)

    cache.Access(0x0000, 4, AccessType::kRead); // A still resident
    EXPECT_EQ(cache.stats().read_hits, 2u);
    cache.Access(0x1000, 4, AccessType::kRead); // B was evicted
    EXPECT_EQ(cache.stats().read_misses, 4u);
}

TEST(Cache, ContainsAndFlushRange)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(SmallCache(), dram);

    cache.Access(0x1000, 128, AccessType::kWrite);
    EXPECT_TRUE(cache.Contains(0x1000));
    EXPECT_TRUE(cache.Contains(0x1040));
    EXPECT_FALSE(cache.Contains(0x5000));

    const auto flushed = cache.FlushRange(0x1000, 128);
    EXPECT_EQ(flushed, 2u);
    EXPECT_FALSE(cache.Contains(0x1000));
    EXPECT_EQ(cache.stats().writebacks, 2u);
}

TEST(Cache, FlushAllWritesBackOnlyDirty)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(SmallCache(), dram);

    cache.Access(0x1000, 4, AccessType::kWrite);
    cache.Access(0x2000, 4, AccessType::kRead);
    dram.ResetStats();
    cache.FlushAll();
    EXPECT_EQ(dram.stats().write_bytes, 64u); // only the dirty line
    EXPECT_FALSE(cache.Contains(0x1000));
}

TEST(Cache, ZeroByteAccessIsNoop)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(SmallCache(), dram);
    cache.Access(0x1000, 0, AccessType::kRead);
    EXPECT_EQ(cache.stats().Accesses(), 0u);
}

/** Property sweep: hit rate and writeback sanity across geometries. */
class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<Bytes, std::uint32_t>>
{
};

TEST_P(CacheGeometryTest, SequentialStreamMissesOncePerLine)
{
    const auto [size, assoc] = GetParam();
    DramCounter dram(Lpddr3Config());
    Cache cache(CacheConfig{"sweep", size, assoc, 64}, dram);

    const Bytes stream = size / 2; // fits: every line misses exactly once
    for (Bytes b = 0; b < stream; b += 16) {
        cache.Access(0x100000 + b, 16, AccessType::kRead);
    }
    EXPECT_EQ(cache.stats().Misses(), stream / 64);
    // Re-stream: all hits.
    for (Bytes b = 0; b < stream; b += 16) {
        cache.Access(0x100000 + b, 16, AccessType::kRead);
    }
    EXPECT_EQ(cache.stats().Misses(), stream / 64);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST_P(CacheGeometryTest, ThrashingStreamAlwaysMisses)
{
    const auto [size, assoc] = GetParam();
    DramCounter dram(Lpddr3Config());
    Cache cache(CacheConfig{"sweep", size, assoc, 64}, dram);

    // Stream 4x the capacity twice: second pass cannot hit under LRU.
    const Bytes stream = size * 4;
    for (int pass = 0; pass < 2; ++pass) {
        for (Bytes b = 0; b < stream; b += 64) {
            cache.Access(0x200000 + b, 64, AccessType::kRead);
        }
    }
    EXPECT_EQ(cache.stats().Misses(), 2 * stream / 64);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(std::make_tuple(Bytes{1_KiB}, 1u),
                      std::make_tuple(Bytes{4_KiB}, 2u),
                      std::make_tuple(Bytes{32_KiB}, 4u),
                      std::make_tuple(Bytes{64_KiB}, 4u),
                      std::make_tuple(Bytes{2_MiB}, 8u)));

TEST(Hierarchy, HostConfigMatchesTable1)
{
    const HierarchyConfig h = HostHierarchyConfig();
    EXPECT_EQ(h.l1.size, 64_KiB);
    EXPECT_EQ(h.l1.associativity, 4u);
    ASSERT_TRUE(h.llc.has_value());
    EXPECT_EQ(h.llc->size, 2_MiB);
    EXPECT_EQ(h.llc->associativity, 8u);
    EXPECT_DOUBLE_EQ(h.dram.bandwidth_gbps, 32.0);
}

TEST(Hierarchy, PimConfigHasNoLlc)
{
    const HierarchyConfig h = PimCoreHierarchyConfig();
    EXPECT_EQ(h.l1.size, 32_KiB);
    EXPECT_FALSE(h.llc.has_value());
    EXPECT_DOUBLE_EQ(h.dram.bandwidth_gbps, 256.0);
}

TEST(Hierarchy, MissesFilterThroughLevels)
{
    MemoryHierarchy mh(HostHierarchyConfig());
    // Touch 256 KiB: misses L1 (64 KiB) but fits LLC (2 MiB).
    for (Bytes b = 0; b < 256_KiB; b += 64) {
        mh.Top().Access(0x400000 + b, 64, AccessType::kRead);
    }
    // Second pass: hits LLC, misses L1 (capacity).
    for (Bytes b = 0; b < 256_KiB; b += 64) {
        mh.Top().Access(0x400000 + b, 64, AccessType::kRead);
    }
    const PerfCounters pc = mh.Snapshot();
    EXPECT_TRUE(pc.has_llc);
    EXPECT_EQ(pc.l1.Misses(), 2u * 256_KiB / 64);
    EXPECT_EQ(pc.llc.Misses(), 256_KiB / 64);
    EXPECT_EQ(pc.dram.read_bytes, 256_KiB);
}

TEST(Hierarchy, ResetStatsKeepsContents)
{
    MemoryHierarchy mh(HostHierarchyConfig());
    mh.Top().Access(0x1000, 64, AccessType::kRead);
    mh.ResetStats();
    mh.Top().Access(0x1000, 64, AccessType::kRead);
    const PerfCounters pc = mh.Snapshot();
    EXPECT_EQ(pc.l1.read_hits, 1u); // still cached
    EXPECT_EQ(pc.l1.read_misses, 0u);
}

TEST(Hierarchy, DrainEmptiesCaches)
{
    MemoryHierarchy mh(HostHierarchyConfig());
    mh.Top().Access(0x1000, 64, AccessType::kWrite);
    mh.Drain();
    mh.ResetStats();
    mh.Top().Access(0x1000, 64, AccessType::kRead);
    EXPECT_EQ(mh.Snapshot().l1.read_misses, 1u);
}

TEST(Hierarchy, FlushRangeSpansLevels)
{
    MemoryHierarchy mh(HostHierarchyConfig());
    mh.Top().Access(0x8000, 128, AccessType::kWrite);
    const auto flushed = mh.FlushRange(0x8000, 128);
    // Lines exist in both L1 and LLC (fill path).
    EXPECT_EQ(flushed, 4u);
}

TEST(PerfCounters, MpkiUsesLlcWhenPresent)
{
    PerfCounters pc;
    pc.has_llc = true;
    pc.llc.read_misses = 50;
    pc.l1.read_misses = 500;
    EXPECT_DOUBLE_EQ(pc.Mpki(1000), 50.0);
    pc.has_llc = false;
    EXPECT_DOUBLE_EQ(pc.Mpki(1000), 500.0);
    EXPECT_DOUBLE_EQ(pc.Mpki(0), 0.0);
}

TEST(Dram, CountsRequestsAndBytes)
{
    DramCounter dram(StackedInternalConfig());
    dram.Access(0, 64, AccessType::kRead);
    dram.Access(64, 128, AccessType::kWrite);
    EXPECT_EQ(dram.stats().read_requests, 1u);
    EXPECT_EQ(dram.stats().write_requests, 1u);
    EXPECT_EQ(dram.stats().TotalBytes(), 192u);
    EXPECT_EQ(dram.stats().TotalRequests(), 2u);
}

// ---- Set indexing: FastDiv reciprocal vs hardware modulo ----------

TEST(CacheGeometry, SetIndexMatchesModuloOnAwkwardSetCounts)
{
    // Non-power-of-two set counts take the fixed-point-reciprocal
    // path; it must agree with `%` for every probeable address.
    const std::size_t set_counts[] = {3, 5, 6, 7, 9, 12, 24,
                                      56, 96, 341, 1000};
    Rng rng(0xc0de);
    for (const std::size_t sets : set_counts) {
        const CacheConfig config{"awkward", sets * 2 * 64, 2, 64};
        const CacheGeometry geom(config);
        ASSERT_EQ(geom.num_sets, sets);
        ASSERT_FALSE(geom.pow2_sets);

        std::vector<Address> addrs = {0, 63, 64, 65,
                                      TraceEntry::kMaxAddr,
                                      TraceEntry::kMaxAddr - 64,
                                      ~Address{0}, ~Address{0} - 64};
        for (int k = 6; k < 64; k += 3) {
            addrs.push_back((Address{1} << k) - 1);
            addrs.push_back(Address{1} << k);
        }
        for (int i = 0; i < 2000; ++i) {
            addrs.push_back(rng.Next64());
        }
        for (const Address a : addrs) {
            ASSERT_EQ(geom.SetIndex(a), (a >> geom.line_shift) % sets)
                << "sets=" << sets << " addr=" << a;
        }
    }
}

// ---- Sentinel-tag regression: addresses adjacent to the caps ------

TEST(Cache, ScalarAccessAtTopOfAddressSpace)
{
    // Scalar probes accept full 64-bit addresses; the top line of the
    // address space must behave like any other (the all-ones sentinel
    // only aliases a *line address*, and the valid plane still guards
    // scalar scans).
    DramCounter dram(Lpddr3Config());
    Cache cache(SmallCache(), dram);

    const Address top_line = ~Address{0} & ~Address{63};
    cache.Access(top_line, 4, AccessType::kRead);
    EXPECT_EQ(cache.stats().read_misses, 1u);
    cache.Access(top_line + 32, 4, AccessType::kWrite);
    EXPECT_EQ(cache.stats().write_hits, 1u);
    EXPECT_TRUE(cache.Contains(top_line));
    EXPECT_FALSE(cache.Contains(top_line - 64));
}

TEST(Cache, BatchedEntriesAdjacentToMaxAddrMatchScalar)
{
    // The batched fast path tests residency by tag compare alone; that
    // is sound only because packed addresses are capped at kMaxAddr,
    // below the invalid-tag sentinel.  Replay the cap's neighborhood
    // through AccessBatch and through scalar Access: identical stats.
    const Address last_line = TraceEntry::kMaxAddr & ~Address{63};
    std::vector<TraceEntry> entries;
    for (int rep = 0; rep < 3; ++rep) {
        entries.emplace_back(last_line, 64, AccessType::kRead);
        entries.emplace_back(TraceEntry::kMaxAddr - 3, 4,
                             AccessType::kWrite);
        entries.emplace_back(last_line - 64, 64, AccessType::kRead);
        entries.emplace_back(last_line - 128, 130, AccessType::kWrite);
    }

    DramCounter dram_a(Lpddr3Config());
    Cache batched(SmallCache(), dram_a);
    batched.AccessBatch(entries.data(), entries.size());

    DramCounter dram_b(Lpddr3Config());
    Cache scalar(SmallCache(), dram_b);
    for (const TraceEntry &e : entries) {
        scalar.Access(e.addr(), e.bytes(), e.type());
    }

    EXPECT_EQ(batched.stats().read_hits, scalar.stats().read_hits);
    EXPECT_EQ(batched.stats().read_misses, scalar.stats().read_misses);
    EXPECT_EQ(batched.stats().write_hits, scalar.stats().write_hits);
    EXPECT_EQ(batched.stats().write_misses,
              scalar.stats().write_misses);
    EXPECT_EQ(batched.stats().writebacks, scalar.stats().writebacks);
    EXPECT_TRUE(batched.Contains(last_line));
    EXPECT_GT(batched.stats().Hits(), 0u);
}

// ---- SIMD/scalar probe equivalence --------------------------------

TEST(Cache, DeepWayHitsFoundByBothProbes)
{
    // One 8-way set: re-touching all 8 residents must hit at every way
    // position — including the lanes a second vector iteration covers.
    for (const bool simd_on : {false, true}) {
        SimdGuard guard(simd_on);
        DramCounter dram(Lpddr3Config());
        Cache cache(CacheConfig{"one-set", 512, 8, 64}, dram);
        for (Address way = 0; way < 8; ++way) {
            cache.Access(way * 64, 4, AccessType::kRead);
        }
        EXPECT_EQ(cache.stats().read_misses, 8u);
        for (Address way = 8; way-- > 0;) {
            cache.Access(way * 64, 4, AccessType::kRead);
        }
        EXPECT_EQ(cache.stats().read_hits, 8u)
            << "simd=" << simd_on;
    }
}

/** Random mixed-size streams across geometries, vector vs scalar. */
class SimdEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Bytes, std::uint32_t>>
{
};

TEST_P(SimdEquivalenceTest, VectorAndScalarProbeCountersBitIdentical)
{
    const auto [size, assoc] = GetParam();
    const CacheConfig config{"simd-eq", size, assoc, 64};

    // Conflict-heavy stream confined to a working set a few times the
    // cache, with spans, writes, and repeats so hits land at deep ways.
    Rng rng(0xd1ce + assoc);
    std::vector<TraceEntry> entries;
    const Address span_lines = (size / 64) * 4;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t r = rng.Next64();
        const Address addr = (r % span_lines) * 64 + ((r >> 40) & 63);
        const Bytes bytes = 1 + ((r >> 50) & 0x7F);
        entries.emplace_back(
            std::min<Address>(addr, TraceEntry::kMaxAddr - bytes),
            bytes,
            (r & 1) != 0 ? AccessType::kWrite : AccessType::kRead);
    }

    CacheStats per_mode[2];
    std::uint64_t dram_reads[2], dram_writes[2];
    for (const bool simd_on : {false, true}) {
        SimdGuard guard(simd_on);
        DramCounter dram(Lpddr3Config());
        Cache cache(config, dram);
        cache.AccessBatch(entries.data(), entries.size());
        // Scalar re-pass over a prefix exercises the non-batched probe
        // and the coalescing filter against warm contents.
        for (std::size_t i = 0; i < 512; ++i) {
            cache.Access(entries[i].addr(), entries[i].bytes(),
                         entries[i].type());
        }
        cache.FlushAll();
        per_mode[simd_on ? 1 : 0] = cache.stats();
        dram_reads[simd_on ? 1 : 0] = dram.stats().read_requests;
        dram_writes[simd_on ? 1 : 0] = dram.stats().write_requests;
    }
    EXPECT_EQ(per_mode[0].read_hits, per_mode[1].read_hits);
    EXPECT_EQ(per_mode[0].read_misses, per_mode[1].read_misses);
    EXPECT_EQ(per_mode[0].write_hits, per_mode[1].write_hits);
    EXPECT_EQ(per_mode[0].write_misses, per_mode[1].write_misses);
    EXPECT_EQ(per_mode[0].writebacks, per_mode[1].writebacks);
    EXPECT_EQ(dram_reads[0], dram_reads[1]);
    EXPECT_EQ(dram_writes[0], dram_writes[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SimdEquivalenceTest,
    ::testing::Values(std::make_tuple(Bytes{1_KiB}, 1u),
                      std::make_tuple(Bytes{4_KiB}, 2u),
                      std::make_tuple(Bytes{8_KiB}, 4u),
                      std::make_tuple(Bytes{32_KiB}, 8u),
                      std::make_tuple(Bytes{64_KiB}, 16u),
                      // Non-pow2 sets: FastDiv + scalar batch path.
                      std::make_tuple(Bytes{768 * 64 * 2}, 2u)));

TEST(Cache, SimdSnapshotTakenAtConstruction)
{
    // An instance keeps the probe flavor it was built with; flipping
    // the kill-switch afterwards must not affect it.
    SimdGuard guard(true);
    DramCounter dram(Lpddr3Config());
    Cache cache(SmallCache(), dram);
    const bool built_with = cache.simd_probe();
    simd::SetEnabled(false);
    EXPECT_EQ(cache.simd_probe(), built_with);
    cache.Access(0x1000, 4, AccessType::kRead);
    cache.Access(0x1000, 4, AccessType::kRead);
    EXPECT_EQ(cache.stats().read_hits, 1u);
}

TEST(Dram, ConfigsAreOrdered)
{
    // The in-stack path must be faster and cheaper than off-chip.
    const DramConfig lp = Lpddr3Config();
    const DramConfig in = StackedInternalConfig();
    EXPECT_GT(in.bandwidth_gbps, lp.bandwidth_gbps);
    EXPECT_LT(in.access_latency_ns, lp.access_latency_ns);
    EXPECT_LT(in.dram_pj_per_byte + in.interconnect_pj_per_byte +
                  in.memctrl_pj_per_byte,
              lp.dram_pj_per_byte + lp.interconnect_pj_per_byte +
                  lp.memctrl_pj_per_byte);
}

} // namespace
} // namespace pim::sim
