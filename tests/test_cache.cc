/**
 * @file
 * Unit and property tests for the cache model and memory hierarchy.
 */

#include <gtest/gtest.h>

#include "sim/cache.h"
#include "sim/dram.h"
#include "sim/hierarchy.h"

namespace pim::sim {
namespace {

CacheConfig
SmallCache(Bytes size = 1_KiB, std::uint32_t assoc = 2)
{
    return CacheConfig{"test", size, assoc, 64};
}

TEST(Cache, ColdMissThenHit)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(SmallCache(), dram);

    cache.Access(0x1000, 4, AccessType::kRead);
    EXPECT_EQ(cache.stats().read_misses, 1u);
    EXPECT_EQ(cache.stats().read_hits, 0u);

    cache.Access(0x1000, 4, AccessType::kRead);
    cache.Access(0x1020, 4, AccessType::kRead); // same line
    EXPECT_EQ(cache.stats().read_hits, 2u);
    EXPECT_EQ(cache.stats().read_misses, 1u);

    // One line fill went below.
    EXPECT_EQ(dram.stats().read_bytes, 64u);
}

TEST(Cache, MultiLineAccessSplits)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(SmallCache(), dram);

    cache.Access(0x1000, 256, AccessType::kRead); // 4 lines
    EXPECT_EQ(cache.stats().read_misses, 4u);

    cache.Access(0x103F, 2, AccessType::kRead); // straddles 2 lines
    EXPECT_EQ(cache.stats().read_hits, 2u);
}

TEST(Cache, WritebackOnDirtyEviction)
{
    DramCounter dram(Lpddr3Config());
    // Direct-mapped, 2 sets.
    Cache cache(CacheConfig{"dm", 128, 1, 64}, dram);

    cache.Access(0x0000, 4, AccessType::kWrite); // set 0, dirty
    cache.Access(0x0080, 4, AccessType::kRead);  // set 0, evicts dirty
    EXPECT_EQ(cache.stats().writebacks, 1u);
    EXPECT_EQ(dram.stats().write_bytes, 64u);

    // Clean eviction: no writeback.
    cache.Access(0x0100, 4, AccessType::kRead); // evicts clean 0x0080
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, LruReplacement)
{
    DramCounter dram(Lpddr3Config());
    // One set, 2 ways.
    Cache cache(CacheConfig{"lru", 128, 2, 64}, dram);

    cache.Access(0x0000, 4, AccessType::kRead); // A
    cache.Access(0x1000, 4, AccessType::kRead); // B
    cache.Access(0x0000, 4, AccessType::kRead); // touch A
    cache.Access(0x2000, 4, AccessType::kRead); // evicts B (LRU)

    cache.Access(0x0000, 4, AccessType::kRead); // A still resident
    EXPECT_EQ(cache.stats().read_hits, 2u);
    cache.Access(0x1000, 4, AccessType::kRead); // B was evicted
    EXPECT_EQ(cache.stats().read_misses, 4u);
}

TEST(Cache, ContainsAndFlushRange)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(SmallCache(), dram);

    cache.Access(0x1000, 128, AccessType::kWrite);
    EXPECT_TRUE(cache.Contains(0x1000));
    EXPECT_TRUE(cache.Contains(0x1040));
    EXPECT_FALSE(cache.Contains(0x5000));

    const auto flushed = cache.FlushRange(0x1000, 128);
    EXPECT_EQ(flushed, 2u);
    EXPECT_FALSE(cache.Contains(0x1000));
    EXPECT_EQ(cache.stats().writebacks, 2u);
}

TEST(Cache, FlushAllWritesBackOnlyDirty)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(SmallCache(), dram);

    cache.Access(0x1000, 4, AccessType::kWrite);
    cache.Access(0x2000, 4, AccessType::kRead);
    dram.ResetStats();
    cache.FlushAll();
    EXPECT_EQ(dram.stats().write_bytes, 64u); // only the dirty line
    EXPECT_FALSE(cache.Contains(0x1000));
}

TEST(Cache, ZeroByteAccessIsNoop)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(SmallCache(), dram);
    cache.Access(0x1000, 0, AccessType::kRead);
    EXPECT_EQ(cache.stats().Accesses(), 0u);
}

/** Property sweep: hit rate and writeback sanity across geometries. */
class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<Bytes, std::uint32_t>>
{
};

TEST_P(CacheGeometryTest, SequentialStreamMissesOncePerLine)
{
    const auto [size, assoc] = GetParam();
    DramCounter dram(Lpddr3Config());
    Cache cache(CacheConfig{"sweep", size, assoc, 64}, dram);

    const Bytes stream = size / 2; // fits: every line misses exactly once
    for (Bytes b = 0; b < stream; b += 16) {
        cache.Access(0x100000 + b, 16, AccessType::kRead);
    }
    EXPECT_EQ(cache.stats().Misses(), stream / 64);
    // Re-stream: all hits.
    for (Bytes b = 0; b < stream; b += 16) {
        cache.Access(0x100000 + b, 16, AccessType::kRead);
    }
    EXPECT_EQ(cache.stats().Misses(), stream / 64);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST_P(CacheGeometryTest, ThrashingStreamAlwaysMisses)
{
    const auto [size, assoc] = GetParam();
    DramCounter dram(Lpddr3Config());
    Cache cache(CacheConfig{"sweep", size, assoc, 64}, dram);

    // Stream 4x the capacity twice: second pass cannot hit under LRU.
    const Bytes stream = size * 4;
    for (int pass = 0; pass < 2; ++pass) {
        for (Bytes b = 0; b < stream; b += 64) {
            cache.Access(0x200000 + b, 64, AccessType::kRead);
        }
    }
    EXPECT_EQ(cache.stats().Misses(), 2 * stream / 64);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(std::make_tuple(Bytes{1_KiB}, 1u),
                      std::make_tuple(Bytes{4_KiB}, 2u),
                      std::make_tuple(Bytes{32_KiB}, 4u),
                      std::make_tuple(Bytes{64_KiB}, 4u),
                      std::make_tuple(Bytes{2_MiB}, 8u)));

TEST(Hierarchy, HostConfigMatchesTable1)
{
    const HierarchyConfig h = HostHierarchyConfig();
    EXPECT_EQ(h.l1.size, 64_KiB);
    EXPECT_EQ(h.l1.associativity, 4u);
    ASSERT_TRUE(h.llc.has_value());
    EXPECT_EQ(h.llc->size, 2_MiB);
    EXPECT_EQ(h.llc->associativity, 8u);
    EXPECT_DOUBLE_EQ(h.dram.bandwidth_gbps, 32.0);
}

TEST(Hierarchy, PimConfigHasNoLlc)
{
    const HierarchyConfig h = PimCoreHierarchyConfig();
    EXPECT_EQ(h.l1.size, 32_KiB);
    EXPECT_FALSE(h.llc.has_value());
    EXPECT_DOUBLE_EQ(h.dram.bandwidth_gbps, 256.0);
}

TEST(Hierarchy, MissesFilterThroughLevels)
{
    MemoryHierarchy mh(HostHierarchyConfig());
    // Touch 256 KiB: misses L1 (64 KiB) but fits LLC (2 MiB).
    for (Bytes b = 0; b < 256_KiB; b += 64) {
        mh.Top().Access(0x400000 + b, 64, AccessType::kRead);
    }
    // Second pass: hits LLC, misses L1 (capacity).
    for (Bytes b = 0; b < 256_KiB; b += 64) {
        mh.Top().Access(0x400000 + b, 64, AccessType::kRead);
    }
    const PerfCounters pc = mh.Snapshot();
    EXPECT_TRUE(pc.has_llc);
    EXPECT_EQ(pc.l1.Misses(), 2u * 256_KiB / 64);
    EXPECT_EQ(pc.llc.Misses(), 256_KiB / 64);
    EXPECT_EQ(pc.dram.read_bytes, 256_KiB);
}

TEST(Hierarchy, ResetStatsKeepsContents)
{
    MemoryHierarchy mh(HostHierarchyConfig());
    mh.Top().Access(0x1000, 64, AccessType::kRead);
    mh.ResetStats();
    mh.Top().Access(0x1000, 64, AccessType::kRead);
    const PerfCounters pc = mh.Snapshot();
    EXPECT_EQ(pc.l1.read_hits, 1u); // still cached
    EXPECT_EQ(pc.l1.read_misses, 0u);
}

TEST(Hierarchy, DrainEmptiesCaches)
{
    MemoryHierarchy mh(HostHierarchyConfig());
    mh.Top().Access(0x1000, 64, AccessType::kWrite);
    mh.Drain();
    mh.ResetStats();
    mh.Top().Access(0x1000, 64, AccessType::kRead);
    EXPECT_EQ(mh.Snapshot().l1.read_misses, 1u);
}

TEST(Hierarchy, FlushRangeSpansLevels)
{
    MemoryHierarchy mh(HostHierarchyConfig());
    mh.Top().Access(0x8000, 128, AccessType::kWrite);
    const auto flushed = mh.FlushRange(0x8000, 128);
    // Lines exist in both L1 and LLC (fill path).
    EXPECT_EQ(flushed, 4u);
}

TEST(PerfCounters, MpkiUsesLlcWhenPresent)
{
    PerfCounters pc;
    pc.has_llc = true;
    pc.llc.read_misses = 50;
    pc.l1.read_misses = 500;
    EXPECT_DOUBLE_EQ(pc.Mpki(1000), 50.0);
    pc.has_llc = false;
    EXPECT_DOUBLE_EQ(pc.Mpki(1000), 500.0);
    EXPECT_DOUBLE_EQ(pc.Mpki(0), 0.0);
}

TEST(Dram, CountsRequestsAndBytes)
{
    DramCounter dram(StackedInternalConfig());
    dram.Access(0, 64, AccessType::kRead);
    dram.Access(64, 128, AccessType::kWrite);
    EXPECT_EQ(dram.stats().read_requests, 1u);
    EXPECT_EQ(dram.stats().write_requests, 1u);
    EXPECT_EQ(dram.stats().TotalBytes(), 192u);
    EXPECT_EQ(dram.stats().TotalRequests(), 2u);
}

TEST(Dram, ConfigsAreOrdered)
{
    // The in-stack path must be faster and cheaper than off-chip.
    const DramConfig lp = Lpddr3Config();
    const DramConfig in = StackedInternalConfig();
    EXPECT_GT(in.bandwidth_gbps, lp.bandwidth_gbps);
    EXPECT_LT(in.access_latency_ns, lp.access_latency_ns);
    EXPECT_LT(in.dram_pj_per_byte + in.interconnect_pj_per_byte +
                  in.memctrl_pj_per_byte,
              lp.dram_pj_per_byte + lp.interconnect_pj_per_byte +
                  lp.memctrl_pj_per_byte);
}

} // namespace
} // namespace pim::sim
