/**
 * @file
 * Tests for the DRAM bank/row-buffer model and the vault traffic
 * analyzer.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/execution_context.h"
#include "core/vault_analyzer.h"
#include "sim/dram_timing.h"
#include "sim/trace.h"
#include "workloads/browser/texture_tiler.h"

namespace pim {
namespace {

using sim::AccessType;
using sim::DramBankConfig;
using sim::DramBankModel;

TEST(DramBank, AddressDecomposition)
{
    DramBankModel model; // 8 banks x 2 KiB rows
    EXPECT_EQ(model.BankOf(0), 0u);
    EXPECT_EQ(model.BankOf(2_KiB), 1u);
    EXPECT_EQ(model.BankOf(7 * 2_KiB), 7u);
    EXPECT_EQ(model.BankOf(8 * 2_KiB), 0u); // wraps
    EXPECT_EQ(model.RowOf(0), 0u);
    EXPECT_EQ(model.RowOf(8 * 2_KiB), 1u);
}

TEST(DramBank, SequentialStreamMostlyRowHits)
{
    DramBankModel model;
    for (Address a = 0; a < 256_KiB; a += 64) {
        model.Access(a, 64, AccessType::kRead);
    }
    // One activate per row touched, hits for the rest.
    const auto rows = 256_KiB / 2_KiB;
    EXPECT_EQ(model.stats().row_misses + model.stats().conflicts, rows);
    EXPECT_GT(model.stats().HitRate(), 0.95);
}

TEST(DramBank, LargeStridesConflict)
{
    DramBankModel model;
    // Stride of exactly banks*row: same bank, new row every access.
    const Bytes stride = 8 * 2_KiB;
    for (int i = 0; i < 1000; ++i) {
        model.Access(static_cast<Address>(i) * stride, 64,
                     AccessType::kRead);
    }
    EXPECT_EQ(model.stats().row_hits, 0u);
    EXPECT_EQ(model.stats().conflicts, 999u); // first is a cold miss
    EXPECT_EQ(model.stats().row_misses, 1u);
}

TEST(DramBank, LatencyOrdering)
{
    DramBankConfig cfg;
    DramBankModel hits(cfg);
    DramBankModel conflicts(cfg);
    for (int i = 0; i < 64; ++i) {
        hits.Access(static_cast<Address>(i) * 64, 64, AccessType::kRead);
        conflicts.Access(static_cast<Address>(i) * 8 * 2_KiB, 64,
                         AccessType::kRead);
    }
    EXPECT_LT(hits.AverageLatencyNs(), conflicts.AverageLatencyNs());
    EXPECT_LT(hits.ActivationEnergyPj(),
              conflicts.ActivationEnergyPj());
}

TEST(DramBank, ResetForgetsOpenRows)
{
    DramBankModel model;
    model.Access(0, 64, AccessType::kRead);
    model.Access(0, 64, AccessType::kRead);
    EXPECT_EQ(model.stats().row_hits, 1u);
    model.Reset();
    EXPECT_EQ(model.stats().accesses, 0u);
    model.Access(0, 64, AccessType::kRead);
    EXPECT_EQ(model.stats().row_misses, 1u); // cold again
}

TEST(DramBank, TilingWritesThrashRowsVsSequentialReads)
{
    // The texture tiler reads the linear bitmap with large strides;
    // replaying its DRAM-side stream shows a worse row-buffer hit rate
    // than a purely sequential stream of the same volume.
    Rng rng(3);
    browser::Bitmap linear(512, 512);
    linear.Randomize(rng);
    browser::TiledTexture tiled(512, 512);

    sim::AccessTrace trace;
    core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    ctx.AttachTrace(trace);
    browser::TileTexture(linear, tiled, ctx);

    DramBankModel tiling_model;
    // Feed the raw (pre-cache) stream: the tiler's own access pattern.
    trace.ReplayInto(tiling_model);

    DramBankModel sequential_model;
    for (Bytes b = 0; b < trace.TotalBytes(); b += 64) {
        sequential_model.Access(0x10000000 + b, 64, AccessType::kRead);
    }

    EXPECT_LT(tiling_model.stats().HitRate(),
              sequential_model.stats().HitRate());
}

TEST(VaultAnalyzer, LineInterleaving)
{
    EXPECT_EQ(core::VaultOf(0, 16), 0u);
    EXPECT_EQ(core::VaultOf(64, 16), 1u);
    EXPECT_EQ(core::VaultOf(15 * 64, 16), 15u);
    EXPECT_EQ(core::VaultOf(16 * 64, 16), 0u);
}

TEST(VaultAnalyzer, StreamingTrafficBalancesPerfectly)
{
    core::VaultTrafficAnalyzer analyzer(16);
    for (Address a = 0; a < 1_MiB; a += 64) {
        analyzer.Access(a, 64, AccessType::kRead);
    }
    EXPECT_DOUBLE_EQ(analyzer.Balance(), 1.0);
    EXPECT_DOUBLE_EQ(analyzer.EffectiveLanes(), 16.0);
    EXPECT_EQ(analyzer.TotalBytes(), 1_MiB);
}

TEST(VaultAnalyzer, SingleVaultHotspot)
{
    core::VaultTrafficAnalyzer analyzer(16);
    // Stride of vaults*line: always vault 0.
    for (int i = 0; i < 100; ++i) {
        analyzer.Access(static_cast<Address>(i) * 16 * 64, 64,
                        AccessType::kRead);
    }
    EXPECT_EQ(analyzer.vault_bytes(0), 6400u);
    EXPECT_EQ(analyzer.vault_bytes(1), 0u);
    EXPECT_NEAR(analyzer.Balance(), 1.0 / 16.0, 1e-9);
    EXPECT_NEAR(analyzer.EffectiveLanes(), 1.0, 1e-9);
}

TEST(VaultAnalyzer, RealKernelSpreadsAcrossVaults)
{
    // The tiling kernel's footprint interleaves well: the vault-core
    // parallelism the compute model assumes (4 lanes) is available.
    Rng rng(4);
    browser::Bitmap linear(256, 256);
    linear.Randomize(rng);
    browser::TiledTexture tiled(256, 256);

    sim::AccessTrace trace;
    core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    ctx.AttachTrace(trace);
    browser::TileTexture(linear, tiled, ctx);

    core::VaultTrafficAnalyzer analyzer(16);
    trace.ReplayInto(analyzer);
    EXPECT_GT(analyzer.EffectiveLanes(), 4.0);
}

} // namespace
} // namespace pim
