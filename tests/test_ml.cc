/**
 * @file
 * Tests for the TensorFlow Mobile workload: quantization, packing,
 * quantized GEMM, im2col, network tables, and the inference driver.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workloads/ml/conv2d.h"
#include "workloads/ml/gemm.h"
#include "workloads/ml/inference.h"
#include "workloads/ml/network.h"
#include "workloads/ml/pack.h"
#include "workloads/ml/quantize.h"

namespace pim::ml {
namespace {

using core::ExecutionContext;
using core::ExecutionTarget;

TEST(Quantize, ParamsCoverRangeAndZero)
{
    const QuantParams p = ChooseQuantParams(-2.0f, 6.0f);
    // Zero must be exactly representable.
    const float zero = Dequantize(
        static_cast<std::uint8_t>(p.zero_point), p);
    EXPECT_FLOAT_EQ(zero, 0.0f);
    // Range endpoints are representable within half a step.
    EXPECT_NEAR(Dequantize(0, p), -2.0f, p.scale);
    EXPECT_NEAR(Dequantize(255, p), 6.0f, p.scale);
}

TEST(Quantize, DegenerateRange)
{
    const QuantParams p = ChooseQuantParams(3.0f, 3.0f);
    EXPECT_GT(p.scale, 0.0f);
}

TEST(Quantize, RoundTripErrorBounded)
{
    Rng rng(21);
    Matrix<float> m(32, 32);
    m.Randomize(rng);
    Matrix<std::uint8_t> q(32, 32);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    const QuantParams p = QuantizeFloat(m, q, ctx);

    for (int r = 0; r < m.rows(); ++r) {
        for (int c = 0; c < m.cols(); ++c) {
            const float back = Dequantize(q.At(r, c), p);
            ASSERT_NEAR(back, m.At(r, c), p.scale * 0.501f + 1e-6f);
        }
    }
}

TEST(Quantize, FindMinMaxMatchesStd)
{
    Rng rng(22);
    Matrix<std::int32_t> m(16, 48);
    for (int r = 0; r < m.rows(); ++r) {
        for (int c = 0; c < m.cols(); ++c) {
            m.At(r, c) = static_cast<std::int32_t>(rng.Range(-5000, 5000));
        }
    }
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    const auto mm = FindMinMax(m, ctx);
    std::int32_t lo = m.At(0, 0), hi = m.At(0, 0);
    for (int r = 0; r < m.rows(); ++r) {
        for (int c = 0; c < m.cols(); ++c) {
            lo = std::min(lo, m.At(r, c));
            hi = std::max(hi, m.At(r, c));
        }
    }
    EXPECT_EQ(mm.min_value, lo);
    EXPECT_EQ(mm.max_value, hi);
}

TEST(Quantize, TwoScansOfTraffic)
{
    // Figure 8: quantization reads the matrix twice (min/max + convert).
    Matrix<float> m(64, 64);
    Matrix<std::uint8_t> q(64, 64);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    QuantizeFloat(m, q, ctx);
    EXPECT_EQ(ctx.mem().bytes_read(), 2 * m.size_bytes());
    EXPECT_EQ(ctx.mem().bytes_written(), q.size_bytes());
}

TEST(Pack, LhsLayoutIsDepthMajor)
{
    Matrix<std::uint8_t> src(16, 8);
    for (int r = 0; r < 16; ++r) {
        for (int k = 0; k < 8; ++k) {
            src.At(r, k) = static_cast<std::uint8_t>(r * 8 + k);
        }
    }
    PackedMatrix packed(16, 8);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    PackLhs(src, packed, ctx);

    for (int r = 0; r < 16; ++r) {
        for (int k = 0; k < 8; ++k) {
            ASSERT_EQ(packed.At(r, k), src.At(r, k));
        }
    }
    // Lane-interleaved within a panel: (r=1, k=0) sits right after
    // (r=0, k=0) in storage.
    EXPECT_EQ(packed.storage()[0], src.At(0, 0));
    EXPECT_EQ(packed.storage()[1], src.At(1, 0));
    EXPECT_EQ(packed.storage()[8], src.At(0, 1));
}

TEST(Pack, PaddingLanesReadZero)
{
    Matrix<std::uint8_t> src(10, 4, 7); // 10 rows -> 2 panels, 6 pad
    PackedMatrix packed(10, 4);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    PackLhs(src, packed, ctx);
    EXPECT_EQ(packed.panels(), 2);
    EXPECT_EQ(packed.At(9, 0), 7);
    EXPECT_EQ(packed.At(10, 0), 0); // padding lane
    EXPECT_EQ(packed.At(15, 3), 0);
}

TEST(Pack, RhsTransposesColumnsToLanes)
{
    Matrix<std::uint8_t> src(4, 16); // K=4, N=16
    for (int k = 0; k < 4; ++k) {
        for (int c = 0; c < 16; ++c) {
            src.At(k, c) = static_cast<std::uint8_t>(k * 16 + c);
        }
    }
    PackedMatrix packed(16, 4);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    PackRhs(src, packed, ctx);
    for (int c = 0; c < 16; ++c) {
        for (int k = 0; k < 4; ++k) {
            ASSERT_EQ(packed.At(c, k), src.At(k, c));
        }
    }
}

TEST(Pack, UnpackRestoresRowMajor)
{
    Rng rng(31);
    PackedResult packed(12, 20);
    Matrix<std::int32_t> expected(12, 20);
    for (int r = 0; r < 12; ++r) {
        for (int c = 0; c < 20; ++c) {
            const auto v = static_cast<std::int32_t>(rng.Range(-100, 100));
            packed.Set(r, c, v);
            expected.At(r, c) = v;
        }
    }
    Matrix<std::int32_t> out(12, 20);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    UnpackResult(packed, out, ctx);
    for (int r = 0; r < 12; ++r) {
        for (int c = 0; c < 20; ++c) {
            ASSERT_EQ(out.At(r, c), expected.At(r, c));
        }
    }
}

/** GEMM equivalence against the naive reference across shapes. */
class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmShapeTest, MatchesReference)
{
    const auto [m, k, n] = GetParam();
    Rng rng(static_cast<std::uint64_t>(m * 1000 + k * 10 + n));
    Matrix<std::uint8_t> a(m, k);
    Matrix<std::uint8_t> b(k, n);
    a.Randomize(rng);
    b.Randomize(rng);
    const std::int32_t za = 3;
    const std::int32_t zb = 128;

    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    PackedMatrix pa(m, k);
    PackedMatrix pb(n, k);
    PackLhs(a, pa, ctx);
    PackRhs(b, pb, ctx);
    PackedResult pr(m, n);
    QuantizedGemm(pa, za, pb, zb, pr, ctx);
    Matrix<std::int32_t> got(m, n);
    UnpackResult(pr, got, ctx);

    Matrix<std::int32_t> want(m, n);
    ReferenceGemm(a, za, b, zb, want);
    for (int r = 0; r < m; ++r) {
        for (int c = 0; c < n; ++c) {
            ASSERT_EQ(got.At(r, c), want.At(r, c))
                << "(" << r << "," << c << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(8, 8, 8),
                      std::make_tuple(16, 32, 8),
                      std::make_tuple(7, 5, 3),   // non-multiples
                      std::make_tuple(9, 16, 17), // ragged panels
                      std::make_tuple(1, 64, 1),
                      std::make_tuple(33, 7, 12)));

TEST(Im2Col, IdentityKernelCopiesChannels)
{
    LayerSpec layer{"l", 4, 4, 3, 8, 1, 1, 1};
    ImageU8 image(4, 4, 3);
    Rng rng(41);
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
            for (int c = 0; c < 3; ++c) {
                image.At(y, x, c) = rng.NextByte();
            }
        }
    }
    Matrix<std::uint8_t> patches(16, 3);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    Im2Col(image, layer, 0, patches, ctx);
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
            for (int c = 0; c < 3; ++c) {
                ASSERT_EQ(patches.At(y * 4 + x, c), image.At(y, x, c));
            }
        }
    }
}

TEST(Im2Col, SamePaddingUsesZeroPoint)
{
    LayerSpec layer{"l", 4, 4, 1, 1, 3, 1, 1};
    ImageU8 image(4, 4, 1);
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
            image.At(y, x, 0) = 50;
        }
    }
    Matrix<std::uint8_t> patches(16, 9);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    Im2Col(image, layer, 99, patches, ctx);
    // Corner output (0,0): top-left taps fall outside -> zero point.
    EXPECT_EQ(patches.At(0, 0), 99);
    EXPECT_EQ(patches.At(0, 4), 50); // center tap
}

TEST(Networks, ShapesMatchThePaper)
{
    const NetworkSpec vgg = Vgg19();
    EXPECT_EQ(vgg.TotalLayerInvocations(), 19); // 16 conv + 3 FC

    const NetworkSpec resnet = ResNetV2_152();
    // The paper attributes 156 Conv2D invocations to ResNet.
    EXPECT_NEAR(resnet.TotalLayerInvocations(), 156, 2);

    const NetworkSpec inception = InceptionResNetV2();
    EXPECT_GT(inception.TotalLayerInvocations(), 150);

    const NetworkSpec gru = ResidualGru();
    EXPECT_GT(gru.TotalLayerInvocations(), 100); // recurrent unrolling

    // VGG has few, huge GEMMs: more MACs per invocation than ResNet.
    EXPECT_GT(vgg.TotalMacs() / vgg.TotalLayerInvocations(),
              resnet.TotalMacs() / resnet.TotalLayerInvocations());
}

TEST(Networks, GemmDimsArePositive)
{
    for (const auto &net : AllNetworks()) {
        for (const auto &layer : net.layers) {
            EXPECT_GT(layer.gemm_m(), 0) << net.name << "/" << layer.name;
            EXPECT_GT(layer.gemm_k(), 0) << net.name << "/" << layer.name;
            EXPECT_GT(layer.gemm_n(), 0) << net.name << "/" << layer.name;
        }
    }
}

TEST(ScaleLayer, PreservesSmallDims)
{
    const LayerSpec layer{"l", 224, 224, 3, 64, 3, 1, 1};
    const EvalScale scale{0.25, 0.25, 4};
    const LayerSpec s = ScaleLayer(layer, scale);
    EXPECT_EQ(s.in_h, 56);
    EXPECT_EQ(s.in_ch, 3); // below min_dim: untouched
    EXPECT_EQ(s.out_ch, 16);
}

TEST(Inference, TinyNetworkRunsAndAttributesEnergy)
{
    NetworkSpec tiny;
    tiny.name = "tiny";
    tiny.layers = {
        {"conv1", 16, 16, 4, 8, 3, 1, 1},
        {"conv2", 16, 16, 8, 8, 3, 1, 2},
        {"fc", 1, 1, 64, 16, 1, 1, 1},
    };
    const InferenceResult r =
        RunInference(tiny, EvalScale{1.0, 1.0, 4});
    EXPECT_EQ(r.network, "tiny");
    EXPECT_GT(r.packing.energy.Total(), 0.0);
    EXPECT_GT(r.quantization.energy.Total(), 0.0);
    EXPECT_GT(r.gemm.energy.Total(), 0.0);
    EXPECT_GT(r.TotalEnergy(), 0.0);
    // GEMM dominates compute on CNNs.
    EXPECT_GT(r.gemm.instructions, r.packing.instructions);
}

TEST(Inference, PimOffloadCutsPackQuantEnergy)
{
    // The layer must be large enough that its matrices spill out of the
    // host LLC — PIM only wins when the CPU actually moves data.
    NetworkSpec tiny;
    tiny.name = "tiny";
    tiny.layers = {{"conv", 64, 64, 64, 64, 3, 1, 1}};
    const EvalScale scale{1.0, 1.0, 4};
    const InferenceResult cpu =
        RunInference(tiny, scale, ExecutionTarget::kCpuOnly);
    const InferenceResult pim =
        RunInference(tiny, scale, ExecutionTarget::kPimAccel);
    EXPECT_LT(pim.packing.energy.Total() +
                  pim.quantization.energy.Total(),
              cpu.packing.energy.Total() +
                  cpu.quantization.energy.Total());
    // The GEMM kernel stays on the host either way.
    EXPECT_NEAR(pim.gemm.instructions, cpu.gemm.instructions,
                cpu.gemm.instructions * 0.01);
}

} // namespace
} // namespace pim::ml
