/**
 * @file
 * Tests for the Skia-style color blitter.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/execution_context.h"
#include "workloads/browser/color_blitter.h"

namespace pim::browser {
namespace {

using core::ExecutionContext;
using core::ExecutionTarget;

TEST(PixelOps, PackUnpackRoundTrip)
{
    const std::uint32_t p = MakePixel(1, 2, 3, 4);
    EXPECT_EQ(PixelR(p), 1);
    EXPECT_EQ(PixelG(p), 2);
    EXPECT_EQ(PixelB(p), 3);
    EXPECT_EQ(PixelA(p), 4);
}

TEST(PixelOps, SrcOverOpaqueReplacesDst)
{
    const std::uint32_t dst = MakePixel(10, 20, 30, 255);
    const std::uint32_t src = MakePixel(100, 110, 120, 255);
    EXPECT_EQ(SrcOverPixel(dst, src), src);
}

TEST(PixelOps, SrcOverTransparentKeepsDst)
{
    const std::uint32_t dst = MakePixel(10, 20, 30, 255);
    const std::uint32_t src = MakePixel(100, 110, 120, 0);
    EXPECT_EQ(SrcOverPixel(dst, src), dst);
}

TEST(PixelOps, SrcOverHalfAlphaBlends)
{
    const std::uint32_t dst = MakePixel(0, 0, 0, 255);
    const std::uint32_t src = MakePixel(200, 100, 50, 128);
    const std::uint32_t out = SrcOverPixel(dst, src);
    // Roughly half the source contribution.
    EXPECT_NEAR(PixelR(out), 100, 2);
    EXPECT_NEAR(PixelG(out), 50, 2);
    EXPECT_NEAR(PixelB(out), 25, 2);
    EXPECT_EQ(PixelA(out), 255);
}

TEST(Blitter, FillRectSetsExactRegion)
{
    Bitmap bmp(32, 32, MakePixel(0, 0, 0, 255));
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    ColorBlitter blitter(bmp, ctx);

    const std::uint32_t red = MakePixel(255, 0, 0, 255);
    blitter.FillRect({4, 5, 10, 8}, red);

    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
            const bool inside = x >= 4 && x < 14 && y >= 5 && y < 13;
            ASSERT_EQ(bmp.At(x, y) == red, inside)
                << "(" << x << "," << y << ")";
        }
    }
}

TEST(Blitter, FillRectClipsToBitmap)
{
    Bitmap bmp(16, 16, 0);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    ColorBlitter blitter(bmp, ctx);
    // Entirely off-screen and partially off-screen fills must not crash.
    blitter.FillRect({-100, -100, 10, 10}, 0xff);
    blitter.FillRect({12, 12, 100, 100}, 0xff);
    EXPECT_EQ(bmp.At(15, 15), 0xffu);
    EXPECT_EQ(bmp.At(11, 11), 0u);
}

TEST(Blitter, BlitCopyMatchesSource)
{
    Rng rng(5);
    Bitmap src(8, 8);
    src.Randomize(rng);
    Bitmap dst(32, 32, 0);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    ColorBlitter blitter(dst, ctx);
    blitter.BlitCopy(src, 10, 12);
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            ASSERT_EQ(dst.At(10 + x, 12 + y), src.At(x, y));
        }
    }
}

TEST(Blitter, OpaqueSrcOverEqualsCopy)
{
    // Property: srcover with all-opaque source == plain copy.
    Rng rng(6);
    Bitmap src(16, 16);
    for (int y = 0; y < 16; ++y) {
        for (int x = 0; x < 16; ++x) {
            src.At(x, y) = MakePixel(rng.NextByte(), rng.NextByte(),
                                     rng.NextByte(), 255);
        }
    }
    Bitmap a(32, 32, 0x12345678);
    Bitmap b(32, 32, 0x12345678);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    ColorBlitter ba(a, ctx);
    ColorBlitter bb(b, ctx);
    ba.BlitSrcOver(src, 3, 4);
    bb.BlitCopy(src, 3, 4);
    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x) {
            ASSERT_EQ(a.At(x, y), b.At(x, y));
        }
    }
}

TEST(Blitter, DrawTextRunCoversArea)
{
    Bitmap bmp(128, 64, MakePixel(255, 255, 255, 255));
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    ColorBlitter blitter(bmp, ctx);
    const int glyphs = blitter.DrawTextRun({0, 0, 128, 64}, 8, 12,
                                           MakePixel(0, 0, 0, 255));
    // 128/(8+1) = 14 glyphs per line, 64/(12+6) = 3 lines.
    EXPECT_EQ(glyphs, 14 * 3);
    // Text pixels actually changed.
    EXPECT_EQ(bmp.At(0, 0), MakePixel(0, 0, 0, 255));
}

TEST(Blitter, TrafficScalesWithArea)
{
    Bitmap bmp(256, 256, 0);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    ColorBlitter blitter(bmp, ctx);
    blitter.FillRect({0, 0, 256, 128}, 0xff);
    const Bytes half = ctx.mem().bytes_written();
    blitter.FillRect({0, 128, 256, 128}, 0xff);
    EXPECT_EQ(ctx.mem().bytes_written(), 2 * half);
    EXPECT_EQ(half, 256u * 128u * 4u);
}

/** Parameterized: paper's Figure 18 shape holds across bitmap sizes. */
class BlitterPimTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BlitterPimTest, PimReducesEnergyForBlending)
{
    const int size = GetParam();
    const auto run = [&](ExecutionTarget target) {
        Bitmap bmp(size, size, 0x80808080);
        ExecutionContext ctx(target);
        ColorBlitter blitter(bmp, ctx);
        blitter.BlendRect({0, 0, size, size},
                          MakePixel(200, 100, 50, 128));
        return ctx.Report("color-blitting");
    };
    const auto cpu = run(ExecutionTarget::kCpuOnly);
    const auto pim = run(ExecutionTarget::kPimCore);
    EXPECT_LT(pim.TotalEnergyPj(), cpu.TotalEnergyPj());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlitterPimTest,
                         ::testing::Values(32, 64, 256, 1024));

} // namespace
} // namespace pim::browser
