/**
 * @file
 * Tests for the Chrome texture-tiling kernel.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/execution_context.h"
#include "workloads/browser/texture_tiler.h"

namespace pim::browser {
namespace {

using core::ExecutionContext;
using core::ExecutionTarget;

TEST(TextureTiler, TileGeometry)
{
    TiledTexture t(512, 512);
    EXPECT_EQ(t.tiles_x(), 16);
    EXPECT_EQ(t.tiles_y(), 16);
    EXPECT_EQ(t.size_bytes(), 512u * 512u * 4u);
    // 4 KiB per tile.
    EXPECT_EQ(static_cast<int>(TileFormat::kTileBytes), 4096);
    EXPECT_EQ(TileFormat::kTileWidthPx * TileFormat::kTileRows * 4,
              TileFormat::kTileBytes);
}

TEST(TextureTiler, TilePreservesPixels)
{
    Rng rng(99);
    Bitmap linear(64, 64);
    linear.Randomize(rng);
    TiledTexture tiled(64, 64);

    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    TileTexture(linear, tiled, ctx);

    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            ASSERT_EQ(tiled.PixelAt(x, y), linear.At(x, y))
                << "pixel (" << x << "," << y << ")";
        }
    }
}

TEST(TextureTiler, RoundTripThroughUntile)
{
    Rng rng(7);
    Bitmap linear(128, 64);
    linear.Randomize(rng);
    TiledTexture tiled(128, 64);
    Bitmap back(128, 64);

    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    TileTexture(linear, tiled, ctx);
    UntileTexture(tiled, back, ctx);

    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 128; ++x) {
            ASSERT_EQ(back.At(x, y), linear.At(x, y));
        }
    }
}

TEST(TextureTiler, TilingIsMemcopyShaped)
{
    // Every byte is read once and written once.
    Bitmap linear(256, 256);
    TiledTexture tiled(256, 256);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    TileTexture(linear, tiled, ctx);

    EXPECT_EQ(ctx.mem().bytes_read(), linear.size_bytes());
    EXPECT_EQ(ctx.mem().bytes_written(), tiled.size_bytes());
}

TEST(TextureTiler, LinearLayoutDiffersFromTiled)
{
    // Within one tile row the layouts agree; across tile columns the
    // tiled layout groups pixels that the linear layout separates.
    TiledTexture t(128, 64);
    t.SetPixelAt(0, 0, 0xAABBCCDD);
    t.SetPixelAt(32, 0, 0x11223344); // first pixel of second tile
    EXPECT_EQ(t.PixelAt(0, 0), 0xAABBCCDDu);
    EXPECT_EQ(t.PixelAt(32, 0), 0x11223344u);
    // Its storage index is a whole tile (1024 px) after pixel (0,0).
    EXPECT_EQ(t.storage()[1024], 0x11223344u);
}

TEST(TextureTiler, PimUsesLessEnergyThanCpu)
{
    // The paper's Figure 18 shape: the data-reorganization kernel is
    // cheaper in energy on PIM logic.
    Rng rng(3);
    const auto run = [&](ExecutionTarget target) {
        Bitmap linear(512, 512);
        linear.Randomize(rng);
        TiledTexture tiled(512, 512);
        ExecutionContext ctx(target);
        TileTexture(linear, tiled, ctx);
        return ctx.Report("texture-tiling");
    };
    const auto cpu = run(ExecutionTarget::kCpuOnly);
    const auto pim = run(ExecutionTarget::kPimCore);
    const auto acc = run(ExecutionTarget::kPimAccel);

    EXPECT_LT(pim.TotalEnergyPj(), cpu.TotalEnergyPj());
    EXPECT_LT(acc.TotalEnergyPj(), cpu.TotalEnergyPj());
    EXPECT_LE(acc.TotalEnergyPj(), pim.TotalEnergyPj() * 1.05);
    // Memory-bound on the host: movement dominates (paper: 81.5%).
    EXPECT_GT(cpu.energy.DataMovementFraction(), 0.5);
    // Memory-intensive by the paper's criterion.
    EXPECT_GT(cpu.Mpki(), 10.0);
}

TEST(TextureTiler, MisalignedDimensionsRejected)
{
    Bitmap linear(100, 50); // not tile-aligned
    TiledTexture tiled(100, 50);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    EXPECT_DEATH(TileTexture(linear, tiled, ctx), "tile-aligned");
}

} // namespace
} // namespace pim::browser
