/**
 * @file
 * API-contract and failure-injection tests: invariant violations must
 * be caught loudly (PIM_ASSERT aborts), and cross-cutting API promises
 * (report ordering, determinism, profile sanity) must hold.
 */

#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/logging.h"
#include "common/table.h"
#include "core/execution_context.h"
#include "workloads/browser/bitmap.h"
#include "workloads/browser/lzo.h"
#include "workloads/browser/page_data.h"
#include "workloads/browser/scroll_sim.h"
#include "workloads/browser/webpage.h"
#include "workloads/ml/tensor.h"
#include "workloads/video/hw_model.h"
#include "workloads/video/video_gen.h"

namespace pim {
namespace {

using core::ExecutionContext;
using core::ExecutionTarget;

TEST(Contracts, AssertMacroAborts)
{
    EXPECT_DEATH(PIM_PANIC("deliberate %d", 42), "deliberate 42");
    const int x = 1;
    EXPECT_DEATH(PIM_ASSERT(x == 2, "x was %d", x), "x was 1");
}

TEST(Contracts, TableRejectsMismatchedRow)
{
    Table t("t");
    t.SetHeader({"a", "b"});
    EXPECT_DEATH(t.AddRow({"only-one"}), "row width");
}

TEST(Contracts, MatrixBoundsChecked)
{
    ml::Matrix<std::uint8_t> m(4, 4);
    EXPECT_DEATH((void)m.At(4, 0), "out of");
    EXPECT_DEATH((void)m.At(0, -1), "out of");
}

TEST(Contracts, BitmapBoundsChecked)
{
    browser::Bitmap bmp(8, 8);
    EXPECT_DEATH((void)bmp.At(8, 0), "out of");
}

TEST(Contracts, LzoRejectsUndersizedDestination)
{
    pim::SimBuffer<std::uint8_t> src(4096);
    pim::SimBuffer<std::uint8_t> tiny(16);
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    EXPECT_DEATH((void)browser::LzoCompress(src, 4096, tiny, ctx),
                 "below bound");
}

TEST(Contracts, CompressBoundIsMonotone)
{
    std::size_t prev = 0;
    for (const std::size_t n : {0u, 1u, 100u, 4096u, 1000000u}) {
        const std::size_t bound = browser::LzoCompressBound(n);
        EXPECT_GE(bound, n);
        EXPECT_GE(bound, prev);
        prev = bound;
    }
}

TEST(Contracts, RunAllReportOrderIsStable)
{
    const auto reports = core::RunOnAllTargets(
        "k", [](ExecutionContext &ctx) { ctx.ops().Alu(10); });
    ASSERT_EQ(reports.size(), 3u);
    EXPECT_EQ(reports[0].target_name, "CPU-Only");
    EXPECT_EQ(reports[1].target_name, "PIM-Core");
    EXPECT_EQ(reports[2].target_name, "PIM-Acc");
    for (const auto &r : reports) {
        EXPECT_EQ(r.kernel, "k");
    }
}

TEST(Contracts, MeasurementsAreDeterministic)
{
    // Two identical runs must report identical energy and timing.
    const auto run = [] {
        Rng rng(12345);
        browser::Bitmap bmp(64, 64);
        bmp.Randomize(rng);
        ExecutionContext ctx(ExecutionTarget::kCpuOnly);
        ctx.mem().Read(bmp.pixels().SimAddr(0), bmp.size_bytes());
        ctx.ops().VectorAlu(1000);
        const auto r = ctx.Report("probe");
        return std::make_pair(r.TotalEnergyPj(), r.TotalTimeNs());
    };
    const auto a = run();
    const auto b = run();
    EXPECT_DOUBLE_EQ(a.first, b.first);
    EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(Contracts, VideoGenIsSeedSensitive)
{
    video::VideoGenConfig a;
    a.width = 64;
    a.height = 32;
    video::VideoGenConfig b = a;
    b.seed = a.seed + 1;
    const auto fa = video::GenerateClip(a, 1);
    const auto fb = video::GenerateClip(b, 1);
    EXPECT_GT(video::MeanAbsDiff(fa[0].y, fb[0].y), 0.5);
}

/** Every page profile must yield a sane, nonzero scroll breakdown. */
class ScrollProfileTest
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ScrollProfileTest, BreakdownSane)
{
    const auto profiles = browser::AllPageProfiles();
    const auto &profile = profiles.at(GetParam());
    const auto r = browser::SimulateScroll(profile);
    EXPECT_GT(r.TotalEnergy(), 0.0) << profile.name;
    EXPECT_GT(r.TilingFraction(), 0.02) << profile.name;
    EXPECT_GT(r.BlittingFraction(), 0.02) << profile.name;
    EXPECT_LT(r.TilingFraction() + r.BlittingFraction(), 0.9)
        << profile.name;
    EXPECT_GT(r.Mpki(), 1.0) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(AllPages, ScrollProfileTest,
                         ::testing::Range(std::size_t{0},
                                          std::size_t{6}));

/** HW-codec model sanity across the full configuration grid. */
class HwGridTest
    : public ::testing::TestWithParam<
          std::tuple<video::HwResolution, bool, video::HwPimMode>>
{
};

TEST_P(HwGridTest, EnergyComponentsNonNegativeAndFinite)
{
    const auto [res, comp, pim] = GetParam();
    for (const bool encoder : {false, true}) {
        const auto e = encoder ? video::HwEncoderEnergy(res, comp, pim)
                               : video::HwDecoderEnergy(res, comp, pim);
        EXPECT_GE(e.dram_mj, 0.0);
        EXPECT_GE(e.memctrl_mj, 0.0);
        EXPECT_GE(e.interconnect_mj, 0.0);
        EXPECT_GT(e.computation_mj, 0.0);
        EXPECT_LT(e.Total(), 1000.0); // sane mJ scale
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HwGridTest,
    ::testing::Combine(
        ::testing::Values(video::HwResolution::kHd,
                          video::HwResolution::k4k),
        ::testing::Bool(),
        ::testing::Values(video::HwPimMode::kNone,
                          video::HwPimMode::kPimCore,
                          video::HwPimMode::kPimAccel)));

TEST(Contracts, PimAlwaysCutsOffchipTrafficForStreamingKernel)
{
    // Invariant behind every figure: a PIM run of a streaming kernel
    // must never move more bytes over the off-chip channel than the
    // host run moved (the PIM side's "off-chip" is the in-stack path).
    Rng rng(9);
    pim::SimBuffer<std::uint8_t> data(512 * 1024);
    browser::FillPageLikeData(data, rng, 0.5);

    const auto reports = core::RunOnAllTargets(
        "stream", [&](ExecutionContext &ctx) {
            ctx.mem().Read(data.SimAddr(0), data.size_bytes());
            ctx.ops().VectorAlu(data.size());
        });
    const Bytes host = reports[0].counters.OffChipBytes();
    EXPECT_LE(reports[1].counters.OffChipBytes(), host);
    EXPECT_LE(reports[2].counters.OffChipBytes(), host);
}

} // namespace
} // namespace pim
