/**
 * @file
 * Protocol and service tests for pim_serve: frame discipline
 * (malformed JSON, oversized frames, unknown request types), admission
 * control, memoized duplicate submissions with bit-identical result
 * frames, concurrent clients, and graceful drain.
 *
 * Every test runs a real PimServer on a real Unix-domain socket and
 * talks to it through ServeClient — the same code path as the
 * pim_client CLI, so the bytes asserted here are the bytes on the wire.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/digest.h"
#include "common/json.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "sim/hierarchy.h"
#include "sim/trace.h"

namespace pim::serve {
namespace {

std::string
UniqueSocketPath(const char *tag)
{
    return testing::TempDir() + "pim_serve_" + tag + "_" +
           std::to_string(::getpid()) + ".sock";
}

/** A parsed frame plus its exact wire bytes. */
struct Frame
{
    std::string raw;
    JsonValue doc;

    std::string
    Type() const
    {
        const JsonValue *t = doc.Find("type");
        return t != nullptr ? t->AsString() : std::string();
    }
};

std::optional<Frame>
ReadFrame(ServeClient &client)
{
    std::string raw;
    auto doc = client.Read(&raw);
    if (!doc) {
        return std::nullopt;
    }
    return Frame{std::move(raw), std::move(*doc)};
}

JsonValue
SubmitRequest(const std::string &kernel, double scale,
              std::vector<double> llc_kib)
{
    JsonValue req = JsonValue::Object();
    req.Set("type", "submit");
    req.Set("kernel", kernel);
    req.Set("scale", scale);
    JsonValue ladder = JsonValue::Array();
    for (const double kib : llc_kib) {
        ladder.Push(kib);
    }
    req.Set("llc_kib", std::move(ladder));
    return req;
}

/** One completed submission: raw result frames plus the done frame. */
struct SweepRun
{
    std::vector<std::string> results;
    Frame done{};
};

/** Submit, stream to completion, and require a done frame. */
SweepRun
RunSweep(ServeClient &client, const JsonValue &req)
{
    SweepRun run;
    EXPECT_TRUE(client.Send(req));
    auto accepted = ReadFrame(client);
    if (!accepted || accepted->Type() != "accepted") {
        ADD_FAILURE() << "expected accepted, got "
                      << (accepted ? accepted->raw : "<eof>");
        return run;
    }
    for (;;) {
        auto frame = ReadFrame(client);
        if (!frame) {
            ADD_FAILURE() << "stream ended before done";
            return run;
        }
        if (frame->Type() == "result") {
            run.results.push_back(frame->raw);
            continue;
        }
        EXPECT_EQ(frame->Type(), "done") << frame->raw;
        run.done = std::move(*frame);
        return run;
    }
}

std::uint64_t
FieldU64(const JsonValue &doc, const char *name)
{
    const JsonValue *v = doc.Find(name);
    EXPECT_NE(v, nullptr) << name;
    return v != nullptr ? static_cast<std::uint64_t>(v->AsNumber())
                        : 0;
}

/** The nested counter groups of a status document. */
std::uint64_t
StatusCounter(const JsonValue &status, const char *group,
              const char *name)
{
    const JsonValue *g = status.Find(group);
    EXPECT_NE(g, nullptr) << group;
    return g != nullptr ? FieldU64(*g, name) : 0;
}

class ServeTest : public ::testing::Test
{
  protected:
    /** Start a server; the fixture owns it and stops it on teardown. */
    PimServer &
    StartServer(const char *tag, unsigned workers,
                std::size_t queue_capacity = 16)
    {
        ServerConfig config;
        config.socket_path = UniqueSocketPath(tag);
        config.workers = workers;
        config.queue_capacity = queue_capacity;
        config.sweep_threads = 1; // deterministic, test-sized
        server_ = std::make_unique<PimServer>(config);
        std::string error;
        EXPECT_TRUE(server_->Start(&error)) << error;
        socket_path_ = config.socket_path;
        return *server_;
    }

    std::unique_ptr<ServeClient>
    Connect()
    {
        std::string error;
        auto client = ServeClient::Connect(socket_path_, &error);
        EXPECT_NE(client, nullptr) << error;
        return client;
    }

    void
    TearDown() override
    {
        if (server_ != nullptr) {
            server_->Stop();
        }
    }

    std::unique_ptr<PimServer> server_;
    std::string socket_path_;
};

TEST_F(ServeTest, MalformedJsonGetsErrorFrameAndSessionSurvives)
{
    StartServer("badjson", 0);
    auto client = Connect();
    ASSERT_NE(client, nullptr);

    ASSERT_TRUE(client->SendRaw("{this is not json\n"));
    auto err = ReadFrame(*client);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->Type(), "error");
    EXPECT_EQ(err->doc.Find("error")->AsString(), "parse");

    // A non-object document and a missing type member are protocol
    // errors too, but none of them poison the connection:
    ASSERT_TRUE(client->SendRaw("[1,2,3]\n"));
    err = ReadFrame(*client);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->doc.Find("error")->AsString(), "bad_request");

    ASSERT_TRUE(client->SendRaw("{\"kernel\":\"x\"}\n"));
    err = ReadFrame(*client);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->doc.Find("error")->AsString(), "bad_request");

    // ...the same session still answers a well-formed request.
    JsonValue status = JsonValue::Object();
    status.Set("type", "status");
    ASSERT_TRUE(client->Send(status));
    auto ok = ReadFrame(*client);
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->Type(), "status");
    EXPECT_EQ(StatusCounter(ok->doc, "replay", "protocol_errors"), 3u);
}

TEST_F(ServeTest, OversizedFrameIsRejectedAndConnectionDropped)
{
    StartServer("oversize", 0);
    auto client = Connect();
    ASSERT_NE(client, nullptr);

    // One byte over the bound, no newline anywhere: the reader must
    // give up rather than buffer an unbounded line.
    std::string flood(kMaxFrameBytes + 1, 'x');
    ASSERT_TRUE(client->SendRaw(flood));
    auto err = ReadFrame(*client);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->Type(), "error");
    EXPECT_EQ(err->doc.Find("error")->AsString(), "frame_too_large");
    // The byte stream is poisoned, so the server hangs up on us.
    EXPECT_FALSE(ReadFrame(*client).has_value());

    // A fresh connection works fine.
    auto again = Connect();
    ASSERT_NE(again, nullptr);
    JsonValue status = JsonValue::Object();
    status.Set("type", "status");
    ASSERT_TRUE(again->Send(status));
    auto ok = ReadFrame(*again);
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->Type(), "status");
}

TEST_F(ServeTest, UnknownAndInvalidRequestsAreRejectedPerRequest)
{
    StartServer("badreq", 0);
    auto client = Connect();
    ASSERT_NE(client, nullptr);

    const struct
    {
        JsonValue req;
        const char *code;
    } cases[] = {
        {[] {
             JsonValue r = JsonValue::Object();
             r.Set("type", "frobnicate");
             return r;
         }(),
         "unknown_request"},
        {SubmitRequest("no_such_kernel", 1.0, {256}),
         "unknown_kernel"},
        {SubmitRequest("texture_tiling", -2.0, {256}), "bad_request"},
        {SubmitRequest("texture_tiling", 1.0, {0}), "bad_point"},
        {[] {
             JsonValue r = SubmitRequest("texture_tiling", 1.0, {256});
             r.Set("sweep", "dram");
             return r;
         }(),
         "bad_request"},
        {[] {
             JsonValue r = JsonValue::Object();
             r.Set("type", "poll");
             r.Set("job", 424242);
             return r;
         }(),
         "unknown_job"},
    };
    for (const auto &c : cases) {
        ASSERT_TRUE(client->Send(c.req));
        auto err = ReadFrame(*client);
        ASSERT_TRUE(err.has_value()) << c.code;
        EXPECT_EQ(err->Type(), "error") << err->raw;
        EXPECT_EQ(err->doc.Find("error")->AsString(), c.code)
            << err->raw;
    }
    // Invalid submissions never enter the job table.
    const JsonValue status = server_->StatusJson();
    EXPECT_EQ(StatusCounter(status, "jobs", "submitted"), 0u);
}

TEST_F(ServeTest, DuplicateSubmissionIsServedFromTheMemoBitIdentically)
{
    StartServer("memo", 1);
    auto client = Connect();
    ASSERT_NE(client, nullptr);
    const JsonValue req =
        SubmitRequest("texture_tiling", 0.125, {256, 512});

    const SweepRun first = RunSweep(*client, req);
    ASSERT_EQ(first.results.size(), 2u);
    EXPECT_EQ(FieldU64(first.done.doc, "memo_hits"), 0u);
    EXPECT_EQ(first.done.doc.Find("replayed")->AsBool(false), true);
    EXPECT_EQ(first.done.doc.Find("trace_source")->AsString(),
              "recorded");

    // The second submission must not replay anything, and its result
    // frames must be byte-identical to the first run's.
    const SweepRun second = RunSweep(*client, req);
    ASSERT_EQ(second.results.size(), 2u);
    EXPECT_EQ(FieldU64(second.done.doc, "memo_hits"), 2u);
    EXPECT_EQ(second.done.doc.Find("replayed")->AsBool(true), false);
    EXPECT_EQ(second.done.doc.Find("trace_source")->AsString(),
              "memory");
    EXPECT_EQ(first.results, second.results);
    EXPECT_EQ(first.done.doc.Find("trace_digest")->AsString(),
              second.done.doc.Find("trace_digest")->AsString());

    // Result frames carry the canonical config and the counters, but
    // no job-scoped fields — that is what makes them memoizable.
    const auto frame = JsonParse(first.results[0]);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->Find("job"), nullptr);
    EXPECT_EQ(FieldU64(*frame, "llc_bytes"), 256u * 1024);
    EXPECT_NE(frame->Find("config")->AsString().find(
                  "llc:size=262144"),
              std::string::npos);
    EXPECT_TRUE(frame->Find("counters")->is_object());

    // Polling the finished first job replays its stored frames —
    // still byte-identical.
    JsonValue poll = JsonValue::Object();
    poll.Set("type", "poll");
    poll.Set("job", FieldU64(first.done.doc, "job"));
    ASSERT_TRUE(client->Send(poll));
    for (const std::string &expected : first.results) {
        auto f = ReadFrame(*client);
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(f->raw, expected);
    }
    auto done = ReadFrame(*client);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->Type(), "done");

    const JsonValue status = server_->StatusJson();
    EXPECT_EQ(StatusCounter(status, "jobs", "done"), 2u);
    EXPECT_EQ(StatusCounter(status, "memo", "hits"), 2u);
    EXPECT_EQ(StatusCounter(status, "memo", "misses"), 2u);
    EXPECT_EQ(StatusCounter(status, "memo", "entries"), 2u);
    EXPECT_EQ(StatusCounter(status, "replay", "traces_recorded"), 1u);
    EXPECT_EQ(StatusCounter(status, "replay", "profile_passes"), 1u);
    EXPECT_FALSE(status.Find("corpus")->Find("enabled")->AsBool(true));
}

TEST_F(ServeTest, ConcurrentClientsRecordTheTraceExactlyOnce)
{
    StartServer("concurrent", 2);
    const JsonValue req =
        SubmitRequest("color_blitting", 0.125, {256, 512});

    constexpr int kClients = 4;
    std::vector<SweepRun> runs(kClients);
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            auto client = Connect();
            ASSERT_NE(client, nullptr);
            runs[i] = RunSweep(*client, req);
        });
    }
    for (auto &t : threads) {
        t.join();
    }

    // Every client saw the whole ladder, from the same recording.
    for (const SweepRun &run : runs) {
        ASSERT_EQ(run.results.size(), 2u);
        EXPECT_EQ(run.results, runs[0].results);
        EXPECT_EQ(run.done.doc.Find("trace_digest")->AsString(),
                  runs[0].done.doc.Find("trace_digest")->AsString());
    }
    // The global acquisition lock deduplicates the expensive step:
    // one recording, no matter how the four jobs interleaved.
    const JsonValue status = server_->StatusJson();
    EXPECT_EQ(StatusCounter(status, "jobs", "done"),
              static_cast<std::uint64_t>(kClients));
    EXPECT_EQ(StatusCounter(status, "replay", "traces_recorded"), 1u);
}

TEST_F(ServeTest, FullQueueRejectsWithBackpressure)
{
    // No workers: submissions park in the queue, so capacity 2 is
    // exhausted by the first two jobs.
    StartServer("backpressure", 0, 2);
    auto client = Connect();
    ASSERT_NE(client, nullptr);

    JsonValue req = SubmitRequest("texture_tiling", 0.125, {256});
    req.Set("wait", false);
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(client->Send(req));
        auto accepted = ReadFrame(*client);
        ASSERT_TRUE(accepted.has_value());
        EXPECT_EQ(accepted->Type(), "accepted") << accepted->raw;
    }
    ASSERT_TRUE(client->Send(req));
    auto rejected = ReadFrame(*client);
    ASSERT_TRUE(rejected.has_value());
    EXPECT_EQ(rejected->Type(), "rejected") << rejected->raw;
    EXPECT_EQ(rejected->doc.Find("reason")->AsString(), "queue_full");
    EXPECT_EQ(FieldU64(rejected->doc, "queue_capacity"), 2u);

    // The parked jobs are poll-able and report their queued state.
    JsonValue poll = JsonValue::Object();
    poll.Set("type", "poll");
    poll.Set("job", 1);
    ASSERT_TRUE(client->Send(poll));
    auto pending = ReadFrame(*client);
    ASSERT_TRUE(pending.has_value());
    EXPECT_EQ(pending->Type(), "pending");
    EXPECT_EQ(pending->doc.Find("state")->AsString(), "queued");

    const JsonValue status = server_->StatusJson();
    EXPECT_EQ(StatusCounter(status, "jobs", "submitted"), 2u);
    EXPECT_EQ(StatusCounter(status, "jobs", "rejected"), 1u);
    EXPECT_EQ(StatusCounter(status, "queue", "depth"), 2u);

    // Stop() with no workers must not hang: the backlog is failed so
    // the jobs reach a terminal state.
    server_->Stop();
    const JsonValue after = server_->StatusJson();
    EXPECT_EQ(StatusCounter(after, "jobs", "failed"), 2u);
}

/** A study submission over the associativity axis. */
JsonValue
StudyRequest(const std::string &kernel, double scale,
             std::vector<double> assocs,
             const std::string &policy = std::string())
{
    JsonValue req = JsonValue::Object();
    req.Set("type", "submit");
    req.Set("kernel", kernel);
    req.Set("scale", scale);
    req.Set("sweep", "study");
    JsonValue axis = JsonValue::Array();
    for (const double a : assocs) {
        axis.Push(a);
    }
    req.Set("llc_assoc", std::move(axis));
    if (!policy.empty()) {
        req.Set("policy", policy);
    }
    return req;
}

TEST_F(ServeTest, StudySubmissionAnswersTheAssociativityAxis)
{
    StartServer("study", 1);
    auto client = Connect();
    ASSERT_NE(client, nullptr);

    const SweepRun run = RunSweep(
        *client, StudyRequest("texture_tiling", 0.125, {1, 2, 4}));
    ASSERT_EQ(run.results.size(), 3u);
    EXPECT_EQ(run.done.doc.Find("sweep")->AsString(), "study");
    EXPECT_EQ(run.done.doc.Find("replayed")->AsBool(false), true);

    // Tracked points: exact writebacks, full counters, per-point
    // geometry in the frame.
    const auto frame = JsonParse(run.results[1]);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(FieldU64(*frame, "llc_assoc"), 2u);
    EXPECT_EQ(frame->Find("policy")->AsString(), "wb");
    EXPECT_TRUE(frame->Find("writebacks_exact")->AsBool(false));
    EXPECT_TRUE(frame->Find("counters")->is_object());

    const JsonValue status = server_->StatusJson();
    EXPECT_EQ(StatusCounter(status, "replay", "profile_passes"), 1u);
    EXPECT_EQ(StatusCounter(status, "profiles", "misses"), 1u);
    EXPECT_EQ(StatusCounter(status, "profiles", "entries"), 1u);
}

TEST_F(ServeTest, RepeatStudyWithChangedUntrackedAxisNeedsNoReplay)
{
    StartServer("study_memo", 1);
    auto client = Connect();
    ASSERT_NE(client, nullptr);

    // First study: associativities {2, 4} — the pass tracks exactly
    // those, and costs the service its single profiling replay.
    const SweepRun first = RunSweep(
        *client, StudyRequest("texture_tiling", 0.125, {2, 4}));
    ASSERT_EQ(first.results.size(), 2u);
    EXPECT_EQ(first.done.doc.Find("replayed")->AsBool(false), true);

    // Second study: a CHANGED, never-tracked axis {3, 6}.  It must be
    // served entirely from the memoized pass snapshot: zero new
    // replays, hits/misses exact, writebacks flagged approximate.
    const SweepRun second = RunSweep(
        *client, StudyRequest("texture_tiling", 0.125, {3, 6}));
    ASSERT_EQ(second.results.size(), 2u);
    EXPECT_EQ(second.done.doc.Find("replayed")->AsBool(true), false);
    for (const std::string &raw : second.results) {
        const auto frame = JsonParse(raw);
        ASSERT_TRUE(frame.has_value());
        EXPECT_FALSE(frame->Find("writebacks_exact")->AsBool(true))
            << raw;
        EXPECT_TRUE(frame->Find("counters")->is_object());
    }

    // The status counters prove the single replay: one profiling pass
    // executed, one snapshot stored, second submission a memo hit.
    const JsonValue status = server_->StatusJson();
    EXPECT_EQ(StatusCounter(status, "jobs", "done"), 2u);
    EXPECT_EQ(StatusCounter(status, "replay", "profile_passes"), 1u);
    EXPECT_EQ(StatusCounter(status, "replay", "traces_recorded"), 1u);
    EXPECT_EQ(StatusCounter(status, "profiles", "hits"), 1u);
    EXPECT_EQ(StatusCounter(status, "profiles", "misses"), 1u);
    EXPECT_EQ(StatusCounter(status, "profiles", "entries"), 1u);

    // A non-allocating policy is a different pass of the same trace:
    // it may not reuse the allocating snapshot.
    const SweepRun wtna = RunSweep(
        *client,
        StudyRequest("texture_tiling", 0.125, {2, 4}, "wtna"));
    ASSERT_EQ(wtna.results.size(), 2u);
    EXPECT_EQ(wtna.done.doc.Find("replayed")->AsBool(false), true);
    const JsonValue after = server_->StatusJson();
    EXPECT_EQ(StatusCounter(after, "replay", "profile_passes"), 2u);
    EXPECT_EQ(StatusCounter(after, "profiles", "entries"), 2u);
}

TEST_F(ServeTest, StatusReportsCacheHitRates)
{
    StartServer("hit_rates", 1);
    auto client = Connect();
    ASSERT_NE(client, nullptr);

    // Before any lookup every rate is 0, not NaN.
    const JsonValue empty = server_->StatusJson();
    EXPECT_EQ(empty.Find("memo")->Find("hit_rate")->AsNumber(), 0.0);
    EXPECT_EQ(empty.Find("corpus")->Find("hit_rate")->AsNumber(), 0.0);
    EXPECT_EQ(empty.Find("profiles")->Find("hit_rate")->AsNumber(),
              0.0);

    const JsonValue req =
        SubmitRequest("texture_tiling", 0.125, {256, 512});
    RunSweep(*client, req); // 2 memo misses
    RunSweep(*client, req); // 2 memo hits

    const JsonValue status = server_->StatusJson();
    EXPECT_EQ(StatusCounter(status, "memo", "hits"), 2u);
    EXPECT_EQ(StatusCounter(status, "memo", "misses"), 2u);
    EXPECT_DOUBLE_EQ(
        status.Find("memo")->Find("hit_rate")->AsNumber(), 0.5);
    // The on-disk corpus is disabled in this fixture; its rate stays
    // well-defined (both submissions resolved from resident memory).
    EXPECT_EQ(status.Find("corpus")->Find("hit_rate")->AsNumber(),
              0.0);
}

TEST_F(ServeTest, ClientShutdownRequestDrainsTheServer)
{
    StartServer("shutdown", 1);
    auto client = Connect();
    ASSERT_NE(client, nullptr);
    EXPECT_FALSE(server_->ShutdownRequestedByClient());

    JsonValue req = JsonValue::Object();
    req.Set("type", "shutdown");
    ASSERT_TRUE(client->Send(req));
    auto bye = ReadFrame(*client);
    ASSERT_TRUE(bye.has_value());
    EXPECT_EQ(bye->Type(), "bye");
    EXPECT_TRUE(server_->ShutdownRequestedByClient());

    // What pim_serve's main loop does next; it must not hang, and a
    // second Stop() must be a no-op.
    server_->Stop();
    server_->Stop();

    // Submissions after shutdown are refused at the door.
    std::string error;
    EXPECT_EQ(ServeClient::Connect(socket_path_, &error), nullptr);
}

sim::CompactTrace
SmallCompactTrace()
{
    sim::AccessTrace raw;
    for (std::size_t i = 0; i < 20000; ++i) {
        raw.Append(0x40000 + (i % 512) * 64, 64,
                   i % 4 == 0 ? sim::AccessType::kWrite
                              : sim::AccessType::kRead);
    }
    return sim::CompactTrace::Encode(raw);
}

TEST(CorpusCache, MapStreamsStoredEntryAndPersistsProvenance)
{
    const std::string dir = testing::TempDir() + "pim_corpus_map_" +
                            std::to_string(::getpid());
    const sim::CompactTrace trace = SmallCompactTrace();
    const std::string key = CorpusKey("tiler", 0.5);
    EXPECT_EQ(key, "tiler@0.5");

    {
        CorpusCache cache(dir);
        EXPECT_TRUE(cache.enabled());
        EXPECT_FALSE(cache.Map(key).has_value()); // cold miss
        ASSERT_TRUE(cache.Store(key, "tiler", 0.5, trace,
                                "v9-g1234abc",
                                "2026-08-08T12:00:00Z"));
        auto mapped = cache.Map(key);
        ASSERT_TRUE(mapped.has_value());
        EXPECT_EQ(mapped->header_digest(), trace.Digest());
        EXPECT_EQ(mapped->entries(), trace.size());
        EXPECT_FALSE(mapped->resident());
        EXPECT_EQ(cache.files(), 1u);
        EXPECT_EQ(cache.bytes_mapped(), mapped->SizeBytes());
        EXPECT_EQ(cache.hits(), 1u);
        EXPECT_EQ(cache.misses(), 1u);
    }

    // The manifest carries the provenance rows verbatim.
    {
        std::ifstream in(dir + "/manifest.json");
        ASSERT_TRUE(in.good());
        const std::string text(std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>{});
        const auto doc = JsonParse(text, nullptr);
        ASSERT_TRUE(doc.has_value());
        const JsonValue *entries = doc->Find("entries");
        ASSERT_NE(entries, nullptr);
        ASSERT_EQ(entries->size(), 1u);
        const JsonValue &row = entries->at(0);
        EXPECT_EQ(row.Find("recorder")->AsString(), "v9-g1234abc");
        EXPECT_EQ(row.Find("created")->AsString(),
                  "2026-08-08T12:00:00Z");
        EXPECT_EQ(row.Find("kernel")->AsString(), "tiler");
    }

    // A warm restart maps without re-hashing the payload, and the
    // mapped stream replays bit-identically to the stored trace.
    {
        CorpusCache cache(dir);
        EXPECT_EQ(cache.files(), 1u);
        auto mapped = cache.Map(key);
        ASSERT_TRUE(mapped.has_value());
        sim::MemoryHierarchy ref(sim::HostHierarchyConfig());
        trace.ReplayInto(ref.Top());
        sim::MemoryHierarchy via(sim::HostHierarchyConfig());
        mapped->ReplayInto(via.Top());
        EXPECT_EQ(ref.Snapshot().dram.TotalBytes(),
                  via.Snapshot().dram.TotalBytes());
        EXPECT_EQ(ref.Snapshot().llc.Misses(),
                  via.Snapshot().llc.Misses());

        // bytes_mapped accumulates per successful Map.
        (void)cache.Map(key);
        EXPECT_EQ(cache.bytes_mapped(), 2 * mapped->SizeBytes());
    }

    const std::string file =
        ContentDigest::ToHex(trace.Digest()) + ".ctrace";
    std::remove((dir + "/" + file).c_str());
    std::remove((dir + "/manifest.json").c_str());
}

TEST(CorpusCache, MapDropsTamperedEntriesAsMisses)
{
    const std::string dir = testing::TempDir() + "pim_corpus_bad_" +
                            std::to_string(::getpid());
    const sim::CompactTrace trace = SmallCompactTrace();
    const std::string key = CorpusKey("blitter", 1.0);
    CorpusCache cache(dir);
    ASSERT_TRUE(cache.Store(key, "blitter", 1.0, trace));
    const std::string file =
        dir + "/" + ContentDigest::ToHex(trace.Digest()) + ".ctrace";

    // Truncate the container: the structural size check fails Open,
    // the entry is dropped from the manifest, and the caller sees a
    // plain miss (to re-record), never a bad replay.
    {
        std::ifstream in(file, std::ios::binary);
        std::string bytes(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>{});
        ASSERT_GT(bytes.size(), 100u);
        std::ofstream out(file,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() - 9));
    }
    EXPECT_FALSE(cache.Map(key).has_value());
    EXPECT_EQ(cache.files(), 0u);
    EXPECT_FALSE(cache.Map(key).has_value()); // stays a miss

    std::remove(file.c_str());
    std::remove((dir + "/manifest.json").c_str());
}

TEST(CorpusCache, DisabledCacheMissesWithoutTouchingDisk)
{
    CorpusCache cache{std::string()};
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.Map("any@1").has_value());
    EXPECT_EQ(cache.bytes_mapped(), 0u);
    EXPECT_EQ(cache.files(), 0u);
}

} // namespace
} // namespace pim::serve
