/**
 * @file
 * Bench CLI plumbing tests: ParseBenchArgs flag extraction / argv
 * compaction and the degenerate-baseline guards on KernelResult.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../bench/bench_common.h"

namespace {

using namespace pim;

/** Mutable argv for ParseBenchArgs (which compacts it in place). */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : storage_(std::move(args))
    {
        for (auto &arg : storage_) {
            ptrs_.push_back(arg.data());
        }
        ptrs_.push_back(nullptr);
        argc_ = static_cast<int>(storage_.size());
    }

    int *argc() { return &argc_; }
    char **argv() { return ptrs_.data(); }

    std::vector<std::string>
    Remaining() const
    {
        std::vector<std::string> out;
        for (int i = 0; i < argc_; ++i) {
            out.emplace_back(ptrs_[i]);
        }
        return out;
    }

  private:
    std::vector<std::string> storage_;
    std::vector<char *> ptrs_;
    int argc_ = 0;
};

TEST(ParseBenchArgs, ExtractsTelemetryFlagsAndCompactsArgv)
{
    Argv a({"bin", "--json=report.json", "--benchmark_filter=^$",
            "--trace=trace.json", "--check-refs", "--filter=kernels",
            "--list"});
    const bench::BenchOptions opts =
        bench::ParseBenchArgs(a.argc(), a.argv());

    EXPECT_EQ(opts.json_path, "report.json");
    EXPECT_EQ(opts.trace_path, "trace.json");
    EXPECT_EQ(opts.filter, "kernels");
    EXPECT_TRUE(opts.check_refs);
    EXPECT_TRUE(opts.list);

    // Only the binary name and the benchmark flag survive, in order.
    const auto rest = a.Remaining();
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0], "bin");
    EXPECT_EQ(rest[1], "--benchmark_filter=^$");
}

TEST(ParseBenchArgs, BareJsonMeansStdout)
{
    Argv a({"bin", "--json"});
    const bench::BenchOptions opts =
        bench::ParseBenchArgs(a.argc(), a.argv());
    EXPECT_EQ(opts.json_path, "-");
    EXPECT_EQ(*a.argc(), 1);
}

TEST(ParseBenchArgs, DefaultsAreEmptyAndOff)
{
    Argv a({"bin", "positional"});
    const bench::BenchOptions opts =
        bench::ParseBenchArgs(a.argc(), a.argv());
    EXPECT_TRUE(opts.json_path.empty());
    EXPECT_TRUE(opts.trace_path.empty());
    EXPECT_TRUE(opts.filter.empty());
    EXPECT_FALSE(opts.check_refs);
    EXPECT_FALSE(opts.list);
    EXPECT_EQ(*a.argc(), 2) << "unknown args must pass through";
}

TEST(ParseBenchArgs, WellFormedFlagsProduceNoError)
{
    Argv a({"bin", "--json=out.json", "--trace=t.json", "--filter=x"});
    const bench::BenchOptions opts =
        bench::ParseBenchArgs(a.argc(), a.argv());
    EXPECT_TRUE(opts.error.empty()) << opts.error;
}

TEST(ParseBenchArgs, BareTraceIsAnError)
{
    Argv a({"bin", "--trace"});
    const bench::BenchOptions opts =
        bench::ParseBenchArgs(a.argc(), a.argv());
    EXPECT_FALSE(opts.error.empty());
    EXPECT_NE(opts.error.find("--trace=<path>"), std::string::npos)
        << "the error must teach the correct spelling: " << opts.error;
    EXPECT_EQ(*a.argc(), 1) << "the malformed flag must not leak through";
}

TEST(ParseBenchArgs, BareFilterIsAnError)
{
    Argv a({"bin", "--filter", "kernels"});
    const bench::BenchOptions opts =
        bench::ParseBenchArgs(a.argc(), a.argv());
    EXPECT_FALSE(opts.error.empty());
    EXPECT_NE(opts.error.find("--filter=<substring>"), std::string::npos)
        << opts.error;
}

TEST(ParseBenchArgs, JsonWithSeparateValueIsAnError)
{
    // "--json out.json" silently wrote to stdout and leaked "out.json"
    // to google-benchmark before; now it is caught.
    Argv a({"bin", "--json", "out.json"});
    const bench::BenchOptions opts =
        bench::ParseBenchArgs(a.argc(), a.argv());
    EXPECT_FALSE(opts.error.empty());
    EXPECT_NE(opts.error.find("--json=<path>"), std::string::npos)
        << opts.error;
}

TEST(ParseBenchArgs, JsonWithSeparateDashIsAnError)
{
    Argv a({"bin", "--json", "-"});
    const bench::BenchOptions opts =
        bench::ParseBenchArgs(a.argc(), a.argv());
    EXPECT_FALSE(opts.error.empty());
}

TEST(ParseBenchArgs, ThreadsFlagParsesAndCompacts)
{
    Argv a({"bin", "--threads=7", "--benchmark_filter=^$"});
    const bench::BenchOptions opts =
        bench::ParseBenchArgs(a.argc(), a.argv());
    EXPECT_TRUE(opts.error.empty());
    EXPECT_EQ(opts.threads, 7u);
    EXPECT_EQ(*a.argc(), 2);
}

TEST(ParseBenchArgs, ThreadsDefaultsToUnset)
{
    Argv a({"bin"});
    const bench::BenchOptions opts =
        bench::ParseBenchArgs(a.argc(), a.argv());
    EXPECT_EQ(opts.threads, 0u);
}

TEST(ParseBenchArgs, BareThreadsIsAnError)
{
    Argv a({"bin", "--threads"});
    const bench::BenchOptions opts =
        bench::ParseBenchArgs(a.argc(), a.argv());
    EXPECT_FALSE(opts.error.empty());
}

TEST(ParseBenchArgs, MalformedThreadsValuesAreErrors)
{
    for (const char *bad :
         {"--threads=0", "--threads=", "--threads=banana",
          "--threads=4097", "--threads=2x"}) {
        Argv a({"bin", bad});
        const bench::BenchOptions opts =
            bench::ParseBenchArgs(a.argc(), a.argv());
        EXPECT_FALSE(opts.error.empty()) << bad;
        EXPECT_EQ(opts.threads, 0u) << bad;
    }
}

TEST(KernelResult, DegenerateBaselinesYieldNeutralValues)
{
    bench::KernelResult r;
    // All-zero reports: no energy, no time.
    EXPECT_DOUBLE_EQ(r.EnergySaving(r.pim_core), 0.0);
    EXPECT_DOUBLE_EQ(r.Speedup(r.pim_core), 1.0);

    // Real baseline but a zero-time PIM target still yields parity,
    // not infinity.
    r.cpu.timing.memory_ns = 200.0;
    r.cpu.energy.dram = 1000.0;
    EXPECT_DOUBLE_EQ(r.Speedup(r.pim_core), 1.0);
    EXPECT_DOUBLE_EQ(r.EnergySaving(r.pim_core), 1.0); // 0 pJ vs 1000 pJ
}

TEST(KernelResult, RatiosComputedFromTotals)
{
    bench::KernelResult r;
    r.cpu.timing.memory_ns = 400.0;
    r.cpu.energy.dram = 1000.0;
    r.pim_acc.timing.memory_ns = 100.0;
    r.pim_acc.energy.dram = 250.0;
    EXPECT_DOUBLE_EQ(r.Speedup(r.pim_acc), 4.0);
    EXPECT_DOUBLE_EQ(r.EnergySaving(r.pim_acc), 0.75);
}

} // namespace
