/**
 * @file
 * Tests for the energy and timing models.
 */

#include <gtest/gtest.h>

#include "sim/energy_model.h"
#include "sim/timing_model.h"

namespace pim::sim {
namespace {

PerfCounters
MakeCounters(std::uint64_t l1_acc, std::uint64_t llc_acc,
             Bytes dram_bytes)
{
    PerfCounters pc;
    pc.l1.read_hits = l1_acc;
    pc.has_llc = true;
    pc.llc.read_hits = llc_acc;
    pc.dram.read_requests = dram_bytes / 64;
    pc.dram.read_bytes = dram_bytes;
    return pc;
}

TEST(EnergyBreakdown, TotalAndMovement)
{
    EnergyBreakdown e;
    e.compute = 10;
    e.l1 = 20;
    e.llc = 30;
    e.interconnect = 5;
    e.memctrl = 5;
    e.dram = 30;
    EXPECT_DOUBLE_EQ(e.Total(), 100.0);
    EXPECT_DOUBLE_EQ(e.DataMovement(), 90.0);
    EXPECT_DOUBLE_EQ(e.DataMovementFraction(), 0.9);
}

TEST(EnergyBreakdown, AdditionComposes)
{
    EnergyBreakdown a;
    a.compute = 1;
    a.dram = 2;
    EnergyBreakdown b;
    b.compute = 3;
    b.llc = 4;
    const EnergyBreakdown c = a + b;
    EXPECT_DOUBLE_EQ(c.compute, 4.0);
    EXPECT_DOUBLE_EQ(c.dram, 2.0);
    EXPECT_DOUBLE_EQ(c.llc, 4.0);
}

TEST(EnergyModel, ScalesWithCounters)
{
    EnergyModel model;
    const DramConfig dram = Lpddr3Config();

    const EnergyBreakdown e1 =
        model.MemoryEnergy(MakeCounters(100, 10, 6400), dram);
    const EnergyBreakdown e2 =
        model.MemoryEnergy(MakeCounters(200, 20, 12800), dram);
    EXPECT_DOUBLE_EQ(e2.l1, 2 * e1.l1);
    EXPECT_DOUBLE_EQ(e2.llc, 2 * e1.llc);
    EXPECT_DOUBLE_EQ(e2.dram, 2 * e1.dram);
    EXPECT_DOUBLE_EQ(e2.interconnect, 2 * e1.interconnect);
}

TEST(EnergyModel, OffchipPathDominatesPerByte)
{
    EnergyModel model;
    // 1 MiB over LPDDR3 vs over the in-stack path.
    const auto pc = MakeCounters(0, 0, 1_MiB);
    const EnergyBreakdown off = model.MemoryEnergy(pc, Lpddr3Config());
    const EnergyBreakdown in =
        model.MemoryEnergy(pc, StackedInternalConfig());
    EXPECT_GT(off.Total(), 2.5 * in.Total());
}

TEST(EnergyModel, WritebacksAreCharged)
{
    EnergyModel model;
    PerfCounters pc;
    pc.l1.read_hits = 10;
    pc.l1.writebacks = 5;
    const EnergyBreakdown e = model.MemoryEnergy(pc, Lpddr3Config());
    EXPECT_DOUBLE_EQ(e.l1, model.rates().l1_per_access * 15);
}

TEST(Timing, TakesBindingConstraint)
{
    const DramConfig dram = Lpddr3Config();
    MemTimingParams mem;
    mem.mlp = 4.0;
    mem.llc_hit_latency_ns = 10.0;

    PerfCounters pc;
    pc.has_llc = true;
    pc.llc.read_hits = 100;     // 100 * 10ns / 4 = 250 ns latency term
    pc.dram.read_requests = 10; // 10 * 120 / 4 = 300 ns
    pc.dram.read_bytes = 640;   // 640 B / 32 GBps = 20 ns

    const TimingResult t = EvaluateTiming(100.0, pc, dram, mem);
    EXPECT_DOUBLE_EQ(t.issue_ns, 100.0);
    EXPECT_DOUBLE_EQ(t.memory_ns, 550.0);
    EXPECT_DOUBLE_EQ(t.bandwidth_ns, 20.0);
    EXPECT_DOUBLE_EQ(t.Total(), 550.0);
    EXPECT_STREQ(t.Bound(), "latency");
}

TEST(Timing, BandwidthBound)
{
    const DramConfig dram = Lpddr3Config();
    MemTimingParams mem;
    mem.mlp = 100.0; // latency fully hidden

    PerfCounters pc;
    pc.dram.read_requests = 1;
    pc.dram.read_bytes = 3200000; // 100 us at 32 GB/s

    const TimingResult t = EvaluateTiming(10.0, pc, dram, mem);
    EXPECT_STREQ(t.Bound(), "bandwidth");
    EXPECT_NEAR(t.Total(), 100000.0, 1.0);
}

TEST(Timing, IssueBound)
{
    const DramConfig dram = StackedInternalConfig();
    const TimingResult t =
        EvaluateTiming(5000.0, PerfCounters{}, dram, MemTimingParams{});
    EXPECT_STREQ(t.Bound(), "issue");
    EXPECT_DOUBLE_EQ(t.Total(), 5000.0);
}

TEST(Timing, HigherBandwidthNeverSlower)
{
    PerfCounters pc;
    pc.dram.read_requests = 1000;
    pc.dram.read_bytes = 64000;
    MemTimingParams mem;
    const TimingResult off =
        EvaluateTiming(100.0, pc, Lpddr3Config(), mem);
    const TimingResult in =
        EvaluateTiming(100.0, pc, StackedInternalConfig(), mem);
    EXPECT_LE(in.Total(), off.Total());
}

} // namespace
} // namespace pim::sim
