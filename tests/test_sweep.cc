/**
 * @file
 * Tests for the batched access-streaming layer and the parallel sweep
 * engine: packed TraceEntry round-trips, batched-vs-scalar replay
 * equivalence, SweepRunner determinism across thread counts, and the
 * overflow-edge behavior of Cache::Access / FlushRange.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <limits>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/execution_context.h"
#include "sim/affinity.h"
#include "sim/cache.h"
#include "sim/dram.h"
#include "sim/hierarchy.h"
#include "sim/sharded_replay.h"
#include "sim/simd.h"
#include "sim/stack_profiler.h"
#include "sim/sweep.h"
#include "sim/trace.h"
#include "sim/trace_codec.h"
#include "workloads/browser/color_blitter.h"
#include "workloads/browser/texture_tiler.h"
#include "workloads/ml/gemm.h"
#include "workloads/ml/pack.h"

namespace pim::sim {
namespace {

bool
SameCacheStats(const CacheStats &a, const CacheStats &b)
{
    return a.read_hits == b.read_hits &&
           a.read_misses == b.read_misses &&
           a.write_hits == b.write_hits &&
           a.write_misses == b.write_misses &&
           a.writebacks == b.writebacks;
}

bool
SameDramStats(const DramStats &a, const DramStats &b)
{
    return a.read_requests == b.read_requests &&
           a.write_requests == b.write_requests &&
           a.read_bytes == b.read_bytes && a.write_bytes == b.write_bytes;
}

bool
SameCounters(const PerfCounters &a, const PerfCounters &b)
{
    return SameCacheStats(a.l1, b.l1) && SameCacheStats(a.llc, b.llc) &&
           a.has_llc == b.has_llc && SameDramStats(a.dram, b.dram);
}

TEST(TraceEntry, PacksIntoOneWord)
{
    static_assert(sizeof(TraceEntry) == 8);
    const TraceEntry read(0x1234'5678'9AULL, 4096, AccessType::kRead);
    EXPECT_EQ(read.addr(), 0x1234'5678'9AULL);
    EXPECT_EQ(read.bytes(), 4096u);
    EXPECT_EQ(read.type(), AccessType::kRead);

    const TraceEntry write(TraceEntry::kMaxAddr, TraceEntry::kMaxBytes,
                           AccessType::kWrite);
    EXPECT_EQ(write.addr(), TraceEntry::kMaxAddr);
    EXPECT_EQ(write.bytes(), TraceEntry::kMaxBytes);
    EXPECT_EQ(write.type(), AccessType::kWrite);
}

TEST(AccessTrace, AppendReservesGeometrically)
{
    AccessTrace trace;
    EXPECT_EQ(trace.capacity(), 0u);
    trace.Append(0x1000, 4, AccessType::kRead);
    const std::size_t first = trace.capacity();
    EXPECT_GE(first, std::size_t{1} << 16);
    for (std::size_t i = 0; i < first; ++i) {
        trace.Append(0x1000 + i, 4, AccessType::kRead);
    }
    EXPECT_GE(trace.capacity(), 2 * first);
    EXPECT_EQ(trace.size(), first + 1);
}

/** Build a randomized stream exercising reuse, strides, and straddles. */
AccessTrace
RandomTrace(std::uint64_t seed, std::size_t entries)
{
    Rng rng(seed);
    AccessTrace trace;
    // A few disjoint "buffers" so the stream mixes spatial locality
    // with conflict traffic.
    const Address bases[] = {0x10'0000, 0x40'0000, 0x80'0000};
    for (std::size_t i = 0; i < entries; ++i) {
        const Address base =
            bases[rng.Range(0, 2)] +
            static_cast<Address>(rng.Range(0, 64 * 1024));
        const Bytes bytes = static_cast<Bytes>(rng.Range(1, 256));
        const AccessType type = rng.Range(0, 99) < 30
                                    ? AccessType::kWrite
                                    : AccessType::kRead;
        trace.Append(base, bytes, type);
    }
    return trace;
}

class BatchedEquivalenceTest
    : public ::testing::TestWithParam<HierarchyConfig>
{
};

TEST_P(BatchedEquivalenceTest, BatchedReplayMatchesScalarExactly)
{
    const AccessTrace trace = RandomTrace(0x5EED, 20000);

    MemoryHierarchy scalar(GetParam());
    trace.ReplayIntoScalar(scalar.Top());

    MemoryHierarchy batched(GetParam());
    trace.ReplayInto(batched.Top());

    EXPECT_TRUE(SameCounters(scalar.Snapshot(), batched.Snapshot()));
}

std::string
HierarchyParamName(const ::testing::TestParamInfo<HierarchyConfig> &info)
{
    static const char *const kNames[] = {"Host", "HostStacked", "PimCore",
                                         "PimAccel"};
    return kNames[info.index];
}

INSTANTIATE_TEST_SUITE_P(
    Hierarchies, BatchedEquivalenceTest,
    ::testing::Values(HostHierarchyConfig(), HostStackedHierarchyConfig(),
                      PimCoreHierarchyConfig(), PimAccelHierarchyConfig()),
    HierarchyParamName);

TEST(BatchedEquivalence, NonPowerOfTwoSetCount)
{
    // 3 sets (192 lines / 64 ways... size 3*2*64): exercises the
    // modulo fallback of the shift/mask set indexing.
    const CacheConfig cfg{"np2", 3 * 2 * 64, 2, 64};
    const AccessTrace trace = RandomTrace(0xBEEF, 20000);

    DramCounter dram_a(Lpddr3Config());
    Cache scalar(cfg, dram_a);
    trace.ReplayIntoScalar(scalar);

    DramCounter dram_b(Lpddr3Config());
    Cache batched(cfg, dram_b);
    trace.ReplayInto(batched);

    EXPECT_TRUE(SameCacheStats(scalar.stats(), batched.stats()));
    EXPECT_TRUE(SameDramStats(dram_a.stats(), dram_b.stats()));
}

TEST(BatchedEquivalence, RecorderTeesBatchesIdentically)
{
    const AccessTrace trace = RandomTrace(0xF00D, 5000);

    // Scalar tee.
    AccessTrace scalar_copy;
    DramCounter dram_a(Lpddr3Config());
    TraceRecorder scalar_rec(scalar_copy, dram_a);
    trace.ReplayIntoScalar(scalar_rec);

    // Batched tee.
    AccessTrace batched_copy;
    DramCounter dram_b(Lpddr3Config());
    TraceRecorder batched_rec(batched_copy, dram_b);
    trace.ReplayInto(batched_rec);

    ASSERT_EQ(scalar_copy.size(), trace.size());
    ASSERT_EQ(batched_copy.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(scalar_copy[i].word, batched_copy[i].word);
    }
    EXPECT_TRUE(SameDramStats(dram_a.stats(), dram_b.stats()));
}

TEST(SweepRunner, ResultsIndependentOfThreadCount)
{
    const AccessTrace trace = RandomTrace(0xABCD, 20000);
    std::vector<HierarchyConfig> configs;
    for (const Bytes llc : {512_KiB, 1_MiB, 2_MiB, 4_MiB}) {
        HierarchyConfig hier = HostHierarchyConfig();
        hier.llc->size = llc;
        configs.push_back(hier);
    }
    configs.push_back(PimCoreHierarchyConfig());
    configs.push_back(PimAccelHierarchyConfig());

    const auto serial = SweepRunner(1).ReplayTrace(trace, configs);
    for (const unsigned threads : {2u, 4u, 8u}) {
        const auto parallel =
            SweepRunner(threads).ReplayTrace(trace, configs);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_TRUE(SameCounters(serial[i], parallel[i]))
                << "config " << i << " with " << threads << " threads";
        }
    }
}

TEST(SweepRunner, ForEachRunsEveryJobExactlyOnce)
{
    const std::size_t jobs = 103; // not a multiple of any pool size
    std::vector<int> times_run(jobs, 0);
    std::mutex mu;
    SweepRunner(4).ForEach(jobs, [&](std::size_t i) {
        const std::lock_guard<std::mutex> lock(mu);
        ++times_run[i];
    });
    for (std::size_t i = 0; i < jobs; ++i) {
        EXPECT_EQ(times_run[i], 1) << "job " << i;
    }
}

TEST(SweepRunner, ZeroJobsIsNoop)
{
    SweepRunner(4).ForEach(0, [](std::size_t) { FAIL(); });
}

TEST(CacheOverflowEdge, AccessEndingAtTopOfAddressSpace)
{
    constexpr Address kTop = std::numeric_limits<Address>::max();
    DramCounter dram(Lpddr3Config());
    Cache cache(CacheConfig{"edge", 1_KiB, 2, 64}, dram);

    // [2^64 - 64, 2^64): one full line; addr + bytes wraps to 0.
    cache.Access(kTop - 63, 64, AccessType::kRead);
    EXPECT_EQ(cache.stats().read_misses, 1u);
    EXPECT_TRUE(cache.Contains(kTop));

    // Unaligned tail: [2^64 - 10, 2^64) stays within the last line.
    cache.Access(kTop - 9, 10, AccessType::kWrite);
    EXPECT_EQ(cache.stats().write_hits, 1u);

    // Straddling the last two lines.
    cache.Access(kTop - 127, 128, AccessType::kRead);
    EXPECT_EQ(cache.stats().read_hits, 1u);  // top line still resident
    EXPECT_EQ(cache.stats().read_misses, 2u); // second-to-last line
}

TEST(CacheOverflowEdge, FlushRangeEndingAtTopOfAddressSpace)
{
    constexpr Address kTop = std::numeric_limits<Address>::max();
    DramCounter dram(Lpddr3Config());
    Cache cache(CacheConfig{"edge", 1_KiB, 2, 64}, dram);

    cache.Access(kTop - 127, 128, AccessType::kWrite); // last two lines
    EXPECT_EQ(cache.stats().write_misses, 2u);

    const auto flushed = cache.FlushRange(kTop - 100, 101);
    EXPECT_EQ(flushed, 2u);
    EXPECT_EQ(cache.stats().writebacks, 2u);
    EXPECT_FALSE(cache.Contains(kTop));
    EXPECT_FALSE(cache.Contains(kTop - 64));
}

TEST(CacheOverflowEdge, UnalignedFlushRangeFlushesOverlappedLinesOnly)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(CacheConfig{"edge", 1_KiB, 2, 64}, dram);

    cache.Access(0x1000, 256, AccessType::kWrite); // lines 0x1000..0x10C0
    // [0x1035, 0x1075) overlaps exactly lines 0x1000 and 0x1040.
    EXPECT_EQ(cache.FlushRange(0x1035, 0x40), 2u);
    EXPECT_TRUE(cache.Contains(0x1080));
    EXPECT_TRUE(cache.Contains(0x10C0));
    EXPECT_FALSE(cache.Contains(0x1040));
}

TEST(CacheCoalescing, RepeatedSameLineProbesCountEveryHit)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(CacheConfig{"co", 1_KiB, 2, 64}, dram);

    // Sequential 4-byte accesses within one line: 1 miss + 15 hits,
    // exactly as the unfiltered path counts them.
    for (Address a = 0x2000; a < 0x2040; a += 4) {
        cache.Access(a, 4, AccessType::kRead);
    }
    EXPECT_EQ(cache.stats().read_misses, 1u);
    EXPECT_EQ(cache.stats().read_hits, 15u);

    // A write through the filter path must still set the dirty bit.
    cache.Access(0x2004, 4, AccessType::kWrite);
    EXPECT_EQ(cache.stats().write_hits, 1u);
    dram.ResetStats();
    cache.FlushAll();
    EXPECT_EQ(dram.stats().write_bytes, 64u);
}

TEST(AccessTrace, ShrinkToFitReleasesGrowthSlack)
{
    AccessTrace trace;
    const std::size_t entries = (std::size_t{1} << 16) + 1;
    for (std::size_t i = 0; i < entries; ++i) {
        trace.Append(0x1000 + 64 * i, 4, AccessType::kRead);
    }
    ASSERT_GT(trace.capacity(), trace.size()); // geometric slack
    trace.ShrinkToFit();
    EXPECT_EQ(trace.capacity(), trace.size());
    EXPECT_EQ(trace.SizeBytes(), entries * sizeof(TraceEntry));
    EXPECT_EQ(trace.CapacityBytes(), trace.SizeBytes());
    // Contents survive the reallocation.
    EXPECT_EQ(trace[entries - 1].addr(), 0x1000 + 64 * (entries - 1));
}

TEST(FanoutSink, ForwardsScalarAndBatchedToEverySink)
{
    DramCounter a(Lpddr3Config()), b(Lpddr3Config());
    FanoutSink fan;
    fan.AddSink(a);
    fan.AddSink(b);
    EXPECT_EQ(fan.sink_count(), 2u);

    fan.Access(0x1000, 64, AccessType::kRead);
    const TraceEntry batch[] = {
        TraceEntry(0x2000, 64, AccessType::kWrite),
        TraceEntry(0x3000, 128, AccessType::kRead),
    };
    fan.AccessBatch(batch, 2);

    for (const DramCounter *c : {&a, &b}) {
        EXPECT_EQ(c->stats().read_requests, 2u);
        EXPECT_EQ(c->stats().read_bytes, 192u);
        EXPECT_EQ(c->stats().write_requests, 1u);
        EXPECT_EQ(c->stats().write_bytes, 64u);
    }
}

TEST(StackProfiler, HandComputedSingleSetSequence)
{
    // One fully-associative stack, 64 B lines, writebacks tracked for
    // the 1-way and 2-way points.  Lines: A = 0x0, B = 0x40.
    StackProfilerConfig cfg;
    cfg.line_bytes = 64;
    cfg.num_sets = 1;
    cfg.tracked_assocs = {1, 2};
    StackDistanceProfiler prof(cfg);

    prof.Access(0x00, 4, AccessType::kWrite); // W A: cold
    prof.Access(0x40, 4, AccessType::kRead);  // R B: cold
    prof.Access(0x00, 4, AccessType::kRead);  // R A: distance 1

    EXPECT_EQ(prof.probes(), 3u);
    EXPECT_EQ(prof.cold_writes(), 1u);
    EXPECT_EQ(prof.cold_reads(), 1u);
    ASSERT_EQ(prof.read_histogram().size(), 2u);
    EXPECT_EQ(prof.read_histogram()[1], 1u);

    // 1-way: every probe misses; B's fill evicts dirty A -> 1 writeback.
    const CacheStats one = prof.StatsForAssociativity(1);
    EXPECT_EQ(one.write_misses, 1u);
    EXPECT_EQ(one.read_misses, 2u);
    EXPECT_EQ(one.Hits(), 0u);
    EXPECT_EQ(one.writebacks, 1u);

    // 2-way: A survives; the distance-1 re-read hits, nothing evicted.
    const CacheStats two = prof.StatsForAssociativity(2);
    EXPECT_EQ(two.write_misses, 1u);
    EXPECT_EQ(two.read_misses, 1u);
    EXPECT_EQ(two.read_hits, 1u);
    EXPECT_EQ(two.writebacks, 0u);

    EXPECT_TRUE(prof.TracksWritebacks(1));
    EXPECT_FALSE(prof.TracksWritebacks(3));
    // Untracked associativities still get exact hit/miss counts.
    EXPECT_EQ(prof.StatsForAssociativity(3).Hits(), two.Hits());
}

TEST(StackProfiler, MatchesCacheBitForBitAtEveryAssociativity)
{
    const AccessTrace trace = RandomTrace(0xD157, 20000);
    constexpr std::size_t kSets = 64;
    constexpr Bytes kLine = 64;

    StackProfilerConfig cfg;
    cfg.line_bytes = kLine;
    cfg.num_sets = kSets;
    cfg.tracked_assocs = {1, 2, 3, 4, 6, 8};
    StackDistanceProfiler prof(cfg);
    trace.ReplayInto(prof);

    for (const std::uint32_t assoc : cfg.tracked_assocs) {
        DramCounter dram(Lpddr3Config());
        Cache cache(CacheConfig{"ref", kSets * assoc * kLine, assoc,
                                kLine},
                    dram);
        trace.ReplayInto(cache);

        EXPECT_TRUE(SameCacheStats(prof.StatsForAssociativity(assoc),
                                   cache.stats()))
            << "assoc " << assoc;
        EXPECT_TRUE(SameDramStats(
            prof.DramTrafficForAssociativity(assoc), dram.stats()))
            << "assoc " << assoc;
    }
}

TEST(StackProfiler, NonPowerOfTwoSetCountMatchesCache)
{
    const AccessTrace trace = RandomTrace(0x0DD5, 10000);
    StackProfilerConfig cfg;
    cfg.line_bytes = 64;
    cfg.num_sets = 3;
    cfg.tracked_assocs = {2};
    StackDistanceProfiler prof(cfg);
    trace.ReplayInto(prof);

    DramCounter dram(Lpddr3Config());
    Cache cache(CacheConfig{"np2", 3 * 2 * 64, 2, 64}, dram);
    trace.ReplayInto(cache);

    EXPECT_TRUE(
        SameCacheStats(prof.StatsForAssociativity(2), cache.stats()));
    EXPECT_TRUE(SameDramStats(prof.DramTrafficForAssociativity(2),
                              dram.stats()));
}

/** Record a kernel's access stream through a traced CPU context. */
AccessTrace
RecordKernelTrace(
    const std::function<void(core::ExecutionContext &)> &kernel)
{
    AccessTrace trace;
    core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
    ctx.AttachTrace(trace);
    kernel(ctx);
    ctx.DetachTrace();
    return trace;
}

/** The three kernel streams the one-pass engines must reproduce. */
std::vector<std::pair<const char *, AccessTrace>>
KernelTraces()
{
    std::vector<std::pair<const char *, AccessTrace>> traces;
    Rng rng(77);

    browser::Bitmap linear(128, 128);
    linear.Randomize(rng);
    traces.emplace_back(
        "tiler", RecordKernelTrace([&](core::ExecutionContext &ctx) {
            browser::TiledTexture tiled(128, 128);
            browser::TileTexture(linear, tiled, ctx);
        }));

    browser::Bitmap dst(128, 128, 0xff000000);
    browser::Bitmap src(64, 64);
    src.Randomize(rng);
    traces.emplace_back(
        "blitter", RecordKernelTrace([&](core::ExecutionContext &ctx) {
            browser::ColorBlitter blitter(dst, ctx);
            blitter.FillRect({8, 8, 100, 100}, 0xff336699);
            blitter.BlitSrcOver(src, 16, 16);
            blitter.BlitCopy(src, 48, 48);
        }));

    ml::Matrix<std::uint8_t> a(48, 64);
    ml::Matrix<std::uint8_t> b(64, 32);
    a.Randomize(rng);
    b.Randomize(rng);
    traces.emplace_back(
        "gemm", RecordKernelTrace([&](core::ExecutionContext &ctx) {
            ml::PackedMatrix pa(48, 64);
            ml::PackedMatrix pb(32, 64);
            ml::PackLhs(a, pa, ctx);
            ml::PackRhs(b, pb, ctx);
            ml::PackedResult pr(48, 32);
            ml::QuantizedGemm(pa, 3, pb, 128, pr, ctx);
        }));
    return traces;
}

/**
 * The sweep the fast engines must reproduce bit-for-bit: 10 LLC design
 * points over the host L1 — an 8-point associativity/capacity ladder at
 * one set count plus two points at other set counts, so the profiler
 * path exercises both intra-group sharing and multi-group splitting.
 */
std::vector<CacheConfig>
SweepLlcPoints()
{
    std::vector<CacheConfig> points;
    for (const std::uint32_t assoc : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
        points.push_back(
            CacheConfig{"llc", 512 * assoc * 64, assoc, 64});
    }
    points.push_back(CacheConfig{"llc", 1_MiB, 8, 64});  // 2048 sets
    points.push_back(CacheConfig{"llc", 2_MiB, 16, 64}); // 2048 sets
    return points;
}

TEST(SweepEquivalence, OnePassEnginesMatchPerConfigOnKernelTraces)
{
    const std::vector<CacheConfig> points = SweepLlcPoints();
    std::vector<HierarchyConfig> configs;
    for (const CacheConfig &p : points) {
        HierarchyConfig hier = HostHierarchyConfig();
        hier.llc = p;
        configs.push_back(std::move(hier));
    }

    const SweepRunner runner(2);
    for (const auto &[name, trace] : KernelTraces()) {
        const auto ref = runner.ReplayTrace(trace, configs);
        const auto fanout = runner.ReplayTraceFanout(trace, configs);
        const auto profiled = runner.ProfileLlcSweep(
            trace, HostHierarchyConfig(), points);

        ASSERT_EQ(fanout.size(), ref.size());
        ASSERT_EQ(profiled.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_TRUE(SameCounters(ref[i], fanout[i]))
                << name << " fanout point " << i;
            EXPECT_TRUE(SameCounters(ref[i], profiled[i]))
                << name << " profiler point " << i;
        }
    }
}

TEST(SweepEquivalence, FanoutMatchesAcrossHeterogeneousHierarchies)
{
    // Mixed L1 shapes: three host variants share one L1 group, the
    // PIM shapes land in others; grouping must never mix counters.
    const AccessTrace trace = RandomTrace(0xFA40, 20000);
    std::vector<HierarchyConfig> configs;
    for (const Bytes llc : {1_MiB, 2_MiB, 4_MiB}) {
        HierarchyConfig hier = HostHierarchyConfig();
        hier.llc->size = llc;
        configs.push_back(std::move(hier));
    }
    configs.push_back(HostStackedHierarchyConfig());
    configs.push_back(PimCoreHierarchyConfig());
    configs.push_back(PimAccelHierarchyConfig());

    const auto ref = SweepRunner(1).ReplayTrace(trace, configs);
    for (const unsigned threads : {1u, 2u, 4u}) {
        const auto fanout =
            SweepRunner(threads).ReplayTraceFanout(trace, configs);
        ASSERT_EQ(fanout.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_TRUE(SameCounters(ref[i], fanout[i]))
                << "config " << i << " threads " << threads;
        }
    }
}

TEST(SweepRunner, ForEachRethrowsWorkerException)
{
    // Regression: a throwing job used to escape the worker thread and
    // std::terminate the process.
    for (const unsigned threads : {1u, 4u}) {
        EXPECT_THROW(
            SweepRunner(threads).ForEach(
                100,
                [](std::size_t i) {
                    if (i == 37) {
                        throw std::runtime_error("job 37 failed");
                    }
                }),
            std::runtime_error)
            << threads << " threads";
    }
}

TEST(SweepRunner, ForEachStopsClaimingJobsAfterFailure)
{
    std::atomic<int> ran_after_fail{0};
    std::atomic<bool> failed{false};
    try {
        SweepRunner(2).ForEach(10000, [&](std::size_t) {
            if (failed.load()) {
                ran_after_fail.fetch_add(1);
            } else {
                failed.store(true);
                throw std::runtime_error("boom");
            }
        });
        FAIL() << "exception not rethrown";
    } catch (const std::runtime_error &) {
    }
    // Workers observe the failure flag between claims; far fewer than
    // the full job count may run afterwards (bounded by in-flight jobs).
    EXPECT_LT(ran_after_fail.load(), 100);
}

TEST(SweepRunner, EnvVarBoundsDefaultThreadCount)
{
    ASSERT_EQ(setenv("PIM_SWEEP_THREADS", "3", 1), 0);
    EXPECT_EQ(SweepRunner().thread_count(), 3u);
    EXPECT_EQ(SweepRunner(0).thread_count(), 3u);
    // An explicit count beats the environment.
    EXPECT_EQ(SweepRunner(2).thread_count(), 2u);

    // Invalid values fall back to hardware concurrency (>= 1).
    ASSERT_EQ(setenv("PIM_SWEEP_THREADS", "banana", 1), 0);
    EXPECT_GE(SweepRunner().thread_count(), 1u);
    ASSERT_EQ(setenv("PIM_SWEEP_THREADS", "0", 1), 0);
    EXPECT_GE(SweepRunner().thread_count(), 1u);

    ASSERT_EQ(unsetenv("PIM_SWEEP_THREADS"), 0);
}

TEST(CacheCoalescing, FilterSurvivesEvictionOfTrackedLine)
{
    DramCounter dram(Lpddr3Config());
    // One set, 2 ways: the tracked line can be evicted underneath
    // the filter.
    Cache cache(CacheConfig{"evict", 128, 2, 64}, dram);

    cache.Access(0x0000, 4, AccessType::kWrite); // A (tracked, dirty)
    cache.Access(0x1000, 4, AccessType::kRead);  // B
    cache.Access(0x2000, 4, AccessType::kRead);  // C evicts A (LRU)
    EXPECT_EQ(cache.stats().writebacks, 1u);

    // A was evicted: this must be a miss, not a stale filter hit.
    cache.Access(0x0000, 4, AccessType::kRead);
    EXPECT_EQ(cache.stats().read_misses, 3u);
    EXPECT_EQ(cache.stats().read_hits, 0u);
}

/** Serial reference for the intra-trace sharded engine. */
PerfCounters
SerialReplay(const AccessTrace &trace, const HierarchyConfig &config)
{
    MemoryHierarchy mh(config);
    trace.ReplayInto(mh.Top());
    return mh.Snapshot();
}

TEST(ShardedReplay, BitIdenticalOnKernelTracesAtEveryThreadCount)
{
    // The core acceptance property: one (trace, config) replay split
    // across set-shards merges to the exact serial counters, on every
    // recorded kernel stream, hierarchy shape, and thread count —
    // including thread counts that are not powers of two and exceed
    // the shard budget the geometry admits.
    const std::vector<HierarchyConfig> configs = {
        HostHierarchyConfig(), HostStackedHierarchyConfig(),
        PimCoreHierarchyConfig()};
    for (const auto &[name, trace] : KernelTraces()) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const PerfCounters ref = SerialReplay(trace, configs[c]);
            for (const unsigned threads : {1u, 2u, 4u, 7u}) {
                const ShardedReplay sharded{SweepRunner(threads)};
                EXPECT_TRUE(SameCounters(
                    ref, sharded.Replay(trace, configs[c])))
                    << name << " config " << c << " threads "
                    << threads;
            }
        }
    }
}

TEST(ShardedReplay, BitIdenticalOnRandomTrace)
{
    const AccessTrace trace = RandomTrace(0x5A4D, 50000);
    const PerfCounters ref =
        SerialReplay(trace, HostHierarchyConfig());
    for (const unsigned threads : {2u, 3u, 4u, 7u}) {
        const ShardedReplay sharded{SweepRunner(threads)};
        EXPECT_TRUE(SameCounters(
            ref, sharded.Replay(trace, HostHierarchyConfig())))
            << "threads " << threads;
    }
}

TEST(ShardedReplay, PlanRespectsGeometryAndShardBudget)
{
    // Host geometry (256 L1 sets, 4096 LLC sets, both 64 B lines)
    // admits power-of-two sharding up to the budget.
    const ShardedReplayPlan plan4 =
        ShardedReplay::PlanFor(HostHierarchyConfig(), 4);
    EXPECT_TRUE(plan4.supported);
    EXPECT_EQ(plan4.shards, 4u);
    EXPECT_GE(plan4.block_lines, 1u);

    // A budget of one shard means there is nothing to parallelize.
    EXPECT_FALSE(ShardedReplay::PlanFor(HostHierarchyConfig(), 1)
                     .supported);

    // Non-power-of-two set counts have no maskable shard key.
    HierarchyConfig odd = HostHierarchyConfig();
    odd.llc->size = 192 * 64; // 192 sets at assoc 1
    odd.llc->associativity = 1;
    EXPECT_FALSE(ShardedReplay::PlanFor(odd, 4).supported);
}

TEST(ShardedReplay, NonPowerOfTwoGeometryFallsBackBitIdentically)
{
    HierarchyConfig odd = HostHierarchyConfig();
    odd.llc->size = 192 * 64;
    odd.llc->associativity = 1;
    const AccessTrace trace = RandomTrace(0x0DD1, 20000);
    const PerfCounters ref = SerialReplay(trace, odd);
    const ShardedReplay sharded{SweepRunner(4)};
    EXPECT_TRUE(SameCounters(ref, sharded.Replay(trace, odd)));
}

TEST(ShardedReplay, OverflowSpanFallsBackToSerial)
{
    // An entry whose span reaches past kMaxAddr cannot be split into
    // representable packed sub-entries; the engine must detect it
    // during partition and fall back to the serial replay.
    AccessTrace trace;
    for (std::size_t i = 0; i < 5000; ++i) {
        trace.Append(0x1000 + i * 64, 64, AccessType::kRead);
    }
    trace.Append(TraceEntry::kMaxAddr - 7, 4096, AccessType::kWrite);
    for (std::size_t i = 0; i < 5000; ++i) {
        trace.Append(0x9000 + i * 64, 32, AccessType::kWrite);
    }

    const PerfCounters ref =
        SerialReplay(trace, HostHierarchyConfig());
    for (const unsigned threads : {2u, 4u}) {
        const ShardedReplay sharded{SweepRunner(threads)};
        EXPECT_TRUE(SameCounters(
            ref, sharded.Replay(trace, HostHierarchyConfig())))
            << "threads " << threads;
    }
}

TEST(ShardedReplay, CompactTraceMatchesRawReplay)
{
    // Composition: block-by-block compact decode feeding the sharded
    // partitioner must land on the same counters as the raw serial
    // replay.
    for (const auto &[name, trace] : KernelTraces()) {
        const CompactTrace compact = CompactTrace::Encode(trace);
        const PerfCounters ref =
            SerialReplay(trace, HostHierarchyConfig());
        for (const unsigned threads : {1u, 2u, 4u}) {
            const ShardedReplay sharded{SweepRunner(threads)};
            EXPECT_TRUE(SameCounters(
                ref, sharded.Replay(compact, HostHierarchyConfig())))
                << name << " threads " << threads;
        }
    }
}

TEST(SweepEquivalence, CompactOverloadsMatchRawEngines)
{
    // All three sweep engines accept the compact form; counters must
    // be identical to the raw-trace overloads point for point.
    const std::vector<CacheConfig> points = SweepLlcPoints();
    std::vector<HierarchyConfig> configs;
    for (const CacheConfig &p : points) {
        HierarchyConfig hier = HostHierarchyConfig();
        hier.llc = p;
        configs.push_back(std::move(hier));
    }

    const SweepRunner runner(2);
    const AccessTrace trace = RandomTrace(0xC0DE, 30000);
    const CompactTrace compact = CompactTrace::Encode(trace);

    const auto ref = runner.ReplayTrace(trace, configs);
    const auto replay = runner.ReplayTrace(compact, configs);
    const auto fanout = runner.ReplayTraceFanout(compact, configs);
    const auto profiled = runner.ProfileLlcSweep(
        compact, HostHierarchyConfig(), points);
    ASSERT_EQ(replay.size(), ref.size());
    ASSERT_EQ(fanout.size(), ref.size());
    ASSERT_EQ(profiled.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_TRUE(SameCounters(ref[i], replay[i])) << "replay " << i;
        EXPECT_TRUE(SameCounters(ref[i], fanout[i])) << "fanout " << i;
        EXPECT_TRUE(SameCounters(ref[i], profiled[i]))
            << "profiler " << i;
    }
}

TEST(PerfCounters, MergeSumsEveryField)
{
    const auto cache = [](std::uint64_t base) {
        CacheStats s;
        s.read_hits = base + 1;
        s.read_misses = base + 2;
        s.write_hits = base + 3;
        s.write_misses = base + 4;
        s.writebacks = base + 5;
        return s;
    };
    PerfCounters a, b;
    a.l1 = cache(10);
    a.llc = cache(20);
    a.has_llc = true;
    a.dram.read_requests = 31;
    a.dram.write_requests = 32;
    a.dram.read_bytes = 33;
    a.dram.write_bytes = 34;
    b.l1 = cache(100);
    b.llc = cache(200);
    b.has_llc = true;
    b.dram.read_requests = 301;
    b.dram.write_requests = 302;
    b.dram.read_bytes = 303;
    b.dram.write_bytes = 304;

    a += b;
    EXPECT_EQ(a.l1.read_hits, 112u);
    EXPECT_EQ(a.l1.read_misses, 114u);
    EXPECT_EQ(a.l1.write_hits, 116u);
    EXPECT_EQ(a.l1.write_misses, 118u);
    EXPECT_EQ(a.l1.writebacks, 120u);
    EXPECT_EQ(a.llc.read_hits, 222u);
    EXPECT_EQ(a.llc.writebacks, 230u);
    EXPECT_TRUE(a.has_llc);
    EXPECT_EQ(a.dram.read_requests, 332u);
    EXPECT_EQ(a.dram.write_requests, 334u);
    EXPECT_EQ(a.dram.read_bytes, 336u);
    EXPECT_EQ(a.dram.write_bytes, 338u);

    // No-LLC parts merge without inventing an LLC.
    PerfCounters c, d;
    c.dram.read_bytes = 1;
    d.dram.read_bytes = 2;
    c += d;
    EXPECT_FALSE(c.has_llc);
    EXPECT_EQ(c.dram.read_bytes, 3u);
}

TEST(AccessTrace, RunningByteTotalsMatchScan)
{
    const AccessTrace trace = RandomTrace(0xB17E, 20000);
    Bytes reads = 0, writes = 0;
    for (const TraceEntry &e : trace) {
        (e.type() == AccessType::kRead ? reads : writes) += e.bytes();
    }
    EXPECT_EQ(trace.read_bytes(), reads);
    EXPECT_EQ(trace.write_bytes(), writes);
    EXPECT_EQ(trace.TotalBytes(), reads + writes);

    // The bulk-append path maintains the same totals.
    AccessTrace copy;
    copy.Append(trace.data(), trace.size());
    EXPECT_EQ(copy.read_bytes(), reads);
    EXPECT_EQ(copy.write_bytes(), writes);
}

// ---- SIMD probe x replay engines --------------------------------

/** Forces the SIMD kill-switch for one scope, restoring it on exit. */
class SimdGuard
{
  public:
    explicit SimdGuard(bool on) : prev_(simd::Enabled())
    {
        simd::SetEnabled(on);
    }
    ~SimdGuard() { simd::SetEnabled(prev_); }

  private:
    bool prev_;
};

TEST(SimdEquivalence, KernelTracesBitIdenticalAcrossProbeAndShards)
{
    // Satellite of the SoA/vector-probe change: the tiler, blitter,
    // and GEMM streams must land on identical CacheStats and DramStats
    // whether sets are probed by the vector path or the scalar path
    // (PIM_SIMD=off), serially or sharded at 1/2/8 workers.
    for (const auto &[name, trace] : KernelTraces()) {
        PerfCounters ref;
        {
            SimdGuard guard(false);
            ref = SerialReplay(trace, HostHierarchyConfig());
        }
        for (const bool simd_on : {false, true}) {
            SimdGuard guard(simd_on);
            EXPECT_TRUE(SameCounters(
                ref, SerialReplay(trace, HostHierarchyConfig())))
                << name << " serial simd=" << simd_on;
            for (const unsigned threads : {1u, 2u, 8u}) {
                const ShardedReplay sharded{SweepRunner(threads)};
                EXPECT_TRUE(SameCounters(
                    ref,
                    sharded.Replay(trace, HostHierarchyConfig())))
                    << name << " simd=" << simd_on << " threads="
                    << threads;
            }
        }
    }
}

TEST(SimdEquivalence, CompactDecodeIdenticalAcrossProbePaths)
{
    // The codec's run expander has a vector path too; the decoded
    // entry words must be byte-identical to the scalar expansion.
    for (const auto &[name, trace] : KernelTraces()) {
        const CompactTrace compact = CompactTrace::Encode(trace);
        AccessTrace decoded[2];
        for (const bool simd_on : {false, true}) {
            SimdGuard guard(simd_on);
            decoded[simd_on ? 1 : 0] = compact.Decode();
        }
        ASSERT_EQ(decoded[0].size(), decoded[1].size()) << name;
        for (std::size_t i = 0; i < decoded[0].size(); ++i) {
            ASSERT_EQ(decoded[0].data()[i].word,
                      decoded[1].data()[i].word)
                << name << " entry " << i;
        }
    }
}

// ---- Pinning and placement telemetry ----------------------------

TEST(SweepRunner, ForEachPinnedRunsEveryJobExactlyOnce)
{
    SweepRunner runner(4);
    constexpr std::size_t kJobs = 64;
    std::vector<std::atomic<int>> ran(kJobs);
    runner.ForEachPinned(kJobs, [&](std::size_t i) {
        ran[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kJobs; ++i) {
        EXPECT_EQ(ran[i].load(), 1) << "job " << i;
    }
}

TEST(Affinity, KillSwitchDisablesPinning)
{
    const bool prev = affinity::PinningEnabled();
    affinity::SetPinningEnabled(false);
    EXPECT_FALSE(affinity::PinningEnabled());
    EXPECT_FALSE(affinity::PinThreadToCore(0));
    affinity::SetPinningEnabled(prev);
}

TEST(ShardedReplay, PlacementTelemetryReportsShardsAndCpus)
{
    const AccessTrace trace = RandomTrace(0x51AD, 20000);

    ShardPlacement sharded_p;
    const ShardedReplay sharded{SweepRunner(4)};
    const PerfCounters pc =
        sharded.Replay(trace, HostHierarchyConfig(), &sharded_p);
    EXPECT_TRUE(sharded_p.sharded);
    EXPECT_EQ(sharded_p.shards,
              ShardedReplay::PlanFor(HostHierarchyConfig(), 4).shards);
    EXPECT_EQ(sharded_p.shard_cpu.size(), sharded_p.shards);

    // Telemetry is observational: counters match the serial replay.
    ShardPlacement serial_p;
    const ShardedReplay serial{SweepRunner(1)};
    EXPECT_TRUE(SameCounters(
        pc, serial.Replay(trace, HostHierarchyConfig(), &serial_p)));
    EXPECT_FALSE(serial_p.sharded);
    EXPECT_EQ(serial_p.shards, 1u);
    EXPECT_EQ(serial_p.shard_cpu.size(), 1u);
}

TEST(SweepRunner, SetDefaultThreadsBeatsEnvironment)
{
    ASSERT_EQ(setenv("PIM_SWEEP_THREADS", "3", 1), 0);
    SweepRunner::SetDefaultThreads(5);
    // Flag-style override wins over the environment...
    EXPECT_EQ(SweepRunner().thread_count(), 5u);
    EXPECT_EQ(SweepRunner(0).thread_count(), 5u);
    // ...but an explicit constructor count still beats both.
    EXPECT_EQ(SweepRunner(2).thread_count(), 2u);

    // Clearing the override restores the env-var default.
    SweepRunner::SetDefaultThreads(0);
    EXPECT_EQ(SweepRunner().thread_count(), 3u);
    ASSERT_EQ(unsetenv("PIM_SWEEP_THREADS"), 0);
}

/**
 * Randomized property suite for the generalized profiler: across
 * random (line, sets, assoc, write-policy) geometries and the three
 * standard kernel traces, a single profiling pass must be bit-identical
 * to replaying the stream through a sim::Cache of the same geometry —
 * stats and below-traffic both, for every policy.
 */
TEST(StackProfilerProperty, RandomGeometriesMatchCacheReplay)
{
    const auto traces = KernelTraces();
    Rng rng(0x5EED);
    const WritePolicy policies[] = {
        WritePolicy::kWriteBackAllocate,
        WritePolicy::kWriteThroughAllocate,
        WritePolicy::kWriteThroughNoAllocate,
    };
    for (int g = 0; g < 51; ++g) {
        const Bytes line = Bytes{16} << rng.Range(0, 3); // 16..128
        // Set counts cover the degenerate single-stack case, powers of
        // two, and non-power-of-two (FastDiv) indexing.
        const std::size_t set_choices[] = {1, 2, 7, 16, 48, 64, 256};
        const std::size_t sets =
            set_choices[rng.Range(0, 6)];
        const auto assoc =
            static_cast<std::uint32_t>(rng.Range(1, 16));
        const WritePolicy policy = policies[rng.Range(0, 2)];

        CacheConfig cache_cfg;
        cache_cfg.name = "prop";
        cache_cfg.line_bytes = line;
        cache_cfg.associativity = assoc;
        cache_cfg.size = static_cast<Bytes>(sets) * assoc * line;
        cache_cfg.policy = policy;

        StackProfilerConfig prof_cfg;
        prof_cfg.line_bytes = line;
        prof_cfg.num_sets = sets;
        prof_cfg.tracked_assocs = {assoc};
        prof_cfg.write_allocate =
            policy != WritePolicy::kWriteThroughNoAllocate;

        const auto &[name, trace] =
            traces[static_cast<std::size_t>(g) % traces.size()];

        StackDistanceProfiler prof(prof_cfg);
        trace.ReplayInto(prof);

        DramCounter dram(Lpddr3Config());
        Cache cache(cache_cfg, dram);
        trace.ReplayInto(cache);

        const std::string what =
            std::string(name) + " line=" + std::to_string(line) +
            " sets=" + std::to_string(sets) +
            " assoc=" + std::to_string(assoc) + " policy=" +
            WritePolicyName(policy);
        EXPECT_TRUE(prof.WritebacksExact(assoc, policy)) << what;
        EXPECT_TRUE(SameCacheStats(
            prof.StatsForAssociativity(assoc, policy), cache.stats()))
            << what;
        EXPECT_TRUE(SameDramStats(
            prof.DramTrafficForAssociativity(assoc, policy),
            dram.stats()))
            << what;
    }
}

TEST(StackProfilerPolicy, WriteThroughSharesTheAllocatingPass)
{
    // One allocating pass answers write-back AND write-through
    // points: residency identical, traffic derived per policy.
    const AccessTrace trace = RandomTrace(0xCAFE, 20000);
    StackProfilerConfig cfg;
    cfg.line_bytes = 64;
    cfg.num_sets = 64;
    cfg.tracked_assocs = {1, 2, 4, 8};
    StackDistanceProfiler prof(cfg);
    trace.ReplayInto(prof);

    for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
        const CacheStats wb = prof.StatsForAssociativity(
            assoc, WritePolicy::kWriteBackAllocate);
        const CacheStats wt = prof.StatsForAssociativity(
            assoc, WritePolicy::kWriteThroughAllocate);
        EXPECT_EQ(wb.Hits(), wt.Hits());
        EXPECT_EQ(wb.Misses(), wt.Misses());
        EXPECT_EQ(wt.writebacks, 0u);
        const DramStats d = prof.DramTrafficForAssociativity(
            assoc, WritePolicy::kWriteThroughAllocate);
        // Every write probe goes through, independent of assoc.
        EXPECT_EQ(d.write_requests,
                  prof.cold_writes() +
                      std::accumulate(prof.write_histogram().begin(),
                                      prof.write_histogram().end(),
                                      std::uint64_t{0}));
    }
}

TEST(StackProfiler, UntrackedWritebackReadoutIsFlaggedAndWarnsOnce)
{
    StackProfilerConfig cfg;
    cfg.line_bytes = 64;
    cfg.num_sets = 16;
    cfg.tracked_assocs = {2};
    StackDistanceProfiler prof(cfg);
    RandomTrace(0xBAD, 4000).ReplayInto(prof);

    EXPECT_TRUE(prof.WritebacksExact(2));
    EXPECT_FALSE(prof.WritebacksExact(3));
    // Write-through is exact at every associativity (never dirty).
    EXPECT_TRUE(prof.WritebacksExact(
        3, WritePolicy::kWriteThroughAllocate));

    std::vector<std::string> warnings;
    SetWarnCapture(&warnings);
    const CacheStats untracked = prof.StatsForAssociativity(3);
    const CacheStats again = prof.StatsForAssociativity(5);
    SetWarnCapture(nullptr);
    EXPECT_EQ(untracked.writebacks, 0u);
    EXPECT_EQ(again.writebacks, 0u);
    // One-time warning per process: at most one message, and if this
    // test was first to trigger it, exactly one naming the problem.
    EXPECT_LE(warnings.size(), 1u);
    if (!warnings.empty()) {
        EXPECT_NE(warnings[0].find("untracked"), std::string::npos);
    }
}

TEST(StackProfilerPrefetch, StreamModelCountsSequentialStream)
{
    StackProfilerConfig cfg;
    cfg.line_bytes = 64;
    cfg.num_sets = 4;
    cfg.tracked_assocs = {2};
    cfg.model_prefetcher = true;
    StackDistanceProfiler prof(cfg);
    // A pure sequential sweep of 32 lines: every probe after the first
    // extends a detected stream.
    for (Address line = 0; line < 32; ++line) {
        prof.Access(line * 64, 64, AccessType::kRead);
    }
    const PrefetchStats p = prof.PrefetchForAssociativity(2);
    // Probes 1..31 each issue the next line: 31 issued; probes 2..31
    // consume a pending prefetch on a cold miss: 30 useful.
    EXPECT_EQ(p.issued, 31u);
    EXPECT_EQ(p.useful, 30u);
    EXPECT_EQ(p.demand_misses, 32u); // all cold
    EXPECT_NEAR(p.Accuracy(), 30.0 / 31.0, 1e-12);
    EXPECT_NEAR(p.Coverage(), 30.0 / 32.0, 1e-12);

    // The model is layered: demand stats are unperturbed.
    StackProfilerConfig plain = cfg;
    plain.model_prefetcher = false;
    StackDistanceProfiler base(plain);
    for (Address line = 0; line < 32; ++line) {
        base.Access(line * 64, 64, AccessType::kRead);
    }
    EXPECT_TRUE(SameCacheStats(prof.StatsForAssociativity(2),
                               base.StatsForAssociativity(2)));
}

TEST(StackProfilerPrefetch, RedundantPrefetchesLowerAccuracy)
{
    StackProfilerConfig cfg;
    cfg.line_bytes = 64;
    cfg.num_sets = 1;
    cfg.model_prefetcher = true;
    StackDistanceProfiler prof(cfg);
    // Two interleaved revisits of a 4-line window: the stream model
    // keeps prefetching lines that are still resident at high assoc.
    for (int rep = 0; rep < 8; ++rep) {
        for (Address line = 0; line < 4; ++line) {
            prof.Access(line * 64, 64, AccessType::kRead);
        }
    }
    const PrefetchStats wide = prof.PrefetchForAssociativity(8);
    const PrefetchStats narrow = prof.PrefetchForAssociativity(1);
    // At assoc 8 the window fits: revisit demands would hit anyway,
    // so consumed prefetches are mostly redundant.
    EXPECT_LT(wide.Accuracy(), narrow.Accuracy());
    EXPECT_GE(narrow.useful, wide.useful);
}

/** The study grid the one-pass engine must reproduce bit-for-bit. */
StudySpec
HostStudySpec()
{
    StudySpec spec;
    const HierarchyConfig host = HostHierarchyConfig();
    spec.dram = host.dram;
    CacheConfig small = host.l1;
    small.size = 32_KiB;
    CacheConfig wide = host.l1;
    wide.size = 128_KiB;
    wide.associativity = 8;
    spec.l1_points = {host.l1, small, wide};
    for (const std::uint32_t assoc : {1u, 2u, 4u, 8u, 16u}) {
        CacheConfig llc{"llc", 1024 * assoc * 64, assoc, 64};
        spec.llc_points.push_back(llc);
        llc.policy = WritePolicy::kWriteThroughAllocate;
        spec.llc_points.push_back(llc);
        llc.policy = WritePolicy::kWriteThroughNoAllocate;
        spec.llc_points.push_back(llc);
    }
    // Two distinct set counts force multi-group pass splitting.
    spec.llc_points.push_back(CacheConfig{"llc", 2_MiB, 8, 64});
    const HierarchyConfig pim_core = PimCoreHierarchyConfig();
    const HierarchyConfig pim_accel = PimAccelHierarchyConfig();
    spec.pim_points.push_back(
        StudyPimPoint{"pim-core", pim_core.l1, pim_core.dram});
    spec.pim_points.push_back(
        StudyPimPoint{"pim-accel", pim_accel.l1, pim_accel.dram});
    return spec;
}

TEST(ProfileStudy, GridMatchesReferenceReplayOnKernelTraces)
{
    const StudySpec spec = HostStudySpec();
    const SweepRunner runner(2);
    for (const auto &[name, trace] : KernelTraces()) {
        const StudyResult study = runner.ProfileStudy(trace, spec);
        ASSERT_EQ(study.host.size(), spec.l1_points.size());
        // 3 distinct L1 geometries + 1 PIM replay.
        EXPECT_EQ(study.trace_replays, 4u);
        // Per L1: (1024 sets, alloc) + (1024 sets, no-alloc) +
        // (4096 sets, alloc); PIM: the two points differ in set
        // count, so they ride one replay but two passes.
        EXPECT_EQ(study.profile_passes, 3u * 3u + 2u);

        for (std::size_t i = 0; i < spec.l1_points.size(); ++i) {
            std::vector<HierarchyConfig> refs;
            for (const CacheConfig &llc : spec.llc_points) {
                HierarchyConfig h;
                h.name = "study";
                h.l1 = spec.l1_points[i];
                h.llc = llc;
                h.dram = spec.dram;
                refs.push_back(std::move(h));
            }
            const auto ref = runner.ReplayTrace(trace, refs);
            ASSERT_EQ(study.host[i].size(), ref.size());
            for (std::size_t j = 0; j < ref.size(); ++j) {
                EXPECT_TRUE(study.host[i][j].writebacks_exact);
                EXPECT_TRUE(
                    SameCounters(study.host[i][j].counters, ref[j]))
                    << name << " l1 " << i << " llc " << j;
            }
        }

        std::vector<HierarchyConfig> pim_refs;
        for (const StudyPimPoint &p : spec.pim_points) {
            HierarchyConfig h;
            h.name = p.name;
            h.l1 = p.l1;
            h.dram = p.dram;
            pim_refs.push_back(std::move(h));
        }
        const auto pim_ref = runner.ReplayTrace(trace, pim_refs);
        ASSERT_EQ(study.pim.size(), pim_ref.size());
        for (std::size_t j = 0; j < pim_ref.size(); ++j) {
            EXPECT_TRUE(
                SameCounters(study.pim[j].counters, pim_ref[j]))
                << name << " pim " << j;
        }
    }
}

TEST(ProfileStudy, CompactTraceOverloadMatchesRaw)
{
    const StudySpec spec = HostStudySpec();
    const AccessTrace raw = RandomTrace(0x57D, 30000);
    CompactTrace compact;
    {
        NullSink null;
        CompactTraceRecorder rec(null);
        raw.ReplayInto(rec);
        compact = rec.Finish();
    }
    const SweepRunner runner(2);
    const StudyResult a = runner.ProfileStudy(raw, spec);
    const StudyResult b = runner.ProfileStudy(compact, spec);
    ASSERT_EQ(a.host.size(), b.host.size());
    for (std::size_t i = 0; i < a.host.size(); ++i) {
        for (std::size_t j = 0; j < a.host[i].size(); ++j) {
            EXPECT_TRUE(SameCounters(a.host[i][j].counters,
                                     b.host[i][j].counters));
        }
    }
    for (std::size_t j = 0; j < a.pim.size(); ++j) {
        EXPECT_TRUE(
            SameCounters(a.pim[j].counters, b.pim[j].counters));
    }
}

/**
 * Tentpole acceptance for the streaming trace layer: every engine must
 * produce bit-identical counters through all three TraceSource
 * implementations — the zero-copy AccessTraceSource view, the in-RAM
 * CompactTraceSource cursor, and the mmap-backed MappedCompactTrace
 * streaming from a container file — at every engine shape: plain
 * serial replay, the parallel fan-out, the one-pass study, and the
 * set-sharded engine at 1, 2, and 8 threads.
 */
TEST(TraceSourceEquivalence, AllSourcesMatchAllEnginesOnKernelTraces)
{
    const std::vector<CacheConfig> points = SweepLlcPoints();
    std::vector<HierarchyConfig> configs;
    for (const CacheConfig &p : points) {
        HierarchyConfig hier = HostHierarchyConfig();
        hier.llc = p;
        configs.push_back(std::move(hier));
    }
    const StudySpec study_spec = HostStudySpec();
    const SweepRunner runner(2);

    for (const auto &[name, trace] : KernelTraces()) {
        const CompactTrace compact = CompactTrace::Encode(trace);
        const std::string path = testing::TempDir() +
                                 "pim_source_equiv_" + name +
                                 ".ctrace";
        std::string error;
        ASSERT_TRUE(compact.SaveTo(path, &error)) << error;
        auto mapped = MappedCompactTrace::Open(path, &error);
        ASSERT_TRUE(mapped.has_value()) << error;

        // In-RAM raw-trace baselines.
        MemoryHierarchy serial_ref(HostHierarchyConfig());
        trace.ReplayInto(serial_ref.Top());
        const PerfCounters serial_pc = serial_ref.Snapshot();
        const auto ref = runner.ReplayTrace(trace, configs);
        const StudyResult study_ref =
            runner.ProfileStudy(trace, study_spec);

        const AccessTraceSource raw_source(trace);
        const CompactTraceSource compact_source(compact);
        const TraceSource *const sources[] = {&raw_source,
                                              &compact_source,
                                              &*mapped};
        const char *const source_names[] = {"raw", "compact",
                                            "mapped"};
        for (std::size_t s = 0; s < 3; ++s) {
            const TraceSource &src = *sources[s];
            const std::string tag =
                std::string(name) + " via " + source_names[s];

            MemoryHierarchy mh(HostHierarchyConfig());
            src.ReplayInto(mh.Top());
            EXPECT_TRUE(SameCounters(serial_pc, mh.Snapshot()))
                << tag << " serial";

            const auto serial_points = runner.ReplayTrace(src, configs);
            const auto fanout = runner.ReplayTraceFanout(src, configs);
            const auto profiled = runner.ProfileLlcSweep(
                src, HostHierarchyConfig(), points);
            ASSERT_EQ(serial_points.size(), ref.size());
            ASSERT_EQ(fanout.size(), ref.size());
            ASSERT_EQ(profiled.size(), ref.size());
            for (std::size_t i = 0; i < ref.size(); ++i) {
                EXPECT_TRUE(SameCounters(ref[i], serial_points[i]))
                    << tag << " replay point " << i;
                EXPECT_TRUE(SameCounters(ref[i], fanout[i]))
                    << tag << " fanout point " << i;
                EXPECT_TRUE(SameCounters(ref[i], profiled[i]))
                    << tag << " profiler point " << i;
            }

            const StudyResult study =
                runner.ProfileStudy(src, study_spec);
            ASSERT_EQ(study.host.size(), study_ref.host.size());
            for (std::size_t i = 0; i < study_ref.host.size(); ++i) {
                ASSERT_EQ(study.host[i].size(),
                          study_ref.host[i].size());
                for (std::size_t j = 0; j < study_ref.host[i].size();
                     ++j) {
                    EXPECT_TRUE(SameCounters(
                        study.host[i][j].counters,
                        study_ref.host[i][j].counters))
                        << tag << " study l1 " << i << " llc " << j;
                }
            }
            ASSERT_EQ(study.pim.size(), study_ref.pim.size());
            for (std::size_t j = 0; j < study_ref.pim.size(); ++j) {
                EXPECT_TRUE(SameCounters(study.pim[j].counters,
                                         study_ref.pim[j].counters))
                    << tag << " study pim " << j;
            }

            for (const unsigned threads : {1u, 2u, 8u}) {
                const ShardedReplay sharded{SweepRunner(threads)};
                const PerfCounters pc =
                    sharded.Replay(src, HostHierarchyConfig());
                EXPECT_TRUE(SameCounters(serial_pc, pc))
                    << tag << " sharded x" << threads;
            }
        }
        std::remove(path.c_str());
    }
}

bool
SameProfile(const StackProfile &a, const StackProfile &b)
{
    return a.line_bytes == b.line_bytes && a.num_sets == b.num_sets &&
           a.write_allocate == b.write_allocate &&
           a.read_hist == b.read_hist && a.write_hist == b.write_hist &&
           a.read_cold == b.read_cold && a.write_cold == b.write_cold &&
           a.probes == b.probes && a.tracked == b.tracked &&
           a.writebacks == b.writebacks &&
           a.prefetcher == b.prefetcher &&
           a.prefetches_issued == b.prefetches_issued &&
           a.useful_hist == b.useful_hist &&
           a.useful_cold == b.useful_cold;
}

TEST(StackProfileMerge, EmptyIsIdentityInBothDirections)
{
    StackProfilerConfig cfg;
    cfg.line_bytes = 64;
    cfg.num_sets = 16;
    cfg.tracked_assocs = {2, 4};
    StackDistanceProfiler full(cfg);
    RandomTrace(0x31415, 8000).ReplayInto(full);
    const StackProfile reference = full.profile();

    const StackProfile empty = StackDistanceProfiler(cfg).profile();

    StackProfile a = reference;
    a.Merge(empty);
    EXPECT_TRUE(SameProfile(a, reference));

    StackProfile b = empty;
    b.Merge(reference);
    EXPECT_TRUE(SameProfile(b, reference));
}

TEST(StackProfileMerge, SelfMergeDoublesEveryCounter)
{
    StackProfilerConfig cfg;
    cfg.line_bytes = 64;
    cfg.num_sets = 16;
    cfg.tracked_assocs = {3};
    StackDistanceProfiler prof(cfg);
    RandomTrace(0x27182, 8000).ReplayInto(prof);
    const StackProfile one = prof.profile();

    StackProfile two = one;
    two.Merge(one);
    EXPECT_EQ(two.probes, 2 * one.probes);
    EXPECT_EQ(two.read_cold, 2 * one.read_cold);
    EXPECT_EQ(two.write_cold, 2 * one.write_cold);
    ASSERT_EQ(two.read_hist.size(), one.read_hist.size());
    for (std::size_t i = 0; i < one.read_hist.size(); ++i) {
        EXPECT_EQ(two.read_hist[i], 2 * one.read_hist[i]);
    }
    ASSERT_EQ(two.writebacks.size(), one.writebacks.size());
    for (std::size_t i = 0; i < one.writebacks.size(); ++i) {
        EXPECT_EQ(two.writebacks[i], 2 * one.writebacks[i]);
    }
}

TEST(StackProfileMerge, DisjointSetPartitionsSumToWholeTraceProfile)
{
    // Route line-granular probes by set parity into two profilers;
    // each set's ordered subsequence lands wholly in one of them, so
    // the merged snapshot must equal the whole-trace profile exactly.
    StackProfilerConfig cfg;
    cfg.line_bytes = 64;
    cfg.num_sets = 16;
    cfg.tracked_assocs = {1, 2, 8};

    Rng rng(0x6A09);
    AccessTrace whole, even, odd;
    for (int i = 0; i < 20000; ++i) {
        const Address addr = 0x100000 + rng.Range(0, 256 * 1024);
        const AccessType type = rng.Range(0, 99) < 40
                                    ? AccessType::kWrite
                                    : AccessType::kRead;
        // Single-byte probes so no access spans two lines (a span
        // would straddle the parity partition).
        whole.Append(addr, 1, type);
        const std::size_t set = (addr / 64) % 16;
        (set % 2 == 0 ? even : odd).Append(addr, 1, type);
    }

    StackDistanceProfiler ref(cfg), pe(cfg), po(cfg);
    whole.ReplayInto(ref);
    even.ReplayInto(pe);
    odd.ReplayInto(po);

    StackProfile merged = pe.profile();
    merged.Merge(po.profile());
    EXPECT_TRUE(SameProfile(merged, ref.profile()));
    // And the analytic readouts agree at every policy.
    for (const WritePolicy policy :
         {WritePolicy::kWriteBackAllocate,
          WritePolicy::kWriteThroughAllocate}) {
        for (const std::uint32_t assoc : {1u, 2u, 8u}) {
            EXPECT_TRUE(SameCacheStats(
                merged.StatsForAssociativity(assoc, policy),
                ref.profile().StatsForAssociativity(assoc, policy)));
        }
    }
}

/**
 * Tentpole acceptance for the sharded pass engine: across >= 40
 * random pass geometries (allocating and non-allocating, tracked and
 * untracked, nested-L1 and raw-trace), every supported shard/thread
 * count, and both resident and mmap-streamed sources, the merged
 * sharded snapshot must equal the serial pass bit for bit.  The
 * forced 8-block window pushes every run through the windowed
 * decode-ahead pipeline as well.
 */
TEST(ShardedPassProperty, RandomGeometriesBitIdenticalToSerial)
{
    const auto traces = KernelTraces();

    // Save each kernel stream once; the mmap side of every geometry
    // streams from these container files.
    struct Saved
    {
        std::string path;
        std::optional<MappedCompactTrace> mapped;
        CompactTrace compact;
    };
    std::vector<Saved> saved(traces.size());
    for (std::size_t t = 0; t < traces.size(); ++t) {
        saved[t].compact = CompactTrace::Encode(traces[t].second);
        saved[t].path = testing::TempDir() + "pim_shardpass_" +
                        traces[t].first + ".ctrace";
        std::string error;
        ASSERT_TRUE(saved[t].compact.SaveTo(saved[t].path, &error))
            << error;
        saved[t].mapped = MappedCompactTrace::Open(
            saved[t].path, &error,
            MappedCompactTrace::Verify::kLazy);
        ASSERT_TRUE(saved[t].mapped.has_value()) << error;
    }

    // Force small multi-block windows so the decode-ahead pipeline
    // runs even on these small traces (identity must hold regardless).
    ::setenv("PIM_SHARD_WINDOW", "8", 1);

    const CacheConfig host_l1 = HostHierarchyConfig().l1;
    Rng rng(0x5A4D);
    int sharded_runs = 0;
    for (int g = 0; g < 48; ++g) {
        StackProfilerConfig pcfg;
        pcfg.line_bytes = Bytes{16} << rng.Range(0, 3); // 16..128
        const std::size_t set_choices[] = {16, 64, 256, 1024};
        pcfg.num_sets = set_choices[rng.Range(0, 3)];
        const auto assoc =
            static_cast<std::uint32_t>(rng.Range(1, 16));
        pcfg.write_allocate = g % 3 != 2; // wb/wt share, wtna distinct
        if (g % 2 == 0) {
            pcfg.tracked_assocs = {assoc};
        }
        const bool nested = g % 4 < 2;
        const CacheConfig *l1 = nested ? &host_l1 : nullptr;

        const std::size_t t = static_cast<std::size_t>(g) %
                              traces.size();
        const AccessTrace &trace = traces[t].second;

        // Serial reference: one profiler, optional nested L1.
        StackDistanceProfiler ref(pcfg);
        CacheStats ref_l1;
        if (nested) {
            Cache l1_cache(host_l1, ref);
            trace.ReplayInto(l1_cache);
            ref_l1 = l1_cache.stats();
        } else {
            trace.ReplayInto(ref);
        }

        const AccessTraceSource resident(trace);
        const TraceSource *const sources[] = {&resident,
                                              &*saved[t].mapped};
        const char *const source_names[] = {"resident", "mapped"};
        const std::string what =
            std::string(traces[t].first) + " line=" +
            std::to_string(pcfg.line_bytes) + " sets=" +
            std::to_string(pcfg.num_sets) + " assoc=" +
            std::to_string(assoc) +
            (pcfg.write_allocate ? " alloc" : " noalloc") +
            (nested ? " nested" : " raw") +
            (pcfg.tracked_assocs.empty() ? " untracked" : " tracked");

        for (std::size_t s = 0; s < 2; ++s) {
            for (const unsigned threads : {1u, 2u, 8u}) {
                const ShardedReplay sharded{SweepRunner(threads)};
                ShardedPassResult pass;
                const bool ok = sharded.ProfilePass(
                    *sources[s], l1, {pcfg}, &pass);
                const std::string tag = what + " via " +
                                        source_names[s] + " x" +
                                        std::to_string(threads);
                if (threads == 1) {
                    // One worker never shards; callers run serially.
                    EXPECT_FALSE(ok) << tag;
                    continue;
                }
                ASSERT_TRUE(ok) << tag;
                EXPECT_GE(pass.shards, 2u) << tag;
                ASSERT_EQ(pass.profiles.size(), 1u) << tag;
                EXPECT_TRUE(SameProfile(pass.profiles[0],
                                        ref.profile()))
                    << tag;
                if (nested) {
                    EXPECT_TRUE(SameCacheStats(pass.l1, ref_l1))
                        << tag;
                }
                ++sharded_runs;
            }
        }
    }
    ::unsetenv("PIM_SHARD_WINDOW");
    // The suite is vacuous if the engine declined everything.
    EXPECT_GE(sharded_runs, 40 * 2 * 2);

    for (const Saved &s : saved) {
        std::remove(s.path.c_str());
    }
}

TEST(ShardedPass, PlanDeclinesUnshardableGeometries)
{
    const CacheConfig host_l1 = HostHierarchyConfig().l1;
    StackProfilerConfig ok;
    ok.line_bytes = 64;
    ok.num_sets = 64;

    const ShardedReplayPlan good =
        ShardedReplay::PlanForPass(&host_l1, {ok}, 8);
    EXPECT_TRUE(good.supported);
    EXPECT_GE(good.shards, 2u);

    StackProfilerConfig pf = ok;
    pf.model_prefetcher = true;
    const ShardedReplayPlan decline_pf =
        ShardedReplay::PlanForPass(&host_l1, {pf}, 8);
    EXPECT_FALSE(decline_pf.supported);
    EXPECT_NE(std::string(decline_pf.why).find("prefetcher"),
              std::string::npos);

    StackProfilerConfig odd_sets = ok;
    odd_sets.num_sets = 48;
    EXPECT_FALSE(ShardedReplay::PlanForPass(&host_l1, {odd_sets}, 8)
                     .supported);

    // A single-stack (fully associative) pass leaves no set bits to
    // stripe on.
    StackProfilerConfig one_set = ok;
    one_set.num_sets = 1;
    EXPECT_FALSE(ShardedReplay::PlanForPass(&host_l1, {one_set}, 8)
                     .supported);

    // One worker => fewer than two shards.
    EXPECT_FALSE(ShardedReplay::PlanForPass(&host_l1, {ok}, 1)
                     .supported);
    EXPECT_FALSE(ShardedReplay::PlanForPass(&host_l1, {}, 8)
                     .supported);
}

TEST(ShardedPass, DecodeAheadSurfacesLazyVerifyFailureOnCaller)
{
    // Corrupt a payload byte in the LAST block of a 7-block container:
    // with a forced 2-block window the corrupt block is decoded by the
    // decode-ahead producer thread, and its lazy-verify exception must
    // resurface on the calling thread as std::runtime_error.
    const AccessTrace raw =
        RandomTrace(0xC0DE, 6 * TraceSource::kBlockEntries + 123);
    const CompactTrace compact = CompactTrace::Encode(raw);
    const std::string good_path =
        testing::TempDir() + "pim_shardpass_good.ctrace";
    const std::string bad_path =
        testing::TempDir() + "pim_shardpass_bad.ctrace";
    std::string error;
    ASSERT_TRUE(compact.SaveTo(good_path, &error)) << error;
    {
        std::ifstream in(good_path, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        ASSERT_GT(bytes.size(), 16u);
        bytes[bytes.size() - 7] ^= 0x40;
        std::ofstream out(bad_path, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    auto lazy = MappedCompactTrace::Open(
        bad_path, &error, MappedCompactTrace::Verify::kLazy);
    ASSERT_TRUE(lazy.has_value()) << error;

    ::setenv("PIM_SHARD_WINDOW", "2", 1);
    const CacheConfig host_l1 = HostHierarchyConfig().l1;
    StackProfilerConfig pcfg;
    pcfg.line_bytes = 64;
    pcfg.num_sets = 64;
    pcfg.tracked_assocs = {4};
    const ShardedReplay sharded{SweepRunner(2)};
    ShardedPassResult pass;
    EXPECT_THROW(sharded.ProfilePass(*lazy, &host_l1, {pcfg}, &pass),
                 std::runtime_error);
    // The sharded full-replay pipeline must surface it too.  A mapped
    // trace runs its digest comparison exactly once (the watermark
    // latches), so reopen for an un-checked instance.
    auto lazy2 = MappedCompactTrace::Open(
        bad_path, &error, MappedCompactTrace::Verify::kLazy);
    ASSERT_TRUE(lazy2.has_value()) << error;
    EXPECT_THROW(sharded.Replay(*lazy2, HostHierarchyConfig()),
                 std::runtime_error);
    ::unsetenv("PIM_SHARD_WINDOW");

    std::remove(good_path.c_str());
    std::remove(bad_path.c_str());
}

TEST(ProfileStudy, PrefetcherAxisIsLayeredNotIntrusive)
{
    StudySpec spec = HostStudySpec();
    const AccessTrace trace = RandomTrace(0xF37C, 30000);
    const SweepRunner runner(2);
    const StudyResult plain = runner.ProfileStudy(trace, spec);
    spec.model_prefetcher = true;
    const StudyResult modeled = runner.ProfileStudy(trace, spec);
    for (std::size_t i = 0; i < plain.host.size(); ++i) {
        for (std::size_t j = 0; j < plain.host[i].size(); ++j) {
            // Identical counters, now with prefetch telemetry.
            EXPECT_TRUE(
                SameCounters(plain.host[i][j].counters,
                             modeled.host[i][j].counters));
            EXPECT_EQ(plain.host[i][j].prefetch.issued, 0u);
        }
    }
}

} // namespace
} // namespace pim::sim
