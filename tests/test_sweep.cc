/**
 * @file
 * Tests for the batched access-streaming layer and the parallel sweep
 * engine: packed TraceEntry round-trips, batched-vs-scalar replay
 * equivalence, SweepRunner determinism across thread counts, and the
 * overflow-edge behavior of Cache::Access / FlushRange.
 */

#include <gtest/gtest.h>

#include <limits>
#include <mutex>
#include <set>

#include "common/rng.h"
#include "sim/cache.h"
#include "sim/dram.h"
#include "sim/hierarchy.h"
#include "sim/sweep.h"
#include "sim/trace.h"

namespace pim::sim {
namespace {

bool
SameCacheStats(const CacheStats &a, const CacheStats &b)
{
    return a.read_hits == b.read_hits &&
           a.read_misses == b.read_misses &&
           a.write_hits == b.write_hits &&
           a.write_misses == b.write_misses &&
           a.writebacks == b.writebacks;
}

bool
SameDramStats(const DramStats &a, const DramStats &b)
{
    return a.read_requests == b.read_requests &&
           a.write_requests == b.write_requests &&
           a.read_bytes == b.read_bytes && a.write_bytes == b.write_bytes;
}

bool
SameCounters(const PerfCounters &a, const PerfCounters &b)
{
    return SameCacheStats(a.l1, b.l1) && SameCacheStats(a.llc, b.llc) &&
           a.has_llc == b.has_llc && SameDramStats(a.dram, b.dram);
}

TEST(TraceEntry, PacksIntoOneWord)
{
    static_assert(sizeof(TraceEntry) == 8);
    const TraceEntry read(0x1234'5678'9AULL, 4096, AccessType::kRead);
    EXPECT_EQ(read.addr(), 0x1234'5678'9AULL);
    EXPECT_EQ(read.bytes(), 4096u);
    EXPECT_EQ(read.type(), AccessType::kRead);

    const TraceEntry write(TraceEntry::kMaxAddr, TraceEntry::kMaxBytes,
                           AccessType::kWrite);
    EXPECT_EQ(write.addr(), TraceEntry::kMaxAddr);
    EXPECT_EQ(write.bytes(), TraceEntry::kMaxBytes);
    EXPECT_EQ(write.type(), AccessType::kWrite);
}

TEST(AccessTrace, AppendReservesGeometrically)
{
    AccessTrace trace;
    EXPECT_EQ(trace.capacity(), 0u);
    trace.Append(0x1000, 4, AccessType::kRead);
    const std::size_t first = trace.capacity();
    EXPECT_GE(first, std::size_t{1} << 16);
    for (std::size_t i = 0; i < first; ++i) {
        trace.Append(0x1000 + i, 4, AccessType::kRead);
    }
    EXPECT_GE(trace.capacity(), 2 * first);
    EXPECT_EQ(trace.size(), first + 1);
}

/** Build a randomized stream exercising reuse, strides, and straddles. */
AccessTrace
RandomTrace(std::uint64_t seed, std::size_t entries)
{
    Rng rng(seed);
    AccessTrace trace;
    // A few disjoint "buffers" so the stream mixes spatial locality
    // with conflict traffic.
    const Address bases[] = {0x10'0000, 0x40'0000, 0x80'0000};
    for (std::size_t i = 0; i < entries; ++i) {
        const Address base =
            bases[rng.Range(0, 2)] +
            static_cast<Address>(rng.Range(0, 64 * 1024));
        const Bytes bytes = static_cast<Bytes>(rng.Range(1, 256));
        const AccessType type = rng.Range(0, 99) < 30
                                    ? AccessType::kWrite
                                    : AccessType::kRead;
        trace.Append(base, bytes, type);
    }
    return trace;
}

class BatchedEquivalenceTest
    : public ::testing::TestWithParam<HierarchyConfig>
{
};

TEST_P(BatchedEquivalenceTest, BatchedReplayMatchesScalarExactly)
{
    const AccessTrace trace = RandomTrace(0x5EED, 20000);

    MemoryHierarchy scalar(GetParam());
    trace.ReplayIntoScalar(scalar.Top());

    MemoryHierarchy batched(GetParam());
    trace.ReplayInto(batched.Top());

    EXPECT_TRUE(SameCounters(scalar.Snapshot(), batched.Snapshot()));
}

std::string
HierarchyParamName(const ::testing::TestParamInfo<HierarchyConfig> &info)
{
    static const char *const kNames[] = {"Host", "HostStacked", "PimCore",
                                         "PimAccel"};
    return kNames[info.index];
}

INSTANTIATE_TEST_SUITE_P(
    Hierarchies, BatchedEquivalenceTest,
    ::testing::Values(HostHierarchyConfig(), HostStackedHierarchyConfig(),
                      PimCoreHierarchyConfig(), PimAccelHierarchyConfig()),
    HierarchyParamName);

TEST(BatchedEquivalence, NonPowerOfTwoSetCount)
{
    // 3 sets (192 lines / 64 ways... size 3*2*64): exercises the
    // modulo fallback of the shift/mask set indexing.
    const CacheConfig cfg{"np2", 3 * 2 * 64, 2, 64};
    const AccessTrace trace = RandomTrace(0xBEEF, 20000);

    DramCounter dram_a(Lpddr3Config());
    Cache scalar(cfg, dram_a);
    trace.ReplayIntoScalar(scalar);

    DramCounter dram_b(Lpddr3Config());
    Cache batched(cfg, dram_b);
    trace.ReplayInto(batched);

    EXPECT_TRUE(SameCacheStats(scalar.stats(), batched.stats()));
    EXPECT_TRUE(SameDramStats(dram_a.stats(), dram_b.stats()));
}

TEST(BatchedEquivalence, RecorderTeesBatchesIdentically)
{
    const AccessTrace trace = RandomTrace(0xF00D, 5000);

    // Scalar tee.
    AccessTrace scalar_copy;
    DramCounter dram_a(Lpddr3Config());
    TraceRecorder scalar_rec(scalar_copy, dram_a);
    trace.ReplayIntoScalar(scalar_rec);

    // Batched tee.
    AccessTrace batched_copy;
    DramCounter dram_b(Lpddr3Config());
    TraceRecorder batched_rec(batched_copy, dram_b);
    trace.ReplayInto(batched_rec);

    ASSERT_EQ(scalar_copy.size(), trace.size());
    ASSERT_EQ(batched_copy.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(scalar_copy[i].word, batched_copy[i].word);
    }
    EXPECT_TRUE(SameDramStats(dram_a.stats(), dram_b.stats()));
}

TEST(SweepRunner, ResultsIndependentOfThreadCount)
{
    const AccessTrace trace = RandomTrace(0xABCD, 20000);
    std::vector<HierarchyConfig> configs;
    for (const Bytes llc : {512_KiB, 1_MiB, 2_MiB, 4_MiB}) {
        HierarchyConfig hier = HostHierarchyConfig();
        hier.llc->size = llc;
        configs.push_back(hier);
    }
    configs.push_back(PimCoreHierarchyConfig());
    configs.push_back(PimAccelHierarchyConfig());

    const auto serial = SweepRunner(1).ReplayTrace(trace, configs);
    for (const unsigned threads : {2u, 4u, 8u}) {
        const auto parallel =
            SweepRunner(threads).ReplayTrace(trace, configs);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_TRUE(SameCounters(serial[i], parallel[i]))
                << "config " << i << " with " << threads << " threads";
        }
    }
}

TEST(SweepRunner, ForEachRunsEveryJobExactlyOnce)
{
    const std::size_t jobs = 103; // not a multiple of any pool size
    std::vector<int> times_run(jobs, 0);
    std::mutex mu;
    SweepRunner(4).ForEach(jobs, [&](std::size_t i) {
        const std::lock_guard<std::mutex> lock(mu);
        ++times_run[i];
    });
    for (std::size_t i = 0; i < jobs; ++i) {
        EXPECT_EQ(times_run[i], 1) << "job " << i;
    }
}

TEST(SweepRunner, ZeroJobsIsNoop)
{
    SweepRunner(4).ForEach(0, [](std::size_t) { FAIL(); });
}

TEST(CacheOverflowEdge, AccessEndingAtTopOfAddressSpace)
{
    constexpr Address kTop = std::numeric_limits<Address>::max();
    DramCounter dram(Lpddr3Config());
    Cache cache(CacheConfig{"edge", 1_KiB, 2, 64}, dram);

    // [2^64 - 64, 2^64): one full line; addr + bytes wraps to 0.
    cache.Access(kTop - 63, 64, AccessType::kRead);
    EXPECT_EQ(cache.stats().read_misses, 1u);
    EXPECT_TRUE(cache.Contains(kTop));

    // Unaligned tail: [2^64 - 10, 2^64) stays within the last line.
    cache.Access(kTop - 9, 10, AccessType::kWrite);
    EXPECT_EQ(cache.stats().write_hits, 1u);

    // Straddling the last two lines.
    cache.Access(kTop - 127, 128, AccessType::kRead);
    EXPECT_EQ(cache.stats().read_hits, 1u);  // top line still resident
    EXPECT_EQ(cache.stats().read_misses, 2u); // second-to-last line
}

TEST(CacheOverflowEdge, FlushRangeEndingAtTopOfAddressSpace)
{
    constexpr Address kTop = std::numeric_limits<Address>::max();
    DramCounter dram(Lpddr3Config());
    Cache cache(CacheConfig{"edge", 1_KiB, 2, 64}, dram);

    cache.Access(kTop - 127, 128, AccessType::kWrite); // last two lines
    EXPECT_EQ(cache.stats().write_misses, 2u);

    const auto flushed = cache.FlushRange(kTop - 100, 101);
    EXPECT_EQ(flushed, 2u);
    EXPECT_EQ(cache.stats().writebacks, 2u);
    EXPECT_FALSE(cache.Contains(kTop));
    EXPECT_FALSE(cache.Contains(kTop - 64));
}

TEST(CacheOverflowEdge, UnalignedFlushRangeFlushesOverlappedLinesOnly)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(CacheConfig{"edge", 1_KiB, 2, 64}, dram);

    cache.Access(0x1000, 256, AccessType::kWrite); // lines 0x1000..0x10C0
    // [0x1035, 0x1075) overlaps exactly lines 0x1000 and 0x1040.
    EXPECT_EQ(cache.FlushRange(0x1035, 0x40), 2u);
    EXPECT_TRUE(cache.Contains(0x1080));
    EXPECT_TRUE(cache.Contains(0x10C0));
    EXPECT_FALSE(cache.Contains(0x1040));
}

TEST(CacheCoalescing, RepeatedSameLineProbesCountEveryHit)
{
    DramCounter dram(Lpddr3Config());
    Cache cache(CacheConfig{"co", 1_KiB, 2, 64}, dram);

    // Sequential 4-byte accesses within one line: 1 miss + 15 hits,
    // exactly as the unfiltered path counts them.
    for (Address a = 0x2000; a < 0x2040; a += 4) {
        cache.Access(a, 4, AccessType::kRead);
    }
    EXPECT_EQ(cache.stats().read_misses, 1u);
    EXPECT_EQ(cache.stats().read_hits, 15u);

    // A write through the filter path must still set the dirty bit.
    cache.Access(0x2004, 4, AccessType::kWrite);
    EXPECT_EQ(cache.stats().write_hits, 1u);
    dram.ResetStats();
    cache.FlushAll();
    EXPECT_EQ(dram.stats().write_bytes, 64u);
}

TEST(CacheCoalescing, FilterSurvivesEvictionOfTrackedLine)
{
    DramCounter dram(Lpddr3Config());
    // One set, 2 ways: the tracked line can be evicted underneath
    // the filter.
    Cache cache(CacheConfig{"evict", 128, 2, 64}, dram);

    cache.Access(0x0000, 4, AccessType::kWrite); // A (tracked, dirty)
    cache.Access(0x1000, 4, AccessType::kRead);  // B
    cache.Access(0x2000, 4, AccessType::kRead);  // C evicts A (LRU)
    EXPECT_EQ(cache.stats().writebacks, 1u);

    // A was evicted: this must be a miss, not a stale filter hit.
    cache.Access(0x0000, 4, AccessType::kRead);
    EXPECT_EQ(cache.stats().read_misses, 3u);
    EXPECT_EQ(cache.stats().read_hits, 0u);
}

} // namespace
} // namespace pim::sim
