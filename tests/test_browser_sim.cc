/**
 * @file
 * Integration tests for the browser interaction drivers: page scrolling
 * (Figures 1/2) and tab switching (Figure 4).
 */

#include <gtest/gtest.h>

#include "workloads/browser/scroll_sim.h"
#include "workloads/browser/tab_switch.h"
#include "workloads/browser/webpage.h"

namespace pim::browser {
namespace {

TEST(Webpage, SixProfilesMatchThePaper)
{
    const auto profiles = AllPageProfiles();
    ASSERT_EQ(profiles.size(), 6u);
    EXPECT_EQ(profiles[0].name, "GoogleDocs");
    EXPECT_EQ(profiles[5].name, "Animation");
    for (const auto &p : profiles) {
        EXPECT_GT(p.scroll_frames, 0);
        EXPECT_GT(p.new_content_per_frame, 0.0);
        EXPECT_NEAR(p.text_fraction + p.image_fraction + p.fill_fraction,
                    1.0, 0.05)
            << p.name;
    }
}

TEST(ScrollSim, BreakdownIsComplete)
{
    const ScrollResult r = SimulateScroll(GoogleDocsProfile());
    EXPECT_GT(r.TotalEnergy(), 0.0);
    EXPECT_GT(r.TotalTime(), 0.0);
    EXPECT_GT(r.tiling_energy.Total(), 0.0);
    EXPECT_GT(r.blitting_energy.Total(), 0.0);
    EXPECT_GT(r.other_energy.Total(), 0.0);
    // Fractions sum to one by construction.
    EXPECT_NEAR(r.TilingFraction() + r.BlittingFraction() +
                    r.other_energy.Total() / r.TotalEnergy(),
                1.0, 1e-9);
}

TEST(ScrollSim, KernelsAreSignificantButNotEverything)
{
    // Paper Figure 1: tiling + blitting average 41.9% of scroll energy.
    double kernel_fraction_sum = 0.0;
    for (const auto &profile : AllPageProfiles()) {
        const ScrollResult r = SimulateScroll(profile);
        const double kernels =
            r.TilingFraction() + r.BlittingFraction();
        EXPECT_GT(kernels, 0.15) << profile.name;
        EXPECT_LT(kernels, 0.75) << profile.name;
        kernel_fraction_sum += kernels;
    }
    const double avg = kernel_fraction_sum / 6.0;
    EXPECT_GT(avg, 0.30);
    EXPECT_LT(avg, 0.55);
}

TEST(ScrollSim, AnimationTilesMoreThanDocs)
{
    // The animation-heavy page repaints nearly the full screen per
    // frame, so its tiling share must exceed the text document's.
    const ScrollResult docs = SimulateScroll(GoogleDocsProfile());
    const ScrollResult anim = SimulateScroll(AnimationProfile());
    EXPECT_GT(anim.TilingFraction(), docs.TilingFraction());
}

TEST(ScrollSim, WholeInteractionIsMemoryIntensive)
{
    // Paper Section 4.2.1: pages average MPKI ~21.
    const ScrollResult r = SimulateScroll(GoogleDocsProfile());
    EXPECT_GT(r.Mpki(), 5.0);
}

TEST(ScrollSim, OffloadingKernelsReducesTotalEnergy)
{
    const ScrollResult host = SimulateScroll(GoogleDocsProfile(), false);
    const ScrollResult pim = SimulateScroll(GoogleDocsProfile(), true);
    EXPECT_LT(pim.tiling_energy.Total() + pim.blitting_energy.Total(),
              host.tiling_energy.Total() + host.blitting_energy.Total());
    EXPECT_LT(pim.TotalEnergy(), host.TotalEnergy());
}

TabSwitchConfig
SmallTabConfig()
{
    TabSwitchConfig cfg;
    cfg.tabs = 8;
    cfg.min_tab_bytes = 32_KiB;
    cfg.max_tab_bytes = 64_KiB;
    cfg.memory_budget = 128_KiB;
    cfg.passes = 2;
    return cfg;
}

TEST(TabSwitch, MemoryPressureForcesSwapping)
{
    const TabSwitchResult r = SimulateTabSwitching(SmallTabConfig());
    EXPECT_GT(r.total_swapped_out, 0u);
    EXPECT_GT(r.total_swapped_in, 0u);
    // Second pass revisits compressed tabs, so everything swapped in
    // was previously swapped out.
    EXPECT_LE(r.total_swapped_in, r.total_swapped_out);
    EXPECT_GT(r.compression_ratio, 1.5);
    EXPECT_LT(r.compression_ratio, 8.0);
}

TEST(TabSwitch, SeriesCoverTheRun)
{
    const TabSwitchConfig cfg = SmallTabConfig();
    const TabSwitchResult r = SimulateTabSwitching(cfg);
    const auto expected_bins = static_cast<std::size_t>(
                                   cfg.tabs * cfg.passes *
                                   cfg.dwell_seconds) +
                               1;
    EXPECT_EQ(r.swap_out_mb_per_s.size(), expected_bins);
    EXPECT_EQ(r.swap_in_mb_per_s.size(), expected_bins);

    double out_total = 0.0;
    for (const double mb : r.swap_out_mb_per_s) {
        out_total += mb;
    }
    EXPECT_NEAR(out_total, r.total_swapped_out / 1.0e6, 0.01);
}

TEST(TabSwitch, CompressionIsMinorityOfEnergyAndTime)
{
    // Paper Section 4.3.1: compression contributes 18.1% of energy and
    // 14.2% of execution time during tab switching.
    const TabSwitchResult r = SimulateTabSwitching(SmallTabConfig());
    EXPECT_GT(r.CompressionEnergyFraction(), 0.03);
    EXPECT_LT(r.CompressionEnergyFraction(), 0.50);
    EXPECT_GT(r.CompressionTimeFraction(), 0.03);
    EXPECT_LT(r.CompressionTimeFraction(), 0.50);
}

TEST(TabSwitch, PimCompressionCutsCompressionEnergy)
{
    const TabSwitchResult cpu = SimulateTabSwitching(
        SmallTabConfig(), core::ExecutionTarget::kCpuOnly);
    const TabSwitchResult pim = SimulateTabSwitching(
        SmallTabConfig(), core::ExecutionTarget::kPimCore);
    EXPECT_LT(pim.compression_energy.Total(),
              cpu.compression_energy.Total());
}

} // namespace
} // namespace pim::browser
