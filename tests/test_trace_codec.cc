/**
 * @file
 * Tests for the compact block-encoded trace format: exact round-trips
 * (including packing-limit boundary entries), run-length behavior on
 * strided streams, block independence, the recorder tee, and replay
 * equivalence against the raw trace through a full hierarchy.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/execution_context.h"
#include "sim/hierarchy.h"
#include "sim/simd.h"
#include "sim/trace.h"
#include "sim/trace_codec.h"
#include "telemetry/span_tracer.h"

namespace pim::sim {
namespace {

AccessTrace
RandomTrace(std::uint64_t seed, std::size_t entries)
{
    Rng rng(seed);
    AccessTrace trace;
    const Address bases[] = {0x10'0000, 0x40'0000, 0x80'0000};
    for (std::size_t i = 0; i < entries; ++i) {
        const Address base =
            bases[rng.Range(0, 2)] +
            static_cast<Address>(rng.Range(0, 64 * 1024));
        const Bytes bytes = static_cast<Bytes>(rng.Range(1, 256));
        const AccessType type = rng.Range(0, 99) < 30
                                    ? AccessType::kWrite
                                    : AccessType::kRead;
        trace.Append(base, bytes, type);
    }
    return trace;
}

void
ExpectSameEntries(const AccessTrace &a, const AccessTrace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].addr(), b[i].addr()) << "entry " << i;
        ASSERT_EQ(a[i].bytes(), b[i].bytes()) << "entry " << i;
        ASSERT_EQ(a[i].type(), b[i].type()) << "entry " << i;
    }
}

TEST(TraceCodec, RoundTripsRandomMultiBlockTrace)
{
    // > 2 full blocks so cross-block context resets are exercised.
    const AccessTrace raw =
        RandomTrace(0xC0DEC, 2 * CompactTrace::kBlockEntries + 1234);
    const CompactTrace compact = CompactTrace::Encode(raw);

    EXPECT_EQ(compact.size(), raw.size());
    EXPECT_EQ(compact.BlockCount(), 3u);
    EXPECT_EQ(compact.read_bytes(), raw.read_bytes());
    EXPECT_EQ(compact.write_bytes(), raw.write_bytes());
    EXPECT_EQ(compact.TotalBytes(), raw.TotalBytes());
    ExpectSameEntries(raw, compact.Decode());
}

TEST(TraceCodec, RoundTripsPackingBoundaryEntries)
{
    // The extremes the packed TraceEntry word can represent: top of
    // the 40-bit address space, the 23-bit size limit, zero-size and
    // zero-address probes, and huge backward deltas between them.
    AccessTrace raw;
    raw.Append(TraceEntry::kMaxAddr, 1, AccessType::kRead);
    raw.Append(0, TraceEntry::kMaxBytes, AccessType::kWrite);
    raw.Append(TraceEntry::kMaxAddr - TraceEntry::kMaxBytes + 1,
               TraceEntry::kMaxBytes, AccessType::kRead);
    raw.Append(0, 0, AccessType::kRead);
    raw.Append(TraceEntry::kMaxAddr, 0, AccessType::kWrite);
    for (int i = 0; i < 100; ++i) {
        raw.Append(i % 2 == 0 ? 0 : TraceEntry::kMaxAddr, 14,
                   i % 3 == 0 ? AccessType::kWrite : AccessType::kRead);
        raw.Append(static_cast<Address>(i) * 4096, 15,
                   AccessType::kRead);
    }

    const CompactTrace compact = CompactTrace::Encode(raw);
    EXPECT_EQ(compact.TotalBytes(), raw.TotalBytes());
    ExpectSameEntries(raw, compact.Decode());
}

TEST(TraceCodec, InterleavedStridedStreamsCostOneByteEach)
{
    // Interleaved read/write streams, each constant-stride and
    // constant-size — the texture-tiler shape.  The type alternation
    // blocks run formation, but per-type contexts keep both delta and
    // size predicted, so each entry is a single literal header byte.
    AccessTrace raw;
    for (std::size_t i = 0; i < 20000; ++i) {
        raw.Append(0x100000 + i * 128, 128, AccessType::kRead);
        raw.Append(0x900000 + i * 64, 64, AccessType::kWrite);
    }
    const CompactTrace compact = CompactTrace::Encode(raw);

    ExpectSameEntries(raw, compact.Decode());
    // Acceptance bound is <= 4.0 B/entry (half of raw); ~1 B/entry
    // here (plus per-block literal/index overhead).
    EXPECT_LE(compact.BytesPerEntry(), 1.1);
    EXPECT_GE(compact.CompressionRatio(), 7.0);
}

TEST(TraceCodec, LongRunsUseTheVarintCountPath)
{
    // One literal + one run token of count > 63 per block.
    AccessTrace raw;
    for (std::size_t i = 0; i < 5000; ++i) {
        raw.Append(0x4000 + i * 64, 64, AccessType::kRead);
    }
    const CompactTrace compact = CompactTrace::Encode(raw);
    ExpectSameEntries(raw, compact.Decode());
    // Two blocks, each a handful of literal/run tokens: 5000 entries
    // in well under 100 encoded bytes.
    EXPECT_LT(compact.SizeBytes(), 100u);
}

TEST(TraceCodec, EmptyTraceIsEmpty)
{
    const CompactTrace compact = CompactTrace::Encode(AccessTrace{});
    EXPECT_TRUE(compact.empty());
    EXPECT_EQ(compact.size(), 0u);
    EXPECT_EQ(compact.BlockCount(), 0u);
    EXPECT_EQ(compact.TotalBytes(), 0u);
    EXPECT_TRUE(compact.Decode().empty());

    MemoryHierarchy mh(HostHierarchyConfig());
    compact.ReplayInto(mh.Top()); // must be a no-op, not a crash
    EXPECT_EQ(mh.Snapshot().dram.TotalBytes(), 0u);
}

TEST(TraceCodec, BlocksDecodeIndependently)
{
    const AccessTrace raw =
        RandomTrace(0xB10C, 3 * CompactTrace::kBlockEntries + 7);
    const CompactTrace compact = CompactTrace::Encode(raw);
    ASSERT_EQ(compact.BlockCount(), 4u);

    // Decode blocks out of order; concatenating in index order must
    // reproduce the stream exactly.
    std::vector<TraceEntry> buffer(CompactTrace::kBlockEntries);
    AccessTrace rebuilt;
    std::size_t counts[4] = {};
    for (const std::size_t b : {3u, 1u, 0u, 2u}) {
        counts[b] = compact.DecodeBlock(b, buffer.data());
    }
    for (std::size_t b = 0; b < compact.BlockCount(); ++b) {
        const std::size_t n = compact.DecodeBlock(b, buffer.data());
        ASSERT_EQ(n, counts[b]);
        rebuilt.Append(buffer.data(), n);
    }
    ExpectSameEntries(raw, rebuilt);
}

TEST(TraceCodec, ReplayMatchesRawTraceCounters)
{
    const AccessTrace raw = RandomTrace(0x5EED, 30000);
    const CompactTrace compact = CompactTrace::Encode(raw);

    MemoryHierarchy ref(HostHierarchyConfig());
    raw.ReplayInto(ref.Top());
    MemoryHierarchy via(HostHierarchyConfig());
    compact.ReplayInto(via.Top());

    const PerfCounters a = ref.Snapshot();
    const PerfCounters b = via.Snapshot();
    EXPECT_EQ(a.l1.read_hits, b.l1.read_hits);
    EXPECT_EQ(a.l1.read_misses, b.l1.read_misses);
    EXPECT_EQ(a.l1.write_hits, b.l1.write_hits);
    EXPECT_EQ(a.l1.write_misses, b.l1.write_misses);
    EXPECT_EQ(a.l1.writebacks, b.l1.writebacks);
    EXPECT_EQ(a.llc.read_misses, b.llc.read_misses);
    EXPECT_EQ(a.llc.writebacks, b.llc.writebacks);
    EXPECT_EQ(a.dram.read_bytes, b.dram.read_bytes);
    EXPECT_EQ(a.dram.write_bytes, b.dram.write_bytes);
}

TEST(TraceCodec, RecorderTeeMatchesPostHocEncode)
{
    // Recording straight into the compact form must capture the exact
    // stream a raw recorder sees, and the level below must observe the
    // same traffic either way.
    const AccessTrace stimulus = RandomTrace(0x7EE, 10000);

    MemoryHierarchy raw_mh(HostHierarchyConfig());
    AccessTrace raw;
    TraceRecorder raw_rec(raw, raw_mh.Top());
    stimulus.ReplayInto(raw_rec);

    MemoryHierarchy compact_mh(HostHierarchyConfig());
    CompactTraceRecorder compact_rec(compact_mh.Top());
    stimulus.ReplayInto(compact_rec);
    const CompactTrace compact = compact_rec.Finish();

    ExpectSameEntries(raw, compact.Decode());
    EXPECT_EQ(raw_mh.Snapshot().dram.TotalBytes(),
              compact_mh.Snapshot().dram.TotalBytes());

    const CompactTrace posthoc = CompactTrace::Encode(raw);
    EXPECT_EQ(posthoc.SizeBytes(), compact.SizeBytes());
}

TEST(TraceCodec, ExecutionContextCompactRecordingRoundTrips)
{
    // The two recording modes on a live ExecutionContext capture the
    // same stream for the same deterministic access pattern.
    const auto drive = [](core::ExecutionContext &ctx) {
        for (std::size_t i = 0; i < 4000; ++i) {
            ctx.mem().Read(0x2000 + (i % 128) * 64, 64);
            if (i % 3 == 0) {
                ctx.mem().Write(0x80000 + i * 64, 32);
            }
        }
    };

    AccessTrace raw;
    {
        core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
        ctx.AttachTrace(raw);
        drive(ctx);
        ctx.DetachTrace();
    }
    CompactTrace compact;
    {
        core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
        ctx.AttachCompactTrace();
        drive(ctx);
        compact = ctx.DetachCompactTrace();
    }
    ExpectSameEntries(raw, compact.Decode());
}

TEST(TraceCodec, DetachEmitsCompressionCounters)
{
    // With tracing on, both detach paths report the compact footprint
    // beside the raw one.
    auto &tracer = telemetry::Tracer::Global();
    tracer.SetEnabled(true);
    tracer.Clear();
    {
        core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
        AccessTrace raw;
        ctx.AttachTrace(raw);
        for (std::size_t i = 0; i < 256; ++i) {
            ctx.mem().Read(0x1000 + i * 64, 64);
        }
        ctx.DetachTrace();
    }
    {
        core::ExecutionContext ctx(core::ExecutionTarget::kCpuOnly);
        ctx.AttachCompactTrace();
        for (std::size_t i = 0; i < 256; ++i) {
            ctx.mem().Read(0x1000 + i * 64, 64);
        }
        (void)ctx.DetachCompactTrace();
    }
    tracer.SetEnabled(false);

    int bytes = 0, compact_bytes = 0, ratio = 0;
    for (const telemetry::TraceEvent &e : tracer.Events()) {
        if (e.phase != 'C') {
            continue;
        }
        if (e.name == "trace.bytes") {
            ++bytes;
        } else if (e.name == "trace.compact_bytes") {
            ++compact_bytes;
            EXPECT_GT(e.value, 0.0);
        } else if (e.name == "trace.compression_ratio") {
            ++ratio;
            EXPECT_GT(e.value, 1.0);
        }
    }
    tracer.Clear();
    EXPECT_EQ(bytes, 2);
    EXPECT_EQ(compact_bytes, 2);
    EXPECT_EQ(ratio, 2);
}

TEST(TraceCodec, EncoderResetsAfterFinish)
{
    CompactTraceEncoder enc;
    enc.Append(0x1000, 64, AccessType::kRead);
    enc.Append(0x1040, 64, AccessType::kRead);
    const CompactTrace first = enc.Finish();
    EXPECT_EQ(first.size(), 2u);

    // The drained encoder starts a fresh, independent stream.
    EXPECT_EQ(enc.size(), 0u);
    enc.Append(0x9000, 32, AccessType::kWrite);
    const CompactTrace second = enc.Finish();
    EXPECT_EQ(second.size(), 1u);
    EXPECT_EQ(second.write_bytes(), 32u);
    const AccessTrace decoded = second.Decode();
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(decoded[0].addr(), 0x9000u);
}

TEST(TraceCodec, VectorizedRunExpansionMatchesScalarByteForByte)
{
    // Run tokens decode through a strided word expander with a vector
    // path (sim/simd.h).  Build a stream dominated by long runs of
    // varied strides — forward, backward, zero — plus literal breaks,
    // and require the decoded entry words to be identical with the
    // kill-switch in both positions.
    CompactTraceEncoder enc;
    Address addr = 0x1000;
    for (const std::int64_t stride : {64, -64, 0, 4, 128, -4}) {
        for (int i = 0; i < 300; ++i) {
            enc.Append(addr, 16, AccessType::kRead);
            addr += static_cast<Address>(stride);
        }
        enc.Append(addr + 0x100000, 4, AccessType::kWrite); // break
        addr += 0x5000;
    }
    // A run crossing a block boundary (blocks are 4096 entries).
    for (int i = 0; i < 6000; ++i) {
        enc.Append(addr, 64, AccessType::kWrite);
        addr += 64;
    }
    const CompactTrace compact = enc.Finish();

    AccessTrace decoded[2];
    for (const bool simd_on : {false, true}) {
        const bool prev = simd::Enabled();
        simd::SetEnabled(simd_on);
        decoded[simd_on ? 1 : 0] = compact.Decode();
        simd::SetEnabled(prev);
    }
    ASSERT_EQ(decoded[0].size(), decoded[1].size());
    ASSERT_EQ(decoded[0].size(), compact.size());
    for (std::size_t i = 0; i < decoded[0].size(); ++i) {
        ASSERT_EQ(decoded[0].data()[i].word, decoded[1].data()[i].word)
            << "entry " << i;
    }
}

std::string
ReadFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
WriteFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

TEST(TraceCodecFile, SaveLoadRoundTripsBitIdentically)
{
    const AccessTrace raw =
        RandomTrace(0xF17E, 2 * CompactTrace::kBlockEntries + 99);
    const CompactTrace original = CompactTrace::Encode(raw);
    const std::string path =
        testing::TempDir() + "pim_ctrace_roundtrip.ctrace";

    std::string error;
    ASSERT_TRUE(original.SaveTo(path, &error)) << error;
    // Atomicity contract: no .tmp litter once SaveTo returns.
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());

    auto loaded = CompactTrace::LoadFrom(path, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(loaded->size(), original.size());
    EXPECT_EQ(loaded->read_bytes(), original.read_bytes());
    EXPECT_EQ(loaded->write_bytes(), original.write_bytes());
    EXPECT_EQ(loaded->SizeBytes(), original.SizeBytes());
    EXPECT_EQ(loaded->Digest(), original.Digest());
    ExpectSameEntries(raw, loaded->Decode());

    // Re-saving the loaded trace must produce the same file bytes —
    // the disk form is canonical, not merely equivalent.
    const std::string path2 =
        testing::TempDir() + "pim_ctrace_roundtrip2.ctrace";
    ASSERT_TRUE(loaded->SaveTo(path2, &error)) << error;
    EXPECT_EQ(ReadFileBytes(path), ReadFileBytes(path2));
    std::remove(path.c_str());
    std::remove(path2.c_str());
}

TEST(TraceCodecFile, EmptyTraceRoundTrips)
{
    const CompactTrace empty = CompactTrace::Encode(AccessTrace{});
    const std::string path =
        testing::TempDir() + "pim_ctrace_empty.ctrace";
    std::string error;
    ASSERT_TRUE(empty.SaveTo(path, &error)) << error;
    const auto loaded = CompactTrace::LoadFrom(path, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_TRUE(loaded->empty());
    EXPECT_EQ(loaded->Digest(), empty.Digest());
    std::remove(path.c_str());
}

TEST(TraceCodecFile, RejectsCorruptTruncatedAndAlienFiles)
{
    const AccessTrace raw = RandomTrace(0xBAD, 9000);
    const CompactTrace original = CompactTrace::Encode(raw);
    const std::string good_path =
        testing::TempDir() + "pim_ctrace_good.ctrace";
    std::string error;
    ASSERT_TRUE(original.SaveTo(good_path, &error)) << error;
    const std::string good = ReadFileBytes(good_path);
    const std::string bad_path =
        testing::TempDir() + "pim_ctrace_bad.ctrace";

    // A flipped payload byte must fail the digest check.
    std::string corrupt = good;
    corrupt[corrupt.size() - 7] ^= 0x40;
    WriteFileBytes(bad_path, corrupt);
    EXPECT_FALSE(CompactTrace::LoadFrom(bad_path, &error).has_value());
    EXPECT_NE(error.find("digest"), std::string::npos) << error;

    // Truncations at every structural boundary: inside the magic,
    // inside the header, inside the block table, inside the payload.
    for (const std::size_t keep :
         {std::size_t{4}, std::size_t{20}, std::size_t{60},
          good.size() - 1}) {
        ASSERT_LT(keep, good.size());
        WriteFileBytes(bad_path, good.substr(0, keep));
        EXPECT_FALSE(
            CompactTrace::LoadFrom(bad_path, &error).has_value())
            << "kept " << keep << " bytes";
    }

    // Trailing garbage is rejected too — the container is the whole
    // file, so extra bytes mean the file is not what was saved.
    WriteFileBytes(bad_path, good + "x");
    EXPECT_FALSE(CompactTrace::LoadFrom(bad_path, &error).has_value());

    // Wrong magic (an alien file of plausible length).
    std::string alien = good;
    alien[0] = 'X';
    WriteFileBytes(bad_path, alien);
    EXPECT_FALSE(CompactTrace::LoadFrom(bad_path, &error).has_value());
    EXPECT_NE(error.find("not a compact-trace"), std::string::npos)
        << error;

    // A missing file is an error, not a crash.
    EXPECT_FALSE(CompactTrace::LoadFrom(
                     testing::TempDir() + "pim_ctrace_missing.ctrace",
                     &error)
                     .has_value());

    std::remove(good_path.c_str());
    std::remove(bad_path.c_str());
}

TEST(MappedTrace, StreamsBitIdenticallyToTheInRamForms)
{
    const AccessTrace raw =
        RandomTrace(0x33AA, 3 * CompactTrace::kBlockEntries + 500);
    const CompactTrace compact = CompactTrace::Encode(raw);
    const std::string path =
        testing::TempDir() + "pim_ctrace_mapped.ctrace";
    std::string error;
    ASSERT_TRUE(compact.SaveTo(path, &error)) << error;

    for (const auto verify : {MappedCompactTrace::Verify::kEager,
                              MappedCompactTrace::Verify::kLazy,
                              MappedCompactTrace::Verify::kNone}) {
        auto mapped = MappedCompactTrace::Open(path, &error, verify);
        ASSERT_TRUE(mapped.has_value()) << error;
        EXPECT_FALSE(mapped->resident());
        EXPECT_EQ(mapped->entries(), compact.size());
        EXPECT_EQ(mapped->read_bytes(), compact.read_bytes());
        EXPECT_EQ(mapped->write_bytes(), compact.write_bytes());
        EXPECT_EQ(mapped->BlockCount(), compact.BlockCount());
        EXPECT_EQ(mapped->header_digest(), compact.Digest());

        // Block-by-block decode is byte-identical to the in-RAM
        // decoder's output.
        AccessTrace rebuilt;
        alignas(64) TraceEntry buffer[TraceSource::kBlockEntries];
        for (std::size_t b = 0; b < mapped->BlockCount(); ++b) {
            const TraceSource::Span span = mapped->Block(b, buffer);
            rebuilt.Append(span.data, span.count);
        }
        ExpectSameEntries(raw, rebuilt);

        // Replay counters match the raw in-RAM replay exactly.
        MemoryHierarchy ref(HostHierarchyConfig());
        raw.ReplayInto(ref.Top());
        MemoryHierarchy via(HostHierarchyConfig());
        mapped->ReplayInto(via.Top());
        EXPECT_EQ(ref.Snapshot().dram.TotalBytes(),
                  via.Snapshot().dram.TotalBytes());
        EXPECT_EQ(ref.Snapshot().llc.Misses(),
                  via.Snapshot().llc.Misses());
    }
    std::remove(path.c_str());
}

TEST(MappedTrace, MoveTransfersTheMapping)
{
    const AccessTrace raw = RandomTrace(0x440E, 6000);
    const CompactTrace compact = CompactTrace::Encode(raw);
    const std::string path =
        testing::TempDir() + "pim_ctrace_mapped_move.ctrace";
    std::string error;
    ASSERT_TRUE(compact.SaveTo(path, &error)) << error;

    auto opened = MappedCompactTrace::Open(path, &error);
    ASSERT_TRUE(opened.has_value()) << error;
    MappedCompactTrace moved = std::move(*opened);
    AccessTrace rebuilt;
    alignas(64) TraceEntry buffer[TraceSource::kBlockEntries];
    for (std::size_t b = 0; b < moved.BlockCount(); ++b) {
        const TraceSource::Span span = moved.Block(b, buffer);
        rebuilt.Append(span.data, span.count);
    }
    ExpectSameEntries(raw, rebuilt);
    std::remove(path.c_str());
}

TEST(MappedTrace, EmptyContainerMapsAndReplaysAsANoOp)
{
    const CompactTrace empty = CompactTrace::Encode(AccessTrace{});
    const std::string path =
        testing::TempDir() + "pim_ctrace_mapped_empty.ctrace";
    std::string error;
    ASSERT_TRUE(empty.SaveTo(path, &error)) << error;
    auto mapped = MappedCompactTrace::Open(path, &error);
    ASSERT_TRUE(mapped.has_value()) << error;
    EXPECT_TRUE(mapped->empty());
    EXPECT_EQ(mapped->BlockCount(), 0u);
    MemoryHierarchy mh(HostHierarchyConfig());
    mapped->ReplayInto(mh.Top());
    EXPECT_EQ(mh.Snapshot().dram.TotalBytes(), 0u);
    std::remove(path.c_str());
}

TEST(MappedTrace, VerifyModesCatchPayloadCorruption)
{
    const AccessTrace raw =
        RandomTrace(0xDEAD, 2 * CompactTrace::kBlockEntries + 100);
    const CompactTrace compact = CompactTrace::Encode(raw);
    const std::string good_path =
        testing::TempDir() + "pim_ctrace_mapped_good.ctrace";
    std::string error;
    ASSERT_TRUE(compact.SaveTo(good_path, &error)) << error;
    const std::string good = ReadFileBytes(good_path);
    const std::string bad_path =
        testing::TempDir() + "pim_ctrace_mapped_bad.ctrace";

    // Flip one payload byte (header and block table stay intact).
    std::string corrupt = good;
    corrupt[corrupt.size() - 7] ^= 0x40;
    WriteFileBytes(bad_path, corrupt);

    // Eager verification fails at Open.
    EXPECT_FALSE(MappedCompactTrace::Open(
                     bad_path, &error,
                     MappedCompactTrace::Verify::kEager)
                     .has_value());
    EXPECT_NE(error.find("digest"), std::string::npos) << error;

    // Lazy verification opens fine but throws when the replay reaches
    // the corrupted byte's block range.
    auto lazy = MappedCompactTrace::Open(
        bad_path, &error, MappedCompactTrace::Verify::kLazy);
    ASSERT_TRUE(lazy.has_value()) << error;
    const auto stream_all = [&](const MappedCompactTrace &t) {
        alignas(64) TraceEntry buffer[TraceSource::kBlockEntries];
        std::size_t n = 0;
        for (std::size_t b = 0; b < t.BlockCount(); ++b) {
            n += t.Block(b, buffer).count;
        }
        return n;
    };
    EXPECT_THROW(stream_all(*lazy), std::runtime_error);

    std::remove(good_path.c_str());
    std::remove(bad_path.c_str());
}

TEST(MappedTrace, RejectsCorruptTruncatedAndAlienFiles)
{
    const AccessTrace raw = RandomTrace(0xFA11, 9000);
    const CompactTrace compact = CompactTrace::Encode(raw);
    const std::string good_path =
        testing::TempDir() + "pim_ctrace_mapped_reject.ctrace";
    std::string error;
    ASSERT_TRUE(compact.SaveTo(good_path, &error)) << error;
    const std::string good = ReadFileBytes(good_path);
    const std::string bad_path =
        testing::TempDir() + "pim_ctrace_mapped_reject_bad.ctrace";

    // Truncations at every structural boundary must fail Open in
    // every verification mode (the size check is structural, not a
    // digest pass).
    for (const std::size_t keep :
         {std::size_t{4}, std::size_t{20}, std::size_t{60},
          good.size() - 1}) {
        ASSERT_LT(keep, good.size());
        WriteFileBytes(bad_path, good.substr(0, keep));
        for (const auto verify : {MappedCompactTrace::Verify::kEager,
                                  MappedCompactTrace::Verify::kLazy,
                                  MappedCompactTrace::Verify::kNone}) {
            EXPECT_FALSE(
                MappedCompactTrace::Open(bad_path, &error, verify)
                    .has_value())
                << "kept " << keep << " bytes";
        }
    }

    // Trailing garbage: the container is the whole file.
    WriteFileBytes(bad_path, good + "x");
    EXPECT_FALSE(
        MappedCompactTrace::Open(bad_path, &error).has_value());

    // Wrong magic.
    std::string alien = good;
    alien[0] = 'X';
    WriteFileBytes(bad_path, alien);
    EXPECT_FALSE(
        MappedCompactTrace::Open(bad_path, &error).has_value());
    EXPECT_NE(error.find("not a compact-trace"), std::string::npos)
        << error;

    // A corrupt block table (offset past the payload) is structural.
    std::string bad_table = good;
    // First block-table entry's offset u64 lives at byte 56.
    bad_table[56 + 0] = '\xff';
    bad_table[56 + 7] = '\x7f';
    WriteFileBytes(bad_path, bad_table);
    EXPECT_FALSE(MappedCompactTrace::Open(
                     bad_path, &error,
                     MappedCompactTrace::Verify::kNone)
                     .has_value());

    // Missing file: error, not crash.
    EXPECT_FALSE(
        MappedCompactTrace::Open(
            testing::TempDir() + "pim_ctrace_mapped_missing.ctrace",
            &error)
            .has_value());

    std::remove(good_path.c_str());
    std::remove(bad_path.c_str());
}

} // namespace
} // namespace pim::sim
