/**
 * @file
 * Tests for the LZO-class codec, page-data generator, and ZRAM pool.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/rng.h"
#include "core/execution_context.h"
#include "workloads/browser/lzo.h"
#include "workloads/browser/page_data.h"
#include "workloads/browser/zram.h"

namespace pim::browser {
namespace {

using core::ExecutionContext;
using core::ExecutionTarget;

/** Compress + decompress and require exact reproduction. */
void
RoundTrip(const pim::SimBuffer<std::uint8_t> &src, std::size_t n)
{
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    pim::SimBuffer<std::uint8_t> compressed(LzoCompressBound(n));
    pim::SimBuffer<std::uint8_t> output(n + 16);

    const std::size_t csize = LzoCompress(src, n, compressed, ctx);
    ASSERT_LE(csize, LzoCompressBound(n));
    const std::size_t dsize = LzoDecompress(compressed, csize, output,
                                            ctx);
    ASSERT_EQ(dsize, n);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(output[i], src[i]) << "byte " << i;
    }
}

TEST(Lzo, EmptyInput)
{
    pim::SimBuffer<std::uint8_t> src(16);
    RoundTrip(src, 0);
}

TEST(Lzo, TinyInputs)
{
    pim::SimBuffer<std::uint8_t> src(16);
    const char *text = "abcABC123";
    std::memcpy(src.data(), text, 9);
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 9u}) {
        RoundTrip(src, n);
    }
}

TEST(Lzo, AllZeros)
{
    pim::SimBuffer<std::uint8_t> src(8192, 0);
    RoundTrip(src, 8192);

    // And it should compress extremely well.
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    pim::SimBuffer<std::uint8_t> compressed(LzoCompressBound(8192));
    const std::size_t csize = LzoCompress(src, 8192, compressed, ctx);
    EXPECT_LT(csize, 8192u / 20);
}

TEST(Lzo, RepeatedText)
{
    const std::string pattern = "the quick brown fox jumps over ";
    pim::SimBuffer<std::uint8_t> src(4096);
    for (std::size_t i = 0; i < src.size(); ++i) {
        src[i] = static_cast<std::uint8_t>(pattern[i % pattern.size()]);
    }
    RoundTrip(src, 4096);

    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    pim::SimBuffer<std::uint8_t> compressed(LzoCompressBound(4096));
    const std::size_t csize = LzoCompress(src, 4096, compressed, ctx);
    EXPECT_LT(csize, 1024u); // > 4x on pure repetition
}

TEST(Lzo, IncompressibleRandomSurvives)
{
    Rng rng(0xDEAD);
    pim::SimBuffer<std::uint8_t> src(4096);
    for (auto &b : src) {
        b = rng.NextByte();
    }
    RoundTrip(src, 4096);

    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    pim::SimBuffer<std::uint8_t> compressed(LzoCompressBound(4096));
    const std::size_t csize = LzoCompress(src, 4096, compressed, ctx);
    // Random data may expand slightly but must stay within the bound.
    EXPECT_LE(csize, LzoCompressBound(4096));
    EXPECT_GT(csize, 4000u);
}

/** Property sweep: round-trip over entropies and sizes. */
class LzoPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>>
{
};

TEST_P(LzoPropertyTest, RoundTripPageLikeData)
{
    const auto [entropy, size] = GetParam();
    Rng rng(static_cast<std::uint64_t>(entropy * 1000) ^ size);
    pim::SimBuffer<std::uint8_t> src(size);
    FillPageLikeData(src, rng, entropy);
    RoundTrip(src, size);
}

INSTANTIATE_TEST_SUITE_P(
    EntropyBySize, LzoPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.4, 0.7, 1.0),
                       ::testing::Values(std::size_t{128},
                                         std::size_t{4096},
                                         std::size_t{65536})));

TEST(Lzo, PageLikeDataCompressesLikeLzo)
{
    // The paper's ZRAM use case: LZO-class ratios (2-4x) on page data.
    Rng rng(42);
    pim::SimBuffer<std::uint8_t> src(64 * 1024);
    FillPageLikeData(src, rng, 0.4);

    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    pim::SimBuffer<std::uint8_t> compressed(LzoCompressBound(src.size()));
    const std::size_t csize =
        LzoCompress(src, src.size(), compressed, ctx);
    const double ratio = static_cast<double>(src.size()) / csize;
    EXPECT_GT(ratio, 1.8);
    EXPECT_LT(ratio, 8.0);
}

TEST(Lzo, DecompressionIsCheaperThanCompression)
{
    Rng rng(77);
    pim::SimBuffer<std::uint8_t> src(16384);
    FillPageLikeData(src, rng, 0.4);
    pim::SimBuffer<std::uint8_t> compressed(LzoCompressBound(src.size()));
    pim::SimBuffer<std::uint8_t> out(src.size());

    ExecutionContext cctx(ExecutionTarget::kCpuOnly);
    const std::size_t csize =
        LzoCompress(src, src.size(), compressed, cctx);
    const auto compress_ops = cctx.Report("c").ops.Total();

    ExecutionContext dctx(ExecutionTarget::kCpuOnly);
    LzoDecompress(compressed, csize, out, dctx);
    const auto decompress_ops = dctx.Report("d").ops.Total();

    EXPECT_LT(decompress_ops, compress_ops);
}

TEST(Zram, SwapOutInPreservesContent)
{
    Rng rng(11);
    ZramPool pool;
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);

    pim::SimBuffer<std::uint8_t> page(ZramPool::kPageBytes);
    FillPageLikeData(page, rng, 0.4);
    std::vector<std::uint8_t> original(page.data(),
                                       page.data() + page.size());

    const auto out = pool.SwapOut(page, ctx);
    EXPECT_GT(out.compressed_bytes, 0u);
    EXPECT_LT(out.compressed_bytes, ZramPool::kPageBytes);
    EXPECT_EQ(pool.resident_pages(), 1u);

    pim::SimBuffer<std::uint8_t> restored(ZramPool::kPageBytes);
    const Bytes n = pool.SwapIn(out.handle, restored, ctx);
    EXPECT_EQ(n, ZramPool::kPageBytes);
    EXPECT_EQ(pool.resident_pages(), 0u);
    for (std::size_t i = 0; i < original.size(); ++i) {
        ASSERT_EQ(restored[i], original[i]);
    }
}

TEST(Zram, SameFilledPageFastPath)
{
    ZramPool pool;
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);

    pim::SimBuffer<std::uint8_t> zero_page(ZramPool::kPageBytes, 0);
    const auto out = pool.SwapOut(zero_page, ctx);
    EXPECT_EQ(out.compressed_bytes, 8u); // marker word only
    EXPECT_EQ(pool.stats().same_filled_pages, 1u);

    pim::SimBuffer<std::uint8_t> fill_page(ZramPool::kPageBytes, 0xAB);
    const auto out2 = pool.SwapOut(fill_page, ctx);
    EXPECT_EQ(out2.compressed_bytes, 8u);
    EXPECT_EQ(pool.stats().same_filled_pages, 2u);

    pim::SimBuffer<std::uint8_t> restored(ZramPool::kPageBytes, 1);
    pool.SwapIn(out2.handle, restored, ctx);
    for (std::size_t i = 0; i < restored.size(); ++i) {
        ASSERT_EQ(restored[i], 0xAB);
    }
    pool.SwapIn(out.handle, restored, ctx);
    for (std::size_t i = 0; i < restored.size(); ++i) {
        ASSERT_EQ(restored[i], 0);
    }
}

TEST(Zram, NonUniformPageAvoidsFastPath)
{
    ZramPool pool;
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    pim::SimBuffer<std::uint8_t> page(ZramPool::kPageBytes, 7);
    page[ZramPool::kPageBytes - 1] = 8; // one differing byte
    const auto out = pool.SwapOut(page, ctx);
    EXPECT_GT(out.compressed_bytes, 8u);
    EXPECT_EQ(pool.stats().same_filled_pages, 0u);

    pim::SimBuffer<std::uint8_t> restored(ZramPool::kPageBytes);
    pool.SwapIn(out.handle, restored, ctx);
    EXPECT_EQ(restored[ZramPool::kPageBytes - 1], 8);
    EXPECT_EQ(restored[0], 7);
}

TEST(Zram, StatsTrackTotals)
{
    Rng rng(12);
    ZramPool pool;
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    pim::SimBuffer<std::uint8_t> page(ZramPool::kPageBytes);
    pim::SimBuffer<std::uint8_t> scratch(ZramPool::kPageBytes);

    std::vector<std::uint64_t> handles;
    for (int i = 0; i < 5; ++i) {
        FillPageLikeData(page, rng, 0.4);
        handles.push_back(pool.SwapOut(page, ctx).handle);
    }
    EXPECT_EQ(pool.stats().pages_swapped_out, 5u);
    EXPECT_EQ(pool.stats().uncompressed_out_bytes,
              5u * ZramPool::kPageBytes);
    EXPECT_GT(pool.stats().CompressionRatio(), 1.5);

    pool.SwapIn(handles[0], scratch, ctx);
    EXPECT_EQ(pool.stats().pages_swapped_in, 1u);
    EXPECT_EQ(pool.resident_pages(), 4u);
}

} // namespace
} // namespace pim::browser
