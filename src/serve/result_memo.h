/**
 * @file
 * Result memo: (trace digest, canonical config) -> serialized result.
 *
 * Design points recur constantly across a sweep farm's clients — every
 * study of texture tiling sweeps the same LLC ladder — so once a point
 * has been replayed, its counters are a pure function of (what was
 * replayed, into what).  The memo stores the *serialized* counters
 * JSON, not the struct: a hit is returned byte-for-byte, which is what
 * makes repeat submissions bit-identical on the wire without trusting
 * any re-serialization path.
 *
 * Canonicalization rules (DESIGN.md §5h): the config half of the key
 * is built by CanonicalPointKey from the simulation-relevant fields
 * only, in a fixed order, with fixed number formatting
 * (JsonValue::NumberToString).  Display names are excluded — two
 * configs that differ only in their labels simulate identically and
 * must hit the same memo line.
 */

#ifndef PIM_SERVE_RESULT_MEMO_H
#define PIM_SERVE_RESULT_MEMO_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/hierarchy.h"

namespace pim::serve {

/**
 * Canonical text form of one LLC design point: every field of the
 * hierarchy that influences replayed counters (L1 and LLC geometry,
 * DRAM model rates), none that doesn't (names).  Stable across
 * processes and releases of the serialization layer — the memo key
 * contract.
 */
std::string CanonicalPointKey(const sim::HierarchyConfig &base,
                              const sim::CacheConfig &llc_point);

/** Full memo key for a design point of a given recorded stream. */
std::string MemoKey(std::uint64_t trace_digest,
                    const std::string &canonical_config);

/** Thread-safe memo with hit/miss accounting. */
class ResultMemo
{
  public:
    /** The stored serialization for @p key, counting hit/miss. */
    std::optional<std::string>
    Lookup(const std::string &key)
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = entries_.find(key);
        if (it == entries_.end()) {
            ++misses_;
            return std::nullopt;
        }
        ++hits_;
        return it->second;
    }

    void
    Store(const std::string &key, std::string serialized)
    {
        std::lock_guard<std::mutex> lock(mu_);
        entries_.emplace(key, std::move(serialized));
    }

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return entries_.size();
    }

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::string, std::string> entries_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace pim::serve

#endif // PIM_SERVE_RESULT_MEMO_H
