/**
 * @file
 * PimServer: the persistent simulation service.
 *
 * A long-running daemon over the existing machinery: clients submit
 * sweep requests as JSON frames on a Unix-domain socket
 * (serve/protocol.h), an acceptor thread hands each connection to a
 * session thread, sessions admit jobs into a bounded JobQueue
 * (reject-with-backpressure when full), and worker threads execute
 * jobs on the SweepRunner engines — streaming per-design-point result
 * frames back to a waiting client as they are produced.
 *
 * Two caches make the warm path cheap:
 *  - the trace corpus (serve/corpus_cache.h): one recording per
 *    (kernel, scale), persisted as a digest-named CompactTrace file,
 *    plus an in-memory copy for the life of the process;
 *  - the result memo (serve/result_memo.h): per design point, keyed
 *    (trace digest, canonical config), holding the serialized counter
 *    JSON — a fully-memoized job executes NO replay at all, and its
 *    result frames are byte-identical to the first computation.
 *
 * Shutdown is graceful everywhere: a client `shutdown` request or
 * SIGINT/SIGTERM (common/shutdown.h) stops admissions, drains queued
 * and running jobs, flushes the corpus manifest, detaches sessions,
 * and Stop() returns with the process exiting 0.
 */

#ifndef PIM_SERVE_SERVER_H
#define PIM_SERVE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/types.h"
#include "serve/corpus_cache.h"
#include "serve/job_queue.h"
#include "serve/result_memo.h"
#include "sim/cache.h"
#include "sim/stack_profiler.h"
#include "sim/trace_codec.h"

namespace pim::serve {

struct ServerConfig
{
    std::string socket_path;
    std::string cache_dir;   ///< Empty disables the on-disk corpus.
    unsigned workers = 2;    ///< 0 = jobs queue but never run (tests).
    std::size_t queue_capacity = 16;
    unsigned sweep_threads = 0; ///< SweepRunner threads per job (0 = auto).
};

class PimServer
{
  public:
    explicit PimServer(ServerConfig config);
    ~PimServer();

    PimServer(const PimServer &) = delete;
    PimServer &operator=(const PimServer &) = delete;

    /** Bind, listen, spawn acceptor + workers.  False on bind error. */
    bool Start(std::string *error = nullptr);

    /**
     * Drain and stop: close admissions, run the queue dry (when
     * workers exist), flush the corpus manifest, detach every client,
     * join all threads.  Idempotent.
     */
    void Stop();

    /** Set by a client `shutdown` request; the main loop polls it. */
    bool ShutdownRequestedByClient() const { return client_shutdown_; }

    /** The `status` response document (also used by tests directly). */
    JsonValue StatusJson() const;

  private:
    struct Job;

    /**
     * One resident trace-table entry, exposed uniformly as a
     * TraceSource: a recording made this process holds the in-RAM
     * compact form (plus its cursor view); a corpus warm-start holds
     * the mmap-backed form instead, so jobs replay straight from disk
     * with zero decode-to-RAM staging.  Never mutated once published
     * (shared_ptr<const>), so `view`'s pointer into `compact` stays
     * valid for the handle's life.
     */
    struct TraceHandle
    {
        std::optional<sim::CompactTrace> compact;
        std::optional<sim::CompactTraceSource> view; ///< Over *compact.
        std::optional<sim::MappedCompactTrace> mapped;
        std::uint64_t digest = 0; ///< Content digest (memo/corpus key).

        const sim::TraceSource &
        source() const
        {
            return mapped ? static_cast<const sim::TraceSource &>(
                                *mapped)
                          : static_cast<const sim::TraceSource &>(
                                *view);
        }
    };

    /**
     * One memoized study profiling pass: the StackProfile snapshot of
     * a (trace digest, L1 geometry, pass geometry) replay plus the L1
     * counters that replay produced.  Any associativity or write
     * policy the pass supports — including axes no prior submission
     * asked for — is an O(histogram) readout from the snapshot, so a
     * repeat study submission executes ZERO replays (untracked
     * associativities are served with writebacks_exact=false).
     */
    struct StudyPassMemo
    {
        sim::StackProfile profile;
        sim::CacheStats l1;
    };

    void AcceptLoop();
    void SessionLoop(int fd);
    void WorkerLoop();
    void ExecuteJob(Job &job);
    void ExecuteLlcJob(Job &job);
    void ExecuteStudyJob(Job &job);
    /**
     * Sweep threads the job starting now may use: the configured (or
     * auto-detected) total divided by the jobs currently running, min
     * 1.  N concurrent jobs used to EACH take the full default pool —
     * N x cores threads on an N-worker server; the budget keeps the
     * product at ~cores.  Purely a resource cap: counters never
     * depend on the thread count.
     */
    unsigned SweepThreadBudget() const;
    /** Memory -> corpus -> record; sets *source to where it came from. */
    std::shared_ptr<const TraceHandle> AcquireTrace(const Job &job,
                                                    std::string *source);
    void HandleSubmit(int fd, const JsonValue &req);
    void FailJob(Job &job, const std::string &error);

    ServerConfig config_;
    int listen_fd_ = -1;

    JobQueue queue_;
    ResultMemo memo_;
    CorpusCache corpus_;

    // Trace handles stay resident for the life of the server: a fresh
    // recording keeps its (small) compact form in RAM, a corpus
    // warm-start keeps only the mmap (the page cache holds the bytes);
    // the digest is cached beside each trace either way.
    std::mutex trace_mu_;
    std::map<std::string, std::shared_ptr<const TraceHandle>> traces_;
    std::map<std::string, std::string> trace_sources_;

    // Study pass memo (see StudyPassMemo).
    mutable std::mutex profiles_mu_;
    std::map<std::string, std::shared_ptr<const StudyPassMemo>>
        profiles_;
    std::atomic<std::uint64_t> profile_hits_{0};
    std::atomic<std::uint64_t> profile_misses_{0};
    /** Study passes answered by the set-sharded engine. */
    std::atomic<std::uint64_t> profiles_sharded_{0};

    mutable std::mutex jobs_mu_;
    std::condition_variable jobs_cv_;
    std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
    std::uint64_t next_job_id_ = 1;

    std::mutex clients_mu_;
    std::vector<int> client_fds_;

    std::thread acceptor_;
    std::vector<std::thread> workers_;
    std::vector<std::thread> sessions_;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<bool> client_shutdown_{false};

    // Service counters surfaced by `status`.
    std::atomic<std::uint64_t> jobs_submitted_{0};
    std::atomic<std::uint64_t> jobs_rejected_{0};
    std::atomic<std::uint64_t> jobs_done_{0};
    std::atomic<std::uint64_t> jobs_failed_{0};
    std::atomic<std::uint64_t> jobs_running_{0};
    std::atomic<std::uint64_t> traces_recorded_{0};
    std::atomic<std::uint64_t> replays_executed_{0};
    std::atomic<std::uint64_t> frames_streamed_{0};
    std::atomic<std::uint64_t> protocol_errors_{0};
};

} // namespace pim::serve

#endif // PIM_SERVE_SERVER_H
