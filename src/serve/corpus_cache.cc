#include "serve/corpus_cache.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <sys/stat.h>

#include "common/digest.h"
#include "common/json.h"
#include "common/logging.h"

namespace pim::serve {

namespace {

constexpr const char *kManifestName = "manifest.json";

std::string
JoinPath(const std::string &dir, const std::string &name)
{
    if (dir.empty() || dir.back() == '/') {
        return dir + name;
    }
    return dir + "/" + name;
}

std::optional<std::string>
ReadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return std::nullopt;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

std::string
CorpusKey(const std::string &kernel, double scale)
{
    return kernel + "@" + JsonValue::NumberToString(scale);
}

CorpusCache::CorpusCache(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty()) {
        return;
    }
    // A single flat directory is enough for a corpus of thousands.
    ::mkdir(dir_.c_str(), 0755); // EEXIST is fine
    LoadManifest();
}

void
CorpusCache::LoadManifest()
{
    const auto text = ReadFile(JoinPath(dir_, kManifestName));
    if (!text) {
        return; // fresh corpus
    }
    std::string error;
    const auto doc = JsonParse(*text, &error);
    if (!doc || !doc->is_object()) {
        PIM_WARN("corpus manifest '%s' is unreadable (%s); starting "
                 "with an empty corpus",
                 JoinPath(dir_, kManifestName).c_str(), error.c_str());
        return;
    }
    const JsonValue *rows = doc->Find("entries");
    if (rows == nullptr || !rows->is_array()) {
        return;
    }
    for (std::size_t i = 0; i < rows->size(); ++i) {
        const JsonValue &row = rows->at(i);
        CorpusEntry e;
        if (const auto *v = row.Find("key")) {
            e.key = v->AsString();
        }
        if (const auto *v = row.Find("kernel")) {
            e.kernel = v->AsString();
        }
        if (const auto *v = row.Find("scale")) {
            e.scale = v->AsNumber();
        }
        if (const auto *v = row.Find("digest")) {
            e.digest = std::strtoull(v->AsString().c_str(), nullptr, 16);
        }
        if (const auto *v = row.Find("entries")) {
            e.entries = static_cast<std::uint64_t>(v->AsNumber());
        }
        if (const auto *v = row.Find("encoded_bytes")) {
            e.encoded_bytes = static_cast<std::uint64_t>(v->AsNumber());
        }
        if (const auto *v = row.Find("file")) {
            e.file = v->AsString();
        }
        if (const auto *v = row.Find("recorder")) {
            e.recorder = v->AsString();
        }
        if (const auto *v = row.Find("created")) {
            e.created = v->AsString();
        }
        if (!e.key.empty() && !e.file.empty()) {
            entries_[e.key] = std::move(e);
        }
    }
}

std::optional<sim::CompactTrace>
CorpusCache::Load(const std::string &key)
{
    if (!enabled()) {
        ++misses_;
        return std::nullopt;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    std::string error;
    auto trace =
        sim::CompactTrace::LoadFrom(JoinPath(dir_, it->second.file),
                                    &error);
    if (!trace || trace->Digest() != it->second.digest) {
        PIM_WARN("dropping corpus entry '%s': %s", key.c_str(),
                 trace ? "manifest/file digest mismatch"
                       : error.c_str());
        entries_.erase(it);
        FlushLocked();
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return trace;
}

std::optional<sim::MappedCompactTrace>
CorpusCache::Map(const std::string &key)
{
    if (!enabled()) {
        ++misses_;
        return std::nullopt;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    // Verify::kNone + header-vs-manifest digest check: the payload was
    // hashed when the entry was stored, so matching the two verified
    // records is enough identity for a warm restart — no O(file) pass.
    std::string error;
    auto mapped = sim::MappedCompactTrace::Open(
        JoinPath(dir_, it->second.file), &error,
        sim::MappedCompactTrace::Verify::kNone);
    if (!mapped || mapped->header_digest() != it->second.digest) {
        PIM_WARN("dropping corpus entry '%s': %s", key.c_str(),
                 mapped ? "manifest/header digest mismatch"
                        : error.c_str());
        entries_.erase(it);
        FlushLocked();
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    bytes_mapped_ += mapped->SizeBytes();
    return mapped;
}

bool
CorpusCache::Store(const std::string &key, const std::string &kernel,
                   double scale, const sim::CompactTrace &trace,
                   const std::string &recorder,
                   const std::string &created)
{
    if (!enabled()) {
        return false;
    }
    CorpusEntry e;
    e.key = key;
    e.kernel = kernel;
    e.scale = scale;
    e.digest = trace.Digest();
    e.entries = trace.size();
    e.encoded_bytes = trace.SizeBytes();
    e.file = ContentDigest::ToHex(e.digest) + ".ctrace";
    e.recorder = recorder;
    e.created = created;

    std::string error;
    if (!trace.SaveTo(JoinPath(dir_, e.file), &error)) {
        PIM_WARN("cannot persist trace for '%s': %s", key.c_str(),
                 error.c_str());
        return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    entries_[key] = std::move(e);
    FlushLocked();
    return true;
}

void
CorpusCache::Flush()
{
    if (!enabled()) {
        return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    FlushLocked();
}

void
CorpusCache::FlushLocked()
{
    JsonValue doc = JsonValue::Object();
    doc.Set("schema", kCorpusSchemaName);
    doc.Set("version", kCorpusSchemaVersion);
    JsonValue rows = JsonValue::Array();
    for (const auto &[key, e] : entries_) {
        JsonValue row = JsonValue::Object();
        row.Set("key", e.key);
        row.Set("kernel", e.kernel);
        row.Set("scale", e.scale);
        row.Set("digest", ContentDigest::ToHex(e.digest));
        row.Set("entries", e.entries);
        row.Set("encoded_bytes", e.encoded_bytes);
        row.Set("file", e.file);
        if (!e.recorder.empty()) {
            row.Set("recorder", e.recorder);
        }
        if (!e.created.empty()) {
            row.Set("created", e.created);
        }
        rows.Push(std::move(row));
    }
    doc.Set("entries", std::move(rows));

    const std::string path = JoinPath(dir_, kManifestName);
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        PIM_WARN("cannot write corpus manifest '%s'", tmp.c_str());
        return;
    }
    const std::string text = doc.Dump(2) + "\n";
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    if (std::fclose(f) != 0 || !ok ||
        std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        PIM_WARN("cannot flush corpus manifest '%s'", path.c_str());
    }
}

std::size_t
CorpusCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

} // namespace pim::serve
