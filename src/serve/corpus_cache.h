/**
 * @file
 * On-disk trace corpus cache.
 *
 * Recording a kernel's access stream is the expensive step of every
 * sweep — it runs the actual workload.  The corpus cache persists each
 * recording once, as a CompactTrace container file named by its
 * content digest, with a JSON manifest mapping provenance keys
 * ("texture_tiling@0.25") to digests, entry counts, and byte sizes.
 * A warm server restart answers sweeps without re-running any kernel.
 *
 * Integrity: files are written via CompactTrace::SaveTo's
 * temp-and-rename, the manifest is flushed the same way, and every
 * load re-verifies the stored content digest — a corrupt or truncated
 * cache entry is treated as a miss (and dropped from the manifest),
 * never replayed.
 */

#ifndef PIM_SERVE_CORPUS_CACHE_H
#define PIM_SERVE_CORPUS_CACHE_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "sim/trace_codec.h"

namespace pim::serve {

/** Manifest row for one cached recording. */
struct CorpusEntry
{
    std::string key;    ///< Provenance key ("kernel@scale").
    std::string kernel; ///< Kernel slug.
    double scale = 1.0;
    std::uint64_t digest = 0;
    std::uint64_t entries = 0;
    std::uint64_t encoded_bytes = 0;
    std::string file; ///< Basename within the corpus directory.
    /** Provenance: what produced the recording (git describe). */
    std::string recorder;
    /** Provenance: creation time, as passed in by the caller. */
    std::string created;
};

/**
 * The canonical corpus/provenance key for one (kernel, scale)
 * recording — "kernel@scale".  pim_serve's trace table and pim_run's
 * --corpus mode both key on this, so a corpus recorded by one is warm
 * for the other.
 */
std::string CorpusKey(const std::string &kernel, double scale);

/** Schema identity of the manifest document. */
inline constexpr const char *kCorpusSchemaName =
    "pim-consumer.trace-corpus";
inline constexpr int kCorpusSchemaVersion = 1;

class CorpusCache
{
  public:
    /**
     * Open (and create if needed) the corpus at @p dir; an empty dir
     * disables persistence (every Load misses, Store is a no-op).
     * An unreadable manifest starts the corpus empty rather than
     * failing the server.
     */
    explicit CorpusCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }

    /**
     * Load the recording cached under @p key into RAM,
     * digest-verified.  Counts a hit or miss either way.
     */
    std::optional<sim::CompactTrace> Load(const std::string &key);

    /**
     * Memory-map the recording cached under @p key as an out-of-core
     * TraceSource.  The container header's stored digest is checked
     * against the manifest (both were verified when the entry was
     * written), so a warm restart never re-hashes a multi-GB payload;
     * the mapped trace's bounds-hardened decoder still rejects
     * corrupt token bytes at replay time.  Counts a hit or miss, and
     * a hit adds the file's size to bytes_mapped().
     */
    std::optional<sim::MappedCompactTrace> Map(const std::string &key);

    /**
     * Persist @p trace under @p key and flush the manifest.
     * @p recorder / @p created are provenance strings stored verbatim
     * in the manifest (git describe of the recording binary; creation
     * time — the caller supplies both so the cache stays clock-free).
     * Returns false (with a warning) on I/O failure — the server
     * keeps running from memory.
     */
    bool Store(const std::string &key, const std::string &kernel,
               double scale, const sim::CompactTrace &trace,
               const std::string &recorder = std::string(),
               const std::string &created = std::string());

    /** Rewrite the manifest (write-to-temp + rename).  Idempotent. */
    void Flush();

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::size_t size() const;
    /** Manifest entries on disk (== size(); status counter). */
    std::size_t files() const { return size(); }
    /** Total bytes of container files mapped by Map() so far. */
    std::uint64_t bytes_mapped() const { return bytes_mapped_.load(); }

  private:
    void LoadManifest();
    void FlushLocked();

    std::string dir_;
    mutable std::mutex mu_;
    std::map<std::string, CorpusEntry> entries_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> bytes_mapped_{0};
};

} // namespace pim::serve

#endif // PIM_SERVE_CORPUS_CACHE_H
