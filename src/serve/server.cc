#include "serve/server.h"

#include <algorithm>
#include <csignal>
#include <exception>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/digest.h"
#include "common/env.h"
#include "common/logging.h"
#include "core/kernel_registry.h"
#include "serve/protocol.h"
#include "sim/hierarchy.h"
#include "sim/sharded_replay.h"
#include "sim/sweep.h"
#include "telemetry/report_json.h"
#include "workloads/catalog.h"

namespace pim::serve {

namespace {

/** The default ladder `pim_run --sweep=llc` uses: 256 KiB..8 MiB. */
std::vector<Bytes>
DefaultLadder()
{
    std::vector<Bytes> sizes;
    for (Bytes size = 256_KiB; size <= 8_MiB; size *= 2) {
        sizes.push_back(size);
    }
    return sizes;
}

} // namespace

/** One submitted sweep and everything produced for it. */
struct PimServer::Job
{
    enum class State
    {
        kQueued,
        kRunning,
        kDone,
        kFailed,
    };

    std::uint64_t id = 0;
    std::string kernel; ///< Registry slug.
    double scale = 1.0;
    std::string sweep = "llc"; ///< "llc" or "study".
    std::vector<Bytes> llc_sizes; ///< llc sweep: capacity ladder.
    // study sweep: associativity axis at the host LLC's set count and
    // line size, plus the write policy of every point.
    std::vector<std::uint32_t> assocs;
    sim::WritePolicy policy = sim::WritePolicy::kWriteBackAllocate;

    State state = State::kQueued;
    std::vector<std::string> frames; ///< Result frames, ladder order.
    std::string final_frame;         ///< done / failed envelope.
};

PimServer::PimServer(ServerConfig config)
    : config_(std::move(config)), queue_(config_.queue_capacity),
      corpus_(config_.cache_dir)
{
}

PimServer::~PimServer()
{
    Stop();
}

bool
PimServer::Start(std::string *error)
{
    workloads::EnsureKernelCatalog();
    // A client that disconnects mid-stream must not kill the server.
    std::signal(SIGPIPE, SIG_IGN);

    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr) {
            *error = "socket path too long: " + config_.socket_path;
        }
        return false;
    }
    std::copy(config_.socket_path.begin(), config_.socket_path.end(),
              addr.sun_path);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        if (error != nullptr) {
            *error = "cannot create socket";
        }
        return false;
    }
    // The server owns its path: a stale socket from a crashed
    // predecessor is removed rather than failing the bind.
    ::unlink(config_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
        if (error != nullptr) {
            *error = "cannot bind '" + config_.socket_path + "'";
        }
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }

    acceptor_ = std::thread(&PimServer::AcceptLoop, this);
    for (unsigned i = 0; i < config_.workers; ++i) {
        workers_.emplace_back(&PimServer::WorkerLoop, this);
    }
    return true;
}

void
PimServer::Stop()
{
    if (stopped_.exchange(true)) {
        return;
    }
    stopping_.store(true);
    // Drain the backlog through the workers when there are any;
    // with no workers (test configurations) the backlog is failed
    // explicitly so waiting clients get a terminal frame.
    const bool drain = config_.workers > 0;
    queue_.Close(drain);
    if (!drain) {
        for (const std::uint64_t id : queue_.DrainRemaining()) {
            std::lock_guard<std::mutex> lock(jobs_mu_);
            const auto it = jobs_.find(id);
            if (it != jobs_.end()) {
                FailJob(*it->second, "server shutting down");
            }
        }
    }
    if (acceptor_.joinable()) {
        acceptor_.join();
    }
    for (auto &w : workers_) {
        w.join();
    }
    workers_.clear();
    // Every queued job has now run (or been failed): the manifest on
    // disk is complete before any client is detached.
    corpus_.Flush();
    {
        std::lock_guard<std::mutex> lock(clients_mu_);
        for (const int fd : client_fds_) {
            ::shutdown(fd, SHUT_RDWR);
        }
    }
    for (auto &s : sessions_) {
        s.join();
    }
    sessions_.clear();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        ::unlink(config_.socket_path.c_str());
    }
}

void
PimServer::AcceptLoop()
{
    while (!stopping_.load()) {
        pollfd p = {listen_fd_, POLLIN, 0};
        const int r = ::poll(&p, 1, 200);
        if (r <= 0) {
            continue; // timeout (re-check stopping_) or EINTR
        }
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            continue;
        }
        if (stopping_.load()) {
            ::close(fd);
            break;
        }
        std::lock_guard<std::mutex> lock(clients_mu_);
        client_fds_.push_back(fd);
        sessions_.emplace_back(&PimServer::SessionLoop, this, fd);
    }
}

void
PimServer::SessionLoop(int fd)
{
    FrameReader reader(fd);
    std::string line;
    for (;;) {
        const FrameStatus st = reader.ReadFrame(&line);
        if (st == FrameStatus::kClosed || st == FrameStatus::kError) {
            break;
        }
        if (st == FrameStatus::kTooLarge) {
            ++protocol_errors_;
            WriteFrame(fd, MakeError("frame_too_large",
                                     "frame exceeds " +
                                         std::to_string(kMaxFrameBytes) +
                                         " bytes"));
            break; // the byte stream is poisoned; drop the client
        }
        std::string parse_error;
        const auto doc = JsonParse(line, &parse_error);
        if (!doc) {
            ++protocol_errors_;
            WriteFrame(fd, MakeError("parse", parse_error));
            continue;
        }
        const JsonValue *type =
            doc->is_object() ? doc->Find("type") : nullptr;
        if (type == nullptr || !type->is_string()) {
            ++protocol_errors_;
            WriteFrame(fd, MakeError("bad_request",
                                     "expected an object with a "
                                     "\"type\" member"));
            continue;
        }
        const std::string &t = type->AsString();
        if (t == "submit") {
            HandleSubmit(fd, *doc);
        } else if (t == "poll") {
            const JsonValue *jid = doc->Find("job");
            std::unique_lock<std::mutex> lock(jobs_mu_);
            const auto it =
                jid != nullptr && jid->is_number()
                    ? jobs_.find(static_cast<std::uint64_t>(
                          jid->AsNumber()))
                    : jobs_.end();
            if (it == jobs_.end()) {
                lock.unlock();
                WriteFrame(fd, MakeError("unknown_job",
                                         "no such job id"));
                continue;
            }
            Job &job = *it->second;
            if (job.state == Job::State::kDone ||
                job.state == Job::State::kFailed) {
                const std::vector<std::string> frames = job.frames;
                const std::string final_frame = job.final_frame;
                lock.unlock();
                for (const auto &f : frames) {
                    WriteFrame(fd, f);
                    ++frames_streamed_;
                }
                WriteFrame(fd, final_frame);
            } else {
                JsonValue pending = JsonValue::Object();
                pending.Set("type", "pending");
                pending.Set("job", job.id);
                pending.Set("state",
                            job.state == Job::State::kRunning
                                ? "running"
                                : "queued");
                lock.unlock();
                WriteFrame(fd, pending);
            }
        } else if (t == "status") {
            WriteFrame(fd, StatusJson());
        } else if (t == "shutdown") {
            client_shutdown_.store(true);
            JsonValue bye = JsonValue::Object();
            bye.Set("type", "bye");
            WriteFrame(fd, bye);
        } else {
            ++protocol_errors_;
            WriteFrame(fd,
                       MakeError("unknown_request",
                                 "unsupported request type '" + t + "'"));
        }
    }
    // Deregister before closing so Stop() never shutdown()s a number
    // the OS may already have recycled.
    {
        std::lock_guard<std::mutex> lock(clients_mu_);
        for (auto it = client_fds_.begin(); it != client_fds_.end();
             ++it) {
            if (*it == fd) {
                client_fds_.erase(it);
                break;
            }
        }
    }
    ::close(fd);
}

void
PimServer::HandleSubmit(int fd, const JsonValue &req)
{
    const JsonValue *kernel = req.Find("kernel");
    if (kernel == nullptr || !kernel->is_string()) {
        WriteFrame(fd, MakeError("bad_request",
                                 "submit needs a \"kernel\" slug"));
        return;
    }
    const core::KernelSpec *spec =
        core::KernelRegistry::Global().Find(kernel->AsString());
    if (spec == nullptr) {
        WriteFrame(fd, MakeError("unknown_kernel",
                                 "no kernel '" + kernel->AsString() +
                                     "' in the catalog"));
        return;
    }
    if (!spec->trace_replayable) {
        WriteFrame(fd, MakeError("not_replayable",
                                 "'" + spec->Slug() +
                                     "' cannot be trace-replayed"));
        return;
    }
    std::string sweep = "llc";
    if (const JsonValue *s = req.Find("sweep"); s != nullptr) {
        if (!s->is_string() || (s->AsString() != "llc" &&
                                s->AsString() != "study")) {
            WriteFrame(fd,
                       MakeError("bad_request",
                                 "only \"llc\" and \"study\" sweeps "
                                 "are supported"));
            return;
        }
        sweep = s->AsString();
    }
    double scale = 1.0;
    if (const JsonValue *s = req.Find("scale"); s != nullptr) {
        scale = s->AsNumber();
        if (!(scale > 0.0)) {
            WriteFrame(fd, MakeError("bad_request",
                                     "scale must be positive"));
            return;
        }
    }
    std::vector<Bytes> sizes;
    std::vector<std::uint32_t> assocs;
    sim::WritePolicy policy = sim::WritePolicy::kWriteBackAllocate;
    if (sweep == "llc") {
        if (const JsonValue *ladder = req.Find("llc_kib");
            ladder != nullptr) {
            if (!ladder->is_array() || ladder->size() == 0) {
                WriteFrame(
                    fd, MakeError("bad_request",
                                  "llc_kib must be a non-empty array"));
                return;
            }
            const sim::HierarchyConfig host = sim::HostHierarchyConfig();
            const Bytes gran =
                host.llc->associativity * host.llc->line_bytes;
            for (std::size_t i = 0; i < ladder->size(); ++i) {
                const double kib = ladder->at(i).AsNumber();
                const Bytes size = static_cast<Bytes>(kib) * 1024;
                if (!(kib > 0) || size % gran != 0) {
                    WriteFrame(
                        fd,
                        MakeError("bad_point",
                                  "llc_kib entries must be positive "
                                  "multiples of " +
                                      std::to_string(gran / 1024) +
                                      " KiB"));
                    return;
                }
                sizes.push_back(size);
            }
        } else {
            sizes = DefaultLadder();
        }
    } else {
        // Study: an associativity axis at the host LLC geometry, with
        // an optional write policy for every point.
        if (const JsonValue *axis = req.Find("llc_assoc");
            axis != nullptr) {
            if (!axis->is_array() || axis->size() == 0) {
                WriteFrame(
                    fd,
                    MakeError("bad_request",
                              "llc_assoc must be a non-empty array"));
                return;
            }
            for (std::size_t i = 0; i < axis->size(); ++i) {
                const double a = axis->at(i).AsNumber();
                if (!(a >= 1) || a != static_cast<double>(
                                          static_cast<std::uint32_t>(a)) ||
                    a > 4096) {
                    WriteFrame(fd,
                               MakeError("bad_point",
                                         "llc_assoc entries must be "
                                         "integers in [1, 4096]"));
                    return;
                }
                assocs.push_back(static_cast<std::uint32_t>(a));
            }
        } else {
            assocs = {1, 2, 4, 8, 16};
        }
        if (const JsonValue *p = req.Find("policy"); p != nullptr) {
            const std::string name =
                p->is_string() ? p->AsString() : std::string();
            if (name == "wb") {
                policy = sim::WritePolicy::kWriteBackAllocate;
            } else if (name == "wt") {
                policy = sim::WritePolicy::kWriteThroughAllocate;
            } else if (name == "wtna") {
                policy = sim::WritePolicy::kWriteThroughNoAllocate;
            } else {
                WriteFrame(fd,
                           MakeError("bad_request",
                                     "policy must be one of \"wb\", "
                                     "\"wt\", \"wtna\""));
                return;
            }
        }
    }
    bool wait = true;
    if (const JsonValue *w = req.Find("wait"); w != nullptr) {
        wait = w->AsBool(true);
    }

    Job *job = nullptr;
    std::uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        id = next_job_id_++;
        auto owned = std::make_unique<Job>();
        owned->id = id;
        owned->kernel = spec->Slug();
        owned->scale = scale;
        owned->sweep = sweep;
        owned->llc_sizes = std::move(sizes);
        owned->assocs = std::move(assocs);
        owned->policy = policy;
        job = owned.get();
        jobs_.emplace(id, std::move(owned));
    }
    if (stopping_.load() || !queue_.TryPush(id)) {
        ++jobs_rejected_;
        {
            std::lock_guard<std::mutex> lock(jobs_mu_);
            jobs_.erase(id);
        }
        JsonValue rejected = JsonValue::Object();
        rejected.Set("type", "rejected");
        rejected.Set("reason",
                     stopping_.load() ? "shutting_down" : "queue_full");
        rejected.Set("queue_capacity",
                     static_cast<std::uint64_t>(queue_.capacity()));
        WriteFrame(fd, rejected);
        return;
    }
    ++jobs_submitted_;

    JsonValue accepted = JsonValue::Object();
    accepted.Set("type", "accepted");
    accepted.Set("job", id);
    accepted.Set("kernel", job->kernel);
    accepted.Set("points", static_cast<std::uint64_t>(
                               job->sweep == "study"
                                   ? job->assocs.size()
                                   : job->llc_sizes.size()));
    if (!WriteFrame(fd, accepted) || !wait) {
        return;
    }

    // Stream the job's frames as the worker produces them.
    std::size_t sent = 0;
    std::unique_lock<std::mutex> lock(jobs_mu_);
    for (;;) {
        jobs_cv_.wait(lock, [&] {
            return job->frames.size() > sent ||
                   job->state == Job::State::kDone ||
                   job->state == Job::State::kFailed;
        });
        while (sent < job->frames.size()) {
            const std::string frame = job->frames[sent++];
            lock.unlock();
            if (!WriteFrame(fd, frame)) {
                return; // client went away; the job finishes anyway
            }
            ++frames_streamed_;
            lock.lock();
        }
        if (job->state == Job::State::kDone ||
            job->state == Job::State::kFailed) {
            const std::string final_frame = job->final_frame;
            lock.unlock();
            WriteFrame(fd, final_frame);
            return;
        }
    }
}

void
PimServer::WorkerLoop()
{
    for (;;) {
        const auto id = queue_.Pop();
        if (!id) {
            return;
        }
        Job *job = nullptr;
        {
            std::lock_guard<std::mutex> lock(jobs_mu_);
            const auto it = jobs_.find(*id);
            if (it == jobs_.end()) {
                continue;
            }
            job = it->second.get();
            job->state = Job::State::kRunning;
        }
        ++jobs_running_;
        try {
            ExecuteJob(*job);
        } catch (const std::exception &e) {
            std::lock_guard<std::mutex> lock(jobs_mu_);
            FailJob(*job, e.what());
        } catch (...) {
            std::lock_guard<std::mutex> lock(jobs_mu_);
            FailJob(*job, "unknown execution error");
        }
        --jobs_running_;
    }
}

unsigned
PimServer::SweepThreadBudget() const
{
    // The pool each job divides up: the configured per-job count, or
    // the SweepRunner auto-detected hardware concurrency when 0.
    unsigned pool = config_.sweep_threads;
    if (pool == 0) {
        pool = sim::SweepRunner{}.thread_count();
    }
    const std::uint64_t active =
        std::max<std::uint64_t>(1, jobs_running_.load());
    return std::max<unsigned>(
        1, static_cast<unsigned>(pool / active));
}

void
PimServer::FailJob(Job &job, const std::string &error)
{
    // Caller holds jobs_mu_.
    if (job.state == Job::State::kDone ||
        job.state == Job::State::kFailed) {
        return;
    }
    job.state = Job::State::kFailed;
    JsonValue failed = JsonValue::Object();
    failed.Set("type", "failed");
    failed.Set("job", job.id);
    failed.Set("error", error);
    job.final_frame = failed.Dump();
    ++jobs_failed_;
    jobs_cv_.notify_all();
}

std::shared_ptr<const PimServer::TraceHandle>
PimServer::AcquireTrace(const Job &job, std::string *source)
{
    // One global lock serializes acquisition so concurrent identical
    // submissions record at most once (the expensive step is exactly
    // what the lock must deduplicate).
    std::shared_ptr<const TraceHandle> trace;
    *source = "memory";
    const std::string key = CorpusKey(job.kernel, job.scale);
    {
        std::lock_guard<std::mutex> lock(trace_mu_);
        const auto it = traces_.find(key);
        if (it != traces_.end()) {
            trace = it->second;
        } else if (auto mapped = corpus_.Map(key)) {
            // Warm start: the corpus file replays straight from disk —
            // no decode-to-RAM staging, no payload re-hash (Map
            // checked the container header against the manifest).
            *source = "corpus";
            auto handle = std::make_shared<TraceHandle>();
            handle->digest = mapped->header_digest();
            handle->mapped = std::move(*mapped);
            trace = handle;
            traces_.emplace(key, trace);
        } else {
            *source = "recorded";
            const core::KernelSpec *spec =
                core::KernelRegistry::Global().Find(job.kernel);
            PIM_ASSERT(spec != nullptr,
                       "job for unknown kernel '%s'", job.kernel.c_str());
            core::KernelSession session(job.scale);
            core::RecordedKernel rec = session.Record(*spec);
            sim::CompactTrace encoded =
                sim::CompactTrace::Encode(rec.trace);
            rec.trace = sim::AccessTrace{}; // drop the 8-byte form
            ++traces_recorded_;
            corpus_.Store(key, job.kernel, job.scale, encoded);
            auto handle = std::make_shared<TraceHandle>();
            handle->digest = encoded.Digest();
            handle->compact = std::move(encoded);
            handle->view.emplace(*handle->compact);
            trace = handle;
            traces_.emplace(key, trace);
        }
        trace_sources_[key] = *source;
    }
    return trace;
}

void
PimServer::ExecuteJob(Job &job)
{
    if (job.sweep == "study") {
        ExecuteStudyJob(job);
    } else {
        ExecuteLlcJob(job);
    }
}

void
PimServer::ExecuteLlcJob(Job &job)
{
    // --- Trace acquisition: memory -> corpus -> record. ------------
    std::string source;
    const auto trace = AcquireTrace(job, &source);
    const sim::TraceSource &stream = trace->source();
    const std::uint64_t digest = trace->digest;

    // --- Memo pass: which design points still need a replay? -------
    const sim::HierarchyConfig base = sim::HostHierarchyConfig();
    const std::size_t n = job.llc_sizes.size();
    std::vector<std::string> canonical(n);
    std::vector<std::optional<std::string>> counters_json(n);
    std::vector<sim::CacheConfig> missing;
    std::vector<std::size_t> missing_index;
    std::size_t memo_hits = 0;
    for (std::size_t i = 0; i < n; ++i) {
        sim::CacheConfig point = *base.llc;
        point.size = job.llc_sizes[i];
        canonical[i] = CanonicalPointKey(base, point);
        counters_json[i] = memo_.Lookup(MemoKey(digest, canonical[i]));
        if (counters_json[i]) {
            ++memo_hits;
        } else {
            missing.push_back(point);
            missing_index.push_back(i);
        }
    }

    // --- Replay only the gaps, one profiling pass for all of them. -
    if (!missing.empty()) {
        const sim::SweepRunner runner(SweepThreadBudget());
        const std::vector<sim::PerfCounters> results =
            runner.ProfileLlcSweep(stream, base, missing);
        ++replays_executed_;
        for (std::size_t m = 0; m < missing.size(); ++m) {
            std::string serialized =
                telemetry::ToJson(results[m]).Dump();
            memo_.Store(MemoKey(digest, canonical[missing_index[m]]),
                        serialized);
            counters_json[missing_index[m]] = std::move(serialized);
        }
    }

    // --- Assemble and stream result frames in ladder order. --------
    // Frames are assembled by splicing the memoized counter bytes in
    // verbatim, so a repeat submission's result frames are
    // byte-identical to the first computation's (the fields here
    // depend only on the request and the canonical config — never on
    // job identity).
    for (std::size_t i = 0; i < n; ++i) {
        std::string frame = "{\"type\":\"result\",\"kernel\":\"";
        JsonValue::AppendEscaped(frame, job.kernel);
        frame += "\",\"scale\":";
        frame += JsonValue::NumberToString(job.scale);
        frame += ",\"index\":";
        frame += std::to_string(i);
        frame += ",\"llc_bytes\":";
        frame += std::to_string(job.llc_sizes[i]);
        frame += ",\"config\":\"";
        JsonValue::AppendEscaped(frame, canonical[i]);
        frame += "\",\"counters\":";
        frame += *counters_json[i];
        frame += "}";
        std::lock_guard<std::mutex> lock(jobs_mu_);
        job.frames.push_back(std::move(frame));
        jobs_cv_.notify_all();
    }

    JsonValue done = JsonValue::Object();
    done.Set("type", "done");
    done.Set("job", job.id);
    done.Set("kernel", job.kernel);
    done.Set("points", static_cast<std::uint64_t>(n));
    done.Set("memo_hits", static_cast<std::uint64_t>(memo_hits));
    done.Set("replayed", !missing.empty());
    done.Set("trace_digest", ContentDigest::ToHex(digest));
    done.Set("trace_source", source);
    {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        job.final_frame = done.Dump();
        job.state = Job::State::kDone;
        ++jobs_done_;
        jobs_cv_.notify_all();
    }
}

void
PimServer::ExecuteStudyJob(Job &job)
{
    // --- Trace acquisition: memory -> corpus -> record. ------------
    std::string source;
    const auto trace = AcquireTrace(job, &source);
    const sim::TraceSource &stream = trace->source();
    const std::uint64_t digest = trace->digest;

    // --- The pass this study needs.  The key deliberately excludes
    // the requested associativity axis and the tracked set: ANY axis
    // over the same (L1 geometry, line, sets, allocate) pass is
    // answered from one snapshot, so a repeat submission with a
    // changed — even never-before-seen — associativity axis costs no
    // replay (untracked points are flagged writebacks_exact=false).
    const sim::HierarchyConfig base = sim::HostHierarchyConfig();
    const sim::CacheConfig &llc = *base.llc;
    const std::size_t sets = static_cast<std::size_t>(
        llc.size /
        (static_cast<Bytes>(llc.associativity) * llc.line_bytes));
    const bool allocate =
        job.policy != sim::WritePolicy::kWriteThroughNoAllocate;
    std::string pass_canonical = "study;l1:";
    pass_canonical += JsonValue::NumberToString(
        static_cast<double>(base.l1.size));
    pass_canonical += "/";
    pass_canonical += std::to_string(base.l1.associativity);
    pass_canonical += "/";
    pass_canonical += JsonValue::NumberToString(
        static_cast<double>(base.l1.line_bytes));
    pass_canonical += ";pass:";
    pass_canonical += JsonValue::NumberToString(
        static_cast<double>(llc.line_bytes));
    pass_canonical += "/";
    pass_canonical += std::to_string(sets);
    pass_canonical += allocate ? "/alloc" : "/noalloc";
    const std::string pass_key = MemoKey(digest, pass_canonical);

    std::shared_ptr<const StudyPassMemo> pass;
    {
        std::lock_guard<std::mutex> lock(profiles_mu_);
        const auto it = profiles_.find(pass_key);
        if (it != profiles_.end()) {
            pass = it->second;
            ++profile_hits_;
        } else {
            ++profile_misses_;
        }
    }
    bool replayed = false;
    if (!pass) {
        replayed = true;
        // One replay: the host L1 simulated once, its miss stream
        // profiled once.  Tracked associativities = this request's
        // write-back axis; later requests for other associativities
        // are still served from the snapshot (approximately for
        // writebacks, exactly for everything else).
        sim::StackProfilerConfig pcfg;
        pcfg.line_bytes = llc.line_bytes;
        pcfg.num_sets = sets;
        pcfg.write_allocate = allocate;
        if (job.policy == sim::WritePolicy::kWriteBackAllocate) {
            std::vector<std::uint32_t> tracked = job.assocs;
            std::sort(tracked.begin(), tracked.end());
            tracked.erase(
                std::unique(tracked.begin(), tracked.end()),
                tracked.end());
            if (tracked.size() > 64) {
                tracked.resize(64);
            }
            pcfg.tracked_assocs = std::move(tracked);
        }
        auto fresh = std::make_shared<StudyPassMemo>();
        // Set-sharded pass when the geometry admits it (bit-identical
        // to the serial replay below at any shard count); the thread
        // budget divides the pool among concurrently running jobs.
        const sim::ShardedReplay sharded{
            sim::SweepRunner(SweepThreadBudget())};
        sim::ShardedPassResult sharded_pass;
        if (EnvSwitch("PIM_SHARD_PASS", true) &&
            sharded.ProfilePass(stream, &base.l1, {pcfg},
                                &sharded_pass)) {
            fresh->profile = std::move(sharded_pass.profiles[0]);
            fresh->l1 = sharded_pass.l1;
            ++profiles_sharded_;
        } else {
            sim::StackDistanceProfiler prof(pcfg);
            sim::Cache l1(base.l1, prof);
            stream.ReplayInto(l1);
            fresh->profile = prof.profile();
            fresh->l1 = l1.stats();
        }
        ++replays_executed_;
        {
            std::lock_guard<std::mutex> lock(profiles_mu_);
            profiles_.emplace(pass_key, fresh);
        }
        pass = std::move(fresh);
    }

    // --- Every requested point is a readout from the snapshot. -----
    for (std::size_t i = 0; i < job.assocs.size(); ++i) {
        const std::uint32_t assoc = job.assocs[i];
        sim::StudyPointResult point = sim::ReadProfilePoint(
            pass->profile, assoc, job.policy, false);
        point.counters.l1 = pass->l1;
        point.counters.has_llc = true;

        std::string frame = "{\"type\":\"result\",\"kernel\":\"";
        JsonValue::AppendEscaped(frame, job.kernel);
        frame += "\",\"scale\":";
        frame += JsonValue::NumberToString(job.scale);
        frame += ",\"index\":";
        frame += std::to_string(i);
        frame += ",\"llc_assoc\":";
        frame += std::to_string(assoc);
        frame += ",\"llc_bytes\":";
        frame += std::to_string(static_cast<Bytes>(sets) * assoc *
                                llc.line_bytes);
        frame += ",\"policy\":\"";
        frame += sim::WritePolicyName(job.policy);
        frame += "\",\"writebacks_exact\":";
        frame += point.writebacks_exact ? "true" : "false";
        frame += ",\"config\":\"";
        JsonValue::AppendEscaped(frame, pass_canonical);
        frame += "\",\"counters\":";
        frame += telemetry::ToJson(point.counters).Dump();
        frame += "}";
        std::lock_guard<std::mutex> lock(jobs_mu_);
        job.frames.push_back(std::move(frame));
        jobs_cv_.notify_all();
    }

    JsonValue done = JsonValue::Object();
    done.Set("type", "done");
    done.Set("job", job.id);
    done.Set("kernel", job.kernel);
    done.Set("sweep", "study");
    done.Set("points", static_cast<std::uint64_t>(job.assocs.size()));
    done.Set("replayed", replayed);
    done.Set("trace_digest", ContentDigest::ToHex(digest));
    done.Set("trace_source", source);
    {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        job.final_frame = done.Dump();
        job.state = Job::State::kDone;
        ++jobs_done_;
        jobs_cv_.notify_all();
    }
}

JsonValue
PimServer::StatusJson() const
{
    JsonValue v = JsonValue::Object();
    v.Set("type", "status");

    JsonValue jobs = JsonValue::Object();
    jobs.Set("submitted", jobs_submitted_.load());
    jobs.Set("rejected", jobs_rejected_.load());
    jobs.Set("running", jobs_running_.load());
    jobs.Set("done", jobs_done_.load());
    jobs.Set("failed", jobs_failed_.load());
    v.Set("jobs", std::move(jobs));

    JsonValue queue = JsonValue::Object();
    queue.Set("depth", static_cast<std::uint64_t>(queue_.Depth()));
    queue.Set("capacity",
              static_cast<std::uint64_t>(queue_.capacity()));
    queue.Set("workers", config_.workers);
    queue.Set("sweep_thread_budget", SweepThreadBudget());
    v.Set("queue", std::move(queue));

    // Hit-rate fields make cache effectiveness directly observable
    // (no client-side division; 0.0 until the first lookup).
    const auto rate = [](std::uint64_t hits, std::uint64_t misses) {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    };

    JsonValue memo = JsonValue::Object();
    memo.Set("hits", memo_.hits());
    memo.Set("misses", memo_.misses());
    memo.Set("hit_rate", rate(memo_.hits(), memo_.misses()));
    memo.Set("entries", static_cast<std::uint64_t>(memo_.size()));
    v.Set("memo", std::move(memo));

    JsonValue corpus = JsonValue::Object();
    corpus.Set("enabled", corpus_.enabled());
    corpus.Set("hits", corpus_.hits());
    corpus.Set("misses", corpus_.misses());
    corpus.Set("hit_rate", rate(corpus_.hits(), corpus_.misses()));
    corpus.Set("entries", static_cast<std::uint64_t>(corpus_.size()));
    corpus.Set("files", static_cast<std::uint64_t>(corpus_.files()));
    corpus.Set("bytes_mapped", corpus_.bytes_mapped());
    v.Set("corpus", std::move(corpus));

    JsonValue profiles = JsonValue::Object();
    profiles.Set("hits", profile_hits_.load());
    profiles.Set("misses", profile_misses_.load());
    profiles.Set("hit_rate",
                 rate(profile_hits_.load(), profile_misses_.load()));
    profiles.Set("sharded", profiles_sharded_.load());
    {
        std::lock_guard<std::mutex> lock(profiles_mu_);
        profiles.Set("entries",
                     static_cast<std::uint64_t>(profiles_.size()));
    }
    v.Set("profiles", std::move(profiles));

    JsonValue replay = JsonValue::Object();
    replay.Set("traces_recorded", traces_recorded_.load());
    replay.Set("profile_passes", replays_executed_.load());
    replay.Set("frames_streamed", frames_streamed_.load());
    replay.Set("protocol_errors", protocol_errors_.load());
    v.Set("replay", std::move(replay));
    return v;
}

} // namespace pim::serve
