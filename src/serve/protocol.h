/**
 * @file
 * The pim_serve wire protocol: newline-delimited JSON frames over a
 * SOCK_STREAM Unix-domain socket.
 *
 * Each frame is one JSON document on one line ('\n'-terminated, no
 * embedded newlines — the dependency-free dumper never emits them in
 * compact mode).  Line framing keeps the protocol greppable, lets the
 * CI smoke job diff raw result frames byte-for-byte, and makes `nc -U`
 * a usable debugging client.  Frames are bounded by kMaxFrameBytes; a
 * peer that streams more than that without a newline is protocol-
 * broken and the connection is dropped after one error frame.
 *
 * Request types (client -> server):
 *   submit    {"type":"submit","kernel":<slug>,"scale":f,
 *              "llc_kib":[...], "wait":bool}
 *   poll      {"type":"poll","job":n}
 *   status    {"type":"status"}
 *   shutdown  {"type":"shutdown"}
 *
 * Response types (server -> client):
 *   accepted / rejected / result / done / failed / pending /
 *   status / bye / error
 *
 * `result` frames deliberately carry NO job id and no hit/miss flag:
 * their bytes depend only on (trace digest, canonical config), so a
 * memoized replay of the same design point is bit-identical to the
 * first computation — the property the CI smoke job asserts with a
 * plain diff.  Job-scoped facts (id, memo hit counts, trace
 * provenance) live in the accepted/done envelope frames instead.
 */

#ifndef PIM_SERVE_PROTOCOL_H
#define PIM_SERVE_PROTOCOL_H

#include <cstddef>
#include <optional>
#include <string>

#include "common/json.h"

namespace pim::serve {

/** Upper bound on one frame's bytes, newline included. */
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/** Outcome of FrameReader::ReadFrame. */
enum class FrameStatus
{
    kOk,       ///< A complete frame was read.
    kClosed,   ///< Peer closed the stream cleanly (or was shut down).
    kTooLarge, ///< Peer exceeded kMaxFrameBytes without a newline.
    kError,    ///< I/O error.
};

/**
 * Buffered line reader for one connection.  Blocking; a concurrent
 * ::shutdown(fd) unblocks it with kClosed, which is how the server
 * detaches sessions on Stop().
 */
class FrameReader
{
  public:
    explicit FrameReader(int fd) : fd_(fd) {}

    /**
     * Read until one full frame is buffered and return it via @p out
     * (newline stripped).  Empty lines are skipped (tolerates clients
     * that end their stream with an extra '\n').
     */
    FrameStatus ReadFrame(std::string *out);

  private:
    int fd_;
    std::string buf_;
};

/**
 * Write @p line plus the terminating newline, riding out partial
 * writes and EINTR.  Returns false once the peer is gone (EPIPE).
 */
bool WriteFrame(int fd, const std::string &line);

/** Compact-dump @p v and write it as one frame. */
bool WriteFrame(int fd, const JsonValue &v);

/** `{"type":"error","error":code,"detail":detail}` */
JsonValue MakeError(const std::string &code, const std::string &detail);

} // namespace pim::serve

#endif // PIM_SERVE_PROTOCOL_H
