/**
 * @file
 * Bounded MPMC job queue with reject-on-full admission control.
 *
 * The serve layer's backpressure point: sessions TryPush, and a full
 * queue is an immediate `rejected` frame back to the client rather
 * than an unbounded backlog — under overload the server stays
 * responsive and clients learn to retry, which is the behavior a
 * sweep farm wants (jobs are seconds long; a deep queue would just
 * move the wait somewhere invisible).
 *
 * Close(drain=true) lets already-admitted jobs run out before Pop
 * starts returning nullopt — the graceful-shutdown path.
 */

#ifndef PIM_SERVE_JOB_QUEUE_H
#define PIM_SERVE_JOB_QUEUE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace pim::serve {

class JobQueue
{
  public:
    explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

    /**
     * Admit @p job if there is room and the queue is open; false means
     * "reject with backpressure" (full or closing).
     */
    bool
    TryPush(std::uint64_t job)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_ || jobs_.size() >= capacity_) {
            return false;
        }
        jobs_.push_back(job);
        cv_.notify_one();
        return true;
    }

    /**
     * Block until a job is available or the queue is closed and (when
     * draining) empty; nullopt tells the worker to exit.
     */
    std::optional<std::uint64_t>
    Pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
        if (jobs_.empty()) {
            return std::nullopt; // closed and drained
        }
        if (closed_ && !drain_) {
            return std::nullopt; // closed hard; abandon the backlog
        }
        const std::uint64_t job = jobs_.front();
        jobs_.pop_front();
        return job;
    }

    /**
     * Stop admitting.  @p drain keeps Pop serving the backlog until
     * empty; !drain abandons queued jobs immediately.
     */
    void
    Close(bool drain)
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
        drain_ = drain;
        cv_.notify_all();
    }

    std::size_t
    Depth() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return jobs_.size();
    }

    std::size_t capacity() const { return capacity_; }

    /** Jobs abandoned by a non-draining Close (reported as failed). */
    std::deque<std::uint64_t>
    DrainRemaining()
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::deque<std::uint64_t> out;
        out.swap(jobs_);
        return out;
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::uint64_t> jobs_;
    bool closed_ = false;
    bool drain_ = true;
};

} // namespace pim::serve

#endif // PIM_SERVE_JOB_QUEUE_H
