/**
 * @file
 * ServeClient: a blocking pim_serve connection.
 *
 * Thin wrapper over one Unix-domain socket speaking the frame protocol
 * — shared by the `pim_client` CLI and the loopback tests, so the
 * exact bytes a test exchanges are the bytes the tool exchanges.
 */

#ifndef PIM_SERVE_CLIENT_H
#define PIM_SERVE_CLIENT_H

#include <memory>
#include <optional>
#include <string>

#include "common/json.h"
#include "serve/protocol.h"

namespace pim::serve {

class ServeClient
{
  public:
    /** Connect to a server socket; nullptr + @p error on failure. */
    static std::unique_ptr<ServeClient>
    Connect(const std::string &socket_path, std::string *error = nullptr);

    /** Adopt an already-connected fd (socketpair tests). */
    explicit ServeClient(int fd) : fd_(fd), reader_(fd) {}

    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Send one request frame. */
    bool Send(const JsonValue &request);

    /** Send raw bytes verbatim (protocol-abuse tests). */
    bool SendRaw(const std::string &bytes);

    /**
     * Read the next frame; nullopt once the server closes the stream
     * or sends unparseable bytes.  @p raw, when given, receives the
     * exact frame text (the CI artifact preserves server bytes
     * verbatim).
     */
    std::optional<JsonValue> Read(std::string *raw = nullptr);

    int fd() const { return fd_; }

  private:
    int fd_;
    FrameReader reader_;
};

} // namespace pim::serve

#endif // PIM_SERVE_CLIENT_H
