#include "serve/client.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace pim::serve {

std::unique_ptr<ServeClient>
ServeClient::Connect(const std::string &socket_path, std::string *error)
{
    std::signal(SIGPIPE, SIG_IGN);
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr) {
            *error = "socket path too long: " + socket_path;
        }
        return nullptr;
    }
    std::memcpy(addr.sun_path, socket_path.data(), socket_path.size());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error != nullptr) {
            *error = "cannot create socket";
        }
        return nullptr;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        if (error != nullptr) {
            *error = "cannot connect to '" + socket_path +
                     "' (is pim_serve running?)";
        }
        return nullptr;
    }
    return std::make_unique<ServeClient>(fd);
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

bool
ServeClient::Send(const JsonValue &request)
{
    return WriteFrame(fd_, request);
}

bool
ServeClient::SendRaw(const std::string &bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n =
            ::write(fd_, bytes.data() + sent, bytes.size() - sent);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        return false;
    }
    return true;
}

std::optional<JsonValue>
ServeClient::Read(std::string *raw)
{
    std::string line;
    if (reader_.ReadFrame(&line) != FrameStatus::kOk) {
        return std::nullopt;
    }
    if (raw != nullptr) {
        *raw = line;
    }
    return JsonParse(line);
}

} // namespace pim::serve
