#include "serve/result_memo.h"

#include "common/digest.h"
#include "common/json.h"

namespace pim::serve {

namespace {

/** Fixed-format number fragment (matches the JSON dumper's rules). */
std::string
Num(double v)
{
    return JsonValue::NumberToString(v);
}

void
AppendCache(std::string &out, const char *level,
            const sim::CacheConfig &c)
{
    out += level;
    out += ":size=";
    out += std::to_string(c.size);
    out += ",assoc=";
    out += std::to_string(c.associativity);
    out += ",line=";
    out += std::to_string(c.line_bytes);
}

} // namespace

std::string
CanonicalPointKey(const sim::HierarchyConfig &base,
                  const sim::CacheConfig &llc_point)
{
    // Field order, spellings, and number formatting are frozen: this
    // string IS the memo key schema (DESIGN.md §5h).  base.llc is
    // deliberately ignored — the point replaces it.
    std::string key;
    key.reserve(160);
    AppendCache(key, "l1", base.l1);
    key += ";";
    AppendCache(key, "llc", llc_point);
    key += ";dram:bw_gbps=";
    key += Num(base.dram.bandwidth_gbps);
    key += ",lat_ns=";
    key += Num(base.dram.access_latency_ns);
    key += ",dram_pj=";
    key += Num(base.dram.dram_pj_per_byte);
    key += ",ic_pj=";
    key += Num(base.dram.interconnect_pj_per_byte);
    key += ",mc_pj=";
    key += Num(base.dram.memctrl_pj_per_byte);
    return key;
}

std::string
MemoKey(std::uint64_t trace_digest, const std::string &canonical_config)
{
    return ContentDigest::ToHex(trace_digest) + "|" + canonical_config;
}

} // namespace pim::serve
