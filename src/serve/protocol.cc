#include "serve/protocol.h"

#include <cerrno>
#include <csignal>

#include <unistd.h>

namespace pim::serve {

FrameStatus
FrameReader::ReadFrame(std::string *out)
{
    for (;;) {
        // Serve a buffered line first.
        const auto nl = buf_.find('\n');
        if (nl != std::string::npos) {
            out->assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            if (out->empty()) {
                continue; // tolerate blank keep-alive lines
            }
            return FrameStatus::kOk;
        }
        if (buf_.size() >= kMaxFrameBytes) {
            buf_.clear();
            return FrameStatus::kTooLarge;
        }
        char chunk[4096];
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            return FrameStatus::kClosed;
        }
        if (errno == EINTR) {
            continue;
        }
        return FrameStatus::kError;
    }
}

bool
WriteFrame(int fd, const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
        // MSG_NOSIGNAL is socket-only; plain write() with SIGPIPE
        // ignored (the server ignores it process-wide) keeps this
        // usable over socketpairs in tests too.
        const ssize_t n =
            ::write(fd, framed.data() + sent, framed.size() - sent);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) {
            continue;
        }
        return false;
    }
    return true;
}

bool
WriteFrame(int fd, const JsonValue &v)
{
    return WriteFrame(fd, v.Dump());
}

JsonValue
MakeError(const std::string &code, const std::string &detail)
{
    JsonValue v = JsonValue::Object();
    v.Set("type", "error");
    v.Set("error", code);
    v.Set("detail", detail);
    return v;
}

} // namespace pim::serve
