/**
 * @file
 * Minimal matrix container for the quantized-inference stack.
 *
 * TensorFlow Mobile lowers Conv2D/MatMul layers to 2-D GEMM on
 * gemmlowp's quantized matrices; everything in this workload operates
 * on row-major matrices of float / uint8 / int32.
 */

#ifndef PIM_ML_TENSOR_H
#define PIM_ML_TENSOR_H

#include <cstdint>

#include "common/buffer.h"
#include "common/logging.h"
#include "common/rng.h"

namespace pim::ml {

/** Row-major matrix backed by a SimBuffer. */
template <typename T>
class Matrix
{
  public:
    Matrix() : rows_(0), cols_(0) {}

    Matrix(int rows, int cols, T fill = T())
        : rows_(rows), cols_(cols),
          data_(static_cast<std::size_t>(rows) * cols, fill)
    {
        PIM_ASSERT(rows > 0 && cols > 0, "matrix must be non-empty");
    }

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    Bytes size_bytes() const { return data_.size_bytes(); }

    T &
    At(int r, int c)
    {
        return data_[Index(r, c)];
    }
    T
    At(int r, int c) const
    {
        return data_[Index(r, c)];
    }

    Address
    SimAddr(int r, int c) const
    {
        return data_.SimAddr(Index(r, c));
    }

    pim::SimBuffer<T> &buffer() { return data_; }
    const pim::SimBuffer<T> &buffer() const { return data_; }

    /** Fill with deterministic pseudo-random content. */
    void
    Randomize(Rng &rng)
    {
        for (auto &v : data_) {
            if constexpr (std::is_floating_point_v<T>) {
                v = static_cast<T>(rng.NextDouble() * 2.0 - 1.0);
            } else {
                v = static_cast<T>(rng.Next64());
            }
        }
    }

  private:
    std::size_t
    Index(int r, int c) const
    {
        PIM_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                   "(%d,%d) out of %dx%d", r, c, rows_, cols_);
        return static_cast<std::size_t>(r) * cols_ + c;
    }

    int rows_;
    int cols_;
    pim::SimBuffer<T> data_;
};

} // namespace pim::ml

#endif // PIM_ML_TENSOR_H
