#include "workloads/ml/conv2d.h"

#include "common/logging.h"

namespace pim::ml {

void
Im2Col(const ImageU8 &image, const LayerSpec &layer,
       std::uint8_t zero_point, Matrix<std::uint8_t> &patches,
       core::ExecutionContext &ctx)
{
    PIM_ASSERT(image.h() == layer.in_h && image.w() == layer.in_w &&
                   image.c() == layer.in_ch,
               "image %dx%dx%d does not match layer %dx%dx%d", image.h(),
               image.w(), image.c(), layer.in_h, layer.in_w, layer.in_ch);
    PIM_ASSERT(patches.rows() == layer.gemm_m() &&
                   patches.cols() == layer.gemm_k(),
               "patch matrix shape mismatch");

    auto &mem = ctx.mem();
    auto &ops = ctx.ops();

    const int pad = layer.kernel / 2; // SAME padding
    int row = 0;
    for (int oy = 0; oy < layer.out_h(); ++oy) {
        for (int ox = 0; ox < layer.out_w(); ++ox, ++row) {
            int col = 0;
            for (int ky = 0; ky < layer.kernel; ++ky) {
                const int y = oy * layer.stride + ky - pad;
                for (int kx = 0; kx < layer.kernel; ++kx) {
                    const int x = ox * layer.stride + kx - pad;
                    const bool inside = y >= 0 && y < image.h() &&
                                        x >= 0 && x < image.w();
                    for (int ch = 0; ch < image.c(); ++ch) {
                        patches.At(row, col + ch) =
                            inside ? image.At(y, x, ch) : zero_point;
                    }
                    if (inside) {
                        // One strided channel-vector read per tap.
                        mem.Read(image.SimAddr(y, x, 0),
                                 static_cast<Bytes>(image.c()));
                        ops.Load((static_cast<Bytes>(image.c()) + 15) /
                                 16);
                    }
                    ops.Alu(3); // tap address computation + bounds
                    col += image.c();
                }
            }
            // The assembled patch row streams out sequentially.
            mem.Write(patches.SimAddr(row, 0),
                      static_cast<Bytes>(patches.cols()));
            ops.Store((static_cast<Bytes>(patches.cols()) + 15) / 16);
            ops.Branch(static_cast<std::uint64_t>(layer.kernel) *
                       layer.kernel);
        }
    }
}

} // namespace pim::ml
