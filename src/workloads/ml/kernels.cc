/**
 * @file
 * Registry entries for the paper's TensorFlow Mobile PIM-target
 * kernels (Figure 19 left, Section 5): gemmlowp-style packing and
 * result re-quantization.
 *
 * Like the browser catalog, both kernels share one TfInputs object per
 * KernelSession so a group run reproduces the original Figure 19
 * setup's RNG stream and allocation order exactly.
 */

#include <cstdint>
#include <memory>
#include <optional>

#include "common/rng.h"
#include "core/kernel_registry.h"
#include "workloads/ml/pack.h"
#include "workloads/ml/quantize.h"

namespace pim::ml {

namespace {

using core::ExecutionContext;
using core::KernelInstance;
using core::KernelSpec;

/** Shared per-session inputs, staged in the legacy setup order. */
struct TfInputs
{
    explicit TfInputs(double scale) : scale(scale) {}

    double scale;
    Rng rng{0x7F};
    int pack_rows = 0;
    int quant_rows = 0;
    std::optional<Matrix<std::uint8_t>> lhs;
    std::optional<Matrix<std::int32_t>> result32;

    /** Packing: a network-scale GEMM operand chunk (1024x1152). */
    void
    EnsureLhs()
    {
        if (lhs) {
            return;
        }
        pack_rows = core::ScaleDim(1024, scale, 8);
        lhs.emplace(pack_rows, 1152);
        lhs->Randomize(rng);
    }

    /** Quantization: a 32-bit GEMM result matrix (1024x512). */
    void
    EnsureResult32()
    {
        EnsureLhs();
        if (result32) {
            return;
        }
        quant_rows = core::ScaleDim(1024, scale, 8);
        result32.emplace(quant_rows, 512);
        for (int r = 0; r < result32->rows(); ++r) {
            for (int c = 0; c < result32->cols(); ++c) {
                result32->At(r, c) = static_cast<std::int32_t>(
                    rng.Range(-1000000, 1000000));
            }
        }
    }
};

std::shared_ptr<TfInputs>
Inputs(std::shared_ptr<void> &state, double scale)
{
    if (!state) {
        state = std::make_shared<TfInputs>(scale);
    }
    return std::static_pointer_cast<TfInputs>(state);
}

} // namespace

PIM_REGISTER_KERNEL(tf_packing)
{
    KernelSpec spec;
    spec.name = "Packing";
    spec.group = "tf";
    spec.figure = "Figure 19";
    spec.order = 0;
    spec.make = [](std::shared_ptr<void> &state, double scale) {
        auto in = Inputs(state, scale);
        in->EnsureLhs();
        KernelInstance inst;
        inst.footprint = {in->lhs->size_bytes(), in->lhs->size_bytes()};
        inst.run = [in](ExecutionContext &ctx) {
            PackedMatrix packed(in->pack_rows, 1152);
            PackLhs(*in->lhs, packed, ctx);
        };
        return inst;
    };
    return spec;
}

PIM_REGISTER_KERNEL(tf_quantization)
{
    KernelSpec spec;
    spec.name = "Quantization";
    spec.group = "tf";
    spec.figure = "Figure 19";
    spec.order = 1;
    spec.make = [](std::shared_ptr<void> &state, double scale) {
        auto in = Inputs(state, scale);
        in->EnsureResult32();
        KernelInstance inst;
        inst.footprint = {in->result32->size_bytes(),
                          in->result32->size_bytes() / 4};
        inst.run = [in](ExecutionContext &ctx) {
            Matrix<std::uint8_t> out(in->quant_rows, 512);
            RequantizeResult(*in->result32, out, ctx);
        };
        return inst;
    };
    return spec;
}

} // namespace pim::ml

PIM_KERNEL_ANCHOR(ml_kernels)
