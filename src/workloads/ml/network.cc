#include "workloads/ml/network.h"

namespace pim::ml {

int
NetworkSpec::TotalLayerInvocations() const
{
    int total = 0;
    for (const auto &l : layers) {
        total += l.repeat;
    }
    return total;
}

std::int64_t
NetworkSpec::TotalMacs() const
{
    std::int64_t total = 0;
    for (const auto &l : layers) {
        total += l.repeat * l.gemm_m() * l.gemm_k() * l.gemm_n();
    }
    return total;
}

NetworkSpec
Vgg19()
{
    NetworkSpec n;
    n.name = "VGG-19";
    n.layers = {
        {"conv1", 224, 224, 3, 64, 3, 1, 1},
        {"conv1b", 224, 224, 64, 64, 3, 1, 1},
        {"conv2", 112, 112, 64, 128, 3, 1, 1},
        {"conv2b", 112, 112, 128, 128, 3, 1, 1},
        {"conv3", 56, 56, 128, 256, 3, 1, 1},
        {"conv3x", 56, 56, 256, 256, 3, 1, 3},
        {"conv4", 28, 28, 256, 512, 3, 1, 1},
        {"conv4x", 28, 28, 512, 512, 3, 1, 3},
        {"conv5x", 14, 14, 512, 512, 3, 1, 4},
        {"fc6", 1, 1, 25088, 4096, 1, 1, 1},
        {"fc7", 1, 1, 4096, 4096, 1, 1, 1},
        {"fc8", 1, 1, 4096, 1000, 1, 1, 1},
    };
    return n;
}

NetworkSpec
ResNetV2_152()
{
    // Bottleneck stages: 3 + 8 + 36 + 3 blocks of [1x1, 3x3, 1x1],
    // plus the stem conv and final FC: 152 weight layers, and the
    // paper's 156 Conv2D invocations once projection shortcuts count.
    NetworkSpec n;
    n.name = "ResNet-V2-152";
    n.layers = {
        {"stem", 224, 224, 3, 64, 7, 2, 1},
        // Stage 1: 56x56, width 64 -> 256.
        {"s1.reduce", 56, 56, 256, 64, 1, 1, 3},
        {"s1.conv3", 56, 56, 64, 64, 3, 1, 3},
        {"s1.expand", 56, 56, 64, 256, 1, 1, 3},
        {"s1.proj", 56, 56, 64, 256, 1, 1, 1},
        // Stage 2: 28x28, width 128 -> 512.
        {"s2.reduce", 28, 28, 512, 128, 1, 1, 8},
        {"s2.conv3", 28, 28, 128, 128, 3, 1, 8},
        {"s2.expand", 28, 28, 128, 512, 1, 1, 8},
        {"s2.proj", 28, 28, 256, 512, 1, 1, 1},
        // Stage 3: 14x14, width 256 -> 1024.
        {"s3.reduce", 14, 14, 1024, 256, 1, 1, 36},
        {"s3.conv3", 14, 14, 256, 256, 3, 1, 36},
        {"s3.expand", 14, 14, 256, 1024, 1, 1, 36},
        {"s3.proj", 14, 14, 512, 1024, 1, 1, 1},
        // Stage 4: 7x7, width 512 -> 2048.
        {"s4.reduce", 7, 7, 2048, 512, 1, 1, 3},
        {"s4.conv3", 7, 7, 512, 512, 3, 1, 3},
        {"s4.expand", 7, 7, 512, 2048, 1, 1, 3},
        {"s4.proj", 7, 7, 1024, 2048, 1, 1, 1},
        {"fc", 1, 1, 2048, 1000, 1, 1, 1},
    };
    return n;
}

NetworkSpec
InceptionResNetV2()
{
    // Approximated: the real network mixes 1x1/3x3/1x7/7x1 branches in
    // 10 + 20 + 10 residual blocks over 35/17/8 grids.  We keep the
    // block counts and grid sizes with square-kernel equivalents.
    NetworkSpec n;
    n.name = "Inception-ResNet-V2";
    n.layers = {
        {"stem1", 149, 149, 3, 32, 3, 1, 1},
        {"stem2", 147, 147, 32, 64, 3, 1, 2},
        {"stemA", 73, 73, 64, 96, 3, 1, 2},
        // Block A x10: three branches (1x1, 1x1->3x3, 1x1->3x3->3x3).
        {"A.1x1", 35, 35, 320, 32, 1, 1, 30},
        {"A.3x3", 35, 35, 32, 48, 3, 1, 30},
        {"A.join", 35, 35, 128, 320, 1, 1, 10},
        // Block B x20: 1x1 + factorized 7x7 branch.
        {"B.1x1", 17, 17, 1088, 128, 1, 1, 40},
        {"B.7x7", 17, 17, 128, 160, 3, 1, 20}, // 1x7+7x1 as one 3x3-cost
        {"B.join", 17, 17, 384, 1088, 1, 1, 20},
        // Block C x10.
        {"C.1x1", 8, 8, 2080, 192, 1, 1, 20},
        {"C.3x3", 8, 8, 192, 224, 3, 1, 10},
        {"C.join", 8, 8, 448, 2080, 1, 1, 10},
        {"fc", 1, 1, 1536, 1000, 1, 1, 1},
    };
    return n;
}

NetworkSpec
ResidualGru()
{
    // Toderici et al. full-resolution image compression: an encoder /
    // decoder pair of stacked convolutional GRU cells unrolled over 8
    // iterations.  Each GRU cell step applies gate convolutions on the
    // input and hidden state; dimensions follow the 32x32-patch model.
    NetworkSpec n;
    n.name = "Residual-GRU";
    n.layers = {
        {"enc.init", 32, 32, 3, 64, 3, 2, 1},
        // 8 iterations x 3 encoder GRU cells (input + hidden convs).
        {"enc.gru.in", 16, 16, 64, 256, 3, 2, 24},
        {"enc.gru.h", 8, 8, 256, 256, 1, 1, 24},
        {"binarizer", 2, 2, 512, 32, 1, 1, 8},
        // 8 iterations x 4 decoder GRU cells.
        {"dec.gru.in", 2, 2, 32, 512, 1, 1, 32},
        {"dec.gru.h", 4, 4, 512, 512, 1, 1, 32},
        {"dec.up", 8, 8, 512, 256, 3, 1, 24},
        {"dec.out", 32, 32, 64, 3, 1, 1, 8},
    };
    return n;
}

std::vector<NetworkSpec>
AllNetworks()
{
    return {ResNetV2_152(), Vgg19(), ResidualGru(), InceptionResNetV2()};
}

} // namespace pim::ml
