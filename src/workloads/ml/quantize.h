/**
 * @file
 * Quantization kernels (the paper's Section 5.3, second PIM target).
 *
 * TensorFlow Mobile quantizes each Conv2D's 32-bit input matrix to 8-bit
 * before GEMM and re-quantizes the 32-bit result matrix afterwards
 * (Figure 8): two full scans per matrix — one to find min/max, one to
 * convert — which is pure data movement plus shift/add/multiply.
 */

#ifndef PIM_ML_QUANTIZE_H
#define PIM_ML_QUANTIZE_H

#include <cstdint>

#include "core/execution_context.h"
#include "workloads/ml/tensor.h"

namespace pim::ml {

/** Asymmetric uint8 quantization parameters (gemmlowp convention). */
struct QuantParams
{
    float scale = 1.0f;       ///< real = scale * (quantized - zero_point)
    std::int32_t zero_point = 0;
};

/** Min/max of a matrix (the first scan of Figure 8). */
template <typename T>
struct MinMax
{
    T min_value;
    T max_value;
};

/** Scan a float matrix for its range; instrumented. */
MinMax<float> FindMinMax(const Matrix<float> &m,
                         core::ExecutionContext &ctx);

/** Scan an int32 matrix for its range; instrumented. */
MinMax<std::int32_t> FindMinMax(const Matrix<std::int32_t> &m,
                                core::ExecutionContext &ctx);

/** Derive quantization parameters covering [min, max] (gemmlowp style). */
QuantParams ChooseQuantParams(float min_value, float max_value);

/**
 * Quantize a float input matrix to uint8 (Figure 8 steps 1-2:
 * min/max scan + conversion scan).  @return the parameters used.
 */
QuantParams QuantizeFloat(const Matrix<float> &in, Matrix<std::uint8_t> &out,
                          core::ExecutionContext &ctx);

/**
 * Re-quantize a 32-bit GEMM result matrix to uint8 (Figure 8 steps 3-4).
 * @return the parameters used.
 */
QuantParams RequantizeResult(const Matrix<std::int32_t> &in,
                             Matrix<std::uint8_t> &out,
                             core::ExecutionContext &ctx);

/** Reference dequantization for verification. */
float Dequantize(std::uint8_t q, const QuantParams &params);

} // namespace pim::ml

#endif // PIM_ML_QUANTIZE_H
