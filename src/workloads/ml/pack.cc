#include "workloads/ml/pack.h"

#include "common/logging.h"

namespace pim::ml {

namespace {
constexpr int kPanel = PackBlocking::kPanel;
}

PackedMatrix::PackedMatrix(int outer, int depth)
    : outer_(outer), depth_(depth),
      panels_((outer + kPanel - 1) / kPanel),
      storage_(static_cast<std::size_t>(panels_) * kPanel * depth, 0)
{
    PIM_ASSERT(outer > 0 && depth > 0, "packed matrix must be non-empty");
}

std::size_t
PackedMatrix::StorageIndex(int o, int k) const
{
    PIM_ASSERT(o >= 0 && o < panels_ * kPanel && k >= 0 && k < depth_,
               "(%d,%d) out of packed %dx%d", o, k, panels_ * kPanel,
               depth_);
    const int panel = o / kPanel;
    const int lane = o % kPanel;
    return static_cast<std::size_t>(panel) * kPanel * depth_ +
           static_cast<std::size_t>(k) * kPanel + lane;
}

std::uint8_t
PackedMatrix::At(int o, int k) const
{
    return storage_[StorageIndex(o, k)];
}

void
PackedMatrix::Set(int o, int k, std::uint8_t v)
{
    storage_[StorageIndex(o, k)] = v;
}

PackedResult::PackedResult(int rows, int cols)
    : rows_(rows), cols_(cols), block_rows_((rows + kPanel - 1) / kPanel),
      block_cols_((cols + kPanel - 1) / kPanel),
      storage_(static_cast<std::size_t>(block_rows_) * block_cols_ *
                   kPanel * kPanel,
               0)
{
    PIM_ASSERT(rows > 0 && cols > 0, "result must be non-empty");
}

std::size_t
PackedResult::StorageIndex(int r, int c) const
{
    PIM_ASSERT(r >= 0 && r < block_rows_ * kPanel && c >= 0 &&
                   c < block_cols_ * kPanel,
               "(%d,%d) out of blocks", r, c);
    const int br = r / kPanel;
    const int bc = c / kPanel;
    const int ir = r % kPanel;
    const int ic = c % kPanel;
    return (static_cast<std::size_t>(br) * block_cols_ + bc) * kPanel *
               kPanel +
           static_cast<std::size_t>(ir) * kPanel + ic;
}

std::int32_t
PackedResult::At(int r, int c) const
{
    return storage_[StorageIndex(r, c)];
}

void
PackedResult::Set(int r, int c, std::int32_t v)
{
    storage_[StorageIndex(r, c)] = v;
}

void
PackLhs(const Matrix<std::uint8_t> &src, PackedMatrix &dst,
        core::ExecutionContext &ctx)
{
    PIM_ASSERT(src.rows() == dst.outer() && src.cols() == dst.depth(),
               "LHS %dx%d does not match packed %dx%d", src.rows(),
               src.cols(), dst.outer(), dst.depth());

    auto &mem = ctx.mem();
    auto &ops = ctx.ops();
    const int depth = dst.depth();

    for (int panel = 0; panel < dst.panels(); ++panel) {
        const int r0 = panel * kPanel;
        // Gather kPanel source rows into depth-major panel storage.
        for (int k = 0; k < depth; ++k) {
            for (int lane = 0; lane < kPanel; ++lane) {
                const int r = r0 + lane;
                const std::uint8_t v =
                    r < src.rows() ? src.At(r, k) : 0;
                dst.Set(r0 + lane, k, v);
            }
        }
        // Traffic: each source row is read once (streaming), but the
        // destination interleaves lanes, so writes go out depth-major.
        for (int lane = 0; lane < kPanel; ++lane) {
            const int r = r0 + lane;
            if (r < src.rows()) {
                mem.Read(src.SimAddr(r, 0), static_cast<Bytes>(depth));
                ops.Load((static_cast<Bytes>(depth) + 15) / 16);
            }
        }
        mem.Write(dst.storage().SimAddr(
                      static_cast<std::size_t>(panel) * kPanel * depth),
                  static_cast<Bytes>(kPanel) * depth);
        ops.Store((static_cast<Bytes>(kPanel) * depth + 15) / 16);
        // Index arithmetic: interleave shuffles per 16-byte group.
        ops.VectorAlu(static_cast<Bytes>(kPanel) * depth / 8);
        ops.Branch(static_cast<std::uint64_t>(depth) / 16 + 1);
    }
}

void
PackRhs(const Matrix<std::uint8_t> &src, PackedMatrix &dst,
        core::ExecutionContext &ctx)
{
    PIM_ASSERT(src.cols() == dst.outer() && src.rows() == dst.depth(),
               "RHS %dx%d does not match packed outer %d depth %d",
               src.rows(), src.cols(), dst.outer(), dst.depth());

    auto &mem = ctx.mem();
    auto &ops = ctx.ops();
    const int depth = dst.depth();

    for (int panel = 0; panel < dst.panels(); ++panel) {
        const int c0 = panel * kPanel;
        for (int k = 0; k < depth; ++k) {
            for (int lane = 0; lane < kPanel; ++lane) {
                const int c = c0 + lane;
                const std::uint8_t v =
                    c < src.cols() ? src.At(k, c) : 0;
                dst.Set(c0 + lane, k, v);
            }
            // Column gather: one strided read of kPanel bytes per k.
            mem.Read(src.SimAddr(k, std::min(c0, src.cols() - 1)),
                     kPanel);
            ops.Load(1);
            ops.Alu(2);
        }
        mem.Write(dst.storage().SimAddr(
                      static_cast<std::size_t>(panel) * kPanel * depth),
                  static_cast<Bytes>(kPanel) * depth);
        ops.Store((static_cast<Bytes>(kPanel) * depth + 15) / 16);
        ops.Branch(static_cast<std::uint64_t>(depth) / 16 + 1);
    }
}

void
UnpackResult(const PackedResult &src, Matrix<std::int32_t> &dst,
             core::ExecutionContext &ctx)
{
    PIM_ASSERT(src.rows() == dst.rows() && src.cols() == dst.cols(),
               "result %dx%d does not match %dx%d", src.rows(), src.cols(),
               dst.rows(), dst.cols());

    auto &mem = ctx.mem();
    auto &ops = ctx.ops();

    for (int br = 0; br < src.block_rows(); ++br) {
        for (int bc = 0; bc < src.block_cols(); ++bc) {
            const int r0 = br * kPanel;
            const int c0 = bc * kPanel;
            for (int ir = 0; ir < kPanel; ++ir) {
                const int r = r0 + ir;
                if (r >= dst.rows()) {
                    break;
                }
                for (int ic = 0; ic < kPanel; ++ic) {
                    const int c = c0 + ic;
                    if (c >= dst.cols()) {
                        break;
                    }
                    dst.At(r, c) = src.At(r, c);
                }
                // Block row read is contiguous; destination write is a
                // short strided row segment.
                mem.Read(src.storage().SimAddr(src.StorageIndex(r, c0)),
                         kPanel * sizeof(std::int32_t));
                mem.Write(dst.SimAddr(r, std::min(c0, dst.cols() - 1)),
                          kPanel * sizeof(std::int32_t));
                ops.Load(2);
                ops.Store(2);
                ops.Alu(4);
            }
            ops.Branch(kPanel);
        }
    }
}

} // namespace pim::ml
