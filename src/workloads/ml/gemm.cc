#include "workloads/ml/gemm.h"

#include "common/logging.h"

namespace pim::ml {

namespace {
constexpr int kPanel = PackBlocking::kPanel;
}

void
QuantizedGemm(const PackedMatrix &lhs, std::int32_t za,
              const PackedMatrix &rhs, std::int32_t zb,
              PackedResult &result, core::ExecutionContext &ctx)
{
    PIM_ASSERT(lhs.depth() == rhs.depth(), "depth mismatch %d vs %d",
               lhs.depth(), rhs.depth());
    PIM_ASSERT(result.rows() == lhs.outer() && result.cols() == rhs.outer(),
               "result shape mismatch");

    auto &mem = ctx.mem();
    auto &ops = ctx.ops();
    const int depth = lhs.depth();

    const std::uint8_t *lhs_base = lhs.storage().data();
    const std::uint8_t *rhs_base = rhs.storage().data();

    for (int bi = 0; bi < lhs.panels(); ++bi) {
        const std::uint8_t *pa =
            lhs_base + static_cast<std::size_t>(bi) * kPanel * depth;
        for (int bj = 0; bj < rhs.panels(); ++bj) {
            const std::uint8_t *pb =
                rhs_base + static_cast<std::size_t>(bj) * kPanel * depth;
            std::int32_t acc[kPanel][kPanel] = {};
            for (int k = 0; k < depth; ++k) {
                const std::uint8_t *ak = pa + static_cast<std::size_t>(k) *
                                                  kPanel;
                const std::uint8_t *bk = pb + static_cast<std::size_t>(k) *
                                                  kPanel;
                for (int r = 0; r < kPanel; ++r) {
                    const std::int32_t a =
                        static_cast<std::int32_t>(ak[r]) - za;
                    for (int c = 0; c < kPanel; ++c) {
                        acc[r][c] +=
                            a * (static_cast<std::int32_t>(bk[c]) - zb);
                    }
                }
            }
            for (int r = 0; r < kPanel; ++r) {
                const int rr = bi * kPanel + r;
                if (rr >= result.rows()) {
                    break;
                }
                for (int c = 0; c < kPanel; ++c) {
                    const int cc = bj * kPanel + c;
                    if (cc >= result.cols()) {
                        break;
                    }
                    result.Set(rr, cc, acc[r][c]);
                }
            }

            // Traffic: both panel slices stream through once per
            // micro-tile; the accumulators live in registers, and the
            // micro-tile result is written once.
            mem.Read(lhs.storage().SimAddr(
                         static_cast<std::size_t>(bi) * kPanel * depth),
                     static_cast<Bytes>(kPanel) * depth);
            mem.Read(rhs.storage().SimAddr(
                         static_cast<std::size_t>(bj) * kPanel * depth),
                     static_cast<Bytes>(kPanel) * depth);
            mem.Write(result.storage().SimAddr(
                          (static_cast<std::size_t>(bi) *
                               result.block_cols() +
                           bj) *
                          kPanel * kPanel),
                      static_cast<Bytes>(kPanel) * kPanel *
                          sizeof(std::int32_t));

            // One fused multiply-accumulate per element product.
            const auto macs = static_cast<std::uint64_t>(kPanel) *
                              kPanel * depth;
            ops.VectorMul(macs);
            ops.Load(2 * static_cast<std::uint64_t>(kPanel) * depth / 16);
            ops.Store(static_cast<std::uint64_t>(kPanel) * kPanel / 4);
            ops.Branch(static_cast<std::uint64_t>(depth));
        }
    }
}

void
ReferenceGemm(const Matrix<std::uint8_t> &lhs, std::int32_t za,
              const Matrix<std::uint8_t> &rhs, std::int32_t zb,
              Matrix<std::int32_t> &result)
{
    PIM_ASSERT(lhs.cols() == rhs.rows(), "shape mismatch");
    PIM_ASSERT(result.rows() == lhs.rows() && result.cols() == rhs.cols(),
               "result shape mismatch");
    for (int r = 0; r < lhs.rows(); ++r) {
        for (int c = 0; c < rhs.cols(); ++c) {
            std::int64_t acc = 0;
            for (int k = 0; k < lhs.cols(); ++k) {
                acc += (static_cast<std::int32_t>(lhs.At(r, k)) - za) *
                       (static_cast<std::int32_t>(rhs.At(k, c)) - zb);
            }
            result.At(r, c) = static_cast<std::int32_t>(acc);
        }
    }
}

} // namespace pim::ml
