/**
 * @file
 * Quantized GEMM kernel over packed operands (gemmlowp's inner kernel).
 *
 * Computes C[r][c] = sum_k (A[r][k] - za) * (B[c][k] - zb) as int32,
 * walking kPanel x kPanel micro-tiles, exactly the structure the packed
 * layouts are built for.  In the paper's pipeline the CPU runs this
 * kernel while PIM logic performs packing and (re)quantization.
 */

#ifndef PIM_ML_GEMM_H
#define PIM_ML_GEMM_H

#include "core/execution_context.h"
#include "workloads/ml/pack.h"
#include "workloads/ml/quantize.h"
#include "workloads/ml/tensor.h"

namespace pim::ml {

/**
 * Run the packed quantized GEMM: result (M x N) from LHS (M x K) and
 * RHS (K x N), with zero points @p za / @p zb subtracted.
 */
void QuantizedGemm(const PackedMatrix &lhs, std::int32_t za,
                   const PackedMatrix &rhs, std::int32_t zb,
                   PackedResult &result, core::ExecutionContext &ctx);

/** Naive reference GEMM for verification (uninstrumented). */
void ReferenceGemm(const Matrix<std::uint8_t> &lhs, std::int32_t za,
                   const Matrix<std::uint8_t> &rhs, std::int32_t zb,
                   Matrix<std::int32_t> &result);

} // namespace pim::ml

#endif // PIM_ML_GEMM_H
