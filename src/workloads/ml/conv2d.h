/**
 * @file
 * Conv2D lowering: im2col patch extraction over a quantized HWC image.
 *
 * TensorFlow Mobile lowers each 2-D convolution to GEMM by gathering
 * the kernel-sized input patch of every output pixel into a row of a
 * patch matrix (im2col), then multiplying by the (K x out_ch) weight
 * matrix.  The gather is strided and is accounted under the paper's
 * Conv2D category (it ships with the kernel, not with packing).
 */

#ifndef PIM_ML_CONV2D_H
#define PIM_ML_CONV2D_H

#include <cstdint>

#include "core/execution_context.h"
#include "workloads/ml/network.h"
#include "workloads/ml/tensor.h"

namespace pim::ml {

/** A quantized activation image in HWC layout. */
class ImageU8
{
  public:
    ImageU8(int h, int w, int c)
        : h_(h), w_(w), c_(c),
          data_(static_cast<std::size_t>(h) * w * c, 0)
    {
        PIM_ASSERT(h > 0 && w > 0 && c > 0, "image must be non-empty");
    }

    int h() const { return h_; }
    int w() const { return w_; }
    int c() const { return c_; }

    std::uint8_t &
    At(int y, int x, int ch)
    {
        return data_[Index(y, x, ch)];
    }
    std::uint8_t
    At(int y, int x, int ch) const
    {
        return data_[Index(y, x, ch)];
    }

    Address
    SimAddr(int y, int x, int ch) const
    {
        return data_.SimAddr(Index(y, x, ch));
    }

    pim::SimBuffer<std::uint8_t> &buffer() { return data_; }

  private:
    std::size_t
    Index(int y, int x, int ch) const
    {
        PIM_ASSERT(y >= 0 && y < h_ && x >= 0 && x < w_ && ch >= 0 &&
                       ch < c_,
                   "(%d,%d,%d) out of %dx%dx%d", y, x, ch, h_, w_, c_);
        return (static_cast<std::size_t>(y) * w_ + x) * c_ + ch;
    }

    int h_;
    int w_;
    int c_;
    pim::SimBuffer<std::uint8_t> data_;
};

/**
 * Extract im2col patches for @p layer from @p image into @p patches
 * (gemm_m() rows x gemm_k() cols).  Out-of-bounds taps (SAME padding)
 * read as the zero point @p zero_point.
 */
void Im2Col(const ImageU8 &image, const LayerSpec &layer,
            std::uint8_t zero_point, Matrix<std::uint8_t> &patches,
            core::ExecutionContext &ctx);

} // namespace pim::ml

#endif // PIM_ML_CONV2D_H
