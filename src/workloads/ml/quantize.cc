#include "workloads/ml/quantize.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pim::ml {

namespace {

/** Instrument one full scan of a matrix at row granularity. */
template <typename T>
void
CountScan(const Matrix<T> &m, core::ExecutionContext &ctx, bool writes,
          const Matrix<std::uint8_t> *out)
{
    auto &mem = ctx.mem();
    auto &ops = ctx.ops();
    const Bytes row_bytes = static_cast<Bytes>(m.cols()) * sizeof(T);
    for (int r = 0; r < m.rows(); ++r) {
        mem.Read(m.SimAddr(r, 0), row_bytes);
        ops.Load((row_bytes + 15) / 16);
        // Min/max scan: two compares per element, SIMD-friendly.
        ops.VectorAlu(2 * static_cast<std::uint64_t>(m.cols()));
        ops.Branch(1);
        if (writes && out != nullptr) {
            mem.Write(out->SimAddr(r, 0),
                      static_cast<Bytes>(out->cols()));
            ops.Store((static_cast<Bytes>(out->cols()) + 15) / 16);
            // Convert: multiply + add + clamp + narrow per element.
            ops.VectorMul(static_cast<std::uint64_t>(m.cols()));
            ops.VectorAlu(3 * static_cast<std::uint64_t>(m.cols()));
        }
    }
}

} // namespace

MinMax<float>
FindMinMax(const Matrix<float> &m, core::ExecutionContext &ctx)
{
    float mn = m.At(0, 0);
    float mx = m.At(0, 0);
    for (int r = 0; r < m.rows(); ++r) {
        for (int c = 0; c < m.cols(); ++c) {
            mn = std::min(mn, m.At(r, c));
            mx = std::max(mx, m.At(r, c));
        }
    }
    CountScan(m, ctx, /*writes=*/false, nullptr);
    return {mn, mx};
}

MinMax<std::int32_t>
FindMinMax(const Matrix<std::int32_t> &m, core::ExecutionContext &ctx)
{
    std::int32_t mn = m.At(0, 0);
    std::int32_t mx = m.At(0, 0);
    for (int r = 0; r < m.rows(); ++r) {
        for (int c = 0; c < m.cols(); ++c) {
            mn = std::min(mn, m.At(r, c));
            mx = std::max(mx, m.At(r, c));
        }
    }
    CountScan(m, ctx, /*writes=*/false, nullptr);
    return {mn, mx};
}

QuantParams
ChooseQuantParams(float min_value, float max_value)
{
    // The representable range must include zero (gemmlowp requirement).
    min_value = std::min(min_value, 0.0f);
    max_value = std::max(max_value, 0.0f);
    if (min_value == max_value) {
        return {1.0f, 0};
    }
    QuantParams p;
    p.scale = (max_value - min_value) / 255.0f;
    const float zp = -min_value / p.scale;
    p.zero_point = static_cast<std::int32_t>(std::lround(
        std::clamp(zp, 0.0f, 255.0f)));
    return p;
}

QuantParams
QuantizeFloat(const Matrix<float> &in, Matrix<std::uint8_t> &out,
              core::ExecutionContext &ctx)
{
    PIM_ASSERT(in.rows() == out.rows() && in.cols() == out.cols(),
               "shape mismatch");
    const MinMax<float> range = FindMinMax(in, ctx);
    const QuantParams p = ChooseQuantParams(range.min_value,
                                            range.max_value);
    for (int r = 0; r < in.rows(); ++r) {
        for (int c = 0; c < in.cols(); ++c) {
            const float q = in.At(r, c) / p.scale +
                            static_cast<float>(p.zero_point);
            out.At(r, c) = static_cast<std::uint8_t>(
                std::clamp(std::lround(q), 0L, 255L));
        }
    }
    CountScan(in, ctx, /*writes=*/true, &out);
    return p;
}

QuantParams
RequantizeResult(const Matrix<std::int32_t> &in, Matrix<std::uint8_t> &out,
                 core::ExecutionContext &ctx)
{
    PIM_ASSERT(in.rows() == out.rows() && in.cols() == out.cols(),
               "shape mismatch");
    const MinMax<std::int32_t> range = FindMinMax(in, ctx);
    const QuantParams p =
        ChooseQuantParams(static_cast<float>(range.min_value),
                          static_cast<float>(range.max_value));
    for (int r = 0; r < in.rows(); ++r) {
        for (int c = 0; c < in.cols(); ++c) {
            const float q = static_cast<float>(in.At(r, c)) / p.scale +
                            static_cast<float>(p.zero_point);
            out.At(r, c) = static_cast<std::uint8_t>(
                std::clamp(std::lround(q), 0L, 255L));
        }
    }
    CountScan(in, ctx, /*writes=*/true, &out);
    return p;
}

float
Dequantize(std::uint8_t q, const QuantParams &params)
{
    return params.scale *
           (static_cast<float>(q) -
            static_cast<float>(params.zero_point));
}

} // namespace pim::ml
