#include "workloads/ml/inference.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "workloads/ml/conv2d.h"
#include "workloads/ml/gemm.h"
#include "workloads/ml/pack.h"
#include "workloads/ml/quantize.h"

namespace pim::ml {

namespace {

int
ScaleDim(int dim, double factor, int min_dim)
{
    if (dim <= min_dim) {
        return dim;
    }
    return std::max(min_dim,
                    static_cast<int>(std::lround(dim * factor)));
}

void
Take(core::ExecutionContext &ctx, const char *name, PhaseTotals &phase)
{
    const core::RunReport r = ctx.Report(name);
    phase.energy += r.energy;
    phase.time_ns += r.timing.Total();
    phase.instructions += r.ops.Total();
    phase.llc_misses += r.counters.has_llc ? r.counters.llc.Misses()
                                           : r.counters.l1.Misses();
    ctx.Reset(/*drain_caches=*/false);
}

} // namespace

LayerSpec
ScaleLayer(const LayerSpec &layer, const EvalScale &scale)
{
    LayerSpec s = layer;
    s.in_h = ScaleDim(layer.in_h, scale.spatial, scale.min_dim);
    s.in_w = ScaleDim(layer.in_w, scale.spatial, scale.min_dim);
    s.in_ch = ScaleDim(layer.in_ch, scale.channels, scale.min_dim);
    s.out_ch = ScaleDim(layer.out_ch, scale.channels, scale.min_dim);
    s.kernel = std::min(layer.kernel, s.in_h);
    return s;
}

InferenceResult
RunInference(const NetworkSpec &network, const EvalScale &scale,
             core::ExecutionTarget pack_quant_target)
{
    Rng rng(0x1A7E57 ^ std::hash<std::string>{}(network.name));

    core::ExecutionContext host(core::ExecutionTarget::kCpuOnly);
    core::ExecutionContext pim_ctx(pack_quant_target);

    InferenceResult result;
    result.network = network.name;

    for (const LayerSpec &full_layer : network.layers) {
        const LayerSpec layer = ScaleLayer(full_layer, scale);

        // Offload policy: only layers whose operand matrices spill the
        // host LLC benefit from in-memory packing/quantization.
        const Bytes layer_bytes =
            static_cast<Bytes>(layer.gemm_m()) * layer.gemm_k() +
            static_cast<Bytes>(layer.gemm_k()) * layer.gemm_n() +
            static_cast<Bytes>(layer.gemm_m()) * layer.gemm_n() * 4;
        const bool offload =
            pack_quant_target != core::ExecutionTarget::kCpuOnly &&
            layer_bytes >= scale.min_offload_bytes;
        core::ExecutionContext &pq = offload ? pim_ctx : host;

        // Per-layer-spec operands are reused across repeats.
        const auto m = static_cast<int>(layer.gemm_m());
        const auto k = static_cast<int>(layer.gemm_k());
        const auto n = static_cast<int>(layer.gemm_n());

        Matrix<float> activations(layer.in_h * layer.in_w, layer.in_ch);
        activations.Randomize(rng);
        Matrix<std::uint8_t> quantized(layer.in_h * layer.in_w,
                                       layer.in_ch);
        ImageU8 image(layer.in_h, layer.in_w, layer.in_ch);
        Matrix<std::uint8_t> patches(m, k);
        Matrix<std::uint8_t> weights(k, n);
        weights.Randomize(rng);
        PackedMatrix packed_lhs(m, k);
        PackedMatrix packed_rhs(n, k);
        PackedResult packed_result(m, n);
        Matrix<std::int32_t> result32(m, n);
        Matrix<std::uint8_t> result8(m, n);

        for (int rep = 0; rep < full_layer.repeat; ++rep) {
            // --- Quantization: float activations -> uint8.
            const QuantParams qa = QuantizeFloat(activations, quantized,
                                                 pq);
            Take(pq, "quantize-input", result.quantization);

            // --- Other: move the quantized matrix into HWC image form.
            for (int y = 0; y < layer.in_h; ++y) {
                for (int x = 0; x < layer.in_w; ++x) {
                    for (int ch = 0; ch < layer.in_ch; ++ch) {
                        image.At(y, x, ch) =
                            quantized.At(y * layer.in_w + x, ch);
                    }
                }
            }
            host.mem().Read(quantized.SimAddr(0, 0),
                            quantized.size_bytes());
            host.mem().Write(image.buffer().SimAddr(0),
                             quantized.size_bytes());
            host.ops().Load(quantized.size_bytes() / 16);
            host.ops().Store(quantized.size_bytes() / 16);
            Take(host, "activation-copy", result.other);

            // --- Conv2D: im2col on the host (part of the kernel).
            Im2Col(image, layer,
                   static_cast<std::uint8_t>(qa.zero_point), patches,
                   host);
            Take(host, "im2col", result.gemm);

            // --- Packing (PIM target).
            PackLhs(patches, packed_lhs, pq);
            PackRhs(weights, packed_rhs, pq);
            Take(pq, "pack", result.packing);

            // --- GEMM kernel on the host.
            QuantizedGemm(packed_lhs, qa.zero_point, packed_rhs, 128,
                          packed_result, host);
            Take(host, "gemm", result.gemm);

            // --- Unpack (PIM target, same unit as packing).
            UnpackResult(packed_result, result32, pq);
            Take(pq, "unpack", result.packing);

            // --- Re-quantization (PIM target).
            RequantizeResult(result32, result8, pq);
            Take(pq, "requantize", result.quantization);
        }
    }
    return result;
}

} // namespace pim::ml
