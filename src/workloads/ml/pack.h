/**
 * @file
 * gemmlowp-style matrix packing/unpacking (the paper's Section 5.3,
 * first PIM target).
 *
 * gemmlowp executes its fixed-size inner GEMM kernel over matrix chunks
 * that were *packed*: reordered so the kernel streams both operands
 * sequentially.  The LHS is stored as row panels of `panel` rows laid
 * out depth-major; the RHS as column panels of `panel` columns laid out
 * depth-major.  After the kernel runs, the panelized result is
 * *unpacked* back to row-major.  Packing/unpacking is pure data
 * reorganization — index arithmetic plus copies — with a cache-hostile
 * source access pattern on large matrices.
 */

#ifndef PIM_ML_PACK_H
#define PIM_ML_PACK_H

#include <cstdint>

#include "core/execution_context.h"
#include "workloads/ml/tensor.h"

namespace pim::ml {

/** Panel geometry shared by packing and the GEMM kernel. */
struct PackBlocking
{
    static constexpr int kPanel = 8; ///< Kernel micro-tile edge.
};

/**
 * A packed operand: ceil(dim/panel) panels, each panel * depth bytes,
 * depth-major within the panel.  Padding lanes hold zero.
 */
class PackedMatrix
{
  public:
    /**
     * @param outer rows (LHS) or columns (RHS) of the source
     * @param depth the shared GEMM K dimension
     */
    PackedMatrix(int outer, int depth);

    int outer() const { return outer_; }
    int depth() const { return depth_; }
    int panels() const { return panels_; }

    /** Value of (outer index, depth index); padding reads as zero. */
    std::uint8_t At(int o, int k) const;
    void Set(int o, int k, std::uint8_t v);

    /** Storage index of (outer index, depth index). */
    std::size_t StorageIndex(int o, int k) const;

    pim::SimBuffer<std::uint8_t> &storage() { return storage_; }
    const pim::SimBuffer<std::uint8_t> &storage() const
    {
        return storage_;
    }

  private:
    int outer_;
    int depth_;
    int panels_;
    pim::SimBuffer<std::uint8_t> storage_;
};

/**
 * A panelized int32 result: kPanel x kPanel blocks stored contiguously,
 * block-row-major — the layout the GEMM kernel writes before unpacking.
 */
class PackedResult
{
  public:
    PackedResult(int rows, int cols);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    int block_rows() const { return block_rows_; }
    int block_cols() const { return block_cols_; }

    std::int32_t At(int r, int c) const;
    void Set(int r, int c, std::int32_t v);
    std::size_t StorageIndex(int r, int c) const;

    pim::SimBuffer<std::int32_t> &storage() { return storage_; }
    const pim::SimBuffer<std::int32_t> &storage() const
    {
        return storage_;
    }

  private:
    int rows_;
    int cols_;
    int block_rows_;
    int block_cols_;
    pim::SimBuffer<std::int32_t> storage_;
};

/** Pack the LHS (row panels, depth-major); instrumented. */
void PackLhs(const Matrix<std::uint8_t> &src, PackedMatrix &dst,
             core::ExecutionContext &ctx);

/** Pack the RHS (column panels, depth-major); instrumented. */
void PackRhs(const Matrix<std::uint8_t> &src, PackedMatrix &dst,
             core::ExecutionContext &ctx);

/** Unpack the panelized result back to row-major; instrumented. */
void UnpackResult(const PackedResult &src, Matrix<std::int32_t> &dst,
                  core::ExecutionContext &ctx);

} // namespace pim::ml

#endif // PIM_ML_PACK_H
