/**
 * @file
 * Layer tables for the paper's four input networks (Section 3.1):
 * VGG-19, ResNet-v2-152, Inception-ResNet-v2, and Residual-GRU.
 *
 * Substitution note (DESIGN.md): we do not run the real pretrained
 * models; what drives the paper's Figures 6/7/19 is the *shape* of each
 * network — how many Conv2D/MatMul invocations it makes and the GEMM
 * dimensions each lowers to, since packing cost scales with matrix
 * area and quantization cost scales with invocation count times matrix
 * size.  The tables below reproduce those shapes (ResNet's 156 Conv2D
 * operations vs. VGG's 19 weight layers, etc.).
 */

#ifndef PIM_ML_NETWORK_H
#define PIM_ML_NETWORK_H

#include <cstdint>
#include <string>
#include <vector>

namespace pim::ml {

/** One Conv2D (or MatMul, with spatial 1x1) layer. */
struct LayerSpec
{
    std::string name;
    int in_h = 1;
    int in_w = 1;
    int in_ch = 1;
    int out_ch = 1;
    int kernel = 1; ///< Square kernel edge; 1 for MatMul layers.
    int stride = 1;
    int repeat = 1; ///< Consecutive identical layers.

    int out_h() const { return (in_h - 1) / stride + 1; }
    int out_w() const { return (in_w - 1) / stride + 1; }

    /** GEMM dimensions this layer lowers to (M x K times K x N). */
    std::int64_t gemm_m() const
    {
        return static_cast<std::int64_t>(out_h()) * out_w();
    }
    std::int64_t gemm_k() const
    {
        return static_cast<std::int64_t>(kernel) * kernel * in_ch;
    }
    std::int64_t gemm_n() const { return out_ch; }
};

/** A whole network: an ordered list of layers. */
struct NetworkSpec
{
    std::string name;
    std::vector<LayerSpec> layers;

    /** Total Conv2D/MatMul invocations (expands repeats). */
    int TotalLayerInvocations() const;
    /** Total multiply-accumulates across the network. */
    std::int64_t TotalMacs() const;
};

NetworkSpec Vgg19();             ///< 16 conv + 3 FC; few, huge GEMMs.
NetworkSpec ResNetV2_152();      ///< 156 Conv2D; many bottlenecks.
NetworkSpec InceptionResNetV2(); ///< ~190 small mixed convolutions.
NetworkSpec ResidualGru();       ///< Recurrent image-compression net.

/** The paper's four evaluated networks, in figure order. */
std::vector<NetworkSpec> AllNetworks();

} // namespace pim::ml

#endif // PIM_ML_NETWORK_H
