/**
 * @file
 * End-to-end quantized inference driver (the paper's Section 5
 * TensorFlow Mobile pipeline, Figure 8):
 *
 *   per layer: quantize input -> im2col -> pack LHS/RHS -> GEMM kernel
 *              -> unpack -> re-quantize result -> next layer
 *
 * Packing and (re)quantization can be redirected to PIM logic while the
 * host runs im2col + the GEMM kernel, reproducing the Figure 19 study.
 */

#ifndef PIM_ML_INFERENCE_H
#define PIM_ML_INFERENCE_H

#include <string>

#include "core/execution_context.h"
#include "workloads/ml/network.h"

namespace pim::ml {

/**
 * Evaluation-scale knobs (DESIGN.md substitution note): full-resolution
 * networks are too large for an instrumented run, so spatial extents and
 * channel counts are scaled down uniformly; layer *counts* — which drive
 * per-invocation quantization overhead — are preserved exactly.
 */
struct EvalScale
{
    double spatial = 0.5;
    double channels = 0.5;
    int min_dim = 4; ///< Floor for any scaled dimension.

    /**
     * Offload policy: packing/quantization of a layer is sent to PIM
     * only when the layer's matrices exceed this footprint — smaller
     * layers live in the host LLC, where offloading just adds vault
     * traffic (the Section 3.2 "would it lose?" check, applied per
     * invocation).
     */
    Bytes min_offload_bytes = 1_MiB;
};

/** Scale one layer's dimensions. */
LayerSpec ScaleLayer(const LayerSpec &layer, const EvalScale &scale);

/** Aggregated measurement of one pipeline phase across all layers. */
struct PhaseTotals
{
    sim::EnergyBreakdown energy;
    Nanoseconds time_ns = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llc_misses = 0;
};

/** Per-phase result of one inference pass. */
struct InferenceResult
{
    std::string network;

    PhaseTotals packing;      ///< Pack LHS/RHS + unpack result.
    PhaseTotals quantization; ///< Input quantize + result re-quantize.
    PhaseTotals gemm;         ///< im2col + the GEMM kernel (Conv2D).
    PhaseTotals other;        ///< Activation handling, bookkeeping.

    PicoJoules
    TotalEnergy() const
    {
        return packing.energy.Total() + quantization.energy.Total() +
               gemm.energy.Total() + other.energy.Total();
    }

    Nanoseconds
    TotalTime() const
    {
        return packing.time_ns + quantization.time_ns + gemm.time_ns +
               other.time_ns;
    }

    double PackingEnergyFraction() const
    {
        return packing.energy.Total() / TotalEnergy();
    }
    double QuantizationEnergyFraction() const
    {
        return quantization.energy.Total() / TotalEnergy();
    }
};

/**
 * Run one inference pass over @p network.
 *
 * @param pack_quant_target where packing/unpacking and quantization
 *        execute (kCpuOnly reproduces the baseline; PIM targets
 *        reproduce the Section 5.3 offload)
 */
InferenceResult RunInference(const NetworkSpec &network,
                             const EvalScale &scale = {},
                             core::ExecutionTarget pack_quant_target =
                                 core::ExecutionTarget::kCpuOnly);

} // namespace pim::ml

#endif // PIM_ML_INFERENCE_H
