/**
 * @file
 * Link-time aggregation of the per-workload kernel catalogs.
 *
 * Kernel registration is decentralized (each workload library's
 * kernels.cc self-registers through PIM_REGISTER_KERNEL), but static
 * archives only extract objects that resolve a symbol.  Calling
 * EnsureKernelCatalog() anywhere in a binary forces every kernels.cc
 * into the link, guaranteeing the registry is fully populated before
 * main() runs.
 */

#ifndef PIM_WORKLOADS_CATALOG_H
#define PIM_WORKLOADS_CATALOG_H

namespace pim::workloads {

/**
 * Force-link the browser/tf/video kernel catalogs into this binary.
 * Idempotent and cheap; call before querying KernelRegistry::Global().
 */
void EnsureKernelCatalog();

} // namespace pim::workloads

#endif // PIM_WORKLOADS_CATALOG_H
