#include "workloads/catalog.h"

#include "core/kernel_registry.h"

PIM_KERNEL_REQUIRE(browser_kernels)
PIM_KERNEL_REQUIRE(ml_kernels)
PIM_KERNEL_REQUIRE(video_kernels)

namespace pim::workloads {

void
EnsureKernelCatalog()
{
    core::kernel_anchors::browser_kernels();
    core::kernel_anchors::ml_kernels();
    core::kernel_anchors::video_kernels();
}

} // namespace pim::workloads
