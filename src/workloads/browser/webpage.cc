#include "workloads/browser/webpage.h"

namespace pim::browser {

PageProfile
GoogleDocsProfile()
{
    PageProfile p;
    p.name = "GoogleDocs";
    p.new_content_per_frame = 0.35; // dense document, steady scroll
    p.text_fraction = 0.60;
    p.image_fraction = 0.05;
    p.fill_fraction = 0.35;
    p.layout_ops_per_frame = 2.62e6;
    p.other_bytes_per_frame = 2.3e6;
    return p;
}

PageProfile
GmailProfile()
{
    PageProfile p;
    p.name = "Gmail";
    p.new_content_per_frame = 0.28;
    p.text_fraction = 0.55;
    p.image_fraction = 0.10;
    p.fill_fraction = 0.35;
    p.layout_ops_per_frame = 3.33e6; // heavy JS application
    p.other_bytes_per_frame = 3.4e6;
    return p;
}

PageProfile
GoogleCalendarProfile()
{
    PageProfile p;
    p.name = "GoogleCalendar";
    p.new_content_per_frame = 0.25;
    p.text_fraction = 0.35;
    p.image_fraction = 0.05;
    p.fill_fraction = 0.60; // grid of solid cells
    p.layout_ops_per_frame = 2.86e6;
    p.other_bytes_per_frame = 3.0e6;
    return p;
}

PageProfile
WordPressProfile()
{
    PageProfile p;
    p.name = "WordPress";
    p.new_content_per_frame = 0.32;
    p.text_fraction = 0.45;
    p.image_fraction = 0.30; // media-heavy blog content
    p.fill_fraction = 0.25;
    p.layout_ops_per_frame = 3.33e6;
    p.other_bytes_per_frame = 2.3e6;
    return p;
}

PageProfile
TwitterProfile()
{
    PageProfile p;
    p.name = "Twitter";
    p.new_content_per_frame = 0.40; // infinite feed, fast scroll
    p.text_fraction = 0.40;
    p.image_fraction = 0.35;
    p.fill_fraction = 0.25;
    p.layout_ops_per_frame = 2.86e6;
    p.other_bytes_per_frame = 3.4e6;
    return p;
}

PageProfile
AnimationProfile()
{
    PageProfile p;
    p.name = "Animation";
    p.new_content_per_frame = 0.85; // nearly full-screen repaint
    p.scroll_frames = 8;
    p.text_fraction = 0.10;
    p.image_fraction = 0.45;
    p.fill_fraction = 0.45;
    p.layout_ops_per_frame = 1.78e6; // little layout, mostly paint
    p.other_bytes_per_frame = 1.8e6;
    return p;
}

std::vector<PageProfile>
AllPageProfiles()
{
    return {GoogleDocsProfile(),   GmailProfile(),
            GoogleCalendarProfile(), WordPressProfile(),
            TwitterProfile(),      AnimationProfile()};
}

} // namespace pim::browser
