/**
 * @file
 * RGBA bitmap containers used by the rasterization/tiling kernels.
 *
 * Pixels are 32-bit RGBA (8 bits per channel) stored row-major, matching
 * the rasterized textures Chrome's compositor consumes (Section 4.1).
 */

#ifndef PIM_BROWSER_BITMAP_H
#define PIM_BROWSER_BITMAP_H

#include <cstdint>

#include "common/buffer.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/types.h"

namespace pim::browser {

/** Pack four 8-bit channels into an RGBA pixel. */
inline constexpr std::uint32_t
MakePixel(std::uint8_t r, std::uint8_t g, std::uint8_t b, std::uint8_t a)
{
    return static_cast<std::uint32_t>(r) |
           (static_cast<std::uint32_t>(g) << 8) |
           (static_cast<std::uint32_t>(b) << 16) |
           (static_cast<std::uint32_t>(a) << 24);
}

inline constexpr std::uint8_t PixelR(std::uint32_t p) { return p & 0xff; }
inline constexpr std::uint8_t
PixelG(std::uint32_t p)
{
    return (p >> 8) & 0xff;
}
inline constexpr std::uint8_t
PixelB(std::uint32_t p)
{
    return (p >> 16) & 0xff;
}
inline constexpr std::uint8_t
PixelA(std::uint32_t p)
{
    return (p >> 24) & 0xff;
}

/** A row-major RGBA bitmap with a simulated address range. */
class Bitmap
{
  public:
    Bitmap(int width, int height, std::uint32_t fill = 0)
        : width_(width), height_(height),
          pixels_(static_cast<std::size_t>(width) * height, fill)
    {
        PIM_ASSERT(width > 0 && height > 0, "bitmap must be non-empty");
    }

    int width() const { return width_; }
    int height() const { return height_; }
    Bytes size_bytes() const { return pixels_.size_bytes(); }

    std::uint32_t &
    At(int x, int y)
    {
        return pixels_[Index(x, y)];
    }
    std::uint32_t
    At(int x, int y) const
    {
        return pixels_[Index(x, y)];
    }

    /** Simulated address of pixel (x, y). */
    Address
    SimAddr(int x, int y) const
    {
        return pixels_.SimAddr(Index(x, y));
    }

    pim::SimBuffer<std::uint32_t> &pixels() { return pixels_; }
    const pim::SimBuffer<std::uint32_t> &pixels() const { return pixels_; }

    /** Fill with deterministic pseudo-random content. */
    void
    Randomize(Rng &rng)
    {
        for (auto &p : pixels_) {
            p = static_cast<std::uint32_t>(rng.Next64());
        }
    }

  private:
    std::size_t
    Index(int x, int y) const
    {
        PIM_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_,
                   "pixel (%d,%d) out of %dx%d", x, y, width_, height_);
        return static_cast<std::size_t>(y) * width_ + x;
    }

    int width_;
    int height_;
    pim::SimBuffer<std::uint32_t> pixels_;
};

} // namespace pim::browser

#endif // PIM_BROWSER_BITMAP_H
