/**
 * @file
 * Tab-switching simulation (the paper's Section 4.3).
 *
 * A user cycles through N tabs, scrolling each for a few seconds.  When
 * resident page memory exceeds the budget, the OS compresses the
 * least-recently-used tab's pages into ZRAM; switching back to a
 * compressed tab swaps its pages in (decompression).  The driver
 * records the paper's Figure 4 time series (MB/s swapped out/in per
 * simulated second) and the energy/time share of compression work.
 *
 * Scale note (DESIGN.md): footprints are scaled down from real tabs so
 * the instrumented codec runs in seconds; the series *shape* (bursts at
 * switch instants, steady-state rate set by footprint/dwell) and the
 * energy shares are footprint-scale-free.
 */

#ifndef PIM_BROWSER_TAB_SWITCH_H
#define PIM_BROWSER_TAB_SWITCH_H

#include <cstdint>
#include <vector>

#include "core/execution_context.h"

namespace pim::browser {

/** Workload parameters for the tab-switching study. */
struct TabSwitchConfig
{
    int tabs = 50;
    Bytes min_tab_bytes = 128_KiB;
    Bytes max_tab_bytes = 512_KiB;
    /** Resident (uncompressed) memory budget before swapping starts. */
    Bytes memory_budget = 4_MiB;
    double dwell_seconds = 4.0; ///< Time spent per tab before switching.
    int passes = 2;             ///< Cycles through the tab list.
    std::uint64_t seed = 0x7AB5;
};

/** Measured outcome of the tab-switching run. */
struct TabSwitchResult
{
    /** MB swapped out/in per simulated second (Figure 4's two series). */
    std::vector<double> swap_out_mb_per_s;
    std::vector<double> swap_in_mb_per_s;

    Bytes total_swapped_out = 0; ///< Uncompressed bytes compressed.
    Bytes total_swapped_in = 0;  ///< Uncompressed bytes decompressed.
    double compression_ratio = 0.0;

    sim::EnergyBreakdown compression_energy; ///< Compress + decompress.
    sim::EnergyBreakdown other_energy;       ///< Render/scroll/reload.
    Nanoseconds compression_time_ns = 0;
    Nanoseconds other_time_ns = 0;

    double
    CompressionEnergyFraction() const
    {
        const PicoJoules total =
            compression_energy.Total() + other_energy.Total();
        return total <= 0 ? 0.0 : compression_energy.Total() / total;
    }

    double
    CompressionTimeFraction() const
    {
        const Nanoseconds total = compression_time_ns + other_time_ns;
        return total <= 0 ? 0.0 : compression_time_ns / total;
    }
};

/**
 * Run the tab-switching workload with compression executing on
 * @p compression_target (CPU baseline, or PIM logic per Section 4.3.2).
 */
TabSwitchResult
SimulateTabSwitching(const TabSwitchConfig &config,
                     core::ExecutionTarget compression_target =
                         core::ExecutionTarget::kCpuOnly);

} // namespace pim::browser

#endif // PIM_BROWSER_TAB_SWITCH_H
