#include "workloads/browser/lzo.h"

#include <cstring>

#include "common/logging.h"

namespace pim::browser {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr std::size_t kHashBits = 12;
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;

std::uint32_t
Read32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint32_t
HashOf(std::uint32_t v)
{
    return (v * 2654435761u) >> (32 - kHashBits);
}

/** Emit a length with 4-bit base + 255-continuation extension bytes. */
std::size_t
EmitLength(std::uint8_t *dst, std::size_t pos, std::size_t len)
{
    len -= 15; // the 15 already lives in the token nibble
    while (len >= 255) {
        dst[pos++] = 255;
        len -= 255;
    }
    dst[pos++] = static_cast<std::uint8_t>(len);
    return pos;
}

} // namespace

std::size_t
LzoCompressBound(std::size_t n)
{
    // Worst case: all literals; one token per 15 literals plus extension
    // bytes.  n + n/255 + 16 is the standard safe bound.
    return n + n / 255 + 16;
}

std::size_t
LzoCompress(const pim::SimBuffer<std::uint8_t> &src, std::size_t src_len,
            pim::SimBuffer<std::uint8_t> &dst,
            core::ExecutionContext &ctx)
{
    PIM_ASSERT(src_len <= src.size(), "src_len exceeds buffer");
    PIM_ASSERT(dst.size() >= LzoCompressBound(src_len),
               "dst capacity %zu below bound %zu", dst.size(),
               LzoCompressBound(src_len));

    auto &mem = ctx.mem();
    auto &ops = ctx.ops();

    // The 16 KiB position hash table lives in (and mostly stays in) the
    // L1/accelerator buffer; its simulated address range is stable so
    // repeated compress calls keep it warm, as the real ZRAM path does.
    static thread_local std::uint32_t hash_table[kHashSize];
    std::memset(hash_table, 0xff, sizeof(hash_table));
    static thread_local pim::SimBuffer<std::uint32_t> ht_shadow(kHashSize);

    const std::uint8_t *in = src.data();
    std::uint8_t *out = dst.data();
    std::size_t out_pos = 0;
    std::size_t pos = 0;
    std::size_t lit_start = 0;

    auto emit_run = [&](std::size_t match_off, std::size_t match_len) {
        const std::size_t lit_len = pos - lit_start;
        const std::size_t token_pos = out_pos++;
        std::uint8_t token = 0;

        // Literal length nibble (+ extension).
        if (lit_len >= 15) {
            token |= 0xf0;
            out_pos = EmitLength(out, out_pos, lit_len);
        } else {
            token |= static_cast<std::uint8_t>(lit_len << 4);
        }
        // Literal bytes.
        std::memcpy(out + out_pos, in + lit_start, lit_len);
        if (lit_len > 0) {
            mem.Read(src.SimAddr(lit_start), lit_len);
            mem.Write(dst.SimAddr(out_pos), lit_len);
            ops.Load((lit_len + 15) / 16);
            ops.Store((lit_len + 15) / 16);
        }
        out_pos += lit_len;

        if (match_len > 0) {
            // Offset (2 bytes LE) + match length nibble (+ extension).
            out[out_pos++] = static_cast<std::uint8_t>(match_off & 0xff);
            out[out_pos++] = static_cast<std::uint8_t>(match_off >> 8);
            const std::size_t stored = match_len - kMinMatch;
            if (stored >= 15) {
                token |= 0x0f;
                out_pos = EmitLength(out, out_pos, stored);
            } else {
                token |= static_cast<std::uint8_t>(stored);
            }
            mem.Write(dst.SimAddr(out_pos > 3 ? out_pos - 3 : 0), 3);
            ops.Store(1);
        }
        out[token_pos] = token;
        ops.Alu(4);
        ops.Branch(2);
    };

    while (pos + kMinMatch <= src_len) {
        const std::uint32_t v = Read32(in + pos);
        const std::uint32_t h = HashOf(v);
        const std::uint32_t cand = hash_table[h];
        hash_table[h] = static_cast<std::uint32_t>(pos);

        // Hash probe: one input load + one table load + one table store.
        mem.Read(src.SimAddr(pos), 4);
        mem.Read(ht_shadow.SimAddr(h), 4);
        mem.Write(ht_shadow.SimAddr(h), 4);
        ops.Load(2);
        ops.Store(1);
        ops.Mul(1);
        ops.Alu(3);
        ops.Branch(1);

        if (cand != 0xffffffffu && pos - cand <= kMaxOffset &&
            Read32(in + cand) == v) {
            // Extend the match forward.
            std::size_t len = kMinMatch;
            while (pos + len < src_len && in[cand + len] == in[pos + len]) {
                ++len;
            }
            mem.Read(src.SimAddr(cand), len);
            mem.Read(src.SimAddr(pos), len);
            ops.Load(2 * ((len + 15) / 16));
            ops.Alu((len + 15) / 16);
            ops.Branch(1);

            emit_run(pos - cand, len);
            pos += len;
            lit_start = pos;
        } else {
            ++pos;
        }
    }

    // Trailing literals (token with match nibble 0 and no offset).
    pos = src_len;
    {
        const std::size_t lit_len = pos - lit_start;
        const std::size_t token_pos = out_pos++;
        std::uint8_t token = 0;
        if (lit_len >= 15) {
            token = 0xf0;
            out_pos = EmitLength(out, out_pos, lit_len);
        } else {
            token = static_cast<std::uint8_t>(lit_len << 4);
        }
        std::memcpy(out + out_pos, in + lit_start, lit_len);
        if (lit_len > 0) {
            mem.Read(src.SimAddr(lit_start), lit_len);
            mem.Write(dst.SimAddr(out_pos), lit_len);
            ops.Load((lit_len + 15) / 16);
            ops.Store((lit_len + 15) / 16);
        }
        out_pos += lit_len;
        out[token_pos] = token;
    }
    return out_pos;
}

std::size_t
LzoDecompress(const pim::SimBuffer<std::uint8_t> &src, std::size_t src_len,
              pim::SimBuffer<std::uint8_t> &dst,
              core::ExecutionContext &ctx)
{
    PIM_ASSERT(src_len <= src.size(), "src_len exceeds buffer");

    auto &mem = ctx.mem();
    auto &ops = ctx.ops();

    const std::uint8_t *in = src.data();
    std::uint8_t *out = dst.data();
    std::size_t in_pos = 0;
    std::size_t out_pos = 0;

    auto read_extension = [&](std::size_t base) {
        std::size_t len = base;
        std::uint8_t b;
        do {
            PIM_ASSERT(in_pos < src_len, "truncated length extension");
            b = in[in_pos++];
            len += b;
            ops.Load(1);
            ops.Alu(1);
            ops.Branch(1);
        } while (b == 255);
        return len;
    };

    while (in_pos < src_len) {
        const std::uint8_t token = in[in_pos++];
        mem.Read(src.SimAddr(in_pos - 1), 1);
        ops.Load(1);
        ops.Alu(2);
        ops.Branch(1);

        // Literals.
        std::size_t lit_len = token >> 4;
        if (lit_len == 15) {
            lit_len = read_extension(15);
        }
        if (lit_len > 0) {
            PIM_ASSERT(in_pos + lit_len <= src_len, "truncated literals");
            PIM_ASSERT(out_pos + lit_len <= dst.size(), "dst overflow");
            std::memcpy(out + out_pos, in + in_pos, lit_len);
            mem.Read(src.SimAddr(in_pos), lit_len);
            mem.Write(dst.SimAddr(out_pos), lit_len);
            ops.Load((lit_len + 15) / 16);
            ops.Store((lit_len + 15) / 16);
            in_pos += lit_len;
            out_pos += lit_len;
        }

        if (in_pos >= src_len) {
            break; // final token carries only literals
        }

        // Match.
        PIM_ASSERT(in_pos + 2 <= src_len, "truncated offset");
        const std::size_t offset =
            static_cast<std::size_t>(in[in_pos]) |
            (static_cast<std::size_t>(in[in_pos + 1]) << 8);
        in_pos += 2;
        mem.Read(src.SimAddr(in_pos - 2), 2);
        ops.Load(1);
        ops.Alu(2);

        std::size_t match_len = (token & 0x0f);
        if (match_len == 15) {
            match_len = read_extension(15) + kMinMatch;
        } else {
            match_len += kMinMatch;
        }

        PIM_ASSERT(offset > 0 && offset <= out_pos,
                   "bad match offset %zu at out %zu", offset, out_pos);
        PIM_ASSERT(out_pos + match_len <= dst.size(), "dst overflow");

        // Byte-wise copy handles overlapping matches (RLE-style).
        for (std::size_t i = 0; i < match_len; ++i) {
            out[out_pos + i] = out[out_pos - offset + i];
        }
        mem.Read(dst.SimAddr(out_pos - offset), match_len);
        mem.Write(dst.SimAddr(out_pos), match_len);
        ops.Load((match_len + 15) / 16);
        ops.Store((match_len + 15) / 16);
        ops.Branch(1);
        out_pos += match_len;
    }
    return out_pos;
}

} // namespace pim::browser
