/**
 * @file
 * Parameterized synthetic web-page profiles (substitution for the
 * paper's Telemetry-driven real pages; see DESIGN.md).
 *
 * A profile encodes what drives scrolling cost: how much new content a
 * scroll frame exposes, how that content splits between text, images,
 * and solid fills (rasterization/blitting volume), the texture geometry
 * handed to the driver for tiling, and how much non-kernel "other" work
 * (layout, JS, compositing) the page performs.
 */

#ifndef PIM_BROWSER_WEBPAGE_H
#define PIM_BROWSER_WEBPAGE_H

#include <string>
#include <vector>

namespace pim::browser {

/** Scroll-behaviour parameters of one page. */
struct PageProfile
{
    std::string name;

    int viewport_w = 1366; ///< Chromebook-class display.
    int viewport_h = 768;

    int scroll_frames = 6; ///< Frames simulated per scroll interaction.

    /** Fraction of the viewport newly rasterized per frame. */
    double new_content_per_frame = 0.30;

    int texture_px = 512; ///< Square rasterized-texture edge (pixels).

    /** How newly exposed area splits across blitter paths (sums ~1). */
    double text_fraction = 0.45;
    double image_fraction = 0.20;
    double fill_fraction = 0.35;

    /** Layout/style/JS compute per frame, in dynamic operations. */
    double layout_ops_per_frame = 9.0e6;

    /** Bytes of DOM/style/JS heap touched per frame by "other" work. */
    double other_bytes_per_frame = 2.5e6;
};

/** The six pages of the paper's Figure 1. */
PageProfile GoogleDocsProfile();
PageProfile GmailProfile();
PageProfile GoogleCalendarProfile();
PageProfile WordPressProfile();
PageProfile TwitterProfile();
PageProfile AnimationProfile();

/** All six, in the paper's figure order. */
std::vector<PageProfile> AllPageProfiles();

} // namespace pim::browser

#endif // PIM_BROWSER_WEBPAGE_H
