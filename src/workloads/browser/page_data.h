/**
 * @file
 * Synthetic page-memory content generator.
 *
 * Substitution note (DESIGN.md): the paper compressed a real Chromebook
 * memory dump of 50 open tabs.  We synthesize byte content with the same
 * compressibility character: zero runs (fresh allocations), repeated
 * DOM/JS-heap-like tokens and pointer-dense regions (low-entropy), and
 * incompressible media bytes, mixed by an entropy knob.  LZO-class
 * codecs achieve their typical 2-4x ratio on this mix.
 */

#ifndef PIM_BROWSER_PAGE_DATA_H
#define PIM_BROWSER_PAGE_DATA_H

#include <cstdint>

#include "common/buffer.h"
#include "common/rng.h"

namespace pim::browser {

/**
 * Fill @p page with page-like content.
 *
 * @param entropy 0 = all zero runs, 1 = all random; browser heap pages
 *                sit around 0.3-0.5.
 */
void FillPageLikeData(pim::SimBuffer<std::uint8_t> &page, Rng &rng,
                      double entropy = 0.4);

} // namespace pim::browser

#endif // PIM_BROWSER_PAGE_DATA_H
