#include "workloads/browser/color_blitter.h"

#include <algorithm>

#include "common/logging.h"

namespace pim::browser {

std::uint32_t
SrcOverPixel(std::uint32_t dst, std::uint32_t src)
{
    const std::uint32_t sa = PixelA(src);
    if (sa == 255) {
        return src;
    }
    if (sa == 0) {
        return dst;
    }
    const std::uint32_t inv = 255 - sa;
    auto blend = [inv](std::uint32_t s, std::uint32_t d) -> std::uint8_t {
        // s is premultiplied-by-alpha source channel contribution.
        return static_cast<std::uint8_t>(s + ((d * inv + 127) / 255));
    };
    return MakePixel(blend(PixelR(src) * sa / 255, PixelR(dst)),
                     blend(PixelG(src) * sa / 255, PixelG(dst)),
                     blend(PixelB(src) * sa / 255, PixelB(dst)),
                     blend(sa, PixelA(dst)));
}

Rect
ColorBlitter::ClipToDst(const Rect &rect) const
{
    Rect r;
    r.x = std::max(rect.x, 0);
    r.y = std::max(rect.y, 0);
    const int x1 = std::min(rect.x + rect.w, dst_->width());
    const int y1 = std::min(rect.y + rect.h, dst_->height());
    r.w = std::max(0, x1 - r.x);
    r.h = std::max(0, y1 - r.y);
    return r;
}

void
ColorBlitter::FillRect(const Rect &rect, std::uint32_t color)
{
    const Rect r = ClipToDst(rect);
    if (r.w == 0 || r.h == 0) {
        return;
    }
    auto &mem = ctx_->mem();
    auto &ops = ctx_->ops();
    for (int y = r.y; y < r.y + r.h; ++y) {
        for (int x = r.x; x < r.x + r.w; ++x) {
            dst_->At(x, y) = color;
        }
        const Bytes row_bytes = static_cast<Bytes>(r.w) * 4;
        mem.Write(dst_->SimAddr(r.x, y), row_bytes);
        // memset-style: 16-byte SIMD stores + loop overhead.
        ops.Store((r.w + 3) / 4);
        ops.Alu(2);
        ops.Branch(1);
    }
}

void
ColorBlitter::BlendRect(const Rect &rect, std::uint32_t color)
{
    const Rect r = ClipToDst(rect);
    if (r.w == 0 || r.h == 0) {
        return;
    }
    auto &mem = ctx_->mem();
    auto &ops = ctx_->ops();
    for (int y = r.y; y < r.y + r.h; ++y) {
        for (int x = r.x; x < r.x + r.w; ++x) {
            dst_->At(x, y) = SrcOverPixel(dst_->At(x, y), color);
        }
        const Bytes row_bytes = static_cast<Bytes>(r.w) * 4;
        mem.Read(dst_->SimAddr(r.x, y), row_bytes);
        mem.Write(dst_->SimAddr(r.x, y), row_bytes);
        // src-over: per pixel ~4 mul + 4 add, vectorizable; plus
        // load/store instructions at 4 pixels per 16-byte op.
        ops.VectorMul(static_cast<std::uint64_t>(r.w) * 4);
        ops.VectorAlu(static_cast<std::uint64_t>(r.w) * 4);
        ops.Load((r.w + 3) / 4);
        ops.Store((r.w + 3) / 4);
        ops.Alu(2);
        ops.Branch(1);
    }
}

void
ColorBlitter::BlitSrcOver(const Bitmap &src, int x, int y)
{
    const Rect r = ClipToDst({x, y, src.width(), src.height()});
    if (r.w == 0 || r.h == 0) {
        return;
    }
    auto &mem = ctx_->mem();
    auto &ops = ctx_->ops();
    for (int dy = 0; dy < r.h; ++dy) {
        const int sy = r.y + dy - y;
        for (int dx = 0; dx < r.w; ++dx) {
            const int sx = r.x + dx - x;
            std::uint32_t &d = dst_->At(r.x + dx, r.y + dy);
            d = SrcOverPixel(d, src.At(sx, sy));
        }
        const Bytes row_bytes = static_cast<Bytes>(r.w) * 4;
        mem.Read(src.SimAddr(r.x - x, sy), row_bytes);
        mem.Read(dst_->SimAddr(r.x, r.y + dy), row_bytes);
        mem.Write(dst_->SimAddr(r.x, r.y + dy), row_bytes);
        ops.VectorMul(static_cast<std::uint64_t>(r.w) * 4);
        ops.VectorAlu(static_cast<std::uint64_t>(r.w) * 4);
        ops.Load((r.w + 3) / 4 * 2);
        ops.Store((r.w + 3) / 4);
        ops.Alu(2);
        ops.Branch(1);
    }
}

void
ColorBlitter::BlitCopy(const Bitmap &src, int x, int y)
{
    const Rect r = ClipToDst({x, y, src.width(), src.height()});
    if (r.w == 0 || r.h == 0) {
        return;
    }
    auto &mem = ctx_->mem();
    auto &ops = ctx_->ops();
    for (int dy = 0; dy < r.h; ++dy) {
        const int sy = r.y + dy - y;
        for (int dx = 0; dx < r.w; ++dx) {
            dst_->At(r.x + dx, r.y + dy) = src.At(r.x + dx - x, sy);
        }
        const Bytes row_bytes = static_cast<Bytes>(r.w) * 4;
        mem.Read(src.SimAddr(r.x - x, sy), row_bytes);
        mem.Write(dst_->SimAddr(r.x, r.y + dy), row_bytes);
        ops.Load((r.w + 3) / 4);
        ops.Store((r.w + 3) / 4);
        ops.Alu(2);
        ops.Branch(1);
    }
}

int
ColorBlitter::DrawTextRun(const Rect &area, int glyph_w, int glyph_h,
                          std::uint32_t color)
{
    PIM_ASSERT(glyph_w > 0 && glyph_h > 0, "glyph size must be positive");
    const Rect r = ClipToDst(area);
    int glyphs = 0;
    const int line_advance = glyph_h + glyph_h / 2; // leading
    for (int gy = r.y; gy + glyph_h <= r.y + r.h; gy += line_advance) {
        for (int gx = r.x; gx + glyph_w <= r.x + r.w; gx += glyph_w + 1) {
            BlendRect({gx, gy, glyph_w, glyph_h}, color);
            ++glyphs;
        }
    }
    return glyphs;
}

} // namespace pim::browser
