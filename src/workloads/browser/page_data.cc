#include "workloads/browser/page_data.h"

#include <cstring>

#include "common/logging.h"

namespace pim::browser {

namespace {

const char *const kDomTokens[] = {
    "<div class=\"kix-paragraphrenderer\">",
    "style=\"font-family:Arial;font-size:11pt\"",
    "{\"type\":\"mutation\",\"target\":",
    "function(e){return e.preventDefault()}",
    "https://docs.google.com/document/d/",
};

} // namespace

void
FillPageLikeData(pim::SimBuffer<std::uint8_t> &page, Rng &rng,
                 double entropy)
{
    PIM_ASSERT(entropy >= 0.0 && entropy <= 1.0,
               "entropy %.2f out of [0,1]", entropy);

    std::size_t pos = 0;
    const std::size_t n = page.size();
    while (pos < n) {
        const double roll = rng.NextDouble();
        if (roll < (1.0 - entropy) * 0.45) {
            // Zero run: untouched or zero-initialized allocator pages.
            const std::size_t len =
                std::min<std::size_t>(n - pos, 64 + rng.Below(448));
            std::memset(page.data() + pos, 0, len);
            pos += len;
        } else if (roll < (1.0 - entropy) * 0.75) {
            // Repeated DOM/JS token.
            const char *tok =
                kDomTokens[rng.Below(sizeof(kDomTokens) /
                                     sizeof(kDomTokens[0]))];
            const std::size_t tok_len = std::strlen(tok);
            const int repeats = 1 + static_cast<int>(rng.Below(6));
            for (int r = 0; r < repeats && pos < n; ++r) {
                const std::size_t len =
                    std::min<std::size_t>(n - pos, tok_len);
                std::memcpy(page.data() + pos, tok, len);
                pos += len;
            }
        } else if (roll < (1.0 - entropy)) {
            // Pointer-dense region: 8-byte values sharing high bytes.
            const std::uint64_t base = 0x00007f3400000000ULL +
                                       (rng.Next64() & 0x00ffffffULL);
            std::size_t count = 8 + rng.Below(56);
            while (count-- > 0 && pos + 8 <= n) {
                const std::uint64_t v = base + rng.Below(0x10000) * 16;
                std::memcpy(page.data() + pos, &v, 8);
                pos += 8;
            }
            if (pos + 8 > n) {
                while (pos < n) {
                    page[pos++] = 0;
                }
            }
        } else {
            // Incompressible bytes (media, compressed resources).
            const std::size_t len =
                std::min<std::size_t>(n - pos, 32 + rng.Below(224));
            for (std::size_t i = 0; i < len; ++i) {
                page[pos + i] = rng.NextByte();
            }
            pos += len;
        }
    }
}

} // namespace pim::browser
