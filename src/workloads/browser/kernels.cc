/**
 * @file
 * Registry entries for the paper's browser PIM-target kernels
 * (Figure 18, Section 9): texture tiling, color blitting, and zram
 * (de)compression.
 *
 * The four kernels share one BrowserInputs object per KernelSession:
 * input stages build cumulatively off a single Rng stream, so a full
 * group run in figure order consumes RNG draws and reserves simulated
 * addresses exactly as the original hard-coded Figure 18 setup did
 * (figure outputs stay byte-identical), while a single kernel run
 * still self-materializes everything it needs.
 */

#include <cstdint>
#include <memory>
#include <optional>

#include "common/buffer.h"
#include "common/rng.h"
#include "core/kernel_registry.h"
#include "workloads/browser/color_blitter.h"
#include "workloads/browser/lzo.h"
#include "workloads/browser/page_data.h"
#include "workloads/browser/texture_tiler.h"

namespace pim::browser {

namespace {

using core::ExecutionContext;
using core::KernelInstance;
using core::KernelSpec;

/** Shared per-session inputs, staged in the legacy setup order. */
struct BrowserInputs
{
    explicit BrowserInputs(double scale) : scale(scale) {}

    double scale;
    Rng rng{0xB10};
    int linear_px = 0;
    int blit_grid = 0;
    std::optional<Bitmap> linear;
    std::optional<Bitmap> sprite;
    std::optional<pim::SimBuffer<std::uint8_t>> pages;
    std::optional<pim::SimBuffer<std::uint8_t>> compressed;
    std::size_t csize = 0;

    /** Texture tiling: 512x512 RGBA tiles at paper scale. */
    void
    EnsureLinear()
    {
        if (linear) {
            return;
        }
        linear_px = core::ScaleDim(512, scale, TileFormat::kTileRows);
        linear.emplace(linear_px, linear_px);
        linear->Randomize(rng);
    }

    /** Color blitting: 256x256 sprites over a 1024x1024 target. */
    void
    EnsureSprite()
    {
        EnsureLinear();
        if (sprite) {
            return;
        }
        blit_grid = core::ScaleDim(1024, scale, 256) / 256;
        sprite.emplace(256, 256);
        sprite->Randomize(rng);
    }

    /** (De)compression: Chromebook-like page data. */
    void
    EnsurePages()
    {
        EnsureSprite();
        if (pages) {
            return;
        }
        pages.emplace(core::ScaleBytes(256 * 1024, scale));
        FillPageLikeData(*pages, rng, 0.4);
        compressed.emplace(LzoCompressBound(pages->size()));
    }

    /**
     * In a group run the instrumented Compression kernel fills
     * `compressed`; a standalone Decompression run compresses here,
     * off the measurement path.
     */
    void
    EnsureCompressed()
    {
        EnsurePages();
        if (csize != 0) {
            return;
        }
        ExecutionContext scratch(core::ExecutionTarget::kCpuOnly);
        csize = LzoCompress(*pages, pages->size(), *compressed, scratch);
    }
};

std::shared_ptr<BrowserInputs>
Inputs(std::shared_ptr<void> &state, double scale)
{
    if (!state) {
        state = std::make_shared<BrowserInputs>(scale);
    }
    return std::static_pointer_cast<BrowserInputs>(state);
}

} // namespace

PIM_REGISTER_KERNEL(texture_tiling)
{
    KernelSpec spec;
    spec.name = "Texture Tiling";
    spec.group = "browser";
    spec.figure = "Figure 18";
    spec.order = 0;
    spec.make = [](std::shared_ptr<void> &state, double scale) {
        auto in = Inputs(state, scale);
        in->EnsureLinear();
        KernelInstance inst;
        inst.footprint = {in->linear->size_bytes(),
                          in->linear->size_bytes()};
        inst.run = [in](ExecutionContext &ctx) {
            TiledTexture tiled(in->linear_px, in->linear_px);
            TileTexture(*in->linear, tiled, ctx);
        };
        return inst;
    };
    return spec;
}

PIM_REGISTER_KERNEL(color_blitting)
{
    KernelSpec spec;
    spec.name = "Color Blitting";
    spec.group = "browser";
    spec.figure = "Figure 18";
    spec.order = 1;
    spec.make = [](std::shared_ptr<void> &state, double scale) {
        auto in = Inputs(state, scale);
        in->EnsureSprite();
        const int target_px = 256 * in->blit_grid;
        KernelInstance inst;
        inst.footprint = {in->sprite->size_bytes(),
                          Bytes{static_cast<std::uint64_t>(target_px)} *
                              target_px * 4};
        inst.run = [in, target_px](ExecutionContext &ctx) {
            Bitmap target(target_px, target_px, 0x80808080);
            ColorBlitter blitter(target, ctx);
            for (int y = 0; y < target_px; y += 256) {
                for (int x = 0; x < target_px; x += 256) {
                    blitter.BlitSrcOver(*in->sprite, x, y);
                }
            }
        };
        return inst;
    };
    return spec;
}

PIM_REGISTER_KERNEL(compression)
{
    KernelSpec spec;
    spec.name = "Compression";
    spec.group = "browser";
    spec.figure = "Figure 18";
    spec.order = 2;
    spec.make = [](std::shared_ptr<void> &state, double scale) {
        auto in = Inputs(state, scale);
        in->EnsurePages();
        KernelInstance inst;
        inst.footprint = {in->pages->size_bytes(),
                          in->pages->size_bytes() / 2};
        inst.run = [in](ExecutionContext &ctx) {
            in->csize = LzoCompress(*in->pages, in->pages->size(),
                                    *in->compressed, ctx);
        };
        return inst;
    };
    return spec;
}

PIM_REGISTER_KERNEL(decompression)
{
    KernelSpec spec;
    spec.name = "Decompression";
    spec.group = "browser";
    spec.figure = "Figure 18";
    spec.order = 3;
    spec.make = [](std::shared_ptr<void> &state, double scale) {
        auto in = Inputs(state, scale);
        in->EnsureCompressed();
        KernelInstance inst;
        inst.footprint = {in->csize, in->pages->size_bytes()};
        inst.run = [in](ExecutionContext &ctx) {
            pim::SimBuffer<std::uint8_t> out(in->pages->size());
            LzoDecompress(*in->compressed, in->csize, out, ctx);
        };
        return inst;
    };
    return spec;
}

} // namespace pim::browser

PIM_KERNEL_ANCHOR(browser_kernels)
