/**
 * @file
 * An LZO-class byte-oriented LZ77 codec (the paper's Section 4.3 PIM
 * target).
 *
 * Chrome's ZRAM swap compresses inactive-tab pages with LZO, an
 * algorithm that favors speed over ratio: greedy hash-table match
 * finding, byte-granular tokens, no entropy stage.  This implementation
 * follows the same design point (LZ4/LZO token family): a 4-bit literal
 * length + 4-bit match length token, 16-bit match offsets within a
 * 64 KiB window, 255-continuation length extensions.
 *
 * The codec is *real*: Compress followed by Decompress reproduces the
 * input exactly (property-tested), and compression ratios on page-like
 * data are in LZO's typical 2-4x range.
 */

#ifndef PIM_BROWSER_LZO_H
#define PIM_BROWSER_LZO_H

#include <cstdint>

#include "common/buffer.h"
#include "core/execution_context.h"

namespace pim::browser {

/** Worst-case compressed size for @p n input bytes. */
std::size_t LzoCompressBound(std::size_t n);

/**
 * Compress @p src_len bytes of @p src into @p dst.
 *
 * @param dst must have capacity >= LzoCompressBound(src_len)
 * @param ctx execution context observing the kernel's traffic/ops
 * @return the compressed size in bytes
 */
std::size_t LzoCompress(const pim::SimBuffer<std::uint8_t> &src,
                        std::size_t src_len,
                        pim::SimBuffer<std::uint8_t> &dst,
                        core::ExecutionContext &ctx);

/**
 * Decompress @p src_len compressed bytes into @p dst.
 *
 * @param dst must have capacity for the original data
 * @return the decompressed size in bytes
 */
std::size_t LzoDecompress(const pim::SimBuffer<std::uint8_t> &src,
                          std::size_t src_len,
                          pim::SimBuffer<std::uint8_t> &dst,
                          core::ExecutionContext &ctx);

} // namespace pim::browser

#endif // PIM_BROWSER_LZO_H
