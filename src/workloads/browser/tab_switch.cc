#include "workloads/browser/tab_switch.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "workloads/browser/page_data.h"
#include "workloads/browser/zram.h"

namespace pim::browser {

namespace {

/** One browser tab: its pages and their swap state. */
struct Tab
{
    std::vector<std::unique_ptr<pim::SimBuffer<std::uint8_t>>> pages;
    std::vector<std::uint64_t> zram_handles; // nonzero => compressed
    bool resident = true;

    Bytes
    FootprintBytes() const
    {
        return static_cast<Bytes>(pages.size()) * ZramPool::kPageBytes;
    }
};

/** Take the pending measurement from a context into (energy, time). */
void
TakeMeasurement(core::ExecutionContext &ctx, const char *name,
                sim::EnergyBreakdown &energy, Nanoseconds &time_ns)
{
    const core::RunReport r = ctx.Report(name);
    energy += r.energy;
    time_ns += r.timing.Total();
    ctx.Reset(/*drain_caches=*/false);
}

} // namespace

TabSwitchResult
SimulateTabSwitching(const TabSwitchConfig &config,
                     core::ExecutionTarget compression_target)
{
    PIM_ASSERT(config.tabs > 0 && config.passes > 0, "empty workload");
    Rng rng(config.seed);

    // Build tabs with page-like content.
    std::vector<Tab> tabs(static_cast<std::size_t>(config.tabs));
    for (auto &tab : tabs) {
        const Bytes footprint =
            config.min_tab_bytes +
            rng.Below(config.max_tab_bytes - config.min_tab_bytes + 1);
        const std::size_t pages =
            std::max<std::size_t>(1, footprint / ZramPool::kPageBytes);
        for (std::size_t p = 0; p < pages; ++p) {
            auto page = std::make_unique<pim::SimBuffer<std::uint8_t>>(
                ZramPool::kPageBytes);
            FillPageLikeData(*page, rng);
            tab.pages.push_back(std::move(page));
        }
        tab.zram_handles.assign(tab.pages.size(), 0);
    }

    ZramPool pool;
    core::ExecutionContext host(core::ExecutionTarget::kCpuOnly);
    core::ExecutionContext compressor_ctx(compression_target);
    core::ExecutionContext &comp =
        compression_target == core::ExecutionTarget::kCpuOnly
            ? host
            : compressor_ctx;

    const int total_switches = config.tabs * config.passes;
    const double total_seconds = total_switches * config.dwell_seconds;
    const auto bins = static_cast<std::size_t>(total_seconds) + 1;

    TabSwitchResult result;
    result.swap_out_mb_per_s.assign(bins, 0.0);
    result.swap_in_mb_per_s.assign(bins, 0.0);

    std::deque<int> lru; // front == least recently used resident tab
    Bytes resident_bytes = 0;
    pim::SimBuffer<std::uint8_t> page_out(ZramPool::kPageBytes);

    double now_seconds = 0.0;
    for (int sw = 0; sw < total_switches; ++sw) {
        const int tab_index = sw % config.tabs;
        Tab &tab = tabs[static_cast<std::size_t>(tab_index)];
        const auto bin = static_cast<std::size_t>(now_seconds);

        // Swap the tab in if it was compressed.
        if (!tab.resident) {
            for (std::size_t p = 0; p < tab.pages.size(); ++p) {
                if (tab.zram_handles[p] != 0) {
                    pool.SwapIn(tab.zram_handles[p], *tab.pages[p], comp);
                    tab.zram_handles[p] = 0;
                    result.total_swapped_in += ZramPool::kPageBytes;
                    result.swap_in_mb_per_s[bin] +=
                        ZramPool::kPageBytes / 1.0e6;
                }
            }
            tab.resident = true;
        }
        std::erase(lru, tab_index);
        lru.push_back(tab_index);

        // Recompute resident footprint.
        resident_bytes = 0;
        for (const Tab &t : tabs) {
            if (t.resident) {
                resident_bytes += t.FootprintBytes();
            }
        }

        // "Other" work: render/scroll the active tab — layout, style,
        // paint, and composite passes over its page memory, plus the
        // script work of restoring the tab.
        for (int pass = 0; pass < 3; ++pass) {
            for (const auto &page : tab.pages) {
                host.mem().Read(page->SimAddr(0), ZramPool::kPageBytes);
                host.mem().Write(page->SimAddr(0),
                                 ZramPool::kPageBytes / 4);
                host.ops().Load(ZramPool::kPageBytes / 8);
                host.ops().Store(ZramPool::kPageBytes / 32);
                host.ops().Alu(ZramPool::kPageBytes);
                host.ops().Branch(ZramPool::kPageBytes / 8);
            }
        }
        host.ops().Alu(2'000'000); // per-switch script/layout compute
        TakeMeasurement(host, "tab-other", result.other_energy,
                        result.other_time_ns);

        // Memory pressure: compress LRU tabs until under budget.
        while (resident_bytes > config.memory_budget && lru.size() > 1) {
            const int victim_index = lru.front();
            lru.pop_front();
            Tab &victim = tabs[static_cast<std::size_t>(victim_index)];
            for (std::size_t p = 0; p < victim.pages.size(); ++p) {
                const auto out = pool.SwapOut(*victim.pages[p], comp);
                victim.zram_handles[p] = out.handle;
                result.total_swapped_out += ZramPool::kPageBytes;
                result.swap_out_mb_per_s[bin] +=
                    ZramPool::kPageBytes / 1.0e6;
            }
            victim.resident = false;
            resident_bytes -= victim.FootprintBytes();
        }
        TakeMeasurement(comp, "tab-compression", result.compression_energy,
                        result.compression_time_ns);

        now_seconds += config.dwell_seconds;
    }

    // Bins are 1 s wide, so binned MB are already MB/s.
    result.compression_ratio = pool.stats().CompressionRatio();
    return result;
}

} // namespace pim::browser
