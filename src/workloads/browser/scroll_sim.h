/**
 * @file
 * Page-scrolling simulation (the paper's Section 4.2).
 *
 * Each scroll frame (1) recomputes layout and runs script ("other"),
 * (2) rasterizes newly exposed render objects through the color blitter,
 * (3) converts the rasterized bitmaps to 4 KiB tiled textures, and
 * (4) composites (GPU reads the tiles).  The driver measures each phase
 * separately on one warm host context, producing the per-function energy
 * attribution of Figures 1 and 2.
 */

#ifndef PIM_BROWSER_SCROLL_SIM_H
#define PIM_BROWSER_SCROLL_SIM_H

#include <string>
#include <vector>

#include "core/execution_context.h"
#include "workloads/browser/webpage.h"

namespace pim::browser {

/** Energy/time attribution of one scroll interaction. */
struct ScrollResult
{
    std::string page_name;

    sim::EnergyBreakdown tiling_energy;
    sim::EnergyBreakdown blitting_energy;
    sim::EnergyBreakdown other_energy;

    Nanoseconds tiling_time_ns = 0;
    Nanoseconds blitting_time_ns = 0;
    Nanoseconds other_time_ns = 0;

    std::uint64_t tiling_instructions = 0;
    std::uint64_t blitting_instructions = 0;
    std::uint64_t other_instructions = 0;

    std::uint64_t llc_misses = 0;
    std::uint64_t instructions = 0;

    PicoJoules
    TotalEnergy() const
    {
        return tiling_energy.Total() + blitting_energy.Total() +
               other_energy.Total();
    }

    Nanoseconds
    TotalTime() const
    {
        return tiling_time_ns + blitting_time_ns + other_time_ns;
    }

    double TilingFraction() const
    {
        return tiling_energy.Total() / TotalEnergy();
    }
    double BlittingFraction() const
    {
        return blitting_energy.Total() / TotalEnergy();
    }

    /** Whole-interaction LLC misses per kilo-instruction. */
    double
    Mpki() const
    {
        return instructions == 0 ? 0.0
                                 : 1000.0 * static_cast<double>(llc_misses) /
                                       static_cast<double>(instructions);
    }
};

/**
 * Runs the scroll interaction for one page profile.
 *
 * @param offload_kernels if true, texture tiling and color blitting run
 *        on PIM accelerator contexts (with offload coherence overheads)
 *        while "other" work stays on the host — the Section 4.2.2
 *        CPU+PIM organization.
 */
ScrollResult SimulateScroll(const PageProfile &profile,
                            bool offload_kernels = false);

} // namespace pim::browser

#endif // PIM_BROWSER_SCROLL_SIM_H
