/**
 * @file
 * Color blitting (the paper's Section 4.2.2, second PIM target).
 *
 * During rasterization Skia's high-level draw calls bottom out in a color
 * blitter that copies/combines blocks of pixels: solid fills (memset-
 * like), source-over alpha compositing, and span copies used for lines,
 * path fills, and double buffering.  Simple arithmetic, streaming access
 * pattern, large bitmaps.
 */

#ifndef PIM_BROWSER_COLOR_BLITTER_H
#define PIM_BROWSER_COLOR_BLITTER_H

#include <cstdint>

#include "core/execution_context.h"
#include "workloads/browser/bitmap.h"

namespace pim::browser {

/** Integer rectangle (half-open: [x, x+w) x [y, y+h)). */
struct Rect
{
    int x = 0;
    int y = 0;
    int w = 0;
    int h = 0;
};

/** Porter-Duff source-over of @p src over @p dst with premultiply. */
std::uint32_t SrcOverPixel(std::uint32_t dst, std::uint32_t src);

/**
 * Skia-style color blitter bound to a destination bitmap and an
 * execution context that observes its memory traffic.
 */
class ColorBlitter
{
  public:
    ColorBlitter(Bitmap &dst, core::ExecutionContext &ctx)
        : dst_(&dst), ctx_(&ctx)
    {
    }

    /** Solid fill (opaque color): the memset-like fast path. */
    void FillRect(const Rect &rect, std::uint32_t color);

    /** Source-over blend a translucent solid color onto the rect. */
    void BlendRect(const Rect &rect, std::uint32_t color);

    /**
     * Source-over blit of bitmap @p src with its top-left at (x, y);
     * the alpha-compositing path used when combining two images or
     * primitives.
     */
    void BlitSrcOver(const Bitmap &src, int x, int y);

    /** Opaque copy of @p src (double-buffering / memcopy path). */
    void BlitCopy(const Bitmap &src, int x, int y);

    /**
     * Text-like blitting: many small glyph-sized blend rectangles laid
     * out in rows; models the font rasterization output path.
     * @return the number of glyph cells drawn.
     */
    int DrawTextRun(const Rect &area, int glyph_w, int glyph_h,
                    std::uint32_t color);

  private:
    Rect ClipToDst(const Rect &rect) const;

    Bitmap *dst_;
    core::ExecutionContext *ctx_;
};

} // namespace pim::browser

#endif // PIM_BROWSER_COLOR_BLITTER_H
