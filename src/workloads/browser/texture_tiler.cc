#include "workloads/browser/texture_tiler.h"

#include <cstring>

#include "common/logging.h"

namespace pim::browser {

TiledTexture::TiledTexture(int width_px, int height_px)
    : width_px_(width_px), height_px_(height_px),
      tiles_x_((width_px + TileFormat::kTileWidthPx - 1) /
               TileFormat::kTileWidthPx),
      tiles_y_((height_px + TileFormat::kTileRows - 1) /
               TileFormat::kTileRows),
      storage_(static_cast<std::size_t>(tiles_x_) * tiles_y_ *
               TileFormat::kTileRows * TileFormat::kTileWidthPx)
{
    PIM_ASSERT(width_px > 0 && height_px > 0, "texture must be non-empty");
}

std::size_t
TiledTexture::TiledIndex(int x, int y) const
{
    PIM_ASSERT(x >= 0 && x < width_px_ && y >= 0 && y < height_px_,
               "pixel (%d,%d) out of %dx%d", x, y, width_px_, height_px_);
    const int tx = x / TileFormat::kTileWidthPx;
    const int ty = y / TileFormat::kTileRows;
    const int in_x = x % TileFormat::kTileWidthPx;
    const int in_y = y % TileFormat::kTileRows;
    const std::size_t tile_index =
        static_cast<std::size_t>(ty) * tiles_x_ + tx;
    return tile_index * TileFormat::kTileRows * TileFormat::kTileWidthPx +
           static_cast<std::size_t>(in_y) * TileFormat::kTileWidthPx + in_x;
}

std::uint32_t
TiledTexture::PixelAt(int x, int y) const
{
    return storage_[TiledIndex(x, y)];
}

void
TiledTexture::SetPixelAt(int x, int y, std::uint32_t value)
{
    storage_[TiledIndex(x, y)] = value;
}

namespace {

/**
 * Account the op mix of copying one 128-byte tile row with a SIMD
 * memcopy loop: 8 16-byte loads + 8 stores, address arithmetic for the
 * strided source, and the loop branch.
 */
void
CountRowCopyOps(sim::OpCounter &ops)
{
    ops.Load(8);
    ops.Store(8);
    ops.Alu(4); // address generation: linear offset, tiled offset
    ops.Branch(1);
}

} // namespace

void
TileTexture(const Bitmap &linear, TiledTexture &tiled,
            core::ExecutionContext &ctx)
{
    PIM_ASSERT(linear.width() == tiled.width_px() &&
                   linear.height() == tiled.height_px(),
               "bitmap %dx%d does not match texture %dx%d", linear.width(),
               linear.height(), tiled.width_px(), tiled.height_px());
    PIM_ASSERT(linear.width() % TileFormat::kTileWidthPx == 0 &&
                   linear.height() % TileFormat::kTileRows == 0,
               "texture dimensions must be tile-aligned");

    auto &mem = ctx.mem();
    auto &ops = ctx.ops();

    const int row_px = TileFormat::kTileWidthPx;
    for (int ty = 0; ty < tiled.tiles_y(); ++ty) {
        for (int tx = 0; tx < tiled.tiles_x(); ++tx) {
            for (int r = 0; r < TileFormat::kTileRows; ++r) {
                const int y = ty * TileFormat::kTileRows + r;
                const int x0 = tx * row_px;
                // Real copy of the 128-byte span.
                for (int i = 0; i < row_px; ++i) {
                    tiled.SetPixelAt(x0 + i, y, linear.At(x0 + i, y));
                }
                // Strided read from the linear bitmap, streaming write
                // into the tile.
                mem.Read(linear.SimAddr(x0, y),
                         TileFormat::kTileWidthBytes);
                const std::size_t dst_index =
                    (static_cast<std::size_t>(ty) * tiled.tiles_x() + tx) *
                        TileFormat::kTileRows * row_px +
                    static_cast<std::size_t>(r) * row_px;
                mem.Write(tiled.storage().SimAddr(dst_index),
                          TileFormat::kTileWidthBytes);
                CountRowCopyOps(ops);
            }
        }
    }
}

void
UntileTexture(const TiledTexture &tiled, Bitmap &linear,
              core::ExecutionContext &ctx)
{
    PIM_ASSERT(linear.width() == tiled.width_px() &&
                   linear.height() == tiled.height_px(),
               "bitmap %dx%d does not match texture %dx%d", linear.width(),
               linear.height(), tiled.width_px(), tiled.height_px());

    auto &mem = ctx.mem();
    auto &ops = ctx.ops();

    const int row_px = TileFormat::kTileWidthPx;
    for (int ty = 0; ty < tiled.tiles_y(); ++ty) {
        for (int tx = 0; tx < tiled.tiles_x(); ++tx) {
            for (int r = 0; r < TileFormat::kTileRows; ++r) {
                const int y = ty * TileFormat::kTileRows + r;
                const int x0 = tx * row_px;
                for (int i = 0; i < row_px; ++i) {
                    linear.At(x0 + i, y) = tiled.PixelAt(x0 + i, y);
                }
                const std::size_t src_index =
                    (static_cast<std::size_t>(ty) * tiled.tiles_x() + tx) *
                        TileFormat::kTileRows * row_px +
                    static_cast<std::size_t>(r) * row_px;
                mem.Read(tiled.storage().SimAddr(src_index),
                         TileFormat::kTileWidthBytes);
                mem.Write(linear.SimAddr(x0, y),
                          TileFormat::kTileWidthBytes);
                CountRowCopyOps(ops);
            }
        }
    }
}

} // namespace pim::browser
