/**
 * @file
 * Texture tiling (the paper's Section 4.2.2, first PIM target).
 *
 * After rasterization Chrome's graphics driver converts each linear
 * rasterized bitmap into 4 KiB texture tiles so the GPU composites with
 * good locality (Intel i965-style Y-tiling: 128-byte-wide, 32-row tiles;
 * at 4 B/pixel a tile covers 32x32 pixels).  The conversion itself reads
 * the linear bitmap with a strided pattern and streams tiles out —
 * memcopy, basic arithmetic and bitwise ops with poor cache locality.
 */

#ifndef PIM_BROWSER_TEXTURE_TILER_H
#define PIM_BROWSER_TEXTURE_TILER_H

#include <cstdint>

#include "common/buffer.h"
#include "core/execution_context.h"
#include "workloads/browser/bitmap.h"

namespace pim::browser {

/** Geometry of the 4 KiB tile format. */
struct TileFormat
{
    static constexpr int kTileBytes = 4096;
    static constexpr int kTileWidthBytes = 128;
    static constexpr int kTileRows = 32;
    static constexpr int kTileWidthPx = kTileWidthBytes / 4; // RGBA
};

/** A tiled texture: tiles stored contiguously, row-major by tile. */
class TiledTexture
{
  public:
    TiledTexture(int width_px, int height_px);

    int width_px() const { return width_px_; }
    int height_px() const { return height_px_; }
    int tiles_x() const { return tiles_x_; }
    int tiles_y() const { return tiles_y_; }

    /** Pixel lookup through the tiled layout (for verification). */
    std::uint32_t PixelAt(int x, int y) const;
    void SetPixelAt(int x, int y, std::uint32_t value);

    pim::SimBuffer<std::uint32_t> &storage() { return storage_; }
    const pim::SimBuffer<std::uint32_t> &storage() const { return storage_; }

    Bytes size_bytes() const { return storage_.size_bytes(); }

  private:
    std::size_t TiledIndex(int x, int y) const;

    int width_px_;
    int height_px_;
    int tiles_x_;
    int tiles_y_;
    pim::SimBuffer<std::uint32_t> storage_;
};

/**
 * The glTexImage2D-style tiling kernel: converts @p linear into
 * @p tiled, streaming every access through @p ctx.
 *
 * The linear bitmap's dimensions must be tile-aligned (the driver pads
 * textures to tile boundaries before upload).
 */
void TileTexture(const Bitmap &linear, TiledTexture &tiled,
                 core::ExecutionContext &ctx);

/** The inverse conversion (tiled texture back to a linear bitmap). */
void UntileTexture(const TiledTexture &tiled, Bitmap &linear,
                   core::ExecutionContext &ctx);

} // namespace pim::browser

#endif // PIM_BROWSER_TEXTURE_TILER_H
