#include "workloads/browser/scroll_sim.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/coherence.h"
#include "workloads/browser/color_blitter.h"
#include "workloads/browser/texture_tiler.h"

namespace pim::browser {

namespace {

/** Accumulate the context's pending measurement into a phase bucket. */
struct PhaseBucket
{
    sim::EnergyBreakdown energy;
    Nanoseconds time_ns = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llc_misses = 0;

    void
    Take(core::ExecutionContext &ctx, const char *name)
    {
        const core::RunReport r = ctx.Report(name);
        energy += r.energy;
        time_ns += r.timing.Total();
        instructions += r.ops.Total();
        llc_misses += r.counters.has_llc ? r.counters.llc.Misses()
                                         : r.counters.l1.Misses();
        ctx.Reset(/*drain_caches=*/false); // keep the hierarchy warm
    }
};

/** Layout/style/JS work: branchy tree walks over the DOM/JS heap. */
void
RunOtherWork(core::ExecutionContext &ctx,
             pim::SimBuffer<std::uint8_t> &heap, std::size_t &heap_cursor,
             const PageProfile &profile)
{
    auto &mem = ctx.mem();
    auto &ops = ctx.ops();

    // Touch the heap with a mostly-sequential, partly-reused pattern.
    const auto bytes =
        static_cast<Bytes>(profile.other_bytes_per_frame);
    Bytes done = 0;
    while (done < bytes) {
        const Bytes chunk = std::min<Bytes>(4096, bytes - done);
        if (heap_cursor + chunk > heap.size()) {
            heap_cursor = 0;
        }
        mem.Read(heap.SimAddr(heap_cursor), chunk);
        // ~1/5 of touched lines are written (style/layout results).
        mem.Write(heap.SimAddr(heap_cursor), chunk / 5);
        heap_cursor += chunk;
        done += chunk;
        ops.Load(chunk / 16);
        ops.Store(chunk / 80);
    }

    // Scalar, branchy computation: not SIMD-friendly.
    const auto total = static_cast<std::uint64_t>(
        profile.layout_ops_per_frame);
    ops.Alu(total * 55 / 100);
    ops.Mul(total * 10 / 100);
    ops.Branch(total * 35 / 100);
}

/** Rasterize one texture's worth of newly exposed content. */
void
RasterizeTexture(core::ExecutionContext &ctx, Bitmap &texture,
                 Bitmap &image_source, const PageProfile &profile,
                 Rng &rng)
{
    ColorBlitter blitter(texture, ctx);
    const int edge = profile.texture_px;

    // Background fill for the fill_fraction share of the texture.
    const int fill_rows = static_cast<int>(edge * profile.fill_fraction);
    if (fill_rows > 0) {
        blitter.FillRect({0, 0, edge, fill_rows},
                         MakePixel(250, 250, 250, 255));
    }

    // Text runs over the text share.
    const int text_rows = static_cast<int>(edge * profile.text_fraction);
    if (text_rows > 0) {
        blitter.DrawTextRun({0, fill_rows, edge, text_rows}, 8, 12,
                            MakePixel(32, 32, 32, 220));
    }

    // Image blits over the remaining share.
    const int image_rows = static_cast<int>(edge * profile.image_fraction);
    int y = fill_rows + text_rows;
    while (image_rows > 0 && y < edge) {
        const int x =
            static_cast<int>(rng.Below(static_cast<std::uint64_t>(
                std::max(1, edge - image_source.width()))));
        blitter.BlitSrcOver(image_source, x, y);
        y += image_source.height();
    }
}

} // namespace

ScrollResult
SimulateScroll(const PageProfile &profile, bool offload_kernels)
{
    Rng rng(0xC0FFEE ^ std::hash<std::string>{}(profile.name));

    // Host context runs "other" always; kernels run either on the host
    // (same warm context) or on a PIM accelerator context.
    core::ExecutionContext host(core::ExecutionTarget::kCpuOnly);
    core::ExecutionContext pim(core::ExecutionTarget::kPimAccel);
    core::ExecutionContext &kernel_ctx = offload_kernels ? pim : host;

    // Stable buffers reused across frames.
    Bitmap texture(profile.texture_px, profile.texture_px);
    TiledTexture tiled(profile.texture_px, profile.texture_px);
    Bitmap image_source(128, 128);
    image_source.Randomize(rng);
    pim::SimBuffer<std::uint8_t> heap(8u << 20);
    std::size_t heap_cursor = 0;

    PhaseBucket other_bucket;
    PhaseBucket blit_bucket;
    PhaseBucket tile_bucket;

    const double viewport_px = static_cast<double>(profile.viewport_w) *
                               profile.viewport_h;
    const double texture_area = static_cast<double>(profile.texture_px) *
                                profile.texture_px;
    const int textures_per_frame = std::max(
        1, static_cast<int>(std::lround(
               viewport_px * profile.new_content_per_frame /
               texture_area)));

    for (int frame = 0; frame < profile.scroll_frames; ++frame) {
        // (1) Layout + script.
        RunOtherWork(host, heap, heap_cursor, profile);
        other_bucket.Take(host, "other");

        for (int t = 0; t < textures_per_frame; ++t) {
            // (2) Rasterization (color blitting).
            RasterizeTexture(kernel_ctx, texture, image_source, profile,
                             rng);
            blit_bucket.Take(kernel_ctx, "color-blitting");

            // (3) Texture tiling for the compositor.
            TileTexture(texture, tiled, kernel_ctx);
            tile_bucket.Take(kernel_ctx, "texture-tiling");

            // (4) Compositing: the GPU streams the tiles back out.
            host.mem().Read(tiled.storage().SimAddr(0),
                            tiled.size_bytes());
            host.ops().Load(tiled.size_bytes() / 64);
            host.ops().Alu(tiled.size_bytes() / 64);
        }
        other_bucket.Take(host, "compositing");
    }

    if (offload_kernels) {
        // Charge per-frame offload coherence for the two PIM kernels.
        const core::CoherenceCost cost = core::EstimateOffloadCoherence(
            static_cast<Bytes>(texture.size_bytes()) *
                static_cast<Bytes>(textures_per_frame *
                                   profile.scroll_frames),
            static_cast<Bytes>(tiled.size_bytes()) *
                static_cast<Bytes>(textures_per_frame *
                                   profile.scroll_frames));
        tile_bucket.energy.interconnect += cost.energy_pj;
        tile_bucket.time_ns += cost.time_ns;
    }

    ScrollResult result;
    result.page_name = profile.name;
    result.tiling_energy = tile_bucket.energy;
    result.blitting_energy = blit_bucket.energy;
    result.other_energy = other_bucket.energy;
    result.tiling_time_ns = tile_bucket.time_ns;
    result.blitting_time_ns = blit_bucket.time_ns;
    result.other_time_ns = other_bucket.time_ns;
    result.tiling_instructions = tile_bucket.instructions;
    result.blitting_instructions = blit_bucket.instructions;
    result.other_instructions = other_bucket.instructions;
    result.instructions = tile_bucket.instructions +
                          blit_bucket.instructions +
                          other_bucket.instructions;
    result.llc_misses = tile_bucket.llc_misses + blit_bucket.llc_misses +
                        other_bucket.llc_misses;
    return result;
}

} // namespace pim::browser
