#include "workloads/browser/zram.h"

#include <cstring>

#include "common/logging.h"
#include "workloads/browser/lzo.h"

namespace pim::browser {

ZramPool::ZramPool()
    : scratch_compressed_(LzoCompressBound(kPageBytes)),
      scratch_page_(kPageBytes)
{
}

ZramPool::SwapOutResult
ZramPool::SwapOut(const pim::SimBuffer<std::uint8_t> &page,
                  core::ExecutionContext &ctx)
{
    PIM_ASSERT(page.size() == kPageBytes, "ZRAM pages are 4 KiB");

    // zram's same-fill fast path: a page of one repeated byte is
    // stored as an 8-byte marker, skipping the compressor entirely.
    bool same_filled = true;
    const std::uint8_t fill = page[0];
    for (std::size_t i = 1; i < kPageBytes; ++i) {
        if (page[i] != fill) {
            same_filled = false;
            break;
        }
    }

    StoredPage stored;
    std::size_t csize;
    if (same_filled) {
        stored.same_filled = true;
        stored.fill_value = fill;
        csize = 8; // the marker word
        // One scan of the page, no compressor work, no stored data.
        ctx.mem().Read(page.SimAddr(0), kPageBytes);
        ctx.ops().Load(kPageBytes / 16);
        ctx.ops().VectorAlu(kPageBytes / 16);
        ++stats_.same_filled_pages;
    } else {
        csize = LzoCompress(page, kPageBytes, scratch_compressed_, ctx);
        stored.data.assign(scratch_compressed_.data(),
                           scratch_compressed_.data() + csize);
    }
    const std::uint64_t handle = next_handle_++;
    store_.emplace(handle, std::move(stored));

    ++stats_.pages_swapped_out;
    stats_.uncompressed_out_bytes += kPageBytes;
    stats_.compressed_bytes += csize;
    stats_.cumulative_compressed_bytes += csize;
    return {handle, csize};
}

Bytes
ZramPool::SwapIn(std::uint64_t handle,
                 pim::SimBuffer<std::uint8_t> &page_out,
                 core::ExecutionContext &ctx)
{
    auto it = store_.find(handle);
    PIM_ASSERT(it != store_.end(), "unknown ZRAM handle %llu",
               static_cast<unsigned long long>(handle));
    PIM_ASSERT(page_out.size() >= kPageBytes, "output page too small");

    std::size_t csize;
    if (it->second.same_filled) {
        csize = 8;
        std::memset(page_out.data(), it->second.fill_value, kPageBytes);
        // memset-class restore: streaming stores only.
        ctx.mem().Write(page_out.SimAddr(0), kPageBytes);
        ctx.ops().Store(kPageBytes / 16);
    } else {
        csize = it->second.data.size();
        std::memcpy(scratch_compressed_.data(), it->second.data.data(),
                    csize);
        const std::size_t n =
            LzoDecompress(scratch_compressed_, csize, page_out, ctx);
        PIM_ASSERT(n == kPageBytes, "decompressed %zu != page size", n);
    }

    ++stats_.pages_swapped_in;
    stats_.uncompressed_in_bytes += kPageBytes;
    stats_.compressed_bytes -= csize;
    store_.erase(it);
    return kPageBytes;
}

} // namespace pim::browser
