/**
 * @file
 * ZRAM: the DRAM-backed compressed swap pool Chrome uses for inactive
 * tabs (the paper's Section 4.3).
 *
 * When available memory drops below a threshold, pages of inactive tabs
 * are compressed (LZO) and parked in an in-DRAM pool; switching back to
 * the tab decompresses them, avoiding disk I/O.
 */

#ifndef PIM_BROWSER_ZRAM_H
#define PIM_BROWSER_ZRAM_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"
#include "core/execution_context.h"

namespace pim::browser {

/** Pool-wide statistics. */
struct ZramStats
{
    std::uint64_t pages_swapped_out = 0;
    std::uint64_t pages_swapped_in = 0;
    /** Pages stored as same-fill markers (zram's zero-page path). */
    std::uint64_t same_filled_pages = 0;
    Bytes uncompressed_out_bytes = 0; ///< Original bytes swapped out.
    Bytes compressed_bytes = 0;       ///< Bytes currently stored.
    Bytes cumulative_compressed_bytes = 0; ///< All compressed output.
    Bytes uncompressed_in_bytes = 0;  ///< Original bytes swapped back in.

    /** Average ratio over everything ever swapped out. */
    double
    CompressionRatio() const
    {
        return cumulative_compressed_bytes == 0
                   ? 0.0
                   : static_cast<double>(uncompressed_out_bytes) /
                         static_cast<double>(cumulative_compressed_bytes);
    }
};

/**
 * The compressed page pool.  Pages are 4 KiB; SwapOut compresses and
 * stores, SwapIn retrieves and decompresses (removing the entry).
 * All compression work streams through the supplied execution context.
 */
class ZramPool
{
  public:
    static constexpr std::size_t kPageBytes = 4096;

    ZramPool();

    /**
     * Compress @p page (kPageBytes long) into the pool.
     * @return a handle for SwapIn plus the compressed size.
     */
    struct SwapOutResult
    {
        std::uint64_t handle;
        Bytes compressed_bytes;
    };
    SwapOutResult SwapOut(const pim::SimBuffer<std::uint8_t> &page,
                          core::ExecutionContext &ctx);

    /**
     * Decompress the page behind @p handle into @p page_out and drop it
     * from the pool.  @return the decompressed size (== kPageBytes).
     */
    Bytes SwapIn(std::uint64_t handle,
                 pim::SimBuffer<std::uint8_t> &page_out,
                 core::ExecutionContext &ctx);

    const ZramStats &stats() const { return stats_; }
    std::size_t resident_pages() const { return store_.size(); }

  private:
    struct StoredPage
    {
        std::vector<std::uint8_t> data; ///< Empty for same-fill pages.
        bool same_filled = false;
        std::uint8_t fill_value = 0;
    };

    std::uint64_t next_handle_ = 1;
    std::unordered_map<std::uint64_t, StoredPage> store_;
    ZramStats stats_;
    // Scratch buffers reused across operations (sim address stable).
    pim::SimBuffer<std::uint8_t> scratch_compressed_;
    pim::SimBuffer<std::uint8_t> scratch_page_;
};

} // namespace pim::browser

#endif // PIM_BROWSER_ZRAM_H
