#include "workloads/video/deblock.h"

#include <algorithm>
#include <cstdlib>

namespace pim::video {

namespace {

int
Clamp8Signed(int v)
{
    return std::clamp(v, -128, 127);
}

} // namespace

bool
FilterMask(const DeblockParams &params, std::uint8_t p3, std::uint8_t p2,
           std::uint8_t p1, std::uint8_t p0, std::uint8_t q0,
           std::uint8_t q1, std::uint8_t q2, std::uint8_t q3)
{
    const auto ad = [](int a, int b) { return std::abs(a - b); };
    bool mask = ad(p3, p2) <= params.limit && ad(p2, p1) <= params.limit &&
                ad(p1, p0) <= params.limit && ad(q1, q0) <= params.limit &&
                ad(q2, q1) <= params.limit && ad(q3, q2) <= params.limit;
    mask = mask &&
           ad(p0, q0) * 2 + ad(p1, q1) / 2 <= params.blimit;
    return mask;
}

void
Filter4(std::uint8_t &p1, std::uint8_t &p0, std::uint8_t &q0,
        std::uint8_t &q1, bool high_edge_variance)
{
    const int ps1 = static_cast<int>(p1) - 128;
    const int ps0 = static_cast<int>(p0) - 128;
    const int qs0 = static_cast<int>(q0) - 128;
    const int qs1 = static_cast<int>(q1) - 128;

    int filter = high_edge_variance ? Clamp8Signed(ps1 - qs1) : 0;
    filter = Clamp8Signed(filter + 3 * (qs0 - ps0));

    const int f1 = Clamp8Signed(filter + 4) >> 3;
    const int f2 = Clamp8Signed(filter + 3) >> 3;

    q0 = static_cast<std::uint8_t>(Clamp8Signed(qs0 - f1) + 128);
    p0 = static_cast<std::uint8_t>(Clamp8Signed(ps0 + f2) + 128);

    if (!high_edge_variance) {
        const int f3 = (f1 + 1) >> 1;
        q1 = static_cast<std::uint8_t>(Clamp8Signed(qs1 - f3) + 128);
        p1 = static_cast<std::uint8_t>(Clamp8Signed(ps1 + f3) + 128);
    }
}

namespace {

/** Filter one edge position given accessors into the plane. */
template <typename Get, typename Set>
bool
FilterEdgePosition(const DeblockParams &params, Get get, Set set)
{
    const std::uint8_t p3 = get(-4), p2 = get(-3), p1 = get(-2),
                       p0 = get(-1);
    const std::uint8_t q0 = get(0), q1 = get(1), q2 = get(2), q3 = get(3);

    if (!FilterMask(params, p3, p2, p1, p0, q0, q1, q2, q3)) {
        return false;
    }
    const bool hev = std::abs(p1 - p0) > params.thresh ||
                     std::abs(q1 - q0) > params.thresh;
    std::uint8_t np1 = p1, np0 = p0, nq0 = q0, nq1 = q1;
    Filter4(np1, np0, nq0, nq1, hev);
    set(-2, np1);
    set(-1, np0);
    set(0, nq0);
    set(1, nq1);
    return true;
}

} // namespace

DeblockStats
DeblockPlane(Plane &plane, const DeblockParams &params,
             core::ExecutionContext &ctx)
{
    DeblockStats stats;
    auto &mem = ctx.mem();
    auto &ops = ctx.ops();
    // VP9 checks the edges of every 4x4 block (Section 6.2.2), walking
    // the frame superblock by superblock in raster order: within each
    // 64x64 superblock, all vertical edges are filtered first, then all
    // horizontal edges, so the working set stays superblock-sized.
    const int step = kTransformSize / 2;

    for (int sb_y = 0; sb_y < plane.h(); sb_y += kSuperblockSize) {
        const int y1 = std::min(sb_y + kSuperblockSize, plane.h());
        for (int sb_x = 0; sb_x < plane.w(); sb_x += kSuperblockSize) {
            const int x1 = std::min(sb_x + kSuperblockSize, plane.w());

            // Vertical edges within this superblock.
            for (int ex = sb_x == 0 ? step : sb_x; ex < x1; ex += step) {
                if (ex < 4 || ex + 4 > plane.w()) {
                    continue;
                }
                for (int y = sb_y; y < y1; ++y) {
                    const bool filtered = FilterEdgePosition(
                        params,
                        [&](int d) { return plane.At(ex + d, y); },
                        [&](int d, std::uint8_t v) {
                            plane.At(ex + d, y) = v;
                        });
                    ++stats.edges_checked;
                    stats.edges_filtered += filtered ? 1 : 0;
                    // 8-pixel straddle read; 4-pixel writeback when
                    // the mask passes.
                    mem.Read(plane.SimAddr(ex - 4, y), 8);
                    ops.Load(1);
                    ops.VectorAlu(14); // mask |diffs| + compares
                    ops.Branch(2);
                    if (filtered) {
                        mem.Write(plane.SimAddr(ex - 2, y), 4);
                        ops.Store(1);
                        ops.VectorAlu(12); // filter4 arithmetic
                    }
                }
            }

            // Horizontal edges within this superblock.
            for (int ey = sb_y == 0 ? step : sb_y; ey < y1; ey += step) {
                if (ey < 4 || ey + 4 > plane.h()) {
                    continue;
                }
                for (int x = sb_x; x < x1; ++x) {
                    const bool filtered = FilterEdgePosition(
                        params,
                        [&](int d) { return plane.At(x, ey + d); },
                        [&](int d, std::uint8_t v) {
                            plane.At(x, ey + d) = v;
                        });
                    ++stats.edges_checked;
                    stats.edges_filtered += filtered ? 1 : 0;
                    if (x % 16 == 0) {
                        // Row-granular traffic: 8 rows x 16-px spans.
                        for (int d = -4; d < 4; ++d) {
                            mem.Read(plane.SimAddr(x, ey + d),
                                     std::min(16, plane.w() - x));
                        }
                        ops.Load(8);
                    }
                    ops.VectorAlu(14);
                    ops.Branch(2);
                    if (filtered) {
                        if (x % 16 == 0) {
                            for (int d = -2; d < 2; ++d) {
                                mem.Write(plane.SimAddr(x, ey + d),
                                          std::min(16, plane.w() - x));
                            }
                            ops.Store(4);
                        }
                        ops.VectorAlu(12);
                    }
                }
            }
        }
    }
    return stats;
}

} // namespace pim::video
