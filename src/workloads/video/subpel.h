/**
 * @file
 * Sub-pixel interpolation (the paper's Section 6.2.2, first video PIM
 * target).
 *
 * A motion vector with 1/8-pel precision points between pixels; the
 * predictor block is built by separable 8-tap filtering of a
 * (bw+7) x (bh+7) reference window — the dominant source of reference-
 * frame traffic in both the software and hardware decoders.
 */

#ifndef PIM_VIDEO_SUBPEL_H
#define PIM_VIDEO_SUBPEL_H

#include <cstdint>
#include <vector>

#include "core/execution_context.h"
#include "workloads/video/filters.h"
#include "workloads/video/frame.h"

namespace pim::video {

/** Motion vector in 1/8-pel units (VP9 luma precision). */
struct MotionVector
{
    int row = 0; ///< Vertical displacement, 1/8-pel.
    int col = 0; ///< Horizontal displacement, 1/8-pel.

    bool IsZero() const { return row == 0 && col == 0; }
    bool
    IsFullPel() const
    {
        return (row & 7) == 0 && (col & 7) == 0;
    }

    bool
    operator==(const MotionVector &o) const
    {
        return row == o.row && col == o.col;
    }
};

/** Fixed-size output block for prediction results. */
struct PredBlock
{
    int w = 0;
    int h = 0;
    std::vector<std::uint8_t> pixels; // row-major w*h

    PredBlock(int w, int h)
        : w(w), h(h), pixels(static_cast<std::size_t>(w) * h, 0)
    {
    }

    std::uint8_t &
    At(int x, int y)
    {
        return pixels[static_cast<std::size_t>(y) * w + x];
    }
    std::uint8_t
    At(int x, int y) const
    {
        return pixels[static_cast<std::size_t>(y) * w + x];
    }
};

/**
 * Build the motion-compensated predictor for the block whose top-left
 * is (x0, y0) in the *current* frame, displaced by @p mv into @p ref.
 * Off-frame taps use edge clamping.  All reference reads and filter
 * arithmetic stream through @p ctx.
 */
void InterpolateBlock(const Plane &ref, int x0, int y0,
                      const MotionVector &mv, PredBlock &out,
                      core::ExecutionContext &ctx);

} // namespace pim::video

#endif // PIM_VIDEO_SUBPEL_H
