#include "workloads/video/mc.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace pim::video {

std::uint8_t
DcPredict(const Plane &recon, int x0, int y0, int bw, int bh,
          core::ExecutionContext &ctx)
{
    auto &mem = ctx.mem();
    auto &ops = ctx.ops();

    int sum = 0;
    int count = 0;
    if (y0 > 0) {
        for (int x = 0; x < bw; ++x) {
            sum += recon.At(x0 + x, y0 - 1);
        }
        count += bw;
        mem.Read(recon.SimAddr(x0, y0 - 1), static_cast<Bytes>(bw));
        ops.Load((bw + 15) / 16);
        ops.VectorAlu(static_cast<std::uint64_t>(bw));
    }
    if (x0 > 0) {
        for (int y = 0; y < bh; ++y) {
            sum += recon.At(x0 - 1, y0 + y);
            mem.Read(recon.SimAddr(x0 - 1, y0 + y), 1);
        }
        count += bh;
        ops.Load(static_cast<std::uint64_t>(bh));
        ops.VectorAlu(static_cast<std::uint64_t>(bh));
    }
    ops.Alu(4);
    ops.Branch(2);
    if (count == 0) {
        return 128;
    }
    return static_cast<std::uint8_t>((sum + count / 2) / count);
}

void
FillPredBlock(PredBlock &out, std::uint8_t dc)
{
    std::fill(out.pixels.begin(), out.pixels.end(), dc);
}

void
IntraPredict(const Plane &recon, int x0, int y0, IntraMode mode,
             PredBlock &out, core::ExecutionContext &ctx)
{
    auto &mem = ctx.mem();
    auto &ops = ctx.ops();

    // Directional modes degrade to DC at borders.
    if ((mode == IntraMode::kHorizontal && x0 == 0) ||
        (mode == IntraMode::kVertical && y0 == 0)) {
        mode = IntraMode::kDc;
    }

    switch (mode) {
      case IntraMode::kDc: {
        FillPredBlock(out,
                      DcPredict(recon, x0, y0, out.w, out.h, ctx));
        ops.Store(static_cast<std::uint64_t>(out.w) * out.h / 16);
        break;
      }
      case IntraMode::kHorizontal: {
        for (int y = 0; y < out.h; ++y) {
            const std::uint8_t left = recon.At(x0 - 1, y0 + y);
            for (int x = 0; x < out.w; ++x) {
                out.At(x, y) = left;
            }
            mem.Read(recon.SimAddr(x0 - 1, y0 + y), 1);
        }
        ops.Load(static_cast<std::uint64_t>(out.h));
        ops.Store(static_cast<std::uint64_t>(out.w) * out.h / 16);
        ops.Branch(static_cast<std::uint64_t>(out.h));
        break;
      }
      case IntraMode::kVertical: {
        for (int y = 0; y < out.h; ++y) {
            for (int x = 0; x < out.w; ++x) {
                out.At(x, y) = recon.At(x0 + x, y0 - 1);
            }
        }
        mem.Read(recon.SimAddr(x0, y0 - 1),
                 static_cast<Bytes>(out.w));
        ops.Load((out.w + 15) / 16);
        ops.Store(static_cast<std::uint64_t>(out.w) * out.h / 16);
        ops.Branch(static_cast<std::uint64_t>(out.h));
        break;
      }
    }
}

IntraMode
ChooseIntraMode(const Plane &src, const Plane &recon, int x0, int y0,
                int bw, int bh, core::ExecutionContext &ctx,
                std::uint32_t *best_sad)
{
    PredBlock candidate(bw, bh);
    IntraMode best_mode = IntraMode::kDc;
    std::uint32_t best = 0xffffffffu;

    for (const IntraMode mode :
         {IntraMode::kDc, IntraMode::kHorizontal, IntraMode::kVertical}) {
        // Skip directional modes whose references do not exist (they
        // would just duplicate the DC candidate).
        if ((mode == IntraMode::kHorizontal && x0 == 0) ||
            (mode == IntraMode::kVertical && y0 == 0)) {
            continue;
        }
        IntraPredict(recon, x0, y0, mode, candidate, ctx);
        std::uint32_t sad = 0;
        for (int y = 0; y < bh; ++y) {
            for (int x = 0; x < bw; ++x) {
                sad += static_cast<std::uint32_t>(std::abs(
                    static_cast<int>(src.At(x0 + x, y0 + y)) -
                    static_cast<int>(candidate.At(x, y))));
            }
            ctx.mem().Read(src.SimAddr(x0, y0 + y),
                           static_cast<Bytes>(bw));
            ctx.ops().Load((bw + 15) / 16);
            ctx.ops().VectorAlu(static_cast<std::uint64_t>(bw) * 2);
        }
        if (sad < best) {
            best = sad;
            best_mode = mode;
        }
    }
    if (best_sad != nullptr) {
        *best_sad = best;
    }
    return best_mode;
}

void
ComputeResidual8x8(const Plane &src, const PredBlock &pred, int px, int py,
                   int ox, int oy, Block8x8<std::int16_t> &residual,
                   core::ExecutionContext &ctx)
{
    PIM_ASSERT(px + 8 <= src.w() && py + 8 <= src.h(),
               "residual block (%d,%d) out of %dx%d", px, py, src.w(),
               src.h());
    auto &mem = ctx.mem();
    auto &ops = ctx.ops();
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            residual[static_cast<std::size_t>(y) * 8 + x] =
                static_cast<std::int16_t>(
                    static_cast<int>(src.At(px + x, py + y)) -
                    static_cast<int>(pred.At(ox + x, oy + y)));
        }
        mem.Read(src.SimAddr(px, py + y), 8);
        ops.Load(1);
        ops.VectorAlu(8);
        ops.Store(1);
    }
}

void
ReconstructBlock8x8(Plane &recon, const PredBlock &pred, int px, int py,
                    int ox, int oy, const Block8x8<std::int16_t> &residual,
                    core::ExecutionContext &ctx)
{
    PIM_ASSERT(px + 8 <= recon.w() && py + 8 <= recon.h(),
               "recon block (%d,%d) out of %dx%d", px, py, recon.w(),
               recon.h());
    auto &mem = ctx.mem();
    auto &ops = ctx.ops();
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            const int v =
                static_cast<int>(pred.At(ox + x, oy + y)) +
                residual[static_cast<std::size_t>(y) * 8 + x];
            recon.At(px + x, py + y) = static_cast<std::uint8_t>(
                std::clamp(v, 0, 255));
        }
        mem.Write(recon.SimAddr(px, py + y), 8);
        ops.Load(2);
        ops.VectorAlu(16);
        ops.Store(1);
    }
}

} // namespace pim::video
