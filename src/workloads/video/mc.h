/**
 * @file
 * Motion compensation and block reconstruction helpers (the paper's
 * Figure 9 MC unit plus the residual-add path), and the intra DC
 * predictor used when inter prediction loses the mode decision.
 */

#ifndef PIM_VIDEO_MC_H
#define PIM_VIDEO_MC_H

#include <cstdint>

#include "core/execution_context.h"
#include "workloads/video/frame.h"
#include "workloads/video/subpel.h"
#include "workloads/video/transform.h"

namespace pim::video {

/**
 * DC (mean-of-neighbors) intra prediction for the block at (x0, y0):
 * averages the reconstructed row above and column left, falling back to
 * 128 when neither exists.  Instrumented.
 */
std::uint8_t DcPredict(const Plane &recon, int x0, int y0, int bw, int bh,
                       core::ExecutionContext &ctx);

/** Fill @p out with the constant @p dc (intra-DC predictor block). */
void FillPredBlock(PredBlock &out, std::uint8_t dc);

/** Intra prediction modes (a subset of VP9's ten). */
enum class IntraMode : std::uint8_t
{
    kDc = 0,         ///< Mean of top row + left column.
    kHorizontal = 1, ///< Each row copies its left neighbor.
    kVertical = 2,   ///< Each column copies its top neighbor.
};

/**
 * Build the intra predictor for @p mode into @p out.  Directional
 * modes fall back to DC at frame borders where their reference pixels
 * do not exist.  Instrumented.
 */
void IntraPredict(const Plane &recon, int x0, int y0, IntraMode mode,
                  PredBlock &out, core::ExecutionContext &ctx);

/**
 * Evaluate DC/H/V against the source block and return the best mode by
 * SAD (the encoder's intra mode decision).  Instrumented.
 */
IntraMode ChooseIntraMode(const Plane &src, const Plane &recon, int x0,
                          int y0, int bw, int bh,
                          core::ExecutionContext &ctx,
                          std::uint32_t *best_sad = nullptr);

/**
 * Compute the residual of one 8x8 block: source minus predictor.
 * @p px/@p py are the block's top-left within the plane; @p ox/@p oy the
 * same within the predictor block.
 */
void ComputeResidual8x8(const Plane &src, const PredBlock &pred, int px,
                        int py, int ox, int oy,
                        Block8x8<std::int16_t> &residual,
                        core::ExecutionContext &ctx);

/**
 * Reconstruct one 8x8 block into @p recon: predictor plus decoded
 * residual, clamped to 8 bits.  Both encoder and decoder run this
 * identical routine, keeping reconstruction bit-exact between them.
 */
void ReconstructBlock8x8(Plane &recon, const PredBlock &pred, int px,
                         int py, int ox, int oy,
                         const Block8x8<std::int16_t> &residual,
                         core::ExecutionContext &ctx);

} // namespace pim::video

#endif // PIM_VIDEO_MC_H
