/**
 * @file
 * YUV 4:2:0 frame containers for the VP9-style codec.
 *
 * VP9 processes video one frame at a time: a luma plane at full
 * resolution and two chroma planes at half resolution, decomposed into
 * 64x64 superblocks for coding and filtering (Section 6.1).
 */

#ifndef PIM_VIDEO_FRAME_H
#define PIM_VIDEO_FRAME_H

#include <cstdint>

#include "common/buffer.h"
#include "common/logging.h"
#include "common/types.h"

namespace pim::video {

/** Superblock edge in pixels. */
inline constexpr int kSuperblockSize = 64;
/** Macroblock (motion compensation granularity) edge in pixels. */
inline constexpr int kMacroblockSize = 16;
/** Transform block edge in pixels. */
inline constexpr int kTransformSize = 8;

/** One 8-bit image plane with a simulated address range. */
class Plane
{
  public:
    Plane() : w_(0), h_(0) {}

    Plane(int w, int h, std::uint8_t fill = 128)
        : w_(w), h_(h), data_(static_cast<std::size_t>(w) * h, fill)
    {
        PIM_ASSERT(w > 0 && h > 0, "plane must be non-empty");
    }

    int w() const { return w_; }
    int h() const { return h_; }
    Bytes size_bytes() const { return data_.size_bytes(); }

    std::uint8_t &
    At(int x, int y)
    {
        return data_[Index(x, y)];
    }
    std::uint8_t
    At(int x, int y) const
    {
        return data_[Index(x, y)];
    }

    /** Pixel with edge clamping (codec boundary extension). */
    std::uint8_t
    AtClamped(int x, int y) const
    {
        x = x < 0 ? 0 : (x >= w_ ? w_ - 1 : x);
        y = y < 0 ? 0 : (y >= h_ ? h_ - 1 : y);
        return data_[Index(x, y)];
    }

    Address
    SimAddr(int x, int y) const
    {
        return data_.SimAddr(Index(x, y));
    }

    pim::SimBuffer<std::uint8_t> &buffer() { return data_; }
    const pim::SimBuffer<std::uint8_t> &buffer() const { return data_; }

  private:
    std::size_t
    Index(int x, int y) const
    {
        PIM_ASSERT(x >= 0 && x < w_ && y >= 0 && y < h_,
                   "(%d,%d) out of %dx%d", x, y, w_, h_);
        return static_cast<std::size_t>(y) * w_ + x;
    }

    int w_;
    int h_;
    pim::SimBuffer<std::uint8_t> data_;
};

/** A YUV 4:2:0 frame. */
struct Frame
{
    Frame() = default;

    Frame(int width, int height)
        : width(width), height(height), y(width, height),
          u((width + 1) / 2, (height + 1) / 2),
          v((width + 1) / 2, (height + 1) / 2)
    {
        PIM_ASSERT(width % 2 == 0 && height % 2 == 0,
                   "4:2:0 frames need even dimensions");
    }

    int width = 0;
    int height = 0;
    Plane y;
    Plane u;
    Plane v;

    Bytes
    size_bytes() const
    {
        return y.size_bytes() + u.size_bytes() + v.size_bytes();
    }
};

/** Mean absolute pixel difference between two planes (test metric). */
double MeanAbsDiff(const Plane &a, const Plane &b);

/** Peak signal-to-noise ratio between two planes, in dB. */
double Psnr(const Plane &a, const Plane &b);

} // namespace pim::video

#endif // PIM_VIDEO_FRAME_H
