/**
 * @file
 * Registry entries for the paper's video PIM-target kernels
 * (Figure 20, Section 9): sub-pixel interpolation, the deblocking
 * filter, and motion estimation.
 *
 * Sub-pixel interpolation and deblocking share the 4K-stand-in clip;
 * motion estimation uses the HD clip the paper's encoder study uses.
 * Clips are generated lazily through one VideoInputs object per
 * KernelSession, preserving the original Figure 20 allocation order.
 */

#include <memory>
#include <vector>

#include "core/kernel_registry.h"
#include "workloads/video/deblock.h"
#include "workloads/video/motion.h"
#include "workloads/video/subpel.h"
#include "workloads/video/video_gen.h"

namespace pim::video {

namespace {

using core::ExecutionContext;
using core::KernelInstance;
using core::KernelSpec;

/** Shared per-session clips, staged in the legacy setup order. */
struct VideoInputs
{
    explicit VideoInputs(double scale) : scale(scale) {}

    double scale;
    VideoGenConfig cfg;    ///< Full-HD+ 4K stand-in (DESIGN.md).
    VideoGenConfig hd_cfg; ///< HD input for motion estimation.
    std::vector<Frame> frames;
    std::vector<Frame> hd_frames;

    /**
     * The decode-side clip: large enough that frames stream through
     * the host LLC instead of living in it, as the paper's 4K frames
     * do.  Dimensions stay macroblock-aligned at any scale.
     */
    void
    EnsureClip()
    {
        if (!frames.empty()) {
            return;
        }
        cfg.width = core::ScaleDim(1920, scale, 16);
        cfg.height = core::ScaleDim(1088, scale, 16);
        frames = GenerateClip(cfg, 4);
    }

    /** The HD clip motion estimation searches over. */
    void
    EnsureHdClip()
    {
        if (!hd_frames.empty()) {
            return;
        }
        hd_cfg.width = core::ScaleDim(1280, scale, 16);
        hd_cfg.height = core::ScaleDim(720, scale, 16);
        hd_frames = GenerateClip(hd_cfg, 4);
    }
};

std::shared_ptr<VideoInputs>
Inputs(std::shared_ptr<void> &state, double scale)
{
    if (!state) {
        state = std::make_shared<VideoInputs>(scale);
    }
    return std::static_pointer_cast<VideoInputs>(state);
}

} // namespace

PIM_REGISTER_KERNEL(subpel_interpolation)
{
    KernelSpec spec;
    spec.name = "Sub-Pixel Interpolation";
    spec.group = "video";
    spec.figure = "Figure 20";
    spec.order = 0;
    spec.make = [](std::shared_ptr<void> &state, double scale) {
        auto in = Inputs(state, scale);
        in->EnsureClip();
        KernelInstance inst;
        inst.footprint = {in->frames[0].y.size_bytes(), 0};
        inst.run = [in](ExecutionContext &ctx) {
            PredBlock block(16, 16);
            for (int y = 0; y < in->cfg.height; y += 16) {
                for (int x = 0; x < in->cfg.width; x += 16) {
                    InterpolateBlock(in->frames[0].y, x, y,
                                     MotionVector{5, 3}, block, ctx);
                }
            }
        };
        return inst;
    };
    return spec;
}

PIM_REGISTER_KERNEL(deblocking_filter)
{
    KernelSpec spec;
    spec.name = "Deblocking Filter";
    spec.group = "video";
    spec.figure = "Figure 20";
    spec.order = 1;
    spec.make = [](std::shared_ptr<void> &state, double scale) {
        auto in = Inputs(state, scale);
        in->EnsureClip();
        KernelInstance inst;
        inst.footprint = {in->frames[1].y.size_bytes(),
                          in->frames[1].y.size_bytes()};
        inst.run = [in](ExecutionContext &ctx) {
            Frame work = in->frames[1];
            DeblockPlane(work.y, DeblockParams{}, ctx);
        };
        return inst;
    };
    return spec;
}

PIM_REGISTER_KERNEL(motion_estimation)
{
    KernelSpec spec;
    spec.name = "Motion Estimation";
    spec.group = "video";
    spec.figure = "Figure 20";
    spec.order = 2;
    spec.make = [](std::shared_ptr<void> &state, double scale) {
        auto in = Inputs(state, scale);
        in->EnsureHdClip();
        KernelInstance inst;
        inst.footprint = {3 * in->hd_frames[0].y.size_bytes(), 0};
        inst.run = [in](ExecutionContext &ctx) {
            const std::vector<const Plane *> refs = {
                &in->hd_frames[0].y, &in->hd_frames[1].y,
                &in->hd_frames[2].y};
            for (int y = 0; y < in->hd_cfg.height; y += 16) {
                for (int x = 0; x < in->hd_cfg.width; x += 16) {
                    DiamondSearch(in->hd_frames[3].y, refs, x, y,
                                  MotionSearchParams{}, ctx);
                }
            }
        };
        return inst;
    };
    return spec;
}

} // namespace pim::video

PIM_KERNEL_ANCHOR(video_kernels)
