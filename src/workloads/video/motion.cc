#include "workloads/video/motion.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace pim::video {

std::uint32_t
BlockSad(const Plane &cur, const Plane &ref, int x0, int y0, int dx,
         int dy, int block, core::ExecutionContext &ctx,
         std::uint32_t abort_above)
{
    auto &mem = ctx.mem();
    auto &ops = ctx.ops();

    std::uint32_t sad = 0;
    for (int y = 0; y < block; ++y) {
        if (sad > abort_above) {
            break; // candidate already worse than the incumbent
        }
        for (int x = 0; x < block; ++x) {
            const int c = cur.AtClamped(x0 + x, y0 + y);
            const int r = ref.AtClamped(x0 + dx + x, y0 + dy + y);
            sad += static_cast<std::uint32_t>(std::abs(c - r));
        }
        // One current row + one reference row per block row.
        const int cy = std::clamp(y0 + y, 0, cur.h() - 1);
        const int ry = std::clamp(y0 + dy + y, 0, ref.h() - 1);
        mem.Read(cur.SimAddr(std::clamp(x0, 0, cur.w() - 1), cy),
                 static_cast<Bytes>(block));
        mem.Read(ref.SimAddr(std::clamp(x0 + dx, 0, ref.w() - 1), ry),
                 static_cast<Bytes>(block));
        ops.Load(2 * ((block + 15) / 16));
        // abs-diff + accumulate per pixel, SIMD (vpx uses psadbw-style).
        ops.VectorAlu(static_cast<std::uint64_t>(block) * 2);
        ops.Branch(1);
    }
    return sad;
}

MotionResult
DiamondSearch(const Plane &cur, const std::vector<const Plane *> &refs,
              int x0, int y0, const MotionSearchParams &params,
              core::ExecutionContext &ctx)
{
    PIM_ASSERT(!refs.empty() && refs.size() <= 3,
               "expected 1-3 reference frames, got %zu", refs.size());

    MotionResult best;
    best.sad = 0xffffffffu;

    // Early-termination threshold: a match this good ends the search
    // (libvpx-style pruning; noise-level residual).
    const auto good_enough = static_cast<std::uint32_t>(
        params.block * params.block);

    for (std::size_t ri = 0; ri < refs.size(); ++ri) {
        if (best.sad < good_enough) {
            break;
        }
        const Plane &ref = *refs[ri];

        int cx = 0;
        int cy = 0;
        std::uint32_t best_sad = BlockSad(cur, ref, x0, y0, 0, 0,
                                          params.block, ctx, best.sad);
        std::uint32_t probes = 1;

        // Large diamond: step halves until 1.
        for (int step = params.initial_step; step >= 1; step /= 2) {
            bool improved = true;
            while (improved) {
                improved = false;
                static constexpr int kDx[4] = {1, -1, 0, 0};
                static constexpr int kDy[4] = {0, 0, 1, -1};
                int best_dir = -1;
                for (int d = 0; d < 4; ++d) {
                    const int nx = cx + kDx[d] * step;
                    const int ny = cy + kDy[d] * step;
                    if (std::abs(nx) > params.max_range ||
                        std::abs(ny) > params.max_range) {
                        continue;
                    }
                    const std::uint32_t sad =
                        BlockSad(cur, ref, x0, y0, nx, ny, params.block,
                                 ctx, best_sad);
                    ++probes;
                    if (sad < best_sad) {
                        best_sad = sad;
                        best_dir = d;
                    }
                }
                if (best_dir >= 0) {
                    cx += kDx[best_dir] * step;
                    cy += kDy[best_dir] * step;
                    improved = true;
                }
            }
        }

        if (best_sad < best.sad) {
            best.sad = best_sad;
            best.mv = MotionVector{cy * 8, cx * 8}; // full-pel in 1/8 units
            best.ref_index = static_cast<int>(ri);
        }
        best.probes += probes;
    }
    return best;
}

namespace {

/** SAD of the interpolated predictor for @p mv against the source. */
std::uint32_t
InterpolatedSad(const Plane &cur, const Plane &ref, int x0, int y0,
                const MotionVector &mv, int block,
                core::ExecutionContext &ctx)
{
    PredBlock pred(block, block);
    InterpolateBlock(ref, x0, y0, mv, pred, ctx);
    std::uint32_t sad = 0;
    auto &mem = ctx.mem();
    auto &ops = ctx.ops();
    for (int y = 0; y < block; ++y) {
        for (int x = 0; x < block; ++x) {
            sad += static_cast<std::uint32_t>(
                std::abs(static_cast<int>(cur.AtClamped(x0 + x, y0 + y)) -
                         static_cast<int>(pred.At(x, y))));
        }
        const int cy = std::clamp(y0 + y, 0, cur.h() - 1);
        mem.Read(cur.SimAddr(std::clamp(x0, 0, cur.w() - 1), cy),
                 static_cast<Bytes>(block));
        ops.Load((block + 15) / 16);
        ops.VectorAlu(static_cast<std::uint64_t>(block) * 2);
        ops.Branch(1);
    }
    return sad;
}

} // namespace

MotionResult
RefineSubpel(const Plane &cur, const Plane &ref, int x0, int y0,
             const MotionResult &start, int block,
             core::ExecutionContext &ctx)
{
    MotionResult best = start;
    // A near-perfect integer match needs no refinement.
    if (best.sad < static_cast<std::uint32_t>(block * block) / 2) {
        return best;
    }
    for (int step : {4, 2, 1}) { // half, quarter, eighth pel
        static constexpr int kDx[4] = {1, -1, 0, 0};
        static constexpr int kDy[4] = {0, 0, 1, -1};
        int best_dir = -1;
        for (int d = 0; d < 4; ++d) {
            const MotionVector mv{best.mv.row + kDy[d] * step,
                                  best.mv.col + kDx[d] * step};
            const std::uint32_t sad =
                InterpolatedSad(cur, ref, x0, y0, mv, block, ctx);
            ++best.probes;
            if (sad < best.sad) {
                best.sad = sad;
                best_dir = d;
            }
        }
        if (best_dir >= 0) {
            best.mv.row += kDy[best_dir] * step;
            best.mv.col += kDx[best_dir] * step;
        }
    }
    return best;
}

} // namespace pim::video
