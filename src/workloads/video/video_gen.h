/**
 * @file
 * Deterministic synthetic video generator (substitution for the
 * paper's Netflix/Derf test clips; see DESIGN.md).
 *
 * Scenes are a smooth textured background panning slowly plus a set of
 * moving rectangles with their own textures and velocities, topped with
 * mild per-frame noise.  This produces the properties the codec study
 * depends on: strong temporal redundancy, non-integer object motion
 * (exercising sub-pixel interpolation), and spatially varying residual
 * energy.
 */

#ifndef PIM_VIDEO_VIDEO_GEN_H
#define PIM_VIDEO_VIDEO_GEN_H

#include <cstdint>
#include <vector>

#include "workloads/video/frame.h"

namespace pim::video {

/** Scene parameters. */
struct VideoGenConfig
{
    int width = 320;
    int height = 192;
    int objects = 5;
    double max_speed_px = 3.5;  ///< Per-frame object speed (sub-pixel).
    double background_pan = 0.6; ///< Background pan speed (px/frame).
    int noise_amplitude = 2;     ///< Uniform +/- noise on luma.
    std::uint64_t seed = 0x51DE0;
};

/** Generates frames of a deterministic synthetic scene. */
class VideoGenerator
{
  public:
    explicit VideoGenerator(const VideoGenConfig &config);

    /** Produce the next frame of the scene. */
    Frame NextFrame();

    const VideoGenConfig &config() const { return config_; }

  private:
    struct Object
    {
        double x, y;
        double vx, vy;
        int w, h;
        std::uint8_t base_luma;
        std::uint32_t texture_seed;
    };

    VideoGenConfig config_;
    std::vector<Object> objects_;
    double pan_ = 0.0;
    int frame_index_ = 0;
    std::uint64_t noise_state_;
};

/** Convenience: generate @p count frames. */
std::vector<Frame> GenerateClip(const VideoGenConfig &config, int count);

} // namespace pim::video

#endif // PIM_VIDEO_VIDEO_GEN_H
