/**
 * @file
 * Entropy coding: bitstream I/O, exp-Golomb codes, and the run-length
 * coefficient coder (the paper's Figure 9 entropy decoder / Figure 14
 * entropy coder, simplified from VP9's arithmetic coder to a
 * variable-length scheme with the same serial, compute-light,
 * cache-resident character).
 */

#ifndef PIM_VIDEO_ENTROPY_H
#define PIM_VIDEO_ENTROPY_H

#include <cstdint>
#include <vector>

#include "core/execution_context.h"
#include "workloads/video/transform.h"

namespace pim::video {

/** MSB-first bit writer over a growable byte buffer. */
class BitWriter
{
  public:
    void PutBit(int bit);
    void PutBits(std::uint32_t value, int count); ///< MSB first.

    /** Unsigned exp-Golomb. */
    void PutUe(std::uint32_t value);
    /** Signed exp-Golomb (zigzag mapping). */
    void PutSe(std::int32_t value);

    /** Flush any partial byte (pads with zeros) and return the stream. */
    std::vector<std::uint8_t> Finish();

    std::size_t BitCount() const { return bytes_.size() * 8 + nbits_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::uint8_t current_ = 0;
    int nbits_ = 0;
};

/** MSB-first bit reader over a byte span. */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    int GetBit();
    std::uint32_t GetBits(int count);
    std::uint32_t GetUe();
    std::int32_t GetSe();

    bool AtEnd() const { return byte_pos_ >= size_ && bit_pos_ == 0; }
    std::size_t BitsConsumed() const { return byte_pos_ * 8 + bit_pos_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t byte_pos_ = 0;
    int bit_pos_ = 0;
};

/**
 * Encode one quantized 8x8 block: zig-zag (run, level) pairs with an
 * end-of-block marker.  Instrumented through @p ctx.
 */
void EncodeCoefficients(const Block8x8<std::int16_t> &levels,
                        BitWriter &writer, core::ExecutionContext &ctx);

/** Decode one 8x8 block written by EncodeCoefficients. */
void DecodeCoefficients(BitReader &reader,
                        Block8x8<std::int16_t> &levels,
                        core::ExecutionContext &ctx);

} // namespace pim::video

#endif // PIM_VIDEO_ENTROPY_H
