/**
 * @file
 * VP9 interpolation filter kernels.
 *
 * VP9 interpolates pixel values at non-integer motion-vector positions
 * with separable 8-tap FIR filters defined at sixteen 1/16-pel phases
 * (the bitstream's 1/8-pel luma vectors use the even phases), plus a
 * bilinear fallback (Section 6.2.2).  Coefficients sum to 128 and the
 * result is rounded and shifted by 7.
 */

#ifndef PIM_VIDEO_FILTERS_H
#define PIM_VIDEO_FILTERS_H

#include <array>
#include <cstdint>

namespace pim::video {

/** Number of taps in the interpolation kernel. */
inline constexpr int kFilterTaps = 8;
/** Number of sub-pixel phases (1/16-pel). */
inline constexpr int kSubpelPhases = 16;
/** log2 of the coefficient sum (for the rounding shift). */
inline constexpr int kFilterShift = 7;

using FilterKernel = std::array<std::int16_t, kFilterTaps>;

/** The "regular" 8-tap kernel for a given 1/16-pel phase. */
const FilterKernel &EightTapKernel(int phase);

/** The bilinear kernel for a given 1/16-pel phase. */
const FilterKernel &BilinearKernel(int phase);

/**
 * Apply a kernel to 8 consecutive samples (src[0..7] covering taps
 * -3..+4 around the sample of interest) and round to 8 bits.
 */
std::uint8_t ApplyKernelU8(const std::uint8_t *src,
                           const FilterKernel &kernel);

/** Apply a kernel to intermediate 16-bit samples (second pass). */
std::uint8_t ApplyKernelI32(const std::int32_t *src,
                            const FilterKernel &kernel);

/** Unrounded horizontal pass output (for the two-pass interpolator). */
std::int32_t ApplyKernelRaw(const std::uint8_t *src,
                            const FilterKernel &kernel);

} // namespace pim::video

#endif // PIM_VIDEO_FILTERS_H
