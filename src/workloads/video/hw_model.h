/**
 * @file
 * Analytic traffic/energy model of Google's VP9 hardware decoder and
 * encoder (the paper's Sections 6.3 and 7.3, Figures 12, 16, and 21).
 *
 * The hardware codec hides latency with prefetch and large SRAM
 * reference buffers, but still moves every reference window, current
 * frame, and reconstructed frame across the off-chip memory channel.
 * The model expresses each named stream of Figures 12/16 as bytes per
 * pixel (calibrated per resolution class against the paper's RTL-
 * derived measurements; see EXPERIMENTS.md) and prices configurations:
 *
 *   - baseline VP9 accelerator on the SoC
 *   - VP9 + lossless reference-frame compression
 *   - VP9 with MC (+deblock) or ME moved into memory as PIM-Core
 *     or PIM-Acc logic (Figures 13 / 17)
 */

#ifndef PIM_VIDEO_HW_MODEL_H
#define PIM_VIDEO_HW_MODEL_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace pim::video {

/** Resolution classes evaluated in the paper. */
enum class HwResolution
{
    kHd, ///< 1280 x 720
    k4k, ///< 3840 x 2160
};

int HwWidth(HwResolution res);
int HwHeight(HwResolution res);
double HwPixels(HwResolution res);

/** Where the MC/deblock (decoder) or ME/MC/deblock (encoder) logic runs. */
enum class HwPimMode
{
    kNone,    ///< Baseline on-SoC VP9 accelerator.
    kPimCore, ///< Offloaded to a general-purpose PIM core.
    kPimAccel, ///< Offloaded to fixed-function PIM logic.
};

/** Per-frame off-chip traffic by stream, in megabytes (Figures 12/16). */
struct HwTrafficBreakdown
{
    double reference_frame = 0;
    double current_frame = 0; ///< Encoder only.
    double compression_info = 0;
    double decoder_data = 0; ///< Bitstream + MV/residual streams.
    double recon_metadata = 0;
    double deblocking = 0;
    double reconstructed_frame = 0;
    double encoded_bitstream = 0; ///< Encoder only.
    double other = 0;

    double
    Total() const
    {
        return reference_frame + current_frame + compression_info +
               decoder_data + recon_metadata + deblocking +
               reconstructed_frame + encoded_bitstream + other;
    }

    double
    ReferenceShare() const
    {
        const double t = Total();
        return t <= 0 ? 0.0 : reference_frame / t;
    }
};

/** Off-chip traffic of the hardware *decoder* for one frame. */
HwTrafficBreakdown HwDecoderTraffic(HwResolution res,
                                    bool frame_compression);

/** Off-chip traffic of the hardware *encoder* for one frame. */
HwTrafficBreakdown HwEncoderTraffic(HwResolution res,
                                    bool frame_compression);

/** Energy of one configuration, by component (Figure 21), millijoules. */
struct HwEnergyBreakdown
{
    double dram_mj = 0;
    double memctrl_mj = 0;
    double interconnect_mj = 0;
    double computation_mj = 0;

    double
    Total() const
    {
        return dram_mj + memctrl_mj + interconnect_mj + computation_mj;
    }
};

/**
 * Energy for decoding (or encoding) one frame under the given PIM mode.
 * With PIM, the reference/reconstruction/deblock streams move on the
 * in-stack path instead of the off-chip channel, and the offloaded
 * units' computation is priced at PIM-core or PIM-accelerator rates.
 */
HwEnergyBreakdown HwDecoderEnergy(HwResolution res, bool frame_compression,
                                  HwPimMode pim);
HwEnergyBreakdown HwEncoderEnergy(HwResolution res, bool frame_compression,
                                  HwPimMode pim);

} // namespace pim::video

#endif // PIM_VIDEO_HW_MODEL_H
