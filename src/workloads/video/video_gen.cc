#include "workloads/video/video_gen.h"

#include <cmath>

#include "common/rng.h"

namespace pim::video {

namespace {

/** Smooth value-noise texture sample: cheap, deterministic, band-limited. */
std::uint8_t
TextureSample(std::uint32_t seed, double x, double y)
{
    auto lattice = [seed](int ix, int iy) {
        std::uint32_t h = seed;
        h ^= static_cast<std::uint32_t>(ix) * 0x9E3779B1u;
        h ^= static_cast<std::uint32_t>(iy) * 0x85EBCA77u;
        h ^= h >> 13;
        h *= 0xC2B2AE3Du;
        h ^= h >> 16;
        return static_cast<double>(h & 0xff);
    };
    const double cell = 16.0; // texture feature size in pixels
    const double fx = x / cell;
    const double fy = y / cell;
    const int ix = static_cast<int>(std::floor(fx));
    const int iy = static_cast<int>(std::floor(fy));
    const double tx = fx - ix;
    const double ty = fy - iy;
    const double sx = tx * tx * (3 - 2 * tx); // smoothstep
    const double sy = ty * ty * (3 - 2 * ty);
    const double top = lattice(ix, iy) * (1 - sx) +
                       lattice(ix + 1, iy) * sx;
    const double bot = lattice(ix, iy + 1) * (1 - sx) +
                       lattice(ix + 1, iy + 1) * sx;
    return static_cast<std::uint8_t>(top * (1 - sy) + bot * sy);
}

} // namespace

VideoGenerator::VideoGenerator(const VideoGenConfig &config)
    : config_(config), noise_state_(config.seed | 1)
{
    Rng rng(config.seed);
    for (int i = 0; i < config.objects; ++i) {
        Object o;
        o.w = 24 + static_cast<int>(rng.Below(40));
        o.h = 24 + static_cast<int>(rng.Below(40));
        o.x = rng.NextDouble() * (config.width - o.w);
        o.y = rng.NextDouble() * (config.height - o.h);
        const double angle = rng.NextDouble() * 2.0 * 3.14159265358979;
        const double speed =
            (0.4 + 0.6 * rng.NextDouble()) * config.max_speed_px;
        o.vx = std::cos(angle) * speed;
        o.vy = std::sin(angle) * speed;
        o.base_luma = static_cast<std::uint8_t>(60 + rng.Below(140));
        o.texture_seed = static_cast<std::uint32_t>(rng.Next64());
        objects_.push_back(o);
    }
}

Frame
VideoGenerator::NextFrame()
{
    Frame frame(config_.width, config_.height);

    // Panning background.
    for (int y = 0; y < config_.height; ++y) {
        for (int x = 0; x < config_.width; ++x) {
            frame.y.At(x, y) = TextureSample(
                static_cast<std::uint32_t>(config_.seed), x + pan_, y);
        }
    }

    // Moving textured objects.
    for (const Object &o : objects_) {
        const int x0 = static_cast<int>(std::floor(o.x));
        const int y0 = static_cast<int>(std::floor(o.y));
        for (int dy = 0; dy < o.h; ++dy) {
            const int y = y0 + dy;
            if (y < 0 || y >= config_.height) {
                continue;
            }
            for (int dx = 0; dx < o.w; ++dx) {
                const int x = x0 + dx;
                if (x < 0 || x >= config_.width) {
                    continue;
                }
                const int t = TextureSample(o.texture_seed,
                                            x - o.x, y - o.y);
                const int v = (o.base_luma * 3 + t) / 4;
                frame.y.At(x, y) = static_cast<std::uint8_t>(v);
            }
        }
    }

    // Chroma: smooth gradients derived from position (low-detail).
    for (int y = 0; y < frame.u.h(); ++y) {
        for (int x = 0; x < frame.u.w(); ++x) {
            frame.u.At(x, y) = static_cast<std::uint8_t>(
                112 + (x * 24) / std::max(1, frame.u.w()));
            frame.v.At(x, y) = static_cast<std::uint8_t>(
                120 + (y * 16) / std::max(1, frame.v.h()));
        }
    }

    // Mild sensor noise on luma.
    if (config_.noise_amplitude > 0) {
        const int span = 2 * config_.noise_amplitude + 1;
        for (int y = 0; y < config_.height; ++y) {
            for (int x = 0; x < config_.width; ++x) {
                noise_state_ ^= noise_state_ << 13;
                noise_state_ ^= noise_state_ >> 7;
                noise_state_ ^= noise_state_ << 17;
                const int noise = static_cast<int>(noise_state_ % span) -
                                  config_.noise_amplitude;
                const int v = frame.y.At(x, y) + noise;
                frame.y.At(x, y) = static_cast<std::uint8_t>(
                    v < 0 ? 0 : (v > 255 ? 255 : v));
            }
        }
    }

    // Advance the scene.
    pan_ += config_.background_pan;
    for (Object &o : objects_) {
        o.x += o.vx;
        o.y += o.vy;
        if (o.x < -o.w) {
            o.x = config_.width;
        }
        if (o.x > config_.width) {
            o.x = -o.w;
        }
        if (o.y < -o.h) {
            o.y = config_.height;
        }
        if (o.y > config_.height) {
            o.y = -o.h;
        }
    }
    ++frame_index_;
    return frame;
}

std::vector<Frame>
GenerateClip(const VideoGenConfig &config, int count)
{
    VideoGenerator gen(config);
    std::vector<Frame> frames;
    frames.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        frames.push_back(gen.NextFrame());
    }
    return frames;
}

} // namespace pim::video
