/**
 * @file
 * Deblocking loop filter (the paper's Section 6.2.2, second video PIM
 * target).
 *
 * Block-based prediction and transform create discontinuities at block
 * borders; the loop filter walks every vertical and horizontal 8x8
 * transform-block edge in raster order, evaluates a flatness mask on up
 * to four pixels each side, and applies VP9's filter4 low-pass update
 * to up to two pixels per side.  Poor locality on the vertical-edge
 * pass makes it strongly memory-bound.
 */

#ifndef PIM_VIDEO_DEBLOCK_H
#define PIM_VIDEO_DEBLOCK_H

#include <cstdint>

#include "core/execution_context.h"
#include "workloads/video/frame.h"

namespace pim::video {

/** Loop-filter strength thresholds (derived from filter level). */
struct DeblockParams
{
    int blimit = 16; ///< Edge-difference budget across the edge.
    int limit = 6;   ///< Per-pair difference budget.
    int thresh = 2;  ///< High-edge-variance threshold.
};

/** Statistics of one filtering pass. */
struct DeblockStats
{
    std::uint64_t edges_checked = 0;
    std::uint64_t edges_filtered = 0;
};

/**
 * Apply the loop filter in place to @p plane, filtering all internal
 * 8x8 block edges (vertical edges first, then horizontal, as VP9 does
 * per superblock).  All pixel traffic streams through @p ctx.
 */
DeblockStats DeblockPlane(Plane &plane, const DeblockParams &params,
                          core::ExecutionContext &ctx);

/**
 * The scalar filter4 update applied to one 4-pixel stencil
 * (p1 p0 | q0 q1) when the mask passes; exposed for testing.
 * Values are modified in place.
 */
void Filter4(std::uint8_t &p1, std::uint8_t &p0, std::uint8_t &q0,
             std::uint8_t &q1, bool high_edge_variance);

/** The VP9 filter mask: should this edge be filtered at all? */
bool FilterMask(const DeblockParams &params, std::uint8_t p3,
                std::uint8_t p2, std::uint8_t p1, std::uint8_t p0,
                std::uint8_t q0, std::uint8_t q1, std::uint8_t q2,
                std::uint8_t q3);

} // namespace pim::video

#endif // PIM_VIDEO_DEBLOCK_H
