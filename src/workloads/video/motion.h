/**
 * @file
 * Motion estimation (the paper's Section 7.2.2 PIM target).
 *
 * libvpx locates matching blocks in reference frames with the diamond
 * search algorithm, scoring candidates by the sum of absolute
 * differences (SAD).  Each macroblock is searched in up to three
 * reference frames; the winning (reference, vector) pair minimizes SAD.
 * The kernel is bandwidth-hungry: every candidate probe streams a full
 * macroblock from the reference frame.
 */

#ifndef PIM_VIDEO_MOTION_H
#define PIM_VIDEO_MOTION_H

#include <cstdint>
#include <vector>

#include "core/execution_context.h"
#include "workloads/video/frame.h"
#include "workloads/video/subpel.h"

namespace pim::video {

/** Search configuration. */
struct MotionSearchParams
{
    int block = kMacroblockSize; ///< Block edge (16).
    int max_range = 32;          ///< Max displacement in pixels.
    int initial_step = 8;        ///< Large-diamond initial step.
};

/** Result of searching one block in one or more references. */
struct MotionResult
{
    MotionVector mv;    ///< Full-pel vector, stored in 1/8-pel units.
    int ref_index = 0;  ///< Which reference frame won.
    std::uint32_t sad = 0;
    std::uint32_t probes = 0; ///< Candidate blocks scored.
};

/**
 * Sum of absolute differences between the block at (x0, y0) in @p cur
 * and the (clamped) block at (x0+dx, y0+dy) in @p ref; instrumented.
 * The scan aborts (returning a value > @p abort_above) as soon as the
 * partial sum exceeds @p abort_above — libvpx-style SAD pruning.
 */
std::uint32_t BlockSad(const Plane &cur, const Plane &ref, int x0, int y0,
                       int dx, int dy, int block,
                       core::ExecutionContext &ctx,
                       std::uint32_t abort_above = 0xffffffffu);

/**
 * Diamond-search motion estimation for the block at (x0, y0) of
 * @p cur over @p refs (up to 3 reference frames, newest first).
 */
MotionResult DiamondSearch(const Plane &cur,
                           const std::vector<const Plane *> &refs, int x0,
                           int y0, const MotionSearchParams &params,
                           core::ExecutionContext &ctx);

/**
 * Sub-pixel refinement: starting from a full-pel result, probe the four
 * diamond neighbors at half-, quarter-, and eighth-pel steps, scoring
 * each candidate by the SAD of its interpolated predictor — the step
 * that makes decoders execute the 8-tap sub-pixel interpolation path.
 */
MotionResult RefineSubpel(const Plane &cur, const Plane &ref, int x0,
                          int y0, const MotionResult &start, int block,
                          core::ExecutionContext &ctx);

} // namespace pim::video

#endif // PIM_VIDEO_MOTION_H
