#include "workloads/video/decoder.h"

#include <algorithm>

#include "common/logging.h"
#include "workloads/video/entropy.h"
#include "workloads/video/mc.h"
#include "workloads/video/subpel.h"
#include "workloads/video/transform.h"

namespace pim::video {

namespace {

/** Decode one 8x8 block: entropy -> dequant -> IDCT -> reconstruct. */
void
DecodeBlock(Plane &recon, const PredBlock &pred, int px, int py, int ox,
            int oy, int qindex, BitReader &reader,
            core::ExecutionContext &ctx, CodecPhases &phases)
{
    Block8x8<std::int16_t> levels;
    Block8x8<std::int32_t> coeffs;
    Block8x8<std::int16_t> residual;

    DecodeCoefficients(reader, levels, ctx);
    phases.entropy.Take(ctx, "entropy");

    // Zero blocks (EOB at position 0) skip the inverse path entirely,
    // as production decoders do.
    bool all_zero = true;
    for (const auto v : levels) {
        if (v != 0) {
            all_zero = false;
            break;
        }
    }
    if (all_zero) {
        residual.fill(0);
    } else {
        DequantizeBlock(levels, qindex, coeffs, ctx);
        phases.quant.Take(ctx, "dequant");

        InverseDct8x8(coeffs, residual, ctx);
        phases.transform.Take(ctx, "idct");
    }

    ReconstructBlock8x8(recon, pred, px, py, ox, oy, residual, ctx);
    phases.mc_other.Take(ctx, "recon");
}

} // namespace

Vp9Decoder::Vp9Decoder(CodecConfig config) : config_(std::move(config)) {}

Frame
Vp9Decoder::DecodeFrame(const std::vector<std::uint8_t> &bitstream,
                        core::ExecutionContext &ctx, CodecPhases *phases)
{
    CodecPhases local_phases;
    CodecPhases &ph = phases != nullptr ? *phases : local_phases;
    ctx.Reset(/*drain_caches=*/false);

    // Frame-level bitstream read-in traffic (compressed input stream).
    static thread_local pim::SimBuffer<std::uint8_t> bitstream_region(
        1u << 20);
    ctx.mem().Read(bitstream_region.SimAddr(0),
                   std::min<Bytes>(bitstream.size(),
                                   bitstream_region.size()));
    ctx.ops().Load(bitstream.size() / 16 + 1);
    ph.other.Take(ctx, "bitstream-in");

    BitReader reader(bitstream.data(), bitstream.size());
    const int width = static_cast<int>(reader.GetUe());
    const int height = static_cast<int>(reader.GetUe());
    const bool key = reader.GetBits(1) != 0;
    const int qindex = static_cast<int>(reader.GetBits(8));
    ph.entropy.Take(ctx, "header");

    PIM_ASSERT(width > 0 && height > 0 &&
                   width % kMacroblockSize == 0 &&
                   height % kMacroblockSize == 0,
               "malformed frame header %dx%d", width, height);
    PIM_ASSERT(key || !references_.empty(),
               "inter frame with no reference");

    Frame recon(width, height);
    const int mbs_x = width / kMacroblockSize;
    const int mbs_y = height / kMacroblockSize;

    std::vector<bool> mb_inter(static_cast<std::size_t>(mbs_x) * mbs_y,
                               false);
    std::vector<MotionVector> mb_mv(static_cast<std::size_t>(mbs_x) *
                                    mbs_y);
    std::vector<int> mb_ref(static_cast<std::size_t>(mbs_x) * mbs_y, 0);
    std::vector<IntraMode> mb_mode(static_cast<std::size_t>(mbs_x) *
                                       mbs_y,
                                   IntraMode::kDc);

    PredBlock pred(kMacroblockSize, kMacroblockSize);

    for (int my = 0; my < mbs_y; ++my) {
        for (int mx = 0; mx < mbs_x; ++mx) {
            const int x0 = mx * kMacroblockSize;
            const int y0 = my * kMacroblockSize;
            const std::size_t mb_index =
                static_cast<std::size_t>(my) * mbs_x + mx;

            bool inter = false;
            MotionVector mv;
            int ref_index = 0;
            IntraMode intra_mode = IntraMode::kDc;
            if (!key) {
                inter = reader.GetBits(1) != 0;
                if (inter) {
                    ref_index = static_cast<int>(reader.GetUe());
                    mv.row = reader.GetSe();
                    mv.col = reader.GetSe();
                    PIM_ASSERT(ref_index >= 0 &&
                                   static_cast<std::size_t>(ref_index) <
                                       references_.size(),
                               "bad reference index %d", ref_index);
                }
            }
            if (!inter) {
                const std::uint32_t mode_bits = reader.GetBits(2);
                PIM_ASSERT(mode_bits <= 2, "bad intra mode %u",
                           mode_bits);
                intra_mode = static_cast<IntraMode>(mode_bits);
            }
            ph.entropy.Take(ctx, "mode-bits");

            if (inter) {
                InterpolateBlock(
                    references_[static_cast<std::size_t>(ref_index)].y,
                    x0, y0, mv, pred, ctx);
                if (mv.IsFullPel()) {
                    ph.mc_other.Take(ctx, "mc-fullpel");
                } else {
                    ph.subpel.Take(ctx, "mc-subpel");
                }
            } else {
                IntraPredict(recon.y, x0, y0, intra_mode, pred, ctx);
                ph.intra.Take(ctx, "intra");
            }

            mb_inter[mb_index] = inter;
            mb_mv[mb_index] = mv;
            mb_ref[mb_index] = ref_index;
            mb_mode[mb_index] = intra_mode;

            for (int by = 0; by < 2; ++by) {
                for (int bx = 0; bx < 2; ++bx) {
                    DecodeBlock(recon.y, pred, x0 + bx * 8, y0 + by * 8,
                                bx * 8, by * 8, qindex, reader, ctx, ph);
                }
            }
        }
    }

    // Chroma pass mirrors the encoder's ordering exactly.
    PredBlock cpred(8, 8);
    for (int plane_index = 0; plane_index < 2; ++plane_index) {
        Plane &rplane = plane_index == 0 ? recon.u : recon.v;
        for (int my = 0; my < mbs_y; ++my) {
            for (int mx = 0; mx < mbs_x; ++mx) {
                const std::size_t mb_index =
                    static_cast<std::size_t>(my) * mbs_x + mx;
                const int cx = mx * 8;
                const int cy = my * 8;
                if (mb_inter[mb_index]) {
                    const Frame &ref = references_[static_cast<
                        std::size_t>(mb_ref[mb_index])];
                    const Plane &rref =
                        plane_index == 0 ? ref.u : ref.v;
                    const MotionVector cmv{mb_mv[mb_index].row >> 1,
                                           mb_mv[mb_index].col >> 1};
                    InterpolateBlock(rref, cx, cy, cmv, cpred, ctx);
                    if (cmv.IsFullPel()) {
                        ph.mc_other.Take(ctx, "mc-chroma");
                    } else {
                        ph.subpel.Take(ctx, "mc-chroma-subpel");
                    }
                } else {
                    IntraPredict(rplane, cx, cy, mb_mode[mb_index],
                                 cpred, ctx);
                    ph.intra.Take(ctx, "intra-chroma");
                }
                DecodeBlock(rplane, cpred, cx, cy, 0, 0, qindex, reader,
                            ctx, ph);
            }
        }
    }

    DeblockPlane(recon.y, config_.deblock, ctx);
    DeblockPlane(recon.u, config_.deblock, ctx);
    DeblockPlane(recon.v, config_.deblock, ctx);
    ph.deblock.Take(ctx, "deblock");

    // Reconstructed frame write-back to the frame buffer.
    ctx.mem().Write(recon.y.SimAddr(0, 0), recon.y.size_bytes());
    ctx.mem().Write(recon.u.SimAddr(0, 0), recon.u.size_bytes());
    ctx.mem().Write(recon.v.SimAddr(0, 0), recon.v.size_bytes());
    ctx.ops().Store(recon.size_bytes() / 16);
    ph.other.Take(ctx, "framebuffer-out");

    Frame output = recon; // keep a copy to return
    references_.push_front(std::move(recon));
    while (references_.size() >
           static_cast<std::size_t>(config_.max_ref_frames)) {
        references_.pop_back();
    }
    return output;
}

} // namespace pim::video
