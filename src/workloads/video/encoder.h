/**
 * @file
 * The VP9-style software encoder (the paper's Section 7, Figure 14):
 * motion estimation over up to three reference frames, mode decision
 * against intra DC prediction, transform + quantization, entropy
 * coding, and the full reconstruction loop (inverse path + deblocking)
 * that produces the next reference frame.
 */

#ifndef PIM_VIDEO_ENCODER_H
#define PIM_VIDEO_ENCODER_H

#include <cstdint>
#include <deque>
#include <vector>

#include "core/execution_context.h"
#include "workloads/video/codec.h"
#include "workloads/video/frame.h"

namespace pim::video {

/** Per-frame encoder outputs. */
struct EncodeResult
{
    std::vector<std::uint8_t> bitstream;
    bool key_frame = false;
    int inter_macroblocks = 0;
    int intra_macroblocks = 0;
};

/** Streaming encoder; EncodeFrame consumes frames in display order. */
class Vp9Encoder
{
  public:
    /** Frame dimensions must be multiples of the 16-pixel macroblock. */
    Vp9Encoder(int width, int height, CodecConfig config = {});

    /**
     * Encode one frame.  The first frame (and any frame with
     * @p force_key) is a key frame.  All work streams through @p ctx;
     * if @p phases is non-null, per-function buckets are filled.
     */
    EncodeResult EncodeFrame(const Frame &src, core::ExecutionContext &ctx,
                             CodecPhases *phases = nullptr,
                             bool force_key = false);

    /** The reconstruction of the most recently encoded frame. */
    const Frame &last_reconstruction() const;

    const CodecConfig &config() const { return config_; }

  private:
    int width_;
    int height_;
    CodecConfig config_;
    std::deque<Frame> references_; // newest first, <= max_ref_frames
};

} // namespace pim::video

#endif // PIM_VIDEO_ENCODER_H
