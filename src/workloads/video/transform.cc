#include "workloads/video/transform.h"

#include <cmath>

#include "common/logging.h"

namespace pim::video {

namespace {

constexpr int kN = 8;

/** DCT-II basis matrix C[k][n], orthonormal scaling. */
const double *
DctBasis()
{
    static double basis[kN * kN];
    static bool initialized = false;
    if (!initialized) {
        const double pi = 3.14159265358979323846;
        for (int k = 0; k < kN; ++k) {
            const double scale =
                k == 0 ? std::sqrt(1.0 / kN) : std::sqrt(2.0 / kN);
            for (int n = 0; n < kN; ++n) {
                basis[k * kN + n] =
                    scale * std::cos(pi * (2 * n + 1) * k / (2.0 * kN));
            }
        }
        initialized = true;
    }
    return basis;
}

/**
 * Account the op mix of one separable 8x8 transform (both passes),
 * costed as a fast butterfly network (AAN-style: ~5 multiplies and
 * ~29 additions per 8-point line), the way production codecs run it —
 * not as dense matrix products.
 */
void
CountTransformOps(core::ExecutionContext &ctx, Bytes in_bytes,
                  Bytes out_bytes)
{
    auto &ops = ctx.ops();
    ops.VectorMul(2 * kN * 5);
    ops.VectorAlu(2 * kN * 29);
    ops.Load((in_bytes + 15) / 16);
    ops.Store((out_bytes + 15) / 16);
    ops.Branch(2 * kN);
}

} // namespace

int
QuantStep(int qindex)
{
    PIM_ASSERT(qindex >= 0 && qindex <= 255, "qindex %d", qindex);
    // Roughly exponential step growth, VP9-flavored: 4 at qindex 0,
    // ~1365 at 255.
    return 4 + qindex * qindex / 49;
}

void
ForwardDct8x8(const Block8x8<std::int16_t> &residual,
              Block8x8<std::int32_t> &coeffs,
              core::ExecutionContext &ctx)
{
    const double *c = DctBasis();
    double tmp[kN * kN];
    // Rows.
    for (int y = 0; y < kN; ++y) {
        for (int k = 0; k < kN; ++k) {
            double acc = 0.0;
            for (int n = 0; n < kN; ++n) {
                acc += c[k * kN + n] * residual[y * kN + n];
            }
            tmp[y * kN + k] = acc;
        }
    }
    // Columns.
    for (int x = 0; x < kN; ++x) {
        for (int k = 0; k < kN; ++k) {
            double acc = 0.0;
            for (int n = 0; n < kN; ++n) {
                acc += c[k * kN + n] * tmp[n * kN + x];
            }
            coeffs[k * kN + x] =
                static_cast<std::int32_t>(std::lround(acc));
        }
    }
    CountTransformOps(ctx, sizeof(residual), sizeof(coeffs));
}

void
InverseDct8x8(const Block8x8<std::int32_t> &coeffs,
              Block8x8<std::int16_t> &residual,
              core::ExecutionContext &ctx)
{
    const double *c = DctBasis();
    double tmp[kN * kN];
    // Columns (inverse).
    for (int x = 0; x < kN; ++x) {
        for (int n = 0; n < kN; ++n) {
            double acc = 0.0;
            for (int k = 0; k < kN; ++k) {
                acc += c[k * kN + n] * coeffs[k * kN + x];
            }
            tmp[n * kN + x] = acc;
        }
    }
    // Rows (inverse).
    for (int y = 0; y < kN; ++y) {
        for (int n = 0; n < kN; ++n) {
            double acc = 0.0;
            for (int k = 0; k < kN; ++k) {
                acc += c[k * kN + n] * tmp[y * kN + k];
            }
            const long v = std::lround(acc);
            residual[y * kN + n] = static_cast<std::int16_t>(
                v < -32768 ? -32768 : (v > 32767 ? 32767 : v));
        }
    }
    CountTransformOps(ctx, sizeof(coeffs), sizeof(residual));
}

int
QuantizeBlock(const Block8x8<std::int32_t> &coeffs, int qindex,
              Block8x8<std::int16_t> &levels,
              core::ExecutionContext &ctx)
{
    const int step = QuantStep(qindex);
    int nonzero = 0;
    for (int i = 0; i < 64; ++i) {
        const int q = coeffs[i] >= 0 ? (coeffs[i] + step / 2) / step
                                     : -((-coeffs[i] + step / 2) / step);
        levels[i] = static_cast<std::int16_t>(q);
        nonzero += q != 0 ? 1 : 0;
    }
    auto &ops = ctx.ops();
    ops.VectorMul(64);
    ops.VectorAlu(128);
    ops.Load(16);
    ops.Store(8);
    return nonzero;
}

void
DequantizeBlock(const Block8x8<std::int16_t> &levels, int qindex,
                Block8x8<std::int32_t> &coeffs,
                core::ExecutionContext &ctx)
{
    const int step = QuantStep(qindex);
    for (int i = 0; i < 64; ++i) {
        coeffs[i] = static_cast<std::int32_t>(levels[i]) * step;
    }
    auto &ops = ctx.ops();
    ops.VectorMul(64);
    ops.Load(8);
    ops.Store(16);
}

const std::array<std::uint8_t, 64> &
ZigZag8x8()
{
    static const std::array<std::uint8_t, 64> order = [] {
        std::array<std::uint8_t, 64> o{};
        int index = 0;
        for (int s = 0; s < 2 * kN - 1; ++s) {
            if (s % 2 == 0) {
                // Walk up-right.
                for (int y = std::min(s, kN - 1); y >= 0 && s - y < kN;
                     --y) {
                    o[static_cast<std::size_t>(index++)] =
                        static_cast<std::uint8_t>(y * kN + (s - y));
                }
            } else {
                for (int x = std::min(s, kN - 1); x >= 0 && s - x < kN;
                     --x) {
                    o[static_cast<std::size_t>(index++)] =
                        static_cast<std::uint8_t>((s - x) * kN + x);
                }
            }
        }
        return o;
    }();
    return order;
}

} // namespace pim::video
