/**
 * @file
 * Residual transform and coefficient quantization.
 *
 * The encoder transforms each 8x8 residual block to the frequency
 * domain (DCT), quantizes the coefficients, and entropy-codes them; the
 * decoder inverts the chain (inverse quantization + inverse transform,
 * the paper's Figure 9 blocks 5-6).
 *
 * Substitution note: we use an exact separable DCT-II in double
 * precision with deterministic rounding in place of VP9's fixed-point
 * butterfly network — encoder and decoder share the identical code, so
 * reconstruction remains bit-exact between them.
 */

#ifndef PIM_VIDEO_TRANSFORM_H
#define PIM_VIDEO_TRANSFORM_H

#include <array>
#include <cstdint>

#include "core/execution_context.h"

namespace pim::video {

/** One 8x8 block of residuals or coefficients. */
template <typename T>
using Block8x8 = std::array<T, 64>;

/** Quantization step derived from a VP9-style qindex (0..255). */
int QuantStep(int qindex);

/** Forward 8x8 DCT of a residual block; instrumented. */
void ForwardDct8x8(const Block8x8<std::int16_t> &residual,
                   Block8x8<std::int32_t> &coeffs,
                   core::ExecutionContext &ctx);

/** Inverse 8x8 DCT back to residuals; instrumented. */
void InverseDct8x8(const Block8x8<std::int32_t> &coeffs,
                   Block8x8<std::int16_t> &residual,
                   core::ExecutionContext &ctx);

/**
 * Quantize coefficients with a flat step; returns the count of nonzero
 * quantized levels (0 means the block is skippable).
 */
int QuantizeBlock(const Block8x8<std::int32_t> &coeffs, int qindex,
                  Block8x8<std::int16_t> &levels,
                  core::ExecutionContext &ctx);

/** Inverse quantization (levels -> reconstructed coefficients). */
void DequantizeBlock(const Block8x8<std::int16_t> &levels, int qindex,
                     Block8x8<std::int32_t> &coeffs,
                     core::ExecutionContext &ctx);

/** Zig-zag scan order for 8x8 blocks (row, col) -> scan position. */
const std::array<std::uint8_t, 64> &ZigZag8x8();

} // namespace pim::video

#endif // PIM_VIDEO_TRANSFORM_H
