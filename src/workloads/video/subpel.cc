#include "workloads/video/subpel.h"

#include <algorithm>

#include "common/logging.h"

namespace pim::video {

namespace {

/** Arithmetic-shift floor division by 8 (valid for negative MVs). */
int
FullPel(int v)
{
    return v >> 3;
}

/** 1/16-pel phase of a 1/8-pel vector component. */
int
Phase(int v)
{
    return (v & 7) << 1;
}

} // namespace

void
InterpolateBlock(const Plane &ref, int x0, int y0, const MotionVector &mv,
                 PredBlock &out, core::ExecutionContext &ctx)
{
    PIM_ASSERT(out.w > 0 && out.h > 0, "empty prediction block");

    auto &mem = ctx.mem();
    auto &ops = ctx.ops();

    const int bx = x0 + FullPel(mv.col);
    const int by = y0 + FullPel(mv.row);
    const int xphase = Phase(mv.col);
    const int yphase = Phase(mv.row);

    if (xphase == 0 && yphase == 0) {
        // Full-pel: a straight (clamped) block copy.
        for (int y = 0; y < out.h; ++y) {
            for (int x = 0; x < out.w; ++x) {
                out.At(x, y) = ref.AtClamped(bx + x, by + y);
            }
            const int cy = std::clamp(by + y, 0, ref.h() - 1);
            const int cx = std::clamp(bx, 0, ref.w() - 1);
            mem.Read(ref.SimAddr(cx, cy), static_cast<Bytes>(out.w));
            ops.Load((out.w + 15) / 16);
            ops.Store((out.w + 15) / 16);
            ops.Alu(2);
            ops.Branch(1);
        }
        return;
    }

    // Two-pass separable filtering over a (w+7) x (h+7) window.
    const FilterKernel &xkernel = EightTapKernel(xphase);
    const FilterKernel &ykernel = EightTapKernel(yphase);

    const int pad = kFilterTaps - 1; // 7
    const int tmp_h = out.h + pad;
    std::vector<std::int32_t> tmp(
        static_cast<std::size_t>(out.w) * tmp_h);

    // Horizontal pass: reads the full reference window.
    std::uint8_t row_buf[kFilterTaps];
    for (int ty = 0; ty < tmp_h; ++ty) {
        const int sy = by + ty - 3; // taps cover rows -3..+4
        for (int tx = 0; tx < out.w; ++tx) {
            for (int t = 0; t < kFilterTaps; ++t) {
                row_buf[t] = ref.AtClamped(bx + tx + t - 3, sy);
            }
            tmp[static_cast<std::size_t>(ty) * out.w + tx] =
                ApplyKernelRaw(row_buf, xkernel);
        }
        // Window-row read: out.w + 7 reference bytes.
        const int cy = std::clamp(sy, 0, ref.h() - 1);
        const int cx = std::clamp(bx - 3, 0, ref.w() - 1);
        mem.Read(ref.SimAddr(cx, cy),
                 static_cast<Bytes>(out.w + pad));
        ops.Load((out.w + pad + 15) / 16);
        // Per output sample: 8 fused MACs, SIMD-friendly.
        ops.VectorMul(static_cast<std::uint64_t>(out.w) * kFilterTaps);
        ops.Branch(1);
    }

    // Vertical pass over the intermediate buffer (cache-resident).
    std::int32_t col_buf[kFilterTaps];
    for (int y = 0; y < out.h; ++y) {
        for (int x = 0; x < out.w; ++x) {
            for (int t = 0; t < kFilterTaps; ++t) {
                col_buf[t] =
                    tmp[static_cast<std::size_t>(y + t) * out.w + x];
            }
            out.At(x, y) = ApplyKernelI32(col_buf, ykernel);
        }
        ops.VectorMul(static_cast<std::uint64_t>(out.w) * kFilterTaps);
        ops.Store((out.w + 15) / 16);
        ops.Branch(1);
    }
}

} // namespace pim::video
