#include "workloads/video/hw_model.h"

#include "common/logging.h"

namespace pim::video {

namespace {

// --- Traffic rates, bytes per luma pixel, per resolution class.
//
// Calibrated against the paper's Figures 12 and 16 (see EXPERIMENTS.md):
// HD streams carry more per-pixel overhead than 4K because prediction
// block sizes and bitstream framing do not shrink with the frame.

struct DecoderRates
{
    double reference = 0;
    double decoder_data = 0;
    double metadata = 0;
    double deblock = 0;
    double recon = 0;
};

DecoderRates
DecoderRatesFor(HwResolution res)
{
    if (res == HwResolution::k4k) {
        return {3.02, 0.50, 0.22, 0.20, 1.12};
    }
    return {7.38, 0.70, 0.25, 0.32, 1.12};
}

struct EncoderRates
{
    double reference = 0;
    double current = 0;
    double recon = 0;
    double deblock = 0;
    double bitstream = 0;
    double other = 0;
};

EncoderRates
EncoderRatesFor(HwResolution res)
{
    if (res == HwResolution::k4k) {
        return {6.90, 1.60, 1.40, 0.60, 0.45, 0.50};
    }
    return {17.6, 3.90, 3.40, 1.00, 0.50, 0.70};
}

/// Lossless reference-frame compression factors (paper: ~40% reduction
/// for the decoder's reference stream, 59.7% for the encoder's).
constexpr double kDecoderRefCompression = 0.585;
constexpr double kEncoderRefCompression = 0.403;
/// Compression side-information stream, bytes per pixel.
constexpr double kCompressionInfoRate = 0.35;

// --- Energy rates.
constexpr double kOffchipPjPerByte = 160.0; ///< DRAM+PHY+controller path.
constexpr double kOffchipDramShare = 0.50;
constexpr double kOffchipInterconnectShare = 0.375;
constexpr double kOffchipMemctrlShare = 0.125;

/// In-stack path for PIM logic: vault-local access, TSV hop only.
constexpr double kInternalPjPerByte = 16.0;

/// Computation energy, pJ per luma pixel (includes SRAM buffering).
constexpr double kDecoderComputePjPerPx = 360.0;
constexpr double kEncoderComputePjPerPx = 1700.0;

/// Fraction of codec computation residing in the offloaded units
/// (MC + deblock for the decoder; ME + MC + deblock for the encoder).
constexpr double kDecoderOffloadComputeShare = 0.60;
constexpr double kEncoderOffloadComputeShare = 0.70;

/// Offloaded-unit computation on PIM logic, pJ per pixel: a PIM core is
/// roughly an order of magnitude less efficient than the VP9 RTL; a PIM
/// accelerator embeds the same RTL blocks in the logic layer.
constexpr double kDecoderPimCorePjPerPx = 1250.0;
constexpr double kEncoderPimCorePjPerPx = 4200.0;

/// A PIM accelerator embeds the offloaded RTL blocks next to the data,
/// shedding the large on-SoC SRAM reference buffers (875 kB in the
/// decoder) and their datapaths; the remaining logic runs at a fraction
/// of the on-SoC units' energy.
constexpr double kPimAccelComputeFactor = 0.25;

double
MegaBytes(double bytes_per_px, double pixels)
{
    return bytes_per_px * pixels / 1.0e6;
}

} // namespace

int
HwWidth(HwResolution res)
{
    return res == HwResolution::k4k ? 3840 : 1280;
}

int
HwHeight(HwResolution res)
{
    return res == HwResolution::k4k ? 2160 : 720;
}

double
HwPixels(HwResolution res)
{
    return static_cast<double>(HwWidth(res)) * HwHeight(res);
}

HwTrafficBreakdown
HwDecoderTraffic(HwResolution res, bool frame_compression)
{
    const DecoderRates r = DecoderRatesFor(res);
    const double px = HwPixels(res);

    HwTrafficBreakdown t;
    const double ref_factor =
        frame_compression ? kDecoderRefCompression : 1.0;
    t.reference_frame = MegaBytes(r.reference * ref_factor, px);
    t.decoder_data = MegaBytes(r.decoder_data, px);
    t.recon_metadata = MegaBytes(r.metadata, px);
    t.deblocking = MegaBytes(r.deblock, px);
    t.reconstructed_frame =
        MegaBytes(r.recon * (frame_compression ? kDecoderRefCompression
                                               : 1.0),
                  px);
    t.compression_info =
        frame_compression ? MegaBytes(kCompressionInfoRate, px) : 0.0;
    return t;
}

HwTrafficBreakdown
HwEncoderTraffic(HwResolution res, bool frame_compression)
{
    const EncoderRates r = EncoderRatesFor(res);
    const double px = HwPixels(res);

    HwTrafficBreakdown t;
    const double ref_factor =
        frame_compression ? kEncoderRefCompression : 1.0;
    t.reference_frame = MegaBytes(r.reference * ref_factor, px);
    // The raw camera frame cannot be compressed; its share grows when
    // everything else shrinks (Section 7.3.1).
    t.current_frame = MegaBytes(r.current, px);
    t.reconstructed_frame =
        MegaBytes(r.recon * (frame_compression ? kEncoderRefCompression
                                               : 1.0),
                  px);
    t.deblocking = MegaBytes(r.deblock, px);
    t.encoded_bitstream = MegaBytes(r.bitstream, px);
    t.other = MegaBytes(r.other, px);
    t.compression_info =
        frame_compression ? MegaBytes(kCompressionInfoRate, px) : 0.0;
    return t;
}

namespace {

/** Price a configuration given its stream split and compute terms. */
HwEnergyBreakdown
PriceConfiguration(double offchip_mb, double internal_mb,
                   double compute_pj)
{
    HwEnergyBreakdown e;
    const double offchip_pj = offchip_mb * 1.0e6 * kOffchipPjPerByte;
    e.dram_mj = offchip_pj * kOffchipDramShare * 1.0e-9;
    e.interconnect_mj =
        offchip_pj * kOffchipInterconnectShare * 1.0e-9;
    e.memctrl_mj = offchip_pj * kOffchipMemctrlShare * 1.0e-9;

    // Internal (in-stack) movement: charged to DRAM + memctrl.
    const double internal_pj = internal_mb * 1.0e6 * kInternalPjPerByte;
    e.dram_mj += internal_pj * 0.75 * 1.0e-9;
    e.memctrl_mj += internal_pj * 0.25 * 1.0e-9;

    e.computation_mj = compute_pj * 1.0e-9;
    return e;
}

} // namespace

HwEnergyBreakdown
HwDecoderEnergy(HwResolution res, bool frame_compression, HwPimMode pim)
{
    const HwTrafficBreakdown t = HwDecoderTraffic(res, frame_compression);
    const double px = HwPixels(res);
    const double base_compute = kDecoderComputePjPerPx * px;

    if (pim == HwPimMode::kNone) {
        return PriceConfiguration(t.Total(), 0.0, base_compute);
    }

    // With in-memory MC + deblock (Figure 13), the reference frame,
    // deblocking, and reconstructed-frame streams never cross the
    // off-chip channel; the bitstream/MV/metadata streams still do.
    const double internal_mb =
        t.reference_frame + t.deblocking + t.reconstructed_frame +
        t.compression_info;
    const double offchip_mb = t.decoder_data + t.recon_metadata;

    const double host_compute =
        base_compute * (1.0 - kDecoderOffloadComputeShare);
    const double offload_compute =
        pim == HwPimMode::kPimCore
            ? kDecoderPimCorePjPerPx * px
            : base_compute * kDecoderOffloadComputeShare *
                  kPimAccelComputeFactor;

    return PriceConfiguration(offchip_mb, internal_mb,
                              host_compute + offload_compute);
}

HwEnergyBreakdown
HwEncoderEnergy(HwResolution res, bool frame_compression, HwPimMode pim)
{
    const HwTrafficBreakdown t = HwEncoderTraffic(res, frame_compression);
    const double px = HwPixels(res);
    const double base_compute = kEncoderComputePjPerPx * px;

    if (pim == HwPimMode::kNone) {
        return PriceConfiguration(t.Total(), 0.0, base_compute);
    }

    // With in-memory ME + MC + deblock (Figure 17), reference frames,
    // deblocking, and reconstruction stay in memory; the camera frame
    // must still be written once and read by the in-memory ME, and the
    // bitstream crosses back.
    const double internal_mb =
        t.reference_frame + t.deblocking + t.reconstructed_frame +
        t.compression_info + t.current_frame * 0.5;
    const double offchip_mb = t.current_frame * 0.5 +
                              t.encoded_bitstream + t.other;

    const double host_compute =
        base_compute * (1.0 - kEncoderOffloadComputeShare);
    const double offload_compute =
        pim == HwPimMode::kPimCore
            ? kEncoderPimCorePjPerPx * px
            : base_compute * kEncoderOffloadComputeShare *
                  kPimAccelComputeFactor;

    return PriceConfiguration(offchip_mb, internal_mb,
                              host_compute + offload_compute);
}

} // namespace pim::video
