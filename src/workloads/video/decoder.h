/**
 * @file
 * The VP9-style software decoder (the paper's Section 6, Figure 9):
 * entropy decoding, motion compensation with sub-pixel interpolation,
 * inverse quantization + inverse transform, reconstruction, and the
 * deblocking loop filter.
 *
 * Decoding the bitstream produced by Vp9Encoder reproduces the
 * encoder's reconstruction bit-exactly (shared arithmetic).
 */

#ifndef PIM_VIDEO_DECODER_H
#define PIM_VIDEO_DECODER_H

#include <cstdint>
#include <deque>
#include <vector>

#include "core/execution_context.h"
#include "workloads/video/codec.h"
#include "workloads/video/frame.h"

namespace pim::video {

/** Streaming decoder; frames must arrive in coded order. */
class Vp9Decoder
{
  public:
    explicit Vp9Decoder(CodecConfig config = {});

    /**
     * Decode one frame from @p bitstream.  All work streams through
     * @p ctx; per-function buckets are filled if @p phases is non-null.
     */
    Frame DecodeFrame(const std::vector<std::uint8_t> &bitstream,
                      core::ExecutionContext &ctx,
                      CodecPhases *phases = nullptr);

  private:
    CodecConfig config_;
    std::deque<Frame> references_; // newest first
};

} // namespace pim::video

#endif // PIM_VIDEO_DECODER_H
