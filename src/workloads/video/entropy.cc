#include "workloads/video/entropy.h"

#include "common/logging.h"

namespace pim::video {

void
BitWriter::PutBit(int bit)
{
    current_ = static_cast<std::uint8_t>((current_ << 1) | (bit & 1));
    if (++nbits_ == 8) {
        bytes_.push_back(current_);
        current_ = 0;
        nbits_ = 0;
    }
}

void
BitWriter::PutBits(std::uint32_t value, int count)
{
    PIM_ASSERT(count >= 0 && count <= 32, "bad bit count %d", count);
    for (int i = count - 1; i >= 0; --i) {
        PutBit(static_cast<int>((value >> i) & 1));
    }
}

void
BitWriter::PutUe(std::uint32_t value)
{
    // Exp-Golomb: (value+1) has n+1 significant bits; emit n zeros then
    // the value+1 bits.
    const std::uint64_t v = static_cast<std::uint64_t>(value) + 1;
    int bits = 0;
    while ((v >> bits) != 0) {
        ++bits;
    }
    for (int i = 0; i < bits - 1; ++i) {
        PutBit(0);
    }
    for (int i = bits - 1; i >= 0; --i) {
        PutBit(static_cast<int>((v >> i) & 1));
    }
}

void
BitWriter::PutSe(std::int32_t value)
{
    // Zigzag: 0 -> 0, 1 -> 1, -1 -> 2, 2 -> 3, -2 -> 4 ...
    const std::uint32_t mapped =
        value > 0 ? static_cast<std::uint32_t>(value) * 2 - 1
                  : static_cast<std::uint32_t>(-value) * 2;
    PutUe(mapped);
}

std::vector<std::uint8_t>
BitWriter::Finish()
{
    while (nbits_ != 0) {
        PutBit(0);
    }
    return std::move(bytes_);
}

int
BitReader::GetBit()
{
    PIM_ASSERT(byte_pos_ < size_, "bitstream overrun");
    const int bit = (data_[byte_pos_] >> (7 - bit_pos_)) & 1;
    if (++bit_pos_ == 8) {
        bit_pos_ = 0;
        ++byte_pos_;
    }
    return bit;
}

std::uint32_t
BitReader::GetBits(int count)
{
    PIM_ASSERT(count >= 0 && count <= 32, "bad bit count %d", count);
    std::uint32_t v = 0;
    for (int i = 0; i < count; ++i) {
        v = (v << 1) | static_cast<std::uint32_t>(GetBit());
    }
    return v;
}

std::uint32_t
BitReader::GetUe()
{
    int zeros = 0;
    while (GetBit() == 0) {
        ++zeros;
        PIM_ASSERT(zeros < 64, "malformed exp-Golomb code");
    }
    std::uint64_t v = 1;
    for (int i = 0; i < zeros; ++i) {
        v = (v << 1) | static_cast<std::uint64_t>(GetBit());
    }
    return static_cast<std::uint32_t>(v - 1);
}

std::int32_t
BitReader::GetSe()
{
    const std::uint32_t mapped = GetUe();
    if (mapped == 0) {
        return 0;
    }
    if (mapped & 1) {
        return static_cast<std::int32_t>((mapped + 1) / 2);
    }
    return -static_cast<std::int32_t>(mapped / 2);
}

void
EncodeCoefficients(const Block8x8<std::int16_t> &levels, BitWriter &writer,
                   core::ExecutionContext &ctx)
{
    const auto &scan = ZigZag8x8();
    auto &ops = ctx.ops();

    // Find the last nonzero scan position.
    int last = -1;
    for (int i = 0; i < 64; ++i) {
        if (levels[scan[static_cast<std::size_t>(i)]] != 0) {
            last = i;
        }
    }
    ops.Load(16);
    ops.Alu(64);
    ops.Branch(8);

    // Number of coded (run, level) pairs, then the pairs.
    int coded = 0;
    for (int i = 0; i <= last; ++i) {
        coded += levels[scan[static_cast<std::size_t>(i)]] != 0 ? 1 : 0;
    }
    writer.PutUe(static_cast<std::uint32_t>(coded));

    int run = 0;
    for (int i = 0; i <= last; ++i) {
        const std::int16_t level =
            levels[scan[static_cast<std::size_t>(i)]];
        if (level == 0) {
            ++run;
            continue;
        }
        writer.PutUe(static_cast<std::uint32_t>(run));
        writer.PutSe(level);
        run = 0;
        ops.Alu(8);
        ops.Branch(2);
    }
    // The bitstream buffer itself is small and cache-resident; the
    // frame-level codec accounts its memory traffic once per frame.
    ops.Store(1);
}

void
DecodeCoefficients(BitReader &reader, Block8x8<std::int16_t> &levels,
                   core::ExecutionContext &ctx)
{
    const auto &scan = ZigZag8x8();
    auto &ops = ctx.ops();

    levels.fill(0);
    const std::uint32_t coded = reader.GetUe();
    PIM_ASSERT(coded <= 64, "malformed coefficient block (%u)", coded);

    int pos = 0;
    for (std::uint32_t i = 0; i < coded; ++i) {
        const std::uint32_t run = reader.GetUe();
        const std::int32_t level = reader.GetSe();
        pos += static_cast<int>(run);
        PIM_ASSERT(pos < 64, "coefficient scan overrun");
        levels[scan[static_cast<std::size_t>(pos)]] =
            static_cast<std::int16_t>(level);
        ++pos;
        ops.Alu(10);
        ops.Branch(3);
        ops.Load(1);
    }
    ops.Store(16);
}

} // namespace pim::video
