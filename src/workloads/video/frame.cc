#include "workloads/video/frame.h"

#include <cmath>
#include <cstdlib>

namespace pim::video {

double
MeanAbsDiff(const Plane &a, const Plane &b)
{
    PIM_ASSERT(a.w() == b.w() && a.h() == b.h(), "plane shape mismatch");
    double sum = 0.0;
    for (int y = 0; y < a.h(); ++y) {
        for (int x = 0; x < a.w(); ++x) {
            sum += std::abs(static_cast<int>(a.At(x, y)) -
                            static_cast<int>(b.At(x, y)));
        }
    }
    return sum / (static_cast<double>(a.w()) * a.h());
}

double
Psnr(const Plane &a, const Plane &b)
{
    PIM_ASSERT(a.w() == b.w() && a.h() == b.h(), "plane shape mismatch");
    double sse = 0.0;
    for (int y = 0; y < a.h(); ++y) {
        for (int x = 0; x < a.w(); ++x) {
            const double d = static_cast<double>(a.At(x, y)) -
                             static_cast<double>(b.At(x, y));
            sse += d * d;
        }
    }
    if (sse == 0.0) {
        return 99.0;
    }
    const double mse = sse / (static_cast<double>(a.w()) * a.h());
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

} // namespace pim::video
