#include "workloads/video/encoder.h"

#include <algorithm>

#include "common/logging.h"
#include "workloads/video/entropy.h"
#include "workloads/video/mc.h"
#include "workloads/video/subpel.h"
#include "workloads/video/transform.h"

namespace pim::video {

namespace {

/** Encode one 8x8 block: residual -> DCT -> quant -> entropy -> recon. */
void
CodeBlock(const Plane &src, Plane &recon, const PredBlock &pred, int px,
          int py, int ox, int oy, int qindex, BitWriter &writer,
          core::ExecutionContext &ctx, CodecPhases &phases)
{
    Block8x8<std::int16_t> residual;
    Block8x8<std::int32_t> coeffs;
    Block8x8<std::int16_t> levels;
    Block8x8<std::int32_t> dequant;
    Block8x8<std::int16_t> recon_res;

    ComputeResidual8x8(src, pred, px, py, ox, oy, residual, ctx);
    phases.mc_other.Take(ctx, "residual");

    ForwardDct8x8(residual, coeffs, ctx);
    phases.transform.Take(ctx, "fdct");

    const int nonzero = QuantizeBlock(coeffs, qindex, levels, ctx);
    phases.quant.Take(ctx, "quant");

    EncodeCoefficients(levels, writer, ctx);
    phases.entropy.Take(ctx, "entropy");

    // Reconstruction loop: identical arithmetic to the decoder,
    // including the zero-block fast path.
    if (nonzero == 0) {
        recon_res.fill(0);
    } else {
        DequantizeBlock(levels, qindex, dequant, ctx);
        phases.quant.Take(ctx, "dequant");
        InverseDct8x8(dequant, recon_res, ctx);
        phases.transform.Take(ctx, "idct");
    }
    ReconstructBlock8x8(recon, pred, px, py, ox, oy, recon_res, ctx);
    phases.mc_other.Take(ctx, "recon");
}

} // namespace

Vp9Encoder::Vp9Encoder(int width, int height, CodecConfig config)
    : width_(width), height_(height), config_(std::move(config))
{
    PIM_ASSERT(width % kMacroblockSize == 0 &&
                   height % kMacroblockSize == 0,
               "frame %dx%d not macroblock-aligned", width, height);
    PIM_ASSERT(config_.qindex >= 0 && config_.qindex <= 255,
               "qindex out of range");
}

const Frame &
Vp9Encoder::last_reconstruction() const
{
    PIM_ASSERT(!references_.empty(), "no frame encoded yet");
    return references_.front();
}

EncodeResult
Vp9Encoder::EncodeFrame(const Frame &src, core::ExecutionContext &ctx,
                        CodecPhases *phases, bool force_key)
{
    PIM_ASSERT(src.width == width_ && src.height == height_,
               "frame size mismatch");
    CodecPhases local_phases;
    CodecPhases &ph = phases != nullptr ? *phases : local_phases;
    ctx.Reset(/*drain_caches=*/false); // drop any stale measurement

    const bool key = force_key || references_.empty();
    EncodeResult result;
    result.key_frame = key;

    BitWriter writer;
    writer.PutUe(static_cast<std::uint32_t>(width_));
    writer.PutUe(static_cast<std::uint32_t>(height_));
    writer.PutBits(key ? 1 : 0, 1);
    writer.PutBits(static_cast<std::uint32_t>(config_.qindex), 8);
    ph.other.Take(ctx, "header");

    Frame recon(width_, height_);

    // Gather luma reference planes, newest first.
    std::vector<const Plane *> luma_refs;
    for (const Frame &ref : references_) {
        luma_refs.push_back(&ref.y);
    }

    const int mbs_x = width_ / kMacroblockSize;
    const int mbs_y = height_ / kMacroblockSize;

    // Per-macroblock decisions, reused by the chroma pass.
    std::vector<bool> mb_inter(static_cast<std::size_t>(mbs_x) * mbs_y,
                               false);
    std::vector<MotionVector> mb_mv(static_cast<std::size_t>(mbs_x) *
                                    mbs_y);
    std::vector<int> mb_ref(static_cast<std::size_t>(mbs_x) * mbs_y, 0);
    std::vector<IntraMode> mb_mode(static_cast<std::size_t>(mbs_x) *
                                       mbs_y,
                                   IntraMode::kDc);

    PredBlock pred(kMacroblockSize, kMacroblockSize);

    for (int my = 0; my < mbs_y; ++my) {
        for (int mx = 0; mx < mbs_x; ++mx) {
            const int x0 = mx * kMacroblockSize;
            const int y0 = my * kMacroblockSize;
            const std::size_t mb_index =
                static_cast<std::size_t>(my) * mbs_x + mx;

            bool inter = false;
            MotionResult motion;

            if (!key) {
                motion = DiamondSearch(src.y, luma_refs, x0, y0,
                                       config_.search, ctx);
                ph.me.Take(ctx, "diamond-search");
                if (config_.subpel_refine) {
                    motion = RefineSubpel(
                        src.y,
                        *luma_refs[static_cast<std::size_t>(
                            motion.ref_index)],
                        x0, y0, motion, kMacroblockSize, ctx);
                    ph.me.Take(ctx, "subpel-refine");
                }
            }

            // Intra candidate: best of DC / horizontal / vertical.
            std::uint32_t intra_sad = 0;
            const IntraMode intra_mode = ChooseIntraMode(
                src.y, recon.y, x0, y0, kMacroblockSize,
                kMacroblockSize, ctx, &intra_sad);
            ph.intra.Take(ctx, "intra-mode-decision");

            // Mode decision: prefer inter with a small fixed bias for
            // the motion-vector signaling cost.
            if (!key && motion.sad + 64 < intra_sad) {
                inter = true;
            }
            ph.other.Take(ctx, "mode-decision");

            // Signal the mode.
            if (!key) {
                writer.PutBits(inter ? 1 : 0, 1);
                if (inter) {
                    writer.PutUe(static_cast<std::uint32_t>(
                        motion.ref_index));
                    writer.PutSe(motion.mv.row);
                    writer.PutSe(motion.mv.col);
                }
            }
            if (!inter) {
                writer.PutBits(static_cast<std::uint32_t>(intra_mode),
                               2);
            }
            ph.entropy.Take(ctx, "mode-bits");

            // Build the luma predictor.
            if (inter) {
                InterpolateBlock(
                    *luma_refs[static_cast<std::size_t>(motion.ref_index)],
                    x0, y0, motion.mv, pred, ctx);
                if (motion.mv.IsFullPel()) {
                    ph.mc_other.Take(ctx, "mc-fullpel");
                } else {
                    ph.subpel.Take(ctx, "mc-subpel");
                }
            } else {
                IntraPredict(recon.y, x0, y0, intra_mode, pred, ctx);
                ph.intra.Take(ctx, "intra-fill");
            }

            mb_inter[mb_index] = inter;
            mb_mv[mb_index] = motion.mv;
            mb_ref[mb_index] = motion.ref_index;
            mb_mode[mb_index] = intra_mode;
            result.inter_macroblocks += inter ? 1 : 0;
            result.intra_macroblocks += inter ? 0 : 1;

            // Code the four 8x8 luma blocks.
            for (int by = 0; by < 2; ++by) {
                for (int bx = 0; bx < 2; ++bx) {
                    CodeBlock(src.y, recon.y, pred, x0 + bx * 8,
                              y0 + by * 8, bx * 8, by * 8,
                              config_.qindex, writer, ctx, ph);
                }
            }
        }
    }

    // Chroma pass: one 8x8 block per plane per macroblock, reusing the
    // luma mode decisions with halved motion vectors.
    PredBlock cpred(8, 8);
    for (int plane_index = 0; plane_index < 2; ++plane_index) {
        const Plane &splane = plane_index == 0 ? src.u : src.v;
        Plane &rplane = plane_index == 0 ? recon.u : recon.v;
        for (int my = 0; my < mbs_y; ++my) {
            for (int mx = 0; mx < mbs_x; ++mx) {
                const std::size_t mb_index =
                    static_cast<std::size_t>(my) * mbs_x + mx;
                const int cx = mx * 8;
                const int cy = my * 8;
                if (mb_inter[mb_index]) {
                    const Frame &ref = references_[static_cast<
                        std::size_t>(mb_ref[mb_index])];
                    const Plane &rref =
                        plane_index == 0 ? ref.u : ref.v;
                    const MotionVector cmv{mb_mv[mb_index].row >> 1,
                                           mb_mv[mb_index].col >> 1};
                    InterpolateBlock(rref, cx, cy, cmv, cpred, ctx);
                    if (cmv.IsFullPel()) {
                        ph.mc_other.Take(ctx, "mc-chroma");
                    } else {
                        ph.subpel.Take(ctx, "mc-chroma-subpel");
                    }
                } else {
                    IntraPredict(rplane, cx, cy, mb_mode[mb_index],
                                 cpred, ctx);
                    ph.intra.Take(ctx, "intra-chroma");
                }
                CodeBlock(splane, rplane, cpred, cx, cy, 0, 0,
                          config_.qindex, writer, ctx, ph);
            }
        }
    }

    // Loop filter the reconstruction (it becomes a reference frame).
    DeblockPlane(recon.y, config_.deblock, ctx);
    DeblockPlane(recon.u, config_.deblock, ctx);
    DeblockPlane(recon.v, config_.deblock, ctx);
    ph.deblock.Take(ctx, "deblock");

    result.bitstream = writer.Finish();

    // Frame-level bitstream write-out traffic (dedicated region).
    static thread_local pim::SimBuffer<std::uint8_t> bitstream_region(
        1u << 20);
    ctx.mem().Write(bitstream_region.SimAddr(0),
                    std::min<Bytes>(result.bitstream.size(),
                                    bitstream_region.size()));
    ctx.ops().Store(result.bitstream.size() / 16 + 1);
    ph.other.Take(ctx, "bitstream-out");

    references_.push_front(std::move(recon));
    while (references_.size() >
           static_cast<std::size_t>(config_.max_ref_frames)) {
        references_.pop_back();
    }
    return result;
}

} // namespace pim::video
