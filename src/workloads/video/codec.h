/**
 * @file
 * Shared types for the VP9-style software encoder/decoder pair:
 * configuration, the per-function phase buckets used by the paper's
 * Figures 10/11/15, and the bitstream framing constants.
 *
 * Bitstream layout (all exp-Golomb / fixed-width bits, MSB first):
 *
 *   frame:  width ue | height ue | key flag (1 bit) | qindex (8 bits)
 *   per 16x16 macroblock, raster order:
 *     inter flag (1 bit, 0 on key frames, no bit emitted there)
 *     if inter: ref_index ue | mv.row se | mv.col se   (1/8-pel)
 *     if intra: intra mode (2 bits: DC / horizontal / vertical)
 *     4 luma 8x8 coefficient blocks | 1 U block | 1 V block
 *
 * Both sides reconstruct with identical arithmetic, so the decoder's
 * output is bit-exact with the encoder's reconstruction (tested).
 */

#ifndef PIM_VIDEO_CODEC_H
#define PIM_VIDEO_CODEC_H

#include <cstdint>

#include "core/phase.h"
#include "workloads/video/deblock.h"
#include "workloads/video/motion.h"

namespace pim::video {

/** Encoder/decoder configuration. */
struct CodecConfig
{
    int qindex = 60;       ///< Quantizer index (0..255).
    int max_ref_frames = 3; ///< VP9 searches up to 3 references.
    MotionSearchParams search;
    DeblockParams deblock;
    bool subpel_refine = true; ///< Refine MVs to 1/8-pel.
};

/**
 * Per-function measurement buckets matching the paper's breakdowns.
 * Decoder figures use: subpel, mc_other, deblock, entropy, transform,
 * other.  Encoder figures add: me, intra, quant.
 */
struct CodecPhases
{
    core::PhaseTotals entropy;   ///< Entropy encode/decode.
    core::PhaseTotals subpel;    ///< MC: sub-pixel interpolation.
    core::PhaseTotals mc_other;  ///< MC: full-pel copy + residual add.
    core::PhaseTotals transform; ///< DCT / inverse DCT.
    core::PhaseTotals quant;     ///< Quantization / dequantization.
    core::PhaseTotals deblock;   ///< Loop filter.
    core::PhaseTotals me;        ///< Motion estimation (encoder).
    core::PhaseTotals intra;     ///< Intra prediction.
    core::PhaseTotals other;     ///< Headers, bookkeeping, frame I/O.

    core::PhaseTotals
    Total() const
    {
        core::PhaseTotals t;
        t += entropy;
        t += subpel;
        t += mc_other;
        t += transform;
        t += quant;
        t += deblock;
        t += me;
        t += intra;
        t += other;
        return t;
    }
};

} // namespace pim::video

#endif // PIM_VIDEO_CODEC_H
