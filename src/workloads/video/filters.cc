#include "workloads/video/filters.h"

#include <algorithm>

#include "common/logging.h"

namespace pim::video {

namespace {

/** libvpx sub_pel_filters_8 ("regular" EIGHTTAP), 16 x 8 taps. */
constexpr FilterKernel kEightTap[kSubpelPhases] = {
    {0, 0, 0, 128, 0, 0, 0, 0},
    {0, 1, -5, 126, 8, -3, 1, 0},
    {-1, 3, -10, 122, 18, -6, 2, 0},
    {-1, 4, -13, 118, 27, -9, 3, -1},
    {-1, 4, -16, 112, 37, -11, 4, -1},
    {-1, 5, -18, 105, 48, -14, 4, -1},
    {-1, 5, -19, 97, 58, -16, 5, -1},
    {-1, 6, -19, 88, 68, -18, 5, -1},
    {-1, 6, -19, 78, 78, -19, 6, -1},
    {-1, 5, -18, 68, 88, -19, 6, -1},
    {-1, 5, -16, 58, 97, -19, 5, -1},
    {-1, 4, -14, 48, 105, -18, 5, -1},
    {-1, 4, -11, 37, 112, -16, 4, -1},
    {-1, 3, -9, 27, 118, -13, 4, -1},
    {0, 2, -6, 18, 122, -10, 3, -1},
    {0, 1, -3, 8, 126, -5, 1, 0},
};

/** Bilinear kernels at the same 16 phases. */
constexpr FilterKernel kBilinear[kSubpelPhases] = {
    {0, 0, 0, 128, 0, 0, 0, 0},   {0, 0, 0, 120, 8, 0, 0, 0},
    {0, 0, 0, 112, 16, 0, 0, 0},  {0, 0, 0, 104, 24, 0, 0, 0},
    {0, 0, 0, 96, 32, 0, 0, 0},   {0, 0, 0, 88, 40, 0, 0, 0},
    {0, 0, 0, 80, 48, 0, 0, 0},   {0, 0, 0, 72, 56, 0, 0, 0},
    {0, 0, 0, 64, 64, 0, 0, 0},   {0, 0, 0, 56, 72, 0, 0, 0},
    {0, 0, 0, 48, 80, 0, 0, 0},   {0, 0, 0, 40, 88, 0, 0, 0},
    {0, 0, 0, 32, 96, 0, 0, 0},   {0, 0, 0, 24, 104, 0, 0, 0},
    {0, 0, 0, 16, 112, 0, 0, 0},  {0, 0, 0, 8, 120, 0, 0, 0},
};

std::uint8_t
ClampPixel(std::int32_t v)
{
    return static_cast<std::uint8_t>(std::clamp(v, 0, 255));
}

} // namespace

const FilterKernel &
EightTapKernel(int phase)
{
    PIM_ASSERT(phase >= 0 && phase < kSubpelPhases, "phase %d", phase);
    return kEightTap[phase];
}

const FilterKernel &
BilinearKernel(int phase)
{
    PIM_ASSERT(phase >= 0 && phase < kSubpelPhases, "phase %d", phase);
    return kBilinear[phase];
}

std::int32_t
ApplyKernelRaw(const std::uint8_t *src, const FilterKernel &kernel)
{
    std::int32_t acc = 0;
    for (int t = 0; t < kFilterTaps; ++t) {
        acc += kernel[t] * src[t];
    }
    return acc;
}

std::uint8_t
ApplyKernelU8(const std::uint8_t *src, const FilterKernel &kernel)
{
    const std::int32_t acc = ApplyKernelRaw(src, kernel);
    return ClampPixel((acc + (1 << (kFilterShift - 1))) >> kFilterShift);
}

std::uint8_t
ApplyKernelI32(const std::int32_t *src, const FilterKernel &kernel)
{
    std::int64_t acc = 0;
    for (int t = 0; t < kFilterTaps; ++t) {
        acc += static_cast<std::int64_t>(kernel[t]) * src[t];
    }
    const int shift = 2 * kFilterShift;
    const std::int64_t rounded = (acc + (1LL << (shift - 1))) >> shift;
    return ClampPixel(static_cast<std::int32_t>(
        std::clamp<std::int64_t>(rounded, 0, 255)));
}

} // namespace pim::video
