/**
 * @file
 * Device compute models: the host CPU, the general-purpose PIM core, and
 * fixed-function PIM accelerators (the paper's Section 3.3).
 *
 * A compute model converts a kernel's dynamic operation mix into
 * (1) issue-limited execution time and (2) compute energy.  Together with
 * the memory hierarchy attached to the device, this yields the paper's
 * CPU-Only / PIM-Core / PIM-Acc comparison points.
 */

#ifndef PIM_CORE_COMPUTE_MODEL_H
#define PIM_CORE_COMPUTE_MODEL_H

#include <cstdint>
#include <string>

#include "common/types.h"
#include "sim/op_counter.h"
#include "sim/timing_model.h"

namespace pim::core {

/** The paper's three evaluated execution targets. */
enum class ExecutionTarget
{
    kCpuOnly,
    kPimCore,
    kPimAccel,
};

/** Printable name ("CPU-Only", "PIM-Core", "PIM-Acc"). */
const char *TargetName(ExecutionTarget target);

/**
 * Parameters of one compute device.
 *
 * Issue model: SIMD-eligible operations retire simd_width at a time; the
 * resulting issue-slot count drains at sustained_ipc slots per cycle.
 */
struct ComputeModel
{
    std::string name;
    double freq_ghz = 2.0;
    double sustained_ipc = 1.0;
    std::uint32_t simd_width = 1;
    PicoJoules pj_per_op = 100.0;
    sim::MemTimingParams mem_timing;

    /**
     * Concurrent execution lanes the kernel is partitioned across.
     * The paper places one PIM core per vault and interleaves data
     * across vaults, so an offloaded kernel runs on the PIM cores of
     * the vaults holding its data (we conservatively model 4 of 16);
     * host kernels run on one SoC core, as in the paper's
     * microbenchmark methodology.  Total ops (and thus energy) are
     * unchanged; only issue-limited time divides.
     */
    double parallel_lanes = 1.0;

    /**
     * Issue slots consumed by the mix @p ops: SIMD-eligible element
     * operations retire simd_width per slot, the rest one per slot.
     */
    double
    IssueSlots(const sim::OpCounts &ops) const
    {
        const auto total = static_cast<double>(ops.Total());
        const auto simd = static_cast<double>(ops.simd_eligible);
        return (total - simd) + simd / static_cast<double>(simd_width);
    }

    /** Issue-limited time for the mix @p ops. */
    Nanoseconds
    IssueTime(const sim::OpCounts &ops) const
    {
        return IssueSlots(ops) / sustained_ipc / freq_ghz /
               parallel_lanes;
    }

    /**
     * Compute (core/accelerator) energy for the mix @p ops, charged
     * per issue slot: a SIMD instruction costs about as much to fetch,
     * issue, and retire as a scalar one, which is exactly why
     * vectorized kernels are energy-efficient on the CPU.
     */
    PicoJoules
    ComputeEnergy(const sim::OpCounts &ops) const
    {
        return pj_per_op * IssueSlots(ops);
    }
};

/**
 * The host SoC core (Table 1): out-of-order, 8-wide issue, 2 GHz.
 * Sustained IPC on these streaming kernels is well below peak; the model
 * uses 4 slots/cycle with a 4-wide (128-bit) SIMD unit.
 */
ComputeModel CpuComputeModel();

/**
 * The PIM core (Table 1): 1-wide in-order, 4-wide SIMD, 32 KiB L1,
 * Cortex-R8-class energy (conservative, per Section 3.1).
 */
ComputeModel PimCoreComputeModel();

/**
 * A fixed-function PIM accelerator: @p units in-memory logic units, each
 * retiring @p ops_per_cycle element operations per cycle; 20x the CPU's
 * compute energy efficiency (Section 3.1).
 */
ComputeModel PimAccelComputeModel(std::uint32_t units = 4,
                                  double ops_per_cycle = 16.0);

/** The model matching an execution target (accelerator uses defaults). */
ComputeModel ModelForTarget(ExecutionTarget target);

} // namespace pim::core

#endif // PIM_CORE_COMPUTE_MODEL_H
