/**
 * @file
 * Stateful CPU<->PIM coherence directory (the paper's Section 8.2).
 *
 * The analytic EstimateOffloadCoherence() in coherence.h prices an
 * offload from assumed resident/dirty fractions; this class instead
 * *tracks* line ownership across a sequence of host accesses and
 * offloads, producing exact message/flush counts for a workload run:
 *
 *   - the CPU-side directory is the system's main coherence point;
 *   - a PIM-side directory in the logic layer owns lines while PIM
 *     logic works on them;
 *   - offload launch transfers the kernel footprint PIM-ward (flushing
 *     the host's dirty copies); completion transfers the output
 *     footprint back host-ward.
 *
 * Granularity is the cache line.  The directory tracks state only for
 * lines it has seen, so memory cost is proportional to the touched
 * footprint.
 */

#ifndef PIM_CORE_COHERENCE_DIRECTORY_H
#define PIM_CORE_COHERENCE_DIRECTORY_H

#include <cstdint>
#include <unordered_map>

#include "common/types.h"

namespace pim::core {

/** Ownership state of one cache line. */
enum class LineOwner : std::uint8_t
{
    kHostClean, ///< Host may have a clean cached copy.
    kHostDirty, ///< Host holds the only up-to-date copy.
    kPimOwned,  ///< PIM logic owns the line; host copies invalid.
};

/** Message/flush counters accumulated by the directory. */
struct DirectoryStats
{
    std::uint64_t host_writebacks = 0;   ///< Dirty lines flushed host->DRAM.
    std::uint64_t host_invalidations = 0; ///< Clean host copies dropped.
    std::uint64_t pim_handoffs = 0;      ///< Lines returned PIM->host.
    std::uint64_t messages = 0;          ///< Directory protocol messages.

    std::uint64_t
    Total() const
    {
        return host_writebacks + host_invalidations + pim_handoffs;
    }
};

/** The two-directory coherence tracker. */
class CoherenceDirectory
{
  public:
    /** Record a host read of [addr, addr+bytes). */
    void HostRead(Address addr, Bytes bytes);

    /** Record a host write of [addr, addr+bytes). */
    void HostWrite(Address addr, Bytes bytes);

    /**
     * Transfer the range PIM-ward at offload launch: dirty host lines
     * are written back, clean ones invalidated, and ownership moves to
     * the PIM-side directory.  Returns messages generated.
     */
    std::uint64_t OffloadBegin(Address addr, Bytes bytes);

    /**
     * Return the range host-ward at offload completion.  PIM-owned
     * lines hand off with one message per region grant (64 lines).
     */
    std::uint64_t OffloadEnd(Address addr, Bytes bytes);

    /** Current owner of the line containing @p addr. */
    LineOwner OwnerOf(Address addr) const;

    const DirectoryStats &stats() const { return stats_; }
    std::size_t tracked_lines() const { return lines_.size(); }
    void ResetStats() { stats_ = DirectoryStats{}; }

  private:
    std::unordered_map<Address, LineOwner> lines_;
    DirectoryStats stats_;
};

} // namespace pim::core

#endif // PIM_CORE_COHERENCE_DIRECTORY_H
