#include "core/coherence_directory.h"

namespace pim::core {

namespace {

/** Apply @p fn to every line base address in [addr, addr+bytes). */
template <typename Fn>
void
ForEachLine(Address addr, Bytes bytes, Fn fn)
{
    if (bytes == 0) {
        return;
    }
    Address cur = LineAlign(addr);
    const Address end = addr + bytes;
    for (; cur < end; cur += kCacheLineBytes) {
        fn(cur);
    }
}

} // namespace

void
CoherenceDirectory::HostRead(Address addr, Bytes bytes)
{
    ForEachLine(addr, bytes, [this](Address line) {
        auto [it, inserted] = lines_.try_emplace(line,
                                                 LineOwner::kHostClean);
        if (!inserted && it->second == LineOwner::kPimOwned) {
            // Host pulls the line back from the PIM-side directory.
            it->second = LineOwner::kHostClean;
            ++stats_.pim_handoffs;
            ++stats_.messages;
        }
    });
}

void
CoherenceDirectory::HostWrite(Address addr, Bytes bytes)
{
    ForEachLine(addr, bytes, [this](Address line) {
        auto [it, inserted] = lines_.try_emplace(line,
                                                 LineOwner::kHostDirty);
        if (!inserted) {
            if (it->second == LineOwner::kPimOwned) {
                ++stats_.pim_handoffs;
                ++stats_.messages;
            }
            it->second = LineOwner::kHostDirty;
        }
    });
}

std::uint64_t
CoherenceDirectory::OffloadBegin(Address addr, Bytes bytes)
{
    std::uint64_t messages = 2; // launch request + acknowledge
    ForEachLine(addr, bytes, [this, &messages](Address line) {
        auto [it, inserted] = lines_.try_emplace(line,
                                                 LineOwner::kPimOwned);
        if (inserted) {
            return; // never host-cached: silent transfer
        }
        switch (it->second) {
          case LineOwner::kHostDirty:
            ++stats_.host_writebacks;
            ++messages;
            break;
          case LineOwner::kHostClean:
            ++stats_.host_invalidations;
            ++messages;
            break;
          case LineOwner::kPimOwned:
            break; // already PIM-side
        }
        it->second = LineOwner::kPimOwned;
    });
    stats_.messages += messages;
    return messages;
}

std::uint64_t
CoherenceDirectory::OffloadEnd(Address addr, Bytes bytes)
{
    // Completion hands regions (4 KiB grants) back to the host-side
    // directory; individual lines flip lazily on the next host access.
    const std::uint64_t regions =
        (LinesSpanned(addr, bytes) + 63) / 64;
    const std::uint64_t messages = regions + 1; // grants + completion
    stats_.messages += messages;
    return messages;
}

LineOwner
CoherenceDirectory::OwnerOf(Address addr) const
{
    const auto it = lines_.find(LineAlign(addr));
    return it == lines_.end() ? LineOwner::kHostClean : it->second;
}

} // namespace pim::core
