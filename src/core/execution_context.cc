#include "core/execution_context.h"

#include "common/logging.h"
#include "telemetry/span_tracer.h"

namespace pim::core {

namespace {

sim::HierarchyConfig
HierarchyForTarget(ExecutionTarget target)
{
    switch (target) {
      case ExecutionTarget::kCpuOnly:
        return sim::HostHierarchyConfig();
      case ExecutionTarget::kPimCore:
        return sim::PimCoreHierarchyConfig();
      case ExecutionTarget::kPimAccel:
        return sim::PimAccelHierarchyConfig();
    }
    PIM_PANIC("unknown execution target");
}

} // namespace

ExecutionContext::ExecutionContext(ExecutionTarget target)
    : ExecutionContext(target, ModelForTarget(target),
                       HierarchyForTarget(target))
{
}

ExecutionContext::ExecutionContext(ExecutionTarget target,
                                   ComputeModel compute,
                                   const sim::HierarchyConfig &hierarchy)
    : target_(target), compute_(std::move(compute)), hierarchy_(hierarchy),
      port_(hierarchy_.Top())
{
}

RunReport
ExecutionContext::Report(const std::string &kernel_name) const
{
    RunReport r;
    r.kernel = kernel_name;
    r.target = target_;
    r.target_name = TargetName(target_);
    r.ops = ops_.counts();
    r.counters = hierarchy_.Snapshot();

    r.energy =
        energy_model_.MemoryEnergy(r.counters, hierarchy_.config().dram);
    r.energy.compute = compute_.ComputeEnergy(r.ops);

    const Nanoseconds issue = compute_.IssueTime(r.ops);
    r.timing = sim::EvaluateTiming(issue, r.counters,
                                   hierarchy_.config().dram,
                                   compute_.mem_timing);
    if (PIM_TRACE_ENABLED()) {
        const std::string suffix = "[" + std::string(r.target_name) + "]";
        PIM_TRACE_COUNTER("dram_bytes" + suffix,
                          r.counters.dram.TotalBytes());
        PIM_TRACE_COUNTER("energy_pj" + suffix, r.energy.Total());
    }
    return r;
}

void
ExecutionContext::DetachTrace()
{
    port_.Rebind(hierarchy_.Top());
    if (recorder_) {
        sim::AccessTrace &trace = recorder_->trace();
        trace.ShrinkToFit();
        PIM_TRACE_COUNTER("trace.bytes", trace.SizeBytes());
        if (PIM_TRACE_ENABLED()) {
            // What the compact codec would save for this recording.
            // The encode pass is only worth paying when someone is
            // collecting the counters.
            const sim::CompactTrace compact =
                sim::CompactTrace::Encode(trace);
            PIM_TRACE_COUNTER("trace.compact_bytes",
                              compact.SizeBytes());
            PIM_TRACE_COUNTER("trace.compression_ratio",
                              compact.CompressionRatio());
        }
        recorder_.reset();
    }
}

sim::CompactTrace
ExecutionContext::DetachCompactTrace()
{
    port_.Rebind(hierarchy_.Top());
    sim::CompactTrace trace;
    if (compact_recorder_) {
        trace = compact_recorder_->Finish();
        PIM_TRACE_COUNTER("trace.bytes", trace.RawBytes());
        PIM_TRACE_COUNTER("trace.compact_bytes", trace.SizeBytes());
        PIM_TRACE_COUNTER("trace.compression_ratio",
                          trace.CompressionRatio());
        compact_recorder_.reset();
    }
    return trace;
}

void
ExecutionContext::Reset(bool drain_caches)
{
    if (drain_caches) {
        hierarchy_.Drain();
    }
    hierarchy_.ResetStats();
    port_.ResetTotals();
    ops_.Reset();
}

RunReport
SynthesizeReport(const std::string &kernel_name, ExecutionTarget target,
                 const ComputeModel &compute,
                 const sim::HierarchyConfig &hierarchy,
                 const sim::OpCounts &ops,
                 const sim::PerfCounters &counters)
{
    RunReport r;
    r.kernel = kernel_name;
    r.target = target;
    r.target_name = TargetName(target);
    r.ops = ops;
    r.counters = counters;

    const sim::EnergyModel energy_model;
    r.energy = energy_model.MemoryEnergy(counters, hierarchy.dram);
    r.energy.compute = compute.ComputeEnergy(ops);

    const Nanoseconds issue = compute.IssueTime(ops);
    r.timing = sim::EvaluateTiming(issue, counters, hierarchy.dram,
                                   compute.mem_timing);
    return r;
}

std::vector<RunReport>
RunOnAllTargets(const std::string &kernel_name,
                const std::function<void(ExecutionContext &)> &kernel)
{
    std::vector<RunReport> reports;
    for (ExecutionTarget target :
         {ExecutionTarget::kCpuOnly, ExecutionTarget::kPimCore,
          ExecutionTarget::kPimAccel}) {
        ExecutionContext ctx(target);
        kernel(ctx);
        reports.push_back(ctx.Report(kernel_name));
    }
    return reports;
}

} // namespace pim::core
