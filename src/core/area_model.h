/**
 * @file
 * Logic-layer area model (the paper's Section 3.3 and the per-kernel
 * accelerator areas of Sections 4-7).
 *
 * An HMC-like stack exposes 50-60 mm^2 of logic-layer area; with 16
 * vaults that is roughly 3.5-4.4 mm^2 per vault for PIM logic.  The
 * paper's feasibility rule: a PIM core (0.33 mm^2, Cortex-R8 footprint)
 * or a per-workload accelerator must fit within the per-vault budget.
 */

#ifndef PIM_CORE_AREA_MODEL_H
#define PIM_CORE_AREA_MODEL_H

#include <string>
#include <vector>

namespace pim::core {

/** Square millimeters at the paper's 22 nm logic process. */
using SquareMm = double;

/** Per-vault area budget for new PIM logic. */
struct VaultAreaBudget
{
    SquareMm min_mm2 = 3.5;
    SquareMm max_mm2 = 4.4;
};

/** One piece of PIM logic and its estimated area. */
struct PimLogicArea
{
    std::string name;
    SquareMm area_mm2;
};

/** The paper's published area estimates. */
PimLogicArea PimCoreArea();              ///< 0.33 mm^2 (Cortex-R8).
PimLogicArea TextureTilingAccelArea();   ///< <0.25 mm^2, 4 tiling units.
PimLogicArea ColorBlittingAccelArea();   ///< same 4 units, new control.
PimLogicArea CompressionAccelArea();     ///< <0.25 mm^2 (LZO-class).
PimLogicArea PackingAccelArea();         ///< same 4 units, new control.
PimLogicArea QuantizationAccelArea();    ///< same 4 units, new control.
PimLogicArea SubPixelInterpAccelArea();  ///< 0.21 mm^2.
PimLogicArea DeblockingAccelArea();      ///< 0.12 mm^2.
PimLogicArea MotionEstimationAccelArea(); ///< 1.24 mm^2.
PimLogicArea McDeblockAccelArea();       ///< 0.33 mm^2 (decoder MC+DF).

/** All of the above, for inventory-style reporting. */
std::vector<PimLogicArea> AllPimLogicAreas();

/** Fraction of the per-vault budget consumed (against the minimum). */
double FractionOfVaultBudget(const PimLogicArea &logic,
                             const VaultAreaBudget &budget = {});

/** Paper feasibility rule: fits within the per-vault minimum budget. */
bool FitsVaultBudget(const PimLogicArea &logic,
                     const VaultAreaBudget &budget = {});

} // namespace pim::core

#endif // PIM_CORE_AREA_MODEL_H
