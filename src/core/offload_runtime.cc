#include "core/offload_runtime.h"

#include "core/coherence_directory.h"
#include "sim/sweep.h"
#include "sim/trace.h"
#include "telemetry/span_tracer.h"

namespace pim::core {

namespace {

/** Span label "<kernel>[<target>]" for the trace timeline. */
std::string
SpanLabel(const std::string &kernel_name, ExecutionTarget target)
{
    return kernel_name + "[" + TargetName(target) + "]";
}

} // namespace

RunReport
OffloadRuntime::Run(
    const std::string &kernel_name, ExecutionTarget target,
    const OffloadFootprint &footprint,
    const std::function<void(ExecutionContext &)> &kernel) const
{
    PIM_TRACE_SPAN("offload", SpanLabel(kernel_name, target));
    ExecutionContext ctx(target);
    if (target != ExecutionTarget::kCpuOnly) {
        PIM_TRACE_INSTANT("offload", "PIM_BEGIN");
    }
    {
        PIM_TRACE_SPAN("kernel", kernel_name);
        kernel(ctx);
    }
    if (target != ExecutionTarget::kCpuOnly) {
        PIM_TRACE_INSTANT("offload", "PIM_END");
    }
    RunReport report = ctx.Report(kernel_name);

    if (target != ExecutionTarget::kCpuOnly) {
        const CoherenceCost cost = EstimateOffloadCoherence(
            footprint.input_bytes, footprint.output_bytes, coherence_);
        report.overhead_ns = cost.time_ns;
        // Coherence messages/flushes cross the off-chip interconnect.
        report.energy.interconnect += cost.energy_pj;
    }
    return report;
}

RunReport
OffloadRuntime::RunTracked(
    const std::string &kernel_name, ExecutionTarget target,
    Address input_base, Bytes input_bytes, Address output_base,
    Bytes output_bytes, CoherenceDirectory &directory,
    const std::function<void(ExecutionContext &)> &kernel) const
{
    PIM_TRACE_SPAN("offload", SpanLabel(kernel_name, target));
    ExecutionContext ctx(target);
    if (target == ExecutionTarget::kCpuOnly) {
        // Host execution: the directory just observes the accesses.
        kernel(ctx);
        directory.HostRead(input_base, input_bytes);
        directory.HostWrite(output_base, output_bytes);
        return ctx.Report(kernel_name);
    }

    const DirectoryStats before = directory.stats();
    PIM_TRACE_INSTANT("offload", "PIM_BEGIN");
    std::uint64_t messages =
        directory.OffloadBegin(input_base, input_bytes);
    messages += directory.OffloadBegin(output_base, output_bytes);

    {
        PIM_TRACE_SPAN("kernel", kernel_name);
        kernel(ctx);
    }
    messages += directory.OffloadEnd(output_base, output_bytes);
    PIM_TRACE_INSTANT("offload", "PIM_END");

    RunReport report = ctx.Report(kernel_name);
    const std::uint64_t writebacks =
        directory.stats().host_writebacks - before.host_writebacks;

    report.energy.interconnect +=
        static_cast<double>(messages) * coherence_.pj_per_message +
        static_cast<double>(writebacks) * coherence_.pj_per_flushed_line;
    const double flush_bytes = static_cast<double>(writebacks) *
                               static_cast<double>(kCacheLineBytes);
    report.overhead_ns = coherence_.launch_latency_ns +
                         flush_bytes / coherence_.flush_bandwidth_gbps;
    return report;
}

std::vector<RunReport>
OffloadRuntime::RunAllReplayed(
    const std::string &kernel_name, const OffloadFootprint &footprint,
    const std::function<void(ExecutionContext &)> &kernel) const
{
    PIM_TRACE_SPAN("offload", kernel_name + "[replayed]");

    // Native CPU-Only run, teeing the access stream into a trace.
    sim::AccessTrace trace;
    ExecutionContext cpu_ctx(ExecutionTarget::kCpuOnly);
    cpu_ctx.AttachTrace(trace);
    {
        PIM_TRACE_SPAN("kernel", kernel_name + ":record");
        kernel(cpu_ctx);
    }
    cpu_ctx.DetachTrace();

    std::vector<RunReport> reports(3);
    reports[0] = cpu_ctx.Report(kernel_name);

    // Replay the recorded stream into both PIM hierarchies in parallel.
    PIM_TRACE_INSTANT("offload", "PIM_BEGIN");
    const std::vector<sim::HierarchyConfig> configs = {
        sim::PimCoreHierarchyConfig(), sim::PimAccelHierarchyConfig()};
    const ExecutionTarget targets[] = {ExecutionTarget::kPimCore,
                                       ExecutionTarget::kPimAccel};
    const sim::SweepRunner runner;
    const auto counters = runner.ReplayTrace(trace, configs);
    PIM_TRACE_INSTANT("offload", "PIM_END");

    const CoherenceCost cost = EstimateOffloadCoherence(
        footprint.input_bytes, footprint.output_bytes, coherence_);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        RunReport r = SynthesizeReport(
            kernel_name, targets[i], ModelForTarget(targets[i]),
            configs[i], reports[0].ops, counters[i]);
        r.overhead_ns = cost.time_ns;
        r.energy.interconnect += cost.energy_pj;
        reports[i + 1] = r;
    }
    return reports;
}

std::vector<RunReport>
OffloadRuntime::RunAll(
    const std::string &kernel_name, const OffloadFootprint &footprint,
    const std::function<void(ExecutionContext &)> &kernel) const
{
    std::vector<RunReport> reports;
    for (ExecutionTarget target :
         {ExecutionTarget::kCpuOnly, ExecutionTarget::kPimCore,
          ExecutionTarget::kPimAccel}) {
        reports.push_back(Run(kernel_name, target, footprint, kernel));
    }
    return reports;
}

} // namespace pim::core
