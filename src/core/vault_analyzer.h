/**
 * @file
 * Vault interleaving and per-vault traffic analysis.
 *
 * The paper places one piece of PIM logic per vault and interleaves
 * addresses across vaults; a PIM kernel's data must therefore spread
 * evenly or some vaults' logic sits idle while one is saturated.  The
 * analyzer bins an access stream by vault and reports the balance —
 * the quantity that justifies the `parallel_lanes` speedup model.
 */

#ifndef PIM_CORE_VAULT_ANALYZER_H
#define PIM_CORE_VAULT_ANALYZER_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/access.h"
#include "sim/system_config.h"

namespace pim::core {

/** Address-to-vault mapping: lines interleave round-robin. */
inline std::uint32_t
VaultOf(Address addr, std::uint32_t vaults)
{
    return static_cast<std::uint32_t>((addr / kCacheLineBytes) % vaults);
}

/** MemorySink that bins traffic by destination vault. */
class VaultTrafficAnalyzer final : public sim::MemorySink
{
  public:
    explicit VaultTrafficAnalyzer(
        std::uint32_t vaults = sim::StackedMemoryConfig{}.vaults)
        : bytes_(vaults, 0)
    {
    }

    void
    Access(Address addr, Bytes bytes, sim::AccessType) override
    {
        if (bytes == 0) {
            return;
        }
        Address cur = LineAlign(addr);
        const Address end = addr + bytes;
        for (; cur < end; cur += kCacheLineBytes) {
            const Bytes chunk =
                std::min<Bytes>(kCacheLineBytes, end - cur);
            bytes_[VaultOf(cur, vault_count())] += chunk;
        }
    }

    std::uint32_t
    vault_count() const
    {
        return static_cast<std::uint32_t>(bytes_.size());
    }

    Bytes vault_bytes(std::uint32_t v) const { return bytes_.at(v); }

    Bytes
    TotalBytes() const
    {
        Bytes total = 0;
        for (const Bytes b : bytes_) {
            total += b;
        }
        return total;
    }

    /**
     * Load balance in (0, 1]: mean vault traffic over max vault
     * traffic.  1.0 = perfectly even; 1/vaults = everything in one.
     */
    double
    Balance() const
    {
        Bytes max_bytes = 0;
        for (const Bytes b : bytes_) {
            max_bytes = std::max(max_bytes, b);
        }
        if (max_bytes == 0) {
            return 1.0;
        }
        const double mean = static_cast<double>(TotalBytes()) /
                            static_cast<double>(bytes_.size());
        return mean / static_cast<double>(max_bytes);
    }

    /**
     * Effective parallel lanes the traffic supports: vaults weighted
     * by their share of an even split (== vaults x Balance()).
     */
    double
    EffectiveLanes() const
    {
        return Balance() * static_cast<double>(vault_count());
    }

  private:
    std::vector<Bytes> bytes_;
};

} // namespace pim::core

#endif // PIM_CORE_VAULT_ANALYZER_H
