/**
 * @file
 * The paper's Section 8.1 offload interface, as source-level markers.
 *
 * The paper marks PIM-target code regions with a pair of macros the
 * compiler lowers to PIM-launch/PIM-end instructions.  This header
 * provides the equivalent ergonomics for the simulated device: the
 * marked block runs on the chosen target via the offload runtime, and
 * the report lands in the named variable.
 *
 *   core::OffloadRuntime rt;
 *   core::RunReport report;
 *   PIM_OFFLOAD(rt, report, core::ExecutionTarget::kPimAccel,
 *               "texture-tiling",
 *               (core::OffloadFootprint{in_bytes, out_bytes}), ctx) {
 *       browser::TileTexture(linear, tiled, ctx);
 *   } PIM_OFFLOAD_END;
 */

#ifndef PIM_CORE_PIM_OFFLOAD_MACROS_H
#define PIM_CORE_PIM_OFFLOAD_MACROS_H

#include "core/offload_runtime.h"

/**
 * Begin an offloaded region.  @p runtime is an OffloadRuntime lvalue,
 * @p report a RunReport lvalue that receives the measurement,
 * @p target the ExecutionTarget, @p name a kernel label, @p footprint
 * an OffloadFootprint (parenthesize braced initializers), and
 * @p ctx_var the name the block uses for its ExecutionContext.
 */
#define PIM_OFFLOAD(runtime, report, target, name, footprint, ctx_var)   \
    (report) = (runtime).Run(                                            \
        (name), (target), (footprint),                                   \
        [&](::pim::core::ExecutionContext &ctx_var)

/** Close a PIM_OFFLOAD region. */
#define PIM_OFFLOAD_END )

#endif // PIM_CORE_PIM_OFFLOAD_MACROS_H
