/**
 * @file
 * The declarative catalog of paper kernels (Figures 18/19/20).
 *
 * Each workload library describes its PIM-target kernels once, as
 * KernelSpecs registered through PIM_REGISTER_KERNEL; every consumer —
 * the figure benches, headline_summary, the `pim_run` driver, sweeps,
 * and tests — then dispatches through the same registry instead of
 * re-hard-coding kernel setups.  A spec carries the kernel's identity
 * (name, workload group, paper figure), its declared OffloadFootprint,
 * and a scale-parameterized factory producing a re-runnable instance.
 *
 * Instantiation goes through a KernelSession so kernels of one group
 * share their expensive inputs (and, at scale 1.0, reproduce the
 * original bench-layer RNG and simulated-address allocation order
 * exactly — figure outputs are byte-identical to the pre-registry
 * code).
 */

#ifndef PIM_CORE_KERNEL_REGISTRY_H
#define PIM_CORE_KERNEL_REGISTRY_H

#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/slug.h"
#include "core/execution_context.h"
#include "core/offload_runtime.h"

namespace pim::core {

/** The (CPU-Only, PIM-Core, PIM-Acc) reports for one kernel. */
struct KernelResult
{
    std::string name;
    RunReport cpu;
    RunReport pim_core;
    RunReport pim_acc;

    /**
     * Fraction of baseline energy removed by @p pim.  A degenerate
     * zero-energy baseline yields 0.0 (no saving) rather than -inf.
     */
    double
    EnergySaving(const RunReport &pim) const
    {
        const double base = cpu.TotalEnergyPj();
        if (!(base > 0.0)) {
            return 0.0;
        }
        return 1.0 - pim.TotalEnergyPj() / base;
    }

    /**
     * Baseline-relative speedup of @p pim.  Degenerate zero-time
     * baselines or targets yield 1.0 (parity) rather than inf/nan.
     */
    double
    Speedup(const RunReport &pim) const
    {
        const double base = cpu.TotalTimeNs();
        const double t = pim.TotalTimeNs();
        if (!(base > 0.0) || !(t > 0.0)) {
            return 1.0;
        }
        return base / t;
    }
};

/** A ready-to-run kernel produced by KernelSpec::make. */
struct KernelInstance
{
    OffloadFootprint footprint;
    /** Re-runnable instrumented body (owns its inputs via capture). */
    std::function<void(ExecutionContext &)> run;
};

/**
 * One catalog entry.
 *
 * `make(state, scale)` builds a KernelInstance.  `state` is the
 * per-(session, group) shared slot: kernels of a group store their
 * common inputs there so a group run in registration order allocates
 * buffers and consumes RNG draws exactly once, in the original
 * bench-layer order.  `scale` multiplies the paper input's linear
 * dimension; 1.0 is the paper-scale input the figures use.
 */
struct KernelSpec
{
    std::string name;   ///< Display name ("Texture Tiling").
    std::string group;  ///< Workload group ("browser", "tf", "video").
    std::string figure; ///< Paper figure the kernel appears in.
    int order = 0;      ///< Bar position within the group's figure.
    /** Whether the kernel is a pure access-stream + op-mix workload
     *  whose recorded trace can be replayed into other hierarchies
     *  (gates `pim_run --sweep`). */
    bool trace_replayable = true;
    std::function<KernelInstance(std::shared_ptr<void> &state,
                                 double scale)>
        make;

    /** Stable lookup/metric key ("sub_pixel_interpolation"). */
    std::string Slug() const { return Slugify(name); }
};

/**
 * Process-wide kernel catalog.  Populated by PIM_REGISTER_KERNEL
 * static registrars in the workload libraries; enumeration is in
 * canonical catalog order — groups as the paper orders them (browser,
 * tf, video, then any others alphabetically), kernels by `order`
 * within their group — independent of static-initialization order.
 */
class KernelRegistry
{
  public:
    static KernelRegistry &Global();

    /** Add @p spec; the slug must be unique and `make` non-null. */
    void Register(KernelSpec spec);

    /** Every kernel, in canonical catalog order. */
    std::vector<const KernelSpec *> All() const;

    /** The kernels of @p group, in figure order. */
    std::vector<const KernelSpec *> Group(const std::string &group) const;

    /**
     * Kernels whose slug or name matches @p pattern: a glob when it
     * contains `*`/`?`, otherwise a case-insensitive substring match
     * (so `--kernel=blit` finds Color Blitting).
     */
    std::vector<const KernelSpec *> Match(const std::string &pattern) const;

    /** Lookup by exact slug or display name; nullptr when absent. */
    const KernelSpec *Find(const std::string &name_or_slug) const;

    /** Distinct group names, in canonical order. */
    std::vector<std::string> Groups() const;

    std::size_t size() const { return specs_.size(); }

  private:
    KernelRegistry() = default;

    // Stable addresses: consumers hold KernelSpec pointers.
    std::vector<std::unique_ptr<KernelSpec>> specs_;
};

/** Glob matcher used by KernelRegistry::Match (`*` and `?` only). */
bool GlobMatch(std::string_view pattern, std::string_view text);

/**
 * Scaled input dimension: @p base (the paper-scale value) times
 * @p scale, rounded to the nearest positive multiple of @p multiple
 * (tile width, macroblock size, pack block...).  scale 1.0 returns
 * @p base exactly for any already-aligned base.
 */
inline int
ScaleDim(int base, double scale, int multiple)
{
    long units = std::lround(base * scale / multiple);
    if (units < 1) {
        units = 1;
    }
    return static_cast<int>(units) * multiple;
}

/** ScaleDim for byte counts (page-granular inputs). */
inline std::size_t
ScaleBytes(std::size_t base, double scale, std::size_t multiple = 4096)
{
    double want = static_cast<double>(base) * scale;
    auto units = static_cast<long long>(
        std::llround(want / static_cast<double>(multiple)));
    if (units < 1) {
        units = 1;
    }
    return static_cast<std::size_t>(units) * multiple;
}

/**
 * Run @p kernel on all three targets through the offload runtime's
 * record-once / replay-twice fast path and package the reports.
 * (Moved from the bench layer so tests, telemetry, and drivers share
 * one definition of the savings math.)
 */
KernelResult RunKernelAllTargets(
    const std::string &name, const OffloadFootprint &footprint,
    const std::function<void(ExecutionContext &)> &kernel,
    const OffloadRuntime &rt = OffloadRuntime());

/** A kernel's single recorded CPU-Only pass (pim_run --sweep input). */
struct RecordedKernel
{
    RunReport cpu;          ///< Native CPU-Only report.
    sim::AccessTrace trace; ///< The recorded access stream.
};

/** Record's compact twin: the stream encoded as it is produced. */
struct RecordedCompactKernel
{
    RunReport cpu;           ///< Native CPU-Only report.
    sim::CompactTrace trace; ///< The stream, already block-encoded.
};

/**
 * One instantiation scope over the catalog: kernels instantiated
 * through the same session share per-group input state, so a full
 * group run reproduces the original bench-layer allocation order and
 * data streams.  Create one session per figure/driver invocation.
 */
class KernelSession
{
  public:
    explicit KernelSession(double scale = 1.0) : scale_(scale) {}

    double scale() const { return scale_; }

    /** Build the kernel's instance (inputs materialize lazily). */
    KernelInstance Instantiate(const KernelSpec &spec);

    /** Instantiate and run on all three targets (replayed fast path). */
    KernelResult Run(const KernelSpec &spec,
                     const OffloadRuntime &rt = OffloadRuntime());

    /**
     * Instantiate and execute once, natively, on CPU-Only, recording
     * the access stream — the single recording pass the sweep engines
     * (SweepRunner::ReplayTraceFanout / ProfileLlcSweep) fan out.
     */
    RecordedKernel Record(const KernelSpec &spec);

    /**
     * Record, but straight into the compact encoded form: the access
     * stream never exists as an 8-byte-per-entry array, so recording a
     * corpus of large kernels peaks at the *encoded* size plus one
     * codec block.  (`pim_run --corpus` records through this.)
     */
    RecordedCompactKernel RecordCompact(const KernelSpec &spec);

  private:
    double scale_;
    std::map<std::string, std::shared_ptr<void>> group_state_;
};

/** Registers the spec returned by @p make at static-init time. */
struct KernelRegistrar
{
    explicit KernelRegistrar(KernelSpec (*make)())
    {
        KernelRegistry::Global().Register(make());
    }
};

} // namespace pim::core

/**
 * Define-and-register hook: expands to the header of a function
 * returning the KernelSpec, wired to a static registrar.
 *
 *   PIM_REGISTER_KERNEL(texture_tiling)
 *   {
 *       core::KernelSpec spec;
 *       ...
 *       return spec;
 *   }
 */
#define PIM_REGISTER_KERNEL(ident)                                        \
    static ::pim::core::KernelSpec PimMakeKernelSpec_##ident();           \
    static const ::pim::core::KernelRegistrar pim_kernel_registrar_##ident( \
        &PimMakeKernelSpec_##ident);                                      \
    static ::pim::core::KernelSpec PimMakeKernelSpec_##ident()

/**
 * Link anchor: registration lives in static libraries, so a kernels.cc
 * with only static registrars would be dropped by the archive linker.
 * Each kernels.cc plants an anchor; workloads/catalog.cc REQUIREs them
 * all, forcing extraction (and thus registration) into any binary that
 * calls workloads::EnsureKernelCatalog().
 */
#define PIM_KERNEL_ANCHOR(ident)                                          \
    namespace pim::core::kernel_anchors {                                 \
    void ident() {}                                                       \
    }

#define PIM_KERNEL_REQUIRE(ident)                                         \
    namespace pim::core::kernel_anchors {                                 \
    void ident();                                                         \
    }

#endif // PIM_CORE_KERNEL_REGISTRY_H
