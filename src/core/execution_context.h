/**
 * @file
 * ExecutionContext: one device (compute model + memory hierarchy +
 * energy model) that an instrumented kernel executes against, and the
 * RunReport it produces.
 *
 * This is the measurement harness equivalent of the paper's per-target
 * microbenchmark methodology (Section 9): the same kernel is run against
 * a CPU-Only, PIM-Core, or PIM-Acc context and the counters, energy
 * breakdown, and first-order timing are reported.
 */

#ifndef PIM_CORE_EXECUTION_CONTEXT_H
#define PIM_CORE_EXECUTION_CONTEXT_H

#include <functional>
#include <string>
#include <vector>

#include "core/compute_model.h"
#include "sim/access.h"
#include "sim/energy_model.h"
#include "sim/hierarchy.h"
#include "sim/op_counter.h"
#include "sim/timing_model.h"
#include "sim/trace.h"
#include "sim/trace_codec.h"

namespace pim::core {

/** Everything measured for one kernel execution on one target. */
struct RunReport
{
    std::string kernel;
    std::string target_name;
    ExecutionTarget target = ExecutionTarget::kCpuOnly;

    sim::OpCounts ops;
    sim::PerfCounters counters;
    sim::EnergyBreakdown energy;
    sim::TimingResult timing;

    /** Extra time charged by the offload runtime (coherence etc.). */
    Nanoseconds overhead_ns = 0;

    Nanoseconds TotalTimeNs() const { return timing.Total() + overhead_ns; }
    PicoJoules TotalEnergyPj() const { return energy.Total(); }

    /** LLC misses per kilo-instruction (the paper's §3.2 criterion). */
    double
    Mpki() const
    {
        return counters.Mpki(ops.Total());
    }
};

/**
 * A device context: owns the hierarchy the kernel streams accesses into
 * and the per-run counters.  Create one per (target, kernel-run).
 */
class ExecutionContext
{
  public:
    /** Build the canonical context for @p target. */
    explicit ExecutionContext(ExecutionTarget target);

    /** Build a custom context (ablations, HW-codec models). */
    ExecutionContext(ExecutionTarget target, ComputeModel compute,
                     const sim::HierarchyConfig &hierarchy);

    ExecutionContext(const ExecutionContext &) = delete;
    ExecutionContext &operator=(const ExecutionContext &) = delete;

    /** Memory port kernels read/write through. */
    sim::MemPort &mem() { return port_; }

    /** Operation counter kernels report their op mix to. */
    sim::OpCounter &ops() { return ops_; }

    ExecutionTarget target() const { return target_; }
    const ComputeModel &compute() const { return compute_; }
    sim::MemoryHierarchy &hierarchy() { return hierarchy_; }

    /**
     * Snapshot a report for everything executed since the last Reset().
     * Does not reset; call Reset() to begin a new measurement.
     */
    RunReport Report(const std::string &kernel_name) const;

    /** Zero counters and byte totals; optionally drain the caches. */
    void Reset(bool drain_caches = true);

    /**
     * Tee every subsequent access into @p trace as well as the
     * hierarchy (trace-driven methodology; see sim/trace.h).  The
     * trace must outlive the context or a later DetachTrace() call.
     */
    void
    AttachTrace(sim::AccessTrace &trace)
    {
        recorder_ = std::make_unique<sim::TraceRecorder>(
            trace, hierarchy_.Top());
        port_.Rebind(*recorder_);
    }

    /**
     * Stop tracing; accesses go straight to the hierarchy again.  The
     * recorded trace is shrunk to fit (recording grows geometrically,
     * so up to half the backing store may be slack) and its final
     * footprint is reported as the `trace.bytes` telemetry counter —
     * with `trace.compact_bytes` / `trace.compression_ratio` alongside
     * (what the compact codec would save) when tracing is enabled.
     */
    void DetachTrace();

    /**
     * Tee every subsequent access into a compact encoder
     * (sim/trace_codec.h) instead of a raw trace: the recording's
     * resident footprint is the encoded size, never the 8-byte form.
     * Collect the result with DetachCompactTrace().
     */
    void
    AttachCompactTrace()
    {
        compact_recorder_ =
            std::make_unique<sim::CompactTraceRecorder>(
                hierarchy_.Top());
        port_.Rebind(*compact_recorder_);
    }

    /**
     * Stop compact recording and return the encoded stream, reporting
     * the same trace.* telemetry counters DetachTrace does.  Returns
     * an empty trace if AttachCompactTrace was never called.
     */
    sim::CompactTrace DetachCompactTrace();

  private:
    ExecutionTarget target_;
    ComputeModel compute_;
    sim::MemoryHierarchy hierarchy_;
    sim::EnergyModel energy_model_;
    std::unique_ptr<sim::TraceRecorder> recorder_;
    std::unique_ptr<sim::CompactTraceRecorder> compact_recorder_;
    sim::MemPort port_;
    sim::OpCounter ops_;
};

/**
 * Run @p kernel against a fresh context for each of the three targets
 * and return the three reports in (CPU, PIM-Core, PIM-Acc) order.
 * The kernel must be re-runnable (it is invoked once per target).
 */
std::vector<RunReport>
RunOnAllTargets(const std::string &kernel_name,
                const std::function<void(ExecutionContext &)> &kernel);

/**
 * Build the report a native run would have produced, from a replayed
 * counter snapshot: the trace-driven path records the kernel's access
 * stream and op mix once, replays the stream into @p hierarchy's shape,
 * and derives energy/timing exactly as ExecutionContext::Report does.
 */
RunReport
SynthesizeReport(const std::string &kernel_name, ExecutionTarget target,
                 const ComputeModel &compute,
                 const sim::HierarchyConfig &hierarchy,
                 const sim::OpCounts &ops,
                 const sim::PerfCounters &counters);

} // namespace pim::core

#endif // PIM_CORE_EXECUTION_CONTEXT_H
