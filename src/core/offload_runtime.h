/**
 * @file
 * The offload interface (the paper's Section 8.1): a kernel region is
 * marked for PIM execution, the runtime makes the host caches coherent
 * with the PIM view, dispatches the kernel to the chosen PIM logic, and
 * accounts launch/coherence overheads in the report.
 *
 * In the paper this is a pair of compiler macros lowered to two ISA
 * instructions; here it is an explicit runtime call that plays the same
 * role for the simulated device.
 */

#ifndef PIM_CORE_OFFLOAD_RUNTIME_H
#define PIM_CORE_OFFLOAD_RUNTIME_H

#include <functional>
#include <string>

#include "core/coherence.h"
#include "core/execution_context.h"

namespace pim::core {

/** Declared memory footprint of an offloaded kernel. */
struct OffloadFootprint
{
    Bytes input_bytes = 0;  ///< Host-produced data the kernel reads.
    Bytes output_bytes = 0; ///< Data the kernel writes for the host.
};

/**
 * Dispatches kernels to execution targets and charges offload costs.
 * CPU-Only runs have no offload cost; PIM runs pay the coherence
 * launch/flush estimate for their declared footprint.
 */
class OffloadRuntime
{
  public:
    OffloadRuntime() = default;
    explicit OffloadRuntime(CoherenceParams coherence)
        : coherence_(coherence)
    {
    }

    /**
     * Execute @p kernel on @p target and return the measured report,
     * including coherence/launch overhead for PIM targets.
     *
     * The kernel receives a fresh ExecutionContext for the target; it
     * must perform all its instrumented work through ctx.mem()/ctx.ops().
     */
    RunReport
    Run(const std::string &kernel_name, ExecutionTarget target,
        const OffloadFootprint &footprint,
        const std::function<void(ExecutionContext &)> &kernel) const;

    /** Run on all three targets (paper Figures 18-20 shape). */
    std::vector<RunReport>
    RunAll(const std::string &kernel_name, const OffloadFootprint &footprint,
           const std::function<void(ExecutionContext &)> &kernel) const;

    /**
     * Trace-driven RunAll: execute @p kernel natively once (CPU-Only),
     * recording its access stream and op mix, then replay the stream
     * into the two PIM hierarchies concurrently (sim::SweepRunner) and
     * synthesize their reports.  The kernel's computation runs once
     * instead of three times, and the replays use the batched sink
     * path — this is the fast path Figures 18-20 and the ablations use.
     *
     * Report order matches RunAll: (CPU-Only, PIM-Core, PIM-Acc), with
     * the same per-target coherence overheads applied.
     */
    std::vector<RunReport>
    RunAllReplayed(const std::string &kernel_name,
                   const OffloadFootprint &footprint,
                   const std::function<void(ExecutionContext &)> &kernel)
        const;

    /**
     * Like Run(), but derives the coherence cost from a *tracked*
     * directory (see coherence_directory.h) instead of the analytic
     * resident/dirty-fraction estimate: the caller records the host's
     * prior accesses into @p directory, and the offload flushes exactly
     * the lines the host actually holds.
     *
     * @param input_base  simulated base address of the kernel's input
     * @param output_base simulated base address of the kernel's output
     */
    RunReport
    RunTracked(const std::string &kernel_name, ExecutionTarget target,
               Address input_base, Bytes input_bytes, Address output_base,
               Bytes output_bytes, class CoherenceDirectory &directory,
               const std::function<void(ExecutionContext &)> &kernel)
        const;

    const CoherenceParams &coherence_params() const { return coherence_; }

  private:
    CoherenceParams coherence_;
};

} // namespace pim::core

#endif // PIM_CORE_OFFLOAD_RUNTIME_H
