/**
 * @file
 * PIM-target identification (the paper's Section 3.2).
 *
 * A function is a *PIM target candidate* if:
 *   (1) it consumes the most energy among the workload's functions,
 *   (2) its data movement is a significant fraction of workload energy,
 *   (3) it is memory-intensive (LLC MPKI > 10), and
 *   (4) data movement is the largest component of its own energy.
 * A candidate becomes a *PIM target* if additionally:
 *   (5) it suffers no performance loss on PIM logic, and
 *   (6) its PIM logic fits the per-vault area budget.
 */

#ifndef PIM_CORE_PIM_TARGET_H
#define PIM_CORE_PIM_TARGET_H

#include <string>
#include <vector>

#include "core/area_model.h"
#include "core/execution_context.h"

namespace pim::core {

/** Thresholds used by the identification rules. */
struct PimTargetThresholds
{
    double mpki_threshold = 10.0;
    /** "Significant fraction of total workload energy" cutoff. */
    double workload_energy_fraction = 0.10;
};

/** Outcome of the four candidate criteria plus the two feasibility checks. */
struct PimTargetVerdict
{
    std::string function_name;

    bool top_energy_function = false;  ///< Criterion 1.
    bool significant_movement = false; ///< Criterion 2.
    bool memory_intensive = false;     ///< Criterion 3 (MPKI > 10).
    bool movement_dominates = false;   ///< Criterion 4.
    bool no_perf_loss_on_pim = false;  ///< Feasibility a.
    bool area_fits = false;            ///< Feasibility b.

    double mpki = 0.0;
    double movement_fraction_of_workload = 0.0;
    double movement_fraction_of_function = 0.0;

    bool
    IsCandidate() const
    {
        return top_energy_function && significant_movement &&
               memory_intensive && movement_dominates;
    }

    bool IsPimTarget() const
    {
        return IsCandidate() && no_perf_loss_on_pim && area_fits;
    }
};

/** Energy attribution of one function within a whole-workload run. */
struct FunctionEnergyShare
{
    std::string name;
    PicoJoules total_pj = 0;
    PicoJoules movement_pj = 0;
};

/**
 * Apply the Section 3.2 rules.
 *
 * @param function_shares    per-function energy attribution for the whole
 *                           workload (the candidate must rank within the
 *                           top `top_k` functions by energy)
 * @param candidate          which entry of @p function_shares to judge
 * @param cpu_report         the kernel measured on the host
 * @param pim_report         the kernel measured on PIM logic
 * @param accel_area         the accelerator area proposed for it
 */
PimTargetVerdict
EvaluatePimTarget(const std::vector<FunctionEnergyShare> &function_shares,
                  std::size_t candidate, const RunReport &cpu_report,
                  const RunReport &pim_report,
                  const PimLogicArea &accel_area,
                  const PimTargetThresholds &thresholds = {});

} // namespace pim::core

#endif // PIM_CORE_PIM_TARGET_H
