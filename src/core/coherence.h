/**
 * @file
 * CPU<->PIM coherence model (the paper's Section 8.2).
 *
 * The design keeps a PIM-side directory in the logic layer; the CPU-side
 * directory remains the system's main coherence point.  At offload launch
 * the host flushes its dirty copies of the kernel's input footprint and
 * exchanges request/acknowledge messages; at completion the PIM-side
 * directory publishes the output footprint back.  The model charges
 * per-message energy/latency and per-flushed-line writeback traffic.
 */

#ifndef PIM_CORE_COHERENCE_H
#define PIM_CORE_COHERENCE_H

#include <cstdint>

#include "common/types.h"

namespace pim::core {

/** Tunables of the fine-grained coherence scheme. */
struct CoherenceParams
{
    /** Fraction of the input footprint assumed dirty in host caches. */
    double host_dirty_fraction = 0.05;
    /** Fraction of the input footprint resident (clean) in host caches. */
    double host_resident_fraction = 0.20;
    /** Energy per coherence message (directory lookup + link flit). */
    PicoJoules pj_per_message = 120.0;
    /** Latency per message batch (messages pipeline; one round trip). */
    Nanoseconds launch_latency_ns = 500.0;
    /** Off-chip writeback cost per flushed dirty line (64 B x 160 pJ/B). */
    PicoJoules pj_per_flushed_line = 64.0 * 160.0;
    /** Sustainable flush bandwidth for dirty lines (GB/s). */
    double flush_bandwidth_gbps = 16.0;
};

/** Cost of keeping one offload coherent. */
struct CoherenceCost
{
    std::uint64_t messages = 0;
    std::uint64_t flushed_lines = 0;
    std::uint64_t dirty_writebacks = 0;
    PicoJoules energy_pj = 0;
    Nanoseconds time_ns = 0;
};

/**
 * Estimate the coherence cost of offloading a kernel whose inputs span
 * @p input_bytes and outputs span @p output_bytes of host-visible memory.
 */
CoherenceCost EstimateOffloadCoherence(Bytes input_bytes, Bytes output_bytes,
                                       const CoherenceParams &params = {});

} // namespace pim::core

#endif // PIM_CORE_COHERENCE_H
