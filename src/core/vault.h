/**
 * @file
 * HMC/HBM-like 3D-stacked memory organization: vertical vaults, each with
 * its own slice of capacity/bandwidth and one piece of PIM logic in the
 * logic layer.
 */

#ifndef PIM_CORE_VAULT_H
#define PIM_CORE_VAULT_H

#include <cstdint>

#include "common/types.h"
#include "core/area_model.h"
#include "sim/system_config.h"

namespace pim::core {

/** Static view of one vault's resources. */
struct Vault
{
    std::uint32_t index = 0;
    Bytes capacity = 0;
    double internal_bandwidth_gbps = 0;
    VaultAreaBudget area_budget;
};

/** The stack: capacity/bandwidth divided evenly across vaults. */
class StackedMemory
{
  public:
    explicit StackedMemory(
        const sim::StackedMemoryConfig &config = sim::StackedMemoryConfig{})
        : config_(config)
    {
    }

    std::uint32_t vault_count() const { return config_.vaults; }

    Vault
    vault(std::uint32_t index) const
    {
        Vault v;
        v.index = index;
        v.capacity = config_.capacity / config_.vaults;
        v.internal_bandwidth_gbps =
            config_.internal_bandwidth_gbps / config_.vaults;
        return v;
    }

    /** Aggregate internal bandwidth available to PIM logic. */
    double
    internal_bandwidth_gbps() const
    {
        return config_.internal_bandwidth_gbps;
    }

    /** Off-chip channel bandwidth seen by the host SoC. */
    double
    offchip_bandwidth_gbps() const
    {
        return config_.offchip_bandwidth_gbps;
    }

    const sim::StackedMemoryConfig &config() const { return config_; }

  private:
    sim::StackedMemoryConfig config_;
};

} // namespace pim::core

#endif // PIM_CORE_VAULT_H
