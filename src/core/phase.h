/**
 * @file
 * Phase-bucketed measurement: attribute one warm context's activity to
 * named pipeline phases (the per-function breakdowns of the paper's
 * Figures 1, 6, 7, 10, 11, and 15).
 *
 * Usage: run some work through a context, then Take(ctx) into the
 * bucket for that phase; Take snapshots the pending counters and
 * resets them without draining the caches.
 */

#ifndef PIM_CORE_PHASE_H
#define PIM_CORE_PHASE_H

#include <cstdint>

#include "core/execution_context.h"

namespace pim::core {

/** Accumulated measurement of one named phase. */
struct PhaseTotals
{
    sim::EnergyBreakdown energy;
    Nanoseconds time_ns = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llc_misses = 0;
    Bytes offchip_bytes = 0;

    /** Absorb the context's pending measurement and reset it (warm). */
    void
    Take(ExecutionContext &ctx, const char *name = "phase")
    {
        const RunReport r = ctx.Report(name);
        energy += r.energy;
        time_ns += r.timing.Total();
        instructions += r.ops.Total();
        llc_misses += r.counters.has_llc ? r.counters.llc.Misses()
                                         : r.counters.l1.Misses();
        offchip_bytes += r.counters.OffChipBytes();
        ctx.Reset(/*drain_caches=*/false);
    }

    PhaseTotals &
    operator+=(const PhaseTotals &o)
    {
        energy += o.energy;
        time_ns += o.time_ns;
        instructions += o.instructions;
        llc_misses += o.llc_misses;
        offchip_bytes += o.offchip_bytes;
        return *this;
    }
};

} // namespace pim::core

#endif // PIM_CORE_PHASE_H
