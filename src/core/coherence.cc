#include "core/coherence.h"

#include <cmath>

#include "common/logging.h"

namespace pim::core {

CoherenceCost
EstimateOffloadCoherence(Bytes input_bytes, Bytes output_bytes,
                         const CoherenceParams &params)
{
    PIM_ASSERT(params.host_dirty_fraction >= 0.0 &&
                   params.host_dirty_fraction <= 1.0,
               "dirty fraction out of range");
    PIM_ASSERT(params.host_resident_fraction >= params.host_dirty_fraction,
               "resident fraction must include dirty fraction");

    CoherenceCost cost;
    const auto in_lines = (input_bytes + kCacheLineBytes - 1) /
                          kCacheLineBytes;
    const auto out_lines = (output_bytes + kCacheLineBytes - 1) /
                           kCacheLineBytes;

    // Host-resident input lines must be invalidated; dirty ones written
    // back.  Output lines need one ownership-transfer message batch that
    // the directories amortize per region, modeled as one message per
    // 64 lines (a 4 KiB region grant).
    const auto resident = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(in_lines) *
                     params.host_resident_fraction));
    const auto dirty = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(in_lines) *
                     params.host_dirty_fraction));

    cost.flushed_lines = resident;
    cost.dirty_writebacks = dirty;
    cost.messages = resident + out_lines / 64 + 2; // +launch/+complete

    cost.energy_pj =
        static_cast<double>(cost.messages) * params.pj_per_message +
        static_cast<double>(dirty) * params.pj_per_flushed_line;

    const double flush_bytes =
        static_cast<double>(dirty) * static_cast<double>(kCacheLineBytes);
    cost.time_ns = params.launch_latency_ns +
                   flush_bytes / params.flush_bandwidth_gbps;
    return cost;
}

} // namespace pim::core
