#include "core/kernel_registry.h"

#include <algorithm>

#include "common/logging.h"

namespace pim::core {

namespace {

/** Canonical group order: the paper's figure order, others after. */
int
GroupRank(const std::string &group)
{
    if (group == "browser") {
        return 0;
    }
    if (group == "tf") {
        return 1;
    }
    if (group == "video") {
        return 2;
    }
    return 3;
}

bool
SpecBefore(const KernelSpec &a, const KernelSpec &b)
{
    const int ra = GroupRank(a.group), rb = GroupRank(b.group);
    if (ra != rb) {
        return ra < rb;
    }
    if (a.group != b.group) {
        return a.group < b.group;
    }
    if (a.order != b.order) {
        return a.order < b.order;
    }
    return a.name < b.name;
}

std::string
Lower(std::string_view s)
{
    std::string out(s);
    for (char &c : out) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

} // namespace

bool
GlobMatch(std::string_view pattern, std::string_view text)
{
    // Iterative glob with single-star backtracking.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string_view::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string_view::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*') {
        ++p;
    }
    return p == pattern.size();
}

KernelRegistry &
KernelRegistry::Global()
{
    static KernelRegistry registry;
    return registry;
}

void
KernelRegistry::Register(KernelSpec spec)
{
    PIM_ASSERT(!spec.name.empty(), "kernel spec needs a name");
    PIM_ASSERT(!spec.group.empty(), "kernel %s needs a group",
               spec.name.c_str());
    PIM_ASSERT(spec.make != nullptr, "kernel %s needs a factory",
               spec.name.c_str());
    const std::string slug = spec.Slug();
    for (const auto &existing : specs_) {
        PIM_ASSERT(existing->Slug() != slug,
                   "duplicate kernel registration: %s", slug.c_str());
    }
    auto owned = std::make_unique<KernelSpec>(std::move(spec));
    const auto pos = std::find_if(
        specs_.begin(), specs_.end(),
        [&](const auto &s) { return SpecBefore(*owned, *s); });
    specs_.insert(pos, std::move(owned));
}

std::vector<const KernelSpec *>
KernelRegistry::All() const
{
    std::vector<const KernelSpec *> out;
    out.reserve(specs_.size());
    for (const auto &spec : specs_) {
        out.push_back(spec.get());
    }
    return out;
}

std::vector<const KernelSpec *>
KernelRegistry::Group(const std::string &group) const
{
    std::vector<const KernelSpec *> out;
    for (const auto &spec : specs_) {
        if (spec->group == group) {
            out.push_back(spec.get());
        }
    }
    return out;
}

std::vector<const KernelSpec *>
KernelRegistry::Match(const std::string &pattern) const
{
    const bool glob =
        pattern.find_first_of("*?") != std::string::npos;
    const std::string needle = Lower(pattern);
    std::vector<const KernelSpec *> out;
    for (const auto &spec : specs_) {
        const std::string slug = spec->Slug();
        bool hit;
        if (glob) {
            hit = GlobMatch(needle, slug) ||
                  GlobMatch(needle, Lower(spec->name));
        } else {
            hit = slug.find(needle) != std::string::npos ||
                  Lower(spec->name).find(needle) != std::string::npos;
        }
        if (hit) {
            out.push_back(spec.get());
        }
    }
    return out;
}

const KernelSpec *
KernelRegistry::Find(const std::string &name_or_slug) const
{
    for (const auto &spec : specs_) {
        if (spec->name == name_or_slug ||
            spec->Slug() == name_or_slug) {
            return spec.get();
        }
    }
    return nullptr;
}

std::vector<std::string>
KernelRegistry::Groups() const
{
    std::vector<std::string> out;
    for (const auto &spec : specs_) {
        if (std::find(out.begin(), out.end(), spec->group) == out.end()) {
            out.push_back(spec->group);
        }
    }
    return out;
}

KernelResult
RunKernelAllTargets(const std::string &name,
                    const OffloadFootprint &footprint,
                    const std::function<void(ExecutionContext &)> &kernel,
                    const OffloadRuntime &rt)
{
    // Trace-driven path: the kernel's computation runs once (CPU-Only,
    // recording its stream); the PIM targets are evaluated by parallel
    // batched replay.  See OffloadRuntime::RunAllReplayed.
    const auto reports = rt.RunAllReplayed(name, footprint, kernel);
    return {name, reports[0], reports[1], reports[2]};
}

KernelInstance
KernelSession::Instantiate(const KernelSpec &spec)
{
    return spec.make(group_state_[spec.group], scale_);
}

KernelResult
KernelSession::Run(const KernelSpec &spec, const OffloadRuntime &rt)
{
    const KernelInstance inst = Instantiate(spec);
    return RunKernelAllTargets(spec.name, inst.footprint, inst.run, rt);
}

RecordedKernel
KernelSession::Record(const KernelSpec &spec)
{
    const KernelInstance inst = Instantiate(spec);
    RecordedKernel rec;
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    ctx.AttachTrace(rec.trace);
    inst.run(ctx);
    ctx.DetachTrace();
    rec.cpu = ctx.Report(spec.name);
    return rec;
}

RecordedCompactKernel
KernelSession::RecordCompact(const KernelSpec &spec)
{
    const KernelInstance inst = Instantiate(spec);
    RecordedCompactKernel rec;
    ExecutionContext ctx(ExecutionTarget::kCpuOnly);
    ctx.AttachCompactTrace();
    inst.run(ctx);
    rec.trace = ctx.DetachCompactTrace();
    rec.cpu = ctx.Report(spec.name);
    return rec;
}

} // namespace pim::core
