#include "core/area_model.h"

namespace pim::core {

PimLogicArea
PimCoreArea()
{
    return {"pim-core", 0.33};
}

PimLogicArea
TextureTilingAccelArea()
{
    return {"texture-tiling-accel", 0.25};
}

PimLogicArea
ColorBlittingAccelArea()
{
    return {"color-blitting-accel", 0.25};
}

PimLogicArea
CompressionAccelArea()
{
    return {"compression-accel", 0.25};
}

PimLogicArea
PackingAccelArea()
{
    return {"packing-accel", 0.25};
}

PimLogicArea
QuantizationAccelArea()
{
    return {"quantization-accel", 0.25};
}

PimLogicArea
SubPixelInterpAccelArea()
{
    return {"subpel-interp-accel", 0.21};
}

PimLogicArea
DeblockingAccelArea()
{
    return {"deblocking-accel", 0.12};
}

PimLogicArea
MotionEstimationAccelArea()
{
    return {"motion-estimation-accel", 1.24};
}

PimLogicArea
McDeblockAccelArea()
{
    return {"mc-deblock-accel", 0.33};
}

std::vector<PimLogicArea>
AllPimLogicAreas()
{
    return {
        PimCoreArea(),
        TextureTilingAccelArea(),
        ColorBlittingAccelArea(),
        CompressionAccelArea(),
        PackingAccelArea(),
        QuantizationAccelArea(),
        SubPixelInterpAccelArea(),
        DeblockingAccelArea(),
        MotionEstimationAccelArea(),
        McDeblockAccelArea(),
    };
}

double
FractionOfVaultBudget(const PimLogicArea &logic,
                      const VaultAreaBudget &budget)
{
    return logic.area_mm2 / budget.min_mm2;
}

bool
FitsVaultBudget(const PimLogicArea &logic, const VaultAreaBudget &budget)
{
    return logic.area_mm2 <= budget.min_mm2;
}

} // namespace pim::core
