#include "core/pim_target.h"

#include <algorithm>

#include "common/logging.h"

namespace pim::core {

PimTargetVerdict
EvaluatePimTarget(const std::vector<FunctionEnergyShare> &function_shares,
                  std::size_t candidate, const RunReport &cpu_report,
                  const RunReport &pim_report,
                  const PimLogicArea &accel_area,
                  const PimTargetThresholds &thresholds)
{
    PIM_ASSERT(candidate < function_shares.size(),
               "candidate index %zu out of %zu", candidate,
               function_shares.size());

    PimTargetVerdict v;
    const FunctionEnergyShare &f = function_shares[candidate];
    v.function_name = f.name;

    PicoJoules workload_total = 0;
    PicoJoules max_energy = 0;
    for (const auto &share : function_shares) {
        workload_total += share.total_pj;
        max_energy = std::max(max_energy, share.total_pj);
    }

    // (1) Highest-energy function (ties count).
    v.top_energy_function = f.total_pj >= max_energy && f.total_pj > 0;

    // (2) Its data movement is a significant fraction of workload energy.
    v.movement_fraction_of_workload =
        workload_total > 0 ? f.movement_pj / workload_total : 0.0;
    v.significant_movement = v.movement_fraction_of_workload >=
                             thresholds.workload_energy_fraction;

    // (3) Memory-intensive: LLC MPKI above threshold on the host.
    v.mpki = cpu_report.Mpki();
    v.memory_intensive = v.mpki > thresholds.mpki_threshold;

    // (4) Movement is the single largest component of its own energy.
    v.movement_fraction_of_function =
        f.total_pj > 0 ? f.movement_pj / f.total_pj : 0.0;
    v.movement_dominates = v.movement_fraction_of_function > 0.5;

    // (5) No performance loss when run on the PIM logic.
    v.no_perf_loss_on_pim =
        pim_report.TotalTimeNs() <= cpu_report.TotalTimeNs();

    // (6) Proposed accelerator fits the per-vault budget.
    v.area_fits = FitsVaultBudget(accel_area);

    return v;
}

} // namespace pim::core
