#include "core/compute_model.h"

#include "common/logging.h"

namespace pim::core {

const char *
TargetName(ExecutionTarget target)
{
    switch (target) {
      case ExecutionTarget::kCpuOnly:
        return "CPU-Only";
      case ExecutionTarget::kPimCore:
        return "PIM-Core";
      case ExecutionTarget::kPimAccel:
        return "PIM-Acc";
    }
    PIM_PANIC("unknown execution target");
}

ComputeModel
CpuComputeModel()
{
    ComputeModel m;
    m.name = "cpu-ooo";
    m.freq_ghz = 2.0;
    m.sustained_ipc = 4.0;
    m.simd_width = 4;
    m.pj_per_op = 70.0; // mobile OoO core, incl. fetch/rename/ROB share
    m.mem_timing.llc_hit_latency_ns = 10.0;
    m.mem_timing.mlp = 6.0; // OoO window + stream prefetcher
    return m;
}

ComputeModel
PimCoreComputeModel()
{
    ComputeModel m;
    m.name = "pim-core";
    m.freq_ghz = 2.0;
    m.sustained_ipc = 1.0;
    m.simd_width = 4;
    m.pj_per_op = 18.0; // Cortex-R8-class in-order core
    m.mem_timing.llc_hit_latency_ns = 0.0;
    m.mem_timing.mlp = 6.0; // short, in-stack access path
    m.parallel_lanes = 4.0; // kernel spread over 4 vaults' PIM cores
    return m;
}

// Each in-memory logic unit is a short fixed-function pipeline (e.g., a
// 16-lane SAD/filter datapath), so per-unit throughput is well above a
// scalar ALU's.
ComputeModel
PimAccelComputeModel(std::uint32_t units, double ops_per_cycle)
{
    PIM_ASSERT(units > 0 && ops_per_cycle > 0, "bad accelerator shape");
    ComputeModel m;
    m.name = "pim-accel";
    m.freq_ghz = 1.0; // conservative fixed-function clock
    m.sustained_ipc = static_cast<double>(units) * ops_per_cycle;
    m.simd_width = 1; // throughput already folded into sustained_ipc
    // 20x the CPU's compute efficiency per data element: the CPU's
    // best case is 70 pJ per 4-wide SIMD slot (17.5 pJ/element); the
    // fixed-function datapath spends 0.875 pJ/element.
    m.pj_per_op = 0.875;
    m.mem_timing.llc_hit_latency_ns = 0.0;
    m.mem_timing.mlp = 9.0; // pipelined fixed-function fetch
    return m;
}

ComputeModel
ModelForTarget(ExecutionTarget target)
{
    switch (target) {
      case ExecutionTarget::kCpuOnly:
        return CpuComputeModel();
      case ExecutionTarget::kPimCore:
        return PimCoreComputeModel();
      case ExecutionTarget::kPimAccel:
        return PimAccelComputeModel();
    }
    PIM_PANIC("unknown execution target");
}

} // namespace pim::core
