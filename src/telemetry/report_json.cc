#include "telemetry/report_json.h"

#include "common/slug.h"

namespace pim::telemetry {

JsonValue
ToJson(const sim::OpCounts &ops)
{
    JsonValue v = JsonValue::Object();
    v.Set("alu", ops.alu);
    v.Set("mul", ops.mul);
    v.Set("branch", ops.branch);
    v.Set("load", ops.load);
    v.Set("store", ops.store);
    v.Set("simd_eligible", ops.simd_eligible);
    v.Set("total", ops.Total());
    return v;
}

JsonValue
ToJson(const sim::CacheStats &stats)
{
    JsonValue v = JsonValue::Object();
    v.Set("read_hits", stats.read_hits);
    v.Set("read_misses", stats.read_misses);
    v.Set("write_hits", stats.write_hits);
    v.Set("write_misses", stats.write_misses);
    v.Set("writebacks", stats.writebacks);
    v.Set("miss_rate", stats.MissRate());
    return v;
}

JsonValue
ToJson(const sim::DramStats &stats)
{
    JsonValue v = JsonValue::Object();
    v.Set("read_requests", stats.read_requests);
    v.Set("write_requests", stats.write_requests);
    v.Set("read_bytes", stats.read_bytes);
    v.Set("write_bytes", stats.write_bytes);
    v.Set("total_bytes", stats.TotalBytes());
    return v;
}

JsonValue
ToJson(const sim::PerfCounters &counters)
{
    JsonValue v = JsonValue::Object();
    v.Set("l1", ToJson(counters.l1));
    v.Set("has_llc", counters.has_llc);
    if (counters.has_llc) {
        v.Set("llc", ToJson(counters.llc));
    }
    v.Set("dram", ToJson(counters.dram));
    v.Set("offchip_bytes", counters.OffChipBytes());
    return v;
}

JsonValue
ToJson(const sim::EnergyBreakdown &energy)
{
    JsonValue v = JsonValue::Object();
    v.Set("compute_pj", energy.compute);
    v.Set("l1_pj", energy.l1);
    v.Set("llc_pj", energy.llc);
    v.Set("interconnect_pj", energy.interconnect);
    v.Set("memctrl_pj", energy.memctrl);
    v.Set("dram_pj", energy.dram);
    v.Set("total_pj", energy.Total());
    v.Set("data_movement_pj", energy.DataMovement());
    v.Set("data_movement_fraction", energy.DataMovementFraction());
    return v;
}

JsonValue
ToJson(const sim::TimingResult &timing)
{
    JsonValue v = JsonValue::Object();
    v.Set("issue_ns", timing.issue_ns);
    v.Set("memory_ns", timing.memory_ns);
    v.Set("bandwidth_ns", timing.bandwidth_ns);
    v.Set("total_ns", timing.Total());
    v.Set("bound", timing.Bound());
    return v;
}

JsonValue
ToJson(const core::RunReport &report)
{
    JsonValue v = JsonValue::Object();
    v.Set("kernel", report.kernel);
    v.Set("target", report.target_name);
    v.Set("ops", ToJson(report.ops));
    v.Set("counters", ToJson(report.counters));
    v.Set("energy", ToJson(report.energy));
    v.Set("timing", ToJson(report.timing));
    v.Set("overhead_ns", report.overhead_ns);
    v.Set("total_time_ns", report.TotalTimeNs());
    v.Set("total_energy_pj", report.TotalEnergyPj());
    v.Set("mpki", report.Mpki());
    return v;
}

JsonValue
ToJson(const Table &table)
{
    JsonValue v = JsonValue::Object();
    v.Set("title", table.title());
    JsonValue &header = v.Set("header", JsonValue::Array());
    for (const auto &cell : table.header()) {
        header.Push(cell);
    }
    JsonValue &rows = v.Set("rows", JsonValue::Array());
    for (const auto &row : table.data()) {
        JsonValue &out_row = rows.Push(JsonValue::Array());
        for (const auto &cell : row) {
            out_row.Push(cell);
        }
    }
    return v;
}

JsonValue
MakeReportDocument(const std::string &binary)
{
    JsonValue doc = JsonValue::Object();
    doc.Set("schema", kReportSchemaName);
    doc.Set("version", kReportSchemaVersion);
    doc.Set("binary", binary);
    return doc;
}

std::string
MetricSlug(const std::string &name)
{
    return Slugify(name);
}

} // namespace pim::telemetry
