/**
 * @file
 * Low-overhead span tracer exported as Chrome trace-event JSON
 * (loadable in chrome://tracing and Perfetto).
 *
 * The instrumented layers (core::OffloadRuntime, core::ExecutionContext,
 * sim::SweepRunner, bench sections) emit three event kinds:
 *
 *  - scoped spans  — RAII begin/end pairs (`PIM_TRACE_SPAN`),
 *  - counters      — named sampled values (`PIM_TRACE_COUNTER`),
 *  - instants      — point markers such as the offload interface's
 *                    PIM_BEGIN / PIM_END (`PIM_TRACE_INSTANT`).
 *
 * Overhead discipline: tracing is off by default and every macro is a
 * single relaxed atomic load when disabled; defining
 * `PIM_TELEMETRY_DISABLE_TRACING` compiles the macros out entirely.
 * This header is deliberately dependent only on src/common, so the sim
 * and core layers can emit events without a layering cycle against the
 * report serializers in the rest of src/telemetry.
 *
 * Timestamps are wall-clock (steady_clock) microseconds since tracer
 * construction.  They are observational only — no simulated quantity
 * reads them — so the determinism guarantee of ARCHITECTURE.md is
 * untouched.
 */

#ifndef PIM_TELEMETRY_SPAN_TRACER_H
#define PIM_TELEMETRY_SPAN_TRACER_H

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.h"

namespace pim::telemetry {

/** One recorded trace event (phase uses Chrome's single-letter codes). */
struct TraceEvent
{
    char phase = 'B'; ///< 'B' begin, 'E' end, 'C' counter, 'i' instant.
    double ts_us = 0.0;
    std::uint32_t tid = 0;
    std::string name;
    std::string category;
    double value = 0.0; ///< Counter payload ('C' events only).
};

/**
 * Process-global event collector.  Thread-safe: spans may be emitted
 * from SweepRunner workers concurrently; events append under a mutex
 * (the enabled() fast path takes no lock).
 */
class Tracer
{
  public:
    static Tracer &
    Global()
    {
        static Tracer tracer;
        return tracer;
    }

    Tracer() : epoch_(std::chrono::steady_clock::now()) {}

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void
    SetEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    void
    Begin(std::string_view name, std::string_view category)
    {
        Record('B', name, category, 0.0);
    }

    void
    End(std::string_view name, std::string_view category)
    {
        Record('E', name, category, 0.0);
    }

    void
    Counter(std::string_view name, double value)
    {
        Record('C', name, "counter", value);
    }

    void
    Instant(std::string_view name, std::string_view category)
    {
        Record('i', name, category, 0.0);
    }

    void
    Clear()
    {
        std::lock_guard<std::mutex> lock(mu_);
        events_.clear();
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return events_.size();
    }

    /** Copy of the recorded events (tests; ordering is append order). */
    std::vector<TraceEvent>
    Events() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return events_;
    }

    /** Chrome trace-event document: {"traceEvents": [...], ...}. */
    JsonValue
    ToJson() const
    {
        JsonValue doc = JsonValue::Object();
        doc.Set("displayTimeUnit", "ms");
        JsonValue &events = doc.Set("traceEvents", JsonValue::Array());
        std::lock_guard<std::mutex> lock(mu_);
        for (const TraceEvent &e : events_) {
            JsonValue ev = JsonValue::Object();
            ev.Set("name", e.name);
            ev.Set("cat", e.category);
            ev.Set("ph", std::string(1, e.phase));
            ev.Set("ts", e.ts_us);
            ev.Set("pid", 1);
            ev.Set("tid", e.tid);
            if (e.phase == 'C') {
                JsonValue args = JsonValue::Object();
                args.Set("value", e.value);
                ev.Set("args", std::move(args));
            } else if (e.phase == 'i') {
                ev.Set("s", "t"); // thread-scoped instant
            }
            events.Push(std::move(ev));
        }
        return doc;
    }

    std::string ToChromeJson() const { return ToJson().Dump(); }

    /** Write the Chrome trace to @p path; returns false on I/O error. */
    bool
    WriteTo(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            return false;
        }
        const std::string text = ToChromeJson();
        const bool ok =
            std::fwrite(text.data(), 1, text.size(), f) == text.size();
        return std::fclose(f) == 0 && ok;
    }

  private:
    void
    Record(char phase, std::string_view name, std::string_view category,
           double value)
    {
        if (!enabled()) {
            return;
        }
        TraceEvent e;
        e.phase = phase;
        e.ts_us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - epoch_)
                      .count();
        e.name.assign(name.data(), name.size());
        e.category.assign(category.data(), category.size());
        e.value = value;
        std::lock_guard<std::mutex> lock(mu_);
        e.tid = TidLocked();
        events_.push_back(std::move(e));
    }

    /** Small stable per-thread id (mu_ must be held). */
    std::uint32_t
    TidLocked()
    {
        const auto id = std::this_thread::get_id();
        for (const auto &known : tids_) {
            if (known.first == id) {
                return known.second;
            }
        }
        tids_.emplace_back(id, next_tid_);
        return next_tid_++;
    }

    std::atomic<bool> enabled_{false};
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    std::vector<std::pair<std::thread::id, std::uint32_t>> tids_;
    std::uint32_t next_tid_ = 1;
    std::chrono::steady_clock::time_point epoch_;
};

/** RAII begin/end pair on the global tracer. */
class ScopedSpan
{
  public:
    ScopedSpan(std::string_view name, std::string_view category)
        : active_(Tracer::Global().enabled())
    {
        if (active_) {
            name_.assign(name.data(), name.size());
            category_.assign(category.data(), category.size());
            Tracer::Global().Begin(name_, category_);
        }
    }

    ~ScopedSpan()
    {
        if (active_) {
            Tracer::Global().End(name_, category_);
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    bool active_;
    std::string name_;
    std::string category_;
};

} // namespace pim::telemetry

#define PIM_TRACE_CONCAT_IMPL(a, b) a##b
#define PIM_TRACE_CONCAT(a, b) PIM_TRACE_CONCAT_IMPL(a, b)

#ifndef PIM_TELEMETRY_DISABLE_TRACING

/** Open a span covering the rest of the enclosing scope. */
#define PIM_TRACE_SPAN(category, name)                                    \
    ::pim::telemetry::ScopedSpan PIM_TRACE_CONCAT(pim_trace_span_,        \
                                                  __LINE__)((name),       \
                                                            (category))

/** Record one sample of a named counter. */
#define PIM_TRACE_COUNTER(name, value)                                    \
    ::pim::telemetry::Tracer::Global().Counter((name),                    \
                                               static_cast<double>(value))

/** Record a point marker (e.g. the offload PIM_BEGIN instruction). */
#define PIM_TRACE_INSTANT(category, name)                                 \
    ::pim::telemetry::Tracer::Global().Instant((name), (category))

/** True when events would be recorded (guard for label formatting). */
#define PIM_TRACE_ENABLED() (::pim::telemetry::Tracer::Global().enabled())

#else

#define PIM_TRACE_SPAN(category, name) ((void)0)
#define PIM_TRACE_COUNTER(name, value) ((void)0)
#define PIM_TRACE_INSTANT(category, name) ((void)0)
#define PIM_TRACE_ENABLED() (false)

#endif // PIM_TELEMETRY_DISABLE_TRACING

#endif // PIM_TELEMETRY_SPAN_TRACER_H
