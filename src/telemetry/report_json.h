/**
 * @file
 * Serializers that turn the measurement structs (core::RunReport and
 * the sim counter/energy/timing types it aggregates) into stable,
 * versioned JSON documents.
 *
 * Field names are part of the report schema: rename only with a
 * version bump (`kReportSchemaVersion`).  Consumers — the CI reference
 * gate, BENCH_*.json trajectory tooling, plotting scripts — key on
 * them.
 */

#ifndef PIM_TELEMETRY_REPORT_JSON_H
#define PIM_TELEMETRY_REPORT_JSON_H

#include <string>

#include "common/json.h"
#include "common/table.h"
#include "core/execution_context.h"

namespace pim::telemetry {

/** Schema identity stamped into every emitted report document. */
inline constexpr const char *kReportSchemaName = "pim-consumer.bench-report";
inline constexpr int kReportSchemaVersion = 1;

JsonValue ToJson(const sim::OpCounts &ops);
JsonValue ToJson(const sim::CacheStats &stats);
JsonValue ToJson(const sim::DramStats &stats);
JsonValue ToJson(const sim::PerfCounters &counters);
JsonValue ToJson(const sim::EnergyBreakdown &energy);
JsonValue ToJson(const sim::TimingResult &timing);
JsonValue ToJson(const core::RunReport &report);
JsonValue ToJson(const Table &table);

/**
 * Fresh report document with the schema/version/binary envelope;
 * callers attach "groups", "metrics", and "tables" members.
 */
JsonValue MakeReportDocument(const std::string &binary);

/**
 * Stable metric-key fragment for a display name: lower-cased, runs of
 * non-alphanumerics collapsed to single underscores
 * ("Sub-Pixel Interpolation" -> "sub_pixel_interpolation").
 */
std::string MetricSlug(const std::string &name);

} // namespace pim::telemetry

#endif // PIM_TELEMETRY_REPORT_JSON_H
