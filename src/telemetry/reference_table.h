/**
 * @file
 * Paper-reference regression gating: a table of the source paper's
 * published values (headline percentages, per-figure checkpoints)
 * paired with this framework's seed-measured values and per-entry
 * tolerances, plus a checker that diffs a bench binary's JSON report
 * against it.
 *
 * Two anchors per entry:
 *  - `paper_value` — what Boroumand et al. publish (NaN when the paper
 *    gives no scalar for the metric); printed for context.
 *  - `expected`    — what this framework measured at the seed commit.
 *    The check runs against *this* value, so the gate detects drift in
 *    the reproduction, not the (documented, EXPERIMENTS.md) gap between
 *    the reproduction and the paper.
 *
 * Status ladder: |measured - expected| <= warn_tol is a pass, <=
 * fail_tol a warning, beyond that a failure.  Metrics a given binary
 * does not emit are reported as skipped and do not fail the check, but
 * a report that matches no entry at all fails (an empty gate guards
 * nothing).
 */

#ifndef PIM_TELEMETRY_REFERENCE_TABLE_H
#define PIM_TELEMETRY_REFERENCE_TABLE_H

#include <string>
#include <vector>

#include "common/json.h"
#include "common/table.h"

namespace pim::telemetry {

/** Outcome of checking one reference entry. */
enum class RefStatus
{
    kPass,
    kWarn,
    kFail,
    kSkipped, ///< Metric absent from the report.
};

const char *RefStatusName(RefStatus status);

/** One gated metric. */
struct ReferenceEntry
{
    std::string metric;      ///< Key in the report's "metrics" object.
    std::string source;      ///< Paper anchor ("§1", "Fig. 18", ...).
    std::string description;
    double paper_value = 0.0; ///< NaN when the paper gives no scalar.
    double expected = 0.0;    ///< Seed-measured anchor (gated value).
    double warn_tol = 0.0;    ///< |delta| beyond this warns.
    double fail_tol = 0.0;    ///< |delta| beyond this fails.
};

/** An ordered set of reference entries. */
class ReferenceTable
{
  public:
    void Add(ReferenceEntry entry) { entries_.push_back(std::move(entry)); }

    const std::vector<ReferenceEntry> &entries() const { return entries_; }

    const ReferenceEntry *Find(const std::string &metric) const;

    /**
     * The built-in table for this repository: the paper's headline
     * claims (Section 1), the Figure 12/16 traffic checkpoints, the
     * Figure 18/19/20 kernel savings, and the per-figure share
     * checkpoints, anchored at the seed commit's measured values.
     */
    static const ReferenceTable &Paper();

  private:
    std::vector<ReferenceEntry> entries_;
};

/** One entry's verdict. */
struct RefCheckItem
{
    const ReferenceEntry *entry = nullptr;
    double measured = 0.0; ///< Meaningless when status == kSkipped.
    RefStatus status = RefStatus::kSkipped;
};

/** Whole-report verdict. */
struct RefCheckSummary
{
    std::vector<RefCheckItem> items;
    int passed = 0;
    int warned = 0;
    int failed = 0;
    int skipped = 0;

    int checked() const { return passed + warned + failed; }

    /** Gate verdict: no failures and at least one entry checked. */
    bool ok() const { return failed == 0 && checked() > 0; }

    /** Render as a printable table (one row per non-skipped entry). */
    Table ToTable() const;
};

/**
 * Diff @p report (a bench-report JSON document whose "metrics" member
 * maps metric keys to numbers) against @p table.
 */
RefCheckSummary CheckReport(const JsonValue &report,
                            const ReferenceTable &table);

} // namespace pim::telemetry

#endif // PIM_TELEMETRY_REFERENCE_TABLE_H
