/**
 * @file
 * SweepRunner: the design-space sweep engine.
 *
 * The paper's methodology (and every ablation binary here) evaluates one
 * recorded kernel stream against many memory organizations.  Three
 * replay strategies are offered, fastest applicable first:
 *
 *  - ProfileLlcSweep: for sweeps that vary only the LLC geometry, the
 *    shared L1 is replayed once (its miss stream captured), and a
 *    Mattson stack-distance profile of that miss stream yields every
 *    LLC design point analytically — one pass per distinct
 *    (line size, set count), independent of how many capacities are
 *    swept.  See sim/stack_profiler.h.
 *  - ReplayTraceFanout: configs sharing an L1 shape are sharded across
 *    workers; each shard replays the trace through ONE L1 whose miss
 *    batches fan out (FanoutSink) to every design point's LLC/DRAM
 *    stack while the batch is hot — the trace is decoded once per
 *    shard instead of once per config, and the L1 is simulated once
 *    per shard instead of N times.
 *  - ReplayTrace: the reference path — one full cold replay per
 *    config.  Kept as the equivalence baseline; the fast paths must
 *    produce bit-identical counters (tests/test_sweep.cc).
 *
 * Results of all three are deterministic and independent of the thread
 * count: each job writes only its own slots, and a replay's counters
 * depend only on the (immutable, shared) trace and the job's private
 * models.
 */

#ifndef PIM_SIM_SWEEP_H
#define PIM_SIM_SWEEP_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/hierarchy.h"
#include "sim/perf_counters.h"
#include "sim/stack_profiler.h"
#include "sim/trace.h"
#include "sim/trace_codec.h"

namespace pim::sim {

/**
 * A raw-trace PIM-side target of a study: the in-stack compute's
 * private cache (PIM-Core L1 or PIM-Acc buffer) over the stack's
 * internal memory path — no LLC between them.
 */
struct StudyPimPoint
{
    std::string name;
    CacheConfig l1;
    DramConfig dram;
};

/**
 * The design grid one ProfileStudy call answers from a minimal number
 * of replays: every (l1_points x llc_points) host combination, plus
 * every raw-trace PIM point.  Each LLC point carries its own write
 * policy (CacheConfig::policy); the DRAM path below the LLC is shared
 * by all host points.
 */
struct StudySpec
{
    std::vector<CacheConfig> l1_points;
    std::vector<CacheConfig> llc_points;
    DramConfig dram;
    /** Model the stream prefetcher on every LLC probe stream. */
    bool model_prefetcher = false;
    std::vector<StudyPimPoint> pim_points;
};

/** One design point's counters plus the exactness/model metadata. */
struct StudyPointResult
{
    PerfCounters counters;
    /**
     * False when the writeback (and hence DRAM write) readout is not
     * exact: a write-back point whose associativity exceeded the
     * pass's 64 tracked slots.  Hits/misses are always exact.
     */
    bool writebacks_exact = true;
    /** Stream-prefetcher readout; zeros unless the study modeled it. */
    PrefetchStats prefetch;
};

/** ProfileStudy's output: the host grid, PIM points, and pass counts. */
struct StudyResult
{
    /** host[i][j] = l1_points[i] x llc_points[j]. */
    std::vector<std::vector<StudyPointResult>> host;
    std::vector<StudyPointResult> pim; ///< Parallel to pim_points.
    /** Times the input trace was decoded (L1 passes + PIM pass). */
    std::size_t trace_replays = 0;
    /** Stack-distance profiling passes executed across all jobs. */
    std::size_t profile_passes = 0;
    /**
     * Largest set-shard count any pass job ran with (1 = every pass
     * ran serial: PIM_SHARD_PASS=off, prefetcher-model passes, or
     * geometries without a valid shard key).  Counters never depend on
     * it — telemetry for attributing study wall-clock.
     */
    unsigned shards = 1;
};

/**
 * Read one design point out of a finished profiling pass: LLC stats,
 * DRAM traffic (read side always exact; write side exact only when the
 * readout is writebacks_exact), and the prefetcher telemetry when the
 * pass modeled it.  The pass may be live (profiler.profile()) or a
 * memoized StackProfile snapshot — pim_serve answers repeat study
 * queries, including untracked associativities, from stored snapshots
 * without any replay.  The caller supplies the L1 half of the
 * counters.
 */
StudyPointResult ReadProfilePoint(const StackProfile &prof,
                                  std::uint32_t assoc,
                                  WritePolicy policy,
                                  bool model_prefetcher);

/**
 * Runs independent jobs across a pool of worker threads.
 *
 * The pool is created per call (sweeps are seconds-long; thread startup
 * is noise) and sized min(threads, jobs).  Jobs must touch only their
 * own state; the runner provides no synchronization beyond the
 * completion barrier of each call.  A job that throws does not
 * std::terminate the process: the first exception is captured, further
 * unclaimed jobs are abandoned, and the exception is rethrown on join.
 */
class SweepRunner
{
  public:
    /**
     * @param threads worker count; 0 means the PIM_SWEEP_THREADS
     *        environment override if set (CI uses it for bounded,
     *        deterministic parallelism), else hardware concurrency.
     */
    explicit SweepRunner(unsigned threads = 0);

    unsigned thread_count() const { return threads_; }

    /**
     * Process-wide default worker count for runners constructed with
     * threads == 0, taking precedence over PIM_SWEEP_THREADS (the
     * benches' --threads flag lands here: flag > env > hardware
     * concurrency).  0 clears the override.  Not synchronized with
     * concurrent SweepRunner construction — set it during CLI parsing.
     */
    static void SetDefaultThreads(unsigned threads);

    /** The current SetDefaultThreads override (0 = none). */
    static unsigned default_threads();

    /**
     * Invoke fn(i) for every i in [0, jobs), distributed over the
     * pool; blocks until all jobs finish.  Jobs are claimed from a
     * shared atomic counter, so long and short jobs load-balance.
     * If a job throws, the first exception (in completion order) is
     * rethrown here after all workers have joined; jobs not yet
     * claimed when the exception occurred are skipped.
     */
    void ForEach(std::size_t jobs,
                 const std::function<void(std::size_t)> &fn) const;

    /**
     * ForEach with thread→core placement: before running fn(i), the
     * claiming worker pins itself to core i % hardware_concurrency
     * (Linux sched_setaffinity; a no-op elsewhere or under
     * `PIM_PIN=off` — see sim/affinity.h).  Combined with jobs that
     * allocate their own state (first-touch), this keeps each job's
     * working set NUMA-local to the core that replays it.  Results are
     * identical to ForEach — placement is purely a locality hint.
     */
    void
    ForEachPinned(std::size_t jobs,
                  const std::function<void(std::size_t)> &fn) const;

    /**
     * The record-once / replay-many reference primitive: replay
     * @p trace into a fresh cold MemoryHierarchy per config,
     * concurrently, and return each design point's counter snapshot in
     * input order.  O(trace x configs) — use the fan-out or profiler
     * paths below for wide sweeps.
     *
     * Every engine takes the trace as a TraceSource (sim/trace.h): the
     * in-RAM raw and compact forms and the mmap-backed on-disk form
     * all deliver the identical batched entry stream, so counters do
     * not depend on which implementation backs the cursor.  The
     * AccessTrace / CompactTrace overloads below are thin shims that
     * wrap the trace in its source adapter.
     */
    std::vector<PerfCounters>
    ReplayTrace(const TraceSource &trace,
                const std::vector<HierarchyConfig> &configs) const;

    /** Shim: ReplayTrace over an AccessTraceSource view. */
    std::vector<PerfCounters>
    ReplayTrace(const AccessTrace &trace,
                const std::vector<HierarchyConfig> &configs) const;

    /** Shim: ReplayTrace over a CompactTraceSource view. */
    std::vector<PerfCounters>
    ReplayTrace(const CompactTrace &trace,
                const std::vector<HierarchyConfig> &configs) const;

    /**
     * Fan-out replay: counters bit-identical to ReplayTrace, but
     * configs with the same L1 geometry share one L1 simulation whose
     * miss batches feed every member's LLC/DRAM stack while hot
     * (the L1's behavior does not depend on what sits below it, so
     * the shared miss stream is exactly what each dedicated replay's
     * L1 would have emitted).  Groups are sharded across workers so
     * wide sweeps also parallelize.
     */
    std::vector<PerfCounters>
    ReplayTraceFanout(const TraceSource &trace,
                      const std::vector<HierarchyConfig> &configs) const;

    /** Shims: ReplayTraceFanout over the in-RAM source views. */
    std::vector<PerfCounters>
    ReplayTraceFanout(const AccessTrace &trace,
                      const std::vector<HierarchyConfig> &configs) const;
    std::vector<PerfCounters>
    ReplayTraceFanout(const CompactTrace &trace,
                      const std::vector<HierarchyConfig> &configs) const;

    /**
     * One-pass analytic LLC sweep: replay @p trace through
     * @p base.l1 once, capture the miss stream, and derive each
     * @p llc_points design point (over @p base.dram) from a
     * stack-distance profile of that stream — one profiling pass per
     * distinct (line_bytes, set count) among the points, so a
     * capacity sweep phrased at a fixed set count is a single pass
     * plus N histogram lookups.
     *
     * All counters — L1, LLC hit/miss, writebacks, and DRAM traffic —
     * are bit-identical to ReplayTrace on the equivalent
     * HierarchyConfigs (each point's associativity is tracked
     * exactly; see stack_profiler.h for where the pure histogram
     * would be approximate).
     *
     * Each llc_points[i].size must be divisible by
     * associativity * line_bytes, as for any Cache.
     *
     * When the geometries admit a common shard key the whole job is
     * set-sharded (per-shard L1 + profiler fanouts, merged snapshots;
     * sim/sharded_replay.h) and the miss stream is never
     * materialized; PIM_SHARD_PASS=off restores the serial two-pass
     * path.  Counters are bit-identical either way.
     */
    std::vector<PerfCounters>
    ProfileLlcSweep(const TraceSource &trace,
                    const HierarchyConfig &base,
                    const std::vector<CacheConfig> &llc_points) const;

    /** Shims: ProfileLlcSweep over the in-RAM source views. */
    std::vector<PerfCounters>
    ProfileLlcSweep(const AccessTrace &trace,
                    const HierarchyConfig &base,
                    const std::vector<CacheConfig> &llc_points) const;
    std::vector<PerfCounters>
    ProfileLlcSweep(const CompactTrace &trace,
                    const HierarchyConfig &base,
                    const std::vector<CacheConfig> &llc_points) const;

    /**
     * Multi-axis one-pass study: answer the full
     * (L1 geometry x LLC ladder x write policy [x prefetcher]) host
     * grid plus raw-trace PIM points from a minimal number of trace
     * replays.
     *
     * Pass sharing, from cheapest axis up:
     *  - every LLC associativity (= capacity at a set count) in a
     *    (line_bytes, set count, write-allocate) group is answered by
     *    ONE stack-distance profiling pass;
     *  - write-back and write-through-allocate points share the same
     *    allocating pass (identical residency); no-write-allocate
     *    points get the non-allocating pass of their group;
     *  - every distinct L1 geometry costs exactly one trace replay:
     *    the L1 is simulated once (sim::Cache) with its miss stream
     *    fanning out to the group's nested profilers while hot — the
     *    miss stream is never materialized;
     *  - all PIM points together cost one more replay (profilers on
     *    the raw trace, no host hierarchy).
     *
     * So an L x (G passes) x A-point grid costs L + 1 replays and
     * L x G + G_pim profiling passes, independent of A.  Counters are
     * bit-identical to ReplayTrace/ReplayTraceFanout on the equivalent
     * hierarchies wherever writebacks_exact (always, except write-back
     * points beyond 64 tracked associativities per pass — see
     * stack_profiler.h).
     *
     * Each replay job is additionally set-sharded across the worker
     * pool when its geometries admit a common shard key
     * (sim/sharded_replay.h): per-shard private L1s feed per-shard
     * profiler fanouts and the shard snapshots merge bit-identically,
     * so even a single-L1 study uses every core.  Prefetcher-model
     * passes and non-pow2 geometries fall back to the serial job, and
     * PIM_SHARD_PASS=off forces the serial path everywhere;
     * StudyResult::shards reports what ran.
     */
    StudyResult ProfileStudy(const TraceSource &trace,
                             const StudySpec &spec) const;

    /** Shims: ProfileStudy over the in-RAM source views. */
    StudyResult ProfileStudy(const AccessTrace &trace,
                             const StudySpec &spec) const;
    StudyResult ProfileStudy(const CompactTrace &trace,
                             const StudySpec &spec) const;

  private:
    unsigned threads_;
};

} // namespace pim::sim

#endif // PIM_SIM_SWEEP_H
