/**
 * @file
 * SweepRunner: a small thread pool for design-space sweeps.
 *
 * The paper's methodology (and every ablation binary here) evaluates one
 * recorded kernel stream against many memory organizations.  The
 * replays are embarrassingly parallel — each hierarchy instance is
 * private to its design point — so the runner records once and replays
 * into N independent MemoryHierarchy instances concurrently.
 *
 * Results are deterministic and independent of the thread count: each
 * job writes only its own slot, and a replay's counters depend only on
 * the (immutable, shared) trace and the job's private hierarchy.
 */

#ifndef PIM_SIM_SWEEP_H
#define PIM_SIM_SWEEP_H

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/hierarchy.h"
#include "sim/perf_counters.h"
#include "sim/trace.h"

namespace pim::sim {

/**
 * Runs independent jobs across a pool of worker threads.
 *
 * The pool is created per call (sweeps are seconds-long; thread startup
 * is noise) and sized min(threads, jobs).  Jobs must not throw and must
 * touch only their own state; the runner provides no synchronization
 * beyond the completion barrier of each call.
 */
class SweepRunner
{
  public:
    /** @param threads worker count; 0 means hardware concurrency. */
    explicit SweepRunner(unsigned threads = 0);

    unsigned thread_count() const { return threads_; }

    /**
     * Invoke fn(i) for every i in [0, jobs), distributed over the
     * pool; blocks until all jobs finish.  Jobs are claimed from a
     * shared atomic counter, so long and short jobs load-balance.
     */
    void ForEach(std::size_t jobs,
                 const std::function<void(std::size_t)> &fn) const;

    /**
     * The record-once / replay-many primitive: replay @p trace into a
     * fresh cold MemoryHierarchy per config, concurrently, and return
     * each design point's counter snapshot in input order.
     */
    std::vector<PerfCounters>
    ReplayTrace(const AccessTrace &trace,
                const std::vector<HierarchyConfig> &configs) const;

  private:
    unsigned threads_;
};

} // namespace pim::sim

#endif // PIM_SIM_SWEEP_H
