#include "sim/simd.h"

#include <atomic>

#include "common/env.h"

namespace pim::sim::simd {
namespace {

// -1 = not yet resolved from the environment, 0 = disabled, 1 = enabled.
std::atomic<int> g_enabled{-1};

int
ResolveFromEnv()
{
    // Unrecognized values warn (once — the result is cached) and keep
    // the vector path enabled.
    return EnvSwitch("PIM_SIMD", true) ? 1 : 0;
}

} // namespace

bool
Enabled()
{
    if (CompiledIsa() == Isa::kScalar) {
        return false;
    }
    int state = g_enabled.load(std::memory_order_relaxed);
    if (state < 0) {
        state = ResolveFromEnv();
        g_enabled.store(state, std::memory_order_relaxed);
    }
    return state != 0;
}

void
SetEnabled(bool enabled)
{
    g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

const char *
IsaName(Isa isa)
{
    switch (isa) {
    case Isa::kAvx2:
        return "avx2";
    case Isa::kNeon:
        return "neon";
    case Isa::kScalar:
        break;
    }
    return "scalar";
}

} // namespace pim::sim::simd
