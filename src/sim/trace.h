/**
 * @file
 * Memory access trace recording and replay.
 *
 * The paper's methodology is trace-heavy (the repro gate this project
 * works around): kernels were profiled once and their traffic analyzed
 * under different memory organizations.  This module provides the same
 * leverage — record a kernel's access stream once, then replay it
 * through any hierarchy (different LLC sizes, PIM configurations,
 * line sizes) without re-running the kernel's computation.
 */

#ifndef PIM_SIM_TRACE_H
#define PIM_SIM_TRACE_H

#include <cstdint>
#include <vector>

#include "sim/access.h"

namespace pim::sim {

/** One recorded access. */
struct TraceEntry
{
    Address addr;
    std::uint32_t bytes;
    AccessType type;
};

/** A recorded access stream. */
class AccessTrace
{
  public:
    void
    Append(Address addr, Bytes bytes, AccessType type)
    {
        entries_.push_back(
            {addr, static_cast<std::uint32_t>(bytes), type});
    }

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    const TraceEntry &operator[](std::size_t i) const
    {
        return entries_[i];
    }

    /** Total bytes accessed (reads + writes). */
    Bytes
    TotalBytes() const
    {
        Bytes total = 0;
        for (const auto &e : entries_) {
            total += e.bytes;
        }
        return total;
    }

    /** Replay every access into @p sink, in order. */
    void
    ReplayInto(MemorySink &sink) const
    {
        for (const auto &e : entries_) {
            sink.Access(e.addr, e.bytes, e.type);
        }
    }

    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

  private:
    std::vector<TraceEntry> entries_;
};

/**
 * A tee: forwards every access to the level below while appending it
 * to a trace.  Interpose between a kernel and its hierarchy to capture
 * the stream without perturbing the measurement.
 */
class TraceRecorder final : public MemorySink
{
  public:
    TraceRecorder(AccessTrace &trace, MemorySink &below)
        : trace_(&trace), below_(&below)
    {
    }

    void
    Access(Address addr, Bytes bytes, AccessType type) override
    {
        trace_->Append(addr, bytes, type);
        below_->Access(addr, bytes, type);
    }

  private:
    AccessTrace *trace_;
    MemorySink *below_;
};

} // namespace pim::sim

#endif // PIM_SIM_TRACE_H
