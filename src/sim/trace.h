/**
 * @file
 * Memory access trace recording and replay.
 *
 * The paper's methodology is trace-heavy (the repro gate this project
 * works around): kernels were profiled once and their traffic analyzed
 * under different memory organizations.  This module provides the same
 * leverage — record a kernel's access stream once, then replay it
 * through any hierarchy (different LLC sizes, PIM configurations,
 * line sizes) without re-running the kernel's computation.
 *
 * Entries are stored packed (8 bytes each; see TraceEntry), so a
 * 100M-access trace is 800 MB -> 800 MB of linear streaming, half the
 * pre-packing footprint, and replay goes through the sink's batched
 * entry point instead of one virtual call per access.
 */

#ifndef PIM_SIM_TRACE_H
#define PIM_SIM_TRACE_H

#include <cstdint>
#include <vector>

#include "sim/access.h"

namespace pim::sim {

/** A recorded access stream. */
class AccessTrace
{
  public:
    void
    Append(Address addr, Bytes bytes, AccessType type)
    {
        if (entries_.size() == entries_.capacity()) {
            Grow(1);
        }
        entries_.emplace_back(addr, bytes, type);
        if (type == AccessType::kRead) {
            read_bytes_ += bytes;
        } else {
            write_bytes_ += bytes;
        }
    }

    /** Bulk-append @p count already-packed entries. */
    void
    Append(const TraceEntry *entries, std::size_t count)
    {
        if (entries_.size() + count > entries_.capacity()) {
            Grow(count);
        }
        entries_.insert(entries_.end(), entries, entries + count);
        for (std::size_t i = 0; i < count; ++i) {
            if (entries[i].type() == AccessType::kRead) {
                read_bytes_ += entries[i].bytes();
            } else {
                write_bytes_ += entries[i].bytes();
            }
        }
    }

    /** Pre-size the backing store for @p count total entries. */
    void Reserve(std::size_t count) { entries_.reserve(count); }

    /**
     * Release the geometric-growth slack: after recording finishes the
     * backing store may hold up to 2x the entries actually appended;
     * long recordings should shrink before the trace is kept around
     * for replay.  (ExecutionContext::DetachTrace does this.)
     */
    void ShrinkToFit() { entries_.shrink_to_fit(); }

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return entries_.capacity(); }

    /** Bytes of entry storage in use / currently reserved. */
    Bytes SizeBytes() const { return size() * sizeof(TraceEntry); }
    Bytes CapacityBytes() const
    {
        return capacity() * sizeof(TraceEntry);
    }
    bool empty() const { return entries_.empty(); }
    const TraceEntry &operator[](std::size_t i) const
    {
        return entries_[i];
    }
    const TraceEntry *data() const { return entries_.data(); }

    /**
     * Total bytes accessed (reads + writes).  O(1): running totals are
     * maintained by Append rather than re-scanning the entry array
     * (this is queried per kernel per report, and traces reach 10^8
     * entries).
     */
    Bytes TotalBytes() const { return read_bytes_ + write_bytes_; }

    /** Bytes accessed by reads / by writes, also O(1). */
    Bytes read_bytes() const { return read_bytes_; }
    Bytes write_bytes() const { return write_bytes_; }

    /** Replay every access into @p sink, in order (batched fast path). */
    void
    ReplayInto(MemorySink &sink) const
    {
        sink.AccessBatch(entries_.data(), entries_.size());
    }

    /**
     * Reference replay path: one virtual Access call per entry, exactly
     * what ReplayInto did before batching existed.  Kept so equivalence
     * tests and the sim_throughput benchmark can compare against it.
     */
    void
    ReplayIntoScalar(MemorySink &sink) const
    {
        for (const auto &e : entries_) {
            sink.Access(e.addr(), e.bytes(), e.type());
        }
    }

    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

  private:
    /**
     * Grow capacity geometrically with a large starting block.  The
     * default vector growth would reallocate-and-copy dozens of times
     * while a kernel streams tens of millions of entries through
     * Append; reserving up front keeps the recorder itself from
     * thrashing the host caches it is trying to measure around.
     */
    void
    Grow(std::size_t at_least)
    {
        static constexpr std::size_t kInitialEntries = 1 << 16;
        std::size_t want = entries_.capacity() == 0
                               ? kInitialEntries
                               : entries_.capacity() * 2;
        while (want < entries_.size() + at_least) {
            want *= 2;
        }
        entries_.reserve(want);
    }

    std::vector<TraceEntry> entries_;
    Bytes read_bytes_ = 0;
    Bytes write_bytes_ = 0;
};

/**
 * A tee: forwards every access to the level below while appending it
 * to a trace.  Interpose between a kernel and its hierarchy to capture
 * the stream without perturbing the measurement.
 */
class TraceRecorder final : public MemorySink
{
  public:
    TraceRecorder(AccessTrace &trace, MemorySink &below)
        : trace_(&trace), below_(&below)
    {
    }

    /** The trace being appended to. */
    AccessTrace &trace() { return *trace_; }

    void
    Access(Address addr, Bytes bytes, AccessType type) override
    {
        trace_->Append(addr, bytes, type);
        below_->Access(addr, bytes, type);
    }

    void
    AccessBatch(const TraceEntry *entries, std::size_t count) override
    {
        trace_->Append(entries, count);
        below_->AccessBatch(entries, count);
    }

  private:
    AccessTrace *trace_;
    MemorySink *below_;
};

} // namespace pim::sim

#endif // PIM_SIM_TRACE_H
