/**
 * @file
 * Memory access trace recording and replay.
 *
 * The paper's methodology is trace-heavy (the repro gate this project
 * works around): kernels were profiled once and their traffic analyzed
 * under different memory organizations.  This module provides the same
 * leverage — record a kernel's access stream once, then replay it
 * through any hierarchy (different LLC sizes, PIM configurations,
 * line sizes) without re-running the kernel's computation.
 *
 * Entries are stored packed (8 bytes each; see TraceEntry), so a
 * 100M-access trace is 800 MB -> 800 MB of linear streaming, half the
 * pre-packing footprint, and replay goes through the sink's batched
 * entry point instead of one virtual call per access.
 */

#ifndef PIM_SIM_TRACE_H
#define PIM_SIM_TRACE_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/access.h"

namespace pim::sim {

/**
 * The streaming trace abstraction every replay engine consumes: a
 * pull-based block cursor over an ordered access stream.  The trace is
 * exposed as BlockCount() consecutive blocks of at most kBlockEntries
 * decoded entries each; Block(b, scratch) yields block b as a span of
 * packed TraceEntry words, either pointing into storage the source
 * already owns (in-RAM raw traces) or into the caller-provided scratch
 * buffer the source decoded into (compact and memory-mapped forms).
 *
 * Contract:
 *  - blocks partition the stream in order: concatenating the spans of
 *    blocks 0..BlockCount()-1 reproduces exactly the entry sequence
 *    ReplayInto delivers, so counters derived through the cursor are
 *    bit-identical to any whole-trace replay (AccessBatch is
 *    batch-size invariant);
 *  - `scratch` must have capacity for kBlockEntries entries; the span
 *    is valid until the next use of the same scratch buffer (spans
 *    into source-owned storage live as long as the source);
 *  - Block() is const and safe to call concurrently from multiple
 *    threads *with distinct scratch buffers* — the sharded replay
 *    partitions blocks in parallel through one shared source;
 *  - resident() says whether the decoded stream lives in RAM: engines
 *    may buffer O(trace) state for resident sources but must keep
 *    memory O(block buffers) when it is false (out-of-core replay).
 *
 * See DESIGN.md §5j for the full contract and the rationale.
 */
class TraceSource
{
  public:
    /** Max entries per block == the compact codec's block size. */
    static constexpr std::size_t kBlockEntries = 4096;

    /** One decoded block: a pointer/count pair of packed entries. */
    struct Span
    {
        const TraceEntry *data = nullptr;
        std::size_t count = 0;
    };

    virtual ~TraceSource() = default;

    /** Total entries / O(1) byte totals of the whole stream. */
    virtual std::uint64_t entries() const = 0;
    virtual Bytes read_bytes() const = 0;
    virtual Bytes write_bytes() const = 0;
    Bytes TotalBytes() const { return read_bytes() + write_bytes(); }
    bool empty() const { return entries() == 0; }

    /** Number of blocks (== ceil(entries / kBlockEntries)). */
    virtual std::size_t BlockCount() const = 0;

    /**
     * Decode block @p b, using @p scratch (capacity >= kBlockEntries)
     * when the source has no resident decoded form.  Blocks are
     * self-contained: any subset may be cursored in any order.
     */
    virtual Span Block(std::size_t b, TraceEntry *scratch) const = 0;

    /** True when the decoded stream is RAM-resident (see above). */
    virtual bool resident() const = 0;

    /**
     * Replay every access into @p sink in order through the batched
     * fast path.  The default walks the block cursor with a stack
     * scratch buffer; sources with a faster whole-stream path
     * override it (the counters cannot differ — see the contract).
     */
    virtual void
    ReplayInto(MemorySink &sink) const
    {
        alignas(64) TraceEntry buffer[kBlockEntries];
        const std::size_t blocks = BlockCount();
        for (std::size_t b = 0; b < blocks; ++b) {
            const Span span = Block(b, buffer);
            if (span.count != 0) {
                sink.AccessBatch(span.data, span.count);
            }
        }
    }
};

/** A recorded access stream. */
class AccessTrace
{
  public:
    void
    Append(Address addr, Bytes bytes, AccessType type)
    {
        if (entries_.size() == entries_.capacity()) {
            Grow(1);
        }
        entries_.emplace_back(addr, bytes, type);
        if (type == AccessType::kRead) {
            read_bytes_ += bytes;
        } else {
            write_bytes_ += bytes;
        }
    }

    /** Bulk-append @p count already-packed entries. */
    void
    Append(const TraceEntry *entries, std::size_t count)
    {
        if (entries_.size() + count > entries_.capacity()) {
            Grow(count);
        }
        entries_.insert(entries_.end(), entries, entries + count);
        for (std::size_t i = 0; i < count; ++i) {
            if (entries[i].type() == AccessType::kRead) {
                read_bytes_ += entries[i].bytes();
            } else {
                write_bytes_ += entries[i].bytes();
            }
        }
    }

    /** Pre-size the backing store for @p count total entries. */
    void Reserve(std::size_t count) { entries_.reserve(count); }

    /**
     * Release the geometric-growth slack: after recording finishes the
     * backing store may hold up to 2x the entries actually appended;
     * long recordings should shrink before the trace is kept around
     * for replay.  (ExecutionContext::DetachTrace does this.)
     */
    void ShrinkToFit() { entries_.shrink_to_fit(); }

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return entries_.capacity(); }

    /** Bytes of entry storage in use / currently reserved. */
    Bytes SizeBytes() const { return size() * sizeof(TraceEntry); }
    Bytes CapacityBytes() const
    {
        return capacity() * sizeof(TraceEntry);
    }
    bool empty() const { return entries_.empty(); }
    const TraceEntry &operator[](std::size_t i) const
    {
        return entries_[i];
    }
    const TraceEntry *data() const { return entries_.data(); }

    /**
     * Total bytes accessed (reads + writes).  O(1): running totals are
     * maintained by Append rather than re-scanning the entry array
     * (this is queried per kernel per report, and traces reach 10^8
     * entries).
     */
    Bytes TotalBytes() const { return read_bytes_ + write_bytes_; }

    /** Bytes accessed by reads / by writes, also O(1). */
    Bytes read_bytes() const { return read_bytes_; }
    Bytes write_bytes() const { return write_bytes_; }

    /** Replay every access into @p sink, in order (batched fast path). */
    void
    ReplayInto(MemorySink &sink) const
    {
        sink.AccessBatch(entries_.data(), entries_.size());
    }

    /**
     * Reference replay path: one virtual Access call per entry, exactly
     * what ReplayInto did before batching existed.  Kept so equivalence
     * tests and the sim_throughput benchmark can compare against it.
     */
    void
    ReplayIntoScalar(MemorySink &sink) const
    {
        for (const auto &e : entries_) {
            sink.Access(e.addr(), e.bytes(), e.type());
        }
    }

    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

  private:
    /**
     * Grow capacity geometrically with a large starting block.  The
     * default vector growth would reallocate-and-copy dozens of times
     * while a kernel streams tens of millions of entries through
     * Append; reserving up front keeps the recorder itself from
     * thrashing the host caches it is trying to measure around.
     */
    void
    Grow(std::size_t at_least)
    {
        static constexpr std::size_t kInitialEntries = 1 << 16;
        std::size_t want = entries_.capacity() == 0
                               ? kInitialEntries
                               : entries_.capacity() * 2;
        while (want < entries_.size() + at_least) {
            want *= 2;
        }
        entries_.reserve(want);
    }

    std::vector<TraceEntry> entries_;
    Bytes read_bytes_ = 0;
    Bytes write_bytes_ = 0;
};

/**
 * TraceSource view of an in-RAM raw trace.  Blocks are zero-copy
 * spans into the packed entry array; the trace must outlive the view.
 */
class AccessTraceSource final : public TraceSource
{
  public:
    explicit AccessTraceSource(const AccessTrace &trace)
        : trace_(&trace)
    {
    }

    std::uint64_t entries() const override { return trace_->size(); }
    Bytes read_bytes() const override { return trace_->read_bytes(); }
    Bytes write_bytes() const override
    {
        return trace_->write_bytes();
    }

    std::size_t
    BlockCount() const override
    {
        return (trace_->size() + kBlockEntries - 1) / kBlockEntries;
    }

    Span
    Block(std::size_t b, TraceEntry * /*scratch*/) const override
    {
        const std::size_t begin = b * kBlockEntries;
        const std::size_t count =
            std::min(kBlockEntries, trace_->size() - begin);
        return Span{trace_->data() + begin, count};
    }

    bool resident() const override { return true; }

    /** The raw trace replays as ONE batch — same counters, no loop. */
    void
    ReplayInto(MemorySink &sink) const override
    {
        trace_->ReplayInto(sink);
    }

  private:
    const AccessTrace *trace_;
};

/**
 * A tee: forwards every access to the level below while appending it
 * to a trace.  Interpose between a kernel and its hierarchy to capture
 * the stream without perturbing the measurement.
 */
class TraceRecorder final : public MemorySink
{
  public:
    TraceRecorder(AccessTrace &trace, MemorySink &below)
        : trace_(&trace), below_(&below)
    {
    }

    /** The trace being appended to. */
    AccessTrace &trace() { return *trace_; }

    void
    Access(Address addr, Bytes bytes, AccessType type) override
    {
        trace_->Append(addr, bytes, type);
        below_->Access(addr, bytes, type);
    }

    void
    AccessBatch(const TraceEntry *entries, std::size_t count) override
    {
        trace_->Append(entries, count);
        below_->AccessBatch(entries, count);
    }

  private:
    AccessTrace *trace_;
    MemorySink *below_;
};

} // namespace pim::sim

#endif // PIM_SIM_TRACE_H
