#include "sim/trace_codec.h"

#include <utility>

#include "common/logging.h"

namespace pim::sim {

CompactTrace
CompactTraceEncoder::Finish()
{
    if (block_entries_ != 0) {
        EndBlock();
    } else {
        FlushRun();
    }
    CompactTrace trace;
    trace.data_ = std::move(data_);
    trace.data_.shrink_to_fit();
    trace.blocks_ = std::move(blocks_);
    trace.blocks_.shrink_to_fit();
    trace.entries_ = entries_;
    trace.read_bytes_ = read_bytes_;
    trace.write_bytes_ = write_bytes_;
    *this = CompactTraceEncoder{};
    return trace;
}

namespace {

inline std::uint64_t
GetVarint(const std::uint8_t *&p)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
        const std::uint8_t b = *p++;
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if ((b & 0x80) == 0) {
            return v;
        }
        shift += 7;
    }
}

inline std::int64_t
UnZigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

} // namespace

std::size_t
CompactTrace::DecodeBlock(std::size_t b, TraceEntry *out) const
{
    PIM_ASSERT(b < blocks_.size(), "block index out of range");
    const std::uint8_t *p = data_.data() + blocks_[b].offset;
    const std::size_t n = blocks_[b].count;

    CompactTraceEncoder::Context ctx[2];
    std::size_t i = 0;
    while (i < n) {
        const std::uint8_t header = *p++;
        const std::size_t t = (header >> 6) & 1;
        CompactTraceEncoder::Context &c = ctx[t];
        if (header & 0x80) {
            // Run: `len` repeats of the same-type context's stride.
            std::uint64_t len = header & 63;
            len = (len == 63) ? GetVarint(p) + 64 : len + 1;
            const AccessType type =
                t ? AccessType::kWrite : AccessType::kRead;
            for (std::uint64_t k = 0; k < len; ++k) {
                c.last_addr += static_cast<std::uint64_t>(c.last_delta);
                out[i++] = TraceEntry(c.last_addr, c.last_bytes, type);
            }
            continue;
        }
        const std::int64_t delta =
            (header & 0x20) ? c.last_delta : UnZigzag(GetVarint(p));
        Bytes bytes;
        if (header & 0x10) {
            bytes = c.last_bytes;
        } else {
            const std::uint8_t inline_bytes = header & 15;
            bytes = (inline_bytes == 15) ? GetVarint(p) : inline_bytes;
        }
        c.last_addr += static_cast<std::uint64_t>(delta);
        c.last_delta = delta;
        c.last_bytes = bytes;
        out[i++] = TraceEntry(c.last_addr, bytes,
                              t ? AccessType::kWrite : AccessType::kRead);
    }
    return i;
}

void
CompactTrace::ReplayInto(MemorySink &sink) const
{
    TraceEntry buffer[kBlockEntries];
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        const std::size_t n = DecodeBlock(b, buffer);
        sink.AccessBatch(buffer, n);
    }
}

AccessTrace
CompactTrace::Decode() const
{
    AccessTrace trace;
    trace.Reserve(entries_);
    TraceEntry buffer[kBlockEntries];
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        const std::size_t n = DecodeBlock(b, buffer);
        trace.Append(buffer, n);
    }
    return trace;
}

} // namespace pim::sim
